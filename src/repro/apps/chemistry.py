"""Synthetic chemical-kinetics mechanisms for the PELE-style workloads.

The PELE combustion suite (paper Section 2.1) solves many small linear
systems whose matrices are Jacobians of stiff reaction networks: mostly
dense within a limited coupling structure (~90% of in-band entries
non-zero), sizes up to ~150 species, and condition numbers spanning many
orders of magnitude.

We model a mechanism as a chain-of-species reaction network: each reaction
couples species within a bounded index distance (after a bandwidth-reducing
ordering, real mechanisms look like this too), which gives mass-action
Jacobians an (approximately) banded sparsity.  :func:`jacobian` evaluates
the exact analytic Jacobian of the mass-action rate law at a state, so the
generated matrices inherit genuine kinetics structure: strong diagonals
from self-consumption, signed off-diagonals from production/consumption
coupling, and stiffness controlled by the rate-constant spread.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import check_arg

__all__ = ["Reaction", "Mechanism", "chain_mechanism", "rate", "jacobian"]


@dataclass(frozen=True)
class Reaction:
    """One irreversible mass-action reaction.

    ``reactants`` / ``products`` map species index to stoichiometric
    coefficient; ``rate_constant`` is the (temperature-folded) forward rate.
    """

    reactants: tuple[tuple[int, int], ...]
    products: tuple[tuple[int, int], ...]
    rate_constant: float

    def species(self) -> set[int]:
        return ({s for s, _ in self.reactants}
                | {s for s, _ in self.products})


@dataclass(frozen=True)
class Mechanism:
    """A reaction network over ``n_species`` species."""

    n_species: int
    reactions: tuple[Reaction, ...] = field(default_factory=tuple)

    def bandwidth(self) -> tuple[int, int]:
        """Tight (kl, ku) of the Jacobian sparsity this mechanism induces.

        The Jacobian entry (i, j) can be non-zero when species ``j`` is a
        reactant of a reaction that produces or consumes species ``i``.
        """
        kl = ku = 0
        for r in self.reactions:
            touched = [s for s, _ in r.reactants] + [s for s, _ in r.products]
            for i in touched:
                for j, _ in r.reactants:
                    kl = max(kl, i - j)
                    ku = max(ku, j - i)
        return kl, ku


def chain_mechanism(n_species: int, *, coupling: int = 2,
                    rate_spread: float = 6.0, seed=None) -> Mechanism:
    """A chain reaction network with bounded coupling distance.

    Species ``i`` reacts with neighbours up to ``coupling`` indices away
    (consumption both ways, production downstream), so the Jacobian has
    ``kl = ku = coupling``.  ``rate_spread`` sets the log10 range of rate
    constants — the source of the wide condition-number range the paper
    describes.
    """
    check_arg(n_species >= 2, 1,
              f"need at least 2 species, got {n_species}")
    check_arg(coupling >= 1, 2, f"coupling must be >= 1, got {coupling}")
    rng = np.random.default_rng(seed)
    reactions = []
    for i in range(n_species - 1):
        for d in range(1, min(coupling, n_species - 1 - i) + 1):
            k = 10.0 ** rng.uniform(-rate_spread / 2, rate_spread / 2)
            # A_i + A_{i+d} -> 2 A_{i+d}: consumes i, net-produces i+d.
            reactions.append(Reaction(
                reactants=((i, 1), (i + d, 1)),
                products=((i + d, 2),),
                rate_constant=k))
        # First-order decay keeps every diagonal entry active.
        reactions.append(Reaction(
            reactants=((i, 1),), products=((i + 1, 1),),
            rate_constant=10.0 ** rng.uniform(-rate_spread / 2,
                                              rate_spread / 2)))
    return Mechanism(n_species=n_species, reactions=tuple(reactions))


def rate(mech: Mechanism, y: np.ndarray) -> np.ndarray:
    """Mass-action net production rates ``dy/dt`` at state ``y``."""
    dydt = np.zeros_like(y, dtype=np.float64)
    for r in mech.reactions:
        rr = r.rate_constant
        for s, nu in r.reactants:
            rr = rr * y[s] ** nu
        for s, nu in r.reactants:
            dydt[s] -= nu * rr
        for s, nu in r.products:
            dydt[s] += nu * rr
    return dydt


def jacobian(mech: Mechanism, y: np.ndarray) -> np.ndarray:
    """Analytic Jacobian ``d(dy/dt)/dy`` of the mass-action rate law."""
    n = mech.n_species
    jac = np.zeros((n, n), dtype=np.float64)
    for r in mech.reactions:
        base = r.rate_constant
        conc = {s: y[s] for s, _ in r.reactants}
        for j, nu_j in r.reactants:
            # d(rate)/dy_j = k * nu_j * y_j^(nu_j - 1) * prod_others
            d = base * nu_j * (conc[j] ** (nu_j - 1) if nu_j > 1 else 1.0)
            for s, nu in r.reactants:
                if s != j:
                    d *= conc[s] ** nu
            for s, nu in r.reactants:
                jac[s, j] -= nu * d
            for s, nu in r.products:
                jac[s, j] += nu * d
    return jac
