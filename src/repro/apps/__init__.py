"""Application workloads from the paper's use-case section (Section 2)."""

from .amr import AmrHierarchy, AmrLevel, AmrParams, build_hierarchy, integrate_hierarchy
from .chemistry import Mechanism, Reaction, chain_mechanism, jacobian, rate
from .pele import PeleBatch, pele_batch
from .reacteval import (
    AdaptiveResult,
    IntegrationStats,
    ReactEvalResult,
    integrate_adaptive,
    integrate_batch,
    sinusoidal_states,
)
from .xgc import XgcBatch, q3_collision_matrix, xgc_batch

__all__ = [
    "AmrHierarchy", "AmrLevel", "AmrParams",
    "build_hierarchy", "integrate_hierarchy",
    "AdaptiveResult", "IntegrationStats", "Mechanism", "integrate_adaptive", "PeleBatch", "ReactEvalResult",
    "Reaction", "XgcBatch", "chain_mechanism", "integrate_batch",
    "jacobian", "pele_batch", "q3_collision_matrix", "rate",
    "sinusoidal_states", "xgc_batch",
]
