"""ReactEval-style batched implicit ODE integration (paper Section 2.3).

SUNDIALS' ReactEval benchmark advances only the (stiff) reaction equations
from a given initial state — classically a sinusoidal temperature profile —
and hands every batch of Newton systems to a batched linear solver.  This
module is that integrator: a batched backward-Euler / BDF2 method with
modified-Newton iterations whose linear systems ``(c I - h beta J) dy = -r``
are banded and solved with :func:`repro.core.gbsv.gbsv_batch`.

This exercises the full production call pattern of the paper's solver: one
``gbsv_batch`` call per Newton iteration, uniform band structure across the
batch, pivots and info arrays reused across calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..band.convert import dense_to_band
from ..core.gbsv import gbsv_batch
from ..errors import check_arg
from ..gpusim.device import H100_PCIE, DeviceSpec
from .chemistry import Mechanism, jacobian, rate

__all__ = ["IntegrationStats", "ReactEvalResult", "sinusoidal_states",
           "integrate_batch", "integrate_adaptive", "AdaptiveResult"]


@dataclass
class IntegrationStats:
    """Counters of one batched integration run."""

    steps: int = 0
    newton_iterations: int = 0
    solver_calls: int = 0
    jacobian_evaluations: int = 0
    converged: bool = True


@dataclass
class ReactEvalResult:
    """Final states plus the integration counters."""

    y: np.ndarray                 # (batch, n) final states
    t: float
    stats: IntegrationStats = field(default_factory=IntegrationStats)


def sinusoidal_states(batch: int, n_species: int, *, base: float = 0.5,
                      amplitude: float = 0.4,
                      phases=None) -> np.ndarray:
    """ReactEval's sinusoidal initial profile, one phase per batch member.

    Every cell of the AMR grid samples the same sinusoid at a different
    location, which is exactly how ReactEval seeds its reactors.
    """
    check_arg(amplitude < base, 3,
              "amplitude must be smaller than base so states stay positive")
    if phases is None:
        phases = np.linspace(0.0, 2.0 * np.pi, num=batch, endpoint=False)
    phases = np.asarray(phases, dtype=np.float64)
    idx = np.arange(n_species)
    return base + amplitude * np.sin(
        phases[:, None] + 2.0 * np.pi * idx[None, :] / max(n_species, 1))


def _newton_matrix_band(mech: Mechanism, y: np.ndarray, scale: float,
                        kl: int, ku: int) -> np.ndarray:
    """Band (factor layout) of ``I - scale * J(y)``."""
    a = np.eye(mech.n_species) - scale * jacobian(mech, y)
    return dense_to_band(a, kl, ku)


def _newton_solve(mech: Mechanism, hist: np.ndarray, beta: float,
                  y_guess: np.ndarray, kl: int, ku: int, *,
                  newton_tol: float, max_newton: int,
                  device: DeviceSpec, stream,
                  stats: IntegrationStats) -> tuple[np.ndarray, bool]:
    """Solve ``y - hist = beta * f(y)`` for a whole batch by Newton.

    Every iteration builds one uniform band batch of ``I - beta J`` and
    hands it to ``gbsv_batch`` — the paper's call pattern.  Returns the
    solution and a convergence flag; counters accumulate into ``stats``.
    """
    batch, n = y_guess.shape
    y_new = y_guess.copy()
    for _ in range(max_newton):
        residual = np.stack([
            y_new[k] - hist[k] - beta * rate(mech, y_new[k])
            for k in range(batch)])
        if np.abs(residual).max() <= newton_tol:
            return y_new, True
        a_band = np.stack([
            _newton_matrix_band(mech, y_new[k], beta, kl, ku)
            for k in range(batch)])
        stats.jacobian_evaluations += batch
        rhs = -residual[:, :, None]
        _, info = gbsv_batch(n, kl, ku, 1, a_band, None, rhs,
                             batch=batch, device=device, stream=stream)
        stats.solver_calls += 1
        stats.newton_iterations += 1
        if (info != 0).any():
            return y_new, False
        y_new += rhs[:, :, 0]
    residual = np.stack([
        y_new[k] - hist[k] - beta * rate(mech, y_new[k])
        for k in range(batch)])
    return y_new, bool(np.abs(residual).max() <= newton_tol)


def integrate_batch(mech: Mechanism, y0: np.ndarray, t_end: float, *,
                    dt: float = 1e-3, method: str = "beuler",
                    newton_tol: float = 1e-10, max_newton: int = 10,
                    device: DeviceSpec = H100_PCIE,
                    stream=None) -> ReactEvalResult:
    """Advance a batch of reactors to ``t_end`` with an implicit method.

    Parameters
    ----------
    mech:
        Shared reaction mechanism (every reactor has the same chemistry,
        different state — the PELE/ReactEval situation).
    y0:
        ``(batch, n_species)`` initial states.
    method:
        ``'beuler'`` (backward Euler, first order) or ``'bdf2'`` (second
        order, started with one backward-Euler step).
    device, stream:
        Where the batched band solves run.

    Returns
    -------
    ReactEvalResult with final states and counters.  ``stats.converged``
    is False if any step exhausted its Newton iterations.
    """
    check_arg(method in ("beuler", "bdf2"), 5,
              f"method must be 'beuler' or 'bdf2', got {method!r}")
    check_arg(dt > 0, 4, f"dt must be positive, got {dt}")
    y0 = np.asarray(y0, dtype=np.float64)
    check_arg(y0.ndim == 2 and y0.shape[1] == mech.n_species, 2,
              f"y0 must be (batch, {mech.n_species}), got {y0.shape}")
    batch, n = y0.shape
    kl, ku = mech.bandwidth()
    stats = IntegrationStats()

    y_prev = y0.copy()          # y_{k-1} (for BDF2)
    y = y0.copy()               # y_k
    t = 0.0
    first_step = True
    while t < t_end - 1e-14:
        h = min(dt, t_end - t)
        use_bdf2 = method == "bdf2" and not first_step and h == dt
        # BDF2: (3/2) y_new - 2 y_k + (1/2) y_{k-1} = h f(y_new)
        #   =>  y_new - (4/3) y_k + (1/3) y_{k-1} = (2/3) h f(y_new)
        beta = (2.0 / 3.0) * h if use_bdf2 else h
        if use_bdf2:
            hist = (4.0 / 3.0) * y - (1.0 / 3.0) * y_prev
        else:
            hist = y
        y_new, converged = _newton_solve(
            mech, hist, beta, y, kl, ku, newton_tol=newton_tol,
            max_newton=max_newton, device=device, stream=stream,
            stats=stats)
        if not converged:
            stats.converged = False
        y_prev, y = y, y_new
        t += h
        stats.steps += 1
        first_step = False
    return ReactEvalResult(y=y, t=t, stats=stats)


@dataclass
class AdaptiveResult(ReactEvalResult):
    """Adaptive-integration outcome: final states plus step diagnostics."""

    accepted_steps: int = 0
    rejected_steps: int = 0
    dt_history: list = field(default_factory=list)


def integrate_adaptive(mech: Mechanism, y0: np.ndarray, t_end: float, *,
                       dt0: float = 1e-4, rtol: float = 1e-4,
                       atol: float = 1e-8, newton_tol: float = 1e-10,
                       max_newton: int = 10, max_steps: int = 10_000,
                       dt_min: float = 1e-14, safety: float = 0.9,
                       device: DeviceSpec = H100_PCIE,
                       stream=None) -> AdaptiveResult:
    """Error-controlled backward-Euler integration (SUNDIALS-style).

    Each step is attempted at the current ``dt`` and, for error control,
    re-computed as two half steps (step doubling).  The Richardson
    difference estimates the local error; steps whose weighted error
    exceeds 1 are rejected and retried with a smaller ``dt``, and accepted
    steps adapt ``dt`` by the standard first-order controller
    ``dt * safety / sqrt(err)``.  Every Newton system of all three
    sub-steps flows through ``gbsv_batch``, so the batched solver sees the
    irregular call pattern a production integrator generates.
    """
    check_arg(dt0 > 0, 4, f"dt0 must be positive, got {dt0}")
    check_arg(rtol > 0 and atol > 0, 5, "tolerances must be positive")
    y0 = np.asarray(y0, dtype=np.float64)
    check_arg(y0.ndim == 2 and y0.shape[1] == mech.n_species, 2,
              f"y0 must be (batch, {mech.n_species}), got {y0.shape}")
    kl, ku = mech.bandwidth()
    stats = IntegrationStats()
    result = AdaptiveResult(y=y0.copy(), t=0.0, stats=stats)
    y = result.y
    t, dt = 0.0, min(dt0, t_end)

    def _step(y_in: np.ndarray, h: float) -> tuple[np.ndarray, bool]:
        return _newton_solve(mech, y_in, h, y_in, kl, ku,
                             newton_tol=newton_tol, max_newton=max_newton,
                             device=device, stream=stream, stats=stats)

    for _ in range(max_steps):
        if t >= t_end - 1e-14:
            break
        h = min(dt, t_end - t)
        y_full, ok1 = _step(y, h)
        y_half, ok2 = _step(y, h / 2)
        y_two, ok3 = _step(y_half, h / 2)
        if not (ok1 and ok2 and ok3):
            # Newton failure: halve the step and retry.
            result.rejected_steps += 1
            dt = h / 2
            if dt < dt_min:
                stats.converged = False
                break
            continue
        scale = atol + rtol * np.maximum(np.abs(y), np.abs(y_two))
        err = float(np.abs(y_two - y_full).max(initial=0.0) /
                    scale.min())
        err = max(err, 1e-12)
        if err <= 1.0:
            # Accept the more accurate two-half-step solution.
            y[...] = y_two
            t += h
            stats.steps += 1
            result.accepted_steps += 1
            result.dt_history.append(h)
            dt = h * min(5.0, safety / np.sqrt(err))
        else:
            result.rejected_steps += 1
            dt = h * max(0.1, safety / np.sqrt(err))
            if dt < dt_min:
                stats.converged = False
                break
    else:
        stats.converged = False
    result.t = t
    if t < t_end - 1e-12:
        stats.converged = False
    return result
