"""PELE-style workload generator (paper Section 2.1).

Produces batches of implicit-chemistry linear systems
``(I - h J(y)) x = b`` — the Newton matrices of a stiff chemistry
integrator — with the characteristics the paper describes: sizes up to
~150 (many 50 or less), high in-band density (~90%), and a wide range of
condition numbers driven by the rate-constant spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..band.convert import bandwidth_of_dense, dense_to_band
from ..errors import check_arg
from .chemistry import Mechanism, chain_mechanism, jacobian

__all__ = ["PeleBatch", "pele_batch"]


@dataclass
class PeleBatch:
    """A generated batch of chemistry Newton systems.

    Attributes
    ----------
    a_band:
        ``(batch, 2*kl+ku+1, n)`` factor-layout band stack of
        ``I - h J(y_k)``.
    b:
        ``(batch, n, nrhs)`` right-hand sides (the Newton residuals).
    kl, ku:
        Band structure shared by the whole batch.
    mechanism:
        The reaction network the Jacobians came from.
    states:
        ``(batch, n)`` concentration states the Jacobians were evaluated at.
    """

    a_band: np.ndarray
    b: np.ndarray
    kl: int
    ku: int
    mechanism: Mechanism
    states: np.ndarray

    @property
    def batch(self) -> int:
        return self.a_band.shape[0]

    @property
    def n(self) -> int:
        return self.a_band.shape[2]


def pele_batch(batch: int, n_species: int = 54, *, coupling: int = 3,
               h: float = 1e-4, nrhs: int = 1, rate_spread: float = 6.0,
               seed=None) -> PeleBatch:
    """Generate a batch of ``(I - h J)`` systems from one shared mechanism.

    Every cell of a combustion simulation shares the mechanism but sits at
    a different thermochemical state, so the batch shares its band
    structure (a uniform batch, as the solver requires) while each matrix
    has distinct values and conditioning.

    Parameters
    ----------
    n_species:
        System order (the paper: "typical matrix sizes ... do not exceed
        150 but many are sized 50 or less").
    coupling:
        Reaction coupling distance; yields ``kl = ku = coupling``.
    h:
        Implicit time-step scale: larger ``h`` makes ``I - h J`` harder
        conditioned.
    """
    check_arg(batch >= 1, 1, f"batch must be >= 1, got {batch}")
    rng = np.random.default_rng(seed)
    mech = chain_mechanism(n_species, coupling=coupling,
                           rate_spread=rate_spread, seed=rng)
    kl = ku = 0
    mats = []
    states = np.empty((batch, n_species))
    for k in range(batch):
        y = rng.uniform(1e-8, 1.0, size=n_species)
        states[k] = y
        a = np.eye(n_species) - h * jacobian(mech, y)
        bkl, bku = bandwidth_of_dense(a)
        kl, ku = max(kl, bkl), max(ku, bku)
        mats.append(a)
    a_band = np.stack([dense_to_band(a, kl, ku) for a in mats])
    b = rng.standard_normal((batch, n_species, nrhs))
    return PeleBatch(a_band=a_band, b=b, kl=kl, ku=ku, mechanism=mech,
                     states=states)
