"""AMR-driven batch control for ReactEval (paper Section 2.3).

"Controlling the total number of linear systems and the number of batches
occurs by changing the AMR parameters.  Only at the moment the batches are
formed, the control is passed to an efficient band batched solver."

This module supplies that control layer: a 1-D block-structured AMR
hierarchy over a spatial domain.  Cells whose initial profile varies
steeply are refined (up to ``max_levels``, by a factor ``refine_ratio``
per level, in blocks of ``blocking_factor`` cells — the AMReX knobs).
Each level's cells become one uniform reactor batch, so changing the AMR
parameters changes how many linear systems the batched solver receives per
call, exactly the mechanism the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import check_arg
from ..gpusim.device import H100_PCIE, DeviceSpec
from .chemistry import Mechanism
from .reacteval import IntegrationStats, integrate_batch

__all__ = ["AmrParams", "AmrLevel", "AmrHierarchy", "build_hierarchy",
           "integrate_hierarchy"]


@dataclass(frozen=True)
class AmrParams:
    """The AMR knobs that control batch formation.

    ``base_cells``: cells on the coarsest level.
    ``max_levels``: total number of levels (1 = no refinement).
    ``refine_ratio``: cell subdivision factor between levels.
    ``refine_threshold``: refine where ``|d(profile)/dx|`` exceeds this.
    ``blocking_factor``: refinement is granted in blocks of this many
    coarse cells (AMReX's ``blocking_factor``).
    """

    base_cells: int = 32
    max_levels: int = 2
    refine_ratio: int = 2
    refine_threshold: float = 1.0
    blocking_factor: int = 4

    def __post_init__(self):
        check_arg(self.base_cells >= 1, 1, "base_cells must be >= 1")
        check_arg(self.max_levels >= 1, 2, "max_levels must be >= 1")
        check_arg(self.refine_ratio >= 2, 3, "refine_ratio must be >= 2")
        check_arg(self.blocking_factor >= 1, 5,
                  "blocking_factor must be >= 1")


@dataclass
class AmrLevel:
    """One refinement level: cell centres and their reactor states."""

    level: int
    centres: np.ndarray        # (cells,) spatial positions in [0, 1)
    states: np.ndarray         # (cells, n_species) reactor states

    @property
    def cells(self) -> int:
        return self.centres.shape[0]


@dataclass
class AmrHierarchy:
    """A full hierarchy; each level is one uniform solver batch."""

    params: AmrParams
    levels: list[AmrLevel] = field(default_factory=list)

    @property
    def total_cells(self) -> int:
        return sum(lv.cells for lv in self.levels)

    def batch_sizes(self) -> list[int]:
        return [lv.cells for lv in self.levels]


def _profile_states(centres: np.ndarray, n_species: int, *,
                    base: float = 0.5, amplitude: float = 0.4,
                    sharpness: float = 3.0) -> np.ndarray:
    """Reactor states from a sharpened sinusoidal spatial profile.

    ``tanh(sharpness * sin)`` concentrates gradient in narrow fronts, so
    refinement actually has something to find.
    """
    phase = 2.0 * np.pi * centres
    front = np.tanh(sharpness * np.sin(phase)) / np.tanh(sharpness)
    idx = np.arange(n_species)
    shift = 2.0 * np.pi * idx[None, :] / max(n_species, 1)
    return base + amplitude * front[:, None] * np.cos(shift)


def build_hierarchy(params: AmrParams, n_species: int, *,
                    sharpness: float = 3.0) -> AmrHierarchy:
    """Tag, refine, and populate an AMR hierarchy over [0, 1).

    Level 0 covers the whole domain; level L+1 covers the blocks of level
    L whose profile gradient exceeds the threshold, refined by
    ``refine_ratio``.  The returned levels hold non-overlapping *active*
    cells only (coarse cells under refinement are excluded), so
    ``total_cells`` is the number of linear systems per integrator stage.
    """
    hier = AmrHierarchy(params=params)
    h = 1.0 / params.base_cells
    regions = [(0.0, 1.0)]                  # domain covered by this level
    for level in range(params.max_levels):
        centres = []
        for lo, hi in regions:
            count = max(1, round((hi - lo) / h))
            centres.extend(lo + (np.arange(count) + 0.5) * h)
        centres = np.asarray(centres)
        states = _profile_states(centres, n_species, sharpness=sharpness)

        if level == params.max_levels - 1:
            hier.levels.append(AmrLevel(level, centres, states))
            break
        # Tag cells with steep gradients (finite-difference of species 0).
        grad = np.gradient(states[:, 0], centres) if centres.size > 1 \
            else np.zeros(1)
        tagged = np.abs(grad) > params.refine_threshold
        # Grow tags to blocking_factor granularity.
        bf = params.blocking_factor
        blocks = np.zeros_like(tagged)
        for i in np.nonzero(tagged)[0]:
            b0 = (i // bf) * bf
            blocks[b0:b0 + bf] = True
        fine_regions = []
        keep = []
        for i, c in enumerate(centres):
            if blocks[i]:
                fine_regions.append((c - h / 2, c + h / 2))
            else:
                keep.append(i)
        keep = np.asarray(keep, dtype=int)
        hier.levels.append(AmrLevel(level, centres[keep], states[keep]))
        if not fine_regions:
            break
        # Merge adjacent refined intervals and descend.
        fine_regions.sort()
        merged = [list(fine_regions[0])]
        for lo, hi in fine_regions[1:]:
            if lo <= merged[-1][1] + 1e-12:
                merged[-1][1] = max(merged[-1][1], hi)
            else:
                merged.append([lo, hi])
        regions = [tuple(r) for r in merged]
        h /= params.refine_ratio
    return hier


def integrate_hierarchy(hier: AmrHierarchy, mech: Mechanism,
                        t_end: float, *, dt: float = 1e-3,
                        method: str = "beuler",
                        device: DeviceSpec = H100_PCIE,
                        stream=None) -> dict[int, IntegrationStats]:
    """Advance every level's reactor batch; returns per-level stats.

    Each level is one uniform batch handed to the batched band solver —
    the "moment the batches are formed" of the paper.  Levels with no
    active cells are skipped.  States are updated in place.
    """
    out: dict[int, IntegrationStats] = {}
    for lv in hier.levels:
        if lv.cells == 0:
            continue
        res = integrate_batch(mech, lv.states, t_end, dt=dt, method=method,
                              device=device, stream=stream)
        lv.states[...] = res.y
        out[lv.level] = res.stats
    return out
