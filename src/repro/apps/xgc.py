"""XGC / WDMApp-style workload generator (paper Section 2.2).

XGC's Landau collision operator solves, per velocity-space mesh batch, many
sparse linear systems from a Q3 finite-element discretisation of a 2-D
velocity domain with AMR: "512 sparse linear systems in a single batch,
each having M = N = 193 equations".

We build the analogous systems from a 1-D finite-element discretisation of
a Fokker-Planck-type operator

    ``L f = -d/dv ( D(v) df/dv + F(v) f ) + nu(v) f``

with cubic (Q3) elements: each element couples 4 consecutive nodes, so the
assembled implicit matrix ``M + dt L`` has semi-bandwidth 3 — a genuinely
banded, symmetric-structure (but unsymmetric-valued, due to the drag term)
operator of order ``3 * n_elements + 1``.  With ``n_elements = 64`` the
system order is exactly the paper's 193.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..band.convert import dense_to_band
from ..errors import check_arg

__all__ = ["XgcBatch", "q3_collision_matrix", "xgc_batch"]

# Gauss-Legendre 4-point rule (exact for the Q3 mass/stiffness products).
_GAUSS_X = np.array([-0.8611363115940526, -0.3399810435848563,
                     0.3399810435848563, 0.8611363115940526])
_GAUSS_W = np.array([0.3478548451374538, 0.6521451548625461,
                     0.6521451548625461, 0.3478548451374538])


def _q3_shape(xi: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Cubic Lagrange shape functions and derivatives on [-1, 1].

    Nodes at -1, -1/3, 1/3, 1.  Returns ``(N, dN)`` with shape (4, len(xi)).
    """
    nodes = np.array([-1.0, -1.0 / 3.0, 1.0 / 3.0, 1.0])
    n = np.empty((4, xi.shape[0]))
    dn = np.empty((4, xi.shape[0]))
    for a in range(4):
        others = [b for b in range(4) if b != a]
        denom = np.prod([nodes[a] - nodes[b] for b in others])
        n[a] = np.prod([xi - nodes[b] for b in others], axis=0) / denom
        dsum = np.zeros_like(xi)
        for skip in others:
            rest = [b for b in others if b != skip]
            dsum += np.prod([xi - nodes[b] for b in rest], axis=0)
        dn[a] = dsum / denom
    return n, dn


def q3_collision_matrix(n_elements: int, *, v_max: float = 5.0,
                        dt: float = 0.1, diffusion: float = 1.0,
                        drag: float = 1.0, nu: float = 0.5,
                        temperature: float = 1.0) -> np.ndarray:
    """Assemble the implicit collision matrix ``M + dt * L`` (dense).

    Q3 elements on ``[0, v_max]``; order ``3 * n_elements + 1`` and
    semi-bandwidth 3 (the element blocks couple 4 consecutive nodes).
    ``D(v) = diffusion * T``, ``F(v) = drag * v`` — a linearised
    Fokker-Planck / Landau form.
    """
    check_arg(n_elements >= 1, 1,
              f"need at least one element, got {n_elements}")
    n = 3 * n_elements + 1
    a = np.zeros((n, n))
    h = v_max / n_elements
    jac = h / 2.0
    shp, dshp = _q3_shape(_GAUSS_X)
    for e in range(n_elements):
        dofs = np.arange(3 * e, 3 * e + 4)
        v0 = e * h
        vq = v0 + (1.0 + _GAUSS_X) * jac       # quadrature points
        d_coef = diffusion * temperature
        f_coef = drag * vq
        nu_coef = nu * (1.0 + 0.1 * vq ** 2)
        for q, w in enumerate(_GAUSS_W):
            nq = shp[:, q]
            dq = dshp[:, q] / jac
            wq = w * jac
            # mass + dt * (diffusion + drag + collisionality)
            a[np.ix_(dofs, dofs)] += wq * (
                np.outer(nq, nq)
                + dt * (d_coef * np.outer(dq, dq)
                        + f_coef[q] * np.outer(dq, nq)
                        + nu_coef[q] * np.outer(nq, nq)))
    return a


@dataclass
class XgcBatch:
    """A generated batch of collision-operator systems."""

    a_band: np.ndarray       # (batch, 2*kl+ku+1, n) factor layout
    b: np.ndarray            # (batch, n, nrhs)
    kl: int
    ku: int

    @property
    def batch(self) -> int:
        return self.a_band.shape[0]

    @property
    def n(self) -> int:
        return self.a_band.shape[2]


def xgc_batch(batch: int = 512, n_elements: int = 64, *, nrhs: int = 1,
              dt: float = 0.1, seed=None) -> XgcBatch:
    """The paper's XGC workload: 512 systems of order 193 (64 Q3 elements).

    Each system is the collision matrix at a different flux-surface state
    (temperature and collisionality vary across the batch); right-hand
    sides are the distribution-function moments being advanced.
    """
    rng = np.random.default_rng(seed)
    kl = ku = 3
    mats = []
    for _ in range(batch):
        a = q3_collision_matrix(
            n_elements,
            dt=dt,
            diffusion=rng.uniform(0.5, 2.0),
            drag=rng.uniform(0.5, 2.0),
            nu=rng.uniform(0.1, 1.0),
            temperature=rng.uniform(0.5, 3.0))
        mats.append(dense_to_band(a, kl, ku))
    n = 3 * n_elements + 1
    b = rng.standard_normal((batch, n, nrhs))
    return XgcBatch(a_band=np.stack(mats), b=b, kl=kl, ku=ku)
