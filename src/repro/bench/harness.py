"""Benchmark harness: modeled timings of the batched routines.

The harness evaluates the *timing model* of every design at the paper's
workload scale (batches of 1000 in double precision) without functionally
executing all 1000 factorizations — the drivers run with ``execute=False``
(kernel resource declarations and the occupancy/cost model are exercised;
numerical correctness is covered separately by the test suite and by each
benchmark's small functional sample).  Times are returned in seconds; the
report layer converts to the paper's milliseconds.

:func:`wallclock_gbtrf_paths` is the exception: it executes the functional
kernel bodies for real on both execution paths (per-block loop vs
batch-interleaved) and reports host wall-clock, quantifying the simulator's
own throughput rather than the modeled device time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..band.layout import ldab_for_factor
from ..core.gbsv import gbsv_batch
from ..core.gbtrf import gbtrf_batch
from ..core.gbtrs import gbtrs_batch
from ..cpu.costmodel import XEON_6140, CpuSpec, cpu_gbsv_time, cpu_gbtrf_time, cpu_gbtrs_time
from ..errors import SharedMemoryError
from ..gpusim.device import DeviceSpec
from ..gpusim.stream import Stream
from ..types import Trans

__all__ = [
    "DEFAULT_BATCH", "shape_only_batch", "time_gbtrf", "time_gbtrs",
    "time_gbsv", "time_cpu_gbtrf", "time_cpu_gbtrs", "time_cpu_gbsv",
    "WallClock", "wallclock_gbtrf_paths", "wallclock_vbatch_paths",
]

# The paper's evaluation batch size.
DEFAULT_BATCH = 1000


def shape_only_batch(n: int, kl: int, ku: int, batch: int,
                     dtype=np.float64, nrhs: int | None = None):
    """Build a timing-only batch: one tiny real allocation shared by all.

    With ``execute=False`` kernels only read shapes/dtypes and the batch
    length, so a single matrix aliased ``batch`` times is enough to drive
    the full timing model without allocating 1000 real matrices.
    """
    ab = np.zeros((ldab_for_factor(kl, ku), n), dtype=dtype)
    mats = [ab] * batch
    if nrhs is None:
        return mats
    b = np.zeros((n, max(nrhs, 1)), dtype=dtype)
    return mats, [b] * batch


def time_gbtrf(device: DeviceSpec, n: int, kl: int, ku: int, *,
               batch: int = DEFAULT_BATCH, method: str = "auto",
               nb: int | None = None, threads: int | None = None,
               dtype=np.float64) -> float:
    """Modeled seconds of one batched factorization; raises
    :class:`~repro.errors.SharedMemoryError` when the design cannot launch
    (the paper's fused kernel "failing to run" at large sizes)."""
    mats = shape_only_batch(n, kl, ku, batch, dtype)
    stream = Stream(device)
    gbtrf_batch(n, n, kl, ku, mats, None, None, batch=batch, device=device,
                stream=stream, method=method, nb=nb, threads=threads,
                execute=False)
    return stream.synchronize()


def time_gbtrs(device: DeviceSpec, n: int, kl: int, ku: int, nrhs: int, *,
               batch: int = DEFAULT_BATCH, method: str = "auto",
               nb: int | None = None, threads: int | None = None,
               dtype=np.float64) -> float:
    """Modeled seconds of one batched triangular solve."""
    mats, rhs = shape_only_batch(n, kl, ku, batch, dtype, nrhs=nrhs)
    pivots = [np.zeros(n, dtype=np.int64)] * batch
    stream = Stream(device)
    gbtrs_batch(Trans.NO_TRANS, n, kl, ku, nrhs, mats, pivots, rhs,
                batch=batch, device=device, stream=stream, method=method,
                nb=nb, threads=threads, execute=False)
    return stream.synchronize()


def time_gbsv(device: DeviceSpec, n: int, kl: int, ku: int, nrhs: int, *,
              batch: int = DEFAULT_BATCH, method: str = "auto",
              dtype=np.float64) -> float:
    """Modeled seconds of one batched factorize-and-solve."""
    mats, rhs = shape_only_batch(n, kl, ku, batch, dtype, nrhs=nrhs)
    stream = Stream(device)
    gbsv_batch(n, kl, ku, nrhs, mats, None, rhs, batch=batch, device=device,
               stream=stream, method=method, execute=False)
    return stream.synchronize()


@dataclass(frozen=True)
class WallClock:
    """Host wall-clock seconds of one workload on both execution paths."""

    per_block: float
    vectorized: float
    batch: int

    @property
    def speedup(self) -> float:
        return self.per_block / self.vectorized


def wallclock_gbtrf_paths(n: int, kl: int, ku: int, *,
                          batch: int = DEFAULT_BATCH,
                          device: DeviceSpec | None = None,
                          method: str = "auto", dtype=np.float64,
                          seed: int = 0, repeats: int = 1,
                          warmup: bool = False) -> WallClock:
    """Wall-clock a real (``execute=True``) batched factorization on the
    per-block and batch-interleaved paths.

    Unlike the modeled ``time_*`` entries above, this measures what the
    host actually spends executing the functional kernel bodies — the
    quantity the ``vectorize`` dispatch exists to improve.  Both runs
    start from identical copies of one random batch; the factored outputs
    are bit-identical by the launch contract (asserted in
    ``benchmarks/bench_vectorized_speedup.py``).

    ``repeats`` reports the best of that many timed runs (each from a
    fresh copy of the inputs) and ``warmup`` runs each path once on a
    small batch first, so first-call effects (allocator/page-fault
    warmup) don't contaminate the steady-state comparison.
    """
    from time import perf_counter

    from ..band.generate import random_band_batch
    from ..gpusim.device import H100_PCIE

    if device is None:
        device = H100_PCIE
    a = random_band_batch(batch, n, kl, ku, dtype=dtype, seed=seed)
    seconds = {}
    for label, vec in (("per_block", False), ("vectorized", True)):
        if warmup:
            small = a[:min(8, batch)].copy()
            gbtrf_batch(n, n, kl, ku, small, None, None,
                        batch=small.shape[0], device=device, method=method,
                        vectorize=vec)
        best = None
        for _ in range(max(1, repeats)):
            work = a.copy()
            t0 = perf_counter()
            gbtrf_batch(n, n, kl, ku, work, None, None, batch=batch,
                        device=device, method=method, vectorize=vec)
            dt = perf_counter() - t0
            best = dt if best is None else min(best, dt)
        seconds[label] = best
    return WallClock(per_block=seconds["per_block"],
                     vectorized=seconds["vectorized"], batch=batch)


def wallclock_vbatch_paths(configs, *, device: DeviceSpec | None = None,
                           dtype=np.float64, seed: int = 0,
                           repeats: int = 1,
                           warmup: bool = False) -> WallClock:
    """Wall-clock a real non-uniform batch on both execution paths.

    ``configs`` is one ``(m, n, kl, ku)`` or ``(n, kl, ku)`` tuple per
    problem (lane order is preserved; repeats of a configuration are what
    the bucketed path interleaves).  Each path —
    :func:`repro.core.batched.gbtrf_vbatch` with ``vectorize=False`` vs
    ``vectorize=True`` — factors fresh copies of the same random batch;
    the outputs are bit-identical by the launch contract (asserted in
    ``benchmarks/bench_vbatch_vectorized.py``).  ``repeats``/``warmup``
    behave as in :func:`wallclock_gbtrf_paths`.
    """
    from time import perf_counter

    from ..band.generate import random_band
    from ..core.batched import gbtrf_vbatch
    from ..gpusim.device import H100_PCIE

    if device is None:
        device = H100_PCIE
    full = [c if len(c) == 4 else (c[0],) + tuple(c) for c in configs]
    rng = np.random.default_rng(seed)
    mats = [random_band(n, kl, ku, m=m, dtype=dtype, seed=rng)
            for m, n, kl, ku in full]
    ms = [c[0] for c in full]
    ns = [c[1] for c in full]
    kls = [c[2] for c in full]
    kus = [c[3] for c in full]
    seconds = {}
    for label, vec in (("per_block", False), ("vectorized", True)):
        if warmup:
            k = min(8, len(full))
            gbtrf_vbatch(ms[:k], ns[:k], kls[:k], kus[:k],
                         [a.copy() for a in mats[:k]], device=device,
                         vectorize=vec)
        best = None
        for _ in range(max(1, repeats)):
            work = [a.copy() for a in mats]
            t0 = perf_counter()
            gbtrf_vbatch(ms, ns, kls, kus, work, device=device,
                         vectorize=vec)
            dt = perf_counter() - t0
            best = dt if best is None else min(best, dt)
        seconds[label] = best
    return WallClock(per_block=seconds["per_block"],
                     vectorized=seconds["vectorized"], batch=len(full))


def time_cpu_gbtrf(n: int, kl: int, ku: int, *,
                   batch: int = DEFAULT_BATCH,
                   spec: CpuSpec = XEON_6140) -> float:
    """Modeled seconds of the CPU baseline's batched factorization."""
    return cpu_gbtrf_time(spec, n, n, kl, ku, batch)


def time_cpu_gbtrs(n: int, kl: int, ku: int, nrhs: int, *,
                   batch: int = DEFAULT_BATCH,
                   spec: CpuSpec = XEON_6140) -> float:
    """Modeled seconds of the CPU baseline's batched solve."""
    return cpu_gbtrs_time(spec, n, kl, ku, nrhs, batch)


def time_cpu_gbsv(n: int, kl: int, ku: int, nrhs: int, *,
                  batch: int = DEFAULT_BATCH,
                  spec: CpuSpec = XEON_6140) -> float:
    """Modeled seconds of the CPU baseline's batched factorize-and-solve."""
    return cpu_gbsv_time(spec, n, kl, ku, nrhs, batch)
