"""Benchmark harness: modeled timings of the batched routines.

The harness evaluates the *timing model* of every design at the paper's
workload scale (batches of 1000 in double precision) without functionally
executing all 1000 factorizations — the drivers run with ``execute=False``
(kernel resource declarations and the occupancy/cost model are exercised;
numerical correctness is covered separately by the test suite and by each
benchmark's small functional sample).  Times are returned in seconds; the
report layer converts to the paper's milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..band.layout import ldab_for_factor
from ..core.gbsv import gbsv_batch
from ..core.gbtrf import gbtrf_batch
from ..core.gbtrs import gbtrs_batch
from ..cpu.costmodel import XEON_6140, CpuSpec, cpu_gbsv_time, cpu_gbtrf_time, cpu_gbtrs_time
from ..errors import SharedMemoryError
from ..gpusim.device import DeviceSpec
from ..gpusim.stream import Stream
from ..types import Trans

__all__ = [
    "DEFAULT_BATCH", "shape_only_batch", "time_gbtrf", "time_gbtrs",
    "time_gbsv", "time_cpu_gbtrf", "time_cpu_gbtrs", "time_cpu_gbsv",
]

# The paper's evaluation batch size.
DEFAULT_BATCH = 1000


def shape_only_batch(n: int, kl: int, ku: int, batch: int,
                     dtype=np.float64, nrhs: int | None = None):
    """Build a timing-only batch: one tiny real allocation shared by all.

    With ``execute=False`` kernels only read shapes/dtypes and the batch
    length, so a single matrix aliased ``batch`` times is enough to drive
    the full timing model without allocating 1000 real matrices.
    """
    ab = np.zeros((ldab_for_factor(kl, ku), n), dtype=dtype)
    mats = [ab] * batch
    if nrhs is None:
        return mats
    b = np.zeros((n, max(nrhs, 1)), dtype=dtype)
    return mats, [b] * batch


def time_gbtrf(device: DeviceSpec, n: int, kl: int, ku: int, *,
               batch: int = DEFAULT_BATCH, method: str = "auto",
               nb: int | None = None, threads: int | None = None,
               dtype=np.float64) -> float:
    """Modeled seconds of one batched factorization; raises
    :class:`~repro.errors.SharedMemoryError` when the design cannot launch
    (the paper's fused kernel "failing to run" at large sizes)."""
    mats = shape_only_batch(n, kl, ku, batch, dtype)
    stream = Stream(device)
    gbtrf_batch(n, n, kl, ku, mats, None, None, batch=batch, device=device,
                stream=stream, method=method, nb=nb, threads=threads,
                execute=False)
    return stream.synchronize()


def time_gbtrs(device: DeviceSpec, n: int, kl: int, ku: int, nrhs: int, *,
               batch: int = DEFAULT_BATCH, method: str = "auto",
               nb: int | None = None, threads: int | None = None,
               dtype=np.float64) -> float:
    """Modeled seconds of one batched triangular solve."""
    mats, rhs = shape_only_batch(n, kl, ku, batch, dtype, nrhs=nrhs)
    pivots = [np.zeros(n, dtype=np.int64)] * batch
    stream = Stream(device)
    gbtrs_batch(Trans.NO_TRANS, n, kl, ku, nrhs, mats, pivots, rhs,
                batch=batch, device=device, stream=stream, method=method,
                nb=nb, threads=threads, execute=False)
    return stream.synchronize()


def time_gbsv(device: DeviceSpec, n: int, kl: int, ku: int, nrhs: int, *,
              batch: int = DEFAULT_BATCH, method: str = "auto",
              dtype=np.float64) -> float:
    """Modeled seconds of one batched factorize-and-solve."""
    mats, rhs = shape_only_batch(n, kl, ku, batch, dtype, nrhs=nrhs)
    stream = Stream(device)
    gbsv_batch(n, kl, ku, nrhs, mats, None, rhs, batch=batch, device=device,
               stream=stream, method=method, execute=False)
    return stream.synchronize()


def time_cpu_gbtrf(n: int, kl: int, ku: int, *,
                   batch: int = DEFAULT_BATCH,
                   spec: CpuSpec = XEON_6140) -> float:
    """Modeled seconds of the CPU baseline's batched factorization."""
    return cpu_gbtrf_time(spec, n, n, kl, ku, batch)


def time_cpu_gbtrs(n: int, kl: int, ku: int, nrhs: int, *,
                   batch: int = DEFAULT_BATCH,
                   spec: CpuSpec = XEON_6140) -> float:
    """Modeled seconds of the CPU baseline's batched solve."""
    return cpu_gbtrs_time(spec, n, kl, ku, nrhs, batch)


def time_cpu_gbsv(n: int, kl: int, ku: int, nrhs: int, *,
                  batch: int = DEFAULT_BATCH,
                  spec: CpuSpec = XEON_6140) -> float:
    """Modeled seconds of the CPU baseline's batched factorize-and-solve."""
    return cpu_gbsv_time(spec, n, kl, ku, nrhs, batch)
