"""Concurrent-stream execution model (the streamed baseline of Figure 1).

Before dedicated batch kernels existed, the standard way to process a batch
was to launch one single-matrix kernel per problem, round-robin across a set
of streams.  Two mechanisms limit that approach, both modeled here:

1. **Host-side launch serialisation** — every launch costs the host the
   driver dispatch time regardless of which stream it targets.
2. **Bounded device concurrency** — the device executes at most
   ``concurrent_kernels`` kernels at once, and a small single-matrix kernel
   cannot fill the device on its own.
3. **Shared DRAM bandwidth** — concurrent kernels still share one memory
   system, so the makespan can never beat the total traffic divided by the
   sustained bandwidth (this is what makes streamed and batched execution
   converge for large matrices in Figure 1).

The executor is a small event-driven simulation: launches are dispatched in
submission order, each stream is in-order, and a device-wide slot pool caps
cross-stream overlap.  ``run_streamed`` returns the makespan, directly
comparable with a dedicated batch kernel's single-launch time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import Kernel

__all__ = ["StreamedResult", "run_streamed"]


@dataclass(frozen=True)
class StreamedResult:
    """Outcome of a streamed (one-kernel-per-problem) execution."""

    makespan: float          # seconds until the last kernel drains
    host_time: float         # host time spent issuing launches
    launches: int
    streams: int

    @property
    def device_bound(self) -> bool:
        """True when device concurrency (not host dispatch) set the makespan."""
        return self.makespan > self.host_time * 1.001


def run_streamed(device: DeviceSpec, kernels: list[Kernel], *,
                 num_streams: int = 16, execute: bool = False,
                 dispatch_cost: float | None = None) -> StreamedResult:
    """Execute kernels round-robin over ``num_streams`` concurrent streams.

    Parameters
    ----------
    kernels:
        One kernel per problem, issued in order to stream ``i % num_streams``.
    execute:
        Also run the kernels functionally (default off: the streamed
        baseline is usually timing-only in the benchmarks).
    dispatch_cost:
        Host seconds per launch; defaults to the device's launch overhead
        (the driver call itself).

    Returns
    -------
    StreamedResult with the simulated makespan.
    """
    if num_streams < 1:
        raise ValueError(f"num_streams must be >= 1, got {num_streams}")
    dispatch = device.launch_overhead if dispatch_cost is None else dispatch_cost
    slots = max(1, min(device.concurrent_kernels, num_streams))

    host = 0.0
    stream_tail = [0.0] * num_streams
    running: list[float] = []          # end times of in-flight kernels
    makespan = 0.0
    total_dram = 0.0

    for i, kernel in enumerate(kernels):
        if execute:
            from ..gpusim.kernel import launch
            launch(device, kernel, execute=True)
        timing = kernel.timing(device)
        exec_time = timing.exec_time
        total_dram += kernel.grid() * kernel.block_cost().dram_traffic
        s = i % num_streams
        host += dispatch
        start = max(host, stream_tail[s])
        # Wait for a device slot if all concurrent-kernel slots are busy.
        while len(running) >= slots and running[0] <= start:
            heapq.heappop(running)
        if len(running) >= slots:
            start = max(start, running[0])
            while running and running[0] <= start:
                heapq.heappop(running)
        end = start + exec_time
        heapq.heappush(running, end)
        stream_tail[s] = end
        makespan = max(makespan, end)

    # Concurrent kernels share one memory system: the makespan cannot beat
    # the aggregate traffic at sustained bandwidth.
    makespan = max(makespan, total_dram / device.dram_bandwidth)
    return StreamedResult(makespan=makespan, host_time=host,
                          launches=len(kernels), streams=num_streams)
