"""Command-line entry point: regenerate the paper's exhibits.

Usage::

    python -m repro.bench                 # everything
    python -m repro.bench fig3 table1     # selected exhibits
    python -m repro.bench --list

Prints each exhibit as a plain-text table (the same renderings the
benchmark suite archives under ``benchmarks/results/``).
"""

from __future__ import annotations

import argparse
import sys

from . import (
    ablation_gbsv_cutoff,
    ablation_threads,
    ablation_window_launch,
    bandwidth_gemv,
    fig1_gemm,
    fig1_gemv,
    fig3,
    fig5,
    fig7,
    fig8,
    fig9,
    format_figure,
    format_speedup_table,
    table1,
    table2,
    table3,
)


def _bandwidth_text() -> str:
    bw = bandwidth_gemv()
    return "\n".join([
        "Section 8: sustained GEMV bandwidth",
        f"  h100-pcie : {bw['h100-pcie'] / 1e12:.2f} TB/s (paper 1.92)",
        f"  mi250x-gcd: {bw['mi250x-gcd'] / 1e12:.2f} TB/s (paper 1.31)",
        f"  ratio     : {bw['h100-pcie'] / bw['mi250x-gcd']:.2f}x "
        f"(paper 1.47x)"])


EXHIBITS = {
    "fig1": lambda: "\n\n".join([
        format_figure(fig1_gemm(), unit="ratio"),
        format_figure(fig1_gemv(), unit="ratio")]),
    "fig3": lambda: "\n\n".join(
        format_figure(fig3(kl, ku)) for kl, ku in ((2, 3), (10, 7))),
    "fig5": lambda: "\n\n".join(
        format_figure(fig5(kl, ku)) for kl, ku in ((2, 3), (10, 7))),
    "fig7": lambda: "\n\n".join(
        format_figure(fig7(kl, ku)) for kl, ku in ((2, 3), (10, 7))),
    "fig8": lambda: "\n\n".join(
        format_figure(fig8(kl, ku)) for kl, ku in ((2, 3), (10, 7))),
    "fig9": lambda: "\n\n".join(
        format_figure(fig9(kl, ku)) for kl, ku in ((2, 3), (10, 7))),
    "table1": lambda: format_speedup_table(
        "Table 1: GBTRF speedup vs mkl+openmp", table1()),
    "table2": lambda: format_speedup_table(
        "Table 2: GBSV speedup, 1 RHS", table2()),
    "table3": lambda: format_speedup_table(
        "Table 3: GBSV speedup, 10 RHS", table3()),
    "bandwidth": _bandwidth_text,
    "ablations": lambda: "\n\n".join([
        format_figure(ablation_window_launch()),
        format_figure(ablation_gbsv_cutoff(), unit="ratio"),
        format_figure(ablation_threads())]),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the figures and tables of the paper's "
                    "evaluation (calibrated simulation model).")
    parser.add_argument("exhibits", nargs="*",
                        help=f"subset of: {', '.join(EXHIBITS)}; "
                             "default all")
    parser.add_argument("--list", action="store_true",
                        help="list available exhibits and exit")
    args = parser.parse_args(argv)

    if args.list:
        print("\n".join(EXHIBITS))
        return 0
    selected = args.exhibits or list(EXHIBITS)
    unknown = [name for name in selected if name not in EXHIBITS]
    if unknown:
        parser.error(f"unknown exhibit(s): {', '.join(unknown)}; "
                     f"choose from {', '.join(EXHIBITS)}")
    for i, name in enumerate(selected):
        if i:
            print("\n" + "=" * 78 + "\n")
        print(EXHIBITS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
