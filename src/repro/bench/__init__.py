"""Benchmark harness: regenerates every figure and table of the paper."""

from .figures import (
    BANDS,
    FIG7_SIZES,
    PAPER_SIZES,
    ablation_gbsv_cutoff,
    ablation_staging,
    ablation_threads,
    ablation_window_launch,
    bandwidth_gemv,
    fig1_gemm,
    fig1_gemv,
    fig3,
    fig5,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
    table3,
)
from .harness import (
    DEFAULT_BATCH,
    WallClock,
    time_cpu_gbsv,
    time_cpu_gbtrf,
    time_cpu_gbtrs,
    time_gbsv,
    time_gbtrf,
    time_gbtrs,
    wallclock_gbtrf_paths,
    wallclock_vbatch_paths,
)
from .report import FigureResult, Series, SpeedupRow, format_figure, format_speedup_table, geomean
from .streams import StreamedResult, run_streamed

__all__ = [
    "BANDS", "DEFAULT_BATCH", "FIG7_SIZES", "FigureResult", "PAPER_SIZES",
    "Series", "SpeedupRow", "StreamedResult",
    "ablation_gbsv_cutoff", "ablation_staging", "ablation_threads",
    "ablation_window_launch",
    "bandwidth_gemv",
    "fig1_gemm", "fig1_gemv", "fig3", "fig5", "fig7", "fig8", "fig9",
    "format_figure", "format_speedup_table", "geomean", "run_streamed",
    "table1", "table2", "table3",
    "time_cpu_gbsv", "time_cpu_gbtrf", "time_cpu_gbtrs",
    "time_gbsv", "time_gbtrf", "time_gbtrs",
    "WallClock", "wallclock_gbtrf_paths", "wallclock_vbatch_paths",
]
