"""Drivers regenerating every figure and table of the paper's evaluation.

Each ``fig*``/``table*`` function reproduces one exhibit:

========  ==================================================================
fig1      batched vs 16-stream GEMM / GEMV (batch 500, H100)
fig3      fully fused GBTRF vs CPU, (2,3) and (10,7), batch 1000
fig5      final (dispatched) GBTRF vs CPU
table1    GBTRF speedups vs CPU (min/max/avg)
fig7      fused GBSV vs standard GBTRF+GBTRS, small sizes
fig8      final GBSV, 1 RHS
table2    GBSV 1-RHS speedups
fig9      final GBSV, 10 RHS
table3    GBSV 10-RHS speedups
bandwidth sustained GEMV bandwidth (Section 8's 1.92 / 1.31 TB/s)
========  ==================================================================

Times are the calibrated model (see DESIGN.md Section 2); a failed launch
(fused kernel out of shared memory) is reported as NaN, matching the paper's
truncated curves.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import SharedMemoryError
from ..gpusim.blas_kernels import BatchedGemmKernel, BatchedGemvKernel, GemmKernel, GemvKernel
from ..gpusim.device import H100_PCIE, MI250X_GCD, DeviceSpec
from .harness import (
    DEFAULT_BATCH,
    time_cpu_gbsv,
    time_cpu_gbtrf,
    time_gbsv,
    time_gbtrf,
)
from .report import FigureResult, SpeedupRow
from .streams import run_streamed

__all__ = [
    "PAPER_SIZES", "FIG7_SIZES", "BANDS",
    "fig1_gemm", "fig1_gemv", "fig3", "fig5", "fig7", "fig8", "fig9",
    "table1", "table2", "table3", "bandwidth_gemv",
    "ablation_window_launch", "ablation_gbsv_cutoff", "ablation_staging",
    "ablation_threads",
]

# The paper's figures sweep square sizes up to ~1000; we use a regular grid
# to 1024 that includes the MI250x occupancy-drop sizes 416/448.
PAPER_SIZES = [32, 64, 128, 192, 256, 320, 384, 416, 448, 512, 576,
               640, 704, 768, 832, 896, 960, 1024]
FIG7_SIZES = list(range(8, 129, 8))
BANDS = [(2, 3), (10, 7)]

# Paper-reported speedup bands (min, max, avg) for Tables 1-3.
PAPER_TABLE1 = {("h100-pcie", (2, 3)): (2.13, 3.43, 3.07),
                ("h100-pcie", (10, 7)): (3.07, 4.27, 3.56),
                ("mi250x-gcd", (2, 3)): (1.67, 2.32, 1.88),
                ("mi250x-gcd", (10, 7)): (0.96, 2.01, 1.16)}
PAPER_TABLE2 = {("h100-pcie", (2, 3)): (2.23, 3.58, 2.54),
                ("h100-pcie", (10, 7)): (2.79, 4.65, 3.03),
                ("mi250x-gcd", (2, 3)): (1.22, 2.58, 1.59),
                ("mi250x-gcd", (10, 7)): (0.92, 1.66, 1.11)}
PAPER_TABLE3 = {("h100-pcie", (2, 3)): (3.33, 4.85, 3.69),
                ("h100-pcie", (10, 7)): (4.12, 7.67, 4.64),
                ("mi250x-gcd", (2, 3)): (1.40, 2.11, 1.57),
                ("mi250x-gcd", (10, 7)): (1.42, 3.41, 1.61)}

_DEVICES = [(H100_PCIE, "H100"), (MI250X_GCD, "MI250x")]


def _maybe(fn) -> float:
    """Evaluate a timing; NaN when the kernel cannot launch."""
    try:
        return fn()
    except SharedMemoryError:
        return float("nan")


# --- Figure 1 ---------------------------------------------------------------

def fig1_gemm(sizes=None, *, batch: int = 500,
              device: DeviceSpec = H100_PCIE,
              num_streams: int = 16) -> FigureResult:
    """Batched DGEMM vs 16-stream concurrent execution (Figure 1 top).

    Returns the *speedup* series (the paper plots it as speedup)."""
    sizes = sizes or [32, 64, 128, 192, 256, 320, 384, 448, 512, 640, 768,
                      896, 1024]
    speedups = []
    for n in sizes:
        # Timing-only: zero-copy broadcast views stand in for the batch.
        one_mat = np.zeros((n, n))
        a = np.broadcast_to(one_mat, (batch, n, n))
        batched = BatchedGemmKernel(a, a, a)
        t_batched = batched.timing(device).total
        one = GemmKernel(one_mat, one_mat, one_mat)
        t_streamed = run_streamed(device, [one] * batch,
                                  num_streams=num_streams).makespan
        speedups.append(t_streamed / t_batched)
    fig = FigureResult(
        title=f"Figure 1 (top): batch dgemm speedup over {num_streams} "
              f"streams, batch={batch}, {device.name}",
        xlabel="n", xs=sizes)
    fig.add("speedup", speedups)
    return fig


def fig1_gemv(sizes=None, *, batch: int = 500,
              device: DeviceSpec = H100_PCIE,
              num_streams: int = 16) -> FigureResult:
    """Batched DGEMV vs 16-stream concurrent execution (Figure 1 bottom)."""
    sizes = sizes or [32, 64, 128, 192, 256, 320, 384, 448, 512, 640, 768,
                      896, 1024]
    speedups = []
    for n in sizes:
        # Timing-only: zero-copy broadcast views stand in for the batch.
        one_mat = np.zeros((n, n))
        one_vec = np.zeros(n)
        a = np.broadcast_to(one_mat, (batch, n, n))
        x = np.broadcast_to(one_vec, (batch, n))
        batched = BatchedGemvKernel(a, x, x)
        t_batched = batched.timing(device).total
        one = GemvKernel(one_mat, one_vec, one_vec)
        t_streamed = run_streamed(device, [one] * batch,
                                  num_streams=num_streams).makespan
        speedups.append(t_streamed / t_batched)
    fig = FigureResult(
        title=f"Figure 1 (bottom): batch dgemv speedup over {num_streams} "
              f"streams, batch={batch}, {device.name}",
        xlabel="n", xs=sizes)
    fig.add("speedup", speedups)
    return fig


# --- Figures 3 and 5 (GBTRF) ------------------------------------------------

def _gbtrf_figure(kl: int, ku: int, method: str, title: str, *,
                  sizes=None, batch: int = DEFAULT_BATCH) -> FigureResult:
    sizes = sizes or PAPER_SIZES
    fig = FigureResult(title=title, xlabel="n", xs=sizes)
    for dev, label in _DEVICES:
        fig.add(label, [
            _maybe(lambda n=n: time_gbtrf(dev, n, kl, ku, batch=batch,
                                          method=method))
            for n in sizes])
    fig.add("mkl+openmp", [time_cpu_gbtrf(n, kl, ku, batch=batch)
                           for n in sizes])
    return fig


def fig3(kl: int = 2, ku: int = 3, *, sizes=None,
         batch: int = DEFAULT_BATCH) -> FigureResult:
    """Fully fused band LU vs the CPU baseline (Figure 3)."""
    return _gbtrf_figure(
        kl, ku, "fused",
        f"Figure 3: fully fused GBTRF, (kl,ku)=({kl},{ku}), batch={batch}",
        sizes=sizes, batch=batch)


def fig5(kl: int = 2, ku: int = 3, *, sizes=None,
         batch: int = DEFAULT_BATCH) -> FigureResult:
    """Final dispatched band LU (fused + sliding window) vs CPU (Figure 5)."""
    return _gbtrf_figure(
        kl, ku, "auto",
        f"Figure 5: final GBTRF, (kl,ku)=({kl},{ku}), batch={batch}",
        sizes=sizes, batch=batch)


# --- Figures 7, 8, 9 (GBSV) -------------------------------------------------

def fig7(kl: int = 2, ku: int = 3, *, sizes=None,
         batch: int = DEFAULT_BATCH) -> FigureResult:
    """Fused GBSV vs standard factorize-then-solve, small sizes (Figure 7)."""
    sizes = sizes or FIG7_SIZES
    fig = FigureResult(
        title=f"Figure 7: fused vs standard GBSV, (kl,ku)=({kl},{ku}), "
              f"1 RHS, batch={batch}",
        xlabel="n", xs=sizes)
    for dev, label in _DEVICES:
        fig.add(f"Fused-{label}", [
            _maybe(lambda n=n: time_gbsv(dev, n, kl, ku, 1, batch=batch,
                                         method="fused"))
            for n in sizes])
        fig.add(f"Std-{label}", [
            time_gbsv(dev, n, kl, ku, 1, batch=batch, method="standard")
            for n in sizes])
    return fig


def _gbsv_figure(kl: int, ku: int, nrhs: int, *, sizes=None,
                 batch: int = DEFAULT_BATCH) -> FigureResult:
    sizes = sizes or PAPER_SIZES
    fig = FigureResult(
        title=f"GBSV, (kl,ku)=({kl},{ku}), nrhs={nrhs}, batch={batch}",
        xlabel="n", xs=sizes)
    for dev, label in _DEVICES:
        fig.add(label, [
            _maybe(lambda n=n: time_gbsv(dev, n, kl, ku, nrhs, batch=batch))
            for n in sizes])
    fig.add("mkl+openmp", [time_cpu_gbsv(n, kl, ku, nrhs, batch=batch)
                           for n in sizes])
    return fig


def fig8(kl: int = 2, ku: int = 3, *, sizes=None,
         batch: int = DEFAULT_BATCH) -> FigureResult:
    """Final GBSV, single right-hand side (Figure 8)."""
    fig = _gbsv_figure(kl, ku, 1, sizes=sizes, batch=batch)
    fig.title = "Figure 8: " + fig.title
    return fig


def fig9(kl: int = 2, ku: int = 3, *, sizes=None,
         batch: int = DEFAULT_BATCH) -> FigureResult:
    """Final GBSV, ten right-hand sides (Figure 9)."""
    fig = _gbsv_figure(kl, ku, 10, sizes=sizes, batch=batch)
    fig.title = "Figure 9: " + fig.title
    return fig


# --- Tables 1-3 -------------------------------------------------------------

def _speedup_rows(time_gpu, time_cpu, paper) -> list[SpeedupRow]:
    rows = []
    for dev, label in _DEVICES:
        for kl, ku in BANDS:
            sp = []
            for n in PAPER_SIZES:
                try:
                    g = time_gpu(dev, n, kl, ku)
                except SharedMemoryError:
                    continue
                sp.append(time_cpu(n, kl, ku) / g)
            pm = paper[(dev.name, (kl, ku))]
            rows.append(SpeedupRow(
                label=f"{label} (kl,ku)=({kl},{ku})", speedups=sp,
                paper_min=pm[0], paper_max=pm[1], paper_avg=pm[2]))
    return rows


def table1(*, batch: int = DEFAULT_BATCH) -> list[SpeedupRow]:
    """Table 1: batch band LU speedups vs the parallel CPU solution."""
    return _speedup_rows(
        lambda d, n, kl, ku: time_gbtrf(d, n, kl, ku, batch=batch),
        lambda n, kl, ku: time_cpu_gbtrf(n, kl, ku, batch=batch),
        PAPER_TABLE1)


def table2(*, batch: int = DEFAULT_BATCH) -> list[SpeedupRow]:
    """Table 2: GBSV speedups, single RHS."""
    return _speedup_rows(
        lambda d, n, kl, ku: time_gbsv(d, n, kl, ku, 1, batch=batch),
        lambda n, kl, ku: time_cpu_gbsv(n, kl, ku, 1, batch=batch),
        PAPER_TABLE2)


def table3(*, batch: int = DEFAULT_BATCH) -> list[SpeedupRow]:
    """Table 3: GBSV speedups, ten RHS."""
    return _speedup_rows(
        lambda d, n, kl, ku: time_gbsv(d, n, kl, ku, 10, batch=batch),
        lambda n, kl, ku: time_cpu_gbsv(n, kl, ku, 10, batch=batch),
        PAPER_TABLE3)


# --- Section 8: sustained bandwidth ----------------------------------------

def bandwidth_gemv(n: int = 32768, *,
                   devices=None) -> dict[str, float]:
    """Sustained GEMV bandwidth per device, bytes/s (Section 8).

    The paper estimates the sustained peak memory bandwidth by running very
    large dense matrix-vector products; we reproduce the measurement
    against the model and report bytes moved / execution time.
    """
    out = {}
    for dev, _ in (devices or _DEVICES):
        a = np.broadcast_to(np.zeros(n, dtype=np.float64), (n, n))
        x = np.zeros(n)
        k = GemvKernel(a, x, x.copy())
        t = k.timing(dev)
        total_bytes = k.grid() * k.block_cost().dram_traffic
        out[dev.name] = total_bytes / t.exec_time
    return out


# --- Ablations (design choices called out in DESIGN.md) ---------------------

def ablation_window_launch(kl: int = 2, ku: int = 3, *, sizes=None,
                           batch: int = DEFAULT_BATCH,
                           device: DeviceSpec = H100_PCIE) -> FigureResult:
    """Window shifting inside one kernel vs one kernel per block-column.

    Section 5.3: "These iterations can translate into either multiple
    kernel calls, or multiple iterations inside the same kernel ...  The
    latter approach has the better performance overall, since it avoids the
    kernel launch overheads, as well as some redundant global memory
    traffic."  The multi-launch variant pays one launch per ``nb`` columns
    plus re-reading the ``kv + 1`` overlap columns every call.
    """
    from ..band.layout import BandLayout
    from ..tuning.defaults import window_params
    sizes = sizes or PAPER_SIZES
    nb, threads = window_params(device, kl, ku)
    single, multi = [], []
    for n in sizes:
        t = time_gbtrf(device, n, kl, ku, batch=batch, method="window")
        single.append(t)
        layout = BandLayout(n, n, kl, ku)
        iters = math.ceil(n / nb)
        relaunch = (iters - 1) * device.launch_overhead
        reread = (iters - 1) * (layout.window_cols(nb) - nb) \
            * layout.window_rows() * 8 * batch / device.dram_bandwidth
        multi.append(t + relaunch + reread)
    fig = FigureResult(
        title=f"Ablation: in-kernel window shift vs one kernel per block "
              f"column, (kl,ku)=({kl},{ku}), {device.name}",
        xlabel="n", xs=sizes)
    fig.add("in-kernel shift", single)
    fig.add("kernel per block", multi)
    return fig


def ablation_gbsv_cutoff(kl: int = 2, ku: int = 3, *,
                         batch: int = DEFAULT_BATCH) -> FigureResult:
    """Sensitivity of the fused-GBSV cutoff (Section 7's order-64 choice)."""
    sizes = FIG7_SIZES
    fig = FigureResult(
        title=f"Ablation: fused GBSV cutoff sensitivity, "
              f"(kl,ku)=({kl},{ku})",
        xlabel="n", xs=sizes)
    for dev, label in _DEVICES:
        ratio = []
        for n in sizes:
            f = _maybe(lambda: time_gbsv(dev, n, kl, ku, 1, batch=batch,
                                         method="fused"))
            s = time_gbsv(dev, n, kl, ku, 1, batch=batch, method="standard")
            ratio.append(f / s)
        fig.add(f"fused/std-{label}", ratio)
    fig.notes.append("ratio < 1 means the fused kernel wins; the paper "
                     "enables it for order <= 64")
    return fig


def ablation_staging(kl: int = 2, ku: int = 3, *, nrhs: int = 1,
                     sizes=None, batch: int = DEFAULT_BATCH,
                     device: DeviceSpec = H100_PCIE) -> FigureResult:
    """Kernel-only GBSV time vs end-to-end including host staging.

    The paper reports kernel-only times (batches resident on the device).
    Applications that re-upload every batch — ReactEval re-forms its
    Newton matrices each iteration — pay the interconnect as well; this
    ablation quantifies how much of the GPU advantage staging consumes.
    """
    from ..gpusim.transfer import batch_upload_time, transfer_time
    sizes = sizes or PAPER_SIZES
    kernel_only, end_to_end = [], []
    for n in sizes:
        t = time_gbsv(device, n, kl, ku, nrhs, batch=batch)
        kernel_only.append(t)
        stage = batch_upload_time(device, batch=batch, n=n, kl=kl, ku=ku,
                                  nrhs=nrhs)
        download = transfer_time(device, batch * n * nrhs * 8,
                                 direction="d2h")
        end_to_end.append(t + stage + download)
    fig = FigureResult(
        title=f"Ablation: kernel-only vs staged GBSV, "
              f"(kl,ku)=({kl},{ku}), {device.name}",
        xlabel="n", xs=sizes)
    fig.add("kernel only", kernel_only)
    fig.add("with staging", end_to_end)
    return fig


def ablation_threads(kl: int = 10, ku: int = 7, *, n: int = 512,
                     batch: int = DEFAULT_BATCH,
                     device: DeviceSpec = H100_PCIE) -> FigureResult:
    """Threads-per-matrix sensitivity of the sliding window (Section 5.3)."""
    candidates = sorted({kl + 1, 16, 32, 64, 96, 128, 192, 256})
    candidates = [t for t in candidates if t >= kl + 1]
    times = [
        _maybe(lambda t=t: time_gbtrf(device, n, kl, ku, batch=batch,
                                      method="window", threads=t))
        for t in candidates]
    fig = FigureResult(
        title=f"Ablation: threads per matrix, window GBTRF, "
              f"(kl,ku)=({kl},{ku}), n={n}, {device.name}",
        xlabel="threads", xs=candidates)
    fig.add("time", times)
    return fig
