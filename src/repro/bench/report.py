"""Plain-text rendering of benchmark results (the paper's figures as tables).

Every figure of the paper is a set of time-vs-size series; the report layer
prints them as aligned columns in milliseconds plus, for the speedup tables,
a paper-vs-measured comparison block.  Keeping this as text (no plotting
dependency) makes the benchmark output diffable and testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import math

__all__ = ["Series", "FigureResult", "SpeedupRow", "format_figure",
           "format_speedup_table", "geomean"]


def geomean(values) -> float:
    """Geometric mean of the positive entries (NaN when none)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return float("nan")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


@dataclass
class Series:
    """One curve of a figure: a label and a time per x-value (seconds)."""

    label: str
    times: list[float]

    def ms(self, i: int) -> float:
        return self.times[i] * 1e3


@dataclass
class FigureResult:
    """A reproduced figure: x-axis sizes and one or more series."""

    title: str
    xlabel: str
    xs: list[int]
    series: list[Series] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, label: str, times) -> "FigureResult":
        times = list(times)
        if len(times) != len(self.xs):
            raise ValueError(
                f"series {label!r} has {len(times)} points, "
                f"figure has {len(self.xs)} x-values")
        self.series.append(Series(label, times))
        return self

    def series_by_label(self, label: str) -> Series:
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(label)


@dataclass
class SpeedupRow:
    """One row of a speedup summary table (paper Tables 1-3)."""

    label: str
    speedups: list[float]
    paper_min: float | None = None
    paper_max: float | None = None
    paper_avg: float | None = None

    @property
    def min(self) -> float:
        return min(self.speedups)

    @property
    def max(self) -> float:
        return max(self.speedups)

    @property
    def avg(self) -> float:
        return sum(self.speedups) / len(self.speedups)


def format_figure(fig: FigureResult, *, unit: str = "ms") -> str:
    """Render a figure as an aligned table.

    ``unit`` of ``"ratio"`` prints the values unscaled (for speedup
    figures like Figure 1)."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6, "ratio": 1.0}[unit]
    width = max(12, max((len(s.label) for s in fig.series), default=12) + 2)
    lines = [fig.title,
             f"{fig.xlabel:>8} " + "".join(f"{s.label:>{width}}"
                                           for s in fig.series)]
    for i, x in enumerate(fig.xs):
        row = f"{x:>8d} "
        for s in fig.series:
            t = s.times[i]
            cell = "     failed" if (t != t or t == float("inf")) \
                else f"{t * scale:.4f}"
            row += f"{cell:>{width}}"
        lines.append(row)
    for note in fig.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def format_speedup_table(title: str, rows: list[SpeedupRow]) -> str:
    """Render a Tables-1/2/3-style min/max/avg summary with paper values."""
    header = (f"{'config':<24} {'min':>6} {'max':>6} {'avg':>6}"
              f" | {'paper min':>9} {'paper max':>9} {'paper avg':>9}")
    lines = [title, header, "-" * len(header)]
    for r in rows:
        paper = (f" | {r.paper_min:>9.2f} {r.paper_max:>9.2f} "
                 f"{r.paper_avg:>9.2f}"
                 if r.paper_min is not None else " |" + " " * 30)
        lines.append(f"{r.label:<24} {r.min:>6.2f} {r.max:>6.2f} "
                     f"{r.avg:>6.2f}{paper}")
    return "\n".join(lines)
