"""Timing model of the paper's CPU baseline (Xeon 6140, MKL + OpenMP).

The baseline factors/solves the batch with one LAPACK call per matrix,
OpenMP-parallel over the batch on 18 Skylake cores.  The per-matrix model
is the classical ``overhead + columns x per-column work`` shape of the
unblocked band factorization MKL uses for thin bands; batch time divides by
the cores at a fixed parallel efficiency (thread scheduling, NUMA and
memory-bandwidth sharing keep it below 1).

Constants are calibration knobs fitted so the harness lands inside the
paper's reported speedup bands (Tables 1-3); see EXPERIMENTS.md.  The
*measured* functional CPU path (scipy's real LAPACK) is independent of this
model — this module only supplies the simulated clock for the figures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .threading import XEON_6140_CORES

__all__ = ["CpuSpec", "XEON_6140", "cpu_gbtrf_time", "cpu_gbtrs_time",
           "cpu_gbsv_time"]


@dataclass(frozen=True)
class CpuSpec:
    """Calibrated description of a multicore CPU baseline.

    Attributes
    ----------
    cores:
        OpenMP team size.
    parallel_efficiency:
        Sustained fraction of linear speedup over the batch loop.
    call_overhead:
        Per-LAPACK-call fixed cost, seconds (dispatch + argument checks).
    column_cost:
        Per-column fixed cost of the factorization loop, seconds (pivot
        search, pointer arithmetic, loop control).
    flop_time:
        Seconds per flop of band arithmetic (inverse of the effective
        scalar rate on thin-band kernels; far below peak because the
        per-column vectors are tiny).
    rhs_column_cost / rhs_flop_time:
        Same two constants for the triangular solves.
    rhs_vector_efficiency:
        Incremental cost of each additional right-hand side relative to
        the first (SIMD over the RHS block makes it < 1).
    batch_overhead:
        Fixed cost of one batched call (OpenMP fork/join).
    """

    name: str = "xeon-6140"
    cores: int = XEON_6140_CORES
    parallel_efficiency: float = 0.72
    call_overhead: float = 8.0e-7
    column_cost: float = 2.4e-8
    flop_time: float = 1.0e-10
    rhs_column_cost: float = 4.0e-9
    rhs_flop_time: float = 3.4e-10
    rhs_vector_efficiency: float = 0.9
    batch_overhead: float = 2.0e-5

    def batch_time(self, per_matrix: float, batch: int) -> float:
        """Divide the serial batch work across the OpenMP team."""
        return (self.batch_overhead
                + batch * per_matrix
                / (self.cores * self.parallel_efficiency))


XEON_6140 = CpuSpec()


def _trf_matrix_time(spec: CpuSpec, m: int, n: int, kl: int,
                     ku: int) -> float:
    mn = min(m, n)
    kv = kl + ku
    flops = mn * (2.0 * kl * (kv + 1) + kl)
    return spec.call_overhead + mn * spec.column_cost + flops * spec.flop_time


def _trs_matrix_time(spec: CpuSpec, n: int, kl: int, ku: int,
                     nrhs: int) -> float:
    kv = kl + ku
    flops_one = n * (2.0 * kl + 2.0 * kv + 1.0)
    rhs_scale = 1.0 + spec.rhs_vector_efficiency * (nrhs - 1)
    return (spec.call_overhead + n * spec.rhs_column_cost
            + flops_one * rhs_scale * spec.rhs_flop_time)


def cpu_gbtrf_time(spec: CpuSpec, m: int, n: int, kl: int, ku: int,
                   batch: int) -> float:
    """Modeled batch band-LU time on the CPU baseline, seconds."""
    return spec.batch_time(_trf_matrix_time(spec, m, n, kl, ku), batch)


def cpu_gbtrs_time(spec: CpuSpec, n: int, kl: int, ku: int, nrhs: int,
                   batch: int) -> float:
    """Modeled batch solve time on the CPU baseline, seconds."""
    return spec.batch_time(_trs_matrix_time(spec, n, kl, ku, nrhs), batch)


def cpu_gbsv_time(spec: CpuSpec, n: int, kl: int, ku: int, nrhs: int,
                  batch: int) -> float:
    """Modeled batch factorize-and-solve time, seconds."""
    per = (_trf_matrix_time(spec, n, n, kl, ku)
           + _trs_matrix_time(spec, n, kl, ku, nrhs))
    return spec.batch_time(per, batch)
