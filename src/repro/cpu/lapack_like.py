"""Single-matrix CPU band routines (the per-thread work of the baseline).

Each batched CPU call runs one of these per matrix.  When scipy's real
LAPACK (MKL-class code) supports the dtype, we call it — exactly what the
paper's "mkl + openmp" baseline does per OpenMP task; otherwise the pure
numpy implementation (bit-identical to LAPACK, see the test suite) is used.
Both paths produce the same factors, pivots, and info codes.
"""

from __future__ import annotations

import numpy as np

from ..core.gbtf2 import gbtf2
from ..core.solve_blocks import gbtrs_unblocked
from ..types import Trans

__all__ = ["cpu_gbtrf_one", "cpu_gbtrs_one", "cpu_gbsv_one"]

try:  # pragma: no cover - import guard
    from scipy.linalg import lapack as _lapack
except ImportError:  # pragma: no cover
    _lapack = None

_TRF = {}
_TRS = {}
if _lapack is not None:
    _TRF = {np.dtype(d): getattr(_lapack, p + "gbtrf")
            for d, p in (("float32", "s"), ("float64", "d"),
                         ("complex64", "c"), ("complex128", "z"))}
    _TRS = {np.dtype(d): getattr(_lapack, p + "gbtrs")
            for d, p in (("float32", "s"), ("float64", "d"),
                         ("complex64", "c"), ("complex128", "z"))}

_TRANS_CODE = {Trans.NO_TRANS: 0, Trans.TRANS: 1, Trans.CONJ_TRANS: 2}


def cpu_gbtrf_one(m: int, n: int, kl: int, ku: int,
                  ab: np.ndarray, ipiv: np.ndarray) -> int:
    """Factor one band matrix in place; returns LAPACK ``info``."""
    fn = _TRF.get(ab.dtype)
    if fn is not None and ab.shape[0] == 2 * kl + ku + 1:
        lu, piv, info = fn(np.asfortranarray(ab), kl, ku, m=m, n=n)
        ab[...] = lu
        ipiv[...] = piv  # scipy returns 0-based pivots
        return int(info)
    _, info = gbtf2(m, n, kl, ku, ab, ipiv)
    return info


def cpu_gbtrs_one(trans: Trans, n: int, kl: int, ku: int, ab: np.ndarray,
                  ipiv: np.ndarray, b: np.ndarray) -> None:
    """Solve one factored band system in place on ``b`` (``(n, nrhs)``)."""
    fn = _TRS.get(ab.dtype)
    if fn is not None and ab.shape[0] == 2 * kl + ku + 1:
        x, info = fn(np.asfortranarray(ab), kl, ku,
                     np.asfortranarray(b), np.asarray(ipiv, dtype=np.int32),
                     trans=_TRANS_CODE[trans])
        b[...] = x
        return
    gbtrs_unblocked(trans, n, kl, ku, ab, ipiv, b)


def cpu_gbsv_one(n: int, kl: int, ku: int, ab: np.ndarray,
                 ipiv: np.ndarray, b: np.ndarray) -> int:
    """Factor and solve one band system; B untouched when singular."""
    info = cpu_gbtrf_one(n, n, kl, ku, ab, ipiv)
    if info == 0:
        cpu_gbtrs_one(Trans.NO_TRANS, n, kl, ku, ab, ipiv, b)
    return info
