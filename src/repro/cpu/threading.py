"""OpenMP-style parallel-for abstraction for the CPU baseline.

The paper's CPU baseline parallelises over the batch with OpenMP on an
18-core Xeon Gold 6140.  This module gives the batched CPU routines the
same shape: a :func:`parallel_for` that partitions the batch into per-thread
chunks.  Execution is functionally serial in-process (numpy releases the
GIL only inside kernels, and this host has a single core anyway); the
thread-level speedup is part of the CPU *cost model*
(:mod:`repro.cpu.costmodel`), matching how GPU time is modeled rather than
measured.  ``schedule`` mirrors OpenMP's static/dynamic chunking so the
partitioning logic itself is real and testable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["CpuPool", "parallel_for", "chunk_ranges"]

# Core count of the paper's CPU baseline (Intel Xeon Gold 6140, Skylake).
XEON_6140_CORES = 18


def chunk_ranges(n: int, nchunks: int, *,
                 schedule: str = "static") -> Iterator[tuple[int, int]]:
    """Yield ``(lo, hi)`` index ranges partitioning ``range(n)``.

    ``static`` deals out contiguous near-equal chunks (OpenMP default);
    ``dynamic`` yields unit-grain chunks for callers that interleave work.
    """
    if n <= 0 or nchunks <= 0:
        return
    if schedule == "dynamic":
        for i in range(n):
            yield i, i + 1
        return
    if schedule != "static":
        raise ValueError(f"unknown schedule {schedule!r}")
    base, extra = divmod(n, nchunks)
    lo = 0
    for t in range(min(nchunks, n)):
        hi = lo + base + (1 if t < extra else 0)
        if hi > lo:
            yield lo, hi
        lo = hi


@dataclass
class CpuPool:
    """A logical OpenMP thread team."""

    num_threads: int = XEON_6140_CORES

    def __post_init__(self):
        if self.num_threads < 1:
            raise ValueError(
                f"num_threads must be >= 1, got {self.num_threads}")

    @classmethod
    def from_env(cls) -> "CpuPool":
        """Honour ``OMP_NUM_THREADS`` like an OpenMP runtime would."""
        n = os.environ.get("OMP_NUM_THREADS")
        return cls(int(n)) if n else cls()

    def parallel_for(self, n: int, body: Callable[[int], None], *,
                     schedule: str = "static") -> None:
        """Run ``body(i)`` for ``i in range(n)``, chunked across the team."""
        for lo, hi in chunk_ranges(n, self.num_threads, schedule=schedule):
            for i in range(lo, hi):
                body(i)


def parallel_for(n: int, body: Callable[[int], None], *,
                 pool: CpuPool | None = None,
                 schedule: str = "static") -> None:
    """Module-level convenience wrapper over :meth:`CpuPool.parallel_for`."""
    (pool or CpuPool()).parallel_for(n, body, schedule=schedule)
