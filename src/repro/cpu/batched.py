"""Batched CPU baseline: OpenMP-over-the-batch LAPACK calls.

This is the "mkl + openmp" competitor of every figure in the paper: the
batch is partitioned across a thread team, each thread factoring/solving
its matrices with ordinary single-matrix LAPACK.  Functional results are
identical to the GPU routines (same LAPACK semantics); modeled times come
from :mod:`repro.cpu.costmodel`.
"""

from __future__ import annotations

import numpy as np

from ..core.batch_args import (
    as_matrix_list,
    as_rhs_list,
    check_gb_args,
    ensure_info,
    ensure_pivots,
)
from ..errors import check_arg
from ..types import Trans
from .costmodel import XEON_6140, CpuSpec, cpu_gbsv_time, cpu_gbtrf_time, cpu_gbtrs_time
from .lapack_like import cpu_gbsv_one, cpu_gbtrf_one, cpu_gbtrs_one
from .threading import CpuPool

__all__ = ["cpu_gbtrf_batch", "cpu_gbtrs_batch", "cpu_gbsv_batch"]


def cpu_gbtrf_batch(m: int, n: int, kl: int, ku: int, a_array,
                    pv_array=None, info=None, *, batch: int | None = None,
                    spec: CpuSpec = XEON_6140, pool: CpuPool | None = None,
                    execute: bool = True):
    """Batch band LU on the CPU baseline.

    Returns ``(pivots, info, modeled_seconds)``.
    """
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(m, n, kl, ku, mats, batch=batch)
    pivots = ensure_pivots(pv_array, batch, min(m, n), arg_pos=7,
                           zero=True)
    info = ensure_info(info, batch, arg_pos=8)
    if execute and batch and min(m, n):
        pool = pool or CpuPool(spec.cores)

        def body(k: int) -> None:
            info[k] = cpu_gbtrf_one(m, n, kl, ku, mats[k], pivots[k])

        pool.parallel_for(batch, body)
    return pivots, info, cpu_gbtrf_time(spec, m, n, kl, ku, batch)


def cpu_gbtrs_batch(trans: Trans | str, n: int, kl: int, ku: int,
                    nrhs: int, a_array, pv_array, b_array, *,
                    batch: int | None = None, spec: CpuSpec = XEON_6140,
                    pool: CpuPool | None = None, execute: bool = True):
    """Batch band solve on the CPU baseline.  Returns ``modeled_seconds``."""
    trans = Trans.from_any(trans)
    check_arg(nrhs >= 0, 5, f"nrhs must be non-negative, got {nrhs}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=6)
    check_gb_args(n, n, kl, ku, mats, batch=batch, ldab_pos=7)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=8)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=9)
    if execute and batch and n and nrhs:
        pool = pool or CpuPool(spec.cores)

        def body(k: int) -> None:
            cpu_gbtrs_one(trans, n, kl, ku, mats[k], pivots[k], rhs[k])

        pool.parallel_for(batch, body)
    return cpu_gbtrs_time(spec, n, kl, ku, nrhs, batch)


def cpu_gbsv_batch(n: int, kl: int, ku: int, nrhs: int, a_array,
                   pv_array, b_array, info=None, *,
                   batch: int | None = None, spec: CpuSpec = XEON_6140,
                   pool: CpuPool | None = None, execute: bool = True):
    """Batch factorize-and-solve on the CPU baseline.

    Returns ``(pivots, info, modeled_seconds)``.
    """
    check_arg(nrhs >= 0, 4, f"nrhs must be non-negative, got {nrhs}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(n, n, kl, ku, mats, batch=batch)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=6, zero=True)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=7)
    info = ensure_info(info, batch, arg_pos=8)
    if execute and batch and n:
        pool = pool or CpuPool(spec.cores)

        def body(k: int) -> None:
            info[k] = cpu_gbsv_one(n, kl, ku, mats[k], pivots[k], rhs[k])

        pool.parallel_for(batch, body)
    return pivots, info, cpu_gbsv_time(spec, n, kl, ku, nrhs, batch)
