"""CPU baseline: the paper's "mkl + openmp" competitor."""

from .batched import cpu_gbsv_batch, cpu_gbtrf_batch, cpu_gbtrs_batch
from .costmodel import XEON_6140, CpuSpec, cpu_gbsv_time, cpu_gbtrf_time, cpu_gbtrs_time
from .lapack_like import cpu_gbsv_one, cpu_gbtrf_one, cpu_gbtrs_one
from .threading import CpuPool, chunk_ranges, parallel_for

__all__ = [
    "XEON_6140", "CpuPool", "CpuSpec", "chunk_ranges",
    "cpu_gbsv_batch", "cpu_gbsv_one", "cpu_gbsv_time",
    "cpu_gbtrf_batch", "cpu_gbtrf_one", "cpu_gbtrf_time",
    "cpu_gbtrs_batch", "cpu_gbtrs_one", "cpu_gbtrs_time",
    "parallel_for",
]
