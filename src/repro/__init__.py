"""repro — batched LU factorization and solve for band matrices.

A reproduction of "GPU-based LU Factorization and Solve on Batches of
Matrices with Band Structure" (Abdelfattah, Tomov, Luszczek, Anzt,
Dongarra — SC-W 2023): LAPACK-conformant GBTRF/GBTRS/GBSV for uniform (and
non-uniform) batches of band matrices, three GPU kernel designs (reference
fork-join, fully fused, sliding window) executing on a simulated GPU with a
calibrated occupancy/bandwidth cost model, a multicore CPU baseline, a
tuning framework, and a benchmark harness regenerating every figure and
table of the paper's evaluation.

Quick start::

    import numpy as np
    from repro import gbsv_batch, random_band_batch, random_rhs

    batch, n, kl, ku = 100, 64, 2, 3
    A = random_band_batch(batch, n, kl, ku, seed=0)
    B = random_rhs(n, 1, batch=batch, seed=1)
    pivots, info = gbsv_batch(n, kl, ku, 1, A, None, B)
    assert (info == 0).all()          # B now holds the solutions
"""

from .band import (
    BandLayout,
    alloc_band,
    alloc_band_interleaved,
    band_to_dense,
    bandwidth_of_dense,
    dense_to_band,
    diagonally_dominant_band,
    gbmm,
    gbmv,
    graded_condition_band,
    is_interleaved,
    random_band,
    random_band_batch,
    random_band_dense,
    random_rhs,
    solve_residual,
    to_interleaved,
    to_lane_major,
)
from .core import (
    BandSpecialization,
    BatchReport,
    MemoryPlan,
    ResiliencePolicy,
    VerifyPolicy,
    create_specialization,
    destroy_specialization,
    estimate_footprint,
    dgbsv_batch,
    dgbtrf_batch,
    dgbtrs_batch,
    gbcon,
    gbcon_batch,
    gbequ,
    gbequ_batch,
    gbrfs,
    gbrfs_batch,
    gbsv,
    gbsv_batch,
    gbsv_vbatch,
    gbtrf,
    gbtrf_batch,
    gbtrf_vbatch,
    gbtrs,
    gbtrs_batch,
    last_pipeline_result,
    PipelineResult,
    plan_batch,
)
from .serve import (
    BatchingPolicy,
    FactorCache,
    ServiceReport,
    SolverService,
    operand_digest,
)
from .errors import (
    ArgumentError,
    DataCorruptionError,
    DeviceError,
    DeviceLostError,
    DeviceMemoryError,
    KernelHangError,
    ReproError,
    RequestShedError,
    SharedMemoryError,
    SingularMatrixError,
)
from .gpusim import (
    H100_PCIE,
    MI250X_GCD,
    CircuitBreaker,
    DeviceHealth,
    PointerArray,
    Stream,
    device_health,
    get_device,
    reset_device_health,
)
from .types import Precision, Trans

__version__ = "1.0.0"

__all__ = [
    "ArgumentError", "BandLayout", "BandSpecialization", "BatchReport",
    "BatchingPolicy", "CircuitBreaker", "DataCorruptionError",
    "DeviceError", "DeviceHealth",
    "DeviceLostError", "DeviceMemoryError", "FactorCache",
    "H100_PCIE", "KernelHangError", "MI250X_GCD",
    "MemoryPlan", "PipelineResult", "PointerArray", "Precision",
    "ReproError", "RequestShedError", "ResiliencePolicy", "ServiceReport",
    "SharedMemoryError",
    "SingularMatrixError", "SolverService", "Stream", "Trans",
    "VerifyPolicy",
    "device_health", "reset_device_health",
    "alloc_band", "alloc_band_interleaved", "band_to_dense",
    "bandwidth_of_dense",
    "create_specialization", "dense_to_band", "destroy_specialization",
    "dgbsv_batch", "dgbtrf_batch", "dgbtrs_batch",
    "diagonally_dominant_band", "estimate_footprint",
    "gbcon", "gbcon_batch", "gbequ", "gbequ_batch", "gbrfs", "gbrfs_batch",
    "gbmm", "gbmv", "gbsv", "gbsv_batch",
    "gbsv_vbatch", "gbtrf", "gbtrf_batch", "gbtrf_vbatch", "gbtrs",
    "gbtrs_batch", "get_device", "graded_condition_band",
    "is_interleaved",
    "last_pipeline_result", "operand_digest", "plan_batch",
    "random_band", "random_band_batch", "random_band_dense", "random_rhs",
    "solve_residual", "to_interleaved", "to_lane_major",
]
