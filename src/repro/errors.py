"""Exceptions and LAPACK-style ``info`` code semantics.

Every batched routine in :mod:`repro.core.batched` reports per-problem status
through an ``info`` array, mirroring the paper's interface (Section 4)::

    void dgbtrf_batch(..., int* info, int batch, gpu_stream_t stream);

The conventions follow LAPACK:

* ``info == 0``   — success.
* ``info == -i``  — the *i*-th argument (1-based) had an illegal value.  For
  batched calls an argument error raises :class:`ArgumentError` eagerly
  instead, because the error applies to the whole batch.
* ``info == +i``  — ``U(i, i)`` is exactly zero (1-based): the factorization
  completed but ``U`` is singular, and dividing by it during a solve would
  produce infinities.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ArgumentError",
    "SingularMatrixError",
    "DataCorruptionError",
    "SharedMemoryError",
    "DeviceMemoryError",
    "DeviceError",
    "DeviceLostError",
    "KernelHangError",
    "RequestShedError",
    "check_arg",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ArgumentError(ReproError, ValueError):
    """An argument had an illegal value (LAPACK ``info = -i``).

    Parameters
    ----------
    position:
        1-based position of the offending argument in the routine signature,
        matching what LAPACK's ``XERBLA`` would report.
    message:
        Human-readable description.
    """

    def __init__(self, position: int, message: str):
        super().__init__(f"argument {position}: {message}")
        self.position = int(position)
        self.info = -int(position)


class SingularMatrixError(ReproError, ArithmeticError):
    """A triangular solve was requested on an exactly singular factor.

    ``index`` is the 0-based batch index of the offending problem and
    ``info`` the 1-based column where ``U`` has a zero pivot.
    """

    def __init__(self, index: int, info: int):
        super().__init__(
            f"matrix {index} is singular: U({info},{info}) is exactly zero"
        )
        self.index = int(index)
        self.info = int(info)


class DataCorruptionError(ReproError, ArithmeticError):
    """Verified solve detected silent data corruption it could not repair.

    Raised by the verification layer (:mod:`repro.core.verify`) when a
    lane fails its residual gate and every rung of the recovery ladder —
    snapshot recompute, reference path, equilibrated refactor, iterative
    refinement — still leaves the residual above tolerance, while the
    condition estimate says the operator is *well*-conditioned (an
    ill-conditioned lane is flagged expected-inaccurate instead, never
    raised).  ``operation`` names the verified driver, ``lanes`` holds
    the 0-based global batch indices of the unrecovered lanes, ``device``
    names where the batch dispatched, and ``residual`` is the worst
    scaled residual observed across those lanes — all four are attributes
    for programmatic handling, mirroring the other error classes here.
    """

    def __init__(self, operation: str, lanes, device: str = "",
                 residual: float = 0.0):
        lanes = tuple(int(k) for k in lanes)
        dev = f" on device {device!r}" if device else ""
        super().__init__(
            f"silent data corruption in {operation}: lane(s) "
            f"{list(lanes)} failed residual verification after every "
            f"recovery rung (worst scaled residual {residual:.3e})"
            f"{dev}"
        )
        self.operation = str(operation)
        self.lanes = lanes
        self.device = str(device)
        self.residual = float(residual)


class SharedMemoryError(ReproError, MemoryError):
    """A kernel's shared-memory request exceeds the device's per-block limit.

    The paper's fully fused factorization hits exactly this failure mode for
    large matrices (Section 5.2: "even failing to run due to exceeding the
    shared memory capacity").

    The message always states the requested and limit byte counts; when the
    raise site knows them it also names the kernel and the device, so a
    rejection surfacing out of a deep batched call is directly actionable.
    ``requested``, ``limit``, ``kernel`` and ``device`` are available as
    attributes for programmatic handling (the resilient dispatcher keys its
    degradation ladder off them).
    """

    def __init__(self, requested: int, limit: int, kernel: str = "",
                 device: str = "", injected: bool = False):
        name = f" for kernel {kernel!r}" if kernel else ""
        dev = f" on device {device!r}" if device else ""
        verb = ("rejected by fault injection (device limit is"
                if injected else "exceeds the limit of")
        super().__init__(
            f"shared memory request of {requested} bytes {verb} "
            f"{limit} bytes per thread block{')' if injected else ''}"
            f"{name}{dev}"
        )
        self.requested = int(requested)
        self.limit = int(limit)
        self.kernel = str(kernel)
        self.device = str(device)
        self.injected = bool(injected)


class DeviceMemoryError(ReproError, MemoryError):
    """A device global-memory allocation exceeds the remaining capacity.

    The batched drivers assume whole batches are resident in device memory;
    a request the :class:`~repro.gpusim.memory.MemoryPool` cannot satisfy
    raises this error instead of silently "fitting".  Mirroring
    :class:`SharedMemoryError`, the message states the requested, in-use and
    capacity byte counts plus the device name, and all four are attributes
    for programmatic handling (the memory-governed dispatcher keys its
    chunking ladder off them).  ``injected`` is True for failures
    manufactured by the fault-injection framework
    (:mod:`repro.gpusim.faults`) — probabilistic allocation failures and
    transient capacity squeezes.
    """

    def __init__(self, requested: int, in_use: int, capacity: int,
                 device: str = "", injected: bool = False):
        dev = f" on device {device!r}" if device else ""
        verb = ("rejected by fault injection" if injected
                else "exceeds the remaining capacity")
        super().__init__(
            f"global memory request of {requested} bytes {verb}: "
            f"{in_use} bytes in use of {capacity} bytes total{dev}"
        )
        self.requested = int(requested)
        self.in_use = int(in_use)
        self.capacity = int(capacity)
        self.device = str(device)
        self.injected = bool(injected)


class DeviceError(ReproError, RuntimeError):
    """Invalid use of the simulated device, or a failed kernel launch.

    ``kernel`` and ``device`` name the launch that failed when the raise
    site knows them (they default to ``""``); the message carries both so a
    launch failure inside a batched driver identifies itself.  ``injected``
    is True for failures manufactured by the fault-injection framework
    (:mod:`repro.gpusim.faults`).
    """

    def __init__(self, message: str, *, kernel: str = "", device: str = "",
                 injected: bool = False):
        context = ""
        if kernel:
            context += f" [kernel {kernel!r}"
            context += f" on device {device!r}]" if device else "]"
        elif device:
            context += f" [device {device!r}]"
        super().__init__(message + context)
        self.kernel = str(kernel)
        self.device = str(device)
        self.injected = bool(injected)


class DeviceLostError(DeviceError):
    """The whole device fell over: every launch on it fails until recovery.

    Raised by the fault-injection framework's device-outage mode
    (:mod:`repro.gpusim.faults`) and treated as *fatal* by the
    multi-device circuit breaker: one sighting trips the device out of
    the shard pool immediately, rather than waiting for an error-rate
    threshold.  Distinct from :class:`DeviceError` (one launch failed)
    because the correct reaction is failover, not retry-on-device.
    """

    def __init__(self, device: str = "", injected: bool = False):
        super().__init__("device lost: all launches fail until recovery",
                         device=device, injected=injected)


class KernelHangError(DeviceError):
    """A kernel exceeded the stream watchdog deadline (a hang).

    Raised by :meth:`~repro.gpusim.stream.Stream.record` when a launch's
    modeled duration (including injected hang time) exceeds the stream's
    ``watchdog`` deadline.  ``elapsed`` and ``deadline`` are modeled
    seconds; the hung launch is *not* appended to the stream timeline, so
    a recovered re-run replays on a clean timeline.
    """

    def __init__(self, *, kernel: str = "", device: str = "",
                 elapsed: float = 0.0, deadline: float = 0.0,
                 injected: bool = False):
        super().__init__(
            f"kernel hang: launch ran {elapsed:.6f}s against a watchdog "
            f"deadline of {deadline:.6f}s",
            kernel=kernel, device=device, injected=injected)
        self.elapsed = float(elapsed)
        self.deadline = float(deadline)


class RequestShedError(ReproError, RuntimeError):
    """A service request was shed before dispatch (deadline or overload).

    Raised by :meth:`~repro.serve.SolveHandle.result` when deadline-aware
    load shedding dropped the request instead of solving it.  ``reason``
    is ``"deadline"`` (the request's deadline passed while queued) or
    ``"overload"`` (the healthy-device pool shrank and low-priority work
    was shed to protect higher-priority deadlines).
    """

    def __init__(self, seq: int, priority: int, reason: str):
        super().__init__(
            f"request {seq} (priority {priority}) shed: {reason}")
        self.seq = int(seq)
        self.priority = int(priority)
        self.reason = str(reason)


def check_arg(condition: bool, position: int, message: str) -> None:
    """Raise :class:`ArgumentError` at ``position`` unless ``condition``."""
    if not condition:
        raise ArgumentError(position, message)
