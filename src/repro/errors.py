"""Exceptions and LAPACK-style ``info`` code semantics.

Every batched routine in :mod:`repro.core.batched` reports per-problem status
through an ``info`` array, mirroring the paper's interface (Section 4)::

    void dgbtrf_batch(..., int* info, int batch, gpu_stream_t stream);

The conventions follow LAPACK:

* ``info == 0``   — success.
* ``info == -i``  — the *i*-th argument (1-based) had an illegal value.  For
  batched calls an argument error raises :class:`ArgumentError` eagerly
  instead, because the error applies to the whole batch.
* ``info == +i``  — ``U(i, i)`` is exactly zero (1-based): the factorization
  completed but ``U`` is singular, and dividing by it during a solve would
  produce infinities.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ArgumentError",
    "SingularMatrixError",
    "SharedMemoryError",
    "DeviceError",
    "check_arg",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ArgumentError(ReproError, ValueError):
    """An argument had an illegal value (LAPACK ``info = -i``).

    Parameters
    ----------
    position:
        1-based position of the offending argument in the routine signature,
        matching what LAPACK's ``XERBLA`` would report.
    message:
        Human-readable description.
    """

    def __init__(self, position: int, message: str):
        super().__init__(f"argument {position}: {message}")
        self.position = int(position)
        self.info = -int(position)


class SingularMatrixError(ReproError, ArithmeticError):
    """A triangular solve was requested on an exactly singular factor.

    ``index`` is the 0-based batch index of the offending problem and
    ``info`` the 1-based column where ``U`` has a zero pivot.
    """

    def __init__(self, index: int, info: int):
        super().__init__(
            f"matrix {index} is singular: U({info},{info}) is exactly zero"
        )
        self.index = int(index)
        self.info = int(info)


class SharedMemoryError(ReproError, MemoryError):
    """A kernel's shared-memory request exceeds the device's per-block limit.

    The paper's fully fused factorization hits exactly this failure mode for
    large matrices (Section 5.2: "even failing to run due to exceeding the
    shared memory capacity").
    """

    def __init__(self, requested: int, limit: int, kernel: str = ""):
        name = f" for kernel {kernel!r}" if kernel else ""
        super().__init__(
            f"shared memory request of {requested} bytes exceeds the device "
            f"limit of {limit} bytes per thread block{name}"
        )
        self.requested = int(requested)
        self.limit = int(limit)


class DeviceError(ReproError, RuntimeError):
    """Invalid use of the simulated device (bad launch config, bad stream)."""


def check_arg(condition: bool, position: int, message: str) -> None:
    """Raise :class:`ArgumentError` at ``position`` unless ``condition``."""
    if not condition:
        raise ArgumentError(position, message)
