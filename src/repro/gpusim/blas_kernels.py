"""Batched GEMM/GEMV kernels for the simulated device.

These are the workloads of the paper's Figure 1 (dedicated batch kernels
versus concurrent-stream execution of single-matrix kernels) and of the
sustained-bandwidth measurement of paper Section 8 (very large GEMV).

The dedicated batch kernels assign ``ceil(n / tile)^2`` tiles per matrix in
one launch over the whole batch; the streamed baseline launches one
single-matrix kernel per problem (see :mod:`repro.bench.streams` for the
concurrent-stream executor).
"""

from __future__ import annotations

import math

import numpy as np

from .costmodel import BlockCost
from .kernel import Kernel, SharedMemory

__all__ = ["BatchedGemmKernel", "BatchedGemvKernel", "GemvKernel",
           "GemmKernel"]

GEMM_TILE = 32       # square shared-memory tile of the GEMM kernels
GEMV_ROWS = 128      # rows handled per GEMV thread block


class GemmKernel(Kernel):
    """Single-matrix tiled GEMM: ``C = alpha*A@B + beta*C`` (square ``n``)."""

    name = "gemm"

    def __init__(self, a: np.ndarray, b: np.ndarray, c: np.ndarray,
                 alpha: float = 1.0, beta: float = 0.0):
        self.a, self.b, self.c = a, b, c
        self.alpha, self.beta = alpha, beta
        self.n = a.shape[0]
        self.tiles = max(1, math.ceil(self.n / GEMM_TILE))
        self.itemsize = a.dtype.itemsize

    def grid(self) -> int:
        return self.tiles * self.tiles

    def threads(self) -> int:
        return 256

    def smem_bytes(self) -> int:
        return 2 * GEMM_TILE * GEMM_TILE * self.itemsize

    def block_cost(self) -> BlockCost:
        n, t = self.n, GEMM_TILE
        rows = min(t, n)
        return BlockCost(
            flops=2.0 * rows * rows * n,
            smem_traffic=2.0 * rows * n * self.itemsize,
            dram_traffic=(2.0 * rows * n + rows * rows) * self.itemsize,
            syncs=2 * math.ceil(n / t),
            threads=256,
        )

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        t = GEMM_TILE
        bi, bj = divmod(block_id, self.tiles)
        r = slice(bi * t, min((bi + 1) * t, self.n))
        c = slice(bj * t, min((bj + 1) * t, self.n))
        acc = self.alpha * (self.a[r, :] @ self.b[:, c])
        self.c[r, c] = acc + self.beta * self.c[r, c]


class BatchedGemmKernel(Kernel):
    """Dedicated batch GEMM: all matrices' tiles in a single launch."""

    name = "gemm_batch"

    def __init__(self, a: np.ndarray, b: np.ndarray, c: np.ndarray,
                 alpha: float = 1.0, beta: float = 0.0):
        self.a, self.b, self.c = a, b, c
        self.alpha, self.beta = alpha, beta
        self.batch, self.n = a.shape[0], a.shape[1]
        self.tiles = max(1, math.ceil(self.n / GEMM_TILE))
        self._one = GemmKernel(a[0], b[0], c[0], alpha, beta)

    def grid(self) -> int:
        return self.batch * self.tiles * self.tiles

    def threads(self) -> int:
        return self._one.threads()

    def smem_bytes(self) -> int:
        return self._one.smem_bytes()

    def block_cost(self) -> BlockCost:
        return self._one.block_cost()

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        k, tile = divmod(block_id, self.tiles * self.tiles)
        GemmKernel(self.a[k], self.b[k], self.c[k], self.alpha,
                   self.beta).run_block(tile, smem)


class GemvKernel(Kernel):
    """Single-matrix GEMV: ``y = alpha*A@x + beta*y`` (``m x n``)."""

    name = "gemv"

    def __init__(self, a: np.ndarray, x: np.ndarray, y: np.ndarray,
                 alpha: float = 1.0, beta: float = 0.0):
        self.a, self.x, self.y = a, x, y
        self.alpha, self.beta = alpha, beta
        self.m, self.n = a.shape
        self.itemsize = a.dtype.itemsize

    def grid(self) -> int:
        return max(1, math.ceil(self.m / GEMV_ROWS))

    def threads(self) -> int:
        return GEMV_ROWS

    def smem_bytes(self) -> int:
        return 0

    def block_cost(self) -> BlockCost:
        rows = min(GEMV_ROWS, self.m)
        return BlockCost(
            flops=2.0 * rows * self.n,
            smem_traffic=0.0,
            dram_traffic=(rows * self.n + self.n + 2 * rows) * self.itemsize,
            syncs=1,
            threads=GEMV_ROWS,
        )

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        r = slice(block_id * GEMV_ROWS, min((block_id + 1) * GEMV_ROWS,
                                            self.m))
        self.y[r] = self.alpha * (self.a[r, :] @ self.x) + \
            self.beta * self.y[r]


class BatchedGemvKernel(Kernel):
    """Dedicated batch GEMV: all matrices' row blocks in a single launch."""

    name = "gemv_batch"

    def __init__(self, a: np.ndarray, x: np.ndarray, y: np.ndarray,
                 alpha: float = 1.0, beta: float = 0.0):
        self.a, self.x, self.y = a, x, y
        self.alpha, self.beta = alpha, beta
        self.batch, self.m, self.n = a.shape
        self.blocks_per = max(1, math.ceil(self.m / GEMV_ROWS))
        self._one = GemvKernel(a[0], x[0], y[0], alpha, beta)

    def grid(self) -> int:
        return self.batch * self.blocks_per

    def threads(self) -> int:
        return self._one.threads()

    def smem_bytes(self) -> int:
        return 0

    def block_cost(self) -> BlockCost:
        return self._one.block_cost()

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        k, blk = divmod(block_id, self.blocks_per)
        GemvKernel(self.a[k], self.x[k], self.y[k], self.alpha,
                   self.beta).run_block(blk, smem)
