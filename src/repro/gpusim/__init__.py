"""Simulated GPU execution model: devices, occupancy, kernels, streams.

This package is the substitution for real CUDA/HIP hardware documented in
DESIGN.md Section 2: kernels execute functionally on shared-memory-sized
numpy workspaces while an analytic cost model (occupancy x waves x per-block
latency, with a DRAM-bandwidth floor) supplies the clock.
"""

from .graph import ExecGraph, GraphCapture, capture_graph
from .costmodel import BlockCost, KernelTiming, estimate_block_time, estimate_kernel_time
from .device import (
    H100_PCIE, MI250X_GCD, DeviceHealth, DeviceSpec, device_health,
    get_device, list_devices, register_device, reset_device_health,
)
from .faults import (
    FaultEvent, FaultInjector, FaultPlan,
    active_injector, arm_faults, disarm_faults, fault_injection,
)
from .kernel import Kernel, LaunchRecord, SharedMemory, launch
from .memory import (
    DeviceBuffer, MemoryPool, PointerArray, TrafficCounter,
    is_packable_batch, memory_pool, reset_memory_pools,
)
from .multidevice import (
    CircuitBreaker, DevicePartition, MultiDeviceRun, replicate_device,
    run_multi_device, split_batch, throughput_weights,
)
from .occupancy import Occupancy, occupancy, suggest_block_size, waves_for_grid
from .stream import Event, Stream, TimelineEntry
from .transfer import (
    TransferRecord, batch_upload_time, memcpy_d2h, memcpy_h2d,
    stage_chunk, transfer_time,
)
from .trace import KernelSummary, chrome_trace, format_trace, save_chrome_trace, summarize

__all__ = [
    "BlockCost", "KernelTiming", "estimate_block_time", "estimate_kernel_time",
    "H100_PCIE", "MI250X_GCD", "DeviceHealth", "DeviceSpec",
    "device_health", "get_device", "list_devices", "register_device",
    "reset_device_health",
    "FaultEvent", "FaultInjector", "FaultPlan",
    "active_injector", "arm_faults", "disarm_faults", "fault_injection",
    "Kernel", "LaunchRecord", "SharedMemory", "launch",
    "CircuitBreaker", "DeviceBuffer", "DevicePartition", "MemoryPool",
    "MultiDeviceRun", "PointerArray",
    "TrafficCounter", "is_packable_batch", "memory_pool",
    "replicate_device", "reset_memory_pools", "run_multi_device",
    "split_batch", "throughput_weights",
    "Occupancy", "occupancy", "suggest_block_size", "waves_for_grid",
    "Event", "ExecGraph", "GraphCapture", "Stream", "TimelineEntry",
    "capture_graph",
    "TransferRecord", "batch_upload_time", "memcpy_d2h", "memcpy_h2d",
    "stage_chunk", "transfer_time",
    "KernelSummary", "chrome_trace", "format_trace", "save_chrome_trace",
    "summarize",
]
