"""Launch-trace reporting: a tiny profiler for the simulated device.

Collects :class:`~repro.gpusim.kernel.LaunchRecord` objects (from one or
more streams) and renders per-kernel summaries — the moral equivalent of
``nsys``/``rocprof`` output for the simulated runs, used when tuning and in
the benchmark harness's verbose mode.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from .kernel import LaunchRecord
from .stream import Stream

__all__ = ["KernelSummary", "summarize", "format_trace",
           "chrome_trace", "save_chrome_trace"]


@dataclass(frozen=True)
class KernelSummary:
    """Aggregated statistics for one kernel name."""

    name: str
    launches: int
    total_time: float
    total_blocks: int
    min_time: float
    max_time: float
    # Injected fault events recorded on the launches (lane corruptions from
    # repro.gpusim.faults); 0 for fault-free runs.
    faults: int = 0

    @property
    def mean_time(self) -> float:
        return self.total_time / self.launches if self.launches else 0.0


def summarize(records) -> list[KernelSummary]:
    """Aggregate launch records (or streams) per kernel name.

    Accepts an iterable of :class:`LaunchRecord` and/or :class:`Stream`
    objects; returns summaries sorted by descending total time.
    """
    flat: list[LaunchRecord] = []
    for item in records:
        if isinstance(item, Stream):
            flat.extend(item.records)
        else:
            flat.append(item)
    groups: dict[str, list[LaunchRecord]] = defaultdict(list)
    for rec in flat:
        # Batch-interleaved launches group under "<name>[vec]" (or
        # "<name>[vec+pack]" when the gather/pack stage staged the batch,
        # "<name>[vec+soa]" when the kernel ran natively on an
        # interleaved stack) so the execution paths of the same kernel
        # stay separately attributable — the full label table lives in
        # docs/ARCHITECTURE.md.  (TransferRecords have no display_name.)
        groups[getattr(rec, "display_name", rec.kernel_name)].append(rec)
    out = []
    for name, recs in groups.items():
        times = [r.time for r in recs]
        out.append(KernelSummary(
            name=name,
            launches=len(recs),
            total_time=sum(times),
            total_blocks=sum(r.grid for r in recs),
            min_time=min(times),
            max_time=max(times),
            faults=sum(len(getattr(r, "faults", ())) for r in recs),
        ))
    out.sort(key=lambda s: -s.total_time)
    return out


def chrome_trace(streams) -> list[dict]:
    """Render streams as Chrome trace events (``chrome://tracing`` JSON).

    Each stream becomes a track (``tid``); launches become complete events
    (``ph: "X"``) laid out back-to-back from the stream's origin, with the
    launch metadata in ``args``.  Load the output in ``chrome://tracing``
    or Perfetto to inspect a simulated run visually.
    """
    events: list[dict] = []
    for tid, stream in enumerate(streams):
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
            "args": {"name": f"{stream.name} ({stream.device.name})"},
        })
        t = 0.0
        for rec in stream.records:
            events.append({
                "name": getattr(rec, "display_name", rec.kernel_name),
                "ph": "X",
                "pid": 0,
                "tid": tid,
                "ts": t * 1e6,                  # microseconds
                "dur": rec.time * 1e6,
                "args": {
                    "grid": rec.grid,
                    "threads": getattr(rec, "threads", None),
                    "smem_bytes": getattr(rec, "smem_bytes", None),
                    "vectorized": getattr(rec, "vectorized", False),
                    "packed": getattr(rec, "packed", False),
                    "pack_bytes": getattr(rec, "pack_bytes", 0),
                    "soa": getattr(rec, "soa", False),
                    "soa_bytes": getattr(rec, "soa_bytes", 0),
                    "faults": [f"{ev.kind}:lane{ev.lane}"
                               for ev in getattr(rec, "faults", ())],
                },
            })
            t += rec.time
    return events


def save_chrome_trace(streams, path) -> None:
    """Write :func:`chrome_trace` output as a JSON file."""
    import json
    from pathlib import Path

    Path(path).write_text(json.dumps(
        {"traceEvents": chrome_trace(streams)}, indent=1))


def format_trace(records, *, unit: str = "ms") -> str:
    """Render a human-readable per-kernel table."""
    scale = {"s": 1.0, "ms": 1e3, "us": 1e6}[unit]
    summaries = summarize(records)
    show_faults = any(s.faults for s in summaries)
    header = (f"{'kernel':<28} {'launches':>8} {'blocks':>8} "
              f"{'total ' + unit:>12} {'mean ' + unit:>10} "
              f"{'min ' + unit:>10} {'max ' + unit:>10}"
              + (f" {'faults':>7}" if show_faults else ""))
    lines = [header, "-" * len(header)]
    for s in summaries:
        lines.append(
            f"{s.name:<28} {s.launches:>8d} {s.total_blocks:>8d} "
            f"{s.total_time * scale:>12.4f} {s.mean_time * scale:>10.4f} "
            f"{s.min_time * scale:>10.4f} {s.max_time * scale:>10.4f}"
            + (f" {s.faults:>7d}" if show_faults else ""))
    return "\n".join(lines)
