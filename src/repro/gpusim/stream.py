"""Streams (in-order queues) and events for the simulated device.

The paper's interface requires a user-provided stream/queue for every batched
call (paper Section 4).  A :class:`Stream` is an in-order timeline: launches
enqueued on it run back-to-back, and ``synchronize`` reports the accumulated
simulated time.

Multiple streams on the same device can overlap, and the scheduler here is
event-driven: every record lands on an *absolute* timeline (``start`` =
the stream's tail, pushed later by any cross-stream dependency installed
with :meth:`Stream.wait_event`).  This is what lets the pipelined chunk
executor (:mod:`repro.core.pipeline`) model double-buffered staging
honestly — while chunk *i* computes on the compute stream, chunk *i+1*
uploads on a copy stream, and the modeled makespan is the per-stream tail
maximum rather than the sum of every record.  The streamed one-kernel-
per-problem baseline of Figure 1 (bounded device concurrency, shared DRAM)
lives separately in :mod:`repro.bench.streams`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DeviceError, KernelHangError
from .device import DeviceSpec, device_health
from .kernel import LaunchRecord

__all__ = ["Stream", "Event", "TimelineEntry"]


@dataclass
class Event:
    """A marker in a stream's timeline (cudaEvent analogue)."""

    stream: "Stream"
    time: float

    def elapsed_since(self, earlier: "Event") -> float:
        """Seconds between two events (must be on the same device)."""
        if earlier.stream.device is not self.stream.device:
            raise DeviceError("events recorded on different devices")
        return self.time - earlier.time


@dataclass(frozen=True)
class TimelineEntry:
    """One record placed on a stream's absolute timeline."""

    start: float
    end: float
    record: LaunchRecord

    @property
    def duration(self) -> float:
        return self.end - self.start


class Stream:
    """An in-order execution queue on one simulated device.

    Records are placed on an absolute timeline: each starts at the
    stream's current tail, or later when a :meth:`wait_event` dependency
    from another stream has not resolved yet (the gap models the engine
    sitting idle).  For a stream with no cross-stream waits the tail
    equals the sum of its record times — the original sequential model.
    """

    def __init__(self, device: DeviceSpec, name: str = "stream",
                 watchdog: float | None = None):
        self.device = device
        self.name = name
        #: Watchdog deadline in modeled seconds: a record whose duration
        #: exceeds it raises :class:`~repro.errors.KernelHangError`
        #: instead of landing on the timeline (a TDR-style reset).
        #: ``None`` disables hang detection.
        if watchdog is not None and watchdog <= 0.0:
            raise DeviceError(f"watchdog must be > 0, got {watchdog}")
        self.watchdog = watchdog
        self.records: list[LaunchRecord] = []
        self.timeline: list[TimelineEntry] = []
        self._time = 0.0        # absolute tail of the in-order queue
        self._ready = 0.0       # earliest start allowed by pending waits

    def record(self, record: LaunchRecord) -> None:
        """Append a completed launch to this stream's timeline.

        When a :attr:`watchdog` deadline is armed and the record's modeled
        duration exceeds it, the launch is treated as hung: the record is
        *not* appended (a recovered re-run replays on a clean timeline),
        the hang is logged on the device's health tracker, and
        :class:`~repro.errors.KernelHangError` propagates to the caller.
        """
        if self.watchdog is not None and record.time > self.watchdog:
            device_health(self.device).record_failure("hang")
            raise KernelHangError(
                kernel=record.kernel_name, device=self.device.name,
                elapsed=record.time, deadline=self.watchdog,
                injected=any(getattr(ev, "kind", "") == "kernel-hang"
                             for ev in record.faults))
        start = max(self._time, self._ready)
        end = start + record.time
        self.records.append(record)
        self.timeline.append(TimelineEntry(start, end, record))
        self._time = end

    def wait_event(self, event: Event) -> None:
        """Make all subsequent records wait for ``event`` (cross-stream).

        The cudaStreamWaitEvent analogue: the event must come from a
        stream on the same device (cross-device dependencies are host
        joins, not stream waits).
        """
        if event.stream.device is not self.device:
            raise DeviceError(
                f"cannot wait on an event from device "
                f"{event.stream.device.name!r} on a stream of "
                f"{self.device.name!r}")
        self._ready = max(self._ready, event.time)

    def record_event(self) -> Event:
        """Record an event at the stream's current tail."""
        return Event(self, self._time)

    def synchronize(self) -> float:
        """Block until the stream drains; returns total simulated seconds."""
        return self._time

    @property
    def elapsed(self) -> float:
        """Absolute tail of the stream's timeline, seconds.

        Equals the sum of record times for a stream that never waited on
        another stream; with cross-stream waits it includes idle gaps.
        """
        return self._time

    @property
    def busy_time(self) -> float:
        """Seconds this stream's engine actually spent executing records."""
        return sum(e.duration for e in self.timeline)

    def reset(self) -> None:
        """Clear the timeline (fresh timing region)."""
        self.records.clear()
        self.timeline.clear()
        self._time = 0.0
        self._ready = 0.0

    def launch_count(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (f"Stream({self.name!r} on {self.device.name}, "
                f"{len(self.records)} launches, {self._time * 1e3:.3f} ms)")
