"""Streams (in-order queues) and events for the simulated device.

The paper's interface requires a user-provided stream/queue for every batched
call (paper Section 4).  A :class:`Stream` is an in-order timeline: launches
enqueued on it run back-to-back, and ``synchronize`` reports the accumulated
simulated time.  Multiple streams on the same device can overlap up to the
device's concurrent-kernel limit; the cross-stream concurrency model lives in
:mod:`repro.bench.streams`, which replays per-stream timelines through an
event-driven executor to reproduce Figure 1's streamed baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceError
from .device import DeviceSpec
from .kernel import LaunchRecord

__all__ = ["Stream", "Event"]


@dataclass
class Event:
    """A marker in a stream's timeline (cudaEvent analogue)."""

    stream: "Stream"
    time: float

    def elapsed_since(self, earlier: "Event") -> float:
        """Seconds between two events (must be on the same device)."""
        if earlier.stream.device is not self.stream.device:
            raise DeviceError("events recorded on different devices")
        return self.time - earlier.time


class Stream:
    """An in-order execution queue on one simulated device."""

    def __init__(self, device: DeviceSpec, name: str = "stream"):
        self.device = device
        self.name = name
        self.records: list[LaunchRecord] = []
        self._time = 0.0

    def record(self, record: LaunchRecord) -> None:
        """Append a completed launch to this stream's timeline."""
        self.records.append(record)
        self._time += record.time

    def record_event(self) -> Event:
        """Record an event at the stream's current tail."""
        return Event(self, self._time)

    def synchronize(self) -> float:
        """Block until the stream drains; returns total simulated seconds."""
        return self._time

    @property
    def elapsed(self) -> float:
        """Simulated seconds consumed so far."""
        return self._time

    def reset(self) -> None:
        """Clear the timeline (fresh timing region)."""
        self.records.clear()
        self._time = 0.0

    def launch_count(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:
        return (f"Stream({self.name!r} on {self.device.name}, "
                f"{len(self.records)} launches, {self._time * 1e3:.3f} ms)")
