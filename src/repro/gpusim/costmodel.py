"""Analytic timing model for simulated kernel launches.

The model captures the three mechanisms the paper uses to explain its
results:

1. **Occupancy / waves.**  A batch of ``grid`` blocks executes in
   ``ceil(grid / resident)`` waves, where ``resident`` comes from the
   occupancy calculator.  Thin-band kernels have little intra-problem
   parallelism, so throughput is proportional to residency — this produces
   the staircase of Figure 3 when shared-memory growth cuts occupancy.
2. **Per-block serial latency.**  One column step of the factorization is a
   chain of dependent sub-steps (pivot reduction, broadcast, scale, rank-1
   update) separated by block-wide barriers, plus shared-memory traffic at a
   per-block service rate and a sliver of per-thread arithmetic.
3. **DRAM bandwidth floor.**  Total global traffic cannot move faster than
   the sustained bandwidth (the paper's GEMV-measured 1.92 / 1.31 TB/s); the
   kernel time is the max of the latency term and the bandwidth term, plus a
   fixed launch overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import DeviceSpec
from .occupancy import Occupancy, occupancy, waves_for_grid

__all__ = ["BlockCost", "KernelTiming", "estimate_block_time", "estimate_kernel_time"]


@dataclass(frozen=True)
class BlockCost:
    """Per-thread-block resource usage reported by a kernel.

    Attributes
    ----------
    flops:
        Floating-point operations executed by the block.
    smem_traffic:
        Bytes moved to/from shared memory by the block (the dominant term
        for the in-shared-memory factorizations).
    dram_traffic:
        Bytes moved to/from global memory by the block.
    syncs:
        Number of block-wide barriers executed (one per dependent sub-step
        of each column iteration).
    threads:
        Threads doing useful work (before warp rounding).
    """

    flops: float = 0.0
    smem_traffic: float = 0.0
    dram_traffic: float = 0.0
    syncs: float = 0.0
    threads: int = 1

    def __add__(self, other: "BlockCost") -> "BlockCost":
        return BlockCost(
            flops=self.flops + other.flops,
            smem_traffic=self.smem_traffic + other.smem_traffic,
            dram_traffic=self.dram_traffic + other.dram_traffic,
            syncs=self.syncs + other.syncs,
            threads=max(self.threads, other.threads),
        )

    def scaled(self, factor: float) -> "BlockCost":
        """Cost of repeating this block ``factor`` times."""
        return BlockCost(
            flops=self.flops * factor,
            smem_traffic=self.smem_traffic * factor,
            dram_traffic=self.dram_traffic * factor,
            syncs=self.syncs * factor,
            threads=self.threads,
        )


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one estimated kernel execution."""

    launch_overhead: float
    block_time: float
    waves: int
    dram_time: float
    occupancy: Occupancy

    min_kernel_time: float = 0.0

    @property
    def exec_time(self) -> float:
        """Device-side execution time (excludes launch overhead)."""
        return max(self.waves * self.block_time, self.dram_time,
                   self.min_kernel_time if self.waves > 0 else 0.0)

    @property
    def total(self) -> float:
        """End-to-end time of the launch in seconds."""
        return self.launch_overhead + self.exec_time

    @property
    def latency_bound(self) -> bool:
        """True when the wave/latency term (not DRAM) sets the time."""
        return self.waves * self.block_time >= self.dram_time


def estimate_block_time(device: DeviceSpec, cost: BlockCost) -> float:
    """Serial execution time of one thread block, seconds.

    The three components add rather than overlap: the barriers that separate
    the factorization's sub-steps prevent overlap within a block, which is
    precisely why the paper calls these workloads latency/occupancy-limited
    rather than bandwidth-limited.
    """
    threads = max(cost.threads, 1)
    compute = cost.flops / (threads * device.thread_flop_rate)
    # A block's shared-memory pipe only saturates with a full warp of
    # active lanes; thin-band kernels running with (kl + 1) threads see a
    # proportionally lower service rate.  This is the mechanism that makes
    # the threads-per-matrix tuning parameter matter (paper Section 5.3).
    lane_util = min(1.0, threads / device.warp_size)
    smem = cost.smem_traffic / (device.smem_bw_per_block * lane_util)
    sync = cost.syncs * device.sync_latency
    return compute + smem + sync


def estimate_kernel_time(device: DeviceSpec, *, grid: int,
                         threads_per_block: int, smem_per_block: int,
                         block_cost: BlockCost,
                         kernel_name: str = "") -> KernelTiming:
    """Estimate the time of one kernel launch of ``grid`` blocks.

    Raises :class:`~repro.errors.SharedMemoryError` if the block cannot
    launch at all.
    """
    occ = occupancy(device, threads_per_block, smem_per_block,
                    kernel_name=kernel_name)
    waves = waves_for_grid(device, occ, grid)
    block_time = estimate_block_time(device, block_cost)
    # A launch whose grid leaves most SMs idle cannot saturate DRAM: scale
    # the achievable bandwidth by the fraction of SMs holding a block (with
    # a floor — even one block keeps a slice of the memory system busy).
    # This is what keeps single-matrix kernels slow in the streamed baseline
    # of Figure 1 while leaving full batches (grid >= num_sms) unaffected.
    bw_util = min(1.0, max(grid / device.num_sms, 0.05))
    dram_time = (grid * block_cost.dram_traffic) / (device.dram_bandwidth
                                                    * bw_util)
    return KernelTiming(
        launch_overhead=device.launch_overhead,
        block_time=block_time,
        waves=waves,
        dram_time=dram_time,
        occupancy=occ,
        min_kernel_time=device.min_kernel_time,
    )
