"""Execution-graph capture and replay (CUDA Graphs / HIP graphs analogue).

The paper's reference designs are crippled by per-launch overhead — two
kernel launches per matrix column (paper Section 5.1).  Real CUDA offers a
mitigation the paper's future work gestures at: capture the launch sequence
once into a graph, then replay the whole DAG with a *single* host-side
submission.  This module reproduces that trade:

* capture: launches on a capturing stream execute nothing and charge no
  time; the kernels accumulate as nodes of an :class:`ExecGraph`;
* replay: launching the graph costs one host launch overhead plus a small
  per-node device-side dispatch, and runs every node's functional body
  against the arrays it holds — so a captured pipeline can be replayed
  repeatedly on updated in-place data, the CUDA-graph usage pattern.

Replay does *not* remove redundant memory traffic — so a graph-captured
reference factorization gets much cheaper but still loses to the sliding
window design, which is the ablation shipped in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DeviceError
from .costmodel import KernelTiming
from .device import DeviceSpec
from .kernel import Kernel, LaunchRecord, launch
from .stream import Stream

__all__ = ["ExecGraph", "GraphCapture", "capture_graph"]

# Device-side scheduling cost per graph node: orders of magnitude below a
# host launch (the whole point of graphs).
NODE_DISPATCH_COST = 2.5e-7


@dataclass
class ExecGraph:
    """A captured, replayable sequence of kernel launches."""

    device: DeviceSpec
    nodes: list[Kernel] = field(default_factory=list)
    _timings: list[KernelTiming] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    def replay_time(self) -> float:
        """Modeled seconds for one replay: one host launch, device-side
        node dispatch, and every node's execution time."""
        exec_time = sum(t.exec_time for t in self._timings)
        return (self.device.launch_overhead
                + self.num_nodes * NODE_DISPATCH_COST
                + exec_time)

    def launch(self, *, stream: Stream | None = None,
               execute: bool = True,
               max_blocks: int | None = None) -> LaunchRecord:
        """Replay the graph; returns a single aggregate launch record."""
        if not self.nodes:
            raise DeviceError("cannot launch an empty graph")
        if execute:
            for kernel in self.nodes:
                launch(self.device, kernel, execute=True,
                       max_blocks=max_blocks)
        total = self.replay_time()
        first = self._timings[0]
        record = LaunchRecord(
            kernel_name=f"graph[{self.num_nodes}]",
            grid=sum(k.grid() for k in self.nodes),
            threads=max(k.threads() for k in self.nodes),
            smem_bytes=max(k.smem_bytes() for k in self.nodes),
            timing=KernelTiming(
                launch_overhead=self.device.launch_overhead,
                block_time=total - self.device.launch_overhead,
                waves=1,
                dram_time=sum(t.dram_time for t in self._timings),
                occupancy=first.occupancy,
                min_kernel_time=0.0,
            ),
            executed_blocks=sum(k.grid() for k in self.nodes)
            if execute else 0,
        )
        if stream is not None:
            stream.record(record)
        return record


class GraphCapture(Stream):
    """A stream in capture mode: launches accumulate into a graph.

    Use as a context manager::

        with capture_graph(device) as g:
            gbtrf_batch(..., stream=g.stream, ...)
        graph = g.graph
        graph.launch(stream=real_stream)

    As on real hardware, nothing executes during capture — the kernels'
    functional bodies (and their time) run at replay.
    """

    def __init__(self, device: DeviceSpec):
        super().__init__(device, name="graph-capture")
        self.graph = ExecGraph(device=device)
        self._capturing = True

    def record(self, record: LaunchRecord) -> None:  # noqa: D102
        if not self._capturing:
            raise DeviceError("capture already ended")
        # Swallow the timeline cost; remember the node for replay.
        self.records.append(record)

    def add_node(self, kernel: Kernel) -> None:
        self.graph.nodes.append(kernel)
        self.graph._timings.append(kernel.timing(self.device))

    def end(self) -> ExecGraph:
        self._capturing = False
        return self.graph


class _CaptureContext:
    def __init__(self, device: DeviceSpec):
        self.stream = GraphCapture(device)

    @property
    def graph(self) -> ExecGraph:
        return self.stream.graph

    def __enter__(self) -> "_CaptureContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stream.end()


def capture_graph(device: DeviceSpec) -> _CaptureContext:
    """Begin capturing launches into an :class:`ExecGraph`."""
    return _CaptureContext(device)
