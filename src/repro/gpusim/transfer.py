"""Host <-> device transfer modeling (``cudaMemcpyAsync`` analogues).

The paper reports kernel-only times (its batches live on the device), but a
production library must account for staging: applications like ReactEval
upload fresh Jacobian batches every Newton iteration.  Transfers enqueue on
a stream like kernels do — in order, each costing a fixed DMA-setup latency
plus bytes over the interconnect's sustained bandwidth — so end-to-end
pipelines can be timed with and without staging.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DeviceError
from .device import DeviceSpec
from .memory import DeviceBuffer, memory_pool
from .stream import Stream

__all__ = ["TransferRecord", "memcpy_h2d", "memcpy_d2h",
           "transfer_time", "batch_upload_time", "stage_chunk"]


@dataclass(frozen=True)
class TransferRecord:
    """One completed host<->device copy; duck-typed like a launch record
    (``kernel_name`` / ``grid`` / ``time``) so traces mix both."""

    kernel_name: str
    nbytes: int
    time: float
    grid: int = 1
    # Fault-injection events (repro.gpusim.faults.FaultEvent) that struck
    # this copy — in-flight payload corruption stays trace-attributed, the
    # same way lane corruption rides a LaunchRecord.
    faults: tuple = ()

    @property
    def bandwidth(self) -> float:
        """Achieved bandwidth of this copy, bytes/s."""
        return self.nbytes / self.time if self.time > 0 else 0.0


def transfer_time(device: DeviceSpec, nbytes: int, *,
                  direction: str = "h2d") -> float:
    """Modeled seconds for one copy of ``nbytes`` in the given direction."""
    if direction == "h2d":
        bw = device.h2d_bandwidth
    elif direction == "d2h":
        bw = device.d2h_bandwidth
    else:
        raise DeviceError(f"unknown transfer direction {direction!r}")
    return device.transfer_latency + nbytes / bw


def memcpy_h2d(device: DeviceSpec, buf: DeviceBuffer, host: np.ndarray, *,
               stream: Stream | None = None) -> TransferRecord:
    """Copy host data into a device buffer, timed on the stream.

    The copied bytes are charged to the buffer's traffic counter (inside
    :meth:`~repro.gpusim.memory.DeviceBuffer.upload`) and to the device
    pool's counter, so per-device interconnect traffic stays reported.
    """
    from .faults import active_injector

    buf.upload(host)
    nbytes = int(np.asarray(host).nbytes)
    pool = memory_pool(device)
    if buf.traffic is not pool.traffic:
        pool.traffic.write(nbytes)
    injector = active_injector(device)
    faults = ()
    if injector is not None:
        # In-flight corruption lands on the device-side copy (the host
        # array is untouched — exactly what a flipped bit on the wire
        # produces), attributed on this record.
        faults = injector.on_transfer(device, "memcpy_h2d", buf.array)
    rec = TransferRecord(
        kernel_name="memcpy_h2d",
        nbytes=nbytes,
        time=transfer_time(device, nbytes, direction="h2d"),
        faults=faults)
    if stream is not None:
        stream.record(rec)
    return rec


def memcpy_d2h(device: DeviceSpec, buf: DeviceBuffer, *,
               stream: Stream | None = None,
               out: np.ndarray | None = None) -> tuple[np.ndarray,
                                                       TransferRecord]:
    """Copy a device buffer back to the host, timed on the stream.

    Traffic is charged like :func:`memcpy_h2d`, on the read side.
    """
    from .faults import active_injector

    data = buf.download()
    if out is not None:
        out[...] = data
        data = out
    pool = memory_pool(device)
    if buf.traffic is not pool.traffic:
        pool.traffic.read(int(data.nbytes))
    injector = active_injector(device)
    faults = ()
    if injector is not None:
        # Corruption strikes the downloaded host copy; the device-side
        # buffer stays clean, so a retry re-downloads good data.
        faults = injector.on_transfer(device, "memcpy_d2h", data)
    rec = TransferRecord(
        kernel_name="memcpy_d2h",
        nbytes=int(data.nbytes),
        time=transfer_time(device, data.nbytes, direction="d2h"),
        faults=faults)
    if stream is not None:
        stream.record(rec)
    return data, rec


def stage_chunk(device: DeviceSpec, nbytes: int, *, direction: str = "h2d",
                stream: Stream | None = None,
                label: str = "chunk") -> TransferRecord:
    """Model one chunk-staging copy, charged to traffic *and* a stream.

    The chunked batch executors (:mod:`repro.core.memory_plan`,
    :mod:`repro.core.pipeline`) stage every chunk through this helper so
    the copy lands on the device pool's :class:`TrafficCounter` and — when
    a stream is given — on that stream's timeline.  Keeping both charges
    in one place is what makes per-stream makespans and traffic totals
    agree: the bytes a copy stream's records carry are exactly the bytes
    the counter accumulated.
    """
    pool = memory_pool(device)
    if direction == "h2d":
        pool.traffic.write(nbytes)
    else:
        pool.traffic.read(nbytes)
    rec = TransferRecord(
        kernel_name=f"{label}_{direction}", nbytes=int(nbytes),
        time=transfer_time(device, nbytes, direction=direction))
    if stream is not None:
        stream.record(rec)
    return rec


def batch_upload_time(device: DeviceSpec, *, batch: int, n: int, kl: int,
                      ku: int, nrhs: int = 0,
                      itemsize: int = 8) -> float:
    """Modeled time to stage one band batch (+optional RHS) onto the device.

    A single contiguous copy per operand — the strided-batch layout the
    drivers favour — so the cost is two latencies plus the payload.
    """
    ldab = 2 * kl + ku + 1
    t = transfer_time(device, batch * ldab * n * itemsize)
    if nrhs > 0:
        t += transfer_time(device, batch * n * nrhs * itemsize)
    return t
