"""Simulated device memory: buffers, pointer arrays, pools, traffic accounting.

The paper's batched interface (paper Section 4) passes arrays of device pointers
(``double** A_array``).  :class:`PointerArray` reproduces that shape: a
sequence of numpy views, one per problem, possibly all slicing one backing
allocation (the common "strided batch" usage) or each pointing at unrelated
memory (true pointer-array usage).

Global-memory *capacity* is modeled by :class:`MemoryPool`, a per-device
tracking allocator: :class:`DeviceBuffer` and :class:`PointerArray` uploads
charge against it, an over-capacity request raises
:class:`~repro.errors.DeviceMemoryError` (carrying requested/in-use/capacity
bytes plus the device name, mirroring the shared-memory errors), and an
armed :class:`~repro.gpusim.faults.FaultInjector` can fail allocations or
transiently squeeze the capacity.  The memory-governed batch drivers
(:mod:`repro.core.memory_plan`) lease their chunk buffers from the pool.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..errors import DeviceError, DeviceMemoryError

__all__ = ["TrafficCounter", "MemoryPool", "DeviceBuffer", "PointerArray",
           "is_packable_batch", "memory_pool", "reset_memory_pools"]


def _byte_span(a: np.ndarray) -> tuple[int, int]:
    """Inclusive-exclusive byte interval ``[lo, hi)`` touched by ``a``.

    Conservative: the bounds cover every addressable element, so two arrays
    whose spans do not intersect certainly do not share memory (the converse
    does not hold for interleaved strided views, which is the safe
    direction for the pack/scatter eligibility test).
    """
    ptr = a.__array_interface__["data"][0]
    lo = hi = 0
    for dim, st in zip(a.shape, a.strides):
        if dim == 0:
            return ptr, ptr
        step = (dim - 1) * st
        if step >= 0:
            hi += step
        else:
            lo += step
    return ptr + lo, ptr + hi + a.itemsize


def is_packable_batch(mats) -> bool:
    """True when ``mats`` can be gathered into one uniform stack and
    scattered back without changing per-block semantics.

    This is the eligibility gate for the pack/scatter stage of the
    batch-interleaved execution path: every entry must be a numpy array of
    one shape and dtype (strides and storage order may differ — that is
    the point of a :class:`PointerArray`), and no two entries may share
    memory.  The overlap test is a conservative byte-interval check, so
    aliased batches (``[ab] * batch``) and interleaved views of one buffer
    return False and keep the per-block path, where repeated factorization
    of the same storage is the documented sequential semantics.
    """
    if len(mats) == 0:
        return False
    first = mats[0]
    if not isinstance(first, np.ndarray):
        return False
    shape, dtype = first.shape, first.dtype
    spans = []
    for mk in mats:
        if (not isinstance(mk, np.ndarray) or mk.shape != shape
                or mk.dtype != dtype):
            return False
        spans.append(_byte_span(mk))
    spans.sort()
    for (_, hi1), (lo2, _) in zip(spans, spans[1:]):
        if lo2 < hi1:
            return False
    return True


@dataclass
class TrafficCounter:
    """Accumulates global-memory traffic attributed to kernel execution."""

    bytes_read: int = 0
    bytes_written: int = 0

    def read(self, nbytes: int) -> None:
        self.bytes_read += int(nbytes)

    def write(self, nbytes: int) -> None:
        self.bytes_written += int(nbytes)

    @property
    def total(self) -> int:
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0


class MemoryPool:
    """Tracking allocator for one device's global memory.

    The pool does not hand out storage (numpy owns the bytes in this
    simulator); it *accounts* for residency so that capacity can run out.
    ``alloc`` charges bytes, ``free`` releases them, and a request that
    would exceed the capacity raises
    :class:`~repro.errors.DeviceMemoryError`.  When a fault plan with
    allocation faults is armed on the pool's device
    (:mod:`repro.gpusim.faults`), every ``alloc`` consults it first —
    injected failures and transient capacity squeezes surface here.

    :attr:`traffic` is the device-level interconnect/global-traffic
    counter; host<->device copies (:func:`repro.gpusim.transfer.memcpy_h2d`
    / ``memcpy_d2h``) and the chunk streaming of the memory-governed
    drivers charge it.
    """

    def __init__(self, capacity: int, *, device=None):
        self.capacity = int(capacity)
        self.device = device                    # DeviceSpec or None
        self.in_use = 0
        self.peak = 0
        self.alloc_count = 0
        self.traffic = TrafficCounter()
        #: Live charge per allocation label — the per-stream lease ledger
        #: the pipelined executor audits (a drained pipeline must leave
        #: every one of its labels at zero, even after a mid-run OOM).
        self.in_use_by_label: dict[str, int] = {}

    @property
    def device_name(self) -> str:
        return self.device.name if self.device is not None else ""

    @property
    def available(self) -> int:
        """Bytes still allocatable (capacity minus in-use)."""
        return max(0, self.capacity - self.in_use)

    def alloc(self, nbytes: int, *, label: str = "") -> int:
        """Charge ``nbytes`` of device memory; returns the charged amount.

        Raises :class:`~repro.errors.DeviceMemoryError` when the request
        does not fit (or an armed fault plan rejects/squeezes it).
        """
        nbytes = int(nbytes)
        if nbytes < 0:
            raise DeviceError(f"negative allocation of {nbytes} bytes",
                              device=self.device_name)
        capacity = self.capacity
        if self.device is not None:
            from .faults import active_injector
            injector = active_injector(self.device)
            if injector is not None:
                # May raise an injected DeviceMemoryError, or return a
                # transiently squeezed capacity for this one request.
                capacity = injector.on_alloc(self, nbytes, label)
        if self.in_use + nbytes > capacity:
            raise DeviceMemoryError(
                nbytes, self.in_use, capacity, device=self.device_name,
                injected=capacity < self.capacity
                and self.in_use + nbytes <= self.capacity)
        self.in_use += nbytes
        self.alloc_count += 1
        self.peak = max(self.peak, self.in_use)
        if label:
            self.in_use_by_label[label] = (
                self.in_use_by_label.get(label, 0) + nbytes)
        return nbytes

    def free(self, nbytes: int, *, label: str = "") -> None:
        """Release ``nbytes`` previously charged with :meth:`alloc`.

        Pass the same ``label`` the charge was taken under to keep the
        per-label ledger balanced (labels whose charge reaches zero are
        dropped from :attr:`in_use_by_label`).
        """
        self.in_use = max(0, self.in_use - int(nbytes))
        if label:
            left = self.in_use_by_label.get(label, 0) - int(nbytes)
            if left > 0:
                self.in_use_by_label[label] = left
            else:
                self.in_use_by_label.pop(label, None)

    @contextmanager
    def lease(self, nbytes: int, *, label: str = ""):
        """Context manager: charge ``nbytes`` on entry, release on exit."""
        charged = self.alloc(nbytes, label=label)
        try:
            yield charged
        finally:
            self.free(charged, label=label)

    def reset(self) -> None:
        """Forget all charges and statistics (fresh accounting region)."""
        self.in_use = 0
        self.peak = 0
        self.alloc_count = 0
        self.in_use_by_label.clear()
        self.traffic.reset()

    def __repr__(self) -> str:
        return (f"MemoryPool({self.device_name or 'unattached'}: "
                f"{self.in_use}/{self.capacity} bytes in use, "
                f"peak {self.peak})")


#: Environment knob: cap every device pool's capacity at this many bytes
#: (the CI ``memory-pressure`` job uses it to force chunking everywhere).
_CAPACITY_ENV = "REPRO_GLOBAL_MEM_BYTES"

_POOLS: dict[str, MemoryPool] = {}


def memory_pool(device) -> MemoryPool:
    """The (lazily created) global-memory pool of ``device``.

    Capacity comes from ``device.global_mem_bytes``, capped by the
    ``REPRO_GLOBAL_MEM_BYTES`` environment variable when set — the hook the
    memory-pressure CI job uses to run the whole suite under a tiny device
    memory.
    """
    pool = _POOLS.get(device.name)
    if pool is None:
        capacity = int(device.global_mem_bytes)
        env = os.environ.get(_CAPACITY_ENV)
        if env:
            capacity = min(capacity, int(env))
        pool = MemoryPool(capacity, device=device)
        _POOLS[device.name] = pool
    return pool


def reset_memory_pools() -> None:
    """Drop every device pool (tests; re-reads the capacity environment)."""
    _POOLS.clear()


class DeviceBuffer:
    """A chunk of simulated device memory backed by a numpy array.

    Host/device transfers are explicit (:meth:`upload`, :meth:`download`) so
    examples read like real GPU host code; kernels access :attr:`array`
    directly (device-side access).  Transfers are charged to
    :attr:`traffic` — the buffer's own :class:`TrafficCounter` unless one
    is supplied — so traffic is never under-reported when a buffer is
    driven directly rather than through
    :func:`repro.gpusim.transfer.memcpy_h2d`.

    Passing ``device=`` charges the allocation against that device's
    :class:`MemoryPool` (raising
    :class:`~repro.errors.DeviceMemoryError` when it does not fit) until
    :meth:`free` is called.
    """

    def __init__(self, shape, dtype=np.float64, *, device=None,
                 traffic: TrafficCounter | None = None):
        self.array = np.zeros(shape, dtype=dtype)
        self.traffic = traffic if traffic is not None else TrafficCounter()
        self._pool = memory_pool(device) if device is not None else None
        self._charged = 0
        if self._pool is not None:
            self._charged = self._pool.alloc(self.array.nbytes,
                                             label="DeviceBuffer")

    @classmethod
    def from_host(cls, host: np.ndarray, *, device=None,
                  traffic: TrafficCounter | None = None) -> "DeviceBuffer":
        host = np.asarray(host)
        buf = cls(host.shape, host.dtype, device=device, traffic=traffic)
        buf.upload(host)
        return buf

    def upload(self, host: np.ndarray) -> None:
        """Host-to-device copy (charged as device-memory writes)."""
        host = np.asarray(host)
        if host.shape != self.array.shape:
            raise DeviceError(
                f"upload shape mismatch: buffer {self.array.shape}, "
                f"host {host.shape}")
        self.array[...] = host
        self.traffic.write(self.array.nbytes)

    def download(self) -> np.ndarray:
        """Device-to-host copy (returns a fresh host array; charged as
        device-memory reads)."""
        self.traffic.read(self.array.nbytes)
        return self.array.copy()

    def free(self) -> None:
        """Release the pool charge taken at construction (idempotent)."""
        if self._pool is not None and self._charged:
            self._pool.free(self._charged)
            self._charged = 0

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


class PointerArray(Sequence[np.ndarray]):
    """Array-of-pointers batch argument (``double**`` in the paper's API).

    Each element is a numpy array (or view) for one problem in the batch.
    All elements must share a dtype; shapes may differ (that is the point of
    a pointer array — it also carries non-uniform batches, the paper's
    future-work extension).

    Passing ``device=`` models the upload: the payload plus the pointer
    table (8 bytes per entry) is charged against the device's
    :class:`MemoryPool` — raising
    :class:`~repro.errors.DeviceMemoryError` when it does not fit — and
    the staged bytes are counted on the pool's traffic counter.
    :meth:`free` releases the charge.
    """

    #: Modeled size of one device pointer in the pointer table.
    POINTER_BYTES = 8

    def __init__(self, arrays: Sequence[np.ndarray], *, device=None):
        arrays = [np.asarray(a) for a in arrays]
        if arrays:
            dtype = arrays[0].dtype
            for k, a in enumerate(arrays):
                if a.dtype != dtype:
                    raise DeviceError(
                        f"pointer array mixes dtypes: entry 0 is {dtype}, "
                        f"entry {k} is {a.dtype}")
        self._arrays = arrays
        self._pool = memory_pool(device) if device is not None else None
        self._charged = 0
        if self._pool is not None:
            self._charged = self._pool.alloc(self.nbytes,
                                             label="PointerArray")
            self._pool.traffic.write(self.nbytes)

    @classmethod
    def from_stack(cls, stack: np.ndarray, *, device=None) -> "PointerArray":
        """Build from a contiguous ``(batch, ...)`` stack (strided batch)."""
        return cls(list(stack), device=device)

    @property
    def nbytes(self) -> int:
        """Payload plus pointer-table bytes (the modeled device footprint)."""
        return (sum(a.nbytes for a in self._arrays)
                + self.POINTER_BYTES * len(self._arrays))

    def free(self) -> None:
        """Release the pool charge taken at construction (idempotent)."""
        if self._pool is not None and self._charged:
            self._pool.free(self._charged)
            self._charged = 0

    def __len__(self) -> int:
        return len(self._arrays)

    def __getitem__(self, i):
        return self._arrays[i]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._arrays)

    @property
    def dtype(self):
        if not self._arrays:
            raise DeviceError("empty pointer array has no dtype")
        return self._arrays[0].dtype

    def uniform_shape(self) -> tuple | None:
        """The common shape if the batch is uniform, else ``None``."""
        if not self._arrays:
            return None
        shape = self._arrays[0].shape
        return shape if all(a.shape == shape for a in self._arrays) else None
