"""Simulated device memory: buffers, pointer arrays, traffic accounting.

The paper's batched interface (paper Section 4) passes arrays of device pointers
(``double** A_array``).  :class:`PointerArray` reproduces that shape: a
sequence of numpy views, one per problem, possibly all slicing one backing
allocation (the common "strided batch" usage) or each pointing at unrelated
memory (true pointer-array usage).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from ..errors import DeviceError

__all__ = ["TrafficCounter", "DeviceBuffer", "PointerArray",
           "is_packable_batch"]


def _byte_span(a: np.ndarray) -> tuple[int, int]:
    """Inclusive-exclusive byte interval ``[lo, hi)`` touched by ``a``.

    Conservative: the bounds cover every addressable element, so two arrays
    whose spans do not intersect certainly do not share memory (the converse
    does not hold for interleaved strided views, which is the safe
    direction for the pack/scatter eligibility test).
    """
    ptr = a.__array_interface__["data"][0]
    lo = hi = 0
    for dim, st in zip(a.shape, a.strides):
        if dim == 0:
            return ptr, ptr
        step = (dim - 1) * st
        if step >= 0:
            hi += step
        else:
            lo += step
    return ptr + lo, ptr + hi + a.itemsize


def is_packable_batch(mats) -> bool:
    """True when ``mats`` can be gathered into one uniform stack and
    scattered back without changing per-block semantics.

    This is the eligibility gate for the pack/scatter stage of the
    batch-interleaved execution path: every entry must be a numpy array of
    one shape and dtype (strides and storage order may differ — that is
    the point of a :class:`PointerArray`), and no two entries may share
    memory.  The overlap test is a conservative byte-interval check, so
    aliased batches (``[ab] * batch``) and interleaved views of one buffer
    return False and keep the per-block path, where repeated factorization
    of the same storage is the documented sequential semantics.
    """
    if len(mats) == 0:
        return False
    first = mats[0]
    if not isinstance(first, np.ndarray):
        return False
    shape, dtype = first.shape, first.dtype
    spans = []
    for mk in mats:
        if (not isinstance(mk, np.ndarray) or mk.shape != shape
                or mk.dtype != dtype):
            return False
        spans.append(_byte_span(mk))
    spans.sort()
    for (_, hi1), (lo2, _) in zip(spans, spans[1:]):
        if lo2 < hi1:
            return False
    return True


@dataclass
class TrafficCounter:
    """Accumulates global-memory traffic attributed to kernel execution."""

    bytes_read: int = 0
    bytes_written: int = 0

    def read(self, nbytes: int) -> None:
        self.bytes_read += int(nbytes)

    def write(self, nbytes: int) -> None:
        self.bytes_written += int(nbytes)

    @property
    def total(self) -> int:
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        self.bytes_read = 0
        self.bytes_written = 0


class DeviceBuffer:
    """A chunk of simulated device memory backed by a numpy array.

    Host/device transfers are explicit (:meth:`upload`, :meth:`download`) so
    examples read like real GPU host code; kernels access :attr:`array`
    directly (device-side access).
    """

    def __init__(self, shape, dtype=np.float64):
        self.array = np.zeros(shape, dtype=dtype)

    @classmethod
    def from_host(cls, host: np.ndarray) -> "DeviceBuffer":
        buf = cls(host.shape, host.dtype)
        buf.upload(host)
        return buf

    def upload(self, host: np.ndarray) -> None:
        """Host-to-device copy."""
        host = np.asarray(host)
        if host.shape != self.array.shape:
            raise DeviceError(
                f"upload shape mismatch: buffer {self.array.shape}, "
                f"host {host.shape}")
        self.array[...] = host

    def download(self) -> np.ndarray:
        """Device-to-host copy (returns a fresh host array)."""
        return self.array.copy()

    @property
    def nbytes(self) -> int:
        return self.array.nbytes


class PointerArray(Sequence[np.ndarray]):
    """Array-of-pointers batch argument (``double**`` in the paper's API).

    Each element is a numpy array (or view) for one problem in the batch.
    All elements must share a dtype; shapes may differ (that is the point of
    a pointer array — it also carries non-uniform batches, the paper's
    future-work extension).
    """

    def __init__(self, arrays: Sequence[np.ndarray]):
        arrays = [np.asarray(a) for a in arrays]
        if arrays:
            dtype = arrays[0].dtype
            for k, a in enumerate(arrays):
                if a.dtype != dtype:
                    raise DeviceError(
                        f"pointer array mixes dtypes: entry 0 is {dtype}, "
                        f"entry {k} is {a.dtype}")
        self._arrays = arrays

    @classmethod
    def from_stack(cls, stack: np.ndarray) -> "PointerArray":
        """Build from a contiguous ``(batch, ...)`` stack (strided batch)."""
        return cls(list(stack))

    def __len__(self) -> int:
        return len(self._arrays)

    def __getitem__(self, i):
        return self._arrays[i]

    def __iter__(self) -> Iterator[np.ndarray]:
        return iter(self._arrays)

    @property
    def dtype(self):
        if not self._arrays:
            raise DeviceError("empty pointer array has no dtype")
        return self._arrays[0].dtype

    def uniform_shape(self) -> tuple | None:
        """The common shape if the batch is uniform, else ``None``."""
        if not self._arrays:
            return None
        shape = self._arrays[0].shape
        return shape if all(a.shape == shape for a in self._arrays) else None
