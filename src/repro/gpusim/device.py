"""Simulated GPU device specifications.

The paper evaluates on an NVIDIA H100-PCIe (CUDA 12.1) and a single GCD of an
AMD MI250x (ROCm 5.5.1).  We model exactly the hardware parameters the paper
uses to explain its results:

* shared-memory capacity per SM / CU — drives occupancy, the paper's primary
  performance mechanism ("the shared memory capacity plays a pivotal role on
  the level of concurrency", paper Section 8);
* sustained DRAM bandwidth — the paper measured 1.92 TB/s (H100-PCIe) and
  1.31 TB/s (MI250x GCD) with large GEMV;
* multiprocessor count, thread/block limits, launch overhead, and a
  per-barrier synchronization latency that sets the serial cost of the
  one-column-at-a-time factorization loop.

The latency-style constants (``sync_latency``, ``smem_bw_per_block``,
``thread_flop_rate``) are calibration knobs, chosen so the benchmark harness
reproduces the *shape and ratios* of the paper's figures; see
EXPERIMENTS.md.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from ..errors import DeviceError

__all__ = ["DeviceSpec", "DeviceHealth", "H100_PCIE", "MI250X_GCD",
           "get_device", "register_device", "list_devices",
           "device_health", "reset_device_health"]


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated GPU.

    Attributes
    ----------
    name:
        Registry key, e.g. ``"h100-pcie"``.
    vendor:
        ``"nvidia"`` or ``"amd"``.
    num_sms:
        Number of streaming multiprocessors (NVIDIA) or compute units (AMD).
    smem_per_sm:
        Shared-memory / LDS capacity per SM in bytes usable by resident
        blocks.
    max_smem_per_block:
        Hard per-block shared memory limit; a kernel requesting more fails to
        launch (:class:`repro.errors.SharedMemoryError`), matching the fused
        kernel "failing to run" in the paper's Figure 3.
    max_threads_per_block / max_threads_per_sm / max_blocks_per_sm:
        Standard occupancy limits.
    warp_size:
        Threads per warp/wavefront; block sizes round up to this.
    dram_bandwidth:
        Sustained global-memory bandwidth in bytes/s (paper's GEMV-measured
        values).
    smem_bw_per_block:
        Effective shared-memory service rate seen by a single thread block,
        bytes/s.  Latency-bound thin-band kernels are dominated by this and
        by ``sync_latency``.
    sync_latency:
        Cost of one intra-block barrier (``__syncthreads`` /
        ``s_barrier``), seconds.
    launch_overhead:
        Host-side cost of one kernel launch, seconds.  This is the mechanism
        behind the batched-vs-streamed gap of Figure 1.
    thread_flop_rate:
        Scalar per-thread arithmetic throughput, flop/s.
    concurrent_kernels:
        Maximum number of kernels the device can run concurrently from
        different streams (hardware queue limit).
    global_mem_bytes:
        Device global-memory (HBM/DRAM) capacity in bytes.  Batched calls
        charge their resident footprint against it through the device's
        :class:`~repro.gpusim.memory.MemoryPool`; a batch that does not fit
        must be chunked (:mod:`repro.core.memory_plan`) or it raises
        :class:`~repro.errors.DeviceMemoryError`.
    """

    name: str
    vendor: str
    num_sms: int
    smem_per_sm: int
    max_smem_per_block: int
    max_threads_per_block: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    warp_size: int
    dram_bandwidth: float
    smem_bw_per_block: float
    sync_latency: float
    launch_overhead: float
    thread_flop_rate: float
    concurrent_kernels: int = 16
    # Device global-memory capacity (HBM/DRAM), bytes.  Default suits a
    # mid-size accelerator; the shipped models use their datasheet values.
    global_mem_bytes: int = 32 * 1024 ** 3
    # Host <-> device interconnect: sustained bandwidth (bytes/s) and the
    # fixed per-copy latency (driver + DMA setup).  H100-PCIe: PCIe Gen5
    # x16; MI250x: PCIe Gen4 x16 host link.
    h2d_bandwidth: float = 5.0e10
    d2h_bandwidth: float = 5.0e10
    transfer_latency: float = 8.0e-6
    # Minimum end-to-end duration of any kernel: tiny kernels never finish
    # faster than a couple of microseconds on real hardware (scheduling,
    # cache warmup, completion signaling).
    min_kernel_time: float = 2.0e-6
    # Per-block shared-memory bookkeeping overhead (allocation granularity,
    # pivot staging, padding).  Included in occupancy maths; this is what
    # tips the MI250x fused kernel from 2 resident blocks to 1 between
    # N = 416 and N = 448 for (kl, ku) = (2, 3) as reported in paper Section 5.2.
    smem_block_overhead: int = 1024
    # Shared-memory allocation granularity in bytes.
    smem_granularity: int = 256

    def round_smem(self, nbytes: int) -> int:
        """Apply allocation granularity and per-block overhead."""
        g = self.smem_granularity
        return ((int(nbytes) + self.smem_block_overhead + g - 1) // g) * g

    def round_threads(self, nthreads: int) -> int:
        """Round a block size up to a whole number of warps."""
        w = self.warp_size
        return max(w, ((int(nthreads) + w - 1) // w) * w)


_REGISTRY: dict[str, DeviceSpec] = {}


def register_device(spec: DeviceSpec) -> DeviceSpec:
    """Add a device to the registry (idempotent for identical specs)."""
    existing = _REGISTRY.get(spec.name)
    if existing is not None and existing != spec:
        raise DeviceError(f"device {spec.name!r} already registered with a "
                          "different specification")
    _REGISTRY[spec.name] = spec
    return spec


def get_device(name: str) -> DeviceSpec:
    """Look up a registered device by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; known: {sorted(_REGISTRY)}") from None


def list_devices() -> list[str]:
    """Names of all registered devices, sorted."""
    return sorted(_REGISTRY)


# --- Per-device health tracking --------------------------------------------


class DeviceHealth:
    """Rolling health window for one device: launch outcomes and latencies.

    Every completed launch records a success (with its modeled duration)
    or a failure (with a fault kind such as ``"device-lost"`` or
    ``"hang"``) into a bounded window of the most recent ``window``
    outcomes.  The multi-device circuit breaker
    (:class:`~repro.gpusim.multidevice.CircuitBreaker`) and operators
    read ``error_rate`` / ``mean_latency`` off this tracker; the
    per-kind totals (``failure_kinds``) are cumulative, not windowed, so
    a long-running service can still attribute historical faults.
    """

    __slots__ = ("name", "window", "_outcomes", "_latencies",
                 "successes", "failures", "failure_kinds")

    def __init__(self, name: str, window: int = 64):
        if window < 1:
            raise DeviceError("health window must be >= 1")
        self.name = str(name)
        self.window = int(window)
        #: Rolling outcome window: True = success, False = failure.
        self._outcomes: deque = deque(maxlen=self.window)
        #: Rolling modeled durations of recent *successful* launches.
        self._latencies: deque = deque(maxlen=self.window)
        #: Cumulative totals (not windowed).
        self.successes = 0
        self.failures = 0
        #: Fault kind -> cumulative count.
        self.failure_kinds: dict = {}

    def record_success(self, latency: float = 0.0) -> None:
        """Log one successful launch with its modeled duration."""
        self._outcomes.append(True)
        self._latencies.append(float(latency))
        self.successes += 1

    def record_failure(self, kind: str = "error") -> None:
        """Log one failed launch attributed to fault ``kind``."""
        self._outcomes.append(False)
        self.failures += 1
        self.failure_kinds[kind] = self.failure_kinds.get(kind, 0) + 1

    @property
    def error_rate(self) -> float:
        """Failures / outcomes over the rolling window (0.0 when empty)."""
        if not self._outcomes:
            return 0.0
        bad = sum(1 for ok in self._outcomes if not ok)
        return bad / len(self._outcomes)

    @property
    def mean_latency(self) -> float:
        """Mean modeled duration of recent successful launches."""
        if not self._latencies:
            return 0.0
        return sum(self._latencies) / len(self._latencies)

    def snapshot(self) -> dict:
        """JSON-safe view of the tracker (for reports and logs)."""
        return {
            "device": self.name,
            "window": int(self.window),
            "successes": int(self.successes),
            "failures": int(self.failures),
            "failure_kinds": {str(k): int(v)
                              for k, v in sorted(self.failure_kinds.items())},
            "error_rate": float(self.error_rate),
            "mean_latency": float(self.mean_latency),
        }

    def reset(self) -> None:
        """Clear the window and all cumulative totals."""
        self._outcomes.clear()
        self._latencies.clear()
        self.successes = 0
        self.failures = 0
        self.failure_kinds.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"DeviceHealth({self.name!r}, rate={self.error_rate:.2f}, "
                f"n={self.successes + self.failures})")


_HEALTH: dict[str, DeviceHealth] = {}


def device_health(device: "DeviceSpec | str") -> DeviceHealth:
    """The health tracker for ``device`` (created on first use).

    Trackers are keyed by device *name*, so replicated shard devices
    (``"h100-pcie:0"``, ``"h100-pcie:1"``) each get their own tracker.
    """
    name = device if isinstance(device, str) else device.name
    tracker = _HEALTH.get(name)
    if tracker is None:
        tracker = _HEALTH[name] = DeviceHealth(name)
    return tracker


def reset_device_health(device: "DeviceSpec | str | None" = None) -> None:
    """Reset one device's tracker, or every tracker when ``device=None``."""
    if device is None:
        _HEALTH.clear()
        return
    name = device if isinstance(device, str) else device.name
    _HEALTH.pop(name, None)


# --- Shipped device models -------------------------------------------------
#
# Capacity/limit numbers follow the vendor datasheets the paper cites;
# bandwidths are the paper's own sustained measurements (paper Section 8).  The
# calibration constants (sync latency, per-block smem rate, launch overhead)
# were fitted against the paper's reported curves; see EXPERIMENTS.md.

H100_PCIE = register_device(DeviceSpec(
    name="h100-pcie",
    vendor="nvidia",
    num_sms=114,
    smem_per_sm=228 * 1024,          # paper: "~224 KB" usable; 228 KB HW
    max_smem_per_block=227 * 1024,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    warp_size=32,
    dram_bandwidth=1.92e12,          # paper-measured sustained GEMV
    smem_bw_per_block=6.0e10,
    sync_latency=1.5e-7,
    launch_overhead=4.0e-6,
    thread_flop_rate=1.5e9,
    concurrent_kernels=32,
    global_mem_bytes=80 * 1024 ** 3,     # 80 GB HBM2e
    h2d_bandwidth=5.5e10,
    d2h_bandwidth=5.5e10,
))

MI250X_GCD = register_device(DeviceSpec(
    name="mi250x-gcd",
    vendor="amd",
    num_sms=110,
    smem_per_sm=64 * 1024,           # LDS per CU
    max_smem_per_block=64 * 1024,
    max_threads_per_block=1024,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    warp_size=64,
    dram_bandwidth=1.31e12,          # paper-measured sustained GEMV
    smem_bw_per_block=4.4e10,
    sync_latency=1.9e-7,
    launch_overhead=6.0e-6,
    thread_flop_rate=1.2e9,
    concurrent_kernels=16,
    global_mem_bytes=64 * 1024 ** 3,     # 64 GB HBM2e per GCD
    h2d_bandwidth=2.8e10,
    d2h_bandwidth=2.8e10,
    min_kernel_time=3.0e-6,
    # Larger per-block LDS bookkeeping than the NVIDIA part: this is what
    # drops the fused kernel from 2 resident blocks to 1 between N=416 and
    # N=448 for (kl, ku)=(2, 3), the paper's Section 5.2 observation.
    smem_block_overhead=5120,
))
