"""Occupancy calculator for the simulated devices.

Occupancy — the number of thread blocks resident per SM — is the central
performance mechanism of the paper: the fused factorization's "staircase"
behaviour (Figure 3) and the H100/MI250x gap (paper Section 8) are both explained
by shared-memory-limited occupancy.  This module reproduces the standard
CUDA/HIP occupancy computation for the resource types our kernels use
(threads and shared memory; register pressure is folded into the block
limit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SharedMemoryError
from .device import DeviceSpec

__all__ = ["Occupancy", "occupancy", "waves_for_grid",
           "suggest_block_size"]


@dataclass(frozen=True)
class Occupancy:
    """Result of an occupancy computation for one kernel configuration.

    Attributes
    ----------
    blocks_per_sm:
        Resident thread blocks per SM (the paper's "resident factorizations
        per multiprocessor/compute-unit").
    limited_by:
        Which resource bound the occupancy: ``"smem"``, ``"threads"`` or
        ``"blocks"``.
    smem_per_block:
        Rounded shared-memory footprint actually charged per block.
    threads_per_block:
        Rounded (whole-warp) block size.
    """

    blocks_per_sm: int
    limited_by: str
    smem_per_block: int
    threads_per_block: int

    def resident_blocks(self, device: DeviceSpec) -> int:
        """Total blocks resident across the whole device."""
        return self.blocks_per_sm * device.num_sms


def occupancy(device: DeviceSpec, threads_per_block: int,
              smem_per_block: int, *, kernel_name: str = "") -> Occupancy:
    """Compute resident blocks/SM for a kernel configuration.

    Raises :class:`~repro.errors.SharedMemoryError` when the per-block
    request exceeds the device's hard limit — the failure mode of the
    paper's fully fused kernel at large matrix sizes.
    """
    threads = device.round_threads(threads_per_block)
    smem = device.round_smem(smem_per_block)
    if smem > device.max_smem_per_block:
        raise SharedMemoryError(smem, device.max_smem_per_block, kernel_name,
                                device=device.name)
    if threads > device.max_threads_per_block:
        raise SharedMemoryError(threads, device.max_threads_per_block,
                                kernel_name or "threads-per-block",
                                device=device.name)

    by_smem = device.smem_per_sm // smem if smem > 0 else device.max_blocks_per_sm
    by_threads = device.max_threads_per_sm // threads
    by_blocks = device.max_blocks_per_sm
    blocks = max(0, min(by_smem, by_threads, by_blocks))
    if blocks == by_smem and by_smem <= min(by_threads, by_blocks):
        limiter = "smem"
    elif blocks == by_threads and by_threads <= by_blocks:
        limiter = "threads"
    else:
        limiter = "blocks"
    # A kernel that fits the per-block limit always gets at least one
    # resident block (the per-SM capacity is >= the per-block limit on both
    # modeled devices).
    blocks = max(blocks, 1)
    return Occupancy(blocks_per_sm=blocks, limited_by=limiter,
                     smem_per_block=smem, threads_per_block=threads)


def suggest_block_size(device: DeviceSpec, smem_per_block: int, *,
                       min_threads: int = 1,
                       max_threads: int | None = None) -> tuple[int, int]:
    """Pick the block size maximising resident *threads* per SM.

    The ``cudaOccupancyMaxPotentialBlockSize`` analogue for a fixed
    shared-memory footprint: sweeps whole-warp block sizes in
    ``[min_threads, max_threads]`` and returns ``(threads, blocks_per_sm)``
    for the configuration with the most resident threads (ties broken
    toward fewer threads per block — more independent matrices resident,
    which is what the batch-throughput workloads of the paper want).
    """
    if max_threads is None:
        max_threads = device.max_threads_per_block
    max_threads = min(max_threads, device.max_threads_per_block)
    best: tuple[int, int] | None = None
    best_resident = -1
    t = device.round_threads(max(min_threads, 1))
    while t <= max_threads:
        occ = occupancy(device, t, smem_per_block)
        resident = occ.blocks_per_sm * t
        if resident > best_resident:
            best_resident = resident
            best = (t, occ.blocks_per_sm)
        t += device.warp_size
    if best is None:
        raise SharedMemoryError(smem_per_block, device.max_smem_per_block,
                                "suggest_block_size", device=device.name)
    return best


def waves_for_grid(device: DeviceSpec, occ: Occupancy, grid: int) -> int:
    """Number of execution waves for ``grid`` blocks at occupancy ``occ``.

    A wave is one full round of resident blocks across the device; a batch
    of 1000 matrices on 114 SMs at 2 blocks/SM takes
    ``ceil(1000 / 228) = 5`` waves.
    """
    if grid <= 0:
        return 0
    return math.ceil(grid / occ.resident_blocks(device))
