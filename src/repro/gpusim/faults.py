"""Deterministic fault injection for the simulated device.

The paper keeps the reference design "as a safeguard" next to the fused and
sliding-window kernels (paper Section 5.4); exercising that safeguard — and
the retry/quarantine machinery of :mod:`repro.core.resilience` built around
it — requires failures on demand.  This module supplies them, seeded and
reproducible:

* **launch failures** — :class:`~repro.errors.DeviceError` raised from
  :func:`repro.gpusim.kernel.launch` with a configurable per-launch
  probability (the moral equivalent of a transient
  ``cudaErrorLaunchFailure``);
* **shared-memory rejections** — :class:`~repro.errors.SharedMemoryError`
  raised for the next ``k`` matching launches, as if the device refused the
  kernel's dynamic shared-memory request;
* **lane corruption** — designated batch lanes have their operands
  overwritten with NaN/Inf *after* a kernel stage executes, modelling a
  memory fault that poisons one problem without touching its neighbours;
* **allocation failures** — :class:`~repro.errors.DeviceMemoryError`
  raised from :meth:`repro.gpusim.memory.MemoryPool.alloc` with a
  configurable per-allocation probability (a transient
  ``cudaErrorMemoryAllocation``);
* **capacity squeezes** — the next ``k`` allocations see the pool's
  capacity transiently scaled down by ``squeeze_fraction``, modelling
  fragmentation or a competing tenant grabbing memory mid-run;
* **device outages** — after ``outage_after`` launch attempts the whole
  device raises :class:`~repro.errors.DeviceLostError` on every launch,
  either permanently or until ``outage_failures`` attempts have bounced
  off it (an Xid-style fallen-off-the-bus event followed by a reset);
* **kernel hangs** — the next ``k`` matching launches have their modeled
  duration inflated by ``hang_seconds``; a stream watchdog
  (:class:`~repro.gpusim.stream.Stream`) converts the stall into
  :class:`~repro.errors.KernelHangError`;
* **silent data corruption (compute)** — designated lanes have one
  element of their operands perturbed by a *finite* scale-relative delta
  after a kernel stage executes, invisible to the NaN/Inf scans that
  catch :data:`LANE_CORRUPTION` — only the residual gates of
  :mod:`repro.core.verify` see it;
* **silent data corruption (transfer)** — designated lanes are flipped
  *before* a matching kernel stage consumes them (corrupted staging),
  and real host<->device copies through :mod:`repro.gpusim.transfer`
  can have one payload element flipped in flight, attributed on the
  resulting :class:`~repro.gpusim.transfer.TransferRecord`.

Corruption lanes are *global* batch indices: when the memory-governed
drivers (:mod:`repro.core.memory_plan`) split a batch into chunks, they
set :attr:`FaultInjector.lane_offset` (via :meth:`FaultInjector.lane_window`)
so the same plan storms the same lanes regardless of chunk size.

A :class:`FaultPlan` describes the storm; arming it on a device (via
:func:`arm_faults` or the :func:`fault_injection` context manager) installs
a :class:`FaultInjector` that the launcher consults on every launch.  Every
injected fault is appended to the injector's :attr:`~FaultInjector.log`,
and corruption events additionally travel on the resulting
:class:`~repro.gpusim.kernel.LaunchRecord` so traces stay attributable.

All decisions are driven by ``numpy``'s PCG64 generator seeded from
``FaultPlan.seed``: the same plan against the same call sequence injects
the same faults, which is what lets tests assert that the self-healing
dispatcher survived *exactly* the storm it was dealt.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from ..errors import (DeviceError, DeviceLostError, DeviceMemoryError,
                      SharedMemoryError)

__all__ = [
    "LAUNCH_FAILURE", "SMEM_REJECTION", "LANE_CORRUPTION",
    "ALLOC_FAILURE", "CAPACITY_SQUEEZE", "DEVICE_OUTAGE", "KERNEL_HANG",
    "SDC_FLIP", "TRANSFER_CORRUPTION",
    "FaultEvent", "FaultPlan", "FaultInjector",
    "arm_faults", "disarm_faults", "active_injector", "fault_injection",
]

LAUNCH_FAILURE = "launch-failure"
SMEM_REJECTION = "smem-rejection"
LANE_CORRUPTION = "lane-corruption"
ALLOC_FAILURE = "alloc-failure"
CAPACITY_SQUEEZE = "capacity-squeeze"
DEVICE_OUTAGE = "device-outage"
KERNEL_HANG = "kernel-hang"
SDC_FLIP = "sdc-flip"
TRANSFER_CORRUPTION = "transfer-corruption"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded on the injector log and the trace.

    ``lane`` is the 0-based batch lane for corruption events and ``-1``
    for launch-level faults.
    """

    kind: str
    kernel: str
    device: str
    lane: int = -1
    detail: str = ""


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of a fault storm.

    Attributes
    ----------
    seed:
        Seed for the injector's PCG64 generator; identical plans replay
        identical fault sequences.
    launch_failure_rate:
        Per-launch probability in ``[0, 1]`` of an injected
        :class:`~repro.errors.DeviceError`.
    max_launch_failures:
        Cap on the number of injected launch failures (``None`` =
        unlimited).
    fail_kernels:
        Substring filter on the kernel name for launch failures
        (``""`` matches every kernel).
    smem_rejections:
        Number of launches (matching ``smem_kernels``) whose shared-memory
        request is rejected with
        :class:`~repro.errors.SharedMemoryError`; each rejection is
        consumed once.
    smem_kernels:
        Substring filter on the kernel name for shared-memory rejections.
    corrupt_lanes:
        Batch lanes to poison once each, after a kernel matching
        ``corrupt_after`` executes them.
    corrupt_value:
        Value written over the poisoned lane's floating-point operands
        (NaN by default; use ``float("inf")`` for overflow-style faults).
    corrupt_after:
        Substring naming the stage after which corruption strikes
        (e.g. ``"gbtrf"``); ``""`` poisons after the first kernel that
        executes the lane.
    alloc_failure_rate:
        Per-allocation probability in ``[0, 1]`` of an injected
        :class:`~repro.errors.DeviceMemoryError` from
        :meth:`repro.gpusim.memory.MemoryPool.alloc`.
    max_alloc_failures:
        Cap on the number of injected allocation failures (``None`` =
        unlimited).
    alloc_labels:
        Substring filter on the allocation label for allocation failures
        (``""`` matches every allocation; the governed drivers label their
        chunk leases ``"<op>-chunk"``).
    capacity_squeezes:
        Number of allocations that see the pool capacity transiently
        multiplied by ``squeeze_fraction``; each squeeze is consumed once
        (whether or not it makes the allocation fail).
    squeeze_fraction:
        Capacity multiplier in ``(0, 1]`` applied by a squeeze.
    outage_after:
        When set, the device falls over after this many launch attempts:
        attempt ``outage_after + 1`` and every attempt thereafter raises
        :class:`~repro.errors.DeviceLostError` until ``outage_failures``
        failed attempts have been consumed.  ``0`` means the device is
        down from the first launch.
    outage_failures:
        Number of failed launch attempts the outage absorbs before the
        device recovers; ``None`` makes the outage permanent.
    hang_kernels:
        Substring filter on the kernel name for injected hangs (``""``
        matches every kernel once ``hang_launches`` is positive).
    hang_launches:
        Number of matching launches whose modeled duration is inflated by
        ``hang_seconds``; each hang is consumed once.  A stream armed with
        a ``watchdog`` deadline converts the inflated duration into a
        :class:`~repro.errors.KernelHangError`; without a watchdog the
        hang silently stretches the timeline (an undetected straggler).
    hang_seconds:
        Modeled seconds added to a hung launch's duration.
    sdc_lanes:
        Batch lanes struck by a silent *compute* flip once each, after a
        kernel matching ``sdc_after`` executes them: one element of the
        lane's floating-point operands is perturbed by a finite delta of
        ``sdc_scale * max(1, max|operand|)``.  The result stays finite —
        NaN/Inf scans cannot see it; only residual verification can.
    sdc_after:
        Substring naming the stage after which the compute flip strikes
        (e.g. ``"gbtrf"``); ``""`` flips after the first kernel that
        executes the lane.
    sdc_scale:
        Relative magnitude of every silent flip (compute and transfer),
        as a multiple of ``max(1, max|operand|)``.  Must be positive and
        finite; the default ``1.0`` is far above any residual tolerance.
    sdc_operand:
        Which operand sequence the lane flips strike: ``0`` (default)
        is the first floating-point operand batch (the matrices for
        every band kernel), ``1`` the second (the right-hand sides of a
        solve stage, i.e. the computed solutions when striking
        post-stage).  Out-of-range values clamp to the last sequence the
        kernel holds.
    transfer_sdc_lanes:
        Batch lanes struck by a silent *staging* flip once each, applied
        to the lane's operands immediately *before* a kernel matching
        ``transfer_before`` consumes them — modelling corruption during
        the host-to-device transfer of that stage's inputs.
    transfer_before:
        Substring naming the stage whose staged inputs are corrupted;
        ``""`` corrupts before the first kernel that executes the lane.
    transfer_copies:
        Number of explicit host<->device copies
        (:func:`repro.gpusim.transfer.memcpy_h2d` /
        :func:`~repro.gpusim.transfer.memcpy_d2h`) whose payload has one
        element flipped in flight; each is consumed once, and the event
        is attributed on the returned
        :class:`~repro.gpusim.transfer.TransferRecord`.
    transfer_kernels:
        Substring filter on the copy name for in-flight copy corruption
        (``"memcpy_h2d"``, ``"memcpy_d2h"``, or ``""`` for both).
    """

    seed: int = 0
    launch_failure_rate: float = 0.0
    max_launch_failures: int | None = None
    fail_kernels: str = ""
    smem_rejections: int = 0
    smem_kernels: str = ""
    corrupt_lanes: tuple[int, ...] = ()
    corrupt_value: float = float("nan")
    corrupt_after: str = ""
    alloc_failure_rate: float = 0.0
    max_alloc_failures: int | None = None
    alloc_labels: str = ""
    capacity_squeezes: int = 0
    squeeze_fraction: float = 0.5
    outage_after: int | None = None
    outage_failures: int | None = None
    hang_kernels: str = ""
    hang_launches: int = 0
    hang_seconds: float = 1.0
    sdc_lanes: tuple[int, ...] = ()
    sdc_after: str = ""
    sdc_scale: float = 1.0
    sdc_operand: int = 0
    transfer_sdc_lanes: tuple[int, ...] = ()
    transfer_before: str = ""
    transfer_copies: int = 0
    transfer_kernels: str = ""

    def __post_init__(self):
        if not 0.0 <= self.launch_failure_rate <= 1.0:
            raise ValueError(
                f"launch_failure_rate must be in [0, 1], got "
                f"{self.launch_failure_rate}")
        if not 0.0 <= self.alloc_failure_rate <= 1.0:
            raise ValueError(
                f"alloc_failure_rate must be in [0, 1], got "
                f"{self.alloc_failure_rate}")
        if self.smem_rejections < 0:
            raise ValueError(
                f"smem_rejections must be >= 0, got {self.smem_rejections}")
        if self.capacity_squeezes < 0:
            raise ValueError(
                f"capacity_squeezes must be >= 0, got "
                f"{self.capacity_squeezes}")
        if not 0.0 < self.squeeze_fraction <= 1.0:
            raise ValueError(
                f"squeeze_fraction must be in (0, 1], got "
                f"{self.squeeze_fraction}")
        if self.outage_after is not None and self.outage_after < 0:
            raise ValueError(
                f"outage_after must be >= 0, got {self.outage_after}")
        if self.outage_failures is not None and self.outage_failures < 1:
            raise ValueError(
                f"outage_failures must be >= 1, got {self.outage_failures}")
        if self.hang_launches < 0:
            raise ValueError(
                f"hang_launches must be >= 0, got {self.hang_launches}")
        if self.hang_seconds < 0.0:
            raise ValueError(
                f"hang_seconds must be >= 0, got {self.hang_seconds}")
        if not 0.0 < self.sdc_scale < float("inf"):
            raise ValueError(
                f"sdc_scale must be positive and finite, got "
                f"{self.sdc_scale}")
        if self.transfer_copies < 0:
            raise ValueError(
                f"transfer_copies must be >= 0, got {self.transfer_copies}")
        if self.sdc_operand < 0:
            raise ValueError(
                f"sdc_operand must be >= 0, got {self.sdc_operand}")
        object.__setattr__(self, "corrupt_lanes",
                           tuple(int(k) for k in self.corrupt_lanes))
        object.__setattr__(self, "sdc_lanes",
                           tuple(int(k) for k in self.sdc_lanes))
        object.__setattr__(self, "transfer_sdc_lanes",
                           tuple(int(k) for k in self.transfer_sdc_lanes))


class FaultInjector:
    """Stateful executor of a :class:`FaultPlan`, armed on one device.

    The launcher calls :meth:`on_launch` before running a kernel (which may
    raise an injected error) and :meth:`after_execution` once the kernel's
    blocks have run (which may poison lanes).  Both hooks are no-ops once
    the plan's budgets are exhausted, so an armed injector with an empty
    plan costs one dictionary lookup per launch.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.log: list[FaultEvent] = []
        self._rng = np.random.default_rng(plan.seed)
        # Allocation faults draw from their own seeded stream so injecting
        # them does not perturb the launch-failure sequence (and vice
        # versa) — chunked and unchunked runs of the same plan then agree
        # on which faults strike which subsystem.
        self._alloc_rng = np.random.default_rng(
            np.random.SeedSequence(plan.seed).spawn(1)[0])
        self._smem_left = int(plan.smem_rejections)
        self._launch_left = (float("inf") if plan.max_launch_failures is None
                             else int(plan.max_launch_failures))
        self._alloc_left = (float("inf") if plan.max_alloc_failures is None
                            else int(plan.max_alloc_failures))
        self._squeeze_left = int(plan.capacity_squeezes)
        self._pending_lanes = set(plan.corrupt_lanes)
        #: Launch attempts seen so far (drives the outage trigger).
        self._launch_attempts = 0
        self._outage_left = 0
        if plan.outage_after is not None:
            self._outage_left = (float("inf") if plan.outage_failures is None
                                 else int(plan.outage_failures))
        self._hang_left = int(plan.hang_launches)
        self._sdc_pending = set(plan.sdc_lanes)
        self._transfer_pending = set(plan.transfer_sdc_lanes)
        self._copy_left = int(plan.transfer_copies)
        #: Global index of batch lane 0 of the launches currently running —
        #: the memory-governed drivers set this per chunk (see
        #: :meth:`lane_window`) so ``corrupt_lanes`` stay *global* batch
        #: indices regardless of how the batch was chunked.
        self.lane_offset = 0

    # -- bookkeeping -------------------------------------------------------

    def counts(self) -> dict[str, int]:
        """Number of injected faults so far, keyed by kind."""
        out = {LAUNCH_FAILURE: 0, SMEM_REJECTION: 0, LANE_CORRUPTION: 0,
               ALLOC_FAILURE: 0, CAPACITY_SQUEEZE: 0, DEVICE_OUTAGE: 0,
               KERNEL_HANG: 0, SDC_FLIP: 0, TRANSFER_CORRUPTION: 0}
        for ev in self.log:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def events(self, kind: str) -> list[FaultEvent]:
        """All logged events of one kind, in injection order."""
        return [ev for ev in self.log if ev.kind == kind]

    @property
    def exhausted(self) -> bool:
        """True when the plan has no faults left to inject.

        A permanent outage (``outage_failures=None``) never exhausts.
        """
        return (self._smem_left == 0 and not self._pending_lanes
                and not self._sdc_pending
                and not self._transfer_pending
                and self._copy_left == 0
                and self._squeeze_left == 0
                and self._outage_left == 0
                and self._hang_left == 0
                and (self.plan.launch_failure_rate == 0.0
                     or self._launch_left == 0)
                and (self.plan.alloc_failure_rate == 0.0
                     or self._alloc_left == 0))

    @contextmanager
    def lane_window(self, start: int):
        """Scope in which executing lane ``j`` is global lane ``start + j``.

        The chunked executors wrap each chunk's kernel launches in
        ``lane_window(chunk_start)`` so that ``corrupt_lanes`` address the
        original batch, making the storm independent of chunk size.
        """
        prev = self.lane_offset
        self.lane_offset = int(start)
        try:
            yield self
        finally:
            self.lane_offset = prev

    # -- launcher hooks ----------------------------------------------------

    def on_launch(self, device, kernel) -> None:
        """Pre-execution hook; raises the injected launch-level faults.

        The outage check runs first and counts every launch attempt: once
        ``outage_after`` attempts have gone by, each further attempt
        consumes one of the ``outage_failures`` budget and raises
        :class:`~repro.errors.DeviceLostError` — a whole-device failure
        the circuit breaker treats as fatal — until the budget drains
        (the device "comes back") or forever (``outage_failures=None``).
        """
        name = kernel.name
        self._launch_attempts += 1
        if (self.plan.outage_after is not None and self._outage_left > 0
                and self._launch_attempts > self.plan.outage_after):
            if self._outage_left != float("inf"):
                self._outage_left -= 1
            self.log.append(FaultEvent(
                DEVICE_OUTAGE, name, device.name,
                detail=f"attempt={self._launch_attempts} "
                       f"remaining={self._outage_left}"))
            raise DeviceLostError(device=device.name, injected=True)
        if (self.plan.launch_failure_rate > 0.0 and self._launch_left > 0
                and self.plan.fail_kernels in name
                and self._rng.random() < self.plan.launch_failure_rate):
            self._launch_left -= 1
            self.log.append(FaultEvent(
                LAUNCH_FAILURE, name, device.name,
                detail=f"rate={self.plan.launch_failure_rate}"))
            raise DeviceError("injected launch failure", kernel=name,
                              device=device.name, injected=True)
        if self._smem_left > 0 and self.plan.smem_kernels in name:
            self._smem_left -= 1
            requested = device.round_smem(kernel.smem_bytes())
            self.log.append(FaultEvent(
                SMEM_REJECTION, name, device.name,
                detail=f"requested={requested}"))
            raise SharedMemoryError(requested, device.max_smem_per_block,
                                    name, device=device.name, injected=True)

    def before_execution(self, device, kernel,
                         executing: int) -> tuple[FaultEvent, ...]:
        """Pre-execution hook; flips lanes whose staged inputs were
        corrupted in flight (the transfer-SDC mode).

        Called by the launcher after the launch-level checks pass and
        immediately before the blocks run, so the flip lands on the
        operands the kernel is about to consume — exactly what a
        corrupted host-to-device staging copy would produce.  Returns the
        injected events for the :class:`~repro.gpusim.kernel.
        LaunchRecord`.
        """
        if (not self._transfer_pending
                or self.plan.transfer_before not in kernel.name):
            return ()
        return self._strike_lanes(
            self._transfer_pending, device, kernel, executing,
            TRANSFER_CORRUPTION, "staged-input")

    def after_execution(self, device, kernel,
                        executed: int) -> tuple[FaultEvent, ...]:
        """Post-execution hook; poisons and silently flips pending lanes.

        NaN/Inf lane corruption (``corrupt_lanes``) and finite SDC flips
        (``sdc_lanes``) both strike here, after the kernel's blocks have
        written their outputs.  Returns the events injected by *this*
        launch, which the launcher attaches to the
        :class:`~repro.gpusim.kernel.LaunchRecord`.
        """
        events = []
        if self._pending_lanes and self.plan.corrupt_after in kernel.name:
            for lane in sorted(self._pending_lanes):
                # Pending lanes are global batch indices; the kernel only
                # sees lanes [lane_offset, lane_offset + executed).
                local = lane - self.lane_offset
                if not 0 <= local < executed:
                    continue
                if self._poison(kernel, local):
                    self._pending_lanes.discard(lane)
                    ev = FaultEvent(
                        LANE_CORRUPTION, kernel.name, device.name, lane=lane,
                        detail=f"value={self.plan.corrupt_value!r}")
                    self.log.append(ev)
                    events.append(ev)
        if self._sdc_pending and self.plan.sdc_after in kernel.name:
            events.extend(self._strike_lanes(
                self._sdc_pending, device, kernel, executed,
                SDC_FLIP, "post-stage"))
        return tuple(events)

    def _strike_lanes(self, pending: set, device, kernel, window: int,
                      kind: str, where: str) -> list[FaultEvent]:
        """Apply one finite flip to each pending lane inside the window."""
        events = []
        for lane in sorted(pending):
            local = lane - self.lane_offset
            if not 0 <= local < window:
                continue
            detail = self._flip(kernel, local)
            if detail is not None:
                pending.discard(lane)
                ev = FaultEvent(kind, kernel.name, device.name, lane=lane,
                                detail=f"{where} {detail}")
                self.log.append(ev)
                events.append(ev)
        return events

    def on_transfer(self, device, name: str,
                    data: np.ndarray) -> tuple[FaultEvent, ...]:
        """Copy hook; flips one element of an in-flight transfer payload.

        Called by :func:`repro.gpusim.transfer.memcpy_h2d` (on the
        device-side copy, after the upload) and :func:`~repro.gpusim.
        transfer.memcpy_d2h` (on the downloaded host array) while the
        ``transfer_copies`` budget lasts.  The flip is finite and
        scale-relative, like every SDC mode; the events land on the
        returned :class:`~repro.gpusim.transfer.TransferRecord` so copy
        corruption stays trace-attributed.
        """
        if (self._copy_left <= 0 or self.plan.transfer_kernels not in name
                or data.dtype.kind not in "fc" or not data.size):
            return ()
        self._copy_left -= 1
        detail = self._flip_array(data)
        ev = FaultEvent(TRANSFER_CORRUPTION, name, device.name,
                        detail=f"in-flight {detail}")
        self.log.append(ev)
        return (ev,)

    def injected_hang(self, device, kernel) -> tuple[float, tuple]:
        """Hang hook; returns ``(extra_seconds, events)`` for this launch.

        Consumed once per matching launch while the ``hang_launches``
        budget lasts.  The launcher adds ``extra_seconds`` to the launch's
        modeled duration and attaches the events to the resulting
        :class:`~repro.gpusim.kernel.LaunchRecord`, so hangs stay
        trace-attributed whether or not a stream watchdog converts them
        into :class:`~repro.errors.KernelHangError`.
        """
        if self._hang_left <= 0 or self.plan.hang_kernels not in kernel.name:
            return 0.0, ()
        self._hang_left -= 1
        ev = FaultEvent(
            KERNEL_HANG, kernel.name, device.name,
            detail=f"hang_seconds={self.plan.hang_seconds}")
        self.log.append(ev)
        return float(self.plan.hang_seconds), (ev,)

    def on_alloc(self, pool, nbytes: int, label: str = "") -> int:
        """Allocation hook; returns the capacity this request is held to.

        Called by :meth:`repro.gpusim.memory.MemoryPool.alloc` before the
        capacity check.  May raise an injected
        :class:`~repro.errors.DeviceMemoryError`; a pending capacity
        squeeze instead *returns* a transiently reduced capacity, letting
        the pool's own check decide whether the squeezed request still
        fits.
        """
        device = pool.device_name
        capacity = pool.capacity
        if self._squeeze_left > 0:
            self._squeeze_left -= 1
            capacity = int(capacity * self.plan.squeeze_fraction)
            self.log.append(FaultEvent(
                CAPACITY_SQUEEZE, label or "alloc", device,
                detail=f"capacity={capacity} of {pool.capacity}"))
        if (self.plan.alloc_failure_rate > 0.0 and self._alloc_left > 0
                and self.plan.alloc_labels in label
                and self._alloc_rng.random() < self.plan.alloc_failure_rate):
            self._alloc_left -= 1
            self.log.append(FaultEvent(
                ALLOC_FAILURE, label or "alloc", device,
                detail=f"requested={int(nbytes)}"))
            raise DeviceMemoryError(int(nbytes), pool.in_use, capacity,
                                    device=device, injected=True)
        return capacity

    def _lane_operands(self, kernel, lane: int) -> list[np.ndarray]:
        """The lane's floating-point operand arrays, in sequence order."""
        seqs = kernel.pack_operands()
        if not seqs:
            # Fork-join kernels keep operands on a shared state object
            # rather than on the kernel itself; check both holders.
            holders = (kernel, getattr(kernel, "state", None))
            seqs = tuple(s for h in holders if h is not None
                         for s in (getattr(h, "mats", None),
                                   getattr(h, "rhs", None))
                         if s is not None)
        out = []
        for seq in seqs:
            try:
                arr = seq[lane]
            except (IndexError, KeyError, TypeError):
                continue
            arr = np.asarray(arr)
            if arr.dtype.kind in "fc" and arr.size:
                out.append(arr)
        return out

    def _poison(self, kernel, lane: int) -> bool:
        """Overwrite the lane's first floating-point operand batch."""
        arrs = self._lane_operands(kernel, lane)
        if not arrs:
            return False
        arrs[0][...] = self.plan.corrupt_value
        return True

    def _flip(self, kernel, lane: int) -> str | None:
        """Silently flip one element of the lane's operands (finite)."""
        arrs = self._lane_operands(kernel, lane)
        if not arrs:
            return None
        return self._flip_array(arrs[min(self.plan.sdc_operand,
                                         len(arrs) - 1)])

    def _flip_array(self, arr: np.ndarray) -> str:
        """Add a finite, scale-relative delta to one seeded element.

        The delta is ``sdc_scale * max(1, max|arr|)`` — the result stays
        finite (invisible to NaN/Inf scans) yet is far outside rounding
        error for any ``sdc_scale`` above the residual tolerance.
        """
        idx = int(self._rng.integers(arr.size))
        scale = float(np.max(np.abs(arr)))
        if not np.isfinite(scale):
            scale = 0.0
        delta = self.plan.sdc_scale * max(1.0, scale)
        # ``.flat`` assigns through views (an interleaved lane is strided;
        # ``reshape(-1)`` would flip a copy and lose the fault).
        arr.flat[idx] += delta
        return f"idx={idx} delta={delta!r}"


# -- arming ----------------------------------------------------------------

_ARMED: dict[str, FaultInjector] = {}


def arm_faults(device, plan: FaultPlan | FaultInjector) -> FaultInjector:
    """Arm a fault plan (or a pre-built injector) on ``device``.

    Replaces any injector previously armed on the same device; returns the
    active injector so callers can inspect its log afterwards.
    """
    injector = plan if isinstance(plan, FaultInjector) else FaultInjector(plan)
    _ARMED[device.name] = injector
    return injector


def disarm_faults(device=None) -> None:
    """Disarm ``device`` (or every device when ``None``)."""
    if device is None:
        _ARMED.clear()
    else:
        _ARMED.pop(device.name, None)


def active_injector(device) -> FaultInjector | None:
    """The injector currently armed on ``device``, if any."""
    return _ARMED.get(device.name)


@contextmanager
def fault_injection(device, plan: FaultPlan | FaultInjector):
    """Context manager: arm ``plan`` on ``device``, disarm on exit.

    Yields the :class:`FaultInjector` so the body can assert against its
    log::

        with fault_injection(H100_PCIE, FaultPlan(seed=7,
                                                  smem_rejections=1)) as inj:
            ...
        assert inj.counts()["smem-rejection"] == 1
    """
    injector = arm_faults(device, plan)
    try:
        yield injector
    finally:
        if _ARMED.get(device.name) is injector:
            disarm_faults(device)
