"""Multi-device batch execution (e.g. both GCDs of an MI250x).

The paper evaluates a *single* GCD of the MI250x ("single GCD") — the
full part exposes two, and H100 nodes carry several GPUs.  Batched
workloads split trivially: partition the batch, run one stream per
device, and the makespan is the slowest partition (plus one extra host
launch per additional device).  This module provides that partitioning
together with a weighted split that balances heterogeneous devices by
their modeled throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SharedMemoryError, check_arg
from .costmodel import estimate_kernel_time
from .device import DeviceSpec, device_health
from .stream import Stream

__all__ = ["CircuitBreaker", "DevicePartition", "split_batch",
           "MultiDeviceRun", "run_multi_device", "replicate_device",
           "throughput_weights"]


def replicate_device(device: DeviceSpec, count: int) -> list[DeviceSpec]:
    """``count`` independent instances of one device model.

    Memory pools and fault injectors key on the device *name*, so a
    multi-device run over one part number needs distinct names — each
    replica is the same spec renamed ``"<name>:<i>"`` and owns its own
    pool, injector slot and streams (two GCDs of an MI250x, several
    H100s in a node).
    """
    check_arg(count >= 1, 2, f"count must be >= 1, got {count}")
    return [replace(device, name=f"{device.name}:{i}")
            for i in range(count)]


def throughput_weights(devices: list[DeviceSpec], stages, *,
                       grid: int) -> list[float]:
    """Modeled per-device throughput for a batched call, as split weights.

    ``stages`` is a sequence of ``(block_cost, threads_per_block,
    smem_per_block)`` triples — one per kernel stage of the call (a
    ``gbtrs`` runs two kernels, a standard ``gbsv`` four) — or a callable
    ``stages(device) -> [triples]`` when the stage parameters themselves
    come from per-device tuning tables (window sizes, thread counts).
    Each device's weight is ``grid`` problems over the summed modeled
    stage times, so :func:`split_batch` hands an H100 proportionally more
    lanes than an MI250x GCD without the caller supplying weights.  A
    device that cannot launch some stage at all (shared-memory rejection)
    — or whose stage list is empty — falls back to a DRAM-bandwidth
    proxy: it still gets a share, and the resilient ladder deals with any
    rejection at run time.
    """
    check_arg(grid >= 1, 3, f"grid must be >= 1, got {grid}")
    stages_for = stages if callable(stages) else (lambda dev: stages)
    weights = []
    for dev in devices:
        total = 0.0
        try:
            for cost, threads, smem in stages_for(dev):
                timing = estimate_kernel_time(
                    dev, grid=grid, threads_per_block=threads,
                    smem_per_block=smem, block_cost=cost,
                    kernel_name="throughput-probe")
                total += timing.total
        except SharedMemoryError:
            total = 0.0
        if total > 0.0:
            weights.append(grid / total)
        else:
            # Bandwidth proxy, scaled far below any launchable device so
            # the unlaunchable one only takes lanes when every device is
            # in the same boat.
            weights.append(dev.dram_bandwidth * 1e-15)
    return weights


class CircuitBreaker:
    """Per-device circuit breaker over the shard pool (closed→open→half-open).

    The pipeline coordinator consults the breaker before every dispatch
    round and reports every launch outcome back into it:

    * **closed** — the device takes its full throughput-weighted share.
      ``failure_threshold`` consecutive failures (or a single *fatal*
      failure such as :class:`~repro.errors.DeviceLostError`, or a rolling
      :class:`~repro.gpusim.device.DeviceHealth` error rate at or above
      ``error_rate_threshold``) trip it **open**.
    * **open** — the device is out of the pool.  After ``probe_after``
      denied polls it transitions to **half-open**.
    * **half-open** — the next poll grants a single *probe* launch.  A
      probe success **recovers** the device (closed again); a probe
      failure **reopens** it, and after ``max_probes`` consecutive failed
      probes the device is declared **dead** (no further probes).

    All transitions append JSON-safe dicts to :attr:`events`
    (``trip`` / ``probe`` / ``reopen`` / ``recover`` / ``dead``), which the
    pipeline copies into ``BatchReport.device_events``.  The breaker is
    *not* thread-safe by design: the pipeline mutates it only from the
    coordinator thread, which is also what keeps failover decisions
    deterministic for a given fault seed.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"
    DEAD = "dead"

    def __init__(self, *, failure_threshold: int = 2, probe_after: int = 1,
                 max_probes: int = 4,
                 error_rate_threshold: float | None = None):
        check_arg(failure_threshold >= 1, 1,
                  f"failure_threshold must be >= 1, got {failure_threshold}")
        check_arg(probe_after >= 1, 2,
                  f"probe_after must be >= 1, got {probe_after}")
        check_arg(max_probes >= 1, 3,
                  f"max_probes must be >= 1, got {max_probes}")
        check_arg(error_rate_threshold is None
                  or 0.0 < error_rate_threshold <= 1.0, 4,
                  "error_rate_threshold must be in (0, 1] or None")
        self.failure_threshold = int(failure_threshold)
        self.probe_after = int(probe_after)
        self.max_probes = int(max_probes)
        self.error_rate_threshold = error_rate_threshold
        self._state: dict[str, str] = {}
        self._failures: dict[str, int] = {}      # consecutive, while closed
        self._denied: dict[str, int] = {}        # polls denied while open
        self._probes_failed: dict[str, int] = {}  # consecutive failed probes
        #: JSON-safe transition log, in decision order.
        self.events: list[dict] = []

    # -- inspection --------------------------------------------------------

    def state(self, name: str) -> str:
        """Current state of device ``name`` (``"closed"`` by default)."""
        return self._state.get(name, self.CLOSED)

    def healthy(self, name: str) -> bool:
        """True when the device may receive work (closed or probing)."""
        return self.state(name) in (self.CLOSED, self.HALF_OPEN)

    def healthy_fraction(self, names) -> float:
        """Fraction of ``names`` currently in the pool (1.0 when empty)."""
        names = list(names)
        if not names:
            return 1.0
        return sum(1 for n in names if self.healthy(n)) / len(names)

    # -- coordinator protocol ---------------------------------------------

    def poll(self, name: str) -> str | None:
        """Ask for the device's role this round.

        Returns ``"full"`` (closed: full share), ``"probe"`` (half-open:
        one probe chunk), or ``None`` (open or dead: no work).  An open
        device counts denied polls and moves to half-open once
        ``probe_after`` of them have gone by.
        """
        state = self.state(name)
        if state == self.CLOSED:
            return "full"
        if state == self.DEAD:
            return None
        if state == self.OPEN:
            self._denied[name] = self._denied.get(name, 0) + 1
            if self._denied[name] < self.probe_after:
                return None
            self._state[name] = self.HALF_OPEN
            self._denied[name] = 0
            self.events.append({"event": "probe", "device": name})
            return "probe"
        return "probe"   # already half-open: retry the probe

    def record_failure(self, name: str, *, kind: str = "error",
                       fatal: bool = False) -> None:
        """Report a failed launch/chunk on ``name`` (coordinator thread)."""
        state = self.state(name)
        if state == self.DEAD:
            return
        if state == self.HALF_OPEN:
            self._probes_failed[name] = self._probes_failed.get(name, 0) + 1
            if self._probes_failed[name] >= self.max_probes:
                self._state[name] = self.DEAD
                self.events.append(
                    {"event": "dead", "device": name, "kind": kind,
                     "probes": self._probes_failed[name]})
            else:
                self._state[name] = self.OPEN
                self.events.append(
                    {"event": "reopen", "device": name, "kind": kind})
            return
        if state == self.OPEN:
            return
        # closed
        self._failures[name] = self._failures.get(name, 0) + 1
        rate_trip = (self.error_rate_threshold is not None
                     and device_health(name).error_rate
                     >= self.error_rate_threshold)
        if fatal or rate_trip or self._failures[name] >= self.failure_threshold:
            self._state[name] = self.OPEN
            self._denied[name] = 0
            self.events.append(
                {"event": "trip", "device": name, "kind": kind,
                 "fatal": bool(fatal),
                 "failures": self._failures[name]})
            self._failures[name] = 0

    def record_success(self, name: str) -> None:
        """Report a successful launch/chunk on ``name``."""
        state = self.state(name)
        if state == self.HALF_OPEN:
            self._state[name] = self.CLOSED
            self._probes_failed[name] = 0
            self._failures[name] = 0
            self.events.append({"event": "recover", "device": name})
        elif state == self.CLOSED:
            self._failures[name] = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        states = {n: s for n, s in sorted(self._state.items())
                  if s != self.CLOSED}
        return f"CircuitBreaker({states or 'all closed'})"


@dataclass(frozen=True)
class DevicePartition:
    """One device's slice of a batch."""

    device: DeviceSpec
    start: int
    stop: int

    @property
    def count(self) -> int:
        return self.stop - self.start


def split_batch(batch: int, devices: list[DeviceSpec], *,
                weights: list[float] | None = None) -> list[DevicePartition]:
    """Partition ``batch`` problems across ``devices``.

    ``weights`` (defaults to equal) set each device's share — pass modeled
    throughputs to balance an H100 against an MI250x GCD.  Every returned
    partition is contiguous; empty partitions are dropped.
    """
    check_arg(batch >= 0, 1, f"batch must be non-negative, got {batch}")
    check_arg(len(devices) >= 1, 2, "need at least one device")
    if weights is None:
        weights = [1.0] * len(devices)
    check_arg(len(weights) == len(devices), 3,
              f"{len(weights)} weights for {len(devices)} devices")
    check_arg(all(w > 0 for w in weights), 3, "weights must be positive")
    total = sum(weights)
    parts: list[DevicePartition] = []
    start = 0
    remaining = batch
    for i, (dev, w) in enumerate(zip(devices, weights)):
        if i == len(devices) - 1:
            count = remaining
        else:
            count = min(remaining, round(batch * w / total))
        if count > 0:
            parts.append(DevicePartition(dev, start, start + count))
        start += count
        remaining -= count
    return parts


@dataclass
class MultiDeviceRun:
    """Result of a multi-device batched call."""

    partitions: list[DevicePartition]
    streams: list[Stream]

    @property
    def makespan(self) -> float:
        """Wall time: devices run concurrently, the slowest wins."""
        return max((s.elapsed for s in self.streams), default=0.0)

    @property
    def total_device_time(self) -> float:
        """Aggregate device-seconds (for efficiency accounting)."""
        return sum(s.elapsed for s in self.streams)

    def efficiency(self, single_device_time: float) -> float:
        """Parallel efficiency vs a single-device run of the whole batch."""
        n = len(self.streams)
        if n == 0 or self.makespan == 0.0:
            return 0.0
        return single_device_time / (n * self.makespan)


def run_multi_device(batch_fn, batch: int, devices: list[DeviceSpec], *,
                     weights: list[float] | None = None) -> MultiDeviceRun:
    """Run a batched operation split across devices.

    ``batch_fn(device, stream, start, stop)`` must execute problems
    ``[start, stop)`` of the batch on ``device``, recording on ``stream``
    (any of the ``*_batch`` drivers close over their arguments naturally).
    Each partition gets its own stream; partitions would run concurrently
    on real hardware, so the makespan is the per-stream maximum.
    """
    parts = split_batch(batch, devices, weights=weights)
    streams = []
    for part in parts:
        stream = Stream(part.device, name=f"mdev-{part.device.name}")
        batch_fn(part.device, stream, part.start, part.stop)
        streams.append(stream)
    return MultiDeviceRun(partitions=parts, streams=streams)
