"""Multi-device batch execution (e.g. both GCDs of an MI250x).

The paper evaluates a *single* GCD of the MI250x ("single GCD") — the
full part exposes two, and H100 nodes carry several GPUs.  Batched
workloads split trivially: partition the batch, run one stream per
device, and the makespan is the slowest partition (plus one extra host
launch per additional device).  This module provides that partitioning
together with a weighted split that balances heterogeneous devices by
their modeled throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import SharedMemoryError, check_arg
from .costmodel import estimate_kernel_time
from .device import DeviceSpec
from .stream import Stream

__all__ = ["DevicePartition", "split_batch", "MultiDeviceRun",
           "run_multi_device", "replicate_device", "throughput_weights"]


def replicate_device(device: DeviceSpec, count: int) -> list[DeviceSpec]:
    """``count`` independent instances of one device model.

    Memory pools and fault injectors key on the device *name*, so a
    multi-device run over one part number needs distinct names — each
    replica is the same spec renamed ``"<name>:<i>"`` and owns its own
    pool, injector slot and streams (two GCDs of an MI250x, several
    H100s in a node).
    """
    check_arg(count >= 1, 2, f"count must be >= 1, got {count}")
    return [replace(device, name=f"{device.name}:{i}")
            for i in range(count)]


def throughput_weights(devices: list[DeviceSpec], stages, *,
                       grid: int) -> list[float]:
    """Modeled per-device throughput for a batched call, as split weights.

    ``stages`` is a sequence of ``(block_cost, threads_per_block,
    smem_per_block)`` triples — one per kernel stage of the call (a
    ``gbtrs`` runs two kernels, a standard ``gbsv`` four) — or a callable
    ``stages(device) -> [triples]`` when the stage parameters themselves
    come from per-device tuning tables (window sizes, thread counts).
    Each device's weight is ``grid`` problems over the summed modeled
    stage times, so :func:`split_batch` hands an H100 proportionally more
    lanes than an MI250x GCD without the caller supplying weights.  A
    device that cannot launch some stage at all (shared-memory rejection)
    — or whose stage list is empty — falls back to a DRAM-bandwidth
    proxy: it still gets a share, and the resilient ladder deals with any
    rejection at run time.
    """
    check_arg(grid >= 1, 3, f"grid must be >= 1, got {grid}")
    stages_for = stages if callable(stages) else (lambda dev: stages)
    weights = []
    for dev in devices:
        total = 0.0
        try:
            for cost, threads, smem in stages_for(dev):
                timing = estimate_kernel_time(
                    dev, grid=grid, threads_per_block=threads,
                    smem_per_block=smem, block_cost=cost,
                    kernel_name="throughput-probe")
                total += timing.total
        except SharedMemoryError:
            total = 0.0
        if total > 0.0:
            weights.append(grid / total)
        else:
            # Bandwidth proxy, scaled far below any launchable device so
            # the unlaunchable one only takes lanes when every device is
            # in the same boat.
            weights.append(dev.dram_bandwidth * 1e-15)
    return weights


@dataclass(frozen=True)
class DevicePartition:
    """One device's slice of a batch."""

    device: DeviceSpec
    start: int
    stop: int

    @property
    def count(self) -> int:
        return self.stop - self.start


def split_batch(batch: int, devices: list[DeviceSpec], *,
                weights: list[float] | None = None) -> list[DevicePartition]:
    """Partition ``batch`` problems across ``devices``.

    ``weights`` (defaults to equal) set each device's share — pass modeled
    throughputs to balance an H100 against an MI250x GCD.  Every returned
    partition is contiguous; empty partitions are dropped.
    """
    check_arg(batch >= 0, 1, f"batch must be non-negative, got {batch}")
    check_arg(len(devices) >= 1, 2, "need at least one device")
    if weights is None:
        weights = [1.0] * len(devices)
    check_arg(len(weights) == len(devices), 3,
              f"{len(weights)} weights for {len(devices)} devices")
    check_arg(all(w > 0 for w in weights), 3, "weights must be positive")
    total = sum(weights)
    parts: list[DevicePartition] = []
    start = 0
    remaining = batch
    for i, (dev, w) in enumerate(zip(devices, weights)):
        if i == len(devices) - 1:
            count = remaining
        else:
            count = min(remaining, round(batch * w / total))
        if count > 0:
            parts.append(DevicePartition(dev, start, start + count))
        start += count
        remaining -= count
    return parts


@dataclass
class MultiDeviceRun:
    """Result of a multi-device batched call."""

    partitions: list[DevicePartition]
    streams: list[Stream]

    @property
    def makespan(self) -> float:
        """Wall time: devices run concurrently, the slowest wins."""
        return max((s.elapsed for s in self.streams), default=0.0)

    @property
    def total_device_time(self) -> float:
        """Aggregate device-seconds (for efficiency accounting)."""
        return sum(s.elapsed for s in self.streams)

    def efficiency(self, single_device_time: float) -> float:
        """Parallel efficiency vs a single-device run of the whole batch."""
        n = len(self.streams)
        if n == 0 or self.makespan == 0.0:
            return 0.0
        return single_device_time / (n * self.makespan)


def run_multi_device(batch_fn, batch: int, devices: list[DeviceSpec], *,
                     weights: list[float] | None = None) -> MultiDeviceRun:
    """Run a batched operation split across devices.

    ``batch_fn(device, stream, start, stop)`` must execute problems
    ``[start, stop)`` of the batch on ``device``, recording on ``stream``
    (any of the ``*_batch`` drivers close over their arguments naturally).
    Each partition gets its own stream; partitions would run concurrently
    on real hardware, so the makespan is the per-stream maximum.
    """
    parts = split_batch(batch, devices, weights=weights)
    streams = []
    for part in parts:
        stream = Stream(part.device, name=f"mdev-{part.device.name}")
        batch_fn(part.device, stream, part.start, part.stop)
        streams.append(stream)
    return MultiDeviceRun(partitions=parts, streams=streams)
