"""Kernel abstraction and launch machinery for the simulated GPU.

A :class:`Kernel` is the unit of work that a real implementation would write
in CUDA/HIP: it declares a grid size (one block per matrix for the batched
band kernels), a block size, and a shared-memory footprint, and provides a
``run_block`` method with the *functional* behaviour of one thread block.

``run_block`` receives a :class:`SharedMemory` allocator that enforces the
declared footprint: a kernel that touches more shared memory than it asked
for fails immediately, the same way a real kernel would corrupt itself or
fail to launch.  This keeps the simulated kernels honest — the occupancy
maths in the cost model is fed by the same numbers the functional code is
held to.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from ..errors import DeviceError, DeviceLostError, SharedMemoryError
from .costmodel import BlockCost, KernelTiming, estimate_kernel_time
from .device import DeviceSpec, device_health

__all__ = ["SharedMemory", "Kernel", "LaunchRecord", "launch",
           "note_layout_conversion"]

# Bytes moved by a pending batch-boundary layout conversion (see
# repro.core.batch_args.convert_batch_layout).  The driver notes the
# round-trip traffic once, before its launches; the *first* launch that
# follows absorbs it into its record (``soa_bytes``), mirroring how
# ``pack_bytes`` attributes the gather/pack staging — and proving the
# one-conversion-per-batch contract in traces: later launches of the
# same call (and every chunk of a governed run) carry zero.
_pending_convert_bytes = 0


def note_layout_conversion(nbytes: int) -> None:
    """Register layout-conversion traffic for the next launch record."""
    global _pending_convert_bytes
    _pending_convert_bytes += int(nbytes)


class SharedMemory:
    """Per-block shared-memory allocator with a hard byte budget.

    ``kernel`` and ``device`` are diagnostic labels: an over-budget
    allocation raises a :class:`~repro.errors.SharedMemoryError` naming the
    kernel and device it was serving, not just the byte counts.
    """

    def __init__(self, limit_bytes: int, *, kernel: str = "",
                 device: str = ""):
        self.limit = int(limit_bytes)
        self.used = 0
        self.kernel = kernel
        self.device = device
        self._arrays: list[np.ndarray] = []

    def alloc(self, shape, dtype=np.float64) -> np.ndarray:
        """Allocate a zeroed scratch array, charged against the budget."""
        arr = np.zeros(shape, dtype=dtype)
        self.used += arr.nbytes
        if self.used > self.limit:
            raise SharedMemoryError(
                self.used, self.limit,
                self.kernel or "SharedMemory.alloc", device=self.device)
        self._arrays.append(arr)
        return arr


class Kernel(abc.ABC):
    """Base class for simulated GPU kernels.

    Subclasses implement the resource declarations and the per-block
    functional body.  The same object serves double duty: ``launch`` runs
    the functional body, while the benchmark harness asks only for the
    resource declarations to time large batches without executing them.
    """

    name: str = "kernel"

    @abc.abstractmethod
    def grid(self) -> int:
        """Number of thread blocks (usually the batch size)."""

    @abc.abstractmethod
    def threads(self) -> int:
        """Threads per block doing useful work (pre warp-rounding)."""

    @abc.abstractmethod
    def smem_bytes(self) -> int:
        """Dynamic shared memory requested per block, in bytes."""

    @abc.abstractmethod
    def block_cost(self) -> BlockCost:
        """Per-block resource usage for the timing model."""

    @abc.abstractmethod
    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        """Functional behaviour of one thread block."""

    # -- batch-interleaved execution ---------------------------------------

    def can_batch_vectorize(self) -> bool:
        """Whether this launch is eligible for the batch-interleaved path.

        Kernels that can advance every block through each step of the
        algorithm simultaneously (one numpy operation over a
        ``(batch, ...)`` stack instead of a Python loop per block) return
        True *for the inputs they currently hold* — typically requiring
        all blocks to share uniform dimensions and the batch to be a
        contiguous stack.  The default is False, so ragged/vbatch and
        :class:`~repro.gpusim.memory.PointerArray` workloads keep the
        per-block path untouched.
        """
        return False

    def run_batch_vectorized(self, nblocks: int, smem: SharedMemory) -> None:
        """Advance blocks ``0..nblocks-1`` together, batch-interleaved.

        Must be numerically bit-identical to running ``run_block`` for
        each of the ``nblocks`` blocks in order.  ``smem`` carries the
        aggregate budget of all executed blocks (``nblocks ×`` the
        per-block occupancy limit), mirroring the total on-chip footprint
        the grid would occupy.  Only called when
        :meth:`can_batch_vectorize` or :meth:`can_pack_vectorize`
        returned True.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement the "
            "batch-interleaved path")

    def can_soa_vectorize(self) -> bool:
        """Whether the inputs are a batch-interleaved (SoA) stack.

        Kernels whose operand lists are lanes of one lane-fastest
        interleaved stack (:func:`repro.core.batch_args.
        is_interleaved_stack`) return True: the batch-interleaved body
        then runs *natively* on a zero-copy ``(batch, ...)`` view — no
        gather, no scatter — and the launch is attributed ``[vec+soa]``
        in traces.  Checked after :meth:`can_batch_vectorize` (uniform
        lane-major stacks keep the classic ``[vec]`` attribution) and
        before :meth:`can_pack_vectorize` (interleaved lanes interleave
        their byte ranges, so the pack stage would reject them as
        overlapping).  The default is False.
        """
        return False

    # -- pack/scatter stage ------------------------------------------------

    def pack_operands(self) -> tuple:
        """Operand sequences the pack stage would gather and scatter back.

        A kernel with a batch-interleaved body whose staging loop copies
        per-problem arrays into ``(batch, ...)`` stacks (and writes the
        results back) returns those sequences here — typically
        ``(self.mats,)`` or ``(self.mats, self.rhs)``.  ``launch`` uses
        them to decide pack eligibility (:meth:`can_pack_vectorize`) and
        to attribute the staging traffic (:meth:`pack_bytes`).  The
        default (no operands) disables the pack path.
        """
        return ()

    def can_pack_vectorize(self) -> bool:
        """Whether a gather/pack stage makes this launch vectorizable.

        Inputs that are *not* a uniform contiguous stack — pointer-array
        batches, scattered allocations, strided views — can still take the
        batch-interleaved path if every operand batch can be gathered into
        a uniform stack and scattered back: same shape and dtype per
        problem, and no two problems sharing memory (see
        :func:`repro.gpusim.memory.is_packable_batch`).  Aliased or
        overlapping batches stay per-block, where repeated processing of
        the same storage keeps its sequential semantics.
        """
        from .memory import is_packable_batch
        ops = self.pack_operands()
        return bool(ops) and all(is_packable_batch(seq) for seq in ops)

    def pack_bytes(self, nblocks: int) -> int:
        """Bytes moved by the pack stage (gather + scatter) for a launch
        executing ``nblocks`` blocks — the host-side staging overhead the
        trace attributes to a ``[vec+pack]`` launch."""
        total = 0
        for seq in self.pack_operands():
            for a in list(seq)[:nblocks]:
                total += int(np.asarray(a).nbytes)
        return 2 * total

    # -- convenience -------------------------------------------------------

    def timing(self, device: DeviceSpec) -> KernelTiming:
        """Cost-model timing of this kernel on ``device``."""
        return estimate_kernel_time(
            device,
            grid=self.grid(),
            threads_per_block=self.threads(),
            smem_per_block=self.smem_bytes(),
            block_cost=self.block_cost(),
            kernel_name=self.name,
        )


@dataclass(frozen=True)
class LaunchRecord:
    """One completed (or timed-only) kernel launch."""

    kernel_name: str
    grid: int
    threads: int
    smem_bytes: int
    timing: KernelTiming
    executed_blocks: int
    vectorized: bool = False
    packed: bool = False
    pack_bytes: int = 0
    # Batch-interleaved (SoA) execution: the kernel ran natively on a
    # lane-fastest interleaved stack (zero-copy staging).  ``soa_bytes``
    # carries the round-trip traffic of a batch-boundary layout
    # conversion when the driver performed one (``layout=`` knob) — it
    # lands on the first launch after the conversion only, so summing it
    # over a trace counts conversions, not stages.
    soa: bool = False
    soa_bytes: int = 0
    # Fault-injection events (repro.gpusim.faults.FaultEvent) that struck
    # this launch — lane corruptions applied after the blocks executed,
    # and injected kernel hangs (which also set ``hang_time``).
    # Launch-level faults abort the launch and never produce a record; they
    # live on the injector's log instead.
    faults: tuple = ()
    # Extra modeled seconds from an injected kernel hang; a stream armed
    # with a watchdog deadline converts the inflated ``time`` into a
    # KernelHangError instead of recording it.
    hang_time: float = 0.0

    @property
    def time(self) -> float:
        return self.timing.total + self.hang_time

    @property
    def display_name(self) -> str:
        """Kernel name with a ``[vec]`` suffix for batch-interleaved runs
        (``[vec+pack]`` when a gather/pack stage staged non-uniform
        inputs, ``[vec+soa]`` when the kernel ran natively on a
        batch-interleaved stack), so vectorized launches stay
        attributable in traces (label table: docs/ARCHITECTURE.md)."""
        if self.soa:
            return f"{self.kernel_name}[vec+soa]"
        if self.packed:
            return f"{self.kernel_name}[vec+pack]"
        if self.vectorized:
            return f"{self.kernel_name}[vec]"
        return self.kernel_name


def launch(device: DeviceSpec, kernel: Kernel, *, stream=None,
           execute: bool = True, max_blocks: int | None = None,
           vectorize: bool | None = None) -> LaunchRecord:
    """Launch ``kernel`` on ``device``.

    Parameters
    ----------
    stream:
        Optional :class:`repro.gpusim.stream.Stream`; the launch is appended
        to its timeline (the paper's API requires a stream argument for all
        batched calls).
    execute:
        Run the functional block bodies.  When False only the timing model
        is evaluated — used by the benchmark harness for large batches.
    max_blocks:
        Execute at most this many blocks functionally (still timing the full
        grid).  Lets benchmarks validate numerics on a sample while modeling
        a batch of 1000.
    vectorize:
        Select the execution path for the functional bodies.  ``None``
        (default) auto-dispatches: the batch-interleaved
        :meth:`Kernel.run_batch_vectorized` path runs when more than one
        block executes and the kernel reports either
        :meth:`Kernel.can_batch_vectorize` (uniform stack, staged
        directly) or :meth:`Kernel.can_pack_vectorize` (scattered but
        packable inputs, staged through the gather/pack stage); otherwise
        blocks run one at a time through :meth:`Kernel.run_block`.
        ``False`` forces the per-block path (the reference semantics).
        ``True`` requires the vectorized path and raises
        :class:`~repro.errors.DeviceError` if the kernel (or its current
        inputs) cannot take it even with packing.  Both paths are
        bit-identical by contract.

    Raises
    ------
    SharedMemoryError
        If the kernel cannot launch on this device, or an armed fault plan
        (:mod:`repro.gpusim.faults`) rejects the shared-memory request.
    DeviceError
        If ``vectorize=True`` but the kernel cannot batch-vectorize its
        current inputs, even through the pack/scatter stage; or an armed
        fault plan injects a launch failure.
    """
    from .faults import active_injector

    grid = kernel.grid()
    if grid < 0:
        raise DeviceError(f"negative grid size {grid}",
                          kernel=kernel.name, device=device.name)
    health = device_health(device)
    try:
        timing = kernel.timing(device)  # raises SharedMemoryError if unlaunchable
    except SharedMemoryError:
        health.record_failure("smem")
        raise
    injector = active_injector(device)
    if injector is not None:
        # May raise an injected DeviceLostError / DeviceError /
        # SharedMemoryError.  Runs after the genuine resource checks so a
        # kernel that truly cannot launch reports its real failure, not an
        # injected one.  Every failure mode lands on the device's rolling
        # health window, keyed by kind, for the circuit breaker to read.
        try:
            injector.on_launch(device, kernel)
        except DeviceLostError:
            health.record_failure("device-lost")
            raise
        except SharedMemoryError:
            health.record_failure("smem")
            raise
        except DeviceError:
            health.record_failure("launch")
            raise
    # A capturing stream (see repro.gpusim.graph) records the kernel as a
    # graph node instead of executing it; work happens at replay.
    capturing = bool(getattr(stream, "_capturing", False))
    if capturing:
        execute = False
    if vectorize and not (kernel.can_batch_vectorize()
                          or kernel.can_soa_vectorize()
                          or kernel.can_pack_vectorize()):
        raise DeviceError(
            f"kernel {kernel.name!r} cannot batch-vectorize its current "
            "inputs (no batch-interleaved path, or aliased/overlapping/"
            "mixed-shape blocks that the pack stage cannot stage)")
    executed = 0
    vectorized = False
    packed = False
    soa = False
    pack_bytes = 0
    faults: tuple = ()
    if execute:
        limit = timing.occupancy.smem_per_block
        n_exec = grid if max_blocks is None else min(grid, max_blocks)
        if vectorize is False:
            use_vec = direct = soa = False
        else:
            direct = kernel.can_batch_vectorize()
            soa = not direct and kernel.can_soa_vectorize()
            if vectorize:
                use_vec = True
            else:
                use_vec = n_exec > 1 and (direct or soa
                                          or kernel.can_pack_vectorize())
        smem_ctx = dict(kernel=kernel.name, device=device.name)
        if injector is not None and n_exec > 0:
            # Transfer-SDC strikes the staged inputs the blocks are about
            # to consume (a corrupted host-to-device copy); the events
            # ride the same record as post-execution corruption.
            faults = injector.before_execution(device, kernel, n_exec)
        if use_vec and n_exec > 0:
            kernel.run_batch_vectorized(
                n_exec, SharedMemory(limit * n_exec, **smem_ctx))
            executed = n_exec
            vectorized = True
            packed = not direct and not soa
            if packed:
                pack_bytes = kernel.pack_bytes(n_exec)
        else:
            soa = False
            for bid in range(n_exec):
                kernel.run_block(bid, SharedMemory(limit, **smem_ctx))
                executed += 1
        if injector is not None and executed:
            faults = tuple(faults) + injector.after_execution(
                device, kernel, executed)
    hang_time = 0.0
    if injector is not None:
        # Injected hangs inflate the launch's modeled duration; the events
        # travel on the record so traces attribute the stall even when no
        # watchdog converts it into an error.
        hang_time, hang_events = injector.injected_hang(device, kernel)
        if hang_events:
            faults = tuple(faults) + tuple(hang_events)
    global _pending_convert_bytes
    soa_bytes, _pending_convert_bytes = _pending_convert_bytes, 0
    record = LaunchRecord(
        kernel_name=kernel.name,
        grid=grid,
        threads=kernel.threads(),
        smem_bytes=kernel.smem_bytes(),
        timing=timing,
        executed_blocks=executed,
        vectorized=vectorized,
        packed=packed,
        pack_bytes=pack_bytes,
        soa=soa and vectorized,
        soa_bytes=soa_bytes,
        faults=faults,
        hang_time=hang_time,
    )
    if stream is not None:
        # May raise KernelHangError when the stream's watchdog deadline
        # fires; Stream.record logs the hang on the health tracker itself.
        stream.record(record)
        if capturing:
            stream.add_node(kernel)
    health.record_success(record.time)
    return record
