"""Persistent tuning tables: best (nb, threads) per (kl, ku) per device.

The sweep (:mod:`repro.tuning.sweep`) produces one table per device; tables
serialise to a small JSON document so shipped defaults can be versioned in
the repository, mirroring the paper's "post-processing phase that extracts
the best tuning parameters for a given band pattern".
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["TuningEntry", "TuningTable"]


@dataclass(frozen=True)
class TuningEntry:
    """Best parameters found for one band pattern."""

    kl: int
    ku: int
    nb: int
    threads: int
    time: float        # modeled batch time at the calibration size, seconds


@dataclass
class TuningTable:
    """Lookup table of swept tuning results for one device."""

    device_name: str
    entries: dict[tuple[int, int], TuningEntry] = field(default_factory=dict)

    def add(self, entry: TuningEntry) -> None:
        self.entries[(entry.kl, entry.ku)] = entry

    def lookup(self, kl: int, ku: int) -> tuple[int, int] | None:
        """Exact hit, else nearest swept band pattern, else ``None``."""
        hit = self.entries.get((kl, ku))
        if hit is not None:
            return hit.nb, hit.threads
        if not self.entries:
            return None
        # Nearest neighbour in (kl, ku) space: band behaviour varies
        # smoothly with the bandwidths, so the closest swept pattern is a
        # good proxy for an unswept one.
        key = min(self.entries,
                  key=lambda k: (k[0] - kl) ** 2 + (k[1] - ku) ** 2)
        e = self.entries[key]
        return e.nb, e.threads

    # -- serialisation -------------------------------------------------

    def to_json(self) -> str:
        doc = {
            "device": self.device_name,
            "entries": [
                {"kl": e.kl, "ku": e.ku, "nb": e.nb,
                 "threads": e.threads, "time": e.time}
                for e in sorted(self.entries.values(),
                                key=lambda e: (e.kl, e.ku))
            ],
        }
        return json.dumps(doc, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "TuningTable":
        doc = json.loads(text)
        table = cls(device_name=doc["device"])
        for e in doc["entries"]:
            table.add(TuningEntry(kl=e["kl"], ku=e["ku"], nb=e["nb"],
                                  threads=e["threads"], time=e["time"]))
        return table

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "TuningTable":
        return cls.from_json(Path(path).read_text())
