"""Command-line tuning sweep (regenerates the shipped tables).

Usage::

    python -m repro.tuning                          # both devices, full range
    python -m repro.tuning --device h100-pcie --kl-max 8 --ku-max 8
    python -m repro.tuning --out mytables/          # custom output directory

Mirrors the paper's offline sweep (Section 5.3): square sizes up to 1024,
``kl, ku`` in ``[0:kl_max] x [0:ku_max]``, best ``(nb, threads)`` extracted
per pattern and written as JSON tables consumed by the runtime lookup.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..gpusim.device import get_device, list_devices
from .defaults import _DATA_DIR
from .sweep import SweepConfig, run_sweep


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.tuning",
        description="Run the sliding-window tuning sweep and write "
                    "per-device tables.")
    parser.add_argument("--device", action="append", dest="devices",
                        choices=list_devices(),
                        help="device(s) to sweep; default: all registered")
    parser.add_argument("--kl-max", type=int, default=32,
                        help="sweep kl in [0, KL_MAX] (default 32)")
    parser.add_argument("--ku-max", type=int, default=32,
                        help="sweep ku in [0, KU_MAX] (default 32)")
    parser.add_argument("--step", type=int, default=1,
                        help="stride through the kl/ku ranges (default 1)")
    parser.add_argument("--batch", type=int, default=1000,
                        help="calibration batch size (default 1000)")
    parser.add_argument("--out", type=Path, default=_DATA_DIR,
                        help="output directory (default: the shipped "
                             "tables, overwriting them)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    devices = args.devices or list_devices()
    args.out.mkdir(parents=True, exist_ok=True)
    for name in devices:
        device = get_device(name)
        cfg = SweepConfig(
            device=device,
            kl_range=range(0, args.kl_max + 1, args.step),
            ku_range=range(0, args.ku_max + 1, args.step),
            batch=args.batch)
        t0 = time.perf_counter()
        table = run_sweep(cfg, progress=not args.quiet)
        path = args.out / f"{name}.json"
        table.save(path)
        if not args.quiet:
            print(f"{name}: {len(table.entries)} patterns in "
                  f"{time.perf_counter() - t0:.1f}s -> {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
