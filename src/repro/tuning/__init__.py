"""Tuning framework: offline sweep, tables, and shipped defaults."""

from .defaults import (
    FUSED_CUTOFF,
    FUSED_GBSV_CUTOFF,
    get_active_table,
    heuristic_window_params,
    load_shipped_table,
    set_active_table,
    window_params,
)
from .sweep import SweepConfig, candidate_nbs, candidate_threads, run_sweep, sweep_band_pattern
from .table import TuningEntry, TuningTable

__all__ = [
    "FUSED_CUTOFF",
    "FUSED_GBSV_CUTOFF",
    "SweepConfig",
    "TuningEntry",
    "TuningTable",
    "get_active_table",
    "heuristic_window_params",
    "load_shipped_table",
    "candidate_nbs",
    "candidate_threads",
    "run_sweep",
    "set_active_table",
    "sweep_band_pattern",
    "window_params",
]
