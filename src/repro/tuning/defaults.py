"""Default tuning parameters for the sliding-window kernels.

The sliding-window factorization has two tuning parameters (paper Section
5.3): the blocking size ``nb`` and the number of threads assigned to one
matrix (minimum ``kl + 1``, no upper limit).  The paper selects them by an
offline benchmark sweep over ``kl, ku in [0:32]`` and square sizes up to
1024, post-processed into per-device tables.

This module provides (a) sensible closed-form heuristics used before any
sweep has run, and (b) the lookup path into swept tables produced by
:mod:`repro.tuning.sweep` and stored via :mod:`repro.tuning.table`.
"""

from __future__ import annotations

from pathlib import Path

from ..gpusim.device import DeviceSpec
from .table import TuningTable

__all__ = ["heuristic_window_params", "window_params", "FUSED_CUTOFF",
           "FUSED_GBSV_CUTOFF", "set_active_table", "get_active_table",
           "load_shipped_table"]

# Swept tables shipped with the package (regenerate with
# ``python -m repro.tuning.sweep`` / benchmarks/bench_tuning_sweep.py).
_DATA_DIR = Path(__file__).parent / "data"

# The dispatcher prefers the fully fused factorization kernel below this
# matrix order (paper Section 5.4: "for very small matrices (e.g., up to
# 64 x 64), the fully fused kernel has a slight advantage").
FUSED_CUTOFF = 64

# The fused factorize-and-solve kernel is enabled "for systems with order 64
# or less, and for a single right hand side" (paper Section 7).
FUSED_GBSV_CUTOFF = 64

_ACTIVE_TABLES: dict[str, TuningTable] = {}


def set_active_table(device_name: str, table: TuningTable) -> None:
    """Install a swept tuning table for a device (overrides heuristics)."""
    _ACTIVE_TABLES[device_name] = table


def get_active_table(device_name: str) -> TuningTable | None:
    """The tuning table currently installed for a device, if any."""
    return _ACTIVE_TABLES.get(device_name)


def heuristic_window_params(device: DeviceSpec, kl: int,
                            ku: int) -> tuple[int, int]:
    """Closed-form ``(nb, threads)`` choice for a band pattern.

    * ``threads``: the column height ``kl + 1`` rounded up toward a half
      warp — enough lanes to keep the shared-memory pipe busy without
      wasting residency on idle threads.
    * ``nb``: large enough that the per-iteration window shift (which moves
      ``kv + 1`` columns) is amortised over the ``nb`` factored columns,
      bounded so the window still fits comfortably for large bands on the
      small-LDS device.
    """
    kv = kl + ku
    # Enough lanes that the rank-1 update of one column finishes in at most
    # two rounds, floored at a half warp, capped by the block limit.
    work = max(kl * (kv + 1), 1)
    threads = max(kl + 1, device.warp_size // 2,
                  min(-(-work // 2), device.max_threads_per_block))
    nb = min(max(2 * (kv + 1), 16), 64)
    # Keep the window under a quarter of the per-SM capacity so at least a
    # few factorizations stay resident even for wide bands.
    rows = kv + kl + 1
    while nb > 8:
        smem = (nb + kv + 1) * rows * 8
        if smem <= device.smem_per_sm // 4:
            break
        nb //= 2
    return nb, threads


def load_shipped_table(device_name: str) -> TuningTable | None:
    """Load the swept table shipped with the package, if one exists."""
    path = _DATA_DIR / f"{device_name}.json"
    if not path.is_file():
        return None
    return TuningTable.load(path)


def window_params(device: DeviceSpec, kl: int, ku: int) -> tuple[int, int]:
    """Best-known ``(nb, threads)`` for a band pattern.

    Resolution order: an explicitly installed table
    (:func:`set_active_table`), then the swept table shipped with the
    package, then the closed-form heuristic.
    """
    table = _ACTIVE_TABLES.get(device.name)
    if table is None:
        table = load_shipped_table(device.name)
        if table is not None:
            _ACTIVE_TABLES[device.name] = table
    if table is not None:
        hit = table.lookup(kl, ku)
        if hit is not None:
            return hit
    return heuristic_window_params(device, kl, ku)
