"""Offline tuning sweep for the sliding-window factorization (Section 5.3).

"The sliding window design requires a careful choice of two tuning
parameters ... the blocking size (nb), and ... the number of threads
assigned to a single matrix.  [We] have conducted a benchmark sweep for
square matrices up to 1024, for any kl/ku in the range [0:32].  The results
... are then fed to a post-processing phase that extracts the best tuning
parameters for a given band pattern.  Separate test sweeps have been
conducted for the H100 GPU and the AMD MI250x GPU."

The sweep evaluates the calibrated timing model (the same model the
benchmarks report) for each candidate ``(nb, threads)`` on each band
pattern, at one or more calibration sizes, and keeps the configuration with
the lowest total time.  Infeasible configurations (window exceeding the
per-block shared-memory limit) are skipped, exactly as a real sweep would
observe launch failures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..band.layout import BandLayout
from ..core.costs import gbtrf_window_cost
from ..errors import SharedMemoryError
from ..gpusim.costmodel import estimate_kernel_time
from ..gpusim.device import DeviceSpec
from .table import TuningEntry, TuningTable

__all__ = ["SweepConfig", "sweep_band_pattern", "run_sweep",
           "candidate_nbs", "candidate_threads"]

# Calibration sizes: a mid-size and the sweep's upper bound; the paper
# sweeps all square sizes up to 1024, we integrate over representatives
# (the window kernel's per-column cost is size-independent, so two sizes
# capture the size dependence of the iteration overheads).
DEFAULT_SIZES = (256, 1024)
DEFAULT_BATCH = 1000


def candidate_nbs(kl: int, ku: int) -> list[int]:
    """Candidate blocking sizes for the sweep."""
    cands = {8, 16, 24, 32, 48, 64, 96}
    kv = kl + ku
    cands.add(max(1, kv + 1))
    cands.add(max(1, 2 * (kv + 1)))
    return sorted(cands)


def candidate_threads(device: DeviceSpec, kl: int, ku: int) -> list[int]:
    """Candidate thread counts: from the design minimum ``kl + 1`` upward."""
    kv = kl + ku
    base = {kl + 1, device.warp_size // 2, device.warp_size,
            2 * device.warp_size}
    base.add(max(1, kl * (kv + 1) // 2))
    base.add(max(1, kl * (kv + 1)))
    return sorted(t for t in base
                  if kl + 1 <= t <= device.max_threads_per_block)


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one sweep run."""

    device: DeviceSpec
    kl_range: Sequence[int] = tuple(range(0, 33))
    ku_range: Sequence[int] = tuple(range(0, 33))
    sizes: Sequence[int] = DEFAULT_SIZES
    batch: int = DEFAULT_BATCH
    dtype: np.dtype = np.dtype(np.float64)


def _config_time(device: DeviceSpec, n: int, kl: int, ku: int, nb: int,
                 threads: int, batch: int, itemsize: int) -> float:
    layout = BandLayout(n, n, kl, ku)
    cost = gbtrf_window_cost(n, n, kl, ku, nb, threads, itemsize)
    timing = estimate_kernel_time(
        device, grid=batch, threads_per_block=threads,
        smem_per_block=layout.window_elems(nb) * itemsize,
        block_cost=cost, kernel_name="gbtrf_window(sweep)")
    return timing.total


def sweep_band_pattern(device: DeviceSpec, kl: int, ku: int, *,
                       sizes: Sequence[int] = DEFAULT_SIZES,
                       batch: int = DEFAULT_BATCH,
                       itemsize: int = 8) -> TuningEntry:
    """Find the best ``(nb, threads)`` for one band pattern."""
    best: TuningEntry | None = None
    for nb in candidate_nbs(kl, ku):
        for threads in candidate_threads(device, kl, ku):
            try:
                total = sum(
                    _config_time(device, n, kl, ku, nb, threads, batch,
                                 itemsize)
                    for n in sizes)
            except SharedMemoryError:
                continue
            if best is None or total < best.time:
                best = TuningEntry(kl=kl, ku=ku, nb=nb, threads=threads,
                                   time=total)
    if best is None:
        raise SharedMemoryError(
            BandLayout(max(sizes), max(sizes), kl, ku).window_elems(1)
            * itemsize,
            device.max_smem_per_block, "gbtrf_window(sweep)")
    return best


def run_sweep(config: SweepConfig, *,
              progress: bool = False) -> TuningTable:
    """Sweep every ``(kl, ku)`` pair of the configured ranges."""
    table = TuningTable(device_name=config.device.name)
    itemsize = config.dtype.itemsize
    for kl in config.kl_range:
        for ku in config.ku_range:
            entry = sweep_band_pattern(
                config.device, kl, ku, sizes=config.sizes,
                batch=config.batch, itemsize=itemsize)
            table.add(entry)
        if progress:
            print(f"swept kl={kl} "
                  f"({len(table.entries)} patterns)")
    return table
