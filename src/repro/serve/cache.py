"""LRU factorization cache, charged against the device memory pool.

Repeated solves against the same operator are the bread and butter of a
solver service (implicit time steppers re-solve one Jacobian for many
right-hand sides and Newton iterations).  The cache keys each operator by
an :func:`operand_digest` of its band storage and retains the *factored*
matrix plus pivots, so a hit skips ``gbtrf`` entirely and goes straight
to ``gbtrs`` — the amortization the paper's batched drivers cannot see
because they live below the request boundary.

Cached bytes are real device residency: every insertion is charged to the
device :class:`~repro.gpusim.memory.MemoryPool` under the
``"factor-cache"`` label and released on eviction/invalidation, so the
cache competes with in-flight batches for the same HBM budget and a
``REPRO_GLOBAL_MEM_BYTES`` squeeze evicts it exactly like it chunks the
drivers.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..errors import DeviceMemoryError, check_arg
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..gpusim.memory import memory_pool

__all__ = ["operand_digest", "factor_digest", "CacheEntry", "FactorCache"]

#: Pool-ledger label every cache charge is taken under.
CACHE_LABEL = "factor-cache"


def operand_digest(kl: int, ku: int, ab: np.ndarray) -> str:
    """Content digest identifying one band operator.

    Covers the bandwidths, storage shape, dtype and every stored byte of
    ``ab`` (band rows only — the factor-layout fill-in rows count too,
    since the drivers read the full ``ldab`` window).  Two operators
    collide only if they would factor identically.
    """
    ab = np.ascontiguousarray(ab)
    h = hashlib.blake2b(digest_size=16)
    h.update(f"{int(kl)}:{int(ku)}:{ab.shape}:{ab.dtype.str}".encode())
    h.update(ab.tobytes())
    return h.hexdigest()


def factor_digest(factors: np.ndarray, pivots: np.ndarray) -> str:
    """Content fingerprint of a cached factorization (blake2b-128).

    Computed over the factors *and* pivots at insertion time and
    re-checked by :meth:`CacheEntry.verify_integrity` before a verified
    service reuses the entry — the staging-boundary digest of
    :mod:`repro.core.verify` applied to the cache's resident payload, so
    silent corruption of a cached factor is caught before it contaminates
    every future hit.
    """
    h = hashlib.blake2b(digest_size=16)
    for a in (factors, pivots):
        a = np.asarray(a)
        h.update(f"{a.shape}:{a.dtype.str};".encode())
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


@dataclass
class CacheEntry:
    """One cached factorization (factors + pivots, read-only by contract)."""

    key: str
    n: int
    kl: int
    ku: int
    factors: np.ndarray
    pivots: np.ndarray
    nbytes: int
    hits: int = 0
    #: Content fingerprint of ``(factors, pivots)`` stamped at insertion.
    digest: str = ""

    def verify_integrity(self) -> bool:
        """True when the resident payload still matches its digest."""
        if not self.digest:
            return True
        return factor_digest(self.factors, self.pivots) == self.digest


@dataclass
class CacheStats:
    """Counter block the service folds into its :class:`ServiceReport`."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0
    rejected: int = 0
    #: Entries whose payload failed :func:`factor_digest` re-verification
    #: at reuse time (dropped and refactored by the verified service).
    digest_failures: int = 0


class FactorCache:
    """LRU map ``operand digest -> CacheEntry`` with pool-charged entries.

    ``max_entries``/``max_bytes`` bound the cache itself; ``None`` leaves
    the bound to the device pool (an insertion that the pool rejects
    evicts least-recently-used entries until it fits, and is dropped —
    counted in :attr:`CacheStats.rejected` — when even an empty cache
    cannot hold it).  ``max_entries=0`` disables caching entirely: every
    lookup misses and every insertion is rejected, which is the honest
    baseline configuration for the serving benchmark.
    """

    def __init__(self, *, max_entries: int | None = None,
                 max_bytes: int | None = None,
                 device: DeviceSpec = H100_PCIE):
        check_arg(max_entries is None or max_entries >= 0, 1,
                  f"max_entries must be >= 0, got {max_entries}")
        check_arg(max_bytes is None or max_bytes >= 0, 2,
                  f"max_bytes must be >= 0, got {max_bytes}")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.device = device
        self.stats = CacheStats()
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()

    # -- introspection ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    @property
    def enabled(self) -> bool:
        return self.max_entries != 0

    @property
    def nbytes(self) -> int:
        """Bytes currently charged against the device pool."""
        return sum(e.nbytes for e in self._entries.values())

    def keys(self):
        """Digests resident right now, least-recently-used first."""
        return list(self._entries)

    # -- the LRU protocol -------------------------------------------------

    def lookup(self, key: str) -> CacheEntry | None:
        """Return the entry for ``key`` (refreshing recency) or ``None``.

        Counts exactly one hit or miss — the service calls this once per
        request at dispatch time.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        entry.hits += 1
        self.stats.hits += 1
        return entry

    def insert(self, key: str, n: int, kl: int, ku: int,
               factors: np.ndarray, pivots: np.ndarray) -> bool:
        """Cache a factorization; returns True when it was retained.

        The entry's bytes are charged to the device pool first; under
        memory pressure LRU entries are evicted until the charge fits.
        ``factors``/``pivots`` must not be mutated afterwards (the service
        hands the drivers read-only views).
        """
        if not self.enabled or key in self._entries:
            if not self.enabled:
                self.stats.rejected += 1
            return False
        nbytes = int(factors.nbytes) + int(pivots.nbytes)
        if self.max_bytes is not None:
            while self._entries and self.nbytes + nbytes > self.max_bytes:
                self._evict_lru()
            if nbytes > self.max_bytes:
                self.stats.rejected += 1
                return False
        if self.max_entries is not None:
            while len(self._entries) >= self.max_entries:
                self._evict_lru()
        pool = memory_pool(self.device)
        while True:
            try:
                pool.alloc(nbytes, label=CACHE_LABEL)
                break
            except DeviceMemoryError:
                if not self._entries:
                    self.stats.rejected += 1
                    return False
                self._evict_lru()
        factors = factors.copy()
        factors.setflags(write=False)
        pivots = pivots.copy()
        pivots.setflags(write=False)
        self._entries[key] = CacheEntry(key, int(n), int(kl), int(ku),
                                        factors, pivots, nbytes,
                                        digest=factor_digest(factors,
                                                             pivots))
        self.stats.insertions += 1
        return True

    def _evict_lru(self) -> None:
        key, entry = next(iter(self._entries.items()))
        self._drop(key, entry)
        self.stats.evictions += 1

    def _drop(self, key: str, entry: CacheEntry) -> None:
        del self._entries[key]
        memory_pool(self.device).free(entry.nbytes, label=CACHE_LABEL)

    def ensure_headroom(self, nbytes: int) -> int:
        """Evict LRU entries until the device pool could admit ``nbytes``.

        The cache must never starve in-flight work: before a dispatch the
        service asks for the flush's footprint, and cached factorizations
        yield (least-recently-used first) until the pool has room — or
        the cache is empty and the drivers' own admission control takes
        over.  Returns the number of entries evicted.  A request whose
        factors are evicted mid-flight keeps its host reference; only the
        modeled residency is released.
        """
        evicted = 0
        pool = memory_pool(self.device)
        while self._entries and pool.available < nbytes:
            self._evict_lru()
            evicted += 1
        return evicted

    def invalidate(self, key: str | None = None) -> int:
        """Drop one digest (or everything); returns entries dropped.

        This is the explicit-invalidation hook: call it when an operator's
        coefficients changed under a reused storage buffer, or on a
        deployment boundary.  Dropping an absent digest is a no-op.
        """
        if key is not None:
            entry = self._entries.get(key)
            if entry is None:
                return 0
            self._drop(key, entry)
            self.stats.invalidations += 1
            return 1
        dropped = len(self._entries)
        for k, entry in list(self._entries.items()):
            self._drop(k, entry)
        self.stats.invalidations += dropped
        return dropped

    def close(self) -> None:
        """Release every pool charge (idempotent; counts no invalidation)."""
        for k, entry in list(self._entries.items()):
            self._drop(k, entry)

    def __repr__(self) -> str:
        return (f"FactorCache({len(self)} entries, {self.nbytes} bytes, "
                f"hits={self.stats.hits} misses={self.stats.misses} "
                f"evictions={self.stats.evictions})")
