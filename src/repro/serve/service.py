"""Solver-as-a-service ingress: request coalescing over the batched drivers.

The execution stack below this module (vectorize -> pack -> govern ->
chunk -> pipeline) is batch-in, batch-out; production traffic is millions
of *independent* single-system solve requests.  :class:`SolverService` is
the ingress layer between the two:

* ``submit(kl, ku, ab, b)`` accepts one band system and returns a
  :class:`SolveHandle` immediately (the request payload is snapshotted,
  so the caller's arrays are never mutated);
* pending requests coalesce under a deadline-aware micro-batching policy
  (:class:`BatchingPolicy`): a flush fires when the group reaches
  ``max_group`` lanes, when the oldest pending request ages past
  ``max_delay``, or when the pending device footprint would exceed the
  admission budget of :mod:`repro.core.memory_plan` (backpressure);
* each flush looks every operator up in the :class:`~repro.serve.cache.
  FactorCache`; misses are deduplicated and factored through
  :func:`~repro.core.batched.gbtrf_vbatch` (one call — the vbatch driver
  buckets configurations internally), then every request solves through
  :func:`~repro.core.gbtrs.gbtrs_batch` groups against cached or
  just-computed factors.  A cache hit therefore runs ``gbtrs`` against
  byte-identical factors and is bit-identical to the cold path by the
  same contract that makes every layer below bit-identical to the layer
  beneath it;
* the ``vectorize`` / ``resilient`` / ``streams`` / ``devices`` /
  ``overlap`` / ``max_resident_bytes`` / ``chunk_hint`` knobs of the
  batched drivers pass through unchanged.

Everything observable lands in a :class:`~repro.serve.report.
ServiceReport` (flush reasons, group-size histogram, cache hit/miss/
eviction counters, backpressure count, merged resilient reports).
"""

from __future__ import annotations

import threading
import time
import warnings
from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from ..core.batched import gbtrf_vbatch
from ..core.gbtrs import gbtrs_batch
from ..errors import (
    DeviceMemoryError,
    RequestShedError,
    SingularMatrixError,
    check_arg,
)
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..gpusim.memory import memory_pool
from ..types import Trans
from .cache import FactorCache, operand_digest
from .report import ServiceReport

__all__ = ["BatchingPolicy", "SolveHandle", "SolverService"]

#: Device bytes of one ``info`` entry / one device pointer (mirrors
#: :mod:`repro.core.memory_plan`).
_INFO_BYTES = 8
_POINTER_BYTES = 8


@dataclass(frozen=True)
class BatchingPolicy:
    """Deadline-aware micro-batching knobs.

    Attributes
    ----------
    max_group:
        Flush as soon as this many requests are pending.  ``1`` degrades
        the service to one-request-per-dispatch (the benchmark baseline).
    max_delay:
        Seconds the *oldest* pending request may wait before an age flush
        — the per-request latency deadline.  Age is checked on every
        ``submit``/``poll`` (and by the optional background poller), so
        the deadline holds to the polling granularity, not exactly.
    max_pending_bytes:
        Optional cap on the pending set's device footprint, tightening
        the admission budget below what the device pool allows.
    """

    max_group: int = 64
    max_delay: float = 0.002
    max_pending_bytes: int | None = None

    def __post_init__(self):
        check_arg(self.max_group >= 1, 1,
                  f"max_group must be >= 1, got {self.max_group}")
        check_arg(self.max_delay >= 0.0, 2,
                  f"max_delay must be >= 0, got {self.max_delay}")
        check_arg(self.max_pending_bytes is None
                  or self.max_pending_bytes > 0, 3,
                  f"max_pending_bytes must be positive, "
                  f"got {self.max_pending_bytes}")


class SolveHandle:
    """Future for one submitted request.

    ``result()`` returns the solution (flushing the service first when
    the request is still pending — a caller can never deadlock on its own
    handle), raises :class:`~repro.errors.SingularMatrixError` when the
    operator turned out singular, and raises
    :class:`~repro.errors.RequestShedError` when load shedding rejected
    the request (structured rejection: the error carries the sequence
    number, priority class and shed reason); ``solution``/``info``/
    ``shed_reason`` give non-raising access after completion.
    """

    __slots__ = ("seq", "submitted_at", "completed_at", "completion_index",
                 "info", "priority", "deadline_at", "shed_reason",
                 "_service", "_x", "_done")

    def __init__(self, service: "SolverService", seq: int,
                 submitted_at: float, priority: int = 0,
                 deadline_at: float | None = None):
        self.seq = seq
        self.submitted_at = submitted_at
        self.completed_at: float | None = None
        self.completion_index: int | None = None
        self.info = 0
        self.priority = int(priority)
        #: Absolute deadline on the service clock (``None`` = no deadline).
        self.deadline_at = deadline_at
        #: Why load shedding rejected the request (``None`` = not shed).
        self.shed_reason: str | None = None
        self._service = service
        self._x = None
        self._done = False

    @property
    def done(self) -> bool:
        return self._done

    @property
    def shed(self) -> bool:
        return self.shed_reason is not None

    @property
    def solution(self):
        """The solution array once done (``None`` while pending; the
        snapshotted right-hand side when the operator is singular —
        LAPACK leaves ``B`` untouched on ``info > 0``)."""
        return self._x

    @property
    def latency(self) -> float | None:
        """Seconds from submit to completion, on the service clock."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at

    def result(self) -> np.ndarray:
        if not self._done:
            self._service._flush_for_result()
        if self.shed_reason is not None:
            raise RequestShedError(self.seq, self.priority,
                                   self.shed_reason)
        if self.info > 0:
            raise SingularMatrixError(self.seq, self.info)
        return self._x

    def _complete(self, x, info: int, completed_at: float,
                  completion_index: int) -> None:
        self._x = x
        self.info = int(info)
        self.completed_at = completed_at
        self.completion_index = completion_index
        self._done = True
        self._service = None    # request is finished; drop the back-ref

    def _shed(self, reason: str, at: float) -> None:
        self.shed_reason = str(reason)
        self.completed_at = at
        self._done = True
        self._service = None


class _Pending:
    """Internal per-request record (snapshot + routing state)."""

    __slots__ = ("seq", "n", "kl", "ku", "nrhs", "ab", "b", "b_was_1d",
                 "key", "handle", "factors", "pivots", "finfo")

    def __init__(self, seq, n, kl, ku, nrhs, ab, b, b_was_1d, key, handle):
        self.seq = seq
        self.n = n
        self.kl = kl
        self.ku = ku
        self.nrhs = nrhs
        self.ab = ab                  # service-owned copy (factor layout)
        self.b = b                    # service-owned (n, nrhs) copy
        self.b_was_1d = b_was_1d
        self.key = key
        self.handle = handle
        self.factors = None
        self.pivots = None
        self.finfo = 0

    @property
    def lane_bytes(self) -> int:
        """Resident device footprint of this request when dispatched."""
        return (self.ab.nbytes + self.n * 8 + self.b.nbytes
                + _INFO_BYTES + 3 * _POINTER_BYTES)


class SolverService:
    """Micro-batching, factorization-caching front end for band solves.

    Parameters
    ----------
    device, stream:
        Where coalesced groups dispatch (same defaults as the drivers).
    policy:
        The :class:`BatchingPolicy`; ``None`` takes the defaults.
    cache_entries, cache_bytes:
        Bounds for the :class:`~repro.serve.cache.FactorCache`
        (``cache_entries=0`` disables caching).
    vectorize, resilient, resilience_policy, max_resident_bytes,
    chunk_hint, streams, devices, overlap, layout:
        Passed through to every dispatched driver call unchanged — the
        service inherits the whole execution stack below it (``layout``
        is the storage-layout selector of docs/LAYOUTS.md; cache keys
        are layout-independent, so hits stay bit-identical either way).
    verify:
        Silent-data-corruption defense (:mod:`repro.core.verify`):
        ``True``, ``'cheap'``, ``'full'`` or a
        :class:`~repro.core.verify.VerifyPolicy`.  Every dispatched
        factorization and solve runs behind its residual gate, the
        verification fields of every batch report are folded into the
        :class:`~repro.serve.report.ServiceReport`, and cached
        factorizations are digest-checked before reuse — a cache entry
        whose resident payload no longer matches its insertion-time
        fingerprint is dropped and refactored instead of contaminating
        the hit path.
    auto_poll_interval:
        When set, a daemon thread calls :meth:`poll` every that many
        seconds so age flushes fire without caller cooperation.  All
        public methods are thread-safe either way.
    clock:
        Time source for deadlines and latency stamps (injectable for
        deterministic tests and virtual-time benchmarks).
    """

    def __init__(self, *, device: DeviceSpec = H100_PCIE, stream=None,
                 policy: BatchingPolicy | None = None,
                 cache_entries: int | None = None,
                 cache_bytes: int | None = None,
                 vectorize: bool | None = None,
                 resilient: bool = False, resilience_policy=None,
                 max_resident_bytes: int | None = None,
                 chunk_hint: int | None = None,
                 streams: int | None = None, devices=None,
                 overlap: bool | None = None,
                 layout: str | None = None,
                 verify=None,
                 auto_poll_interval: float | None = None,
                 clock=time.monotonic):
        self.device = device
        self.stream = stream
        self.policy = policy or BatchingPolicy()
        self.cache = FactorCache(max_entries=cache_entries,
                                 max_bytes=cache_bytes, device=device)
        self.vectorize = vectorize
        self.resilient = resilient
        self.resilience_policy = resilience_policy
        self.max_resident_bytes = max_resident_bytes
        self.chunk_hint = chunk_hint
        self.streams = streams
        self.devices = devices
        self.overlap = overlap
        self.layout = layout
        self.verify = verify
        self._clock = clock
        self._report = ServiceReport()
        self._pending: list[_Pending] = []
        self._seq = 0
        self._completions = 0
        self._lock = threading.RLock()
        self._closed = False
        self._poller = None
        self._poller_join_timeout = 5.0
        self._poll_stop = threading.Event()
        if auto_poll_interval is not None:
            check_arg(auto_poll_interval > 0, 14,
                      f"auto_poll_interval must be positive, "
                      f"got {auto_poll_interval}")
            self._poller = threading.Thread(
                target=self._poll_loop, args=(float(auto_poll_interval),),
                name="SolverService-poller", daemon=True)
            self._poller.start()

    # -- lifecycle --------------------------------------------------------

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Flush pending work, release every cache charge, stop polling.

        A background poller that fails to join within 5 seconds is stuck
        (a wedged flush, a deadlocked driver): the close warns, marks
        ``poller_stuck`` in the :class:`~repro.serve.report.ServiceReport`
        and proceeds — silently abandoning the thread would hide exactly
        the failure a report consumer needs to see.
        """
        self._poll_stop.set()
        if self._poller is not None:
            self._poller.join(timeout=self._poller_join_timeout)
            if self._poller.is_alive():
                with self._lock:
                    self._report.poller_stuck = True
                warnings.warn(
                    f"SolverService poller failed to join within "
                    f"{self._poller_join_timeout:g}s; closing anyway with "
                    f"the thread still running (poller_stuck=True in the "
                    f"service report)", RuntimeWarning, stacklevel=2)
            self._poller = None
        with self._lock:
            if self._pending:
                self._flush_locked("close")
            self.cache.close()
            self._sync_cache_counters()
            self._closed = True

    def _poll_loop(self, interval: float) -> None:
        while not self._poll_stop.wait(interval):
            self.poll()

    # -- ingress ----------------------------------------------------------

    def submit(self, kl: int, ku: int, ab, b, *, priority: int = 0,
               deadline: float | None = None) -> SolveHandle:
        """Accept one band system ``A x = b``; returns a handle.

        ``ab`` is the operator in LAPACK factor layout (``ldab >= 2*kl +
        ku + 1`` rows, diagonal on row ``kl + ku``); ``b`` is ``(n,)`` or
        ``(n, nrhs)``.  Both are snapshotted — later mutation of the
        caller's arrays does not affect the request, and the operator
        digest identifies the snapshot for caching.

        ``priority`` is the request's class (higher = more important);
        ``deadline`` is a relative latency budget in seconds on the
        service clock.  Both feed load shedding: when a flush finds the
        healthy-device pool shrunk (the resilience policy's circuit
        breaker has devices open or dead), the lowest-priority requests
        beyond the shrunk capacity are rejected with a structured
        :class:`~repro.errors.RequestShedError`, and a request whose
        deadline has already expired at flush time is shed rather than
        dispatched late.
        """
        ab = np.asarray(ab)
        check_arg(not self._closed, 0, "service is closed")
        check_arg(kl >= 0, 1, f"kl must be non-negative, got {kl}")
        check_arg(ku >= 0, 2, f"ku must be non-negative, got {ku}")
        check_arg(deadline is None or deadline > 0.0, 6,
                  f"deadline must be positive seconds, got {deadline}")
        check_arg(ab.ndim == 2, 3,
                  f"ab must be 2-D (ldab, n), got shape {ab.shape}")
        n = ab.shape[1]
        check_arg(ab.shape[0] >= 2 * kl + ku + 1, 3,
                  f"ldab={ab.shape[0]} < 2*kl+ku+1={2 * kl + ku + 1} "
                  f"(factor layout required)")
        b = np.asarray(b)
        b_was_1d = b.ndim == 1
        if b_was_1d:
            b = b[:, None]
        check_arg(b.ndim == 2 and b.shape[0] == n, 4,
                  f"b must be (n,) or (n, nrhs) with n={n}, "
                  f"got shape {b.shape}")
        check_arg(b.dtype == ab.dtype, 4,
                  f"b has dtype {b.dtype}, expected {ab.dtype}")
        ab = np.ascontiguousarray(ab).copy()
        b = np.ascontiguousarray(b).copy()
        key = operand_digest(kl, ku, ab)
        with self._lock:
            now = self._clock()
            handle = SolveHandle(
                self, self._seq, now, priority=priority,
                deadline_at=None if deadline is None else now + deadline)
            req = _Pending(self._seq, n, int(kl), int(ku), b.shape[1],
                           ab, b, b_was_1d, key, handle)
            self._seq += 1
            self._admit_locked(req)
            self._pending.append(req)
            self._report.requests += 1
            if len(self._pending) >= self.policy.max_group:
                self._flush_locked("size")
            else:
                self._age_flush_locked()
        return handle

    def solve(self, kl: int, ku: int, ab, b) -> np.ndarray:
        """Batch-of-one convenience: submit, dispatch, return the solution.

        Dispatches immediately — anything already pending coalesces into
        the same flush.  Raises :class:`~repro.errors.
        SingularMatrixError` when the operator is singular.
        """
        return self.submit(kl, ku, ab, b).result()

    def poll(self) -> int:
        """Fire an age flush if the oldest pending request is past the
        deadline; returns the number of requests dispatched."""
        with self._lock:
            return self._age_flush_locked()

    def flush(self) -> int:
        """Dispatch everything pending now; returns requests dispatched."""
        with self._lock:
            return self._flush_locked("manual")

    def invalidate(self, kl: int | None = None, ku: int | None = None,
                   ab=None) -> int:
        """Explicitly invalidate cached factorizations.

        With no arguments the whole cache is dropped; with ``(kl, ku,
        ab)`` only that operator's entry.  Returns entries dropped.
        """
        with self._lock:
            if ab is None:
                dropped = self.cache.invalidate()
            else:
                check_arg(kl is not None and ku is not None, 1,
                          "invalidate(kl, ku, ab) needs all three")
                dropped = self.cache.invalidate(
                    operand_digest(kl, ku, np.ascontiguousarray(ab)))
            self._sync_cache_counters()
            return dropped

    def report(self) -> ServiceReport:
        """Detached snapshot of the service counters."""
        with self._lock:
            self._sync_cache_counters()
            return self._report.copy()

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._pending)

    # -- admission control (backpressure) ---------------------------------

    def _admission_budget(self) -> int:
        # Cached factorizations are reclaimable (the flush evicts them
        # for headroom), so they count toward what a dispatch could get.
        budget = memory_pool(self.device).available + self.cache.nbytes
        if self.max_resident_bytes is not None:
            budget = min(budget, int(self.max_resident_bytes))
        if self.policy.max_pending_bytes is not None:
            budget = min(budget, int(self.policy.max_pending_bytes))
        return budget

    def _admit_locked(self, req: _Pending) -> None:
        """Keep the pending footprint inside the admission budget.

        When the new request would push the pending set past the budget,
        the set is flushed first (backpressure: the submit call absorbs
        the dispatch latency).  A request that cannot fit even alone is
        rejected eagerly on the plain path — with ``resilient=True`` it
        is admitted and the drivers' OOM degradation ladder handles it.
        """
        budget = self._admission_budget()
        pending_bytes = sum(r.lane_bytes for r in self._pending)
        if self._pending and pending_bytes + req.lane_bytes > budget:
            self._report.backpressure_flushes += 1
            self._flush_locked("footprint")
            budget = self._admission_budget()
        if req.lane_bytes > budget and not self.resilient:
            pool = memory_pool(self.device)
            raise DeviceMemoryError(req.lane_bytes, pool.in_use, budget,
                                    device=self.device.name)

    # -- dispatch ---------------------------------------------------------

    def _age_flush_locked(self) -> int:
        if not self._pending:
            return 0
        oldest = self._pending[0].handle.submitted_at
        if self._clock() - oldest >= self.policy.max_delay:
            return self._flush_locked("age")
        return 0

    def _flush_for_result(self) -> None:
        with self._lock:
            if self._pending:
                self._flush_locked("manual")

    def _driver_knobs(self) -> dict:
        return dict(device=self.device, stream=self.stream,
                    vectorize=self.vectorize,
                    max_resident_bytes=self.max_resident_bytes,
                    chunk_hint=self.chunk_hint, streams=self.streams,
                    devices=self.devices, overlap=self.overlap,
                    layout=self.layout)

    def _absorb_batch_report(self, rep) -> None:
        self._report.batch_reports.append(rep.to_dict())
        self._report.faults_tolerated += rep.faults_tolerated
        self._report.device_events.extend(
            dict(e) for e in getattr(rep, "device_events", ()))
        self._report.failovers += getattr(rep, "failovers", 0)
        self._report.hedges += getattr(rep, "hedges", 0)
        self._report.verified_lanes += getattr(rep, "verified_lanes", 0)
        self._report.sdc_detected += len(getattr(rep, "sdc_detected", ()))
        self._report.sdc_recovered += len(
            getattr(rep, "sdc_recovered", ()))
        self._report.recomputes += getattr(rep, "recomputes", 0)
        self._report.residual_max = max(
            self._report.residual_max, getattr(rep, "residual_max", 0.0))

    # -- load shedding -----------------------------------------------------

    def _healthy_fraction(self) -> float:
        """Fraction of the dispatch device pool the breaker still trusts."""
        breaker = getattr(self.resilience_policy, "breaker", None)
        if breaker is None:
            return 1.0
        devs = self.devices
        if devs is None:
            names = [self.device.name]
        elif isinstance(devs, int):
            if devs <= 1:
                names = [self.device.name]
            else:
                from ..gpusim.multidevice import replicate_device
                names = [d.name
                         for d in replicate_device(self.device, devs)]
        else:
            names = [d.name for d in devs]
        return breaker.healthy_fraction(names)

    def _shed_one(self, req: _Pending, reason: str, now: float) -> None:
        self._report.shed += 1
        self._report.shed_reasons[reason] = (
            self._report.shed_reasons.get(reason, 0) + 1)
        prio = req.handle.priority
        self._report.shed_priorities[prio] = (
            self._report.shed_priorities.get(prio, 0) + 1)
        if reason == "deadline":
            self._report.deadlines_missed += 1
        req.handle._shed(reason, now)

    def _shed_locked(self, pending: list) -> list:
        """Deadline- and health-aware load shedding at flush time.

        Two rules, both structured rejections via
        :class:`~repro.errors.RequestShedError`:

        * a request whose deadline has already expired is shed rather
          than dispatched late (``"deadline"``);
        * when the healthy-device pool has shrunk (circuit breaker holds
          devices open or dead), capacity drops proportionally and the
          excess is shed lowest priority first — newest first within a
          class, so the oldest high-priority work survives
          (``"overload"``).
        """
        now = self._clock()
        kept = []
        for req in pending:
            dl = req.handle.deadline_at
            if dl is not None and now > dl:
                self._shed_one(req, "deadline", now)
            else:
                kept.append(req)
        frac = self._healthy_fraction()
        if frac < 1.0 and kept:
            capacity = max(1, int(len(kept) * frac))
            if len(kept) > capacity:
                order = sorted(kept,
                               key=lambda r: (r.handle.priority, -r.seq))
                doomed = {id(r) for r in order[:len(kept) - capacity]}
                survivors = []
                for req in kept:
                    if id(req) in doomed:
                        self._shed_one(req, "overload", now)
                    else:
                        survivors.append(req)
                kept = survivors
        return kept

    def _flush_locked(self, reason: str) -> int:
        pending, self._pending = self._pending, []
        if not pending:
            return 0
        pending = self._shed_locked(pending)
        if not pending:
            return 0
        self._report.flushes[reason] = (
            self._report.flushes.get(reason, 0) + 1)
        # The cache yields to in-flight work: make sure the flush's
        # footprint could be admitted before the drivers plan against
        # the pool (evicted entries stay alive on the host for any
        # pending request already holding their factors).
        self.cache.ensure_headroom(sum(r.lane_bytes for r in pending))

        verified = self.verify is not None and self.verify is not False

        # 1. Cache lookup per request; deduplicate the misses by digest.
        #    A verified service re-checks each hit's content fingerprint
        #    before trusting it: a cached factor corrupted in residence
        #    is dropped and refactored, never reused.
        reps: dict[str, _Pending] = {}
        for req in pending:
            entry = self.cache.lookup(req.key)
            if entry is not None and verified \
                    and not entry.verify_integrity():
                self.cache.stats.digest_failures += 1
                self._report.cache_digest_failures += 1
                self.cache.invalidate(req.key)
                entry = None
            if entry is not None:
                self._report.cache_hits += 1
                req.factors, req.pivots = entry.factors, entry.pivots
            else:
                self._report.cache_misses += 1
                reps.setdefault(req.key, req)

        # 2. Factor stage: one vbatch call over the unique misses (the
        #    driver buckets identical configurations internally).
        rep_list = list(reps.values())
        if rep_list:
            dims = ([r.n for r in rep_list], [r.kl for r in rep_list],
                    [r.ku for r in rep_list])
            mats = [r.ab for r in rep_list]
            kwargs = self._driver_knobs()
            if self.resilient:
                kwargs.update(resilient=True,
                              policy=self.resilience_policy)
            if verified:
                kwargs.update(verify=self.verify)
            if self.resilient or verified:
                pivots, finfo, brep = gbtrf_vbatch(dims[0], *dims, mats,
                                                   **kwargs)
                self._absorb_batch_report(brep)
            else:
                pivots, finfo = gbtrf_vbatch(dims[0], *dims, mats,
                                             **kwargs)
            self._report.factorizations += len(rep_list)
            for j, r in enumerate(rep_list):
                r.factors, r.pivots = r.ab, np.asarray(pivots[j])
                r.finfo = int(finfo[j])
        for req in pending:
            if req.factors is None or req.finfo:     # shared miss lanes
                rep = reps[req.key]
                req.factors, req.pivots = rep.factors, rep.pivots
                req.finfo = rep.finfo

        # 3. Solve stage: group solvable requests by configuration and
        #    dispatch each group through gbtrs_batch against the factors.
        groups: dict[tuple, list[_Pending]] = defaultdict(list)
        for req in pending:
            if req.finfo == 0:
                groups[(req.n, req.kl, req.ku, req.nrhs,
                        req.factors.shape)].append(req)
        for (n, kl, ku, nrhs, _shape), reqs in groups.items():
            mats, pivs, rhs, seen = [], [], [], set()
            for req in reqs:
                f = req.factors
                # A digest shared by several lanes aliases one factor
                # array; the pack stage needs disjoint storage, so give
                # duplicates their own copy unless per-block execution
                # was forced.
                if id(f) in seen and self.vectorize is not False:
                    f = np.array(f)
                seen.add(id(f))
                mats.append(f)
                pivs.append(req.pivots)
                rhs.append(req.b)
            kwargs = self._driver_knobs()
            if self.resilient:
                kwargs.update(resilient=True,
                              policy=self.resilience_policy)
            if verified:
                kwargs.update(verify=self.verify)
            if self.resilient or verified:
                _, brep = gbtrs_batch(
                    Trans.NO_TRANS, n, kl, ku, nrhs, mats, pivs, rhs,
                    batch=len(reqs), **kwargs)
                self._absorb_batch_report(brep)
            else:
                gbtrs_batch(Trans.NO_TRANS, n, kl, ku, nrhs, mats, pivs,
                            rhs, batch=len(reqs), **kwargs)
            self._report.dispatch_groups += 1
            self._report.group_sizes[len(reqs)] = (
                self._report.group_sizes.get(len(reqs), 0) + 1)

        # Cache the fresh factorizations only now that the solves have
        # run: inserting earlier would re-consume the headroom this flush
        # evicted for itself and starve the gbtrs dispatch.
        for r in rep_list:
            if r.finfo == 0:
                self.cache.insert(r.key, r.n, r.kl, r.ku, r.factors,
                                  r.pivots)

        # 4. Complete every handle, in submission order.
        now = self._clock()
        for req in pending:
            x = req.b[:, 0] if req.b_was_1d else req.b
            if req.finfo == 0:
                self._report.solved += 1
            else:
                self._report.singular += 1
            dl = req.handle.deadline_at
            if dl is not None and now > dl:
                self._report.deadlines_missed += 1
            req.handle._complete(x, req.finfo, now, self._completions)
            self._completions += 1
        self._report.dispatched_lanes += len(pending)
        self._sync_cache_counters()
        return len(pending)

    def _sync_cache_counters(self) -> None:
        stats = self.cache.stats
        self._report.cache_insertions = stats.insertions
        self._report.cache_evictions = stats.evictions
        self._report.cache_invalidations = stats.invalidations
        self._report.cache_rejected = stats.rejected
        self._report.cache_bytes = self.cache.nbytes
        self._report.cache_entries = len(self.cache)

    def __repr__(self) -> str:
        return (f"SolverService(pending={len(self._pending)}, "
                f"cache={len(self.cache)} entries, "
                f"policy={self.policy})")
