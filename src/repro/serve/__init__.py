"""Serve: solver-as-a-service ingress over the batched execution stack.

The layers below (vectorize -> pack -> govern -> chunk -> pipeline) are
batch-in, batch-out.  This package turns them into a request service:
:class:`SolverService` coalesces independent single-system solve requests
into vbatch groups under a deadline-aware :class:`BatchingPolicy`, reuses
factorizations through a pool-charged :class:`FactorCache`, and accounts
for everything in a :class:`ServiceReport`.  See ``docs/SERVING.md`` for
the guided tour.
"""

from .cache import CacheEntry, FactorCache, operand_digest
from .report import ServiceReport
from .service import BatchingPolicy, SolveHandle, SolverService

__all__ = [
    "BatchingPolicy",
    "CacheEntry",
    "FactorCache",
    "ServiceReport",
    "SolveHandle",
    "SolverService",
    "operand_digest",
]
