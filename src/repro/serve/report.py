"""Structured account of a :class:`~repro.serve.SolverService` lifetime.

:class:`ServiceReport` is to the service layer what
:class:`~repro.core.resilience.BatchReport` is to one resilient batched
call: a JSON-safe, round-trippable record of everything that happened —
how requests coalesced into dispatch groups, why each flush fired, how
the factorization cache performed, and (under ``resilient=True``) the
merged fault accounting of every dispatched batch.  The
``to_dict()/from_dict()`` pair follows the ``BatchReport`` idiom exactly
so service logs and driver logs share one consumer shape — the
report/stats surface a later online tuner can learn from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from dataclasses import fields as _dataclass_fields

__all__ = ["ServiceReport"]

#: Flush reasons, in the order :meth:`ServiceReport.summary` prints them.
FLUSH_REASONS = ("size", "age", "footprint", "manual", "close")


@dataclass
class ServiceReport:
    """Counters for one :class:`~repro.serve.SolverService` so far.

    A report is a snapshot: :meth:`~repro.serve.SolverService.report`
    returns a detached copy, so two snapshots straddling more traffic
    differ only by that traffic.
    """

    #: Requests accepted by ``submit``/``solve``.
    requests: int = 0
    #: Requests whose solve completed with ``info == 0``.
    solved: int = 0
    #: Requests that ended with ``info > 0`` (singular operator).
    singular: int = 0
    #: Flush reason -> count (``"size"``, ``"age"``, ``"footprint"``
    #: = backpressure, ``"manual"``, ``"close"``).
    flushes: dict = field(default_factory=dict)
    #: Uniform dispatch groups sent to the batched drivers.
    dispatch_groups: int = 0
    #: Lanes dispatched across all groups (= requests dispatched).
    dispatched_lanes: int = 0
    #: Group size -> number of dispatch groups of that size.
    group_sizes: dict = field(default_factory=dict)
    #: ``gbtrf`` factorizations actually executed (cache misses, deduped).
    factorizations: int = 0
    #: Requests served from a cached factorization (skipped ``gbtrf``).
    cache_hits: int = 0
    #: Requests whose operator was not in the cache.
    cache_misses: int = 0
    #: Entries inserted into the cache.
    cache_insertions: int = 0
    #: Entries evicted (capacity or device-memory pressure).
    cache_evictions: int = 0
    #: Entries dropped by explicit invalidation.
    cache_invalidations: int = 0
    #: Factorizations that could not be cached (entry exceeds the budget).
    cache_rejected: int = 0
    #: Bytes currently charged to the device pool by the cache.
    cache_bytes: int = 0
    #: Entries currently resident in the cache.
    cache_entries: int = 0
    #: Submits that had to flush first to stay under the admission budget.
    backpressure_flushes: int = 0
    #: ``BatchReport.to_dict()`` payloads from resilient dispatches.
    batch_reports: list = field(default_factory=list)
    #: Faults absorbed across all resilient dispatches.
    faults_tolerated: int = 0
    #: Requests rejected by load shedding (never dispatched).
    shed: int = 0
    #: Shed reason -> count (``"deadline"``, ``"overload"``).
    shed_reasons: dict = field(default_factory=dict)
    #: Priority class -> requests shed from it.
    shed_priorities: dict = field(default_factory=dict)
    #: Requests that missed their deadline (shed past it, or completed
    #: after it).
    deadlines_missed: int = 0
    #: Failure-domain decisions merged from every dispatched batch
    #: (circuit-breaker transitions, failovers, hedges — JSON-safe dicts).
    device_events: list = field(default_factory=list)
    #: Chunks re-sharded onto surviving devices across all dispatches.
    failovers: int = 0
    #: Straggler chunks hedged onto a second device across all dispatches.
    hedges: int = 0
    #: Lanes whose residual gate was evaluated across all verified
    #: dispatches (``verify=`` enabled on the service).
    verified_lanes: int = 0
    #: Lanes that failed a residual gate or digest check (silent data
    #: corruption detected), summed across dispatches.
    sdc_detected: int = 0
    #: Detected lanes the recovery ladder brought back under tolerance.
    sdc_recovered: int = 0
    #: Lane-recompute events the verification ladder performed.
    recomputes: int = 0
    #: Worst scaled residual observed across all verified dispatches.
    residual_max: float = 0.0
    #: Cache entries whose resident payload failed digest re-verification
    #: at reuse time (dropped and refactored instead of served).
    cache_digest_failures: int = 0
    #: True when :meth:`~repro.serve.SolverService.close` could not join
    #: the background poller within its timeout (the thread is stuck; the
    #: close proceeded anyway and said so).
    poller_stuck: bool = False

    # -- derived ----------------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests accepted but neither dispatched nor shed."""
        return self.requests - self.dispatched_lanes - self.shed

    @property
    def hit_rate(self) -> float:
        """Cache hits / looked-up requests (0.0 before any dispatch)."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_group_size(self) -> float:
        """Average lanes per dispatch group (the coalescing win)."""
        lanes = sum(int(s) * c for s, c in self.group_sizes.items())
        groups = sum(self.group_sizes.values())
        return lanes / groups if groups else 0.0

    @property
    def max_group_size(self) -> int:
        return max((int(s) for s in self.group_sizes), default=0)

    @property
    def ok(self) -> bool:
        """True when every dispatched request reached a defined state."""
        return self.dispatched_lanes == self.solved + self.singular

    # -- presentation -----------------------------------------------------

    def summary(self) -> str:
        """One-line human-readable account (``BatchReport`` idiom)."""
        parts = [f"serve requests={self.requests}"
                 f" dispatched={self.dispatched_lanes}"
                 f" groups={self.dispatch_groups}"
                 f" mean_group={self.mean_group_size:.2f}"]
        flushes = ",".join(f"{r}:{self.flushes[r]}" for r in FLUSH_REASONS
                           if self.flushes.get(r))
        if flushes:
            parts.append(f"flushes={flushes}")
        parts.append(f"cache hits={self.cache_hits}"
                     f"/misses={self.cache_misses}"
                     f" (rate={self.hit_rate:.2f},"
                     f" evictions={self.cache_evictions},"
                     f" {self.cache_bytes}B resident)")
        if self.backpressure_flushes:
            parts.append(f"backpressure={self.backpressure_flushes}")
        if self.singular:
            parts.append(f"singular={self.singular}")
        if self.faults_tolerated:
            parts.append(f"faults_tolerated={self.faults_tolerated}")
        if self.shed:
            reasons = ",".join(f"{r}:{c}"
                               for r, c in sorted(self.shed_reasons.items()))
            parts.append(f"shed={self.shed}" + (f" ({reasons})"
                                                if reasons else ""))
        if self.deadlines_missed:
            parts.append(f"deadlines_missed={self.deadlines_missed}")
        if self.failovers:
            parts.append(f"failovers={self.failovers}")
        if self.hedges:
            parts.append(f"hedges={self.hedges}")
        if self.verified_lanes or self.sdc_detected:
            parts.append(f"verify lanes={self.verified_lanes}"
                         f" sdc={self.sdc_detected}"
                         f"/recovered={self.sdc_recovered}"
                         f" recomputes={self.recomputes}"
                         f" residual_max={self.residual_max:.3e}")
        if self.cache_digest_failures:
            parts.append(f"cache_digest_failures="
                         f"{self.cache_digest_failures}")
        if self.poller_stuck:
            parts.append("poller_stuck")
        if self.pending:
            parts.append(f"pending={self.pending}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """JSON-safe dict of the full report (for structured logging).

        Everything becomes plain Python scalars/containers; the derived
        ``hit_rate`` / ``mean_group_size`` / ``ok`` properties are
        included for log consumers and ignored by :meth:`from_dict`.
        """
        return {
            "requests": int(self.requests),
            "solved": int(self.solved),
            "singular": int(self.singular),
            "flushes": {str(k): int(v) for k, v in self.flushes.items()},
            "dispatch_groups": int(self.dispatch_groups),
            "dispatched_lanes": int(self.dispatched_lanes),
            "group_sizes": {str(k): int(v)
                            for k, v in sorted(self.group_sizes.items())},
            "factorizations": int(self.factorizations),
            "cache_hits": int(self.cache_hits),
            "cache_misses": int(self.cache_misses),
            "cache_insertions": int(self.cache_insertions),
            "cache_evictions": int(self.cache_evictions),
            "cache_invalidations": int(self.cache_invalidations),
            "cache_rejected": int(self.cache_rejected),
            "cache_bytes": int(self.cache_bytes),
            "cache_entries": int(self.cache_entries),
            "backpressure_flushes": int(self.backpressure_flushes),
            "batch_reports": [dict(r) for r in self.batch_reports],
            "faults_tolerated": int(self.faults_tolerated),
            "shed": int(self.shed),
            "shed_reasons": {str(k): int(v)
                             for k, v in sorted(self.shed_reasons.items())},
            "shed_priorities": {str(k): int(v) for k, v
                                in sorted(self.shed_priorities.items())},
            "deadlines_missed": int(self.deadlines_missed),
            "device_events": [dict(e) for e in self.device_events],
            "failovers": int(self.failovers),
            "hedges": int(self.hedges),
            "verified_lanes": int(self.verified_lanes),
            "sdc_detected": int(self.sdc_detected),
            "sdc_recovered": int(self.sdc_recovered),
            "recomputes": int(self.recomputes),
            "residual_max": float(self.residual_max),
            "cache_digest_failures": int(self.cache_digest_failures),
            "poller_stuck": bool(self.poller_stuck),
            "hit_rate": float(self.hit_rate),
            "mean_group_size": float(self.mean_group_size),
            "ok": bool(self.ok),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ServiceReport":
        """Rebuild a report from :meth:`to_dict` output (round-trip).

        Unknown keys are ignored, so a report serialized by a *newer*
        version of this module (more counters) still loads here —
        forward compatibility for long-lived service logs.
        """
        known = {f.name for f in _dataclass_fields(cls)}
        d = {k: v for k, v in data.items() if k in known}
        d["flushes"] = {str(k): int(v)
                        for k, v in d.get("flushes", {}).items()}
        d["group_sizes"] = {int(k): int(v)
                            for k, v in d.get("group_sizes", {}).items()}
        d["batch_reports"] = [dict(r) for r in d.get("batch_reports", [])]
        d["shed_reasons"] = {str(k): int(v)
                             for k, v in d.get("shed_reasons", {}).items()}
        d["shed_priorities"] = {int(k): int(v) for k, v
                                in d.get("shed_priorities", {}).items()}
        d["device_events"] = [dict(e) for e in d.get("device_events", [])]
        return cls(**d)

    def copy(self) -> "ServiceReport":
        """Detached snapshot (mutating it never touches the live report)."""
        return ServiceReport.from_dict(self.to_dict())
