"""Triangular band solves (BLAS ``TBSV`` / LAPACK ``TBTRS`` analogues).

Solves ``op(T) x = b`` where ``T`` is a triangular band matrix given
directly in band storage — no factorization involved.  These are the
primitives a user reaches for when the band matrix is *already*
triangular (e.g. applying the ``U`` factor of a ``gbtrf`` result
manually, or preconditioning with a banded incomplete factor), and they
complete the band-storage BLAS surface around the batched solver.

Storage (the standard TBSV layout): ``uplo='U'`` expects ``k``
super-diagonals with the diagonal on row ``k`` of a ``(>=k+1, n)`` array;
``uplo='L'`` expects the diagonal on row 0 with ``k`` sub-diagonals below.
"""

from __future__ import annotations

import numpy as np

from ..errors import check_arg
from ..types import Trans

__all__ = ["tbsv", "tbmv", "tbtrs_batch"]


def _validate(uplo: str, diag: str, k: int, ab: np.ndarray, n: int):
    check_arg(uplo in ("U", "L"), 1, f"uplo must be 'U' or 'L', got {uplo!r}")
    check_arg(diag in ("N", "U"), 3, f"diag must be 'N' or 'U', got {diag!r}")
    check_arg(k >= 0, 4, f"k must be non-negative, got {k}")
    check_arg(ab.shape[0] >= k + 1, 5,
              f"band array has {ab.shape[0]} rows, needs {k + 1}")
    check_arg(ab.shape[1] == n, 5,
              f"band array has {ab.shape[1]} columns, expected {n}")


def _entry_rows(uplo: str, k: int, j: int, n: int) -> tuple[int, int]:
    """Dense-row range ``[lo, hi)`` of column ``j``'s stored entries."""
    if uplo == "U":
        return max(0, j - k), j + 1
    return j, min(n, j + k + 1)


def _get_col(uplo: str, k: int, ab: np.ndarray, j: int, lo: int,
             hi: int) -> np.ndarray:
    if uplo == "U":
        return ab[k + lo - j:k + hi - j, j]
    return ab[lo - j:hi - j, j]


def tbsv(uplo: str, trans: Trans | str, diag: str, n: int, k: int,
         ab: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Solve ``op(T) x = b`` in place on ``x`` (``(n,)`` or ``(n, nrhs)``).

    ``diag='U'`` treats the diagonal as implicit ones (the ``L`` factor
    convention).  No zero-diagonal guard, matching BLAS — a singular ``T``
    produces infinities (use :func:`tbtrs_batch` for the checked variant).
    """
    uplo, diag = uplo.upper(), diag.upper()
    trans = Trans.from_any(trans)
    ab = np.asarray(ab)
    _validate(uplo, diag, k, ab, n)
    check_arg(x.shape[0] == n, 7, f"x has {x.shape[0]} rows, expected {n}")
    x2 = x[:, None] if x.ndim == 1 else x
    conj = trans is Trans.CONJ_TRANS and np.iscomplexobj(ab)

    def c(v):
        return np.conj(v) if conj else v

    # Substitution order: a (effectively) lower-triangular solve runs
    # forward, an upper one backward; transposition flips the orientation.
    eff_lower = (uplo == "L") == (trans is Trans.NO_TRANS)
    order = range(n) if eff_lower else range(n - 1, -1, -1)
    for j in order:
        lo, hi = _entry_rows(uplo, k, j, n)
        col = _get_col(uplo, k, ab, j, lo, hi)
        dj = j - lo                   # index of the diagonal within col
        if trans is Trans.NO_TRANS:
            if diag == "N":
                x2[j] = x2[j] / col[dj]
            if uplo == "U" and dj > 0:
                x2[lo:j] -= np.outer(col[:dj], x2[j])
            elif uplo == "L" and hi > j + 1:
                x2[j + 1:hi] -= np.outer(col[dj + 1:], x2[j])
        else:
            # Row j of op(T) is column j of T: subtract the dot product of
            # the already-solved entries, then divide.
            if uplo == "U" and dj > 0:
                x2[j] = x2[j] - c(col[:dj]) @ x2[lo:j]
            elif uplo == "L" and hi > j + 1:
                x2[j] = x2[j] - c(col[dj + 1:]) @ x2[j + 1:hi]
            if diag == "N":
                x2[j] = x2[j] / c(col[dj])
    return x


def tbmv(uplo: str, trans: Trans | str, diag: str, n: int, k: int,
         ab: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Product ``x := op(T) x`` for a triangular band matrix, in place."""
    uplo, diag = uplo.upper(), diag.upper()
    trans = Trans.from_any(trans)
    ab = np.asarray(ab)
    _validate(uplo, diag, k, ab, n)
    check_arg(x.shape[0] == n, 7, f"x has {x.shape[0]} rows, expected {n}")
    x2 = x[:, None] if x.ndim == 1 else x
    conj = trans is Trans.CONJ_TRANS and np.iscomplexobj(ab)

    def c(v):
        return np.conj(v) if conj else v

    out = np.zeros_like(x2)
    for j in range(n):
        lo, hi = _entry_rows(uplo, k, j, n)
        col = _get_col(uplo, k, ab, j, lo, hi).copy()
        dj = j - lo
        if diag == "U":
            col[dj] = 1.0
        if trans is Trans.NO_TRANS:
            out[lo:hi] += np.outer(col, x2[j])
        else:
            out[j] += c(col) @ x2[lo:hi]
    x2[...] = out
    return x


def tbtrs_batch(uplo: str, trans: Trans | str, diag: str, n: int, k: int,
                a_array, b_array, *, batch: int | None = None) -> np.ndarray:
    """Batched triangular band solve (LAPACK ``TBTRS`` analogue).

    Checks each diagonal for exact zeros first (``info = j + 1``, LAPACK
    convention) and leaves singular problems' RHS untouched; returns the
    info array.
    """
    uplo, diag = uplo.upper(), diag.upper()
    if batch is None:
        batch = len(a_array)
    info = np.zeros(batch, dtype=np.int64)
    for idx in range(batch):
        ab = np.asarray(a_array[idx])
        b = b_array[idx]
        _validate(uplo, diag, k, ab, n)
        if diag == "N":
            diag_row = k if uplo == "U" else 0
            zeros = np.nonzero(ab[diag_row, :n] == 0)[0]
            if zeros.size:
                info[idx] = int(zeros[0]) + 1
                continue
        tbsv(uplo, trans, diag, n, k, ab, b)
    return info
