"""Random band-matrix generators used by tests, examples, and benchmarks.

The paper's evaluation uses uniform batches of 1000 random band matrices in
double precision.  We additionally provide generators with controlled
diagonal dominance (guaranteed non-singular, pivoting mostly trivial),
controlled condition number (stresses partial pivoting), and structured
in-band sparsity (the PELE use case, Section 2.1, has ~90% in-band density).
"""

from __future__ import annotations

import numpy as np

from ..errors import check_arg
from ..types import is_complex, np_dtype
from .convert import dense_to_band
from .layout import BandLayout

__all__ = [
    "random_band_dense",
    "random_band",
    "random_band_batch",
    "diagonally_dominant_band",
    "graded_condition_band",
    "random_rhs",
]


def _rng(seed) -> np.random.Generator:
    return seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)


def _random_values(rng, shape, dtype):
    dtype = np_dtype(dtype)
    vals = rng.uniform(-1.0, 1.0, size=shape)
    if is_complex(dtype):
        vals = vals + 1j * rng.uniform(-1.0, 1.0, size=shape)
    return vals.astype(dtype)


def random_band_dense(m: int, n: int, kl: int, ku: int, *,
                      dtype=np.float64, seed=None,
                      density: float = 1.0) -> np.ndarray:
    """Dense ``(m, n)`` matrix whose entries vanish outside the band.

    ``density`` keeps each in-band off-diagonal entry with that probability
    (the diagonal is always kept), modelling the structural sparsity of the
    PELE Jacobians.
    """
    check_arg(0.0 <= density <= 1.0, 7, f"density must be in [0,1], got {density}")
    rng = _rng(seed)
    a = _random_values(rng, (m, n), dtype)
    i, j = np.indices((m, n))
    mask = (i - j <= kl) & (j - i <= ku)
    if density < 1.0:
        keep = rng.uniform(size=(m, n)) < density
        keep |= i == j
        mask &= keep
    a[~mask] = 0
    return a


def random_band(n: int, kl: int, ku: int, *, m: int | None = None,
                dtype=np.float64, seed=None, ldab: int | None = None,
                density: float = 1.0) -> np.ndarray:
    """Random band matrix directly in factor layout, shape ``(ldab, n)``."""
    m = n if m is None else m
    dense = random_band_dense(m, n, kl, ku, dtype=dtype, seed=seed,
                              density=density)
    return dense_to_band(dense, kl, ku, ldab=ldab)


def random_band_batch(batch: int, n: int, kl: int, ku: int, *,
                      m: int | None = None, dtype=np.float64, seed=None,
                      ldab: int | None = None,
                      density: float = 1.0) -> np.ndarray:
    """Uniform batch of random band matrices, shape ``(batch, ldab, n)``."""
    rng = _rng(seed)
    return np.stack([
        random_band(n, kl, ku, m=m, dtype=dtype, seed=rng, ldab=ldab,
                    density=density)
        for _ in range(batch)
    ])


def diagonally_dominant_band(n: int, kl: int, ku: int, *,
                             dtype=np.float64, seed=None,
                             ldab: int | None = None,
                             dominance: float = 2.0) -> np.ndarray:
    """Band matrix (factor layout) with row diagonal dominance ``dominance``.

    Guaranteed non-singular for ``dominance > 1``; with strict dominance the
    partial-pivoting factorization never actually swaps rows, which makes
    these matrices handy for isolating pivoting bugs.
    """
    check_arg(dominance > 0, 7, f"dominance must be positive, got {dominance}")
    dense = random_band_dense(n, n, kl, ku, dtype=dtype, seed=seed)
    off = np.abs(dense).sum(axis=1) - np.abs(np.diag(dense))
    scale = dominance * np.maximum(off, 1.0)
    signs = np.sign(np.diag(dense).real)
    signs[signs == 0] = 1.0
    dense[np.arange(n), np.arange(n)] = (signs * scale).astype(dense.dtype)
    return dense_to_band(dense, kl, ku, ldab=ldab)


def graded_condition_band(n: int, kl: int, ku: int, *, cond: float = 1e6,
                          dtype=np.float64, seed=None,
                          ldab: int | None = None) -> np.ndarray:
    """Band matrix whose diagonal is geometrically graded from 1 to ``1/cond``.

    Emulates the wide range of condition numbers of the chemical-kinetics
    batches (paper Section 2.1) and exercises the numerical-stability side of
    partial pivoting.
    """
    check_arg(cond >= 1.0, 5, f"cond must be >= 1, got {cond}")
    # A = D * B with B diagonally dominant (well conditioned) and D graded
    # geometrically from 1 down to 1/cond, so cond(A) tracks `cond`.
    rng = _rng(seed)
    dense = random_band_dense(n, n, kl, ku, dtype=dtype, seed=rng)
    diag = np.abs(dense.real).sum(axis=1) + 1.0
    dense[np.arange(n), np.arange(n)] = diag.astype(dtype)
    grade = np.geomspace(1.0, 1.0 / cond, num=max(n, 1))
    rng.shuffle(grade)
    dense *= grade[:, None].astype(dtype)
    return dense_to_band(dense, kl, ku, ldab=ldab)


def random_rhs(n: int, nrhs: int, *, batch: int | None = None,
               dtype=np.float64, seed=None) -> np.ndarray:
    """Random right-hand sides: ``(n, nrhs)`` or ``(batch, n, nrhs)``."""
    rng = _rng(seed)
    shape = (n, nrhs) if batch is None else (batch, n, nrhs)
    return _random_values(rng, shape, dtype)
