"""LAPACK band (GB) storage layout (paper Section 3, Figure 2).

A band matrix with ``kl`` sub-diagonals and ``ku`` super-diagonals is stored
with every diagonal occupying a *row* of the band array ``AB``:

    ``AB[kl + ku + i - j, j] == A[i, j]``   for ``max(0, j-ku) <= i <= min(m-1, j+kl)``

The factorization routines additionally require ``kl`` spare rows at the top
of ``AB`` (the ``+`` entries in the paper's Figure 2) to hold the fill-in
created by partial pivoting: after ``gbtrf`` the upper factor ``U`` has an
effective bandwidth of ``kv = kl + ku``.  Hence the leading dimension must
satisfy ``ldab >= 2*kl + ku + 1``.

Entries of ``AB`` outside the band (the ``*`` entries of Figure 2) are never
referenced.

All indices in this module are 0-based, matching numpy; docstrings call out
the few spots where LAPACK's 1-based conventions differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import check_arg

__all__ = [
    "BandLayout",
    "INTERLEAVED",
    "LANE_MAJOR",
    "ldab_for_factor",
    "ldab_for_storage",
    "diag_row",
    "band_index",
    "in_band",
    "col_rows",
    "alloc_band",
    "alloc_band_interleaved",
    "normalize_layout",
    "is_interleaved",
    "to_interleaved",
    "to_lane_major",
]


def ldab_for_storage(kl: int, ku: int) -> int:
    """Minimum leading dimension for storage-only band layout: ``kl+ku+1``."""
    return kl + ku + 1


def ldab_for_factor(kl: int, ku: int) -> int:
    """Minimum leading dimension for a factorizable band array: ``2*kl+ku+1``.

    The extra ``kl`` rows hold fill-in from partial pivoting.
    """
    return 2 * kl + ku + 1


def diag_row(kl: int, ku: int) -> int:
    """Row of ``AB`` holding the main diagonal in factor layout: ``kl+ku``."""
    return kl + ku


def band_index(kl: int, ku: int, i: int, j: int) -> tuple[int, int]:
    """Map a dense index ``(i, j)`` to its ``(row, col)`` in factor layout.

    The caller is responsible for ``(i, j)`` being inside the (possibly
    filled-in) band, i.e. ``j - (kl+ku) <= i <= j + kl``.
    """
    return kl + ku + i - j, j


def in_band(kl: int, ku: int, i: int, j: int) -> bool:
    """True if dense entry ``(i, j)`` lies inside the *original* band."""
    return -ku <= i - j <= kl


def col_rows(m: int, kl: int, ku: int, j: int) -> tuple[int, int]:
    """Dense-row range ``[lo, hi)`` of original-band entries in column ``j``."""
    return max(0, j - ku), min(m, j + kl + 1)


def alloc_band(n: int, kl: int, ku: int, dtype=np.float64, *,
               batch: int | None = None, ldab: int | None = None) -> np.ndarray:
    """Allocate a zeroed band array in factor layout.

    Returns shape ``(ldab, n)`` or ``(batch, ldab, n)`` when ``batch`` is
    given.  ``ldab`` defaults to the minimum factor layout,
    ``2*kl + ku + 1``.
    """
    check_arg(n >= 0, 1, f"n must be non-negative, got {n}")
    check_arg(kl >= 0, 2, f"kl must be non-negative, got {kl}")
    check_arg(ku >= 0, 3, f"ku must be non-negative, got {ku}")
    if ldab is None:
        ldab = ldab_for_factor(kl, ku)
    check_arg(ldab >= ldab_for_factor(kl, ku), 6,
              f"ldab={ldab} < 2*kl+ku+1={ldab_for_factor(kl, ku)}")
    shape = (ldab, n) if batch is None else (batch, ldab, n)
    return np.zeros(shape, dtype=dtype)


# --- batch storage layouts -------------------------------------------------
#
# A *batch* of band matrices can be stored two ways (docs/LAYOUTS.md):
#
# * **lane-major** (array-of-structures): the classic ``(batch, ldab, n)``
#   C-contiguous stack — each matrix occupies one contiguous slab, the
#   lane index has the *largest* stride.
# * **interleaved** (structure-of-arrays): the lane index is the
#   *fastest-varying* axis — element ``(i, j)`` of every matrix in the
#   batch sits contiguously, which is the coalesced-access layout of
#   "Efficient Interleaved Batch Matrix Solvers for CUDA" (PAPERS.md).
#   Physically the buffer is a C-contiguous ``(ldab, n, batch)`` array;
#   logically it is always handled as a ``(batch, ldab, n)`` transposed
#   view so every consumer keeps the one indexing convention.

LANE_MAJOR = "lane-major"
INTERLEAVED = "interleaved"

_LAYOUT_ALIASES = {
    "lane-major": LANE_MAJOR, "aos": LANE_MAJOR,
    "interleaved": INTERLEAVED, "soa": INTERLEAVED,
}


def normalize_layout(layout: str | None) -> str | None:
    """Canonicalise a ``layout=`` knob value.

    ``None`` (auto: run each batch in the layout it arrives in) passes
    through; ``'lane-major'``/``'aos'`` and ``'interleaved'``/``'soa'``
    map to the two canonical names.  Anything else raises.
    """
    if layout is None:
        return None
    key = str(layout).lower()
    check_arg(key in _LAYOUT_ALIASES, 0,
              f"layout must be None, 'lane-major'/'aos' or "
              f"'interleaved'/'soa', got {layout!r}")
    return _LAYOUT_ALIASES[key]


def alloc_band_interleaved(n: int, kl: int, ku: int, batch: int,
                           dtype=np.float64, *,
                           ldab: int | None = None) -> np.ndarray:
    """Allocate a zeroed batch-interleaved band stack in factor layout.

    Returns the canonical *logical* view: shape ``(batch, ldab, n)`` with
    the lane index fastest-varying in memory (the underlying buffer is a
    C-contiguous ``(ldab, n, batch)`` array).  Drop-in compatible with
    :func:`alloc_band`'s ``batch=`` form — same indexing, different
    element order.
    """
    check_arg(batch >= 0, 5, f"batch must be non-negative, got {batch}")
    buf = alloc_band(n, kl, ku, dtype, batch=batch, ldab=ldab)
    return np.zeros(buf.shape[1:] + (batch,), dtype=dtype).transpose(2, 0, 1)


def is_interleaved(stack: np.ndarray) -> bool:
    """True when a 3-D logical ``(batch, ...)`` stack is lane-fastest.

    The canonical interleaved form keeps adjacent lanes one element
    apart: the batch-axis stride equals the itemsize.  Lane-axis slices
    (``stack[a:b]``) of an interleaved stack stay interleaved.
    """
    return (isinstance(stack, np.ndarray) and stack.ndim == 3
            and stack.size > 0
            and stack.strides[0] == stack.itemsize)


def to_interleaved(stack: np.ndarray) -> np.ndarray:
    """Copy a logical ``(batch, ...)`` stack into interleaved form.

    The returned array compares equal element-wise (``np.array_equal``)
    and indexes identically; only the memory order changes (the lane
    axis becomes fastest-varying).  Already interleaved input is still
    copied (fresh storage).
    """
    stack = np.asarray(stack)
    check_arg(stack.ndim >= 2, 1,
              f"expected a (batch, ...) stack, got ndim={stack.ndim}")
    buf = np.zeros(stack.shape[1:] + (stack.shape[0],), dtype=stack.dtype)
    out = np.moveaxis(buf, -1, 0)
    out[...] = stack
    return out


def to_lane_major(stack: np.ndarray) -> np.ndarray:
    """Copy a logical ``(batch, ...)`` stack into lane-major form.

    Inverse of :func:`to_interleaved` up to memory order: the result is
    a C-contiguous array with identical elements.
    """
    stack = np.asarray(stack)
    check_arg(stack.ndim >= 2, 1,
              f"expected a (batch, ...) stack, got ndim={stack.ndim}")
    return np.ascontiguousarray(stack)


@dataclass(frozen=True)
class BandLayout:
    """Describes the band structure of an ``m x n`` matrix.

    Parameters
    ----------
    m, n:
        Dense dimensions.
    kl, ku:
        Number of sub- and super-diagonals (lower/upper bandwidth).

    The layout object centralises the index arithmetic shared by every kernel
    so that the factor/update windows of the sliding-window design (paper
    Section 5.3) can be reasoned about in one place.
    """

    m: int
    n: int
    kl: int
    ku: int

    def __post_init__(self):
        check_arg(self.m >= 0, 1, f"m must be non-negative, got {self.m}")
        check_arg(self.n >= 0, 2, f"n must be non-negative, got {self.n}")
        check_arg(self.kl >= 0, 3, f"kl must be non-negative, got {self.kl}")
        check_arg(self.ku >= 0, 4, f"ku must be non-negative, got {self.ku}")

    @property
    def kv(self) -> int:
        """Effective upper bandwidth after pivoting: ``kl + ku``."""
        return self.kl + self.ku

    @property
    def ldab_storage(self) -> int:
        return ldab_for_storage(self.kl, self.ku)

    @property
    def ldab_factor(self) -> int:
        return ldab_for_factor(self.kl, self.ku)

    @property
    def diag_row(self) -> int:
        """Row of the main diagonal in *factor* layout."""
        return diag_row(self.kl, self.ku)

    def index(self, i: int, j: int) -> tuple[int, int]:
        """Factor-layout coordinates of dense entry ``(i, j)``."""
        return band_index(self.kl, self.ku, i, j)

    def contains(self, i: int, j: int) -> bool:
        return (0 <= i < self.m and 0 <= j < self.n
                and in_band(self.kl, self.ku, i, j))

    def col_rows(self, j: int) -> tuple[int, int]:
        """Dense-row range ``[lo, hi)`` of original-band entries in column ``j``."""
        return col_rows(self.m, self.kl, self.ku, j)

    def nnz(self) -> int:
        """Number of entries inside the original band."""
        return sum(hi - lo for lo, hi in
                   (self.col_rows(j) for j in range(self.n)))

    def window_cols(self, nb: int) -> int:
        """Columns cached by the sliding-window kernel: ``nb + kv + 1``.

        ``nb`` columns form the factor window; up to ``kv + 1`` further
        columns can be touched by the rank-1 updates of those ``nb`` columns
        in the worst pivoting case (paper Section 5.3).
        """
        return nb + self.kv + 1

    def window_rows(self) -> int:
        """Rows cached per window column: ``kv + kl + 1`` (full factor layout)."""
        return self.kv + self.kl + 1

    def window_elems(self, nb: int) -> int:
        """Shared-memory elements needed by the sliding window for ``nb``."""
        return self.window_cols(nb) * self.window_rows()

    def fused_elems(self) -> int:
        """Shared-memory elements needed by the fully fused kernel.

        The fused design (paper Section 5.2) caches the whole factor-layout
        band array: ``(2*kl + ku + 1) x n``.
        """
        return self.ldab_factor * self.n
