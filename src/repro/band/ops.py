"""Band-matrix operations: products, norms, and residual checks.

These operate directly on band storage (no densification), mirroring the
BLAS ``GBMV`` routine, and are used both as library functionality and as the
measurement tools for the accuracy checks in the test suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import check_arg
from ..types import Trans
from .layout import BandLayout

__all__ = ["gbmv", "gbmm", "band_norm_inf", "band_norm_1", "solve_residual"]


def _band_rows_cols(layout: BandLayout, factor_layout: bool):
    offset = layout.kv if factor_layout else layout.ku
    return offset


def gbmv(trans: Trans | str, m: int, kl: int, ku: int,
         alpha, ab: np.ndarray, x: np.ndarray, beta, y: np.ndarray, *,
         factor_layout: bool = True) -> np.ndarray:
    """``y = alpha * op(A) @ x + beta * y`` for a band matrix ``A``.

    ``ab`` is band storage of an ``(m, n)`` matrix; ``factor_layout`` selects
    whether the diagonal sits on row ``kl+ku`` (factor layout, our default)
    or row ``ku`` (plain storage).  ``y`` is updated in place and returned.
    """
    trans = Trans.from_any(trans)
    ab = np.asarray(ab)
    n = ab.shape[1]
    offset = kl + ku if factor_layout else ku
    check_arg(ab.shape[0] > offset, 6,
              f"band array has {ab.shape[0]} rows; needs > {offset}")
    out_len = m if trans is Trans.NO_TRANS else n
    in_len = n if trans is Trans.NO_TRANS else m
    check_arg(x.shape[0] == in_len, 7,
              f"x has length {x.shape[0]}, expected {in_len}")
    check_arg(y.shape[0] == out_len, 9,
              f"y has length {y.shape[0]}, expected {out_len}")

    acc = np.zeros_like(y, dtype=np.result_type(ab.dtype, x.dtype))
    # Walk the diagonals: diagonal d couples A[i, i+d] for the valid range.
    for d in range(-kl, ku + 1):
        row = offset - d
        length = min(m - max(-d, 0), n - max(d, 0))
        if length <= 0:
            continue
        cols = np.arange(max(d, 0), max(d, 0) + length)
        rows = cols - d
        diag = ab[row, cols]
        if trans is Trans.NO_TRANS:
            acc[rows] += (diag.T * x[cols].T).T
        elif trans is Trans.TRANS:
            acc[cols] += (diag.T * x[rows].T).T
        else:  # CONJ_TRANS
            acc[cols] += (np.conj(diag).T * x[rows].T).T
    y *= beta
    y += alpha * acc.astype(y.dtype, copy=False)
    return y


def gbmm(m: int, kl: int, ku: int, ab: np.ndarray, x: np.ndarray, *,
         factor_layout: bool = True) -> np.ndarray:
    """``A @ X`` for band ``A`` and a dense ``(n, nrhs)`` block ``X``."""
    y = np.zeros((m,) + x.shape[1:], dtype=np.result_type(ab.dtype, x.dtype))
    return gbmv(Trans.NO_TRANS, m, kl, ku, 1.0, ab, x, 0.0, y,
                factor_layout=factor_layout)


def band_norm_inf(ab: np.ndarray, m: int, kl: int, ku: int, *,
                  factor_layout: bool = True) -> float:
    """Infinity norm (max absolute row sum) computed in band storage."""
    n = ab.shape[1]
    offset = kl + ku if factor_layout else ku
    sums = np.zeros(m, dtype=np.float64)
    for d in range(-kl, ku + 1):
        length = min(m - max(-d, 0), n - max(d, 0))
        if length <= 0:
            continue
        cols = np.arange(max(d, 0), max(d, 0) + length)
        sums[cols - d] += np.abs(ab[offset - d, cols])
    return float(sums.max(initial=0.0))


def band_norm_1(ab: np.ndarray, m: int, kl: int, ku: int, *,
                factor_layout: bool = True) -> float:
    """One norm (max absolute column sum) computed in band storage."""
    n = ab.shape[1]
    offset = kl + ku if factor_layout else ku
    sums = np.zeros(n, dtype=np.float64)
    for d in range(-kl, ku + 1):
        length = min(m - max(-d, 0), n - max(d, 0))
        if length <= 0:
            continue
        cols = np.arange(max(d, 0), max(d, 0) + length)
        sums[cols] += np.abs(ab[offset - d, cols])
    return float(sums.max(initial=0.0))


def solve_residual(ab_orig: np.ndarray, x: np.ndarray, b: np.ndarray,
                   kl: int, ku: int, *, factor_layout: bool = True) -> float:
    """Normalised residual ``||A x - b||_inf / (||A||_inf ||x||_inf + ||b||_inf)``.

    A backward-stable banded solve should produce residuals of a few units of
    machine epsilon; the test suite asserts this bound.
    """
    n = ab_orig.shape[1]
    r = gbmm(n, kl, ku, ab_orig, x, factor_layout=factor_layout) - b
    norm_a = band_norm_inf(ab_orig, n, kl, ku, factor_layout=factor_layout)
    denom = norm_a * np.abs(x).max(initial=0.0) + np.abs(b).max(initial=0.0)
    if denom == 0.0:
        return float(np.abs(r).max(initial=0.0))
    return float(np.abs(r).max(initial=0.0) / denom)
