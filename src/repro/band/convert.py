"""Conversions between dense matrices and LAPACK band (GB) storage."""

from __future__ import annotations

import numpy as np

from ..errors import check_arg
from .layout import BandLayout, ldab_for_factor, ldab_for_storage

__all__ = [
    "dense_to_band",
    "band_to_dense",
    "bandwidth_of_dense",
    "dense_batch_to_band",
    "band_batch_to_dense",
]


def dense_to_band(a: np.ndarray, kl: int, ku: int, *,
                  ldab: int | None = None,
                  factor_layout: bool = True) -> np.ndarray:
    """Pack dense ``a`` into band storage.

    Parameters
    ----------
    a:
        Dense ``(m, n)`` array.  Entries outside the band are ignored (the
        caller asserts they are structurally zero; we do not check, matching
        LAPACK, which simply never references them).
    kl, ku:
        Lower/upper bandwidth.
    ldab:
        Leading dimension of the output; defaults to the minimal factor
        layout ``2*kl+ku+1`` (or ``kl+ku+1`` when ``factor_layout=False``).
    factor_layout:
        When True (default) reserve the ``kl`` fill-in rows at the top needed
        by ``gbtrf``; the diagonal lands on row ``kl+ku``.  When False use
        storage-only layout with the diagonal on row ``ku`` (this is also
        scipy's ``solve_banded`` convention).

    Returns
    -------
    ``(ldab, n)`` band array with out-of-band entries zeroed.
    """
    a = np.asarray(a)
    check_arg(a.ndim == 2, 1, f"expected a 2-D array, got ndim={a.ndim}")
    m, n = a.shape
    offset = kl + ku if factor_layout else ku
    min_ldab = (ldab_for_factor(kl, ku) if factor_layout
                else ldab_for_storage(kl, ku))
    if ldab is None:
        ldab = min_ldab
    check_arg(ldab >= min_ldab, 4, f"ldab={ldab} < required {min_ldab}")
    ab = np.zeros((ldab, n), dtype=a.dtype)
    for d in range(-kl, ku + 1):
        # diagonal d (d > 0 above the main diagonal) occupies row offset - d
        diag = np.diagonal(a, offset=d)
        cols = np.arange(max(d, 0), max(d, 0) + diag.shape[0])
        ab[offset - d, cols] = diag
    return ab


def band_to_dense(ab: np.ndarray, m: int, kl: int, ku: int, *,
                  factor_layout: bool = True,
                  filled: bool = False) -> np.ndarray:
    """Unpack band storage back into a dense ``(m, n)`` matrix.

    Parameters
    ----------
    filled:
        When True, also unpack the ``kl`` fill-in super-diagonals written by
        the factorization (the ``U`` factor has bandwidth ``kl+ku``).  Only
        meaningful with ``factor_layout=True``.
    """
    ab = np.asarray(ab)
    check_arg(ab.ndim == 2, 1, f"expected a 2-D array, got ndim={ab.ndim}")
    n = ab.shape[1]
    offset = kl + ku if factor_layout else ku
    upper = kl + ku if (filled and factor_layout) else ku
    a = np.zeros((m, n), dtype=ab.dtype)
    for d in range(-kl, upper + 1):
        row = offset - d
        if row < 0 or row >= ab.shape[0]:
            continue
        length = min(m - max(-d, 0), n - max(d, 0))
        if length <= 0:
            continue
        cols = np.arange(max(d, 0), max(d, 0) + length)
        rows = cols - d
        a[rows, cols] = ab[row, cols]
    return a


def bandwidth_of_dense(a: np.ndarray, tol: float = 0.0) -> tuple[int, int]:
    """Return the tight ``(kl, ku)`` of a dense matrix.

    Entries with ``|a[i, j]| <= tol`` count as structural zeros.  An all-zero
    matrix has bandwidth ``(0, 0)``.
    """
    a = np.asarray(a)
    check_arg(a.ndim == 2, 1, f"expected a 2-D array, got ndim={a.ndim}")
    i, j = np.nonzero(np.abs(a) > tol)
    if i.size == 0:
        return 0, 0
    d = j - i
    return int(max(0, -d.min())), int(max(0, d.max()))


def dense_batch_to_band(batch: np.ndarray, kl: int, ku: int, *,
                        ldab: int | None = None,
                        factor_layout: bool = True) -> np.ndarray:
    """Vectorised :func:`dense_to_band` over a ``(batch, m, n)`` stack."""
    batch = np.asarray(batch)
    check_arg(batch.ndim == 3, 1, f"expected a 3-D array, got ndim={batch.ndim}")
    return np.stack([
        dense_to_band(a, kl, ku, ldab=ldab, factor_layout=factor_layout)
        for a in batch
    ])


def band_batch_to_dense(abs_: np.ndarray, m: int, kl: int, ku: int, *,
                        factor_layout: bool = True,
                        filled: bool = False) -> np.ndarray:
    """Vectorised :func:`band_to_dense` over a ``(batch, ldab, n)`` stack."""
    abs_ = np.asarray(abs_)
    check_arg(abs_.ndim == 3, 1, f"expected a 3-D array, got ndim={abs_.ndim}")
    return np.stack([
        band_to_dense(ab, m, kl, ku, factor_layout=factor_layout, filled=filled)
        for ab in abs_
    ])
