"""Band-matrix substrate: LAPACK GB layout, conversions, generators, ops."""

from .convert import (
    band_batch_to_dense,
    band_to_dense,
    bandwidth_of_dense,
    dense_batch_to_band,
    dense_to_band,
)
from .generate import (
    diagonally_dominant_band,
    graded_condition_band,
    random_band,
    random_band_batch,
    random_band_dense,
    random_rhs,
)
from .layout import (
    BandLayout,
    alloc_band,
    band_index,
    col_rows,
    diag_row,
    in_band,
    ldab_for_factor,
    ldab_for_storage,
)
from .ops import band_norm_1, band_norm_inf, gbmm, gbmv, solve_residual
from .reorder import BandedSystem, bandwidth_after, rcm_ordering, sparse_to_band, unpermute
from .triangular import tbmv, tbsv, tbtrs_batch

__all__ = [
    "BandLayout",
    "BandedSystem",
    "alloc_band",
    "band_batch_to_dense",
    "band_index",
    "band_norm_1",
    "band_norm_inf",
    "band_to_dense",
    "bandwidth_of_dense",
    "col_rows",
    "dense_batch_to_band",
    "dense_to_band",
    "diag_row",
    "diagonally_dominant_band",
    "gbmm",
    "gbmv",
    "graded_condition_band",
    "in_band",
    "ldab_for_factor",
    "ldab_for_storage",
    "random_band",
    "random_band_batch",
    "random_band_dense",
    "random_rhs",
    "bandwidth_after",
    "rcm_ordering",
    "solve_residual",
    "sparse_to_band",
    "tbmv",
    "tbsv",
    "tbtrs_batch",
    "unpermute",
]
