"""Bandwidth reduction and sparse-to-band conversion.

The PELE matrices (paper Section 2.1) are *structurally sparse* systems
that the paper treats as band matrices: "Using a band dense solver resolves
both of these problems within the same computational framework."  Getting
from a sparsity pattern to a tight band is a reordering problem; the
classical tool is reverse Cuthill–McKee (RCM), and this module packages
the full pipeline:

1. :func:`rcm_ordering` — symmetric RCM permutation of a (sparse or dense)
   pattern;
2. :func:`bandwidth_after` — the ``(kl, ku)`` a permutation achieves;
3. :func:`sparse_to_band` — permute + pack into LAPACK factor layout,
   returning everything needed to solve and un-permute.

Solving then reads::

    perm, ab, kl, ku = sparse_to_band(a_sparse)
    x_p, piv, info = gbsv(n, kl, ku, ab, b[perm])
    x = unpermute(x_p, perm)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp
from scipy.sparse.csgraph import reverse_cuthill_mckee

from ..errors import check_arg
from .convert import dense_to_band
from .layout import ldab_for_factor

__all__ = ["rcm_ordering", "bandwidth_after", "BandedSystem",
           "sparse_to_band", "unpermute"]


def _as_csr(a) -> sp.csr_matrix:
    if sp.issparse(a):
        return a.tocsr()
    a = np.asarray(a)
    check_arg(a.ndim == 2 and a.shape[0] == a.shape[1], 1,
              f"expected a square matrix, got shape {a.shape}")
    return sp.csr_matrix(a)


def rcm_ordering(a) -> np.ndarray:
    """Reverse Cuthill–McKee permutation of a matrix's sparsity pattern.

    The pattern is symmetrised first (RCM works on undirected graphs; an
    unsymmetric matrix's band must cover both ``A`` and ``A^T`` structure
    anyway).  Returns the permutation ``perm`` such that
    ``A[perm][:, perm]`` has small bandwidth.
    """
    csr = _as_csr(a)
    sym = csr + csr.T
    return np.asarray(reverse_cuthill_mckee(sym, symmetric_mode=True),
                      dtype=np.int64)


def bandwidth_after(a, perm: np.ndarray) -> tuple[int, int]:
    """The tight ``(kl, ku)`` of ``A[perm][:, perm]``."""
    csr = _as_csr(a).tocoo()
    if csr.nnz == 0:
        return 0, 0
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0])
    rows = inv[csr.row]
    cols = inv[csr.col]
    d = cols - rows
    return int(max(0, -d.min())), int(max(0, d.max()))


@dataclass
class BandedSystem:
    """A sparse system packed into band storage via a permutation."""

    perm: np.ndarray          # permutation applied to rows and columns
    ab: np.ndarray            # factor-layout band array of A[perm][:, perm]
    kl: int
    ku: int

    @property
    def n(self) -> int:
        return self.ab.shape[1]

    def permute_rhs(self, b: np.ndarray) -> np.ndarray:
        """Reorder a RHS to match the banded system."""
        return np.asarray(b)[self.perm]

    def unpermute_solution(self, x: np.ndarray) -> np.ndarray:
        """Map a solution of the banded system back to original ordering."""
        return unpermute(x, self.perm)


def sparse_to_band(a, *, reorder: bool = True,
                   max_fill_ratio: float | None = None) -> BandedSystem:
    """Convert a (structurally sparse) matrix into a banded system.

    Parameters
    ----------
    reorder:
        Apply RCM first (default); ``False`` packs the natural ordering.
    max_fill_ratio:
        Optional guard: reject conversions whose band stores more than
        this multiple of the matrix order squared... specifically, raise
        if ``ldab * n > max_fill_ratio * nnz`` — a sign the pattern is not
        band-compressible and a sparse solver would be the better tool.

    Returns a :class:`BandedSystem`; the band entries hold the *values* of
    the permuted matrix (structural zeros inside the band stay zero,
    matching the ~90%-dense bands of the PELE workload).
    """
    csr = _as_csr(a)
    n = csr.shape[0]
    perm = rcm_ordering(csr) if reorder else np.arange(n, dtype=np.int64)
    kl, ku = bandwidth_after(csr, perm)
    if max_fill_ratio is not None and csr.nnz > 0:
        stored = ldab_for_factor(kl, ku) * n
        check_arg(stored <= max_fill_ratio * csr.nnz, 3,
                  f"band storage ({stored} entries) exceeds "
                  f"{max_fill_ratio}x the pattern's nnz ({csr.nnz}); "
                  "the matrix is not band-compressible")
    dense = csr.toarray()[np.ix_(perm, perm)]
    ab = dense_to_band(dense, kl, ku)
    return BandedSystem(perm=perm, ab=ab, kl=kl, ku=ku)


def unpermute(x: np.ndarray, perm: np.ndarray) -> np.ndarray:
    """Invert a permutation applied by :func:`sparse_to_band`."""
    out = np.empty_like(x)
    out[perm] = x
    return out
