"""Common enums and dtype helpers shared across the library.

The paper's interface (Section 4) is a C API in double precision
(``dgbtrf_batch`` et al.).  We keep the LAPACK-style single-letter precision
prefixes but implement a dtype-generic core, so ``s``/``d``/``c``/``z``
variants are thin wrappers around the same algorithms.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = ["Trans", "Precision", "np_dtype", "is_complex", "real_dtype_of"]


class Trans(enum.Enum):
    """Transpose operation selector for :func:`repro.core.gbtrs`.

    Mirrors LAPACK's ``TRANS`` character argument.
    """

    NO_TRANS = "N"
    TRANS = "T"
    CONJ_TRANS = "C"

    @classmethod
    def from_any(cls, value: "Trans | str") -> "Trans":
        """Coerce a :class:`Trans` or a LAPACK character into a :class:`Trans`."""
        if isinstance(value, Trans):
            return value
        try:
            return cls(str(value).upper())
        except ValueError:
            raise ValueError(
                f"invalid transpose selector {value!r}; expected one of "
                "'N', 'T', 'C'"
            ) from None


class Precision(enum.Enum):
    """LAPACK precision prefixes mapped to numpy dtypes."""

    S = "float32"
    D = "float64"
    C = "complex64"
    Z = "complex128"

    @property
    def dtype(self) -> np.dtype:
        return np.dtype(self.value)

    @classmethod
    def from_dtype(cls, dtype) -> "Precision":
        dt = np.dtype(dtype)
        for member in cls:
            if member.dtype == dt:
                return member
        raise ValueError(f"unsupported dtype {dt}; expected one of "
                         f"{[m.dtype.name for m in cls]}")


def np_dtype(dtype) -> np.dtype:
    """Validate and normalise a dtype to one of the four LAPACK precisions."""
    return Precision.from_dtype(dtype).dtype


def is_complex(dtype) -> bool:
    """True if ``dtype`` is one of the complex LAPACK precisions."""
    return np.dtype(dtype).kind == "c"


def real_dtype_of(dtype):
    """The real dtype matching ``dtype``'s precision (float64 for complex128)."""
    return np.zeros(0, dtype=dtype).real.dtype
