"""Column-wise triangular-solve building blocks (paper Section 6).

After ``gbtrf``, the lower factor ``L`` is *not* stored in its final form:
its multipliers sit in the ``kl`` sub-diagonal rows, un-permuted.  Rather
than reconstructing ``L`` (extra workspace and data movement), the solve
applies the pivots progressively to the right-hand side, pairing each row
interchange with the rank-1 update of that column — exactly the scheme the
paper describes: "for each column j in the lower factor, two GPU kernels
perform a pair of (row swap, rank-1 update) operations on the RHS matrix".

The upper factor has bandwidth ``kv = kl + ku`` after pivoting and is solved
with a column-wise backward substitution.

All functions operate in place on ``b`` with shape ``(n, nrhs)`` (or a
cached window of it, via ``row0``), matching LAPACK ``DGBTRS`` results
bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..blas.level1 import stable_mul
from ..types import Trans

__all__ = [
    "forward_swap",
    "forward_update",
    "forward_step",
    "backward_step",
    "transU_step",
    "transL_step",
    "forward_swap_batched",
    "forward_update_batched",
    "backward_step_batched",
    "transU_step_batched",
    "transL_step_batched",
    "gbtrs_unblocked",
]


def forward_swap(b: np.ndarray, j: int, piv: int, *, row0: int = 0) -> None:
    """Row interchange ``b[j] <-> b[piv]`` (the pivot kernel of a column)."""
    if piv != j:
        jj, pp = j - row0, piv - row0
        tmp = b[jj].copy()
        b[jj] = b[pp]
        b[pp] = tmp


def forward_update(ab: np.ndarray, n: int, kl: int, ku: int, j: int,
                   b: np.ndarray, *, row0: int = 0) -> None:
    """Rank-1 update of the RHS with column ``j`` of the lower factor.

    ``b[j+1 : j+lm+1] -= L[j+1:j+lm+1, j] * b[j]`` with
    ``lm = min(kl, n-j-1)``.
    """
    kv = kl + ku
    lm = min(kl, n - j - 1)
    if lm > 0:
        jj = j - row0
        b[jj + 1:jj + lm + 1] -= stable_mul(ab[kv + 1:kv + lm + 1, j][:, None],
                                            b[jj][None, :])


def forward_step(ab: np.ndarray, n: int, kl: int, ku: int, j: int,
                 ipiv: np.ndarray, b: np.ndarray, *, row0: int = 0) -> None:
    """One forward-elimination column: (row swap, rank-1 update) pair."""
    forward_swap(b, j, int(ipiv[j]), row0=row0)
    forward_update(ab, n, kl, ku, j, b, row0=row0)


def backward_step(ab: np.ndarray, n: int, kl: int, ku: int, j: int,
                  b: np.ndarray, *, row0: int = 0) -> None:
    """One backward-substitution column against ``U`` (bandwidth ``kv``).

    ``b[j] /= U(j, j)`` then ``b[j-lm : j] -= U[j-lm:j, j] * b[j]`` with
    ``lm = min(kv, j)``.  Division by an exactly zero ``U(j, j)`` produces
    infinities, matching LAPACK ``DGBTRS`` (which does not guard either);
    callers wanting a guard check the factorization's ``info``.
    """
    kv = kl + ku
    jj = j - row0
    # LAPACK DGBTRS does not guard this division; a zero U(j, j) must
    # propagate inf/NaN silently (the caller's guard is gbtrf's info).
    with np.errstate(divide="ignore", invalid="ignore"):
        b[jj] = b[jj] / ab[kv, j]
    lm = min(kv, j)
    if lm > 0:
        b[jj - lm:jj] -= stable_mul(ab[kv - lm:kv, j][:, None], b[jj][None, :])


def transU_step(ab: np.ndarray, n: int, kl: int, ku: int, j: int,
                b: np.ndarray, *, conj: bool = False,
                row0: int = 0) -> None:
    """One column of ``op(U) y = b``: ``op(U)`` is *lower* triangular with
    bandwidth ``kv``, so the sweep runs forward.

    ``b[j] -= sum_t op(U)[j, j-t] * b[j-t]`` for ``t = lm..1``
    (``lm = min(kv, j)``), then ``b[j] /= op(U)[j, j]``.  The sum is
    accumulated *sequentially, one term at a time* (ascending source row)
    rather than as a dot-product reduction: BLAS dot reductions are not
    shape-stable, so a batched formulation could not reproduce their bits.
    Term-at-a-time subtraction plus :func:`~repro.blas.level1.stable_mul`
    makes :func:`transU_step_batched` bit-identical by construction.
    """
    kv = kl + ku
    jj = j - row0
    lm = min(kv, j)
    for t in range(lm, 0, -1):
        coeff = np.conj(ab[kv - t, j]) if conj else ab[kv - t, j]
        b[jj] -= stable_mul(coeff, b[jj - t])
    pivot = np.conj(ab[kv, j]) if conj else ab[kv, j]
    # Unguarded like LAPACK: zero pivots propagate inf/NaN silently.
    with np.errstate(divide="ignore", invalid="ignore"):
        b[jj] = b[jj] / pivot


def transL_step(ab: np.ndarray, n: int, kl: int, ku: int, j: int,
                piv: int, b: np.ndarray, *, conj: bool = False,
                row0: int = 0) -> None:
    """One column of ``op(L) x = y``, pivots applied in reverse order.

    ``op(L)`` is unit *upper* triangular with bandwidth ``kl``; the sweep
    runs backward and each column's row interchange lands *after* its
    update — the reverse of forward elimination's (swap, update) pairs.
    The update is accumulated sequentially for the same shape-stability
    reason as :func:`transU_step`.
    """
    kv = kl + ku
    jj = j - row0
    lm = min(kl, n - j - 1)
    for t in range(1, lm + 1):
        coeff = np.conj(ab[kv + t, j]) if conj else ab[kv + t, j]
        b[jj] -= stable_mul(coeff, b[jj + t])
    forward_swap(b, j, piv, row0=row0)


def forward_swap_batched(bt: np.ndarray, j: int, piv: np.ndarray,
                         *, row0: int = 0) -> None:
    """Batched :func:`forward_swap` with a per-problem pivot-row vector.

    ``bt`` is ``(batch, rows, nrhs)``; ``piv`` holds absolute pivot rows
    (``piv[k] == j`` means no swap for problem ``k``).  Swapped rows are
    exchanged as exact bit copies, so no-swap lanes are untouched.
    """
    jj = j - row0
    pp = np.asarray(piv) - row0
    bidx = np.arange(bt.shape[0])
    rowj = bt[:, jj].copy()
    rowp = bt[bidx, pp].copy()
    bt[:, jj] = rowp
    bt[bidx, pp] = rowj


def forward_update_batched(abst: np.ndarray, n: int, kl: int, ku: int,
                           j: int, bt: np.ndarray, *, row0: int = 0,
                           active: np.ndarray | None = None) -> None:
    """Batched :func:`forward_update`: one broadcast rank-1 RHS update."""
    kv = kl + ku
    lm = min(kl, n - j - 1)
    if lm <= 0:
        return
    jj = j - row0
    upd = stable_mul(abst[:, kv + 1:kv + lm + 1, j][:, :, None],
                     bt[:, jj][:, None, :])
    seg = bt[:, jj + 1:jj + lm + 1]
    if active is None:
        seg -= upd
    else:
        seg[...] = np.where(active[:, None, None], seg - upd, seg)


def backward_step_batched(abst: np.ndarray, n: int, kl: int, ku: int,
                          j: int, bt: np.ndarray, *, row0: int = 0) -> None:
    """Batched :func:`backward_step`: broadcast divide + rank-1 update."""
    kv = kl + ku
    jj = j - row0
    # Unguarded like LAPACK: zero pivots propagate inf/NaN silently.
    with np.errstate(divide="ignore", invalid="ignore"):
        bt[:, jj] = bt[:, jj] / abst[:, kv, j][:, None]
    lm = min(kv, j)
    if lm > 0:
        bt[:, jj - lm:jj] -= stable_mul(abst[:, kv - lm:kv, j][:, :, None],
                                        bt[:, jj][:, None, :])


def transU_step_batched(abst: np.ndarray, n: int, kl: int, ku: int,
                        j: int, bt: np.ndarray, *, conj: bool = False,
                        row0: int = 0) -> None:
    """Batched :func:`transU_step`: the identical term-at-a-time schedule
    over a ``(batch, ldab, n)`` factor stack, bit-identical per lane."""
    kv = kl + ku
    jj = j - row0
    lm = min(kv, j)
    for t in range(lm, 0, -1):
        coeff = abst[:, kv - t, j]
        if conj:
            coeff = np.conj(coeff)
        bt[:, jj] -= stable_mul(coeff[:, None], bt[:, jj - t])
    pivot = abst[:, kv, j]
    if conj:
        pivot = np.conj(pivot)
    # Unguarded like LAPACK: zero pivots propagate inf/NaN silently.
    with np.errstate(divide="ignore", invalid="ignore"):
        bt[:, jj] = bt[:, jj] / pivot[:, None]


def transL_step_batched(abst: np.ndarray, n: int, kl: int, ku: int,
                        j: int, piv: np.ndarray, bt: np.ndarray, *,
                        conj: bool = False, row0: int = 0) -> None:
    """Batched :func:`transL_step` with a per-problem pivot-row vector."""
    kv = kl + ku
    jj = j - row0
    lm = min(kl, n - j - 1)
    for t in range(1, lm + 1):
        coeff = abst[:, kv + t, j]
        if conj:
            coeff = np.conj(coeff)
        bt[:, jj] -= stable_mul(coeff[:, None], bt[:, jj + t])
    forward_swap_batched(bt, j, piv, row0=row0)


def gbtrs_unblocked(trans: Trans | str, n: int, kl: int, ku: int,
                    ab: np.ndarray, ipiv: np.ndarray,
                    b: np.ndarray) -> np.ndarray:
    """Unblocked band triangular solve on one matrix, in place on ``b``.

    Parameters
    ----------
    trans:
        ``'N'`` solves ``A x = b``; ``'T'``/``'C'`` solve ``A^T x = b`` /
        ``A^H x = b``.
    ab:
        Factor-layout output of :func:`repro.core.gbtf2.gbtf2`.
    ipiv:
        0-based absolute pivot rows from the factorization.
    b:
        ``(n, nrhs)`` right-hand sides, overwritten with the solution.
    """
    trans = Trans.from_any(trans)
    if trans is Trans.NO_TRANS:
        if kl > 0:
            for j in range(n - 1):
                forward_step(ab, n, kl, ku, j, ipiv, b)
        for j in range(n - 1, -1, -1):
            backward_step(ab, n, kl, ku, j, b)
        return b

    conj = trans is Trans.CONJ_TRANS and np.iscomplexobj(ab)
    # Solve op(U) y = b: op(U) is lower triangular with bandwidth kv.
    for j in range(n):
        transU_step(ab, n, kl, ku, j, b, conj=conj)
    # Solve op(L) x = y, applying the pivots in reverse order.
    if kl > 0:
        for j in range(n - 2, -1, -1):
            transL_step(ab, n, kl, ku, j, int(ipiv[j]), b, conj=conj)
    return b
