"""Batched band LU factorization driver (paper Sections 4 and 5.4).

``gbtrf_batch`` puts the three factorization designs behind one interface:

* *fused* — whole matrix in shared memory; chosen for very small matrices
  (order ``<= FUSED_CUTOFF``) where it avoids the window-shift
  synchronisation overhead;
* *window* — sliding window; the workhorse covering "a very wide range of
  band sizes regardless of the matrix size";
* *reference* — fork-join per-column kernels; kept as the safeguard when a
  single window would not even fit in shared memory.

The single-matrix :func:`gbtrf` convenience wrapper applies the same
algorithm on the host (it is LAPACK ``DGBTRF``-equivalent).
"""

from __future__ import annotations

import numpy as np

from ..band.layout import normalize_layout
from ..errors import SharedMemoryError, check_arg
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..gpusim.kernel import launch, note_layout_conversion
from ..tuning.defaults import FUSED_CUTOFF, window_params
from .batch_args import (
    as_matrix_list,
    check_gb_args,
    convert_batch_layout,
    ensure_info,
    ensure_pivots,
)
from .gbtf2 import gbtf2
from .gbtrf_fused import FusedGbtrfKernel
from .gbtrf_reference import gbtrf_reference_batch
from .gbtrf_window import SlidingWindowGbtrfKernel

__all__ = ["gbtrf", "gbtrf_batch", "select_gbtrf_method"]

_METHODS = ("auto", "fused", "window", "reference")


def gbtrf(m: int, n: int, kl: int, ku: int, ab: np.ndarray,
          ipiv: np.ndarray | None = None) -> tuple[np.ndarray, int]:
    """Single-matrix band LU with partial pivoting, in place on ``ab``.

    Equivalent to LAPACK ``DGBTRF`` (identical factors, pivots and info).
    Returns ``(ipiv, info)``; pivots are 0-based absolute row indices.
    """
    check_gb_args(m, n, kl, ku, [np.asarray(ab)], batch=1, ldab_pos=6)
    return gbtf2(m, n, kl, ku, ab, ipiv)


def select_gbtrf_method(device: DeviceSpec, m: int, n: int, kl: int,
                        ku: int, itemsize: int = 8) -> str:
    """The dispatcher's choice for a configuration (paper Section 5.4)."""
    from ..band.layout import BandLayout
    layout = BandLayout(m, n, kl, ku)
    fused_smem = device.round_smem(layout.fused_elems() * itemsize)
    if max(m, n) <= FUSED_CUTOFF and fused_smem <= device.max_smem_per_block:
        return "fused"
    nb, _ = window_params(device, kl, ku)
    window_smem = device.round_smem(layout.window_elems(nb) * itemsize)
    if window_smem <= device.max_smem_per_block:
        return "window"
    return "reference"


def gbtrf_batch(m: int, n: int, kl: int, ku: int, a_array,
                pv_array=None, info=None, *, batch: int | None = None,
                device: DeviceSpec = H100_PCIE, stream=None,
                method: str = "auto", nb: int | None = None,
                threads: int | None = None, execute: bool = True,
                max_blocks: int | None = None,
                vectorize: bool | None = None,
                resilient: bool = False, policy=None,
                max_resident_bytes: int | None = None,
                chunk_hint: int | None = None,
                streams: int | None = None, devices=None,
                overlap: bool | None = None,
                layout: str | None = None,
                verify=None):
    """LU-factorize a uniform batch of band matrices on the simulated GPU.

    Parameters
    ----------
    a_array:
        ``(batch, ldab, n)`` stack or pointer array of ``(ldab, n)``
        matrices in factor layout (``ldab >= 2*kl + ku + 1``); overwritten
        with the factors.
    pv_array:
        Optional ``(batch, min(m, n))`` integer stack (or pointer array) to
        receive 0-based pivot rows; allocated when ``None``.
    info:
        Optional ``(batch,)`` integer array for per-problem status codes;
        allocated when ``None``.
    device, stream:
        Simulated device and execution stream (the paper's mandatory
        ``gpu_stream_t`` argument).
    method:
        ``'auto'`` (dispatcher), ``'fused'``, ``'window'`` or
        ``'reference'``.
    nb, threads:
        Sliding-window tuning overrides; defaults come from the tuning
        tables / heuristics.
    execute, max_blocks:
        Passed to the launcher: ``execute=False`` evaluates only the timing
        model; ``max_blocks`` functionally executes a sample of the batch.
    vectorize:
        Execution-path selector, forwarded to the launcher.  ``None``
        (default) auto-dispatches to the batch-interleaved path when the
        batch is a uniform contiguous stack *or* can be staged by the
        gather/pack stage (pointer-array and scattered same-shape batches
        pack automatically); ``False`` forces the per-block reference
        path; ``True`` requires the vectorized path (raises
        :class:`~repro.errors.DeviceError` for aliased/overlapping or
        mixed-shape batches that cannot be packed, and
        :class:`~repro.errors.ArgumentError` for ``method='reference'``,
        which has no such path).  Results are bit-identical either way.

    resilient, policy:
        ``resilient=True`` routes the call through the self-healing
        dispatch of :mod:`repro.core.resilience` (retry, design-ladder
        fallback, lane quarantine) and returns ``(pivots, info, report)``
        with a :class:`~repro.core.resilience.BatchReport` appended.
        ``policy`` is an optional
        :class:`~repro.core.resilience.ResiliencePolicy`.
    max_resident_bytes, chunk_hint:
        Memory-governance knobs (:mod:`repro.core.memory_plan`).
        ``max_resident_bytes`` caps the batch's resident device footprint
        below the pool budget; ``chunk_hint`` caps the lanes per chunk.
        A batch over either cap is streamed through the device in chunks,
        bit-identically to an unchunked run.
    streams, devices, overlap:
        Pipelined-execution knobs (:mod:`repro.core.pipeline`).
        ``streams`` (1–3) sets the per-device stream count — 3 gives the
        full h2d/compute/d2h double-buffered pipeline, 2 a shared copy
        stream, 1 sequential staging; ``overlap=True`` is shorthand for
        ``streams=3`` and ``overlap=False`` forces sequential staging.
        ``devices`` shards the batch across devices — an int replicates
        ``device`` that many times, or pass a list of uniquely-named
        :class:`~repro.gpusim.device.DeviceSpec`; shards are weighted by
        modeled per-device throughput and each runs on its own host
        worker thread.  Results stay bit-identical to the sequential
        single-device path.  Ignored for non-governed calls
        (``execute=False``, ``max_blocks``, graph capture).

    layout:
        Batch storage-layout selector (docs/LAYOUTS.md).  ``None``
        (default) runs the batch in the layout it arrives in:
        batch-interleaved (SoA, lane index fastest-varying) stacks run
        natively as ``[vec+soa]`` launches with zero-copy staging,
        lane-major stacks keep the classic ``[vec]`` path.
        ``'interleaved'``/``'soa'`` stages a uniform batch into the
        interleaved layout first; ``'lane-major'``/``'aos'`` stages an
        interleaved batch into the classic layout first.  The conversion
        happens exactly once at the batch boundary — before governance,
        chunking and pipelining split the batch — and its round-trip
        traffic is attributed to the first launch's ``soa_bytes``.
        Results always land back in the caller's arrays, bit-identical
        across layouts.

    verify:
        Silent-data-corruption defense (:mod:`repro.core.verify`):
        ``True``, ``'cheap'``, ``'full'`` or a
        :class:`~repro.core.verify.VerifyPolicy`.  The factors of every
        healthy lane are checked by applying the reconstructed ``P L U``
        to a deterministic probe vector and comparing against ``A``
        applied to the same vector (snapshotted before the call);
        failing lanes escalate through recompute → reference path, and
        the call returns ``(pivots, info, report)``.  Requires square
        matrices (``m == n``).  Lanes that pass are bit-identical to an
        unverified call.

    Returns
    -------
    (pivots, info):
        List of per-problem pivot vectors and the info array (plus the
        report when ``resilient=True``).
    """
    check_arg(method in _METHODS, 14,
              f"method must be one of {_METHODS}, got {method!r}")
    if verify is not None and verify is not False:
        from .verify import verified_gbtrf_batch
        return verified_gbtrf_batch(
            m, n, kl, ku, a_array, pv_array, info, batch=batch,
            verify=verify, device=device, stream=stream, method=method,
            nb=nb, threads=threads, execute=execute,
            max_blocks=max_blocks, vectorize=vectorize,
            resilient=resilient, policy=policy,
            max_resident_bytes=max_resident_bytes, chunk_hint=chunk_hint,
            streams=streams, devices=devices, overlap=overlap,
            layout=layout)
    if normalize_layout(layout) is not None:
        conv = convert_batch_layout(
            normalize_layout(layout), (a_array,),
            batch=len(a_array) if batch is None else batch)
        if conv is not None:
            (a_conv,), writeback, moved = conv
            note_layout_conversion(moved)
            res = gbtrf_batch(
                m, n, kl, ku, a_conv, pv_array, info, batch=batch,
                device=device, stream=stream, method=method, nb=nb,
                threads=threads, execute=execute, max_blocks=max_blocks,
                vectorize=vectorize, resilient=resilient, policy=policy,
                max_resident_bytes=max_resident_bytes,
                chunk_hint=chunk_hint, streams=streams, devices=devices,
                overlap=overlap)
            writeback()
            return res
    from . import memory_plan
    if memory_plan.governance_active(execute=execute,
                                     max_blocks=max_blocks, stream=stream):
        return memory_plan.gbtrf_batch_governed(
            m, n, kl, ku, a_array, pv_array, info, batch=batch,
            device=device, stream=stream, method=method, nb=nb,
            threads=threads, vectorize=vectorize, resilient=resilient,
            policy=policy, max_resident_bytes=max_resident_bytes,
            chunk_hint=chunk_hint, streams=streams, devices=devices,
            overlap=overlap)
    if resilient:
        check_arg(execute and max_blocks is None, 15,
                  "resilient=True requires full functional execution "
                  "(execute=True, max_blocks=None)")
        from .resilience import gbtrf_batch_resilient
        return gbtrf_batch_resilient(
            m, n, kl, ku, a_array, pv_array, info, batch=batch,
            device=device, stream=stream, method=method, nb=nb,
            threads=threads, vectorize=vectorize, policy=policy)
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(m, n, kl, ku, mats, batch=batch)
    mn = min(m, n)
    pivots = ensure_pivots(pv_array, batch, mn, arg_pos=7, zero=True)
    info = ensure_info(info, batch, arg_pos=8)
    if batch == 0 or mn == 0:
        return pivots, info

    if method == "auto":
        method = select_gbtrf_method(device, m, n, kl, ku,
                                     mats[0].dtype.itemsize)

    if method == "fused":
        kernel = FusedGbtrfKernel(m, n, kl, ku, mats, pivots, info,
                                  threads=threads)
        launch(device, kernel, stream=stream, execute=execute,
               max_blocks=max_blocks, vectorize=vectorize)
    elif method == "window":
        nb_d, th_d = window_params(device, kl, ku)
        kernel = SlidingWindowGbtrfKernel(
            m, n, kl, ku, mats, pivots, info,
            nb=nb_d if nb is None else nb,
            threads=th_d if threads is None else threads)
        launch(device, kernel, stream=stream, execute=execute,
               max_blocks=max_blocks, vectorize=vectorize)
    else:
        check_arg(not vectorize, 17,
                  "method='reference' (fork-join per-column kernels) has "
                  "no batch-interleaved path; use vectorize=None or False")
        gbtrf_reference_batch(m, n, kl, ku, mats, pivots, info, device,
                              stream, execute=execute, max_blocks=max_blocks)
    return pivots, info
