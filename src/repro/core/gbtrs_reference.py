"""Reference band triangular solve (paper Section 6, first half).

The lower factor is applied with one (row swap, rank-1 update) kernel pair
per column, progressively applying the pivots to the RHS; the upper factor
with a column-wise backward solver.  Like the reference factorization this
is a fork-join design with per-column kernel launches, kept for generality
and as the ground truth the blocked kernels are tested against.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.costmodel import BlockCost
from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import Kernel, SharedMemory, launch
from ..types import Trans
from .solve_blocks import backward_step, forward_swap, forward_update, gbtrs_unblocked

__all__ = ["RhsSwapKernel", "RhsUpdateKernel", "BackwardColumnKernel",
           "gbtrs_reference_batch"]


class _SolveState:
    """Shared state of one batched reference solve."""

    def __init__(self, n, kl, ku, nrhs, mats, pivots, rhs, threads):
        self.n, self.kl, self.ku, self.nrhs = n, kl, ku, nrhs
        self.mats = mats
        self.pivots = pivots
        self.rhs = rhs
        self.threads = threads
        self.itemsize = mats[0].dtype.itemsize if mats else 8


class _SolveKernelBase(Kernel):
    def __init__(self, state: _SolveState, j: int):
        self.state = state
        self.j = j

    def grid(self) -> int:
        return len(self.state.mats)

    def threads(self) -> int:
        return self.state.threads

    def smem_bytes(self) -> int:
        return 0


class RhsSwapKernel(_SolveKernelBase):
    """Apply pivot ``j`` to the RHS (the swap kernel of the pair)."""

    name = "gbtrs_ref_swap"

    def block_cost(self) -> BlockCost:
        s = self.state
        return BlockCost(dram_traffic=4 * s.nrhs * s.itemsize, syncs=1,
                         threads=s.threads)

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        s, j = self.state, self.j
        forward_swap(s.rhs[block_id], j, int(s.pivots[block_id][j]))


class RhsUpdateKernel(_SolveKernelBase):
    """Rank-1 update of the RHS with column ``j`` of ``L``."""

    name = "gbtrs_ref_update"

    def block_cost(self) -> BlockCost:
        s = self.state
        return BlockCost(flops=2 * s.kl * s.nrhs,
                         dram_traffic=(3 * s.kl + 2) * s.nrhs * s.itemsize,
                         syncs=1, threads=s.threads)

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        s, j = self.state, self.j
        forward_update(s.mats[block_id], s.n, s.kl, s.ku, j, s.rhs[block_id])


class BackwardColumnKernel(_SolveKernelBase):
    """One column of the backward solve against ``U`` (bandwidth ``kv``)."""

    name = "gbtrs_ref_backward"

    def block_cost(self) -> BlockCost:
        s = self.state
        kv = s.kl + s.ku
        return BlockCost(flops=(2 * kv + 1) * s.nrhs,
                         dram_traffic=(3 * kv + 2) * s.nrhs * s.itemsize,
                         syncs=1, threads=s.threads)

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        s, j = self.state, self.j
        backward_step(s.mats[block_id], s.n, s.kl, s.ku, j, s.rhs[block_id])


def gbtrs_reference_batch(trans: Trans | str, n: int, kl: int, ku: int,
                          nrhs: int, mats, pivots, rhs,
                          device: DeviceSpec, stream=None, *,
                          execute: bool = True,
                          max_blocks: int | None = None) -> None:
    """Fork-join reference solve: per-column kernel launches.

    The transposed solves have no per-column GPU decomposition in the paper
    (they are not needed by GBSV); they run as a host-side loop per matrix,
    still producing LAPACK-identical results.
    """
    trans = Trans.from_any(trans)
    threads = max(kl + 1, 32)
    state = _SolveState(n, kl, ku, nrhs, mats, pivots, rhs, threads)
    if trans is not Trans.NO_TRANS:
        if execute:
            limit = len(mats) if max_blocks is None else min(len(mats),
                                                             max_blocks)
            for k in range(limit):
                gbtrs_unblocked(trans, n, kl, ku, mats[k], pivots[k], rhs[k])
        return
    if kl > 0:
        for j in range(n - 1):
            launch(device, RhsSwapKernel(state, j), stream=stream,
                   execute=execute, max_blocks=max_blocks)
            launch(device, RhsUpdateKernel(state, j), stream=stream,
                   execute=execute, max_blocks=max_blocks)
    for j in range(n - 1, -1, -1):
        launch(device, BackwardColumnKernel(state, j), stream=stream,
               execute=execute, max_blocks=max_blocks)
