"""Single-kernel non-uniform batched factorization (paper Section 9).

The grouped vbatch strategy (:func:`repro.core.batched.gbtrf_vbatch`) pays
one kernel launch per distinct configuration and, worse, executes the
groups *sequentially* — a batch of 100 different shapes degenerates to 100
launches.  The single-kernel strategy launches once: every thread block
carries its own problem descriptor ``(m, n, kl, ku, nb)`` and runs the
sliding-window factorization sized for its problem.

The trade, faithfully modeled: shared memory must be reserved for the
*largest* window in the batch (occupancy is set by the worst problem), and
the wave time is governed by the most expensive block.  Grouped execution
keeps per-group occupancy optimal but serialises groups — which strategy
wins depends on the shape mix, which is exactly what the shipped ablation
benchmark explores.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..band.layout import BandLayout
from ..errors import check_arg
from ..gpusim.costmodel import BlockCost
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..gpusim.kernel import Kernel, SharedMemory, launch
from ..gpusim.memory import is_packable_batch
from ..tuning.defaults import window_params
from .costs import gbtrf_window_cost
from .gbtrf_window import sliding_window_factor, sliding_window_factor_batched

__all__ = ["VbatchProblem", "VbatchGbtrfKernel", "gbtrf_vbatch_fused"]


@dataclass(frozen=True)
class VbatchProblem:
    """Per-block problem descriptor of the non-uniform kernel."""

    m: int
    n: int
    kl: int
    ku: int
    nb: int
    threads: int

    @property
    def window_bytes(self) -> int:
        return BandLayout(self.m, self.n, self.kl,
                          self.ku).window_elems(self.nb) * 8


class VbatchGbtrfKernel(Kernel):
    """One launch, many shapes: per-block sliding-window factorization."""

    name = "gbtrf_vbatch"

    def __init__(self, problems: list[VbatchProblem],
                 mats: list[np.ndarray], pivots: list[np.ndarray],
                 info: np.ndarray):
        check_arg(len(problems) == len(mats), 1,
                  f"{len(problems)} descriptors for {len(mats)} matrices")
        self.problems = problems
        self.mats = mats
        self.pivots = pivots
        self.info = info
        self.itemsize = mats[0].dtype.itemsize if mats else 8

    def grid(self) -> int:
        return len(self.problems)

    def threads(self) -> int:
        # The block size must satisfy every problem's minimum (kl + 1) and
        # serve the widest update; the launch uses the batch maximum.
        return max((p.threads for p in self.problems), default=1)

    def smem_bytes(self) -> int:
        # Reserved for the largest window in the batch: the occupancy cost
        # of mixing shapes in one launch.
        return max((BandLayout(p.m, p.n, p.kl, p.ku).window_elems(p.nb)
                    * self.itemsize for p in self.problems), default=0)

    def block_cost(self) -> BlockCost:
        # Wave time is set by the most expensive resident block.
        costs = [gbtrf_window_cost(p.m, p.n, p.kl, p.ku, p.nb, p.threads,
                                   self.itemsize) for p in self.problems]
        worst = max(costs, key=lambda c: c.syncs + c.smem_traffic)
        dram = sum(c.dram_traffic for c in costs) / max(len(costs), 1)
        return BlockCost(flops=worst.flops, smem_traffic=worst.smem_traffic,
                         dram_traffic=dram, syncs=worst.syncs,
                         threads=self.threads())

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        p = self.problems[block_id]
        self.info[block_id] = sliding_window_factor(
            self.mats[block_id], self.pivots[block_id],
            p.m, p.n, p.kl, p.ku, p.nb, smem)

    # -- bucketed batch-interleaved execution ------------------------------

    def _buckets(self, nblocks: int) -> dict:
        """Group block ids by full problem configuration (and storage
        shape, so each bucket stacks into one uniform array)."""
        buckets: dict = {}
        for bid in range(nblocks):
            p = self.problems[bid]
            key = (p.m, p.n, p.kl, p.ku, p.nb, self.mats[bid].shape)
            buckets.setdefault(key, []).append(bid)
        return buckets

    def pack_operands(self) -> tuple:
        return (self.mats,)

    def can_pack_vectorize(self) -> bool:
        """Bucketed eligibility: every same-configuration bucket of more
        than one problem must be packable (same dtype, no overlapping
        storage); singleton buckets run their per-block body as-is."""
        if not self.mats:
            return False
        for idxs in self._buckets(len(self.mats)).values():
            if len(idxs) > 1 and \
                    not is_packable_batch([self.mats[i] for i in idxs]):
                return False
        return True

    def run_batch_vectorized(self, nblocks: int, smem: SharedMemory) -> None:
        """Bucketed vectorization: each same-configuration bucket advances
        through the window schedule batch-interleaved; singleton buckets
        run the scalar body.  Problems are independent, so per-bucket
        execution order cannot change any result bits."""
        for idxs in self._buckets(nblocks).values():
            p = self.problems[idxs[0]]
            if len(idxs) == 1:
                bid = idxs[0]
                self.info[bid] = sliding_window_factor(
                    self.mats[bid], self.pivots[bid],
                    p.m, p.n, p.kl, p.ku, p.nb, smem)
                continue
            ldab = BandLayout(p.m, p.n, p.kl, p.ku).ldab_factor
            abst = np.stack([self.mats[i][:ldab, :] for i in idxs])
            pivs = np.zeros((len(idxs), min(p.m, p.n)), dtype=np.int64)
            binfo = np.zeros(len(idxs), dtype=np.int64)
            sliding_window_factor_batched(
                abst, pivs, binfo, p.m, p.n, p.kl, p.ku, p.nb, smem)
            for t, i in enumerate(idxs):
                self.mats[i][:ldab, :] = abst[t]
                self.pivots[i][:] = pivs[t]
                self.info[i] = binfo[t]


def gbtrf_vbatch_fused(ms, ns, kls, kus, a_array, pv_array=None,
                       info=None, *, device: DeviceSpec = H100_PCIE,
                       stream=None, execute: bool = True,
                       max_blocks: int | None = None,
                       vectorize: bool | None = None):
    """Non-uniform batch LU in a single kernel launch.

    Same contract as :func:`repro.core.batched.gbtrf_vbatch` (grouped
    strategy) — identical results, different execution shape.  Returns
    ``(pivots, info)``.

    ``vectorize`` selects the host execution path (``None``/``False``/
    ``True`` as in :func:`repro.core.gbtrf.gbtrf_batch`): the vectorized
    path buckets the batch by configuration and advances each bucket
    batch-interleaved, bit-identical to the per-block loop.
    """
    batch = len(a_array)
    for name, seq, pos in (("ms", ms, 1), ("ns", ns, 2), ("kls", kls, 3),
                           ("kus", kus, 4)):
        check_arg(len(seq) == batch, pos,
                  f"{name} has {len(seq)} entries, expected {batch}")
    mats = [np.asarray(a) for a in a_array]
    problems = []
    for k in range(batch):
        m, n, kl, ku = int(ms[k]), int(ns[k]), int(kls[k]), int(kus[k])
        need = 2 * kl + ku + 1
        check_arg(mats[k].shape[0] >= need and mats[k].shape[1] == n, 5,
                  f"matrix {k} has shape {mats[k].shape}; needs at least "
                  f"({need}, {n})")
        nb, threads = window_params(device, kl, ku)
        problems.append(VbatchProblem(m=m, n=n, kl=kl, ku=ku, nb=nb,
                                      threads=threads))
    if pv_array is not None:
        pivots = list(pv_array)
    else:
        pivots = [np.zeros(min(p.m, p.n), dtype=np.int64)
                  for p in problems]
    if info is None:
        info = np.zeros(batch, dtype=np.int64)
    if batch == 0:
        return pivots, info
    kernel = VbatchGbtrfKernel(problems, mats, pivots, info)
    launch(device, kernel, stream=stream, execute=execute,
           max_blocks=max_blocks, vectorize=vectorize)
    return pivots, info
