"""Fully fused band LU factorization kernel (paper Section 5.2).

One thread block per matrix; the whole factor-layout band array is staged
into shared memory, factorized one column at a time (no blocking needed —
shared memory is as fast as L1), and written back.  Global traffic is
optimal (each matrix read and written exactly once), but the shared-memory
footprint grows linearly with ``n``, so occupancy collapses in staircase
steps as matrices grow, and the kernel stops launching altogether once a
single matrix no longer fits — both effects visible in the paper's
Figure 3.
"""

from __future__ import annotations

import numpy as np

from ..band.layout import BandLayout
from ..gpusim.costmodel import BlockCost
from ..gpusim.kernel import Kernel, SharedMemory
from .batch_args import is_interleaved_stack, is_uniform_stack, stage_stack
from .costs import gbtrf_fused_cost
from .gbtf2 import gbtf2, gbtf2_batched

__all__ = ["FusedGbtrfKernel", "default_fused_threads"]


def default_fused_threads(kl: int, ku: int) -> int:
    """Default thread count for the fused kernel.

    The design minimum is ``kl + 1`` (the pivot-search span, paper Section 5.2).
    We size the team so the rank-1 update of one column — ``kl`` rows by up
    to ``kv + 1`` columns — completes in at most two rounds, which keeps the
    serial dependency chain per column short even for wide bands.
    """
    work = max(kl * (kl + ku + 1), 1)
    return max(kl + 1, 16, min(-(-work // 2), 256))


class FusedGbtrfKernel(Kernel):
    """Batched in-shared-memory band LU (one block = one matrix)."""

    name = "gbtrf_fused"

    def __init__(self, m: int, n: int, kl: int, ku: int,
                 mats: list[np.ndarray], pivots: list[np.ndarray],
                 info: np.ndarray, *, threads: int | None = None):
        self.m, self.n, self.kl, self.ku = m, n, kl, ku
        self.layout = BandLayout(m, n, kl, ku)
        self.mats = mats
        self.pivots = pivots
        self.info = info
        self.nthreads = threads or default_fused_threads(kl, ku)
        if self.nthreads < kl + 1:
            raise ValueError(
                f"fused gbtrf needs at least kl+1={kl + 1} threads, "
                f"got {self.nthreads}")
        self.itemdtype = mats[0].dtype if mats else np.dtype(np.float64)
        self.itemsize = self.itemdtype.itemsize

    def grid(self) -> int:
        return len(self.mats)

    def threads(self) -> int:
        return self.nthreads

    def smem_bytes(self) -> int:
        return self.layout.fused_elems() * self.itemsize

    def block_cost(self) -> BlockCost:
        return gbtrf_fused_cost(self.m, self.n, self.kl, self.ku,
                                self.nthreads, self.itemsize)

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        ab = self.mats[block_id]
        ldab = self.layout.ldab_factor
        tile = smem.alloc((ldab, self.n), dtype=ab.dtype)
        tile[...] = ab[:ldab, :]                      # global -> shared
        _, info = gbtf2(self.m, self.n, self.kl, self.ku, tile,
                        self.pivots[block_id])
        ab[:ldab, :] = tile                           # shared -> global
        self.info[block_id] = info

    def can_batch_vectorize(self) -> bool:
        return is_uniform_stack(self.mats)

    def can_soa_vectorize(self) -> bool:
        return is_interleaved_stack(self.mats)

    def pack_operands(self) -> tuple:
        return (self.mats,)

    def run_batch_vectorized(self, nblocks: int, smem: SharedMemory) -> None:
        ldab = self.layout.ldab_factor
        abst, inplace = stage_stack(self.mats, nblocks, rows=ldab)
        if inplace:
            # Interleaved (SoA) batch: stage the shared tile batch-minor
            # so the global<->shared copies stay lane-contiguous, and
            # move them as single whole-stack assignments.
            tiles = np.moveaxis(
                smem.alloc((ldab, self.n, nblocks), dtype=self.itemdtype),
                2, 0)
            tiles[...] = abst                         # global -> shared
        else:
            tiles = smem.alloc((nblocks, ldab, self.n),
                               dtype=self.itemdtype)
            for k in range(nblocks):
                tiles[k] = self.mats[k][:ldab, :]     # global -> shared
        pivs = np.zeros((nblocks, min(self.m, self.n)), dtype=np.int64)
        gbtf2_batched(self.m, self.n, self.kl, self.ku, tiles, pivs,
                      self.info[:nblocks])
        if inplace:
            abst[...] = tiles                         # shared -> global
        for k in range(nblocks):
            if not inplace:
                self.mats[k][:ldab, :] = tiles[k]     # shared -> global
            self.pivots[k][:] = pivs[k]
