"""Verified solves: silent-data-corruption defense for the batched drivers.

Every fault the resilient dispatch survives announces itself — launch
errors, NaN/Inf lanes, device outages.  Real GPU fleets also produce
*silent* data corruption (SDC): finite-valued bit flips in compute or
transfer that sail through every NaN/Inf scan and return a confidently
wrong ``x``.  This module is the defense the ``verify=`` knob on the
batched drivers turns on:

* **Residual gates** — per-lane scaled residuals computed directly in band
  storage, vectorized across lanes (:func:`band_mv_batch`).  One gate
  evaluation costs O(n·k) per lane against the O(n·k²) factorization it
  guards, so verification is asymptotically cheaper than the work it
  checks.  ``gbsv`` verifies ``||A x - b||`` against snapshots of the
  original operands; ``gbtrf`` verifies the factors themselves by applying
  the reconstructed ``P L U`` to a deterministic probe vector
  (:func:`plu_apply_batch`); ``gbtrs`` replays ``P L U x`` from pristine
  factor snapshots against the pristine right-hand sides.
* **Operand digests** — read-only operands (the ``gbtrs`` factors and
  pivots) are fingerprinted at the stage boundary and re-verified after
  the stage; a mismatch restores the pristine snapshot and attributes the
  lane (``BatchReport.digest_mismatches``).  The serve layer applies the
  same digests to cached factors (:mod:`repro.serve.cache`).
* **Pivot-growth monitors** — ``max|U| / max|A|`` computed batched; the
  maximum is stamped on the report and feeds the condition-aware
  classification below.
* **Condition-aware escalation** — a lane failing its residual gate walks
  a recovery ladder that reuses the resilience machinery: snapshot
  recompute on the device → host reference path (``gbtf2`` /
  ``gbtrs_unblocked``, bit-identical by contract) → ``gbequ``/``laqgb``
  equilibrated refactor (``gbsv`` only) → ``gbrfs`` iterative refinement
  with berr/ferr bounds.  A lane that *still* fails is classified with
  ``gbcon``: ill-conditioned lanes (``rcond`` below the floor, or pivot
  growth past the threshold) are flagged *expected*-inaccurate
  (``BatchReport.ill_conditioned``) rather than corrupted; a
  well-conditioned lane that cannot be recovered raises
  :class:`~repro.errors.DataCorruptionError` (``on_fail='raise'``) or is
  flagged in ``BatchReport.unrecovered`` (``on_fail='flag'``).

Healthy lanes — lanes that pass their gate — are never touched, so a
verified call is bit-identical to an unverified one on every lane that
was not corrupted, across chunking, ``[vec]``/``[vec+soa]``/``[vec+pack]``
routes, pipelining and failover (verification wraps the driver *outside*
all of those stages).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from ..band.layout import ldab_for_factor
from ..band.ops import band_norm_1, solve_residual
from ..errors import DataCorruptionError, check_arg
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..types import Trans
from .batch_args import as_matrix_list, as_rhs_list, check_gb_args, \
    ensure_info, ensure_pivots
from .gbcon import gbcon
from .gbequ import gbequ, laqgb
from .gbrfs import gbrfs
from .gbtf2 import gbtf2
from .resilience import BatchReport
from .solve_blocks import gbtrs_unblocked

__all__ = [
    "VerifyPolicy",
    "as_verify_policy",
    "band_mv_batch",
    "plu_apply_batch",
    "band_norms_inf",
    "factor_norms_inf",
    "pivot_growth_batch",
    "operand_digest",
    "verified_gbtrf_batch",
    "verified_gbtrs_batch",
    "verified_gbsv_batch",
]

_MODES = ("cheap", "full")
_ON_FAIL = ("raise", "flag")

#: Default residual-tolerance multiplier: a backward-stable banded solve
#: produces scaled residuals of a few ULP; 64·n·eps leaves generous slack
#: for legitimate rounding while any finite-magnitude flip of an operand
#: element lands orders of magnitude above it.
_TOL_SCALE = 64.0


@dataclass(frozen=True)
class VerifyPolicy:
    """Tunables for verified solves (the ``verify=`` knob).

    Attributes
    ----------
    mode:
        ``'cheap'`` (default) runs the residual gates and pivot-growth
        monitors only — the <10%-overhead configuration the benchmark
        gates.  ``'full'`` additionally fingerprints read-only operands
        (:func:`operand_digest`) and stamps a ``gbcon`` condition
        estimate on every lane (``BatchReport.rcond_min``).
    residual_tol:
        Scaled-residual acceptance threshold.  ``None`` (default) uses
        ``64 * n * eps`` of the operand dtype — comfortably above
        backward-stable rounding noise, orders of magnitude below any
        finite-magnitude element flip.
    growth_threshold:
        Pivot-growth ratio ``max|U| / max|A|`` above which a failing lane
        is classified *expected*-inaccurate rather than corrupted.
    check_digests:
        Master switch for operand digests; ``None`` follows the mode
        (on for ``'full'``).
    condition:
        Stamp ``gbcon`` estimates on every lane (not just failing ones);
        ``None`` follows the mode (on for ``'full'``).
    rcond_floor:
        ``rcond`` below which a failing lane is classified
        ill-conditioned.  ``None`` (default) uses ``n * eps``.
    refine:
        Allow the :func:`~repro.core.gbrfs.gbrfs` refinement rung on
        lanes the exact recompute rungs could not bring under tolerance.
    max_refine:
        Iteration cap for that refinement rung.
    on_fail:
        ``'raise'`` (default) raises
        :class:`~repro.errors.DataCorruptionError` for a well-conditioned
        lane that fails every rung; ``'flag'`` records it in
        ``BatchReport.unrecovered`` and returns.
    """

    mode: str = "cheap"
    residual_tol: float | None = None
    growth_threshold: float = 1e8
    check_digests: bool | None = None
    condition: bool | None = None
    rcond_floor: float | None = None
    refine: bool = True
    max_refine: int = 2
    on_fail: str = "raise"

    def __post_init__(self):
        if self.mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, "
                             f"got {self.mode!r}")
        if self.on_fail not in _ON_FAIL:
            raise ValueError(f"on_fail must be one of {_ON_FAIL}, "
                             f"got {self.on_fail!r}")
        if self.residual_tol is not None and not self.residual_tol > 0:
            raise ValueError(
                f"residual_tol must be > 0, got {self.residual_tol}")
        if self.rcond_floor is not None and not self.rcond_floor >= 0:
            raise ValueError(
                f"rcond_floor must be >= 0, got {self.rcond_floor}")
        if self.max_refine < 1:
            raise ValueError(
                f"max_refine must be >= 1, got {self.max_refine}")

    @property
    def digests_enabled(self) -> bool:
        if self.check_digests is None:
            return self.mode == "full"
        return bool(self.check_digests)

    @property
    def condition_enabled(self) -> bool:
        if self.condition is None:
            return self.mode == "full"
        return bool(self.condition)

    def tol_for(self, n: int, dtype) -> float:
        if self.residual_tol is not None:
            return float(self.residual_tol)
        return _TOL_SCALE * max(n, 1) * float(np.finfo(dtype).eps)

    def floor_for(self, n: int, dtype) -> float:
        if self.rcond_floor is not None:
            return float(self.rcond_floor)
        return max(n, 1) * float(np.finfo(dtype).eps)


def as_verify_policy(verify) -> VerifyPolicy | None:
    """Canonicalise a ``verify=`` knob value.

    ``None``/``False`` → no verification; ``True`` → default policy;
    ``'cheap'``/``'full'`` → that mode; a :class:`VerifyPolicy` passes
    through.
    """
    if verify is None or verify is False:
        return None
    if verify is True:
        return VerifyPolicy()
    if isinstance(verify, VerifyPolicy):
        return verify
    if isinstance(verify, str):
        check_arg(verify in _MODES, 0,
                  f"verify must be one of {_MODES}, a VerifyPolicy, "
                  f"True or None, got {verify!r}")
        return VerifyPolicy(mode=verify)
    check_arg(False, 0,
              f"verify must be one of {_MODES}, a VerifyPolicy, True or "
              f"None, got {verify!r}")


# --- batched band kernels of the gate --------------------------------------

def band_mv_batch(ab3: np.ndarray, x3: np.ndarray, n: int, kl: int,
                  ku: int, *, offset: int | None = None) -> np.ndarray:
    """``y[k] = A_k @ x[k]`` over a band stack, one pass per diagonal.

    ``ab3`` is a ``(batch, rows, n)`` band stack (factor layout by
    default: diagonal on row ``kl+ku``), ``x3`` a ``(batch, n, nrhs)``
    stack.  The per-diagonal accumulation order matches
    :func:`repro.band.ops.gbmv` exactly, so each lane's result is
    bit-identical to the single-matrix routine.
    """
    if offset is None:
        offset = kl + ku
    y = np.zeros(x3.shape, dtype=np.result_type(ab3.dtype, x3.dtype))
    for d in range(-kl, ku + 1):
        row = offset - d
        lo, hi = max(0, d), n + min(0, d)
        if hi <= lo:
            continue
        y[:, lo - d:hi - d, :] += ab3[:, row, lo:hi, None] * x3[:, lo:hi, :]
    return y


def plu_apply_batch(fact3: np.ndarray, piv2: np.ndarray,
                    x3: np.ndarray, n: int, kl: int, ku: int) -> np.ndarray:
    """``y[k] = P_k L_k U_k @ x[k]`` reconstructed from ``gbtrf`` factors.

    Inverts the solve's forward elimination: first ``y = U x`` (``U``
    occupies rows ``0..kl+ku`` of the factor layout), then for each
    column ``j`` *descending* the multiplier column is added back and the
    row interchange re-applied — the exact reverse of the (swap, update)
    pairs :func:`~repro.core.solve_blocks.gbtrs_unblocked` performs.
    O(n·k) per lane, vectorized across the batch.
    """
    kv = kl + ku
    y = np.zeros(x3.shape, dtype=np.result_type(fact3.dtype, x3.dtype))
    for d in range(0, kv + 1):
        row = kv - d
        lo, hi = max(0, d), n + min(0, d)
        if hi <= lo:
            continue
        y[:, lo - d:hi - d, :] += fact3[:, row, lo:hi, None] * x3[:, lo:hi, :]
    if kl > 0:
        bidx = np.arange(fact3.shape[0])
        for j in range(n - 2, -1, -1):
            lm = min(kl, n - j - 1)
            if lm > 0:
                y[:, j + 1:j + 1 + lm, :] += (
                    fact3[:, kv + 1:kv + 1 + lm, j][:, :, None]
                    * y[:, j, :][:, None, :])
            pp = np.asarray(piv2)[:, j]
            rowj = y[:, j].copy()
            rowp = y[bidx, pp].copy()
            y[:, j] = rowp
            y[bidx, pp] = rowj
    return y


def band_norms_inf(ab3: np.ndarray, n: int, kl: int, ku: int, *,
                   offset: int | None = None) -> np.ndarray:
    """Per-lane infinity norms of a band stack (max absolute row sums)."""
    if offset is None:
        offset = kl + ku
    sums = np.zeros((ab3.shape[0], n), dtype=np.float64)
    for d in range(-kl, ku + 1):
        row = offset - d
        lo, hi = max(0, d), n + min(0, d)
        if hi <= lo:
            continue
        sums[:, lo - d:hi - d] += np.abs(ab3[:, row, lo:hi])
    if sums.size == 0:
        return np.zeros(ab3.shape[0])
    return sums.max(axis=1)


def factor_norms_inf(fact3: np.ndarray, n: int, kl: int,
                     ku: int) -> np.ndarray:
    """Per-lane ``||U||_inf`` from a ``gbtrf`` factor stack.

    ``U`` has bandwidth ``kl+ku`` after pivoting and occupies rows
    ``0..kl+ku`` of the factor layout.
    """
    return band_norms_inf(fact3, n, 0, kl + ku, offset=kl + ku)


def pivot_growth_batch(fact3: np.ndarray, orig3: np.ndarray, kl: int,
                       ku: int) -> np.ndarray:
    """Per-lane pivot growth ``max|U| / max|A|``, 0 for all-zero inputs."""
    if fact3.shape[0] == 0 or fact3.shape[2] == 0:
        return np.zeros(fact3.shape[0])
    # max|x| as max(max, -min): two allocation-free reductions instead
    # of materialising |stack| (tens of MB at paper scale).
    sub = fact3[:, :kl + ku + 1]
    num = np.maximum(sub.max(axis=(1, 2)), -sub.min(axis=(1, 2)))
    den = np.maximum(orig3.max(axis=(1, 2)), -orig3.min(axis=(1, 2)))
    with np.errstate(divide="ignore", invalid="ignore"):
        growth = np.where(den > 0, num / den, 0.0)
    return growth


def operand_digest(*arrays) -> str:
    """Content fingerprint of one lane's operands (blake2b-128).

    Shapes and dtypes join the hash so a reinterpretation of the same
    bytes cannot collide; strided views are serialised contiguously.
    """
    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.asarray(a)
        h.update(f"{a.shape}:{a.dtype.str};".encode())
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()


def _snap_rows(array, mats, rows) -> np.ndarray:
    """Contiguous ``(batch, rows, n)`` copy of every lane's band rows.

    A 3-D ndarray batch (lane-major stack or an interleaved logical
    view) is sliced wholesale — at paper scale, stacking 1000 per-lane
    views costs more than the residual gate itself.  Other containers
    (`PointerArray`, per-lane sequences) take the per-lane path.
    """
    if (isinstance(array, np.ndarray) and array.ndim == 3
            and len(mats) <= array.shape[0] and array.shape[1] >= rows):
        # np.array (not ascontiguousarray): these are snapshots, and a
        # full-height contiguous slice would alias the live batch.
        return np.array(array[:len(mats), :rows], order="C")
    return np.stack([np.asarray(m)[:rows] for m in mats])


def _lane_rows_view(array, mats, rows) -> np.ndarray:
    """Like :func:`_snap_rows` but returns a read-only logical view when
    the batch is a 3-D ndarray — for reduction-only consumers that never
    outlive the call."""
    if (isinstance(array, np.ndarray) and array.ndim == 3
            and len(mats) <= array.shape[0] and array.shape[1] >= rows):
        return array[:len(mats), :rows]
    return np.stack([np.asarray(m)[:rows] for m in mats])


def _snap_lanes(array, lanes) -> np.ndarray:
    """Contiguous ``(batch, ...)`` copy of per-lane arrays (RHS stacks)."""
    if (isinstance(array, np.ndarray) and array.ndim == 3
            and len(lanes) <= array.shape[0] and len(lanes) > 0
            and array.shape[1:] == np.asarray(lanes[0]).shape):
        return np.array(array[:len(lanes)], order="C")
    return np.stack([np.asarray(x) for x in lanes])


# --- shared ladder pieces --------------------------------------------------

def _finite_max(values, mask=None) -> float:
    vals = np.asarray(values, dtype=np.float64)
    if mask is not None:
        vals = vals[np.asarray(mask)]
    vals = vals[np.isfinite(vals)]
    return float(vals.max()) if vals.size else 0.0


def _failing(scaled: np.ndarray, tol: float, eligible) -> list[int]:
    """Lanes whose gate fails: residual above tolerance or non-finite."""
    out = []
    for k in eligible:
        s = scaled[k]
        if not np.isfinite(s) or s > tol:
            out.append(int(k))
    return out


def _stamp_condition(report, policy, n, kl, ku, mats, pivots, anorms1,
                     info, rows):
    """Full-mode condition stamping: ``rcond`` for every healthy lane."""
    rconds = []
    for k in range(len(mats)):
        if info[k] != 0:
            continue
        rconds.append(gbcon("1", n, kl, ku, mats[k][:rows], pivots[k],
                            float(anorms1[k])))
    if rconds:
        rmin = float(min(rconds))
        report.rcond_min = (rmin if report.rcond_min is None
                            else min(report.rcond_min, rmin))


def _rcond_of(n, kl, ku, fact, piv, anorm1) -> float:
    try:
        return gbcon("1", n, kl, ku, fact, piv, float(anorm1))
    except Exception:
        return 0.0


def _classify(report, policy, op, device, failing, residuals, growth,
              rconds, floor):
    """Split still-failing lanes into expected-inaccurate vs corrupted."""
    ill, corrupt = [], []
    for k in failing:
        g = growth[k]
        ill_cond = (rconds.get(k, 1.0) < floor
                    or (np.isfinite(g) and g > policy.growth_threshold))
        (ill if ill_cond else corrupt).append(k)
    report.ill_conditioned = tuple(
        sorted(set(report.ill_conditioned) | set(ill)))
    if corrupt:
        worst = _finite_max([residuals[k] for k in corrupt])
        if policy.on_fail == "raise":
            raise DataCorruptionError(op, sorted(corrupt),
                                      device=device.name, residual=worst)
        report.unrecovered = tuple(
            sorted(set(report.unrecovered) | set(corrupt)))
    return ill, corrupt


def _base_report(op, batch, method, info, inner) -> BatchReport:
    if inner is not None:
        return inner
    return BatchReport(op, batch, method_requested=method, info=info)


_VERIFY_EXEC_MSG = ("verify requires full functional execution "
                    "(execute=True, max_blocks=None)")


# --- verified drivers ------------------------------------------------------

def verified_gbsv_batch(n, kl, ku, nrhs, a_array, pv_array, b_array,
                        info=None, *, batch=None, verify=True,
                        device: DeviceSpec = H100_PCIE, stream=None,
                        method: str = "auto", execute: bool = True,
                        max_blocks=None, vectorize=None,
                        resilient: bool = False, policy=None,
                        max_resident_bytes=None, chunk_hint=None,
                        streams=None, devices=None, overlap=None,
                        layout=None):
    """:func:`~repro.core.gbsv.gbsv_batch` behind the residual gate.

    Runs the driver unchanged (all knobs — governance, pipelining,
    layout, resilience — forwarded), then verifies every healthy lane's
    solution against pristine snapshots of ``A`` and ``b`` and escalates
    failing lanes through the recovery ladder.  Returns ``(pivots, info,
    report)``; healthy lanes are bit-identical to an unverified call.
    """
    vp = as_verify_policy(verify) or VerifyPolicy()
    check_arg(execute and max_blocks is None, 13, _VERIFY_EXEC_MSG)
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(n, n, kl, ku, mats, batch=batch)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=6, zero=True)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=7)
    info = ensure_info(info, batch, arg_pos=8)
    rows = ldab_for_factor(kl, ku)
    active = batch > 0 and n > 0 and nrhs > 0
    if active:
        snap_a = _snap_rows(a_array, mats, rows)
        snap_b = _snap_lanes(b_array, rhs)

    from .gbsv import gbsv_batch
    kwargs = dict(batch=batch, device=device, stream=stream, method=method,
                  vectorize=vectorize, max_resident_bytes=max_resident_bytes,
                  chunk_hint=chunk_hint, streams=streams, devices=devices,
                  overlap=overlap, layout=layout)
    if resilient:
        _, _, report = gbsv_batch(n, kl, ku, nrhs, mats, pivots, rhs, info,
                                  resilient=True, policy=policy, **kwargs)
    else:
        gbsv_batch(n, kl, ku, nrhs, mats, pivots, rhs, info, **kwargs)
        report = _base_report("gbsv", batch, method, info, None)
    report.verify_mode = vp.mode
    if not active:
        return pivots, info, report

    tol = vp.tol_for(n, snap_a.dtype)
    floor = vp.floor_for(n, snap_a.dtype)
    fact3 = _lane_rows_view(a_array, mats, rows)
    x3 = _snap_lanes(b_array, rhs)
    anorms = band_norms_inf(snap_a, n, kl, ku)
    r3 = band_mv_batch(snap_a, x3, n, kl, ku) - snap_b
    rmax = np.abs(r3).reshape(batch, -1).max(axis=1)
    xmax = np.abs(x3).reshape(batch, -1).max(axis=1)
    bmax = np.abs(snap_b).reshape(batch, -1).max(axis=1)
    denom = anorms * xmax + bmax
    with np.errstate(divide="ignore", invalid="ignore"):
        scaled = np.where(denom > 0, rmax / denom, rmax)
    growth = pivot_growth_batch(fact3, snap_a, kl, ku)

    skip = set(report.unrecovered)
    eligible = [k for k in range(batch) if info[k] == 0 and k not in skip]
    report.verified_lanes += len(eligible)
    report.residual_max = max(report.residual_max,
                              _finite_max(scaled, [k in eligible
                                                   for k in range(batch)]))
    report.growth_max = max(report.growth_max,
                            _finite_max(growth, [k in eligible
                                                 for k in range(batch)]))
    anorms1 = None
    if vp.condition_enabled:
        anorms1 = [band_norm_1(snap_a[k], n, kl, ku) for k in range(batch)]
        _stamp_condition(report, vp, n, kl, ku, mats, pivots, anorms1,
                         info, rows)

    failing = _failing(scaled, tol, eligible)
    if not failing:
        return pivots, info, report
    report.sdc_detected = tuple(
        sorted(set(report.sdc_detected) | set(failing)))
    residuals = {k: float(scaled[k]) for k in failing}

    def restore(ks):
        for k in ks:
            mats[k][:rows] = snap_a[k]
            pivots[k][...] = 0
            rhs[k][...] = snap_b[k]

    def reverify(ks):
        still = []
        for k in ks:
            if info[k] != 0:
                continue
            s = solve_residual(snap_a[k], rhs[k], snap_b[k], kl, ku)
            residuals[k] = s
            if not np.isfinite(s) or s > tol:
                still.append(k)
        return still

    # Rung 1: exact recompute through the driver (bit-identical designs).
    restore(failing)
    sub_info = np.zeros(len(failing), dtype=np.int64)
    gbsv_batch(n, kl, ku, nrhs, [mats[k] for k in failing],
               [pivots[k] for k in failing], [rhs[k] for k in failing],
               sub_info, batch=len(failing), device=device, stream=stream,
               method=method, vectorize=None)
    report.recomputes += len(failing)
    for j, k in enumerate(failing):
        info[k] = sub_info[j]
    still = reverify(failing)

    # Rung 2: host reference net (bit-identical to the reference kernels).
    if still:
        restore(still)
        for k in still:
            _, inf = gbtf2(n, n, kl, ku, mats[k], pivots[k])
            info[k] = int(inf)
            if inf == 0:
                gbtrs_unblocked(Trans.NO_TRANS, n, kl, ku, mats[k],
                                pivots[k], rhs[k])
        report.recomputes += len(still)
        still = reverify(still)

    # Rung 3: gbequ equilibrate + refactor on scratch copies.  The
    # caller's factors keep the rung-2 state (factors of the original A);
    # only an equilibrated solution that actually passes the gate is
    # written back.
    if still:
        for k in list(still):
            scratch = snap_a[k].copy()
            r, c, rowcnd, colcnd, _amax, einfo = gbequ(n, n, kl, ku,
                                                       scratch)
            if einfo != 0:
                continue
            equed = laqgb(n, n, kl, ku, scratch, r, c, rowcnd, colcnd)
            if equed == "N":
                continue
            piv_s = np.zeros(n, dtype=np.int64)
            _, inf = gbtf2(n, n, kl, ku, scratch, piv_s)
            if inf != 0:
                continue
            y = snap_b[k].astype(np.result_type(snap_b.dtype, np.float64))
            if equed in ("R", "B"):
                y = y * r[:, None]
            gbtrs_unblocked(Trans.NO_TRANS, n, kl, ku, scratch, piv_s, y)
            if equed in ("C", "B"):
                y = y * c[:, None]
            report.recomputes += 1
            s = solve_residual(snap_a[k], y, snap_b[k], kl, ku)
            if np.isfinite(s) and s <= tol:
                rhs[k][...] = y.astype(snap_b.dtype, copy=False)
                residuals[k] = s
        still = reverify(still)

    # Rung 4: gbrfs iterative refinement against the pristine operands.
    if still and vp.refine:
        refined = []
        for k in still:
            if info[k] != 0:
                continue
            res = gbrfs(n, kl, ku, snap_a[k], mats[k][:rows], pivots[k],
                        snap_b[k], rhs[k], max_iter=vp.max_refine)
            refined.append(k)
            report.berr_max = max(report.berr_max,
                                  _finite_max(res.berr))
        if refined:
            report.refined = tuple(
                sorted(set(report.refined) | set(refined)))
            if anorms1 is None:
                anorms1 = [band_norm_1(snap_a[k], n, kl, ku)
                           for k in range(batch)]
            eps = float(np.finfo(snap_a.dtype).eps)
            for k in refined:
                rc = _rcond_of(n, kl, ku, mats[k][:rows], pivots[k],
                               anorms1[k])
                report.rcond_min = (rc if report.rcond_min is None
                                    else min(report.rcond_min, rc))
                if report.berr_max > 0:
                    report.ferr_max = max(
                        report.ferr_max, report.berr_max / max(rc, eps))
        still = reverify(still)

    recovered = [k for k in failing
                 if k not in still and info[k] == 0]
    report.sdc_recovered = tuple(
        sorted(set(report.sdc_recovered) | set(recovered)))
    if still:
        if anorms1 is None:
            anorms1 = {k: band_norm_1(snap_a[k], n, kl, ku) for k in still}
        rconds = {k: _rcond_of(n, kl, ku, mats[k][:rows], pivots[k],
                               anorms1[k]) for k in still}
        rmin = min(rconds.values())
        report.rcond_min = (rmin if report.rcond_min is None
                            else min(report.rcond_min, rmin))
        _classify(report, vp, "gbsv", device, still, residuals, growth,
                  rconds, floor)
    return pivots, info, report


def verified_gbtrf_batch(m, n, kl, ku, a_array, pv_array=None, info=None,
                         *, batch=None, verify=True,
                         device: DeviceSpec = H100_PCIE, stream=None,
                         method: str = "auto", nb=None, threads=None,
                         execute: bool = True, max_blocks=None,
                         vectorize=None, resilient: bool = False,
                         policy=None, max_resident_bytes=None,
                         chunk_hint=None, streams=None, devices=None,
                         overlap=None, layout=None):
    """:func:`~repro.core.gbtrf.gbtrf_batch` behind the factor probe.

    With no right-hand side to check, the factors are verified directly:
    ``P L U`` (reconstructed by :func:`plu_apply_batch`) applied to a
    deterministic probe vector must reproduce ``A`` applied to the same
    vector to within the residual tolerance.  Returns ``(pivots, info,
    report)``.
    """
    vp = as_verify_policy(verify) or VerifyPolicy()
    check_arg(execute and max_blocks is None, 15, _VERIFY_EXEC_MSG)
    check_arg(m == n, 1,
              f"verify requires square matrices, got m={m}, n={n}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(m, n, kl, ku, mats, batch=batch)
    pivots = ensure_pivots(pv_array, batch, min(m, n), arg_pos=7, zero=True)
    info = ensure_info(info, batch, arg_pos=8)
    rows = ldab_for_factor(kl, ku)
    active = batch > 0 and n > 0
    if active:
        snap_a = _snap_rows(a_array, mats, rows)

    from .gbtrf import gbtrf_batch
    kwargs = dict(batch=batch, device=device, stream=stream, method=method,
                  nb=nb, threads=threads, vectorize=vectorize,
                  max_resident_bytes=max_resident_bytes,
                  chunk_hint=chunk_hint, streams=streams, devices=devices,
                  overlap=overlap, layout=layout)
    if resilient:
        _, _, report = gbtrf_batch(m, n, kl, ku, mats, pivots, info,
                                   resilient=True, policy=policy, **kwargs)
    else:
        gbtrf_batch(m, n, kl, ku, mats, pivots, info, **kwargs)
        report = _base_report("gbtrf", batch, method, info, None)
    report.verify_mode = vp.mode
    if not active:
        return pivots, info, report

    tol = vp.tol_for(n, snap_a.dtype)
    floor = vp.floor_for(n, snap_a.dtype)
    # Deterministic probe (gbcon's alternating ramp): exercises every
    # column with O(1) dynamic range, so a flipped element anywhere in
    # the factors perturbs the probe image proportionally.
    w = np.array([(-1.0) ** i * (1.0 + i / max(n - 1, 1))
                  for i in range(n)])[:, None]
    w3 = np.broadcast_to(w, (batch, n, 1))
    wmax = float(np.abs(w).max())

    def probe_scaled(ks):
        """Scaled probe residuals ``|PLU w - A w|`` for the given lanes."""
        idx = list(ks)
        if len(idx) == batch:       # the common all-lanes gate
            f3 = _lane_rows_view(a_array, mats, rows)
            p2 = np.asarray(pivots) if isinstance(pivots, np.ndarray) \
                else np.stack([np.asarray(p) for p in pivots])
        else:
            f3 = np.stack([np.asarray(mats[k])[:rows] for k in idx])
            p2 = np.stack([np.asarray(pivots[k]) for k in idx])
        got = plu_apply_batch(f3, p2, w3[:len(idx)], n, kl, ku)
        ref = band_mv_batch(snap_a[idx], w3[:len(idx)], n, kl, ku)
        unorms = factor_norms_inf(f3, n, kl, ku)
        anorms = band_norms_inf(snap_a[idx], n, kl, ku)
        num = np.abs(got - ref).reshape(len(idx), -1).max(axis=1)
        denom = ((1.0 + kl) * unorms + anorms) * wmax
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(denom > 0, num / denom, num)

    skip = set(report.unrecovered)
    eligible = [k for k in range(batch) if info[k] == 0 and k not in skip]
    report.verified_lanes += len(eligible)
    scaled = np.zeros(batch)
    if eligible:
        scaled_el = probe_scaled(eligible)
        for j, k in enumerate(eligible):
            scaled[k] = scaled_el[j]
    fact3 = _lane_rows_view(a_array, mats, rows)
    growth = pivot_growth_batch(fact3, snap_a, kl, ku)
    report.residual_max = max(report.residual_max,
                              _finite_max(scaled, [k in eligible
                                                   for k in range(batch)]))
    report.growth_max = max(report.growth_max,
                            _finite_max(growth, [k in eligible
                                                 for k in range(batch)]))
    anorms1 = None
    if vp.condition_enabled:
        anorms1 = [band_norm_1(snap_a[k], n, kl, ku) for k in range(batch)]
        _stamp_condition(report, vp, n, kl, ku, mats, pivots, anorms1,
                         info, rows)

    failing = _failing(scaled, tol, eligible)
    if not failing:
        return pivots, info, report
    report.sdc_detected = tuple(
        sorted(set(report.sdc_detected) | set(failing)))
    residuals = {k: float(scaled[k]) for k in failing}

    def restore(ks):
        for k in ks:
            mats[k][:rows] = snap_a[k]
            pivots[k][...] = 0

    def reverify(ks):
        live = [k for k in ks if info[k] == 0]
        if not live:
            return []
        s = probe_scaled(live)
        still = []
        for j, k in enumerate(live):
            residuals[k] = float(s[j])
            if not np.isfinite(s[j]) or s[j] > tol:
                still.append(k)
        return still

    # Rung 1: exact recompute through the driver.
    restore(failing)
    sub_info = np.zeros(len(failing), dtype=np.int64)
    gbtrf_batch(m, n, kl, ku, [mats[k] for k in failing],
                [pivots[k] for k in failing], sub_info,
                batch=len(failing), device=device, stream=stream,
                method=method, vectorize=None)
    report.recomputes += len(failing)
    for j, k in enumerate(failing):
        info[k] = sub_info[j]
    still = reverify(failing)

    # Rung 2: host reference net.
    if still:
        restore(still)
        for k in still:
            _, inf = gbtf2(m, n, kl, ku, mats[k], pivots[k])
            info[k] = int(inf)
        report.recomputes += len(still)
        still = reverify(still)

    recovered = [k for k in failing if k not in still and info[k] == 0]
    report.sdc_recovered = tuple(
        sorted(set(report.sdc_recovered) | set(recovered)))
    if still:
        if anorms1 is None:
            anorms1 = {k: band_norm_1(snap_a[k], n, kl, ku) for k in still}
        rconds = {k: _rcond_of(n, kl, ku, mats[k][:rows], pivots[k],
                               anorms1[k]) for k in still}
        rmin = min(rconds.values())
        report.rcond_min = (rmin if report.rcond_min is None
                            else min(report.rcond_min, rmin))
        _classify(report, vp, "gbtrf", device, still, residuals, growth,
                  rconds, floor)
    return pivots, info, report


def verified_gbtrs_batch(trans, n, kl, ku, nrhs, a_array, pv_array,
                         b_array, info=None, *, batch=None, verify=True,
                         device: DeviceSpec = H100_PCIE, stream=None,
                         method: str = "auto", nb=None, threads=None,
                         rhs_tile=None, execute: bool = True,
                         max_blocks=None, vectorize=None,
                         resilient: bool = False, policy=None,
                         max_resident_bytes=None, chunk_hint=None,
                         streams=None, devices=None, overlap=None,
                         layout=None):
    """:func:`~repro.core.gbtrs.gbtrs_batch` behind the residual gate.

    Without the original ``A``, the residual is checked against the
    reconstructed operator: ``P L U x`` (from pristine factor snapshots)
    must reproduce the pristine ``b``.  In ``'full'`` mode (or with
    ``check_digests=True``) the read-only factors and pivots are also
    fingerprinted before the stage and re-verified after it; a mismatch
    restores the snapshot and is attributed in
    ``BatchReport.digest_mismatches``.  Returns ``(info, report)``.
    """
    vp = as_verify_policy(verify) or VerifyPolicy()
    trans = Trans.from_any(trans)
    check_arg(execute and max_blocks is None, 15, _VERIFY_EXEC_MSG)
    check_arg(trans is Trans.NO_TRANS, 1,
              "verify supports trans='N' solves (the reconstruction "
              "replays forward elimination); use verify=None for "
              "transposed solves")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=6)
    check_gb_args(n, n, kl, ku, mats, batch=batch, ldab_pos=7)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=8)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=9)
    info = ensure_info(info, batch, arg_pos=11)
    rows = ldab_for_factor(kl, ku)
    active = batch > 0 and n > 0 and nrhs > 0
    if active:
        snap_a = _snap_rows(a_array, mats, rows)
        snap_p = (np.array(pivots) if isinstance(pivots, np.ndarray)
                  else np.stack([np.asarray(p) for p in pivots]))
        snap_b = _snap_lanes(b_array, rhs)
        digests = None
        if vp.digests_enabled:
            digests = [operand_digest(mats[k][:rows], pivots[k])
                       for k in range(batch)]

    from .gbtrs import gbtrs_batch
    kwargs = dict(batch=batch, device=device, stream=stream, method=method,
                  nb=nb, threads=threads, rhs_tile=rhs_tile,
                  vectorize=vectorize,
                  max_resident_bytes=max_resident_bytes,
                  chunk_hint=chunk_hint, streams=streams, devices=devices,
                  overlap=overlap, layout=layout)
    if resilient:
        _, report = gbtrs_batch(trans, n, kl, ku, nrhs, mats, pivots, rhs,
                                info, resilient=True, policy=policy,
                                **kwargs)
    else:
        gbtrs_batch(trans, n, kl, ku, nrhs, mats, pivots, rhs, info,
                    **kwargs)
        report = _base_report("gbtrs", batch, method, info, None)
    report.verify_mode = vp.mode
    if not active:
        return info, report

    # Digest re-verification of the read-only operands.
    if vp.digests_enabled and digests is not None:
        mismatched = [k for k in range(batch)
                      if operand_digest(mats[k][:rows], pivots[k])
                      != digests[k]]
        if mismatched:
            report.digest_mismatches = tuple(
                sorted(set(report.digest_mismatches) | set(mismatched)))
            report.sdc_detected = tuple(
                sorted(set(report.sdc_detected) | set(mismatched)))
            for k in mismatched:
                if mats[k].flags.writeable:
                    mats[k][:rows] = snap_a[k]
                if pivots[k].flags.writeable:
                    pivots[k][...] = snap_p[k]

    tol = vp.tol_for(n, snap_a.dtype)
    floor = vp.floor_for(n, snap_a.dtype)
    x3 = _snap_lanes(b_array, rhs)
    got = plu_apply_batch(snap_a, snap_p, x3, n, kl, ku)
    unorms = factor_norms_inf(snap_a, n, kl, ku)
    rmax = np.abs(got - snap_b).reshape(batch, -1).max(axis=1)
    xmax = np.abs(x3).reshape(batch, -1).max(axis=1)
    bmax = np.abs(snap_b).reshape(batch, -1).max(axis=1)
    denom = (1.0 + kl) * unorms * xmax + bmax
    with np.errstate(divide="ignore", invalid="ignore"):
        scaled = np.where(denom > 0, rmax / denom, rmax)

    skip = set(report.unrecovered)
    eligible = [k for k in range(batch) if k not in skip]
    report.verified_lanes += len(eligible)
    report.residual_max = max(report.residual_max,
                              _finite_max(scaled, [k in eligible
                                                   for k in range(batch)]))

    failing = _failing(scaled, tol, eligible)
    # Digest-only mismatches (result fine, operand corrupted in flight)
    # were already repaired above; residual failures escalate below.
    if not failing:
        return info, report
    report.sdc_detected = tuple(
        sorted(set(report.sdc_detected) | set(failing)))
    residuals = {k: float(scaled[k]) for k in failing}

    def restore(ks):
        # Read-only factor/pivot operands (e.g. the serve layer's cached
        # factorizations) cannot have been corrupted in place — any
        # in-place write would have raised — so only writable ones are
        # rewound.
        for k in ks:
            if mats[k].flags.writeable:
                mats[k][:rows] = snap_a[k]
            if pivots[k].flags.writeable:
                pivots[k][...] = snap_p[k]
            rhs[k][...] = snap_b[k]

    def reverify(ks):
        if not ks:
            return []
        idx = list(ks)
        x = np.stack([np.asarray(rhs[k]) for k in idx])
        g = plu_apply_batch(snap_a[idx], snap_p[idx], x, n, kl, ku)
        num = np.abs(g - snap_b[idx]).reshape(len(idx), -1).max(axis=1)
        xm = np.abs(x).reshape(len(idx), -1).max(axis=1)
        den = (1.0 + kl) * unorms[idx] * xm + bmax[idx]
        with np.errstate(divide="ignore", invalid="ignore"):
            s = np.where(den > 0, num / den, num)
        still = []
        for j, k in enumerate(idx):
            residuals[k] = float(s[j])
            if not np.isfinite(s[j]) or s[j] > tol:
                still.append(k)
        return still

    # Rung 1: exact recompute through the driver.
    restore(failing)
    sub_info = np.zeros(len(failing), dtype=np.int64)
    gbtrs_batch(trans, n, kl, ku, nrhs, [mats[k] for k in failing],
                [pivots[k] for k in failing], [rhs[k] for k in failing],
                sub_info, batch=len(failing), device=device, stream=stream,
                method=method, vectorize=None)
    report.recomputes += len(failing)
    still = reverify(failing)

    # Rung 2: host reference net.
    if still:
        restore(still)
        for k in still:
            gbtrs_unblocked(trans, n, kl, ku, mats[k], pivots[k], rhs[k])
        report.recomputes += len(still)
        still = reverify(still)

    recovered = [k for k in failing if k not in still]
    report.sdc_recovered = tuple(
        sorted(set(report.sdc_recovered) | set(recovered)))
    if still:
        # No original A here: bound ||A||_1 by (1+kl)·||U||_1 (unit
        # multipliers) for the condition classification.
        growth = np.full(batch, 0.0)
        rconds = {}
        for k in still:
            anorm1 = (1.0 + kl) * band_norm_1(snap_a[k], n, 0, kl + ku,
                                              factor_layout=False)
            rconds[k] = _rcond_of(n, kl, ku, snap_a[k], snap_p[k], anorm1)
        rmin = min(rconds.values())
        report.rcond_min = (rmin if report.rcond_min is None
                            else min(report.rcond_min, rmin))
        _classify(report, vp, "gbtrs", device, still, residuals, growth,
                  rconds, floor)
    return info, report
