"""Pipelined multi-stream, multi-device batch execution.

The paper's batched API takes a stream argument precisely so host staging
and device compute can overlap (paper Section 4); the chunked executor of
:mod:`repro.core.memory_plan` gave us OOM-safe chunking but ran the chunks
strictly sequentially — lease, upload, solve, download, release — on one
device.  This module drives the *same* chunk protocol through a
double-buffered pipeline:

* each device shard runs up to three streams — an **h2d copy stream**, a
  **compute stream** and a **d2h copy stream** — with cross-stream events
  (:meth:`repro.gpusim.stream.Stream.wait_event`) ordering chunk *i*'s
  compute after its upload and its download after its compute.  Because
  the streams carry absolute timelines, chunk *i+1*'s upload overlaps
  chunk *i*'s compute and chunk *i−1*'s download in the modeled makespan
  (the per-stream tail maximum), exactly like a real double-buffered
  ``cudaMemcpyAsync`` pipeline;
* up to ``streams`` chunk leases stay live simultaneously (double/triple
  buffering), every one charged to the device
  :class:`~repro.gpusim.memory.MemoryPool` under a per-shard label, and
  the chunk size is planned against ``budget // buffers`` so admission
  control still holds with multiple buffers resident;
* the batch is sharded across devices with
  :func:`~repro.gpusim.multidevice.split_batch`, weighted by modeled
  per-device throughput (:func:`~repro.gpusim.multidevice.throughput_weights`
  fed from the kernels' own cost declarations and per-device tuning
  tables), and each shard runs on its own host worker thread — NumPy
  releases the GIL for the heavy vectorized operations, so multi-device
  runs see real wall-clock parallelism, not just a better model;
* ``resilient=True`` keeps its full contract: the OOM ladder (drain the
  pipeline's live buffers, halve the chunk, finish on the host net) runs
  per shard, fault-plan lane windows stay keyed to *global* lane indices,
  and the per-chunk :class:`~repro.core.resilience.BatchReport` parts are
  merged into one global report regardless of stream or device count.

Per-lane results are independent of sub-batch composition (the contract
the vectorized and chunked paths already pin), so the pipelined path is
bit-identical to the sequential chunked path — and to an unchunked run —
on every execution route.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..errors import DeviceMemoryError, check_arg
from ..gpusim.device import DeviceSpec
from ..gpusim.faults import active_injector
from ..gpusim.memory import memory_pool
from ..gpusim.multidevice import (
    DevicePartition,
    replicate_device,
    split_batch,
    throughput_weights,
)
from ..gpusim.stream import Stream
from ..gpusim.transfer import TransferRecord, stage_chunk

__all__ = ["PipelineResult", "pipeline_requested", "execute_pipelined",
           "last_pipeline_result"]


def pipeline_requested(*, streams=None, devices=None,
                       overlap=None) -> bool:
    """Do these knob values ask for the pipelined executor?

    ``streams=1`` alone (and ``overlap=False`` alone) keep the sequential
    chunked path; any multi-stream, multi-device or explicit-overlap
    request routes through the pipeline.
    """
    return (devices is not None or bool(overlap)
            or (streams is not None and int(streams) > 1))


@dataclass(frozen=True)
class ShardResult:
    """One device shard's slice of a pipelined run."""

    partition: DevicePartition
    streams: tuple          # (h2d, compute, d2h) — may alias each other
    h2d_bytes: int
    d2h_bytes: int

    @property
    def makespan(self) -> float:
        """Absolute tail of the shard's slowest stream."""
        return max(s.elapsed for s in set(self.streams))

    @property
    def busy_time(self) -> float:
        """Engine-seconds the shard's streams actually executed."""
        return sum(s.busy_time for s in set(self.streams))


@dataclass(frozen=True)
class PipelineResult:
    """Timing/traffic account of one pipelined batched call."""

    op: str
    batch: int
    #: Device names, in shard order.
    devices: tuple
    #: Streams per shard (1 = no overlap, 2 = shared copy stream,
    #: 3 = separate h2d and d2h streams).
    streams: int
    overlap: bool
    shards: tuple

    @property
    def makespan(self) -> float:
        """Modeled wall time: shards run concurrently, the slowest wins."""
        return max((s.makespan for s in self.shards), default=0.0)

    @property
    def device_busy_time(self) -> float:
        """Aggregate engine-seconds across every shard's streams."""
        return sum(s.busy_time for s in self.shards)

    @property
    def h2d_bytes(self) -> int:
        return sum(s.h2d_bytes for s in self.shards)

    @property
    def d2h_bytes(self) -> int:
        return sum(s.d2h_bytes for s in self.shards)

    def to_dict(self) -> dict:
        """JSON-safe summary (for structured logging / benchmarks)."""
        return {
            "op": self.op,
            "batch": int(self.batch),
            "devices": [str(d) for d in self.devices],
            "streams": int(self.streams),
            "overlap": bool(self.overlap),
            "makespan": float(self.makespan),
            "device_busy_time": float(self.device_busy_time),
            "h2d_bytes": int(self.h2d_bytes),
            "d2h_bytes": int(self.d2h_bytes),
            "partitions": [
                {"device": s.partition.device.name,
                 "start": int(s.partition.start),
                 "stop": int(s.partition.stop),
                 "makespan": float(s.makespan)}
                for s in self.shards
            ],
        }


_LAST: PipelineResult | None = None
_LAST_LOCK = threading.Lock()


def last_pipeline_result() -> PipelineResult | None:
    """The :class:`PipelineResult` of the most recent pipelined call."""
    return _LAST


def _resolve_devices(device: DeviceSpec, devices) -> list[DeviceSpec]:
    """Normalize the ``devices=`` knob to a list of uniquely-named specs."""
    if devices is None:
        return [device]
    if isinstance(devices, int):
        check_arg(devices >= 1, 0,
                  f"devices must be >= 1, got {devices}")
        if devices == 1:
            return [device]
        return replicate_device(device, devices)
    devs = list(devices)
    check_arg(len(devs) >= 1, 0, "devices must not be empty")
    names = [d.name for d in devs]
    check_arg(len(set(names)) == len(names), 0,
              f"device names must be unique (pools and fault injectors "
              f"key on them), got {names}")
    return devs


def _resolve_buffers(streams, overlap) -> int:
    """Streams (= live chunk buffers) per shard from the knob pair.

    ``overlap=False`` forces sequential staging inside each shard;
    ``overlap=True`` (or any pipelining request with ``streams`` unset)
    defaults to the full h2d/compute/d2h triple.  More than three streams
    buys nothing in this model (there are only three engines to keep
    busy), so the count is capped there.
    """
    if overlap is False:
        return 1
    if streams is None:
        return 3
    check_arg(int(streams) >= 1, 0,
              f"streams must be >= 1, got {streams}")
    return min(int(streams), 3)


def _shard_streams(device: DeviceSpec, nbuf: int) -> tuple:
    """(h2d, compute, d2h) streams for one shard; aliased when shared."""
    cmp_s = Stream(device, name=f"pipe-compute@{device.name}")
    if nbuf >= 3:
        return (Stream(device, name=f"pipe-h2d@{device.name}"), cmp_s,
                Stream(device, name=f"pipe-d2h@{device.name}"))
    if nbuf == 2:
        copy = Stream(device, name=f"pipe-copy@{device.name}")
        return (copy, cmp_s, copy)
    return (cmp_s, cmp_s, cmp_s)


def _run_shard(op, part: DevicePartition, plan, total_batch, nbuf,
               resilient, policy, run_chunk, run_host):
    """Run one shard's chunks through the double-buffered stream triple.

    Mirrors the sequential executor's OOM ladder with one extra rung in
    front: an allocation failure first *drains* the pipeline (frees the
    completed chunks' live buffers) and retries, because under double
    buffering the squeeze may come from our own in-flight leases rather
    than a genuinely too-large chunk.  Lane indices are global throughout
    — ``run_chunk`` slices the caller's operand lists directly and the
    fault injector's lane window is opened at the chunk's global start —
    so results and fault placement cannot depend on the sharding.
    """
    dev = part.device
    pool = memory_pool(dev)
    injector = active_injector(dev)
    s_h2d, s_cmp, s_d2h = _shard_streams(dev, nbuf)
    label = f"{op}-chunk@{dev.name}"
    parts, chunks, events = [], [], []
    oom = 0
    backoff_total = 0.0
    h2d_bytes = d2h_bytes = 0
    chunk = plan.chunk
    if plan.chunked or not plan.admitted or part.count < total_batch:
        events.append({"action": "split", "chunk": int(chunk),
                       "footprint": int(plan.footprint),
                       "budget": int(plan.budget),
                       "device": dev.name, "start": int(part.start),
                       "stop": int(part.stop)})
    live: deque = deque()       # nbytes of completed chunks' live leases
    start = part.start
    attempt = 0
    try:
        while start < part.stop:
            stop = min(start + chunk, part.stop)
            nbytes = (stop - start) * plan.lane_bytes
            try:
                # Honour the planned budget, not just the pool (a caller
                # cap below one lane must reach the host rung).
                if nbytes > plan.budget:
                    raise DeviceMemoryError(nbytes, pool.in_use,
                                            plan.budget, device=dev.name)
                while len(live) >= nbuf:
                    pool.free(live.popleft(), label=label)
                pool.alloc(nbytes, label=label)
            except DeviceMemoryError as exc:
                if not resilient:
                    raise
                oom += 1
                if live:
                    # Drain the pipeline and retry at the same size: the
                    # pressure may be our own double buffers, not the
                    # chunk.  ``live`` is empty on the retry, so a second
                    # failure falls through to the ladder below.
                    while live:
                        pool.free(live.popleft(), label=label)
                    events.append({"action": "drain",
                                   "requested": int(exc.requested),
                                   "budget": int(exc.capacity),
                                   "injected": bool(exc.injected),
                                   "device": dev.name})
                    continue
                if chunk > 1:
                    attempt += 1
                    delay = policy.backoff(attempt)
                    backoff_total += delay
                    new_chunk = max(1, chunk // 2)
                    events.append({"action": "halve", "from": int(chunk),
                                   "to": int(new_chunk),
                                   "requested": int(exc.requested),
                                   "budget": int(exc.capacity),
                                   "injected": bool(exc.injected),
                                   "device": dev.name})
                    chunk = new_chunk
                    continue
                events.append({"action": "host", "start": int(start),
                               "stop": int(part.stop),
                               "requested": int(exc.requested),
                               "budget": int(exc.capacity),
                               "injected": bool(exc.injected),
                               "device": dev.name})
                rep = run_host(start, part.stop)
                if rep is not None:
                    parts.append((list(range(start, part.stop)), rep))
                break
            staged = (stop - start) < total_batch
            try:
                if staged:
                    stage_chunk(dev, nbytes, direction="h2d",
                                stream=s_h2d)
                    h2d_bytes += nbytes
                    s_cmp.wait_event(s_h2d.record_event())
                if injector is not None:
                    with injector.lane_window(start):
                        rep = run_chunk(start, stop, device=dev,
                                        stream=s_cmp)
                else:
                    rep = run_chunk(start, stop, device=dev, stream=s_cmp)
                if staged:
                    s_d2h.wait_event(s_cmp.record_event())
                    stage_chunk(dev, nbytes, direction="d2h",
                                stream=s_d2h)
                    d2h_bytes += nbytes
            except BaseException:
                pool.free(nbytes, label=label)
                raise
            live.append(nbytes)
            if rep is not None:
                parts.append((list(range(start, stop)), rep))
            chunks.append(stop - start)
            start = stop
    finally:
        while live:
            pool.free(live.popleft(), label=label)
    shard = ShardResult(partition=part, streams=(s_h2d, s_cmp, s_d2h),
                        h2d_bytes=h2d_bytes, d2h_bytes=d2h_bytes)
    return parts, chunks, oom, events, backoff_total, shard


def execute_pipelined(op, batch, lane_bytes, *, device, stream, streams,
                      devices, overlap, resilient, policy, run_chunk,
                      run_host, max_resident_bytes, chunk_hint,
                      probe_stages):
    """Run a governed batched call through the pipelined executor.

    Same contract as the sequential ``_execute_governed``: returns
    ``(parts, chunks, oom, events, backoff, plan, result)`` where
    ``plan`` is an aggregate :class:`~repro.core.memory_plan.MemoryPlan`
    for report attachment and ``result`` is the :class:`PipelineResult`
    (also retrievable via :func:`last_pipeline_result`).  ``run_chunk``
    and ``run_host`` take global lane ranges; ``run_chunk`` additionally
    accepts ``device=`` / ``stream=`` overrides so a shard's chunks
    execute on the shard's device and compute stream.
    """
    from .memory_plan import MemoryPlan, _admit_or_raise, plan_batch
    from .resilience import ResiliencePolicy
    global _LAST
    policy = policy or ResiliencePolicy()
    devs = _resolve_devices(device, devices)
    nbuf = _resolve_buffers(streams, overlap)
    weights = None
    if len(devs) > 1:
        weights = throughput_weights(devs, probe_stages, grid=batch)
    shards = split_batch(batch, devs, weights=weights)

    plans = []
    for part in shards:
        plan = plan_batch(part.count, lane_bytes, device=part.device,
                          max_resident_bytes=max_resident_bytes,
                          chunk_hint=chunk_hint, buffers=nbuf)
        _admit_or_raise(plan, resilient, part.device)
        plans.append(plan)

    results = [None] * len(shards)
    errors = [None] * len(shards)

    def work(i, part, plan):
        try:
            results[i] = _run_shard(op, part, plan, batch, nbuf,
                                    resilient, policy, run_chunk, run_host)
        except BaseException as exc:  # re-raised on the caller thread
            errors[i] = exc

    if len(shards) > 1:
        workers = [threading.Thread(target=work, args=(i, part, plan),
                                    name=f"pipe-{op}-{part.device.name}")
                   for i, (part, plan) in enumerate(zip(shards, plans))]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
    else:
        for i, (part, plan) in enumerate(zip(shards, plans)):
            work(i, part, plan)
    for exc in errors:
        if exc is not None:
            raise exc

    parts, chunks, events = [], [], []
    oom = 0
    backoff = 0.0
    shard_results = []
    for res in results:
        s_parts, s_chunks, s_oom, s_events, s_backoff, shard = res
        parts.extend(s_parts)
        chunks.extend(s_chunks)
        oom += s_oom
        events.extend(s_events)
        backoff += s_backoff
        shard_results.append(shard)

    result = PipelineResult(
        op=op, batch=batch,
        devices=tuple(d.name for d in devs),
        streams=nbuf, overlap=nbuf > 1,
        shards=tuple(shard_results))
    with _LAST_LOCK:
        _LAST = result
    if stream is not None and batch:
        # One summary record on the caller's stream: the pipeline occupied
        # the device(s) for the modeled makespan.  Traffic was already
        # charged by the per-chunk staging copies, so this carries time
        # only.
        stream.record(TransferRecord(
            kernel_name=f"{op}_pipeline", nbytes=0,
            time=result.makespan))

    agg = MemoryPlan(
        batch=batch, lane_bytes=lane_bytes,
        footprint=batch * lane_bytes,
        budget=min((p.budget for p in plans), default=0),
        chunk=min((p.chunk for p in plans), default=batch or 1),
        admitted=all(p.admitted for p in plans))
    return parts, tuple(chunks), oom, events, backoff, agg, result
