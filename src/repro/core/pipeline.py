"""Pipelined multi-stream, multi-device batch execution.

The paper's batched API takes a stream argument precisely so host staging
and device compute can overlap (paper Section 4); the chunked executor of
:mod:`repro.core.memory_plan` gave us OOM-safe chunking but ran the chunks
strictly sequentially — lease, upload, solve, download, release — on one
device.  This module drives the *same* chunk protocol through a
double-buffered pipeline:

* each device shard runs up to three streams — an **h2d copy stream**, a
  **compute stream** and a **d2h copy stream** — with cross-stream events
  (:meth:`repro.gpusim.stream.Stream.wait_event`) ordering chunk *i*'s
  compute after its upload and its download after its compute.  Because
  the streams carry absolute timelines, chunk *i+1*'s upload overlaps
  chunk *i*'s compute and chunk *i−1*'s download in the modeled makespan
  (the per-stream tail maximum), exactly like a real double-buffered
  ``cudaMemcpyAsync`` pipeline;
* up to ``streams`` chunk leases stay live simultaneously (double/triple
  buffering), every one charged to the device
  :class:`~repro.gpusim.memory.MemoryPool` under a per-shard label, and
  the chunk size is planned against ``budget // buffers`` so admission
  control still holds with multiple buffers resident;
* the batch is sharded across devices with
  :func:`~repro.gpusim.multidevice.split_batch`, weighted by modeled
  per-device throughput (:func:`~repro.gpusim.multidevice.throughput_weights`
  fed from the kernels' own cost declarations and per-device tuning
  tables), and each shard runs on its own host worker thread — NumPy
  releases the GIL for the heavy vectorized operations, so multi-device
  runs see real wall-clock parallelism, not just a better model;
* ``resilient=True`` keeps its full contract: the OOM ladder (drain the
  pipeline's live buffers, halve the chunk, finish on the host net) runs
  per shard, fault-plan lane windows stay keyed to *global* lane indices,
  and the per-chunk :class:`~repro.core.resilience.BatchReport` parts are
  merged into one global report regardless of stream or device count;
* with more than one device, ``resilient=True`` additionally arms the
  **device fault domain**: execution becomes a sequence of dispatch
  *rounds* governed by a per-device circuit breaker
  (:class:`~repro.gpusim.multidevice.CircuitBreaker`).  A chunk that dies
  with :class:`~repro.errors.DeviceLostError` (whole-device outage) or
  :class:`~repro.errors.KernelHangError` (stream watchdog) is restored
  from its pre-dispatch snapshot and **re-sharded** onto the surviving
  devices in the next round; tripped devices re-enter through single-lane
  probe launches (closed → open → half-open → recovered/dead), straggler
  chunks can be **hedged** onto the fastest other healthy device
  (first-finisher wins, the loser's traffic is attributed), and every
  decision lands in ``BatchReport.device_events``.

Per-lane results are independent of sub-batch composition (the contract
the vectorized and chunked paths already pin), so the pipelined path is
bit-identical to the sequential chunked path — and to an unchunked run —
on every execution route, *including* runs recovered from mid-flight
device loss: snapshot-restore re-dispatch replays the exact same lanes
through the exact same kernels.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import nullcontext
from dataclasses import dataclass

from ..errors import (
    DeviceError,
    DeviceLostError,
    DeviceMemoryError,
    KernelHangError,
    check_arg,
)
from ..gpusim.device import DeviceSpec
from ..gpusim.faults import active_injector
from ..gpusim.memory import memory_pool
from ..gpusim.multidevice import (
    CircuitBreaker,
    DevicePartition,
    replicate_device,
    split_batch,
    throughput_weights,
)
from ..gpusim.stream import Stream
from ..gpusim.transfer import TransferRecord, stage_chunk

__all__ = ["PipelineResult", "pipeline_requested", "execute_pipelined",
           "last_pipeline_result"]


def pipeline_requested(*, streams=None, devices=None,
                       overlap=None) -> bool:
    """Do these knob values ask for the pipelined executor?

    ``streams=1`` alone (and ``overlap=False`` alone) keep the sequential
    chunked path; any multi-stream, multi-device or explicit-overlap
    request routes through the pipeline.
    """
    return (devices is not None or bool(overlap)
            or (streams is not None and int(streams) > 1))


@dataclass(frozen=True)
class ShardResult:
    """One device shard's slice of a pipelined run.

    ``partition`` spans the shard's lane hull; failover rounds may leave
    holes inside it (lanes another device completed earlier).  ``role``
    is ``"full"`` for a throughput-weighted share, ``"probe"`` for a
    circuit-breaker probe launch, and ``"hedge"`` for a straggler's
    duplicate dispatch.
    """

    partition: DevicePartition
    streams: tuple          # (h2d, compute, d2h) — may alias each other
    h2d_bytes: int
    d2h_bytes: int
    role: str = "full"

    @property
    def makespan(self) -> float:
        """Absolute tail of the shard's slowest stream."""
        return max(s.elapsed for s in set(self.streams))

    @property
    def busy_time(self) -> float:
        """Engine-seconds the shard's streams actually executed."""
        return sum(s.busy_time for s in set(self.streams))


@dataclass(frozen=True)
class PipelineResult:
    """Timing/traffic account of one pipelined batched call."""

    op: str
    batch: int
    #: Device names, in shard order.
    devices: tuple
    #: Streams per shard (1 = no overlap, 2 = shared copy stream,
    #: 3 = separate h2d and d2h streams).
    streams: int
    overlap: bool
    shards: tuple
    #: Dispatch rounds the batch took (1 = no failover re-sharding).
    rounds: int = 1
    #: Modeled wall time of each round; rounds are sequential (a
    #: re-shard decision needs the failed round's outcome), so the total
    #: makespan is their sum.  Hedge savings are already subtracted.
    round_makespans: tuple = ()
    #: Failure-domain decisions, in order: circuit-breaker transitions,
    #: chunk failovers, hedges (JSON-safe dicts).
    device_events: tuple = ()
    #: Chunks re-dispatched onto surviving devices.
    failovers: int = 0
    #: Straggler chunks hedged onto a second device.
    hedges: int = 0

    @property
    def makespan(self) -> float:
        """Modeled wall time.

        Within a round, shards run concurrently and the slowest wins;
        failover rounds run sequentially, so the total is the sum of the
        per-round maxima.
        """
        if self.round_makespans:
            return sum(self.round_makespans)
        return max((s.makespan for s in self.shards), default=0.0)

    @property
    def device_busy_time(self) -> float:
        """Aggregate engine-seconds across every shard's streams."""
        return sum(s.busy_time for s in self.shards)

    @property
    def h2d_bytes(self) -> int:
        return sum(s.h2d_bytes for s in self.shards)

    @property
    def d2h_bytes(self) -> int:
        return sum(s.d2h_bytes for s in self.shards)

    def to_dict(self) -> dict:
        """JSON-safe summary (for structured logging / benchmarks)."""
        return {
            "op": self.op,
            "batch": int(self.batch),
            "devices": [str(d) for d in self.devices],
            "streams": int(self.streams),
            "overlap": bool(self.overlap),
            "makespan": float(self.makespan),
            "device_busy_time": float(self.device_busy_time),
            "h2d_bytes": int(self.h2d_bytes),
            "d2h_bytes": int(self.d2h_bytes),
            "rounds": int(self.rounds),
            "round_makespans": [float(m) for m in self.round_makespans],
            "device_events": [dict(e) for e in self.device_events],
            "failovers": int(self.failovers),
            "hedges": int(self.hedges),
            "partitions": [
                {"device": s.partition.device.name,
                 "start": int(s.partition.start),
                 "stop": int(s.partition.stop),
                 "role": s.role,
                 "makespan": float(s.makespan)}
                for s in self.shards
            ],
        }


_LAST: PipelineResult | None = None
_LAST_LOCK = threading.Lock()


def last_pipeline_result() -> PipelineResult | None:
    """The :class:`PipelineResult` of the most recent pipelined call."""
    return _LAST


def _resolve_devices(device: DeviceSpec, devices) -> list[DeviceSpec]:
    """Normalize the ``devices=`` knob to a list of uniquely-named specs."""
    if devices is None:
        return [device]
    if isinstance(devices, int):
        check_arg(devices >= 1, 0,
                  f"devices must be >= 1, got {devices}")
        if devices == 1:
            return [device]
        return replicate_device(device, devices)
    devs = list(devices)
    check_arg(len(devs) >= 1, 0, "devices must not be empty")
    names = [d.name for d in devs]
    check_arg(len(set(names)) == len(names), 0,
              f"device names must be unique (pools and fault injectors "
              f"key on them), got {names}")
    return devs


def _resolve_buffers(streams, overlap) -> int:
    """Streams (= live chunk buffers) per shard from the knob pair.

    ``overlap=False`` forces sequential staging inside each shard;
    ``overlap=True`` (or any pipelining request with ``streams`` unset)
    defaults to the full h2d/compute/d2h triple.  More than three streams
    buys nothing in this model (there are only three engines to keep
    busy), so the count is capped there.
    """
    if overlap is False:
        return 1
    if streams is None:
        return 3
    check_arg(int(streams) >= 1, 0,
              f"streams must be >= 1, got {streams}")
    return min(int(streams), 3)


def _shard_streams(device: DeviceSpec, nbuf: int,
                   watchdog: float | None = None) -> tuple:
    """(h2d, compute, d2h) streams for one shard; aliased when shared.

    The watchdog deadline arms the *compute* stream only — staging copies
    cannot hang in this model, and a shared copy/compute stream (1 or 2
    buffers) inherits the deadline because it *is* the compute stream.
    """
    cmp_s = Stream(device, name=f"pipe-compute@{device.name}",
                   watchdog=watchdog)
    if nbuf >= 3:
        return (Stream(device, name=f"pipe-h2d@{device.name}"), cmp_s,
                Stream(device, name=f"pipe-d2h@{device.name}"))
    if nbuf == 2:
        copy = Stream(device, name=f"pipe-copy@{device.name}")
        return (copy, cmp_s, copy)
    return (cmp_s, cmp_s, cmp_s)


def _take_lanes(ranges: list, count: int) -> list:
    """Pop ``count`` lanes off the front of a range worklist (mutates)."""
    taken = []
    while count > 0 and ranges:
        start, stop = ranges[0]
        n = min(count, stop - start)
        taken.append((start, start + n))
        if start + n == stop:
            ranges.pop(0)
        else:
            ranges[0] = (start + n, stop)
        count -= n
    return taken


def _share_counts(total: int, weights: list) -> list:
    """Split ``total`` lanes by ``weights`` (split_batch's rounding)."""
    counts = []
    remaining = total
    wsum = sum(weights)
    for i, w in enumerate(weights):
        if i == len(weights) - 1:
            c = remaining
        else:
            c = min(remaining, round(total * w / wsum))
        counts.append(c)
        remaining -= c
    return counts


class _ShardOutcome:
    """Everything one shard worker produced — or left behind."""

    __slots__ = ("parts", "chunks", "oom", "events", "backoff", "shard",
                 "spans", "orphans", "failure")

    def __init__(self):
        self.parts = []      # (lane_list, BatchReport) pairs
        self.chunks = []     # completed chunk sizes
        self.oom = 0
        self.events = []     # OOM-ladder events
        self.backoff = 0.0
        self.shard = None    # ShardResult
        self.spans = []      # per-chunk dispatch spans (hedging input)
        self.orphans = []    # lane ranges never started (device died)
        self.failure = None  # {"kind", "device", "start", "stop", ...}


def _run_shard(op, dev, ranges, plan, total_batch, nbuf, resilient, policy,
               run_chunk, run_host, *, watchdog=None, failover=False,
               snapshot=None, restore=None, keep_snaps=False, role="full"):
    """Run one shard's lane ranges through the double-buffered triple.

    Mirrors the sequential executor's OOM ladder with one extra rung in
    front: an allocation failure first *drains* the pipeline (frees the
    completed chunks' live buffers) and retries, because under double
    buffering the squeeze may come from our own in-flight leases rather
    than a genuinely too-large chunk.  Lane indices are global throughout
    — ``run_chunk`` slices the caller's operand lists directly and the
    fault injector's lane window is opened at the chunk's global start —
    so results and fault placement cannot depend on the sharding.

    With ``failover`` armed, every chunk is snapshotted before dispatch
    and a :class:`~repro.errors.DeviceLostError` or
    :class:`~repro.errors.KernelHangError` does not propagate: the chunk's
    operands are restored from the snapshot (a hung kernel has already
    mutated them — in-place factorization is not idempotent), the failure
    is described in :attr:`_ShardOutcome.failure`, and every lane not yet
    completed is returned as an orphan range for the coordinator to
    re-shard.  Breaker bookkeeping happens on the coordinator thread, not
    here, which keeps failover decisions deterministic.
    """
    out = _ShardOutcome()
    pool = memory_pool(dev)
    injector = active_injector(dev)
    s_h2d, s_cmp, s_d2h = _shard_streams(dev, nbuf, watchdog=watchdog)
    label = f"{op}-chunk@{dev.name}"
    h2d_bytes = d2h_bytes = 0
    chunk = plan.chunk
    shard_count = sum(stop - start for start, stop in ranges)
    if plan.chunked or not plan.admitted or shard_count < total_batch:
        out.events.append({"action": "split", "chunk": int(chunk),
                           "footprint": int(plan.footprint),
                           "budget": int(plan.budget),
                           "device": dev.name,
                           "start": int(ranges[0][0]),
                           "stop": int(ranges[-1][1])})
    guard = nullcontext
    if failover:
        from .resilience import escalate_device_faults
        guard = escalate_device_faults
    live: deque = deque()       # nbytes of completed chunks' live leases
    pending = deque(ranges)
    attempt = 0
    try:
        while pending:
            start, rstop = pending.popleft()
            while start < rstop:
                stop = min(start + chunk, rstop)
                nbytes = (stop - start) * plan.lane_bytes
                try:
                    # Honour the planned budget, not just the pool (a
                    # caller cap below one lane must reach the host rung).
                    if nbytes > plan.budget:
                        raise DeviceMemoryError(nbytes, pool.in_use,
                                                plan.budget,
                                                device=dev.name)
                    while len(live) >= nbuf:
                        pool.free(live.popleft(), label=label)
                    pool.alloc(nbytes, label=label)
                except DeviceMemoryError as exc:
                    if not resilient:
                        raise
                    out.oom += 1
                    if live:
                        # Drain the pipeline and retry at the same size:
                        # the pressure may be our own double buffers, not
                        # the chunk.  ``live`` is empty on the retry, so a
                        # second failure falls through to the ladder.
                        while live:
                            pool.free(live.popleft(), label=label)
                        out.events.append({"action": "drain",
                                           "requested": int(exc.requested),
                                           "budget": int(exc.capacity),
                                           "injected": bool(exc.injected),
                                           "device": dev.name})
                        continue
                    if chunk > 1:
                        attempt += 1
                        delay = policy.backoff(attempt)
                        out.backoff += delay
                        new_chunk = max(1, chunk // 2)
                        out.events.append({"action": "halve",
                                           "from": int(chunk),
                                           "to": int(new_chunk),
                                           "requested": int(exc.requested),
                                           "budget": int(exc.capacity),
                                           "injected": bool(exc.injected),
                                           "device": dev.name})
                        chunk = new_chunk
                        continue
                    # Host rung: this range's tail plus every range not
                    # yet started — the device cannot fit a single lane.
                    host_ranges = [(start, rstop)] + list(pending)
                    pending.clear()
                    for h_start, h_stop in host_ranges:
                        out.events.append({"action": "host",
                                           "start": int(h_start),
                                           "stop": int(h_stop),
                                           "requested": int(exc.requested),
                                           "budget": int(exc.capacity),
                                           "injected": bool(exc.injected),
                                           "device": dev.name})
                        rep = run_host(h_start, h_stop)
                        if rep is not None:
                            out.parts.append(
                                (list(range(h_start, h_stop)), rep))
                    start = rstop
                    break
                snap = None
                if failover and snapshot is not None:
                    snap = snapshot(start, stop)
                staged = (stop - start) < total_batch
                t0 = s_cmp.elapsed
                try:
                    if staged:
                        stage_chunk(dev, nbytes, direction="h2d",
                                    stream=s_h2d)
                        h2d_bytes += nbytes
                        s_cmp.wait_event(s_h2d.record_event())
                    with guard():
                        if injector is not None:
                            with injector.lane_window(start):
                                rep = run_chunk(start, stop, device=dev,
                                                stream=s_cmp)
                        else:
                            rep = run_chunk(start, stop, device=dev,
                                            stream=s_cmp)
                    if staged:
                        s_d2h.wait_event(s_cmp.record_event())
                        stage_chunk(dev, nbytes, direction="d2h",
                                    stream=s_d2h)
                        d2h_bytes += nbytes
                except (DeviceLostError, KernelHangError) as exc:
                    pool.free(nbytes, label=label)
                    if not failover:
                        raise
                    if snap is not None and restore is not None:
                        restore(start, stop, snap)
                    kind = ("device-lost"
                            if isinstance(exc, DeviceLostError) else "hang")
                    out.failure = {
                        "kind": kind, "device": dev.name,
                        "start": int(start), "stop": int(stop),
                        "injected": bool(getattr(exc, "injected", False))}
                    out.orphans = [(start, rstop)] + list(pending)
                    pending.clear()
                    start = rstop
                    break
                except BaseException:
                    pool.free(nbytes, label=label)
                    raise
                live.append(nbytes)
                if rep is not None:
                    out.parts.append((list(range(start, stop)), rep))
                out.chunks.append(stop - start)
                out.spans.append({"start": int(start), "stop": int(stop),
                                  "duration": s_cmp.elapsed - t0,
                                  "nbytes": int(nbytes),
                                  "staged": bool(staged),
                                  "snap": snap if keep_snaps else None})
                start = stop
    finally:
        while live:
            pool.free(live.popleft(), label=label)
    hull_start = min(r[0] for r in ranges)
    hull_stop = max(r[1] for r in ranges)
    out.shard = ShardResult(
        partition=DevicePartition(dev, hull_start, hull_stop),
        streams=(s_h2d, s_cmp, s_d2h),
        h2d_bytes=h2d_bytes, d2h_bytes=d2h_bytes, role=role)
    return out


def _run_hedge(op, dev, span, nbuf, run_chunk, snapshot, restore,
               watchdog):
    """Duplicate one completed chunk onto ``dev`` (straggler hedging).

    The primary's outputs are snapshotted first, the chunk's operands are
    rewound to the pre-dispatch input snapshot, and the chunk replays on a
    fresh stream triple.  A successful hedge leaves bit-identical outputs
    (the per-lane determinism contract), so only timing attribution and
    the loser's traffic differ; a failed hedge restores the primary's
    outputs and stands down.  Returns ``(ShardResult | None, seconds,
    ok)``.
    """
    start, stop = span["start"], span["stop"]
    nbytes = span["nbytes"]
    out_snap = snapshot(start, stop)
    pool = memory_pool(dev)
    injector = active_injector(dev)
    s_h2d, s_cmp, s_d2h = _shard_streams(dev, nbuf, watchdog=watchdog)
    label = f"{op}-hedge@{dev.name}"
    h2d = d2h = 0
    try:
        pool.alloc(nbytes, label=label)
    except DeviceMemoryError:
        return None, 0.0, False     # no room to hedge: not an error
    restore(start, stop, span["snap"])
    ok = True
    try:
        from .resilience import escalate_device_faults
        with escalate_device_faults():
            if span["staged"]:
                stage_chunk(dev, nbytes, direction="h2d", stream=s_h2d)
                h2d = nbytes
                s_cmp.wait_event(s_h2d.record_event())
            if injector is not None:
                with injector.lane_window(start):
                    run_chunk(start, stop, device=dev, stream=s_cmp)
            else:
                run_chunk(start, stop, device=dev, stream=s_cmp)
            if span["staged"]:
                s_d2h.wait_event(s_cmp.record_event())
                stage_chunk(dev, nbytes, direction="d2h", stream=s_d2h)
                d2h = nbytes
    except (DeviceError, DeviceMemoryError):
        restore(start, stop, out_snap)   # primary's results stand
        ok = False
    finally:
        pool.free(nbytes, label=label)
    shard = ShardResult(partition=DevicePartition(dev, start, stop),
                        streams=(s_h2d, s_cmp, s_d2h),
                        h2d_bytes=h2d, d2h_bytes=d2h, role="hedge")
    dur = max(s.elapsed for s in {s_h2d, s_cmp, s_d2h}) if ok else 0.0
    return shard, dur, ok


def execute_pipelined(op, batch, lane_bytes, *, device, stream, streams,
                      devices, overlap, resilient, policy, run_chunk,
                      run_host, max_resident_bytes, chunk_hint,
                      probe_stages, snapshot=None, restore=None):
    """Run a governed batched call through the pipelined executor.

    Same contract as the sequential ``_execute_governed``: returns
    ``(parts, chunks, oom, events, backoff, plan, result)`` where
    ``plan`` is an aggregate :class:`~repro.core.memory_plan.MemoryPlan`
    for report attachment and ``result`` is the :class:`PipelineResult`
    (also retrievable via :func:`last_pipeline_result`).  ``run_chunk``
    and ``run_host`` take global lane ranges; ``run_chunk`` additionally
    accepts ``device=`` / ``stream=`` overrides so a shard's chunks
    execute on the shard's device and compute stream.

    ``snapshot(start, stop)`` / ``restore(start, stop, snap)`` capture and
    rewind the operand slices of a lane range.  When both are supplied,
    ``resilient=True`` and more than one device is in play, the **device
    fault domain** arms: execution becomes a sequence of dispatch rounds
    governed by a per-device :class:`~repro.gpusim.multidevice.
    CircuitBreaker` (``policy.breaker`` or a fresh one), chunks orphaned
    by a device outage or watchdog hang are restored and re-sharded onto
    the surviving devices, tripped devices re-enter through single-lane
    probes, and — with ``policy.hedge_ratio`` set — straggler chunks are
    hedged onto the fastest other closed device.  All decisions land in
    ``PipelineResult.device_events``; if every device dies, the leftover
    lanes finish on the host net.
    """
    from .memory_plan import MemoryPlan, _admit_or_raise, plan_batch
    from .resilience import ResiliencePolicy
    global _LAST
    policy = policy or ResiliencePolicy()
    devs = _resolve_devices(device, devices)
    nbuf = _resolve_buffers(streams, overlap)
    watchdog = getattr(policy, "watchdog", None)
    hedge_ratio = getattr(policy, "hedge_ratio", None)
    failover = (bool(resilient) and len(devs) > 1
                and snapshot is not None and restore is not None)
    hedge_on = failover and hedge_ratio is not None
    breaker = None
    if failover:
        breaker = getattr(policy, "breaker", None) or CircuitBreaker()
    weights = None
    if len(devs) > 1:
        weights = throughput_weights(devs, probe_stages,
                                     grid=max(batch, 1))

    parts, chunks, events = [], [], []
    oom = 0
    backoff = 0.0
    shard_results = []
    plans = []
    device_events = []
    round_makespans = []
    failovers = hedges = 0
    rounds = 0

    def plan_for(dev, count):
        plan = plan_batch(count, lane_bytes, device=dev,
                          max_resident_bytes=max_resident_bytes,
                          chunk_hint=chunk_hint, buffers=nbuf)
        _admit_or_raise(plan, resilient, dev)
        plans.append(plan)
        return plan

    def absorb(out):
        nonlocal oom, backoff
        parts.extend(out.parts)
        chunks.extend(out.chunks)
        oom += out.oom
        events.extend(out.events)
        backoff += out.backoff
        shard_results.append(out.shard)

    def launch(assignments):
        """Run one round's shard assignments on worker threads."""
        outs = [None] * len(assignments)
        errs = [None] * len(assignments)

        def work(i, dev, ranges, plan, role):
            try:
                outs[i] = _run_shard(
                    op, dev, ranges, plan, batch, nbuf, resilient, policy,
                    run_chunk, run_host, watchdog=watchdog,
                    failover=failover, snapshot=snapshot, restore=restore,
                    keep_snaps=hedge_on, role=role)
            except BaseException as exc:  # re-raised on the coordinator
                errs[i] = exc

        if len(assignments) > 1:
            workers = [threading.Thread(
                target=work, args=(i, dev, ranges, plan, role),
                name=f"pipe-{op}-{dev.name}")
                for i, (dev, ranges, plan, role) in enumerate(assignments)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
        else:
            for i, (dev, ranges, plan, role) in enumerate(assignments):
                work(i, dev, ranges, plan, role)
        for exc in errs:
            if exc is not None:
                raise exc
        return outs

    if not failover:
        # Single dispatch round: the pre-fault-domain behavior, byte for
        # byte (rounds=1, empty round_makespans, shard-max makespan).
        shards = split_batch(batch, devs, weights=weights)
        assignments = [(part.device, [(part.start, part.stop)],
                        plan_for(part.device, part.count), "full")
                       for part in shards]
        for out in launch(assignments):
            absorb(out)
        rounds = 1
    else:
        pending = [(0, batch)] if batch else []
        ev_cursor = len(breaker.events)

        def drain_breaker():
            nonlocal ev_cursor
            device_events.extend(breaker.events[ev_cursor:])
            ev_cursor = len(breaker.events)

        # Generous upper bound: every device can trip, probe and die.
        max_rounds = 4 + 2 * len(devs) * breaker.max_probes
        while pending:
            rounds += 1
            all_dead = all(breaker.state(d.name) == CircuitBreaker.DEAD
                           for d in devs)
            if rounds > max_rounds or all_dead:
                # No device pool left: finish the leftovers on the host
                # net — the same last rung the OOM ladder bottoms out on.
                for h_start, h_stop in pending:
                    events.append({"action": "host",
                                   "start": int(h_start),
                                   "stop": int(h_stop),
                                   "reason": "no-healthy-devices"})
                    rep = run_host(h_start, h_stop)
                    if rep is not None:
                        parts.append((list(range(h_start, h_stop)), rep))
                pending = []
                break
            roles = [(d, breaker.poll(d.name)) for d in devs]
            drain_breaker()
            probes = [d for d, r in roles if r == "probe"]
            fulls = [d for d, r in roles if r == "full"]
            if not probes and not fulls:
                continue    # open devices are counting denied polls
            assignments = []
            for d in probes:
                taken = _take_lanes(pending, 1)
                if taken:
                    assignments.append((d, taken, plan_for(d, 1), "probe"))
            if fulls and pending:
                w = [weights[devs.index(d)] for d in fulls]
                total = sum(stop - start for start, stop in pending)
                for d, count in zip(fulls, _share_counts(total, w)):
                    taken = _take_lanes(pending, count)
                    if taken:
                        n = sum(s2 - s1 for s1, s2 in taken)
                        assignments.append(
                            (d, taken, plan_for(d, n), "full"))
            if not assignments:
                continue
            outs = launch(assignments)
            savings = [0.0] * len(outs)
            for (dev, ranges, plan, role), out in zip(assignments, outs):
                absorb(out)
                if out.failure is not None:
                    fail = dict(out.failure)
                    orphan_lanes = sum(s2 - s1 for s1, s2 in out.orphans)
                    device_events.append(
                        {"event": "failover", **fail,
                         "orphan_lanes": int(orphan_lanes)})
                    failovers += len(out.orphans)
                    breaker.record_failure(
                        dev.name, kind=fail["kind"],
                        fatal=fail["kind"] == "device-lost")
                    pending.extend(out.orphans)
                else:
                    breaker.record_success(dev.name)
                drain_breaker()
            if hedge_on and len(outs) > 1:
                # Straggler hedging, decided on the coordinator after the
                # round joins: a chunk that took longer than hedge_ratio
                # times the round's median replays on the fastest other
                # closed device; the first finisher wins and the loser's
                # traffic stays attributed.
                all_spans = [(i, sp) for i, out in enumerate(outs)
                             for sp in out.spans]
                durs = sorted(sp["duration"] for _, sp in all_spans
                              if sp["duration"] > 0.0)
                median = durs[len(durs) // 2] if durs else 0.0
                for i, sp in all_spans:
                    if median <= 0.0 or sp["snap"] is None:
                        continue
                    if sp["duration"] <= hedge_ratio * median:
                        continue
                    primary = assignments[i][0]
                    cands = [d for d in devs
                             if d.name != primary.name
                             and breaker.state(d.name)
                             == CircuitBreaker.CLOSED]
                    if not cands:
                        continue
                    target = max(cands,
                                 key=lambda d: weights[devs.index(d)])
                    hshard, hdur, ok = _run_hedge(
                        op, target, sp, nbuf, run_chunk, snapshot,
                        restore, watchdog)
                    if hshard is None:
                        continue
                    hedges += 1
                    shard_results.append(hshard)
                    won = ok and hdur < sp["duration"]
                    if won:
                        savings[i] += sp["duration"] - hdur
                    device_events.append({
                        "event": "hedge",
                        "start": int(sp["start"]),
                        "stop": int(sp["stop"]),
                        "primary": primary.name,
                        "hedge": target.name,
                        "primary_seconds": float(sp["duration"]),
                        "hedge_seconds": float(hdur),
                        "winner": target.name if won else primary.name,
                        "loser_bytes": int(sp["nbytes"] if won
                                           else hshard.h2d_bytes
                                           + hshard.d2h_bytes)})
            effective = [max(out.shard.makespan - sv, 0.0)
                         for out, sv in zip(outs, savings)]
            round_makespans.append(max(effective, default=0.0))

    result = PipelineResult(
        op=op, batch=batch,
        devices=tuple(d.name for d in devs),
        streams=nbuf, overlap=nbuf > 1,
        shards=tuple(shard_results),
        rounds=max(rounds, 1),
        round_makespans=tuple(round_makespans),
        device_events=tuple(device_events),
        failovers=failovers, hedges=hedges)
    with _LAST_LOCK:
        _LAST = result
    if stream is not None and batch:
        # One summary record on the caller's stream: the pipeline occupied
        # the device(s) for the modeled makespan.  Traffic was already
        # charged by the per-chunk staging copies, so this carries time
        # only.
        stream.record(TransferRecord(
            kernel_name=f"{op}_pipeline", nbytes=0,
            time=result.makespan))

    agg = MemoryPlan(
        batch=batch, lane_bytes=lane_bytes,
        footprint=batch * lane_bytes,
        budget=min((p.budget for p in plans), default=0),
        chunk=min((p.chunk for p in plans), default=batch or 1),
        admitted=all(p.admitted for p in plans))
    return parts, tuple(chunks), oom, events, backoff, agg, result
