"""Column-wise band LU building blocks (paper Section 5.1).

These are the memory-bound primitives of the reference design's pseudocode::

    kv = kl + ku;  ju = 0;
    for(j = 0; j < min(m, n); j++) {
        km    = 1 + min( kl, m-j-1 );
        pivot = IAMAX( km, A(kv, j) );
        ju    = GET_UPDATE_BOUND(kl, ku, j, pivot, ju);
        SET_FILLIN(m, n, kl, ku, A, j, ju);
        SWAP(m, n, kl, ku, A(kv, j), j, ju, pivot);   // right only
        SCAL( km-1, A(kv+1, j), 1/A(kv, j) );
        RANK_ONE_UPDATE(m, n, kl, ku, A(kv, j), ju );
    }

Every block takes the band array together with a *column offset*, so the
same code runs on the full matrix in global memory (reference design), on a
whole-matrix shared-memory tile (fused design, paper Section 5.2), or on a sliding
window holding only columns ``[c0, c0 + nb + kv + 1)`` (paper Section 5.3).

The band array is factor layout: dense entry ``(r, c)`` lives at
``ab[kv + r - c, c - col0]``.  All indices 0-based.  The resulting factors
and pivot sequence match LAPACK's ``DGBTF2`` bit-for-bit (ties in the pivot
search resolve to the first maximal entry, as in ``IDAMAX``).

The per-problem blocks feed all three kernel designs of the paper: the
fork-join reference (paper Section 5.1, :mod:`repro.core.gbtrf_reference`), the
fully fused kernel (paper Section 5.2, :mod:`repro.core.gbtrf_fused`), the
sliding-window kernel (paper Section 5.3, :mod:`repro.core.gbtrf_window`), and
through them the dispatcher (paper Section 5.4, :mod:`repro.core.gbtrf`).

**Batch-interleaved variants.**  Each building block also has a
``*_batched`` form operating on a ``(batch, ldab, ncols)`` stack that
advances *every* matrix of a uniform batch through the same column step in
one numpy instruction stream — the Python analogue of the paper's
one-thread-block-per-matrix parallelism (and of the interleaved batch
layout of Gloster et al., arXiv:1909.04539).  Per-problem control-flow
divergence (pivot offsets, the ``ju`` update bound, singular columns) is
handled with per-batch index vectors and masks; every element of every
matrix receives the identical floating-point operation sequence the scalar
blocks would apply, so the results are **bit-for-bit identical** to running
:func:`gbtf2` per problem.
"""

from __future__ import annotations

import numpy as np

from ..blas.level1 import iamax, iamax_batched, scal_batched, stable_mul

__all__ = [
    "pivot_search",
    "update_bound",
    "init_fillin",
    "set_fillin",
    "swap_right",
    "scale_column",
    "rank_one_update",
    "gbtf2",
    "pivot_search_batched",
    "update_bound_batched",
    "init_fillin_batched",
    "set_fillin_batched",
    "swap_right_batched",
    "scale_column_batched",
    "rank_one_update_batched",
    "gbtf2_batched",
]


def init_fillin(ab: np.ndarray, n: int, kl: int, ku: int,
                *, col0: int = 0, ncols: int | None = None) -> None:
    """Zero the fill-in rows of the *initial* columns ``ku+1 .. kv-1``.

    Columns ``>= kv`` have their fill-in cleared lazily by
    :func:`set_fillin` as the factorization reaches them, but the early
    columns can be read by rank-1 updates before any ``set_fillin`` touches
    them, so LAPACK's ``DGBTF2`` clears them up front.  When operating on a
    window (``col0 > 0`` or limited ``ncols``) only the in-window part is
    cleared.
    """
    kv = kl + ku
    hi = min(kv, n)
    if ncols is not None:
        hi = min(hi, col0 + ncols)
    for c in range(max(ku + 1, col0), hi):
        ab[kv - c:kl, c - col0] = 0


def pivot_search(ab: np.ndarray, m: int, kl: int, ku: int, j: int,
                 *, col0: int = 0) -> int:
    """IAMAX over column ``j``'s diagonal + sub-diagonal entries.

    Returns the pivot offset ``jp`` in ``[0, km]`` where ``km = min(kl,
    m-j-1)``; the pivot row in dense coordinates is ``j + jp``.
    """
    kv = kl + ku
    km = min(kl, m - j - 1)
    return iamax(ab[kv:kv + km + 1, j - col0])


def update_bound(n: int, kl: int, ku: int, j: int, jp: int, ju: int) -> int:
    """GET_UPDATE_BOUND: extend the last-affected-column bound ``ju``.

    With the pivot ``jp`` rows below the diagonal, row ``j + jp`` of ``U``
    reaches out to column ``j + ku + jp``, so
    ``ju = max(ju, min(j + ku + jp, n - 1))`` (paper Section 5.3).
    """
    return max(ju, min(j + ku + jp, n - 1))


def set_fillin(ab: np.ndarray, n: int, kl: int, ku: int, j: int,
               *, col0: int = 0) -> None:
    """SET_FILLIN: zero-initialise the fill-in rows of column ``j + kv``.

    Column ``j + kv`` enters the active part of the factorization at step
    ``j``; its top ``kl`` storage rows (the ``+`` entries of Figure 2) must
    be cleared before any update may scatter fill-in into them.
    """
    kv = kl + ku
    c = j + kv
    if c < n and kl > 0:
        ab[0:kl, c - col0] = 0


def swap_right(ab: np.ndarray, kl: int, ku: int, j: int, jp: int, ju: int,
               *, col0: int = 0) -> None:
    """SWAP: exchange dense rows ``j`` and ``j + jp`` over columns ``[j, ju]``.

    Unlike a fully dense factorization, the swap only touches the trailing
    submatrix ("swap to the right only") because ``L`` is kept in unswapped
    form within its ``kl`` storage rows.
    """
    if jp == 0:
        return
    kv = kl + ku
    cols = np.arange(j, ju + 1)
    r1 = kv + j - cols          # band rows of dense row j
    r2 = r1 + jp                # band rows of dense row j + jp
    c = cols - col0
    tmp = ab[r1, c].copy()
    ab[r1, c] = ab[r2, c]
    ab[r2, c] = tmp


def scale_column(ab: np.ndarray, m: int, kl: int, ku: int, j: int,
                 *, col0: int = 0) -> None:
    """SCAL: divide the sub-diagonal of column ``j`` by the pivot.

    Must run *after* :func:`swap_right` so the pivot sits on the diagonal.
    The caller guarantees the pivot is nonzero (a zero pivot skips both the
    scale and the update, per LAPACK).
    """
    kv = kl + ku
    km = min(kl, m - j - 1)
    if km > 0:
        jj = j - col0
        col = ab[kv + 1:kv + km + 1, jj]
        col[...] = stable_mul(col, 1.0 / ab[kv, jj])


def rank_one_update(ab: np.ndarray, m: int, kl: int, ku: int, j: int,
                    ju: int, *, col0: int = 0) -> None:
    """RANK_ONE_UPDATE: ``A[j+1:j+km+1, j+1:ju+1] -= l_j * u_j`` in band form.

    Only the columns up to ``ju`` are touched — the band factorization's
    update window, which is what makes the sliding-window design possible.
    """
    kv = kl + ku
    km = min(kl, m - j - 1)
    if km <= 0 or ju <= j:
        return
    cols = np.arange(j + 1, ju + 1)
    c = cols - col0
    u = ab[kv + j - cols, c]                      # row j of U, columns j+1..ju
    l = ab[kv + 1:kv + km + 1, j - col0]          # multipliers of column j
    rows = np.arange(j + 1, j + km + 1)
    band_rows = kv + rows[:, None] - cols[None, :]
    ab[band_rows, c[None, :]] -= stable_mul(l[:, None], u[None, :])


def gbtf2(m: int, n: int, kl: int, ku: int, ab: np.ndarray,
          ipiv: np.ndarray | None = None) -> tuple[np.ndarray, int]:
    """Unblocked band LU with partial pivoting on one matrix, in place.

    Parameters
    ----------
    ab:
        ``(ldab, n)`` band array in factor layout (``ldab >= 2*kl+ku+1``);
        overwritten with ``L`` (multipliers, unswapped, in the ``kl``
        sub-diagonal rows) and ``U`` (bandwidth ``kl+ku``).
    ipiv:
        Optional output pivot vector of length ``min(m, n)``; 0-based
        absolute row indices (``ipiv[j] == j`` means no swap at step ``j``).

    Returns
    -------
    (ipiv, info):
        ``info`` follows LAPACK: 0 on success, ``j+1`` (1-based) if
        ``U(j, j)`` is exactly zero.  The factorization still completes.
    """
    mn = min(m, n)
    if ipiv is None:
        ipiv = np.zeros(mn, dtype=np.int64)
    kv = kl + ku
    info = 0

    # Columns kv..n-1 have their fill-in rows cleared lazily by set_fillin
    # as the loop reaches them; the early columns ku+1..kv-1 must be cleared
    # up front because updates read them before any set_fillin would.
    init_fillin(ab, n, kl, ku)
    ju = -1
    for j in range(mn):
        set_fillin(ab, n, kl, ku, j)
        jp = pivot_search(ab, m, kl, ku, j)
        ipiv[j] = j + jp
        if ab[kv + jp, j] != 0:
            ju = update_bound(n, kl, ku, j, jp, ju)
            swap_right(ab, kl, ku, j, jp, ju)
            scale_column(ab, m, kl, ku, j)
            rank_one_update(ab, m, kl, ku, j, ju)
        elif info == 0:
            info = j + 1
    return ipiv, info


# --- Batch-interleaved variants ---------------------------------------------
#
# Same blocks, vectorized over the leading batch axis of a
# ``(batch, ldab, ncols)`` stack.  ``jp`` and ``ju`` become per-batch
# vectors; ``active`` masks out problems whose current pivot is exactly
# zero (those skip the swap/scale/update, LAPACK semantics).  Masked lanes
# are written back with their original bits, so divergence never perturbs
# a single element.


def init_fillin_batched(abst: np.ndarray, n: int, kl: int, ku: int,
                        *, col0: int = 0, ncols: int | None = None) -> None:
    """Batched :func:`init_fillin` on a ``(batch, ldab, ncols)`` stack."""
    kv = kl + ku
    hi = min(kv, n)
    if ncols is not None:
        hi = min(hi, col0 + ncols)
    for c in range(max(ku + 1, col0), hi):
        abst[:, kv - c:kl, c - col0] = 0


def pivot_search_batched(abst: np.ndarray, m: int, kl: int, ku: int, j: int,
                         *, col0: int = 0) -> np.ndarray:
    """Batched :func:`pivot_search`: per-batch IAMAX over one 2-D slab.

    Returns the ``(batch,)`` vector of pivot offsets ``jp``.
    """
    kv = kl + ku
    km = min(kl, m - j - 1)
    return iamax_batched(abst[:, kv:kv + km + 1, j - col0])


def update_bound_batched(n: int, kl: int, ku: int, j: int, jp: np.ndarray,
                         ju: np.ndarray, active: np.ndarray) -> np.ndarray:
    """Batched :func:`update_bound` with the zero-pivot lanes left as-is."""
    cand = np.minimum(j + ku + jp, n - 1)
    return np.where(active, np.maximum(ju, cand), ju)


def set_fillin_batched(abst: np.ndarray, n: int, kl: int, ku: int, j: int,
                       *, col0: int = 0) -> None:
    """Batched :func:`set_fillin` (the cleared column is batch-uniform)."""
    kv = kl + ku
    c = j + kv
    if c < n and kl > 0:
        abst[:, 0:kl, c - col0] = 0


def swap_right_batched(abst: np.ndarray, kl: int, ku: int, j: int,
                       jp: np.ndarray, ju: np.ndarray, *, col0: int = 0,
                       active: np.ndarray | None = None) -> None:
    """Batched :func:`swap_right`: gather/scatter with per-batch pivots.

    Lanes with ``jp == 0``, inactive lanes, and columns beyond a lane's
    ``ju`` rewrite their original values, leaving them bit-identical.
    """
    kv = kl + ku
    jumax = int(ju.max())
    if jumax < j:
        return
    cols = np.arange(j, jumax + 1)
    mask = (cols[None, :] <= ju[:, None]) & (jp[:, None] != 0)
    if active is not None:
        mask = mask & active[:, None]
    if not bool(mask.any()):
        return
    ncols = cols.size
    jj = j - col0
    batch = abst.shape[0]
    sb, sr, sc = abst.strides
    # Dense row j lives on the band anti-diagonal abst[k, kv - t, jj + t]
    # — a plain strided view (see rank_one_update_batched).  Row j + jp
    # sits ``jp`` band rows below it, per lane, so that side stays a
    # gather/scatter.
    v1 = np.lib.stride_tricks.as_strided(
        abst[:, kv:, jj:], shape=(batch, ncols), strides=(sb, sc - sr))
    r2 = (kv + j - cols)[None, :] + jp[:, None]
    c = (cols - col0)[None, :]
    bidx = np.arange(batch)[:, None]
    a2 = abst[bidx, r2, c]
    # Scatter first (it reads the still-intact row j through ``v1``);
    # unmasked lanes rewrite their original bits.  Then pull the pivot
    # rows up into row j.
    abst[bidx, r2, c] = np.where(mask, v1, a2)
    np.copyto(v1, a2, where=mask)


def scale_column_batched(abst: np.ndarray, m: int, kl: int, ku: int, j: int,
                         *, col0: int = 0,
                         active: np.ndarray | None = None) -> None:
    """Batched :func:`scale_column`: broadcast multiply by the reciprocal.

    Matches the scalar block's ``*= 1.0 / pivot`` exactly: the reciprocal
    is formed per problem in the array dtype and multiplied in, which is
    the identical per-element operation sequence.
    """
    kv = kl + ku
    km = min(kl, m - j - 1)
    if km <= 0:
        return
    jj = j - col0
    col = abst[:, kv + 1:kv + km + 1, jj]
    piv = abst[:, kv, jj]
    if active is None or bool(active.all()):
        scal_batched(1.0 / piv, col)
    else:
        inv = 1.0 / np.where(active, piv, piv.dtype.type(1))
        col[...] = np.where(active[:, None],
                            stable_mul(col, inv[:, None]), col)


def rank_one_update_batched(abst: np.ndarray, m: int, kl: int, ku: int,
                            j: int, ju: np.ndarray, *, col0: int = 0,
                            active: np.ndarray | None = None) -> None:
    """Batched :func:`rank_one_update`: broadcast outer products + masking.

    The update slab of every problem is gathered into a dense
    ``(batch, km, ncols)`` cube, updated with one fused broadcast multiply
    (the batched GER), and scattered back; columns past a lane's ``ju``
    and inactive lanes get their original bits.
    """
    kv = kl + ku
    km = min(kl, m - j - 1)
    if km <= 0:
        return
    jumax = int(ju.max())
    if jumax <= j:
        return
    nc = jumax - j
    jj = j - col0
    batch = abst.shape[0]
    sb, sr, sc = abst.strides
    # In factor layout, dense element (r, c) lives at band row kv + r - c:
    # stepping one dense column right moves ``sc - sr`` bytes.  The update
    # slab A[j+1:j+km+1, j+1:jumax+1] and the pivot row segment
    # U[j, j+1:jumax+1] are therefore plain strided views of the band
    # array — no gather/scatter needed (every (row, col) pair is a valid
    # in-bounds element of ``abst``, so the views stay inside the buffer).
    slab = np.lib.stride_tricks.as_strided(
        abst[:, kv:, jj + 1:], shape=(batch, km, nc),
        strides=(sb, sr, sc - sr))
    u = np.lib.stride_tricks.as_strided(
        abst[:, kv - 1:, jj + 1:], shape=(batch, nc),
        strides=(sb, sc - sr))
    l = abst[:, kv + 1:kv + km + 1, jj]
    if np.iscomplexobj(abst):
        upd = stable_mul(l[:, :, None], u[:, None, :])
    else:
        # Real multiply is correctly rounded whatever the loop order, so
        # we can let the product land in a buffer whose axis order matches
        # ``slab`` (contiguous inner loop when the stack is batch-minor).
        upd = np.empty_like(slab)
        np.multiply(l[:, :, None], u[:, None, :], out=upd)
    cols = np.arange(j + 1, jumax + 1)
    mask = cols[None, :] <= ju[:, None]
    if active is not None:
        mask = mask & active[:, None]
    if bool(mask.all()):
        slab -= upd
    else:
        # ufunc masking updates only the in-bound active elements in one
        # pass; everything else keeps its exact bits.
        np.subtract(slab, upd, out=slab, where=mask[:, None, :])


def gbtf2_batched(m: int, n: int, kl: int, ku: int, abst: np.ndarray,
                  ipiv: np.ndarray | None = None,
                  info: np.ndarray | None = None
                  ) -> tuple[np.ndarray, np.ndarray]:
    """Unblocked band LU on a whole uniform batch, interleaved, in place.

    Parameters
    ----------
    abst:
        ``(batch, ldab, n)`` stack in factor layout; every matrix is
        overwritten with its factors exactly as :func:`gbtf2` would.
    ipiv:
        Optional ``(batch, min(m, n))`` integer output stack.
    info:
        Optional ``(batch,)`` integer output vector.

    Returns
    -------
    (ipiv, info):
        Bit-for-bit identical to looping :func:`gbtf2` over the batch.
    """
    batch = abst.shape[0]
    mn = min(m, n)
    if ipiv is None:
        ipiv = np.zeros((batch, mn), dtype=np.int64)
    if info is None:
        info = np.zeros(batch, dtype=np.int64)
    else:
        info[...] = 0          # pure output, like LAPACK's INFO
    kv = kl + ku
    bidx = np.arange(batch)
    init_fillin_batched(abst, n, kl, ku)
    ju = np.full(batch, -1, dtype=np.int64)
    for j in range(mn):
        set_fillin_batched(abst, n, kl, ku, j)
        jp = pivot_search_batched(abst, m, kl, ku, j)
        ipiv[:, j] = j + jp
        active = abst[bidx, kv + jp, j] != 0
        ju = update_bound_batched(n, kl, ku, j, jp, ju, active)
        swap_right_batched(abst, kl, ku, j, jp, ju, active=active)
        scale_column_batched(abst, m, kl, ku, j, active=active)
        rank_one_update_batched(abst, m, kl, ku, j, ju, active=active)
        info[...] = np.where(~active & (info == 0), j + 1, info)
    return ipiv, info
