"""Column-wise band LU building blocks (paper Section 5.1).

These are the memory-bound primitives of the reference design's pseudocode::

    kv = kl + ku;  ju = 0;
    for(j = 0; j < min(m, n); j++) {
        km    = 1 + min( kl, m-j-1 );
        pivot = IAMAX( km, A(kv, j) );
        ju    = GET_UPDATE_BOUND(kl, ku, j, pivot, ju);
        SET_FILLIN(m, n, kl, ku, A, j, ju);
        SWAP(m, n, kl, ku, A(kv, j), j, ju, pivot);   // right only
        SCAL( km-1, A(kv+1, j), 1/A(kv, j) );
        RANK_ONE_UPDATE(m, n, kl, ku, A(kv, j), ju );
    }

Every block takes the band array together with a *column offset*, so the
same code runs on the full matrix in global memory (reference design), on a
whole-matrix shared-memory tile (fused design, Section 5.2), or on a sliding
window holding only columns ``[c0, c0 + nb + kv + 1)`` (Section 5.3).

The band array is factor layout: dense entry ``(r, c)`` lives at
``ab[kv + r - c, c - col0]``.  All indices 0-based.  The resulting factors
and pivot sequence match LAPACK's ``DGBTF2`` bit-for-bit (ties in the pivot
search resolve to the first maximal entry, as in ``IDAMAX``).
"""

from __future__ import annotations

import numpy as np

from ..blas.level1 import iamax

__all__ = [
    "pivot_search",
    "update_bound",
    "init_fillin",
    "set_fillin",
    "swap_right",
    "scale_column",
    "rank_one_update",
    "gbtf2",
]


def init_fillin(ab: np.ndarray, n: int, kl: int, ku: int,
                *, col0: int = 0, ncols: int | None = None) -> None:
    """Zero the fill-in rows of the *initial* columns ``ku+1 .. kv-1``.

    Columns ``>= kv`` have their fill-in cleared lazily by
    :func:`set_fillin` as the factorization reaches them, but the early
    columns can be read by rank-1 updates before any ``set_fillin`` touches
    them, so LAPACK's ``DGBTF2`` clears them up front.  When operating on a
    window (``col0 > 0`` or limited ``ncols``) only the in-window part is
    cleared.
    """
    kv = kl + ku
    hi = min(kv, n)
    if ncols is not None:
        hi = min(hi, col0 + ncols)
    for c in range(max(ku + 1, col0), hi):
        ab[kv - c:kl, c - col0] = 0


def pivot_search(ab: np.ndarray, m: int, kl: int, ku: int, j: int,
                 *, col0: int = 0) -> int:
    """IAMAX over column ``j``'s diagonal + sub-diagonal entries.

    Returns the pivot offset ``jp`` in ``[0, km]`` where ``km = min(kl,
    m-j-1)``; the pivot row in dense coordinates is ``j + jp``.
    """
    kv = kl + ku
    km = min(kl, m - j - 1)
    return iamax(ab[kv:kv + km + 1, j - col0])


def update_bound(n: int, kl: int, ku: int, j: int, jp: int, ju: int) -> int:
    """GET_UPDATE_BOUND: extend the last-affected-column bound ``ju``.

    With the pivot ``jp`` rows below the diagonal, row ``j + jp`` of ``U``
    reaches out to column ``j + ku + jp``, so
    ``ju = max(ju, min(j + ku + jp, n - 1))`` (paper Section 5.3).
    """
    return max(ju, min(j + ku + jp, n - 1))


def set_fillin(ab: np.ndarray, n: int, kl: int, ku: int, j: int,
               *, col0: int = 0) -> None:
    """SET_FILLIN: zero-initialise the fill-in rows of column ``j + kv``.

    Column ``j + kv`` enters the active part of the factorization at step
    ``j``; its top ``kl`` storage rows (the ``+`` entries of Figure 2) must
    be cleared before any update may scatter fill-in into them.
    """
    kv = kl + ku
    c = j + kv
    if c < n and kl > 0:
        ab[0:kl, c - col0] = 0


def swap_right(ab: np.ndarray, kl: int, ku: int, j: int, jp: int, ju: int,
               *, col0: int = 0) -> None:
    """SWAP: exchange dense rows ``j`` and ``j + jp`` over columns ``[j, ju]``.

    Unlike a fully dense factorization, the swap only touches the trailing
    submatrix ("swap to the right only") because ``L`` is kept in unswapped
    form within its ``kl`` storage rows.
    """
    if jp == 0:
        return
    kv = kl + ku
    cols = np.arange(j, ju + 1)
    r1 = kv + j - cols          # band rows of dense row j
    r2 = r1 + jp                # band rows of dense row j + jp
    c = cols - col0
    tmp = ab[r1, c].copy()
    ab[r1, c] = ab[r2, c]
    ab[r2, c] = tmp


def scale_column(ab: np.ndarray, m: int, kl: int, ku: int, j: int,
                 *, col0: int = 0) -> None:
    """SCAL: divide the sub-diagonal of column ``j`` by the pivot.

    Must run *after* :func:`swap_right` so the pivot sits on the diagonal.
    The caller guarantees the pivot is nonzero (a zero pivot skips both the
    scale and the update, per LAPACK).
    """
    kv = kl + ku
    km = min(kl, m - j - 1)
    if km > 0:
        jj = j - col0
        ab[kv + 1:kv + km + 1, jj] *= 1.0 / ab[kv, jj]


def rank_one_update(ab: np.ndarray, m: int, kl: int, ku: int, j: int,
                    ju: int, *, col0: int = 0) -> None:
    """RANK_ONE_UPDATE: ``A[j+1:j+km+1, j+1:ju+1] -= l_j * u_j`` in band form.

    Only the columns up to ``ju`` are touched — the band factorization's
    update window, which is what makes the sliding-window design possible.
    """
    kv = kl + ku
    km = min(kl, m - j - 1)
    if km <= 0 or ju <= j:
        return
    cols = np.arange(j + 1, ju + 1)
    c = cols - col0
    u = ab[kv + j - cols, c]                      # row j of U, columns j+1..ju
    l = ab[kv + 1:kv + km + 1, j - col0]          # multipliers of column j
    rows = np.arange(j + 1, j + km + 1)
    band_rows = kv + rows[:, None] - cols[None, :]
    ab[band_rows, c[None, :]] -= np.outer(l, u)


def gbtf2(m: int, n: int, kl: int, ku: int, ab: np.ndarray,
          ipiv: np.ndarray | None = None) -> tuple[np.ndarray, int]:
    """Unblocked band LU with partial pivoting on one matrix, in place.

    Parameters
    ----------
    ab:
        ``(ldab, n)`` band array in factor layout (``ldab >= 2*kl+ku+1``);
        overwritten with ``L`` (multipliers, unswapped, in the ``kl``
        sub-diagonal rows) and ``U`` (bandwidth ``kl+ku``).
    ipiv:
        Optional output pivot vector of length ``min(m, n)``; 0-based
        absolute row indices (``ipiv[j] == j`` means no swap at step ``j``).

    Returns
    -------
    (ipiv, info):
        ``info`` follows LAPACK: 0 on success, ``j+1`` (1-based) if
        ``U(j, j)`` is exactly zero.  The factorization still completes.
    """
    mn = min(m, n)
    if ipiv is None:
        ipiv = np.zeros(mn, dtype=np.int64)
    kv = kl + ku
    info = 0

    # Columns kv..n-1 have their fill-in rows cleared lazily by set_fillin
    # as the loop reaches them; the early columns ku+1..kv-1 must be cleared
    # up front because updates read them before any set_fillin would.
    init_fillin(ab, n, kl, ku)
    ju = -1
    for j in range(mn):
        set_fillin(ab, n, kl, ku, j)
        jp = pivot_search(ab, m, kl, ku, j)
        ipiv[j] = j + jp
        if ab[kv + jp, j] != 0:
            ju = update_bound(n, kl, ku, j, jp, ju)
            swap_right(ab, kl, ku, j, jp, ju)
            scale_column(ab, m, kl, ku, j)
            rank_one_update(ab, m, kl, ku, j, ju)
        elif info == 0:
            info = j + 1
    return ipiv, info
