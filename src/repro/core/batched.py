"""Paper-faithful batched entry points (paper Section 4) and non-uniform batches.

The three C declarations of the paper map to :func:`dgbtrf_batch`,
:func:`dgbtrs_batch` and :func:`dgbsv_batch` (with ``s``/``c``/``z``
precision variants generated from the same dtype-generic core)::

    void dgbtrf_batch(int m, int n, int kl, int ku,
        double** A_array, int lda, int** pv_array,
        int* info, int batch, gpu_stream_t stream);

    void dgbtrs_batch(transpose_t transA, int n, int kl, int ku, int nrhs,
        double** A_array, int lda, int** pv_array,
        double** B_array, int ldb, int* info, int batch,
        gpu_stream_t stream);

    void dgbsv_batch(int n, int kl, int ku, int nrhs,
        double** A_array, int lda, int** pv_array,
        double** B_array, int ldb, int* info, int batch,
        gpu_stream_t stream);

These wrappers are strict: the stream is mandatory (it identifies the
device), ``lda``/``ldb`` are validated, and the dtype must match the
precision prefix.  The keyword-style drivers in :mod:`repro.core.gbtrf`
/ ``gbtrs`` / ``gbsv`` are the friendlier API underneath.

``gbtrf_vbatch`` / ``gbsv_vbatch`` implement the paper's future-work
extension (paper Section 9): non-uniform batches with per-problem sizes and/or
bandwidths, executed by grouping identical configurations into uniform
sub-batches.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from ..errors import check_arg
from ..gpusim.stream import Stream
from ..types import Trans
from .gbtrf import gbtrf_batch
from .gbtrs import gbtrs_batch
from .gbsv import gbsv_batch

__all__ = [
    "sgbtrf_batch", "dgbtrf_batch", "cgbtrf_batch", "zgbtrf_batch",
    "sgbtrs_batch", "dgbtrs_batch", "cgbtrs_batch", "zgbtrs_batch",
    "sgbsv_batch", "dgbsv_batch", "cgbsv_batch", "zgbsv_batch",
    "gbtrf_vbatch", "gbsv_vbatch",
]


def _require_stream(stream) -> Stream:
    check_arg(isinstance(stream, Stream), 99,
              "a Stream is required (the paper's gpu_stream_t argument)")
    return stream


def _check_dtype(arrays, dtype, pos):
    for k, a in enumerate(arrays):
        check_arg(np.asarray(a).dtype == np.dtype(dtype), pos,
                  f"matrix {k} has dtype {np.asarray(a).dtype}, "
                  f"expected {np.dtype(dtype).name}")


def _check_ld(arrays, ld, pos, name):
    check_arg(ld >= 1, pos, f"{name} must be >= 1, got {ld}")
    for k, a in enumerate(arrays):
        check_arg(np.asarray(a).shape[0] >= min(ld, np.asarray(a).shape[0]),
                  pos, f"matrix {k} rows < {name}={ld}")


def _make_gbtrf(prefix: str, dtype):
    def fn(m, n, kl, ku, A_array, lda, pv_array, info, batch, stream):
        stream = _require_stream(stream)
        mats = list(A_array)
        _check_dtype(mats, dtype, 5)
        check_arg(lda >= 2 * kl + ku + 1, 6,
                  f"lda={lda} < 2*kl+ku+1={2 * kl + ku + 1}")
        return gbtrf_batch(m, n, kl, ku, mats, pv_array, info, batch=batch,
                           device=stream.device, stream=stream)

    fn.__name__ = f"{prefix}gbtrf_batch"
    fn.__qualname__ = fn.__name__
    fn.__doc__ = (
        f"Batch band LU factorization in {np.dtype(dtype).name} "
        "(paper Section 4 signature). Returns (pivots, info).")
    return fn


def _make_gbtrs(prefix: str, dtype):
    def fn(transA, n, kl, ku, nrhs, A_array, lda, pv_array, B_array, ldb,
           info, batch, stream):
        stream = _require_stream(stream)
        mats = list(A_array)
        _check_dtype(mats, dtype, 6)
        check_arg(lda >= 2 * kl + ku + 1, 7,
                  f"lda={lda} < 2*kl+ku+1={2 * kl + ku + 1}")
        check_arg(ldb >= max(1, n), 10, f"ldb={ldb} < n={n}")
        return gbtrs_batch(Trans.from_any(transA), n, kl, ku, nrhs, mats,
                           pv_array, B_array, info, batch=batch,
                           device=stream.device, stream=stream)

    fn.__name__ = f"{prefix}gbtrs_batch"
    fn.__qualname__ = fn.__name__
    fn.__doc__ = (
        f"Batch band forward/backward solve in {np.dtype(dtype).name} "
        "(paper Section 4 signature). Returns info.")
    return fn


def _make_gbsv(prefix: str, dtype):
    def fn(n, kl, ku, nrhs, A_array, lda, pv_array, B_array, ldb, info,
           batch, stream):
        stream = _require_stream(stream)
        mats = list(A_array)
        _check_dtype(mats, dtype, 5)
        check_arg(lda >= 2 * kl + ku + 1, 6,
                  f"lda={lda} < 2*kl+ku+1={2 * kl + ku + 1}")
        check_arg(ldb >= max(1, n), 9, f"ldb={ldb} < n={n}")
        return gbsv_batch(n, kl, ku, nrhs, mats, pv_array, B_array, info,
                          batch=batch, device=stream.device, stream=stream)

    fn.__name__ = f"{prefix}gbsv_batch"
    fn.__qualname__ = fn.__name__
    fn.__doc__ = (
        f"Batch band factorize-and-solve in {np.dtype(dtype).name} "
        "(paper's top-level API). Returns (pivots, info).")
    return fn


sgbtrf_batch = _make_gbtrf("s", np.float32)
dgbtrf_batch = _make_gbtrf("d", np.float64)
cgbtrf_batch = _make_gbtrf("c", np.complex64)
zgbtrf_batch = _make_gbtrf("z", np.complex128)

sgbtrs_batch = _make_gbtrs("s", np.float32)
dgbtrs_batch = _make_gbtrs("d", np.float64)
cgbtrs_batch = _make_gbtrs("c", np.complex64)
zgbtrs_batch = _make_gbtrs("z", np.complex128)

sgbsv_batch = _make_gbsv("s", np.float32)
dgbsv_batch = _make_gbsv("d", np.float64)
cgbsv_batch = _make_gbsv("c", np.complex64)
zgbsv_batch = _make_gbsv("z", np.complex128)


# --- Non-uniform batches (paper Section 9, future work) --------------------

def _group_indices(keys) -> dict:
    groups: dict = defaultdict(list)
    for idx, key in enumerate(keys):
        groups[key].append(idx)
    return groups


def gbtrf_vbatch(ms, ns, kls, kus, a_array, pv_array=None, info=None, *,
                 device=None, stream=None, execute: bool = True,
                 vectorize: bool | None = None,
                 resilient: bool = False, policy=None,
                 max_resident_bytes: int | None = None,
                 chunk_hint: int | None = None,
                 streams: int | None = None, devices=None,
                 overlap: bool | None = None,
                 layout: str | None = None,
                 verify=None):
    """Non-uniform batch band LU: per-problem ``(m, n, kl, ku)``.

    Problems with identical configuration are grouped into uniform
    sub-batches, each dispatched through :func:`gbtrf_batch` (one kernel
    per configuration — the natural GPU strategy for irregular batches).

    Returns ``(pivots, info)`` ordered like the input problems.

    ``vectorize`` selects the host execution path per group, with the
    same semantics as the uniform drivers: ``None`` (default)
    auto-dispatches each group to the batch-interleaved path when its
    matrices can be staged (scattered allocations pack automatically),
    ``False`` forces per-block execution, ``True`` requires the
    vectorized path and raises :class:`~repro.errors.DeviceError` when
    some group cannot take it (e.g. aliased matrices).  Both paths are
    bit-identical by contract.

    ``resilient=True`` runs every group through the self-healing dispatch
    (:mod:`repro.core.resilience`) and returns ``(pivots, info, report)``
    where ``report`` merges the per-group
    :class:`~repro.core.resilience.BatchReport` objects with lanes mapped
    back to global problem indices.

    ``max_resident_bytes`` / ``chunk_hint`` are the memory-governance
    knobs of :mod:`repro.core.memory_plan`, applied per uniform group
    (each group plans against the shared device pool, so the caps bound
    every group's resident footprint).

    ``streams`` / ``devices`` / ``overlap`` are the pipelined-execution
    knobs (see :func:`repro.core.gbtrf.gbtrf_batch`), applied per
    uniform group: each group's chunks stream through double-buffered
    copy/compute streams and shard across devices, bit-identically.

    ``layout`` is the storage-layout selector (docs/LAYOUTS.md), applied
    per uniform group: ``None`` runs each group in the layout it arrives
    in (consecutive slices of an interleaved stack stay zero-copy),
    ``'interleaved'``/``'soa'`` or ``'lane-major'``/``'aos'`` stage each
    group into that layout once before it executes.

    ``verify`` turns on the silent-data-corruption defense per uniform
    group (:mod:`repro.core.verify`; same values as the uniform drivers)
    and makes the call return ``(pivots, info, report)`` with the
    per-group verification fields merged back to global lane indices.
    Requires square problems (``ms[k] == ns[k]``).
    """
    from ..gpusim.device import H100_PCIE
    device = device or (stream.device if stream is not None else H100_PCIE)
    batch = len(a_array)
    for name, seq, pos in (("ms", ms, 1), ("ns", ns, 2), ("kls", kls, 3),
                           ("kus", kus, 4)):
        check_arg(len(seq) == batch, pos,
                  f"{name} has {len(seq)} entries, expected {batch}")
    mats = [np.asarray(a) for a in a_array]
    pivots: list = [None] * batch
    if pv_array is not None:
        pivots = list(pv_array)
    else:
        pivots = [np.zeros(min(ms[k], ns[k]), dtype=np.int64)
                  for k in range(batch)]
    if info is None:
        info = np.zeros(batch, dtype=np.int64)
    # Storage shape joins the key so every group stacks uniformly on the
    # batch-interleaved path (same (m, n, kl, ku) may arrive with
    # different ldab padding).
    groups = _group_indices(
        (int(ms[k]), int(ns[k]), int(kls[k]), int(kus[k]), mats[k].shape)
        for k in range(batch))
    verified = verify is not None and verify is not False
    parts = []
    for (m, n, kl, ku, _shape), idxs in groups.items():
        sub_info = np.zeros(len(idxs), dtype=np.int64)
        kwargs = dict(batch=len(idxs), device=device, stream=stream,
                      vectorize=vectorize,
                      max_resident_bytes=max_resident_bytes,
                      chunk_hint=chunk_hint, streams=streams,
                      devices=devices, overlap=overlap, layout=layout)
        if resilient:
            kwargs.update(resilient=True, policy=policy)
        else:
            kwargs.update(execute=execute)
        if verified:
            kwargs.update(verify=verify)
        out = gbtrf_batch(m, n, kl, ku, [mats[i] for i in idxs],
                          [pivots[i] for i in idxs], sub_info, **kwargs)
        if resilient or verified:
            parts.append((idxs, out[-1]))
        for j, i in enumerate(idxs):
            info[i] = sub_info[j]
    if resilient or verified:
        from .resilience import merge_reports
        report = merge_reports("gbtrf", batch, parts)
        report.info = info
        return pivots, info, report
    return pivots, info


def gbsv_vbatch(ns, kls, kus, nrhss, a_array, b_array, pv_array=None,
                info=None, *, device=None, stream=None,
                execute: bool = True, vectorize: bool | None = None,
                resilient: bool = False, policy=None,
                max_resident_bytes: int | None = None,
                chunk_hint: int | None = None,
                streams: int | None = None, devices=None,
                overlap: bool | None = None,
                layout: str | None = None,
                verify=None):
    """Non-uniform batch factorize-and-solve: per-problem ``(n, kl, ku, nrhs)``.

    Returns ``(pivots, info)``; each problem's ``B`` is overwritten with its
    solution unless that problem is singular.

    ``vectorize`` selects the host execution path per group
    (``None``/``False``/``True`` — see :func:`gbtrf_vbatch`);
    ``resilient=True`` likewise mirrors :func:`gbtrf_vbatch`, returning
    ``(pivots, info, report)`` with a merged
    :class:`~repro.core.resilience.BatchReport`.
    ``max_resident_bytes`` / ``chunk_hint`` bound each uniform group's
    resident device footprint (:mod:`repro.core.memory_plan`);
    ``streams`` / ``devices`` / ``overlap`` pipeline each group's chunks
    (see :func:`repro.core.gbtrf.gbtrf_batch`); ``layout`` stages each
    uniform group into the requested storage layout once before it
    executes (see :func:`gbtrf_vbatch` and docs/LAYOUTS.md); ``verify``
    runs each group behind the silent-data-corruption defense
    (:mod:`repro.core.verify`) and returns ``(pivots, info, report)``
    with the merged verification fields.
    """
    from ..gpusim.device import H100_PCIE
    device = device or (stream.device if stream is not None else H100_PCIE)
    batch = len(a_array)
    for name, seq, pos in (("ns", ns, 1), ("kls", kls, 2), ("kus", kus, 3),
                           ("nrhss", nrhss, 4)):
        check_arg(len(seq) == batch, pos,
                  f"{name} has {len(seq)} entries, expected {batch}")
    mats = [np.asarray(a) for a in a_array]
    rhs = [np.asarray(b) for b in b_array]
    rhs = [b[:, None] if b.ndim == 1 else b for b in rhs]
    if pv_array is not None:
        pivots = list(pv_array)
    else:
        pivots = [np.zeros(int(ns[k]), dtype=np.int64) for k in range(batch)]
    if info is None:
        info = np.zeros(batch, dtype=np.int64)
    groups = _group_indices(
        (int(ns[k]), int(kls[k]), int(kus[k]), int(nrhss[k]), mats[k].shape)
        for k in range(batch))
    verified = verify is not None and verify is not False
    parts = []
    for (n, kl, ku, nrhs, _shape), idxs in groups.items():
        sub_info = np.zeros(len(idxs), dtype=np.int64)
        kwargs = dict(batch=len(idxs), device=device, stream=stream,
                      vectorize=vectorize,
                      max_resident_bytes=max_resident_bytes,
                      chunk_hint=chunk_hint, streams=streams,
                      devices=devices, overlap=overlap, layout=layout)
        if resilient:
            kwargs.update(resilient=True, policy=policy)
        else:
            kwargs.update(execute=execute)
        if verified:
            kwargs.update(verify=verify)
        out = gbsv_batch(n, kl, ku, nrhs, [mats[i] for i in idxs],
                         [pivots[i] for i in idxs], [rhs[i] for i in idxs],
                         sub_info, **kwargs)
        if resilient or verified:
            parts.append((idxs, out[-1]))
        for j, i in enumerate(idxs):
            info[i] = sub_info[j]
    if resilient or verified:
        from .resilience import merge_reports
        report = merge_reports("gbsv", batch, parts)
        report.info = info
        return pivots, info, report
    return pivots, info
