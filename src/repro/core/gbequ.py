"""Band-matrix equilibration (LAPACK ``GBEQU`` / ``LAQGB`` analogues).

The PELE matrices (paper Section 2.1) span "a large range of condition
numbers"; equilibration — scaling rows and columns so every row/column has
unit infinity norm — is LAPACK's standard pre-conditioning for that
situation, and any production band-solver stack ships it alongside the
factorization.  Routines follow LAPACK semantics:

* :func:`gbequ` computes row scalings ``r`` and column scalings ``c`` with
  ``r[i] = 1 / max_j |A(i, j)|`` and ``c[j] = 1 / max_i (r[i] |A(i, j)|)``,
  plus ``rowcnd``/``colcnd`` ratios and ``amax``.
* :func:`laqgb` applies the scalings in place when they are worthwhile
  (the same ``thresh = 0.1`` rule LAPACK uses) and reports which were
  applied via ``equed`` in ``{"N", "R", "C", "B"}``.
* :func:`gbequ_batch` / :func:`laqgb_batch` vectorise over a uniform batch.
"""

from __future__ import annotations

import numpy as np

from ..errors import check_arg
from .batch_args import as_matrix_list, check_gb_args

__all__ = ["gbequ", "laqgb", "gbequ_batch", "laqgb_batch"]

# LAPACK's threshold: scale only if the small/large ratio is below 0.1.
THRESH = 0.1


def _band_cols(n: int, kl: int, ku: int, j: int) -> tuple[int, int]:
    return max(0, j - ku), min(n, j + kl + 1)


def gbequ(m: int, n: int, kl: int, ku: int, ab: np.ndarray, *,
          factor_layout: bool = True):
    """Compute equilibration scalings for one band matrix.

    Returns ``(r, c, rowcnd, colcnd, amax, info)``; ``info`` follows
    LAPACK ``DGBEQU``: ``i + 1`` if row ``i`` is exactly zero, ``m + j + 1``
    if column ``j`` is exactly zero (rows are checked first).
    """
    ab = np.asarray(ab)
    offset = kl + ku if factor_layout else ku
    r = np.zeros(m)
    c = np.zeros(n)
    amax = 0.0
    # Row maxima, walking the diagonals of the band storage.
    for d in range(-kl, ku + 1):
        length = min(m - max(-d, 0), n - max(d, 0))
        if length <= 0:
            continue
        cols = np.arange(max(d, 0), max(d, 0) + length)
        vals = np.abs(ab[offset - d, cols])
        np.maximum.at(r, cols - d, vals)
        amax = max(amax, float(vals.max(initial=0.0)))
    for i in range(m):
        if r[i] == 0.0:
            return r, c, 0.0, 0.0, amax, i + 1
    rowcnd = float(r.min() / r.max()) if m else 1.0
    r = 1.0 / r
    # Column maxima of the row-scaled matrix.
    for d in range(-kl, ku + 1):
        length = min(m - max(-d, 0), n - max(d, 0))
        if length <= 0:
            continue
        cols = np.arange(max(d, 0), max(d, 0) + length)
        vals = np.abs(ab[offset - d, cols]) * r[cols - d]
        np.maximum.at(c, cols, vals)
    for j in range(n):
        if c[j] == 0.0:
            return r, c, rowcnd, 0.0, amax, m + j + 1
    colcnd = float(c.min() / c.max()) if n else 1.0
    c = 1.0 / c
    return r, c, rowcnd, colcnd, amax, 0


def laqgb(m: int, n: int, kl: int, ku: int, ab: np.ndarray,
          r: np.ndarray, c: np.ndarray, rowcnd: float, colcnd: float, *,
          factor_layout: bool = True) -> str:
    """Apply equilibration in place when worthwhile; returns ``equed``.

    ``equed``: ``"N"`` no scaling, ``"R"`` rows only, ``"C"`` columns only,
    ``"B"`` both — LAPACK ``DLAQGB`` semantics with its 0.1 threshold (the
    large/small safe-range checks are unnecessary in double precision for
    our generated workloads and are folded into the ratio test).
    """
    offset = kl + ku if factor_layout else ku
    do_rows = rowcnd < THRESH
    do_cols = colcnd < THRESH
    if not do_rows and not do_cols:
        return "N"
    for d in range(-kl, ku + 1):
        length = min(m - max(-d, 0), n - max(d, 0))
        if length <= 0:
            continue
        cols = np.arange(max(d, 0), max(d, 0) + length)
        scale = np.ones(length)
        if do_rows:
            scale = scale * r[cols - d]
        if do_cols:
            scale = scale * c[cols]
        ab[offset - d, cols] *= scale
    return "B" if (do_rows and do_cols) else ("R" if do_rows else "C")


def gbequ_batch(m: int, n: int, kl: int, ku: int, a_array, *,
                batch: int | None = None):
    """Batched :func:`gbequ`.  Returns ``(rs, cs, rowcnds, colcnds, amaxs,
    info)`` stacks."""
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(m, n, kl, ku, mats, batch=batch)
    rs = np.zeros((batch, m))
    cs = np.zeros((batch, n))
    rowcnds = np.zeros(batch)
    colcnds = np.zeros(batch)
    amaxs = np.zeros(batch)
    info = np.zeros(batch, dtype=np.int64)
    for k in range(batch):
        rs[k], cs[k], rowcnds[k], colcnds[k], amaxs[k], info[k] = \
            gbequ(m, n, kl, ku, mats[k])
    return rs, cs, rowcnds, colcnds, amaxs, info


def laqgb_batch(m: int, n: int, kl: int, ku: int, a_array, rs, cs,
                rowcnds, colcnds, *, batch: int | None = None) -> list[str]:
    """Batched :func:`laqgb`; returns the per-problem ``equed`` flags."""
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(m, n, kl, ku, mats, batch=batch)
    return [laqgb(m, n, kl, ku, mats[k], rs[k], cs[k],
                  float(rowcnds[k]), float(colcnds[k]))
            for k in range(batch)]
