"""Exact operation counts for the band LU (the paper's Gflop/s caveat).

paper Section 2: "It is not trivial to estimate the rate of execution (e.g.,
Gflop/s), since the operation count per matrix depends on the pivoting
pattern."  This module makes that statement precise:

* :func:`gbtrf_opcount` runs an instrumented factorization and returns the
  *exact* multiply/add/divide/comparison counts the pivot sequence
  produced;
* :func:`gbtrf_opcount_bounds` gives the closed-form extremes — the
  no-pivoting minimum (every update spans ``ku`` columns) and the
  worst-case maximum (every pivot comes from row ``j + kl``, stretching
  every update to ``kv = kl + ku`` columns);
* :func:`gbtrf_gflops` converts a count and a time into the rate the
  paper declines to report, for users who want it anyway.

The instrumented factorization shares the real building blocks, so its
pivot sequence (and therefore its count) is exactly what ``gbtrf``
executes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import check_arg
from .gbtf2 import (
    init_fillin,
    pivot_search,
    rank_one_update,
    scale_column,
    set_fillin,
    swap_right,
    update_bound,
)

__all__ = ["OpCount", "gbtrf_opcount", "gbtrf_opcount_bounds",
           "gbtrf_opcount_batch", "gbtrf_gflops"]


@dataclass(frozen=True)
class OpCount:
    """Floating-point operation counts of one factorization."""

    multiplies: int = 0
    additions: int = 0
    divisions: int = 0
    comparisons: int = 0       # pivot-search magnitude comparisons

    @property
    def flops(self) -> int:
        """Classical flop count: multiplies + additions + divisions."""
        return self.multiplies + self.additions + self.divisions

    def __add__(self, other: "OpCount") -> "OpCount":
        return OpCount(
            multiplies=self.multiplies + other.multiplies,
            additions=self.additions + other.additions,
            divisions=self.divisions + other.divisions,
            comparisons=self.comparisons + other.comparisons,
        )


def gbtrf_opcount(m: int, n: int, kl: int, ku: int,
                  ab: np.ndarray) -> tuple[OpCount, np.ndarray, int]:
    """Factorize ``ab`` in place, counting every operation exactly.

    Returns ``(count, ipiv, info)``; the factors/pivots/info are identical
    to :func:`repro.core.gbtf2.gbtf2` (same building blocks, same order).
    """
    mn = min(m, n)
    ipiv = np.zeros(mn, dtype=np.int64)
    kv = kl + ku
    info = 0
    mult = add = div = comp = 0

    init_fillin(ab, n, kl, ku)
    ju = -1
    for j in range(mn):
        set_fillin(ab, n, kl, ku, j)
        km = min(kl, m - j - 1)
        jp = pivot_search(ab, m, kl, ku, j)
        comp += max(km, 0)                     # IAMAX comparisons
        ipiv[j] = j + jp
        if ab[kv + jp, j] != 0:
            ju = update_bound(n, kl, ku, j, jp, ju)
            swap_right(ab, kl, ku, j, jp, ju)
            scale_column(ab, m, kl, ku, j)
            if km > 0:
                div += 1                       # the reciprocal
                mult += km                     # scaling the multipliers
            if km > 0 and ju > j:
                width = ju - j
                mult += km * width             # the rank-1 products
                add += km * width              # and accumulations
            rank_one_update(ab, m, kl, ku, j, ju)
        elif info == 0:
            info = j + 1
    return OpCount(multiplies=mult, additions=add, divisions=div,
                   comparisons=comp), ipiv, info


def gbtrf_opcount_bounds(m: int, n: int, kl: int,
                         ku: int) -> tuple[OpCount, OpCount]:
    """Closed-form ``(minimum, maximum)`` operation counts.

    Minimum: no pivoting ever fires (``jp = 0``), every update spans
    ``min(ku, n-1-j)`` columns.  Maximum: every pivot sits ``kl`` rows
    deep, stretching updates to ``min(kl + ku, n-1-j)`` columns.  Both
    honour the matrix edges exactly, so for any input matrix::

        minimum.flops <= gbtrf_opcount(...).flops <= maximum.flops
    """
    def count(reach: int) -> OpCount:
        mult = add = div = comp = 0
        for j in range(min(m, n)):
            km = min(kl, m - j - 1)
            comp += max(km, 0)
            if km > 0:
                div += 1
                mult += km
            width = min(reach, n - 1 - j)
            if km > 0 and width > 0:
                mult += km * width
                add += km * width
        return OpCount(multiplies=mult, additions=add, divisions=div,
                       comparisons=comp)

    return count(ku), count(kl + ku)


def gbtrf_opcount_batch(m: int, n: int, kl: int, ku: int,
                        a_array, *, batch: int | None = None):
    """Instrumented factorization over a batch.

    Returns ``(counts, pivots, info)`` — one :class:`OpCount` per problem.
    The spread across the batch is the paper's point: identical dimensions,
    different pivoting, different work.
    """
    if batch is None:
        batch = len(a_array)
    counts, pivots = [], []
    info = np.zeros(batch, dtype=np.int64)
    for k in range(batch):
        c, piv, inf = gbtrf_opcount(m, n, kl, ku, np.asarray(a_array[k]))
        counts.append(c)
        pivots.append(piv)
        info[k] = inf
    return counts, pivots, info


def gbtrf_gflops(count: OpCount, seconds: float) -> float:
    """Rate in Gflop/s for a measured (or modeled) time."""
    check_arg(seconds > 0, 2, f"seconds must be positive, got {seconds}")
    return count.flops / seconds / 1e9
