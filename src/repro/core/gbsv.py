"""Batched band factorize-and-solve driver (paper Sections 4, 7).

LAPACK defines ``GBSV`` as a driver calling ``GBTRF`` then ``GBTRS``.  Our
``gbsv_batch`` follows that, except that small systems (order
``<= FUSED_GBSV_CUTOFF`` with a single right-hand side — the paper's
empirical crossover) are handled by the fused single-kernel
factorize-and-solve of :mod:`repro.core.gbsv_fused`.

LAPACK semantics on singularity: the factorization always completes and is
written back with the pivots; the solve is skipped for any problem whose
``info > 0``, leaving that problem's ``B`` unchanged.
"""

from __future__ import annotations

import numpy as np

from ..band.layout import normalize_layout
from ..errors import check_arg
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..gpusim.kernel import launch, note_layout_conversion
from ..tuning.defaults import FUSED_GBSV_CUTOFF
from ..types import Trans
from .batch_args import (
    as_matrix_list,
    as_rhs_list,
    check_gb_args,
    convert_batch_layout,
    ensure_info,
    ensure_pivots,
)
from .gbsv_fused import FusedGbsvKernel
from .gbtf2 import gbtf2
from .gbtrf import gbtrf_batch
from .gbtrs import gbtrs_batch
from .solve_blocks import gbtrs_unblocked

__all__ = ["gbsv", "gbsv_batch", "select_gbsv_method"]

_METHODS = ("auto", "fused", "standard")


def gbsv(n: int, kl: int, ku: int, ab: np.ndarray, b: np.ndarray,
         ipiv: np.ndarray | None = None) -> tuple[np.ndarray, np.ndarray, int]:
    """Single-matrix band solve ``A x = b`` (LAPACK ``DGBSV`` equivalent).

    ``ab`` (factor layout) is overwritten with the factors and ``b`` with
    the solution (unless singular).  Returns ``(b, ipiv, info)``.
    """
    ipiv, info = gbtf2(n, n, kl, ku, ab, ipiv)
    if info == 0:
        b2 = b[:, None] if b.ndim == 1 else b
        gbtrs_unblocked(Trans.NO_TRANS, n, kl, ku, ab, ipiv, b2)
    return b, ipiv, info


def select_gbsv_method(device: DeviceSpec, n: int, kl: int, ku: int,
                       nrhs: int, itemsize: int = 8) -> str:
    """Dispatcher choice: fused for small single-RHS systems (paper Section 7)."""
    if n <= FUSED_GBSV_CUTOFF and nrhs == 1:
        from ..band.layout import BandLayout
        elems = BandLayout(n, n, kl, ku).fused_elems() + n * nrhs
        if device.round_smem(elems * itemsize) <= device.max_smem_per_block:
            return "fused"
    return "standard"


def gbsv_batch(n: int, kl: int, ku: int, nrhs: int, a_array, pv_array,
               b_array, info=None, *, batch: int | None = None,
               device: DeviceSpec = H100_PCIE, stream=None,
               method: str = "auto", execute: bool = True,
               max_blocks: int | None = None,
               vectorize: bool | None = None,
               resilient: bool = False, policy=None,
               max_resident_bytes: int | None = None,
               chunk_hint: int | None = None,
               streams: int | None = None, devices=None,
               overlap: bool | None = None,
               layout: str | None = None,
               verify=None):
    """Factor and solve a uniform batch of band systems (paper's top API).

    Returns ``(pivots, info)``.  ``a_array`` is overwritten with factors,
    ``b_array`` with solutions (per-problem, skipped when singular).
    ``vectorize`` selects the execution path (see
    :func:`repro.core.gbtrf.gbtrf_batch`); when some problems are singular
    the follow-up solve runs on a scattered sub-batch, which the
    gather/pack stage stages for the batch-interleaved path like any
    other scattered batch.

    ``resilient=True`` routes the call through the self-healing dispatch
    of :mod:`repro.core.resilience` and returns ``(pivots, info,
    report)``; ``policy`` is an optional
    :class:`~repro.core.resilience.ResiliencePolicy`.

    ``max_resident_bytes`` / ``chunk_hint`` are the memory-governance
    knobs (:mod:`repro.core.memory_plan`): a batch whose resident
    footprint exceeds the device pool budget (or either cap) is streamed
    through the device in chunks, bit-identically to an unchunked run.

    ``streams`` / ``devices`` / ``overlap`` are the pipelined-execution
    knobs (see :func:`repro.core.gbtrf.gbtrf_batch`): chunks stream
    through double-buffered copy/compute streams and shard across
    devices, bit-identically to the sequential single-device path.

    ``layout`` selects the batch storage layout (docs/LAYOUTS.md, same
    semantics as :func:`repro.core.gbtrf.gbtrf_batch`): ``None`` runs
    matrices and right-hand sides in the layout they arrive in,
    ``'interleaved'``/``'soa'`` or ``'lane-major'``/``'aos'`` stage both
    operand batches into that layout exactly once at the batch
    boundary — the internal factorize and solve stages then run in that
    layout with no further conversion.

    ``verify`` turns on the silent-data-corruption defense
    (:mod:`repro.core.verify`): ``True``, ``'cheap'``, ``'full'`` or a
    :class:`~repro.core.verify.VerifyPolicy`.  Every healthy lane's
    solution is checked against a pristine snapshot of ``A`` and ``b``
    with a scaled residual gate; failing lanes escalate through recompute
    → reference path → equilibrated refactor → iterative refinement, and
    the call returns ``(pivots, info, report)`` with the verification
    fields stamped on the :class:`~repro.core.resilience.BatchReport`.
    Lanes that pass are bit-identical to an unverified call.
    """
    check_arg(method in _METHODS, 12,
              f"method must be one of {_METHODS}, got {method!r}")
    if verify is not None and verify is not False:
        from .verify import verified_gbsv_batch
        return verified_gbsv_batch(
            n, kl, ku, nrhs, a_array, pv_array, b_array, info,
            batch=batch, verify=verify, device=device, stream=stream,
            method=method, execute=execute, max_blocks=max_blocks,
            vectorize=vectorize, resilient=resilient, policy=policy,
            max_resident_bytes=max_resident_bytes, chunk_hint=chunk_hint,
            streams=streams, devices=devices, overlap=overlap,
            layout=layout)
    if normalize_layout(layout) is not None:
        conv = convert_batch_layout(
            normalize_layout(layout), (a_array, b_array),
            batch=len(a_array) if batch is None else batch)
        if conv is not None:
            (a_conv, b_conv), writeback, moved = conv
            note_layout_conversion(moved)
            res = gbsv_batch(
                n, kl, ku, nrhs, a_conv, pv_array, b_conv, info,
                batch=batch, device=device, stream=stream, method=method,
                execute=execute, max_blocks=max_blocks,
                vectorize=vectorize, resilient=resilient, policy=policy,
                max_resident_bytes=max_resident_bytes,
                chunk_hint=chunk_hint, streams=streams, devices=devices,
                overlap=overlap)
            writeback()
            return res
    from . import memory_plan
    if memory_plan.governance_active(execute=execute,
                                     max_blocks=max_blocks, stream=stream):
        return memory_plan.gbsv_batch_governed(
            n, kl, ku, nrhs, a_array, pv_array, b_array, info,
            batch=batch, device=device, stream=stream, method=method,
            vectorize=vectorize, resilient=resilient, policy=policy,
            max_resident_bytes=max_resident_bytes, chunk_hint=chunk_hint,
            streams=streams, devices=devices, overlap=overlap)
    if resilient:
        check_arg(execute and max_blocks is None, 13,
                  "resilient=True requires full functional execution "
                  "(execute=True, max_blocks=None)")
        from .resilience import gbsv_batch_resilient
        return gbsv_batch_resilient(
            n, kl, ku, nrhs, a_array, pv_array, b_array, info,
            batch=batch, device=device, stream=stream, method=method,
            vectorize=vectorize, policy=policy)
    check_arg(nrhs >= 0, 4, f"nrhs must be non-negative, got {nrhs}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(n, n, kl, ku, mats, batch=batch)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=6, zero=True)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=7)
    info = ensure_info(info, batch, arg_pos=8)
    if batch == 0 or n == 0:
        return pivots, info

    if method == "auto":
        method = select_gbsv_method(device, n, kl, ku, nrhs,
                                    mats[0].dtype.itemsize)

    if method == "fused" and nrhs >= 1:
        kernel = FusedGbsvKernel(n, kl, ku, nrhs, mats, pivots, rhs, info)
        launch(device, kernel, stream=stream, execute=execute,
               max_blocks=max_blocks, vectorize=vectorize)
        return pivots, info

    gbtrf_batch(n, n, kl, ku, mats, pivots, info, batch=batch,
                device=device, stream=stream, execute=execute,
                max_blocks=max_blocks, vectorize=vectorize)
    if nrhs == 0:
        return pivots, info
    ok = [k for k in range(batch) if info[k] == 0]
    if len(ok) == batch:
        gbtrs_batch(Trans.NO_TRANS, n, kl, ku, nrhs, mats, pivots, rhs,
                    batch=batch, device=device, stream=stream,
                    execute=execute, max_blocks=max_blocks,
                    vectorize=vectorize)
    elif ok:
        # Solve only the non-singular problems (LAPACK leaves B of a
        # singular problem unchanged).  The scattered sub-batch is no
        # longer a contiguous stack; the gather/pack stage stages it for
        # the batch-interleaved path.
        sub_mats = [mats[k] for k in ok]
        sub_piv = [pivots[k] for k in ok]
        sub_rhs = [rhs[k] for k in ok]
        gbtrs_batch(Trans.NO_TRANS, n, kl, ku, nrhs, sub_mats, sub_piv,
                    sub_rhs, batch=len(ok), device=device, stream=stream,
                    execute=execute, max_blocks=max_blocks,
                    vectorize=vectorize)
    return pivots, info
