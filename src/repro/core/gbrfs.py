"""Iterative refinement for band solves (LAPACK ``GBRFS``) and a
mixed-precision batched driver.

``gbrfs`` polishes a solution from :func:`repro.core.gbtrs` by Newton
iteration on the residual — one band matrix-vector product plus one solve
with the existing factors per step — and reports the componentwise backward
error LAPACK calls ``berr``.  ``gbsv_refined_batch`` composes it into the
classic mixed-precision scheme (factor in float32, iterate the residual in
float64), the natural GPU follow-up to the paper given fp32's 2x bandwidth
advantage on both vendors' parts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..band.layout import normalize_layout
from ..band.ops import gbmv
from ..errors import SingularMatrixError, check_arg
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..gpusim.kernel import note_layout_conversion
from ..types import Trans
from .batch_args import (
    as_matrix_list,
    as_rhs_list,
    check_gb_args,
    convert_batch_layout,
    ensure_info,
    ensure_pivots,
)
from .gbtrf import gbtrf_batch
from .gbtrs import gbtrs_batch
from .solve_blocks import gbtrs_unblocked

__all__ = ["RefinementResult", "gbrfs", "gbrfs_batch",
           "gbsv_refined_batch"]

_MAX_REFINE = 10


@dataclass
class RefinementResult:
    """Outcome of one refinement run."""

    iterations: int
    berr: np.ndarray          # (nrhs,) componentwise backward error
    converged: bool


def _backward_error(ab_orig, n, kl, ku, x, b, residual) -> np.ndarray:
    """Componentwise backward error max_i |r_i| / (|A||x| + |b|)_i."""
    absx = np.abs(x)
    denom = np.abs(b).astype(np.float64).copy()
    gbmv(Trans.NO_TRANS, n, kl, ku, 1.0, np.abs(ab_orig), absx, 1.0, denom)
    safe = denom > 0
    out = np.zeros(residual.shape[1])
    if safe.any():
        ratio = np.zeros_like(residual, dtype=np.float64)
        ratio[safe] = np.abs(residual[safe]) / denom[safe]
        out = ratio.max(axis=0)
    return out


def gbrfs(n: int, kl: int, ku: int, ab_orig: np.ndarray,
          ab_fact: np.ndarray, ipiv: np.ndarray, b: np.ndarray,
          x: np.ndarray, *, tol: float | None = None,
          max_iter: int = _MAX_REFINE) -> RefinementResult:
    """Refine ``x`` (in place) so that ``A x = b`` to working precision.

    Parameters
    ----------
    ab_orig:
        The *unfactored* band matrix (factor layout), needed for residuals.
    ab_fact, ipiv:
        Output of ``gbtrf`` on (a possibly lower-precision copy of) ``A``.
    tol:
        Stop when the componentwise backward error falls below this;
        defaults to ``n * eps`` of ``x``'s dtype (LAPACK's criterion scale).

    Returns the iteration count and final ``berr`` per right-hand side.
    """
    check_arg(x.shape == b.shape, 8,
              f"x has shape {x.shape}, b has {b.shape}")
    eps = float(np.finfo(x.dtype).eps)
    if tol is None:
        tol = max(n, 1) * eps
    berr = np.full(b.shape[1] if b.ndim == 2 else 1, np.inf)
    last = np.inf
    for it in range(max_iter):
        residual = b.astype(np.float64).copy()
        gbmv(Trans.NO_TRANS, n, kl, ku, -1.0, ab_orig.astype(np.float64),
             x.astype(np.float64), 1.0, residual)
        berr = _backward_error(ab_orig, n, kl, ku, x, b, residual)
        if berr.max(initial=0.0) <= tol:
            return RefinementResult(iterations=it, berr=berr,
                                    converged=True)
        if berr.max() >= last / 2:    # stagnation (LAPACK's 2x rule)
            return RefinementResult(iterations=it, berr=berr,
                                    converged=berr.max() <= np.sqrt(eps))
        last = berr.max()
        correction = residual.astype(ab_fact.dtype)
        gbtrs_unblocked(Trans.NO_TRANS, n, kl, ku, ab_fact, ipiv,
                        correction)
        x += correction.astype(x.dtype)
    return RefinementResult(iterations=max_iter, berr=berr,
                            converged=bool(berr.max() <= tol))


def gbrfs_batch(n: int, kl: int, ku: int, nrhs: int, a_orig_array,
                a_fact_array, pv_array, b_array, x_array, *,
                batch: int | None = None,
                max_iter: int = _MAX_REFINE,
                layout: str | None = None) -> list[RefinementResult]:
    """Batched :func:`gbrfs`; refines every ``x`` in place.

    Every batched operand may arrive lane-major or batch-interleaved
    (SoA, docs/LAYOUTS.md) — refinement indexes per-lane views, so both
    run natively.  ``layout`` follows the driver contract: ``None`` runs
    in the layout the batch arrives in, ``'interleaved'``/``'soa'`` or
    ``'lane-major'``/``'aos'`` stage the band operands into that layout
    exactly once at the batch boundary (matrices are pure inputs; only
    the refined ``x`` batch is written back).
    """
    if batch is None:
        batch = len(a_orig_array)
    if normalize_layout(layout) is not None:
        conv = convert_batch_layout(
            normalize_layout(layout),
            (a_orig_array, a_fact_array, b_array, x_array), batch=batch,
            outputs=(False, False, False, True))
        if conv is not None:
            (orig_c, fact_c, b_c, x_c), writeback, moved = conv
            note_layout_conversion(moved)
            out = gbrfs_batch(n, kl, ku, nrhs, orig_c, fact_c, pv_array,
                              b_c, x_c, batch=batch, max_iter=max_iter)
            writeback()
            return out
    orig = as_matrix_list(a_orig_array, batch, arg_pos=5)
    fact = as_matrix_list(a_fact_array, batch, arg_pos=6)
    check_gb_args(n, n, kl, ku, orig, batch=batch)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=7)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=8)
    sols = as_rhs_list(x_array, batch, n, nrhs, arg_pos=9)
    return [gbrfs(n, kl, ku, orig[k], fact[k], pivots[k], rhs[k], sols[k],
                  max_iter=max_iter) for k in range(batch)]


def gbsv_refined_batch(n: int, kl: int, ku: int, nrhs: int, a_array,
                       b_array, *, batch: int | None = None,
                       factor_dtype=np.float32,
                       device: DeviceSpec = H100_PCIE, stream=None,
                       max_iter: int = _MAX_REFINE):
    """Mixed-precision batched solve: low-precision factor + fp64 refine.

    Factors a ``factor_dtype`` copy of each matrix with the batched GPU
    factorization, solves, then refines against the original-precision
    matrices.  Returns ``(x, info, results)`` where ``x`` is a fresh
    ``(batch, n, nrhs)`` float64 array (inputs are left untouched) and
    ``results`` the per-problem :class:`RefinementResult`.

    Problems whose low-precision factorization is singular fall back to a
    full-precision factor+solve (reported with ``iterations == -1``).  A
    problem that is singular even in full precision raises
    :class:`~repro.errors.SingularMatrixError` — unlike the plain LAPACK
    drivers this routine promises a solution, so it cannot silently return
    one problem unsolved.
    """
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(n, n, kl, ku, mats, batch=batch)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=6)

    low = [m.astype(factor_dtype) for m in mats]
    info = ensure_info(None, batch, arg_pos=7)
    pivots, info = gbtrf_batch(n, n, kl, ku, low, None, info, batch=batch,
                               device=device, stream=stream)
    x = np.stack([b.astype(np.float64) for b in rhs])
    ok = [k for k in range(batch) if info[k] == 0]
    if ok:
        xs_low = [x[k].astype(factor_dtype) for k in ok]
        gbtrs_batch(Trans.NO_TRANS, n, kl, ku, nrhs,
                    [low[k] for k in ok], [pivots[k] for k in ok],
                    xs_low, batch=len(ok), device=device, stream=stream)
        for j, k in enumerate(ok):
            x[k] = xs_low[j].astype(np.float64)

    results: list[RefinementResult] = [None] * batch  # type: ignore
    for k in range(batch):
        if info[k] != 0:
            # Low-precision factor failed: fall back to full precision.
            full = [mats[k].astype(np.float64)]
            xb = [x[k]]
            piv_k, info_k = gbtrf_batch(n, n, kl, ku, full, batch=1,
                                        device=device, stream=stream)
            if info_k[0] != 0:
                raise SingularMatrixError(k, int(info_k[0]))
            x[k] = rhs[k].astype(np.float64)
            gbtrs_batch(Trans.NO_TRANS, n, kl, ku, nrhs, full, piv_k,
                        [x[k]], batch=1, device=device, stream=stream)
            info[k] = 0
            results[k] = RefinementResult(iterations=-1,
                                          berr=np.full(nrhs, np.nan),
                                          converged=True)
        else:
            results[k] = gbrfs(n, kl, ku, mats[k], low[k], pivots[k],
                               rhs[k].astype(np.float64), x[k],
                               max_iter=max_iter)
    return x, info, results
