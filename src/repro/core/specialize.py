"""Band-structure specialization — the paper's JIT extension (paper Section 8.1).

The paper observes that caching the matrix in the *register file* would need
``(kl, ku)`` known at compile time, and that pre-compiling every pair is
impractical (``KL x KU`` kernel instances); it proposes runtime compilation
(``nvrtc`` / ``hiprtc``) of a kernel specialised to one band structure,
created and destroyed explicitly by the user.

We reproduce that workflow: a :class:`BandSpecialization` is the analogue of
a JIT-compiled kernel instance — created for one ``(device, kl, ku, dtype)``,
cached so repeated creation is free, and explicitly destroyable.  The
specialised kernel fixes the tuning parameters at "compile" time and models
the register-file benefit as a 15% reduction of the shared-memory traffic
and barrier count (the U-row and multiplier reuse that static indexing
enables); functional results are identical to the generic kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DeviceError, check_arg
from ..gpusim.costmodel import BlockCost
from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import launch
from ..tuning.defaults import window_params
from .batch_args import as_matrix_list, check_gb_args, ensure_info, ensure_pivots
from .gbtrf_window import SlidingWindowGbtrfKernel

__all__ = ["BandSpecialization", "create_specialization",
           "destroy_specialization", "specialization_cache_info",
           "clear_specialization_cache"]

# Modeled benefit of compile-time (kl, ku): static register indexing of the
# U row and multipliers removes a slice of shared-memory round trips.
_SPECIALIZED_SMEM_FACTOR = 0.85
_SPECIALIZED_SYNC_FACTOR = 0.85


class _SpecializedWindowKernel(SlidingWindowGbtrfKernel):
    """Sliding-window kernel "compiled" for a fixed band structure."""

    name = "gbtrf_window_jit"

    def block_cost(self) -> BlockCost:
        base = super().block_cost()
        return BlockCost(
            flops=base.flops,
            smem_traffic=base.smem_traffic * _SPECIALIZED_SMEM_FACTOR,
            dram_traffic=base.dram_traffic,
            syncs=base.syncs * _SPECIALIZED_SYNC_FACTOR,
            threads=base.threads,
        )


@dataclass
class BandSpecialization:
    """A live JIT-compiled kernel instance for one band structure."""

    device: DeviceSpec
    kl: int
    ku: int
    dtype: np.dtype
    nb: int
    threads: int
    alive: bool = True

    def gbtrf_batch(self, m: int, n: int, a_array, pv_array=None,
                    info=None, *, batch: int | None = None, stream=None,
                    execute: bool = True, max_blocks: int | None = None):
        """Factorize a batch with the specialised kernel.

        Same contract as :func:`repro.core.gbtrf.gbtrf_batch`, with the
        band structure and tuning fixed at creation.
        """
        if not self.alive:
            raise DeviceError("specialization has been destroyed")
        if batch is None:
            batch = len(a_array)
        mats = as_matrix_list(a_array, batch, arg_pos=3)
        for k, a in enumerate(mats):
            check_arg(a.dtype == self.dtype, 3,
                      f"matrix {k} has dtype {a.dtype}, specialization was "
                      f"compiled for {self.dtype}")
        check_gb_args(m, n, self.kl, self.ku, mats, batch=batch)
        pivots = ensure_pivots(pv_array, batch, min(m, n), arg_pos=4,
                               zero=True)
        info = ensure_info(info, batch, arg_pos=5)
        if batch == 0 or min(m, n) == 0:
            return pivots, info
        kernel = _SpecializedWindowKernel(
            m, n, self.kl, self.ku, mats, pivots, info,
            nb=self.nb, threads=self.threads)
        launch(self.device, kernel, stream=stream, execute=execute,
               max_blocks=max_blocks)
        return pivots, info


_CACHE: dict[tuple, BandSpecialization] = {}
_COMPILE_COUNT = 0


def create_specialization(device: DeviceSpec, kl: int, ku: int,
                          dtype=np.float64) -> BandSpecialization:
    """Create (or fetch from cache) a kernel specialised to ``(kl, ku)``.

    Mirrors the nvrtc/hiprtc workflow: first creation "compiles" (derives
    the tuning configuration); subsequent creations for the same key are
    cache hits.
    """
    check_arg(kl >= 0, 2, f"kl must be non-negative, got {kl}")
    check_arg(ku >= 0, 3, f"ku must be non-negative, got {ku}")
    key = (device.name, kl, ku, np.dtype(dtype).name)
    spec = _CACHE.get(key)
    if spec is not None and spec.alive:
        return spec
    global _COMPILE_COUNT
    _COMPILE_COUNT += 1
    nb, threads = window_params(device, kl, ku)
    spec = BandSpecialization(device=device, kl=kl, ku=ku,
                              dtype=np.dtype(dtype), nb=nb, threads=threads)
    _CACHE[key] = spec
    return spec


def destroy_specialization(spec: BandSpecialization) -> None:
    """Destroy a specialization (the user-managed lifetime of paper Section 8.1)."""
    spec.alive = False
    key = (spec.device.name, spec.kl, spec.ku, spec.dtype.name)
    _CACHE.pop(key, None)


def specialization_cache_info() -> tuple[int, int]:
    """Returns ``(live_entries, total_compiles)`` for tests/telemetry."""
    return len(_CACHE), _COMPILE_COUNT


def clear_specialization_cache() -> None:
    """Drop every cached specialization and reset the compile counter."""
    global _COMPILE_COUNT
    _CACHE.clear()
    _COMPILE_COUNT = 0
