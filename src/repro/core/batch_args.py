"""Canonicalisation and validation of batched call arguments.

The paper's C interface (paper Section 4) takes arrays of device pointers plus an
``info`` output array.  On the Python side we accept, for each batched
operand, either

* a 3-D numpy stack ``(batch, ldab, n)`` — the strided-batch idiom, or
* a :class:`~repro.gpusim.memory.PointerArray` / sequence of 2-D arrays —
  the true pointer-array idiom (each matrix anywhere in memory),

and canonicalise to a list of per-problem views.  Validation mirrors
LAPACK argument checking: the 1-based argument positions in raised
:class:`~repro.errors.ArgumentError` match the paper's C signatures.
"""

from __future__ import annotations

import numpy as np

from ..band.layout import ldab_for_factor
from ..errors import ArgumentError, check_arg
from ..gpusim.memory import PointerArray, is_packable_batch

__all__ = [
    "as_matrix_list",
    "as_rhs_list",
    "ensure_pivots",
    "ensure_info",
    "check_gb_args",
    "is_uniform_stack",
    "is_packable_batch",
]


def is_uniform_stack(mats) -> bool:
    """True when ``mats`` are consecutive slices of one contiguous stack.

    This is the *direct* eligibility gate for the batch-interleaved
    execution path: every per-problem view must share the same base array,
    shape, dtype and strides, and sit at evenly spaced, non-overlapping
    offsets — exactly what ``list(stack)`` of a ``(batch, ldab, n)``
    strided-batch array produces.
    :class:`~repro.gpusim.memory.PointerArray` batches (matrices scattered
    through memory), aliased matrices and ragged (vbatch) inputs all
    return False; scattered same-shape batches can still vectorize via the
    gather/pack stage (:func:`~repro.gpusim.memory.is_packable_batch`),
    while aliased/overlapping batches keep the per-block path.
    """
    if len(mats) == 0:
        return False
    first = mats[0]
    if not isinstance(first, np.ndarray) or first.base is None:
        return False
    base = first.base
    shape, dtype, strides = first.shape, first.dtype, first.strides
    if len(mats) == 1:
        return True
    ptr0 = first.__array_interface__["data"][0]
    extent = shape[0] * strides[0] if strides else 0
    if extent <= 0:
        return False
    for k, mk in enumerate(mats[1:], 1):
        if (not isinstance(mk, np.ndarray) or mk.base is not base
                or mk.shape != shape or mk.dtype != dtype
                or mk.strides != strides):
            return False
        if mk.__array_interface__["data"][0] != ptr0 + k * extent:
            return False
    return True


def as_matrix_list(a_array, batch: int, *, arg_pos: int) -> list[np.ndarray]:
    """Canonicalise a batched band-matrix argument to a list of 2-D views."""
    if isinstance(a_array, np.ndarray):
        check_arg(a_array.ndim == 3, arg_pos,
                  f"expected a (batch, ldab, n) stack, got ndim={a_array.ndim}")
        check_arg(a_array.shape[0] == batch, arg_pos,
                  f"stack has batch {a_array.shape[0]}, expected {batch}")
        return list(a_array)
    mats = list(a_array)
    check_arg(len(mats) == batch, arg_pos,
              f"pointer array has {len(mats)} entries, expected {batch}")
    out = []
    for k, m in enumerate(mats):
        m = np.asarray(m)
        check_arg(m.ndim == 2, arg_pos,
                  f"matrix {k} has ndim={m.ndim}, expected 2")
        out.append(m)
    return out


def as_rhs_list(b_array, batch: int, n: int, nrhs: int, *,
                arg_pos: int) -> list[np.ndarray]:
    """Canonicalise a batched RHS argument to a list of ``(n, nrhs)`` views.

    1-D per-problem arrays are accepted for ``nrhs == 1`` and reshaped.
    """
    if isinstance(b_array, np.ndarray):
        if b_array.ndim == 2 and nrhs == 1:
            b_array = b_array[:, :, None]
        check_arg(b_array.ndim == 3, arg_pos,
                  f"expected a (batch, n, nrhs) stack, got ndim={b_array.ndim}")
        check_arg(b_array.shape[0] == batch, arg_pos,
                  f"stack has batch {b_array.shape[0]}, expected {batch}")
        mats = list(b_array)
    else:
        mats = [np.asarray(b) for b in b_array]
        check_arg(len(mats) == batch, arg_pos,
                  f"pointer array has {len(mats)} entries, expected {batch}")
    out = []
    for k, b in enumerate(mats):
        if b.ndim == 1 and nrhs == 1:
            b = b[:, None]
        check_arg(b.ndim == 2, arg_pos,
                  f"RHS {k} has ndim={b.ndim}, expected 2")
        check_arg(b.shape == (n, nrhs), arg_pos,
                  f"RHS {k} has shape {b.shape}, expected {(n, nrhs)}")
        out.append(b)
    return out


def ensure_pivots(pv_array, batch: int, mn: int, *, arg_pos: int,
                  zero: bool = False) -> list[np.ndarray]:
    """Canonicalise/allocate the per-problem pivot vectors.

    ``zero=True`` is for routines that *produce* pivots (``gbtrf``,
    ``gbsv``): the caller-supplied storage is zeroed as soon as it
    validates, upholding the error-path guarantee documented on
    :func:`ensure_info`.  Routines that *consume* pivots (``gbtrs``,
    ``gbrfs``, ``gbcon``) leave it False.
    """
    if pv_array is None:
        return [np.zeros(mn, dtype=np.int64) for _ in range(batch)]
    if isinstance(pv_array, np.ndarray):
        check_arg(pv_array.ndim == 2 and pv_array.shape == (batch, mn), arg_pos,
                  f"pivot stack has shape {pv_array.shape}, "
                  f"expected {(batch, mn)}")
        check_arg(np.issubdtype(pv_array.dtype, np.integer), arg_pos,
                  f"pivot array must be integer, got {pv_array.dtype}")
        if zero:
            pv_array[...] = 0
        return list(pv_array)
    pivs = list(pv_array)
    check_arg(len(pivs) == batch, arg_pos,
              f"pivot pointer array has {len(pivs)} entries, expected {batch}")
    for k, p in enumerate(pivs):
        check_arg(p.shape == (mn,), arg_pos,
                  f"pivot vector {k} has shape {p.shape}, expected {(mn,)}")
        check_arg(np.issubdtype(p.dtype, np.integer), arg_pos,
                  f"pivot vector {k} must be integer, got {p.dtype}")
        if zero:
            p[...] = 0
    return pivs


def ensure_info(info, batch: int, *, arg_pos: int) -> np.ndarray:
    """Canonicalise/allocate the per-problem ``info`` output array.

    The array is **zeroed here**, at canonicalisation time, before any
    numerical work starts.  This is the batched drivers' error-path
    guarantee: if a driver raises after its outputs validated — a rejected
    kernel launch, a shared-memory failure, an injected fault — the
    caller's ``info`` (and, via ``ensure_pivots(..., zero=True)``, output
    pivots) hold zeros, never stale values from a previous call.  Status
    codes written before the exception (e.g. by a completed factorization
    stage) are preserved, since they are meaningful results.
    """
    if info is None:
        return np.zeros(batch, dtype=np.int64)
    info = np.asarray(info)
    check_arg(info.shape == (batch,), arg_pos,
              f"info has shape {info.shape}, expected {(batch,)}")
    check_arg(np.issubdtype(info.dtype, np.integer), arg_pos,
              f"info must be integer, got {info.dtype}")
    info[...] = 0
    return info


def check_gb_args(m: int, n: int, kl: int, ku: int,
                  mats: list[np.ndarray], *, batch: int,
                  ldab_pos: int = 6) -> None:
    """Validate dimensions against every matrix of the batch.

    Positions follow the paper's ``dgbtrf_batch`` signature:
    ``(m, n, kl, ku, A_array, ldab, ...)``.
    """
    check_arg(m >= 0, 1, f"m must be non-negative, got {m}")
    check_arg(n >= 0, 2, f"n must be non-negative, got {n}")
    check_arg(kl >= 0, 3, f"kl must be non-negative, got {kl}")
    check_arg(ku >= 0, 4, f"ku must be non-negative, got {ku}")
    check_arg(batch >= 0, 12, f"batch must be non-negative, got {batch}")
    need = ldab_for_factor(kl, ku)
    for k, a in enumerate(mats):
        if a.shape[0] < need or a.shape[1] != n:
            raise ArgumentError(
                ldab_pos,
                f"matrix {k} has shape {a.shape}; needs at least "
                f"({need}, {n}) for kl={kl}, ku={ku}")
