"""Canonicalisation and validation of batched call arguments.

The paper's C interface (paper Section 4) takes arrays of device pointers plus an
``info`` output array.  On the Python side we accept, for each batched
operand, either

* a 3-D numpy stack ``(batch, ldab, n)`` — the strided-batch idiom, or
* a :class:`~repro.gpusim.memory.PointerArray` / sequence of 2-D arrays —
  the true pointer-array idiom (each matrix anywhere in memory),

and canonicalise to a list of per-problem views.  Validation mirrors
LAPACK argument checking: the 1-based argument positions in raised
:class:`~repro.errors.ArgumentError` match the paper's C signatures.
"""

from __future__ import annotations

import math

import numpy as np

from ..band.layout import (
    INTERLEAVED,
    LANE_MAJOR,
    ldab_for_factor,
    to_interleaved,
    to_lane_major,
)
from ..errors import ArgumentError, check_arg
from ..gpusim.memory import PointerArray, is_packable_batch

__all__ = [
    "as_matrix_list",
    "as_rhs_list",
    "ensure_pivots",
    "ensure_info",
    "check_gb_args",
    "is_uniform_stack",
    "is_interleaved_stack",
    "is_packable_batch",
    "stack_view",
    "stage_stack",
    "soa_stageable",
    "convert_batch_layout",
]


def is_uniform_stack(mats) -> bool:
    """True when ``mats`` are consecutive slices of one contiguous stack.

    This is the *direct* eligibility gate for the batch-interleaved
    execution path: every per-problem view must share the same base array,
    shape, dtype and strides, and sit at evenly spaced, non-overlapping
    offsets — exactly what ``list(stack)`` of a ``(batch, ldab, n)``
    strided-batch array produces.
    :class:`~repro.gpusim.memory.PointerArray` batches (matrices scattered
    through memory), aliased matrices and ragged (vbatch) inputs all
    return False; scattered same-shape batches can still vectorize via the
    gather/pack stage (:func:`~repro.gpusim.memory.is_packable_batch`),
    while aliased/overlapping batches keep the per-block path.
    """
    if len(mats) == 0:
        return False
    first = mats[0]
    if not isinstance(first, np.ndarray) or first.base is None:
        return False
    base = first.base
    shape, dtype, strides = first.shape, first.dtype, first.strides
    if len(mats) == 1:
        return True
    ptr0 = first.__array_interface__["data"][0]
    extent = shape[0] * strides[0] if strides else 0
    if extent <= 0:
        return False
    for k, mk in enumerate(mats[1:], 1):
        if (not isinstance(mk, np.ndarray) or mk.base is not base
                or mk.shape != shape or mk.dtype != dtype
                or mk.strides != strides):
            return False
        if mk.__array_interface__["data"][0] != ptr0 + k * extent:
            return False
    return True


def is_interleaved_stack(mats) -> bool:
    """True when ``mats`` are lanes of one batch-interleaved (SoA) stack.

    This is the eligibility gate for the SoA-native execution path
    (``[vec+soa]`` in traces): every per-problem view must share the same
    base array, shape, dtype and strides, with data pointers at a
    constant positive delta ``d`` — lane ``k`` starts ``k*d`` bytes after
    lane 0, the lane-fastest layout of
    :func:`repro.band.layout.alloc_band_interleaved`.  Disjointness of
    the lanes is proven from the strides: every in-view stride is a
    multiple of some ``g`` with ``g >= nlanes * d``, so two lanes can
    never address the same element.  Consecutive sub-slices of an
    interleaved batch (as the chunked executor takes) stay detectable,
    which is what keeps governance, pipelining and resilience
    layout-native with zero extra conversions.
    """
    nlanes = len(mats)
    if nlanes < 2:
        return False
    first = mats[0]
    if not isinstance(first, np.ndarray) or first.base is None:
        return False
    base = first.base
    shape, dtype, strides = first.shape, first.dtype, first.strides
    ptr0 = first.__array_interface__["data"][0]
    prev = ptr0
    d = None
    for mk in mats[1:]:
        if (not isinstance(mk, np.ndarray) or mk.base is not base
                or mk.shape != shape or mk.dtype != dtype
                or mk.strides != strides):
            return False
        ptr = mk.__array_interface__["data"][0]
        if d is None:
            d = ptr - prev
            if d <= 0:
                return False
        elif ptr - prev != d:
            return False
        prev = ptr
    # Lane disjointness: strides along extents > 1 must share a common
    # divisor g that is a multiple of d and covers all nlanes offsets.
    live = [abs(s) for s, e in zip(strides, shape) if e > 1]
    if not live:
        return d >= dtype.itemsize
    g = math.gcd(*live)
    return g % d == 0 and g // d >= nlanes


def stack_view(mats) -> np.ndarray:
    """Writable ``(batch, ...)`` view over an interleaved lane list.

    Only valid when :func:`is_interleaved_stack` returned True: the view
    aliases exactly the union of the per-lane views (lane ``k`` of the
    result *is* ``mats[k]``'s memory), so kernels can execute on it in
    place — no gather, no scatter.
    """
    first = mats[0]
    d = (mats[1].__array_interface__["data"][0]
         - first.__array_interface__["data"][0])
    return np.lib.stride_tricks.as_strided(
        first, shape=(len(mats),) + first.shape,
        strides=(d,) + first.strides)


def stage_stack(seq, nblocks: int, *, rows: int | None = None):
    """Stage the first ``nblocks`` operands as a ``(nblocks, ...)`` stack.

    Returns ``(stack, inplace)``.  An interleaved lane list stages as a
    writable zero-copy view (``inplace=True`` — mutations land directly
    in the caller's storage, no write-back needed); anything else is
    gathered with :func:`numpy.stack` (``inplace=False`` — the kernel
    must scatter results back).  ``rows`` optionally trims each operand
    to its first ``rows`` rows (the factor-layout ``ldab`` slice).
    """
    sub = list(seq[:nblocks])
    if is_interleaved_stack(sub):
        view = stack_view(sub)
        if rows is not None:
            view = view[:, :rows, :]
        return view, True
    if rows is not None:
        sub = [a[:rows, :] for a in sub]
    return np.stack(sub), False


def soa_stageable(*seqs) -> bool:
    """SoA-route eligibility across several operand lists.

    True when every operand batch can be staged for the batch-interleaved
    body — interleaved lanes stage as zero-copy views, uniform lane-major
    stacks gather as before — and at least one of them is actually
    interleaved (otherwise the classic ``[vec]`` route already applies).
    """
    any_soa = False
    for seq in seqs:
        if is_interleaved_stack(seq):
            any_soa = True
        elif not is_uniform_stack(seq):
            return False
    return any_soa


def convert_batch_layout(layout: str, operands, *, batch: int,
                         outputs=None):
    """Stage batched operands into ``layout`` at the batch boundary.

    ``operands`` is a sequence of batched arguments (each a 3-D logical
    stack or a list of per-problem 2-D arrays); ``layout`` is a
    canonical name from :func:`repro.band.layout.normalize_layout`.
    Returns ``None`` when nothing needs converting (every operand is
    already in the requested layout), else ``(converted, writeback,
    nbytes)``: ``converted`` mirrors ``operands`` with working copies in
    the target layout, ``writeback()`` copies results back into the
    caller's storage, and ``nbytes`` is the total traffic of the
    round-trip (in + out, ``pack_bytes``-style) for trace attribution.

    ``outputs`` is an optional per-operand boolean mask: ``False`` marks
    a pure input (``gbtrs`` factors, for example) — it is staged into the
    working layout but never written back, so read-only inputs convert
    fine and the return copy is skipped (its traffic is counted one-way).

    This is the *one conversion per batch* of the layout contract
    (docs/LAYOUTS.md): drivers call it once, before governance splits
    the batch into chunks, so every downstream stage runs natively.
    """
    if outputs is None:
        outputs = (True,) * len(operands)
    originals, converted, moved = [], [], 0
    for op, is_output in zip(operands, outputs):
        if op is None:
            converted.append(None)
            continue
        if isinstance(op, np.ndarray) and op.ndim >= 2:
            mats = list(op)
        else:
            mats = [np.asarray(m) for m in op]
        check_arg(len(mats) == batch, 0,
                  f"operand has {len(mats)} entries, expected {batch}")
        if batch == 0:
            converted.append(op)
            continue
        shape = mats[0].shape
        if layout == INTERLEAVED and is_interleaved_stack(mats):
            converted.append(op)
            continue
        if layout == LANE_MAJOR and not is_interleaved_stack(mats):
            # Lane-major (or scattered/packable) input already runs the
            # classic path; nothing to stage.
            converted.append(op)
            continue
        check_arg(all(m.shape == shape for m in mats), 0,
                  "layout conversion requires uniform per-problem shapes "
                  f"(got {sorted({m.shape for m in mats})})")
        gathered = np.stack(mats)
        work = (to_interleaved(gathered) if layout == INTERLEAVED
                else to_lane_major(gathered))
        if is_output:
            originals.append((mats, work))
        converted.append(work)
        moved += (2 if is_output else 1) * int(gathered.nbytes)
    if not originals and moved == 0:
        return None

    def writeback() -> None:
        for mats, work in originals:
            for k, m in enumerate(mats):
                m[...] = work[k]

    return converted, writeback, moved


def as_matrix_list(a_array, batch: int, *, arg_pos: int) -> list[np.ndarray]:
    """Canonicalise a batched band-matrix argument to a list of 2-D views."""
    if isinstance(a_array, np.ndarray):
        check_arg(a_array.ndim == 3, arg_pos,
                  f"expected a (batch, ldab, n) stack, got ndim={a_array.ndim}")
        check_arg(a_array.shape[0] == batch, arg_pos,
                  f"stack has batch {a_array.shape[0]}, expected {batch}")
        return list(a_array)
    mats = list(a_array)
    check_arg(len(mats) == batch, arg_pos,
              f"pointer array has {len(mats)} entries, expected {batch}")
    out = []
    for k, m in enumerate(mats):
        m = np.asarray(m)
        check_arg(m.ndim == 2, arg_pos,
                  f"matrix {k} has ndim={m.ndim}, expected 2")
        out.append(m)
    return out


def as_rhs_list(b_array, batch: int, n: int, nrhs: int, *,
                arg_pos: int) -> list[np.ndarray]:
    """Canonicalise a batched RHS argument to a list of ``(n, nrhs)`` views.

    1-D per-problem arrays are accepted for ``nrhs == 1`` and reshaped.
    """
    if isinstance(b_array, np.ndarray):
        if b_array.ndim == 2 and nrhs == 1:
            b_array = b_array[:, :, None]
        check_arg(b_array.ndim == 3, arg_pos,
                  f"expected a (batch, n, nrhs) stack, got ndim={b_array.ndim}")
        check_arg(b_array.shape[0] == batch, arg_pos,
                  f"stack has batch {b_array.shape[0]}, expected {batch}")
        mats = list(b_array)
    else:
        mats = [np.asarray(b) for b in b_array]
        check_arg(len(mats) == batch, arg_pos,
                  f"pointer array has {len(mats)} entries, expected {batch}")
    out = []
    for k, b in enumerate(mats):
        if b.ndim == 1 and nrhs == 1:
            b = b[:, None]
        check_arg(b.ndim == 2, arg_pos,
                  f"RHS {k} has ndim={b.ndim}, expected 2")
        check_arg(b.shape == (n, nrhs), arg_pos,
                  f"RHS {k} has shape {b.shape}, expected {(n, nrhs)}")
        out.append(b)
    return out


def ensure_pivots(pv_array, batch: int, mn: int, *, arg_pos: int,
                  zero: bool = False) -> list[np.ndarray]:
    """Canonicalise/allocate the per-problem pivot vectors.

    ``zero=True`` is for routines that *produce* pivots (``gbtrf``,
    ``gbsv``): the caller-supplied storage is zeroed as soon as it
    validates, upholding the error-path guarantee documented on
    :func:`ensure_info`.  Routines that *consume* pivots (``gbtrs``,
    ``gbrfs``, ``gbcon``) leave it False.
    """
    if pv_array is None:
        return [np.zeros(mn, dtype=np.int64) for _ in range(batch)]
    if isinstance(pv_array, np.ndarray):
        check_arg(pv_array.ndim == 2 and pv_array.shape == (batch, mn), arg_pos,
                  f"pivot stack has shape {pv_array.shape}, "
                  f"expected {(batch, mn)}")
        check_arg(np.issubdtype(pv_array.dtype, np.integer), arg_pos,
                  f"pivot array must be integer, got {pv_array.dtype}")
        if zero:
            pv_array[...] = 0
        return list(pv_array)
    pivs = list(pv_array)
    check_arg(len(pivs) == batch, arg_pos,
              f"pivot pointer array has {len(pivs)} entries, expected {batch}")
    for k, p in enumerate(pivs):
        check_arg(p.shape == (mn,), arg_pos,
                  f"pivot vector {k} has shape {p.shape}, expected {(mn,)}")
        check_arg(np.issubdtype(p.dtype, np.integer), arg_pos,
                  f"pivot vector {k} must be integer, got {p.dtype}")
        if zero:
            p[...] = 0
    return pivs


def ensure_info(info, batch: int, *, arg_pos: int) -> np.ndarray:
    """Canonicalise/allocate the per-problem ``info`` output array.

    The array is **zeroed here**, at canonicalisation time, before any
    numerical work starts.  This is the batched drivers' error-path
    guarantee: if a driver raises after its outputs validated — a rejected
    kernel launch, a shared-memory failure, an injected fault — the
    caller's ``info`` (and, via ``ensure_pivots(..., zero=True)``, output
    pivots) hold zeros, never stale values from a previous call.  Status
    codes written before the exception (e.g. by a completed factorization
    stage) are preserved, since they are meaningful results.
    """
    if info is None:
        return np.zeros(batch, dtype=np.int64)
    info = np.asarray(info)
    check_arg(info.shape == (batch,), arg_pos,
              f"info has shape {info.shape}, expected {(batch,)}")
    check_arg(np.issubdtype(info.dtype, np.integer), arg_pos,
              f"info must be integer, got {info.dtype}")
    info[...] = 0
    return info


def check_gb_args(m: int, n: int, kl: int, ku: int,
                  mats: list[np.ndarray], *, batch: int,
                  ldab_pos: int = 6) -> None:
    """Validate dimensions against every matrix of the batch.

    Positions follow the paper's ``dgbtrf_batch`` signature:
    ``(m, n, kl, ku, A_array, ldab, ...)``.
    """
    check_arg(m >= 0, 1, f"m must be non-negative, got {m}")
    check_arg(n >= 0, 2, f"n must be non-negative, got {n}")
    check_arg(kl >= 0, 3, f"kl must be non-negative, got {kl}")
    check_arg(ku >= 0, 4, f"ku must be non-negative, got {ku}")
    check_arg(batch >= 0, 12, f"batch must be non-negative, got {batch}")
    need = ldab_for_factor(kl, ku)
    for k, a in enumerate(mats):
        if a.shape[0] < need or a.shape[1] != n:
            raise ArgumentError(
                ldab_pos,
                f"matrix {k} has shape {a.shape}; needs at least "
                f"({need}, {n}) for kl={kl}, ku={ku}")
