"""Self-healing batched dispatch: retry, fallback, lane quarantine.

The paper's dispatcher (paper Section 5.4) already expresses a degradation
order — fused for tiny orders, sliding-window as the workhorse, and the
fork-join reference design "as a safeguard".  This module turns that order
into an actual fault-tolerance ladder.  The resilient drivers
(:func:`gbtrf_batch_resilient`, :func:`gbtrs_batch_resilient`,
:func:`gbsv_batch_resilient`, reachable as ``resilient=True`` on the plain
drivers) wrap each kernel stage so that a batch survives the failure modes
the fault-injection harness (:mod:`repro.gpusim.faults`) models:

* **transient launch failures** (:class:`~repro.errors.DeviceError`) are
  retried in place, up to :attr:`ResiliencePolicy.max_retries` times per
  ladder rung with capped exponential backoff; operands are restored from
  pristine snapshots before every re-attempt, so a retry after a partial
  in-place factorization is exact, not best-effort;
* **shared-memory rejections** (:class:`~repro.errors.SharedMemoryError`)
  degrade to the next rung of the design ladder — ``fused`` → ``window`` →
  ``reference`` for the factorization, ``blocked`` → ``reference`` for the
  solve, fused ``gbsv`` → the standard two-stage path.  The gbtrf/gbtrs
  rungs are bit-identical by contract (the design-equivalence tests pin
  this at ``atol=0``), so a fallback changes *where* the batch runs, never
  *what* it computes;
* **lane corruption and numerical breakdown** are quarantined after the
  fact: any lane whose ``info > 0`` (singular) or whose outputs are
  non-finite is re-run from its snapshot through the reference design —
  first the reference kernels, then, should the storm also knock those
  over, the same per-column elimination on the host (``gbtf2`` /
  ``gbtrs_unblocked``, bit-identical to the reference kernels) — while the
  healthy lanes keep their fast-path results untouched and bit-identical
  to a fault-free run;
* recovered ``gbsv`` lanes that were quarantined for non-finite output, or
  whose pivot growth exceeds :attr:`ResiliencePolicy.growth_threshold`,
  get one :func:`~repro.core.gbrfs.gbrfs` refinement pass against the
  original operands.

Everything that happened is reported through a structured
:class:`BatchReport` so callers (and the fault-sweep tests) can assert the
batch survived *exactly* the storm that was injected.

The resilient path is honest about its own limits: argument errors
(:class:`~repro.errors.ArgumentError`) still raise eagerly — retrying a
malformed call cannot fix it — and a ladder whose every rung is exhausted
re-raises the last device error.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, fields as _dataclass_fields

import numpy as np

from ..band.layout import ldab_for_factor
from ..errors import (
    DeviceError,
    DeviceLostError,
    DeviceMemoryError,
    KernelHangError,
    SharedMemoryError,
    check_arg,
)
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..types import Trans
from .batch_args import (
    as_matrix_list,
    as_rhs_list,
    check_gb_args,
    ensure_info,
    ensure_pivots,
)
from .gbrfs import gbrfs
from .gbtf2 import gbtf2
from .gbtrf import gbtrf_batch, select_gbtrf_method
from .gbtrs import gbtrs_batch
from .gbsv import gbsv_batch, select_gbsv_method
from .solve_blocks import gbtrs_unblocked

__all__ = [
    "ResiliencePolicy",
    "BatchReport",
    "merge_reports",
    "escalate_device_faults",
    "device_fault_escalation_active",
    "gbtrf_batch_resilient",
    "gbtrs_batch_resilient",
    "gbsv_batch_resilient",
]

_GBTRF_LADDER = ("fused", "window", "reference")
_GBTRS_LADDER = ("blocked", "reference")

#: Marker used in :attr:`BatchReport.fallbacks` when a quarantine re-run
#: abandoned the reference *kernels* for the host reference *algorithm*.
HOST_FALLBACK = "host"

# Thread-local escalation switch for the pipelined executor's fault
# domains.  Inside an `escalate_device_faults()` scope, the retry ladder
# re-raises whole-device failures (DeviceLostError) and watchdog hangs
# (KernelHangError) immediately instead of retrying or absorbing them
# into the host net — the pipeline coordinator owns those errors: it
# trips the circuit breaker and re-shards the chunk onto a surviving
# device.  Outside the scope (a plain sequential resilient call with no
# other device to fail over to) the old absorb-into-host behaviour
# stands.
_ESCALATE = threading.local()


def device_fault_escalation_active() -> bool:
    """True inside an :func:`escalate_device_faults` scope (this thread)."""
    return getattr(_ESCALATE, "depth", 0) > 0


@contextmanager
def escalate_device_faults():
    """Scope in which device-lost and kernel-hang errors escalate.

    The pipelined executor wraps each chunk's kernel work in this scope so
    :class:`~repro.errors.DeviceLostError` and
    :class:`~repro.errors.KernelHangError` propagate to the coordinator
    (which owns failover) rather than being retried on the dying device or
    silently finished on the host.
    """
    _ESCALATE.depth = getattr(_ESCALATE, "depth", 0) + 1
    try:
        yield
    finally:
        _ESCALATE.depth -= 1


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tunables for the self-healing dispatch.

    Attributes
    ----------
    max_retries:
        Re-attempts per ladder rung after a transient
        :class:`~repro.errors.DeviceError` before falling to the next
        rung.
    backoff_base, backoff_cap:
        Exponential backoff between retries: attempt ``i`` sleeps
        ``min(backoff_base * 2**(i-1), backoff_cap)`` seconds.  The
        default base of 0 keeps the simulation instant while preserving
        the accounting (:attr:`BatchReport.backoff_total`).
    growth_threshold:
        Pivot-growth ratio ``max|U| / max|A|`` above which a recovered
        ``gbsv`` lane gets a refinement pass even though it is finite.
    refine:
        Master switch for the single :func:`~repro.core.gbrfs.gbrfs`
        pass on recovered ``gbsv`` lanes.
    watchdog:
        Watchdog deadline (modeled seconds) armed on the pipelined
        executor's compute streams; a launch exceeding it raises
        :class:`~repro.errors.KernelHangError` and the chunk fails over.
        ``None`` disables hang detection.
    hedge_ratio:
        Straggler hedging threshold for the pipelined executor: after
        each dispatch round, any chunk whose modeled duration exceeded
        ``hedge_ratio`` times the round's median chunk duration is
        duplicated onto the fastest other healthy device; the first
        finisher wins (results are bit-identical either way) and the
        loser's traffic is attributed in ``BatchReport.device_events``.
        ``None`` disables hedging.
    breaker:
        A :class:`~repro.gpusim.multidevice.CircuitBreaker` shared with
        the pipelined executor; ``None`` gives each pipelined call a
        private breaker.  Pass a long-lived breaker (the serving layer
        does) so device state survives across calls.
    """

    max_retries: int = 4
    backoff_base: float = 0.0
    backoff_cap: float = 0.05
    growth_threshold: float = 1e8
    refine: bool = True
    watchdog: float | None = None
    hedge_ratio: float | None = None
    breaker: object = None

    def __post_init__(self):
        if self.watchdog is not None and self.watchdog <= 0.0:
            raise ValueError(f"watchdog must be > 0, got {self.watchdog}")
        if self.hedge_ratio is not None and self.hedge_ratio < 1.0:
            raise ValueError(
                f"hedge_ratio must be >= 1, got {self.hedge_ratio}")

    def backoff(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based), in seconds."""
        return min(self.backoff_base * (2.0 ** (attempt - 1)),
                   self.backoff_cap)


@dataclass
class BatchReport:
    """Structured account of one resilient batched call.

    Lane tuples are 0-based batch indices, sorted ascending.  ``info`` is
    the same array the driver returned, attached for convenience.
    """

    operation: str
    batch: int
    method_requested: str = "auto"
    #: stage name -> design that finally served it (e.g. ``{"gbtrf":
    #: "window", "gbtrs": "blocked"}``).
    methods: dict = field(default_factory=dict)
    #: Launch re-attempts made after transient device errors.
    retries: int = 0
    #: Injected/real :class:`~repro.errors.DeviceError` launches absorbed.
    launch_failures: int = 0
    #: :class:`~repro.errors.SharedMemoryError` rejections absorbed.
    smem_rejections: int = 0
    #: Seconds of backoff accounted (slept when ``backoff_base > 0``).
    backoff_total: float = 0.0
    #: ``(stage, from_design, to_design)`` degradations, in order.
    fallbacks: list = field(default_factory=list)
    #: Lanes pulled off the fast path (union of singular + corrupted).
    quarantined: tuple = ()
    #: Quarantined lanes whose final ``info > 0`` (genuinely singular).
    singular: tuple = ()
    #: Quarantined lanes with non-finite output (corruption/breakdown).
    corrupted: tuple = ()
    #: Recovered lanes that received a gbrfs refinement pass.
    refined: tuple = ()
    #: Lanes that stayed non-finite even after the reference re-run
    #: (their *inputs* are non-finite; nothing recoverable).
    unrecovered: tuple = ()
    #: Estimated resident device footprint of the call, bytes (0 when the
    #: memory governor did not run, e.g. ``execute=False``).
    footprint_bytes: int = 0
    #: Device-memory budget the call was admitted against, bytes (None when
    #: the governor did not run).
    budget_bytes: int | None = None
    #: Lane counts of the chunks that executed on the device, in order.  A
    #: batch that fit whole records a single full-size chunk; lanes that
    #: finished on the host net appear in :attr:`chunk_events`, not here.
    chunks: tuple = ()
    #: Injected/real :class:`~repro.errors.DeviceMemoryError` allocations
    #: absorbed by the chunking ladder.
    oom_failures: int = 0
    #: Structured memory-governance decisions, in order: dicts with an
    #: ``action`` key (``"split"``, ``"halve"``, ``"host"``, and under
    #: the pipelined executor ``"drain"``) plus the numbers behind the
    #: decision; pipelined events also carry a ``"device"`` key.
    chunk_events: list = field(default_factory=list)
    #: Device names the call's shards ran on (empty for a plain
    #: single-device run outside the pipelined executor).
    devices: tuple = ()
    #: Modeled pipelined makespan, seconds (0 outside the pipelined
    #: executor): the per-stream tail maximum across every shard.
    makespan: float = 0.0
    #: Failure-domain decisions from the pipelined executor, in order:
    #: circuit-breaker transitions (``trip`` / ``probe`` / ``reopen`` /
    #: ``recover`` / ``dead``), chunk ``failover`` re-shards, and
    #: ``hedge`` duplicate dispatches (winner, loser, attributed bytes).
    device_events: list = field(default_factory=list)
    #: Chunks re-dispatched onto a surviving device after a device-lost
    #: or kernel-hang failure.
    failovers: int = 0
    #: Straggler chunks duplicated onto a second device (first-finisher
    #: wins; results are bit-identical either way).
    hedges: int = 0
    #: Verification mode that ran (``"cheap"`` / ``"full"``, empty when
    #: the call was not verified).  All ``verify_``/SDC fields below are
    #: stamped by :mod:`repro.core.verify`.
    verify_mode: str = ""
    #: Lanes whose residual gate was evaluated.
    verified_lanes: int = 0
    #: Lanes that failed a residual gate or digest check (silent data
    #: corruption detected).
    sdc_detected: tuple = ()
    #: Detected lanes the recovery ladder brought back under tolerance.
    sdc_recovered: tuple = ()
    #: Lanes whose read-only operands changed fingerprints across the
    #: stage boundary (restored from snapshots).
    digest_mismatches: tuple = ()
    #: Lanes that still fail their gate but are *expected*-inaccurate:
    #: condition estimate below the policy floor or pivot growth past the
    #: threshold.  Accepted, never raised.
    ill_conditioned: tuple = ()
    #: Lane-recompute events the escalation ladder performed (device
    #: recompute, host reference, equilibrated refactor).
    recomputes: int = 0
    #: Worst scaled residual observed across verified lanes.
    residual_max: float = 0.0
    #: Worst pivot-growth ratio ``max|U| / max|A|`` across verified lanes.
    growth_max: float = 0.0
    #: Worst gbrfs component-wise backward error across refined lanes.
    berr_max: float = 0.0
    #: Worst forward-error bound ``berr / rcond`` across refined lanes.
    ferr_max: float = 0.0
    #: Smallest gbcon condition estimate stamped (None when no estimate
    #: ran; ``'full'`` mode stamps every healthy lane).
    rcond_min: float | None = None
    info: np.ndarray | None = None

    @property
    def faults_tolerated(self) -> int:
        """Total faults this call absorbed without raising."""
        return (self.launch_failures + self.smem_rejections
                + len(self.corrupted) + self.oom_failures + self.failovers)

    @property
    def ok(self) -> bool:
        """True when every lane ended in a well-defined state."""
        return not self.unrecovered

    def summary(self) -> str:
        """One-line human-readable account."""
        parts = [f"{self.operation} batch={self.batch}"]
        if self.methods:
            parts.append("via " + ",".join(
                f"{s}:{m}" for s, m in sorted(self.methods.items())))
        parts.append(f"retries={self.retries}")
        parts.append(f"launch_failures={self.launch_failures}")
        parts.append(f"smem_rejections={self.smem_rejections}")
        if self.fallbacks:
            parts.append("fallbacks=" + ";".join(
                f"{s}:{a}->{b}" for s, a, b in self.fallbacks))
        if self.quarantined:
            parts.append(f"quarantined={list(self.quarantined)}"
                         f" (singular={list(self.singular)},"
                         f" corrupted={list(self.corrupted)})")
        if self.refined:
            parts.append(f"refined={list(self.refined)}")
        if len(self.chunks) > 1 or self.oom_failures:
            parts.append(f"chunks={list(self.chunks)}")
            parts.append(f"oom_failures={self.oom_failures}")
            parts.append(f"footprint={self.footprint_bytes}B"
                         f"/budget={self.budget_bytes}B")
        if self.devices:
            parts.append(f"devices={list(self.devices)}")
            parts.append(f"makespan={self.makespan * 1e3:.3f}ms")
        if self.failovers:
            parts.append(f"failovers={self.failovers}")
        if self.hedges:
            parts.append(f"hedges={self.hedges}")
        if self.device_events:
            parts.append(f"device_events={len(self.device_events)}")
        if self.verify_mode:
            parts.append(f"verify={self.verify_mode}"
                         f" lanes={self.verified_lanes}"
                         f" residual_max={self.residual_max:.3e}")
            if self.sdc_detected:
                parts.append(f"sdc_detected={list(self.sdc_detected)}"
                             f" recovered={list(self.sdc_recovered)}"
                             f" recomputes={self.recomputes}")
            if self.digest_mismatches:
                parts.append(
                    f"digest_mismatches={list(self.digest_mismatches)}")
            if self.ill_conditioned:
                parts.append(
                    f"ill_conditioned={list(self.ill_conditioned)}")
            if self.rcond_min is not None:
                parts.append(f"rcond_min={self.rcond_min:.3e}")
        if self.unrecovered:
            parts.append(f"UNRECOVERED={list(self.unrecovered)}")
        return " ".join(parts)

    def to_dict(self) -> dict:
        """JSON-safe dict of the full report (for structured logging).

        Everything numpy becomes plain Python; tuples become lists.  The
        derived ``ok`` / ``faults_tolerated`` properties are included for
        log consumers; :meth:`from_dict` ignores them on the way back.
        """
        return {
            "operation": self.operation,
            "batch": int(self.batch),
            "method_requested": self.method_requested,
            "methods": {str(k): str(v) for k, v in self.methods.items()},
            "retries": int(self.retries),
            "launch_failures": int(self.launch_failures),
            "smem_rejections": int(self.smem_rejections),
            "backoff_total": float(self.backoff_total),
            "fallbacks": [list(f) for f in self.fallbacks],
            "quarantined": [int(k) for k in self.quarantined],
            "singular": [int(k) for k in self.singular],
            "corrupted": [int(k) for k in self.corrupted],
            "refined": [int(k) for k in self.refined],
            "unrecovered": [int(k) for k in self.unrecovered],
            "footprint_bytes": int(self.footprint_bytes),
            "budget_bytes": (None if self.budget_bytes is None
                             else int(self.budget_bytes)),
            "chunks": [int(c) for c in self.chunks],
            "oom_failures": int(self.oom_failures),
            "chunk_events": [dict(e) for e in self.chunk_events],
            "devices": [str(d) for d in self.devices],
            "makespan": float(self.makespan),
            "device_events": [dict(e) for e in self.device_events],
            "failovers": int(self.failovers),
            "hedges": int(self.hedges),
            "verify_mode": self.verify_mode,
            "verified_lanes": int(self.verified_lanes),
            "sdc_detected": [int(k) for k in self.sdc_detected],
            "sdc_recovered": [int(k) for k in self.sdc_recovered],
            "digest_mismatches": [int(k) for k in self.digest_mismatches],
            "ill_conditioned": [int(k) for k in self.ill_conditioned],
            "recomputes": int(self.recomputes),
            "residual_max": float(self.residual_max),
            "growth_max": float(self.growth_max),
            "berr_max": float(self.berr_max),
            "ferr_max": float(self.ferr_max),
            "rcond_min": (None if self.rcond_min is None
                          else float(self.rcond_min)),
            "info": (None if self.info is None
                     else [int(i) for i in np.asarray(self.info)]),
            "ok": bool(self.ok),
            "faults_tolerated": int(self.faults_tolerated),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "BatchReport":
        """Rebuild a report from :meth:`to_dict` output (round-trip).

        Unknown keys are ignored (forward compatibility: a log written by
        a newer version still loads), as are the derived properties
        :meth:`to_dict` includes for log consumers.
        """
        known = {f.name for f in _dataclass_fields(cls)}
        d = {k: v for k, v in data.items() if k in known}
        for name in ("quarantined", "singular", "corrupted", "refined",
                     "unrecovered", "chunks", "devices", "sdc_detected",
                     "sdc_recovered", "digest_mismatches",
                     "ill_conditioned"):
            d[name] = tuple(d.get(name, ()))
        d["fallbacks"] = [tuple(f) for f in d.get("fallbacks", [])]
        d["device_events"] = [dict(e) for e in d.get("device_events", [])]
        if d.get("info") is not None:
            d["info"] = np.asarray(d["info"], dtype=np.int64)
        return cls(**d)


def merge_reports(operation: str, batch: int, parts) -> BatchReport:
    """Merge per-group reports of a vbatch call into one global report.

    ``parts`` is a sequence of ``(lane_indices, BatchReport)`` pairs where
    ``lane_indices[j]`` is the global lane of the group's lane ``j``.
    """
    merged = BatchReport(operation, batch)
    info = np.zeros(batch, dtype=np.int64)
    for idxs, rep in parts:
        merged.method_requested = rep.method_requested
        merged.retries += rep.retries
        merged.launch_failures += rep.launch_failures
        merged.smem_rejections += rep.smem_rejections
        merged.backoff_total += rep.backoff_total
        merged.fallbacks.extend(rep.fallbacks)
        merged.footprint_bytes += rep.footprint_bytes
        if rep.budget_bytes is not None:
            merged.budget_bytes = (rep.budget_bytes
                                   if merged.budget_bytes is None
                                   else min(merged.budget_bytes,
                                            rep.budget_bytes))
        merged.chunks += rep.chunks
        merged.oom_failures += rep.oom_failures
        merged.chunk_events.extend(rep.chunk_events)
        merged.devices += tuple(d for d in rep.devices
                                if d not in merged.devices)
        merged.makespan = max(merged.makespan, rep.makespan)
        merged.device_events.extend(rep.device_events)
        merged.failovers += rep.failovers
        merged.hedges += rep.hedges
        if rep.verify_mode:
            merged.verify_mode = rep.verify_mode
        merged.verified_lanes += rep.verified_lanes
        merged.recomputes += rep.recomputes
        merged.residual_max = max(merged.residual_max, rep.residual_max)
        merged.growth_max = max(merged.growth_max, rep.growth_max)
        merged.berr_max = max(merged.berr_max, rep.berr_max)
        merged.ferr_max = max(merged.ferr_max, rep.ferr_max)
        if rep.rcond_min is not None:
            merged.rcond_min = (rep.rcond_min
                                if merged.rcond_min is None
                                else min(merged.rcond_min, rep.rcond_min))
        for stage, meth in rep.methods.items():
            prev = merged.methods.get(stage)
            if prev is None:
                merged.methods[stage] = meth
            elif meth not in prev.split("+"):
                merged.methods[stage] = prev + "+" + meth
        remap = lambda lanes: tuple(int(idxs[k]) for k in lanes)
        merged.quarantined += remap(rep.quarantined)
        merged.singular += remap(rep.singular)
        merged.corrupted += remap(rep.corrupted)
        merged.refined += remap(rep.refined)
        merged.unrecovered += remap(rep.unrecovered)
        merged.sdc_detected += remap(rep.sdc_detected)
        merged.sdc_recovered += remap(rep.sdc_recovered)
        merged.digest_mismatches += remap(rep.digest_mismatches)
        merged.ill_conditioned += remap(rep.ill_conditioned)
        if rep.info is not None:
            for j, i in enumerate(idxs):
                info[i] = rep.info[j]
    for name in ("quarantined", "singular", "corrupted", "refined",
                 "unrecovered", "sdc_detected", "sdc_recovered",
                 "digest_mismatches", "ill_conditioned"):
        setattr(merged, name, tuple(sorted(getattr(merged, name))))
    merged.info = info
    return merged


# --- ladder execution ------------------------------------------------------

def _run_ladder(report: BatchReport, stage: str, ladder, call, restore,
                policy: ResiliencePolicy) -> str:
    """Run ``call(method)`` down the design ladder until one rung succeeds.

    ``restore()`` rewinds the operands to their pristine snapshots; it runs
    before every attempt except the very first (whose operands are already
    pristine), which is what keeps the zero-fault overhead to one snapshot
    copy.  Transient :class:`~repro.errors.DeviceError` launches are
    retried on the same rung; :class:`~repro.errors.SharedMemoryError`
    falls straight to the next rung (re-asking for the same allocation
    cannot succeed).  Raises the last error when the ladder is exhausted.
    """
    last: Exception | None = None
    dirty = False
    for pos, meth in enumerate(ladder):
        attempt = 0
        while True:
            try:
                if dirty:
                    restore()
                dirty = True
                call(meth)
                report.methods[stage] = meth
                return meth
            except (DeviceError, DeviceMemoryError) as exc:
                # Whole-device failures and watchdog hangs escalate to the
                # pipeline coordinator (which owns failover) instead of
                # being retried on a device that just died.
                if (isinstance(exc, (DeviceLostError, KernelHangError))
                        and device_fault_escalation_active()):
                    raise
                last = exc
                # Allocation failures (injected or genuine pressure) are
                # transient like launch failures: retry the rung, then
                # fall down the ladder toward the host net.
                if isinstance(exc, DeviceMemoryError):
                    report.oom_failures += 1
                else:
                    report.launch_failures += 1
                if attempt >= policy.max_retries:
                    break
                attempt += 1
                report.retries += 1
                delay = policy.backoff(attempt)
                if delay > 0:
                    report.backoff_total += delay
                    time.sleep(delay)
            except SharedMemoryError as exc:
                last = exc
                report.smem_rejections += 1
                break
        if pos + 1 < len(ladder):
            report.fallbacks.append((stage, meth, ladder[pos + 1]))
    assert last is not None
    raise last


def _ladder_with_host(report: BatchReport, stage: str, ladder, call,
                      restore, policy: ResiliencePolicy, host) -> None:
    """Run the kernel ladder with the host reference algorithm as the net.

    When every rung is exhausted — a storm that rejects even the
    reference kernels — the stage finishes on the host (``gbtf2`` /
    ``gbtrs_unblocked``), which the design-equivalence tests pin as
    bit-identical to the reference kernels.  With the net in place the
    resilient drivers raise only for argument errors.
    """
    try:
        _run_ladder(report, stage, ladder, call, restore, policy)
    except (DeviceError, DeviceMemoryError, SharedMemoryError) as exc:
        if (isinstance(exc, (DeviceLostError, KernelHangError))
                and device_fault_escalation_active()):
            raise
        restore()
        host()
        report.fallbacks.append((stage, ladder[-1], HOST_FALLBACK))
        report.methods[stage] = HOST_FALLBACK


def _vec_for(method: str, vectorize):
    """Downgrade ``vectorize=True`` on the reference rung.

    The reference designs have no batch-interleaved path and reject
    ``vectorize=True`` eagerly; a fallback that lands there must not turn
    a recoverable device fault into an argument error.
    """
    return None if (vectorize and method == "reference") else vectorize


def _gbtrf_ladder(method: str, device, m, n, kl, ku, itemsize):
    if method == "auto":
        method = select_gbtrf_method(device, m, n, kl, ku, itemsize)
    return _GBTRF_LADDER[_GBTRF_LADDER.index(method):]


def _gbtrs_ladder(method: str):
    if method == "auto":
        method = "blocked"
    return _GBTRS_LADDER[_GBTRS_LADDER.index(method):]


# --- lane health -----------------------------------------------------------

def _lane_nonfinite(mat, kl: int, ku: int) -> bool:
    """Non-finite anywhere in the factor-relevant rows of one band matrix.

    Rows past ``2*kl + ku + 1`` are caller padding the kernels never
    touch; scanning them would quarantine lanes for garbage we did not
    produce.
    """
    rows = ldab_for_factor(kl, ku)
    return not bool(np.all(np.isfinite(mat[:rows])))


def _pivot_growth(fact, orig, kl: int, ku: int) -> float:
    """Pivot growth ``max|U| / max|A|`` of one factored lane.

    ``U`` occupies rows ``0 .. kl+ku`` of the factor layout.  Returns 0
    for an all-zero input; NaN factors yield NaN, which compares False
    against any threshold (those lanes are already quarantined as
    corrupted).
    """
    rows = ldab_for_factor(kl, ku)
    denom = float(np.max(np.abs(orig[:rows]))) if orig.size else 0.0
    if denom == 0.0:
        return 0.0
    return float(np.max(np.abs(fact[:kl + ku + 1])) / denom)


# --- quarantine re-runs ----------------------------------------------------

def _reference_refactor(report, stage, m, n, kl, ku, sub_mats, sub_piv,
                        sub_info, sub_snap, device, stream, policy):
    """Re-factor quarantined lanes through the reference design.

    Tries the reference kernels (with the usual retry budget); if the
    fault storm takes those down too, the host net of
    :func:`_ladder_with_host` finishes the lanes.
    """
    def restore():
        for a, s in zip(sub_mats, sub_snap):
            a[...] = s
        for p in sub_piv:
            p[...] = 0
        sub_info[...] = 0

    def attempt(meth):
        gbtrf_batch(m, n, kl, ku, sub_mats, sub_piv, sub_info,
                    batch=len(sub_mats), device=device, stream=stream,
                    method="reference", vectorize=None)

    def host():
        for j, (a, p) in enumerate(zip(sub_mats, sub_piv)):
            _, inf = gbtf2(m, n, kl, ku, a, p)
            sub_info[j] = inf

    _ladder_with_host(report, stage, ("reference",), attempt, restore,
                      policy, host)


def _reference_resolve(report, stage, trans, n, kl, ku, nrhs, sub_mats,
                       sub_piv, sub_rhs, sub_snap_b, device, stream, policy):
    """Re-solve recovered lanes through the reference design (or host)."""
    def restore():
        for b, s in zip(sub_rhs, sub_snap_b):
            b[...] = s

    def attempt(meth):
        gbtrs_batch(trans, n, kl, ku, nrhs, sub_mats, sub_piv, sub_rhs,
                    batch=len(sub_mats), device=device, stream=stream,
                    method="reference", vectorize=None)

    def host():
        for a, p, b in zip(sub_mats, sub_piv, sub_rhs):
            gbtrs_unblocked(trans, n, kl, ku, a, p, b)

    _ladder_with_host(report, stage, ("reference",), attempt, restore,
                      policy, host)


# --- resilient drivers -----------------------------------------------------

def gbtrf_batch_resilient(m, n, kl, ku, a_array, pv_array=None, info=None, *,
                          batch: int | None = None,
                          device: DeviceSpec = H100_PCIE, stream=None,
                          method: str = "auto", nb: int | None = None,
                          threads: int | None = None,
                          vectorize: bool | None = None,
                          policy: ResiliencePolicy | None = None):
    """Self-healing :func:`~repro.core.gbtrf.gbtrf_batch`.

    Returns ``(pivots, info, report)``.  Healthy lanes are bit-identical
    to a fault-free call (every gbtrf design is bit-identical, and retries
    restore the operands from snapshots before re-running).
    """
    policy = policy or ResiliencePolicy()
    check_arg(method in ("auto",) + _GBTRF_LADDER, 14,
              f"method must be one of {('auto',) + _GBTRF_LADDER}, "
              f"got {method!r}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(m, n, kl, ku, mats, batch=batch)
    mn = min(m, n)
    pivots = ensure_pivots(pv_array, batch, mn, arg_pos=7, zero=True)
    info = ensure_info(info, batch, arg_pos=8)
    report = BatchReport("gbtrf", batch, method_requested=method, info=info)
    if batch == 0 or mn == 0:
        return pivots, info, report

    snap_a = [a.copy() for a in mats]
    ladder = _gbtrf_ladder(method, device, m, n, kl, ku,
                           mats[0].dtype.itemsize)

    def restore():
        for a, s in zip(mats, snap_a):
            a[...] = s
        for p in pivots:
            p[...] = 0
        info[...] = 0

    def attempt(meth):
        gbtrf_batch(m, n, kl, ku, mats, pivots, info, batch=batch,
                    device=device, stream=stream, method=meth, nb=nb,
                    threads=threads, vectorize=_vec_for(meth, vectorize))

    def host():
        for j, (a, p) in enumerate(zip(mats, pivots)):
            _, inf = gbtf2(m, n, kl, ku, a, p)
            info[j] = inf

    _ladder_with_host(report, "gbtrf", ladder, attempt, restore, policy,
                      host)

    singular = [k for k in range(batch) if info[k] > 0]
    corrupted = [k for k in range(batch)
                 if info[k] <= 0 and _lane_nonfinite(mats[k], kl, ku)]
    bad = sorted(singular + corrupted)
    if bad:
        report.quarantined = tuple(bad)
        report.singular = tuple(singular)
        report.corrupted = tuple(corrupted)
        # Rewind the quarantined lanes to their pristine inputs before the
        # reference re-run (the gbsv/gbtrs drivers do the same); without
        # this a poisoned lane would be re-factored from its NaNs.
        for k in bad:
            mats[k][...] = snap_a[k]
            pivots[k][...] = 0
        sub_info = np.zeros(len(bad), dtype=np.int64)
        _reference_refactor(report, "quarantine:gbtrf", m, n, kl, ku,
                            [mats[k] for k in bad],
                            [pivots[k] for k in bad], sub_info,
                            [snap_a[k] for k in bad], device, stream, policy)
        unrecovered = []
        for j, k in enumerate(bad):
            info[k] = sub_info[j]
            if sub_info[j] == 0 and _lane_nonfinite(mats[k], kl, ku):
                unrecovered.append(k)
        report.unrecovered = tuple(unrecovered)
        report.singular = tuple(k for k in bad if info[k] > 0)
    return pivots, info, report


def gbtrs_batch_resilient(trans, n, kl, ku, nrhs, a_array, pv_array,
                          b_array, info=None, *, batch: int | None = None,
                          device: DeviceSpec = H100_PCIE, stream=None,
                          method: str = "auto", nb: int | None = None,
                          threads: int | None = None,
                          rhs_tile: int | None = None,
                          vectorize: bool | None = None,
                          policy: ResiliencePolicy | None = None):
    """Self-healing :func:`~repro.core.gbtrs.gbtrs_batch`.

    Returns ``(info, report)``.  Lanes whose solution comes back
    non-finite are restored and re-solved through the reference design;
    a lane that stays non-finite (its factors or RHS are themselves
    non-finite) is reported as unrecovered — ``info`` keeps LAPACK
    semantics (``gbtrs`` never signals numerical singularity).
    """
    policy = policy or ResiliencePolicy()
    trans = Trans.from_any(trans)
    check_arg(method in ("auto",) + _GBTRS_LADDER, 14,
              f"method must be one of {('auto',) + _GBTRS_LADDER}, "
              f"got {method!r}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=6)
    check_gb_args(n, n, kl, ku, mats, batch=batch, ldab_pos=7)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=8)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=9)
    info = ensure_info(info, batch, arg_pos=11)
    report = BatchReport("gbtrs", batch, method_requested=method, info=info)
    if batch == 0 or n == 0 or nrhs == 0:
        return info, report

    # Factors and pivots are read-only inputs to the solve, but a memory
    # fault can still corrupt them mid-flight; snapshot both operands so
    # quarantined lanes can be restored wholesale.
    snap_a = [a.copy() for a in mats]
    snap_b = [b.copy() for b in rhs]

    def restore():
        for b, s in zip(rhs, snap_b):
            b[...] = s

    def attempt(meth):
        gbtrs_batch(trans, n, kl, ku, nrhs, mats, pivots, rhs, batch=batch,
                    device=device, stream=stream, method=meth, nb=nb,
                    threads=threads, rhs_tile=rhs_tile,
                    vectorize=_vec_for(meth, vectorize))

    def host():
        for a, p, b in zip(mats, pivots, rhs):
            gbtrs_unblocked(trans, n, kl, ku, a, p, b)

    _ladder_with_host(report, "gbtrs", _gbtrs_ladder(method), attempt,
                      restore, policy, host)

    bad = [k for k in range(batch)
           if not bool(np.all(np.isfinite(rhs[k])))
           or _lane_nonfinite(mats[k], kl, ku)]
    if bad:
        report.quarantined = tuple(bad)
        report.corrupted = tuple(bad)
        for k in bad:
            mats[k][...] = snap_a[k]
            rhs[k][...] = snap_b[k]
        _reference_resolve(report, "quarantine:gbtrs", trans, n, kl, ku,
                           nrhs, [mats[k] for k in bad],
                           [pivots[k] for k in bad],
                           [rhs[k] for k in bad],
                           [snap_b[k] for k in bad], device, stream, policy)
        report.unrecovered = tuple(
            k for k in bad if not bool(np.all(np.isfinite(rhs[k]))))
    return info, report


def gbsv_batch_resilient(n, kl, ku, nrhs, a_array, pv_array, b_array,
                         info=None, *, batch: int | None = None,
                         device: DeviceSpec = H100_PCIE, stream=None,
                         method: str = "auto",
                         vectorize: bool | None = None,
                         policy: ResiliencePolicy | None = None):
    """Self-healing :func:`~repro.core.gbsv.gbsv_batch`.

    Returns ``(pivots, info, report)``.  The fused single-kernel path
    (when selected) degrades to the standard two-stage path on failure;
    each stage of the standard path runs its own retry/fallback ladder.
    Quarantined lanes are re-run from snapshots through the reference
    design; recovered lanes quarantined for non-finite output — or whose
    pivot growth exceeds ``policy.growth_threshold`` — get one
    :func:`~repro.core.gbrfs.gbrfs` refinement pass.  Singular lanes keep
    LAPACK semantics: factors and pivots are written, ``info > 0``, and
    ``B`` is left unchanged.
    """
    policy = policy or ResiliencePolicy()
    check_arg(method in ("auto", "fused", "standard"), 12,
              f"method must be one of ('auto', 'fused', 'standard'), "
              f"got {method!r}")
    check_arg(nrhs >= 0, 4, f"nrhs must be non-negative, got {nrhs}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(n, n, kl, ku, mats, batch=batch)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=6, zero=True)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=7)
    info = ensure_info(info, batch, arg_pos=8)
    report = BatchReport("gbsv", batch, method_requested=method, info=info)
    if batch == 0 or n == 0:
        return pivots, info, report

    snap_a = [a.copy() for a in mats]
    snap_b = [b.copy() for b in rhs]
    if method == "auto":
        method = select_gbsv_method(device, n, kl, ku, nrhs,
                                    mats[0].dtype.itemsize)

    def restore_all():
        for a, s in zip(mats, snap_a):
            a[...] = s
        for b, s in zip(rhs, snap_b):
            b[...] = s
        for p in pivots:
            p[...] = 0
        info[...] = 0

    fused_done = False
    if method == "fused" and nrhs >= 1:
        def attempt_fused(meth):
            gbsv_batch(n, kl, ku, nrhs, mats, pivots, rhs, info,
                       batch=batch, device=device, stream=stream,
                       method="fused", vectorize=vectorize)

        try:
            _run_ladder(report, "gbsv", ("fused",), attempt_fused,
                        restore_all, policy)
            fused_done = True
        except (DeviceError, DeviceMemoryError, SharedMemoryError) as exc:
            if (isinstance(exc, (DeviceLostError, KernelHangError))
                    and device_fault_escalation_active()):
                raise
            report.fallbacks.append(("gbsv", "fused", "standard"))
            restore_all()

    if not fused_done:
        ladder = _gbtrf_ladder("auto", device, n, n, kl, ku,
                               mats[0].dtype.itemsize)

        def restore_f():
            for a, s in zip(mats, snap_a):
                a[...] = s
            for p in pivots:
                p[...] = 0
            info[...] = 0

        def attempt_f(meth):
            gbtrf_batch(n, n, kl, ku, mats, pivots, info, batch=batch,
                        device=device, stream=stream, method=meth,
                        vectorize=_vec_for(meth, vectorize))

        def host_f():
            for j, (a, p) in enumerate(zip(mats, pivots)):
                _, inf = gbtf2(n, n, kl, ku, a, p)
                info[j] = inf

        _ladder_with_host(report, "gbtrf", ladder, attempt_f, restore_f,
                          policy, host_f)

        if nrhs:
            # Solve only the lanes the factorization left healthy; the
            # singular and corrupted ones go through quarantine below.
            # (Per-lane results do not depend on sub-batch composition —
            # both execution paths are lane-independent by contract.)
            ok = [k for k in range(batch)
                  if info[k] == 0 and not _lane_nonfinite(mats[k], kl, ku)]
            if ok:
                sub_m = [mats[k] for k in ok]
                sub_p = [pivots[k] for k in ok]
                sub_b = [rhs[k] for k in ok]

                def restore_s():
                    for k in ok:
                        rhs[k][...] = snap_b[k]

                def attempt_s(meth):
                    gbtrs_batch(Trans.NO_TRANS, n, kl, ku, nrhs, sub_m,
                                sub_p, sub_b, batch=len(ok), device=device,
                                stream=stream, method=meth,
                                vectorize=_vec_for(meth, vectorize))

                def host_s():
                    for a, p, b in zip(sub_m, sub_p, sub_b):
                        gbtrs_unblocked(Trans.NO_TRANS, n, kl, ku, a, p, b)

                _ladder_with_host(report, "gbtrs", _GBTRS_LADDER,
                                  attempt_s, restore_s, policy, host_s)

    # -- quarantine ---------------------------------------------------------
    singular = [k for k in range(batch) if info[k] > 0]
    corrupted = []
    for k in range(batch):
        if info[k] > 0:
            continue
        if _lane_nonfinite(mats[k], kl, ku):
            corrupted.append(k)
        elif nrhs and not bool(np.all(np.isfinite(rhs[k]))):
            corrupted.append(k)
    bad = sorted(singular + corrupted)
    if not bad:
        return pivots, info, report
    report.quarantined = tuple(bad)
    report.singular = tuple(singular)
    report.corrupted = tuple(corrupted)

    for k in bad:
        mats[k][...] = snap_a[k]
        pivots[k][...] = 0
        rhs[k][...] = snap_b[k]
    sub_info = np.zeros(len(bad), dtype=np.int64)
    _reference_refactor(report, "quarantine:gbtrf", n, n, kl, ku,
                        [mats[k] for k in bad], [pivots[k] for k in bad],
                        sub_info, [snap_a[k] for k in bad], device, stream,
                        policy)
    unrecovered = []
    recovered = []
    for j, k in enumerate(bad):
        info[k] = sub_info[j]
        if sub_info[j] > 0:
            # Genuinely singular: factors + pivots stand, B stays as the
            # caller supplied it (LAPACK semantics).
            rhs[k][...] = snap_b[k]
        elif _lane_nonfinite(mats[k], kl, ku):
            unrecovered.append(k)
        else:
            recovered.append(k)
    if nrhs and recovered:
        _reference_resolve(report, "quarantine:gbtrs", Trans.NO_TRANS, n,
                           kl, ku, nrhs, [mats[k] for k in recovered],
                           [pivots[k] for k in recovered],
                           [rhs[k] for k in recovered],
                           [snap_b[k] for k in recovered], device, stream,
                           policy)
        refined = []
        corrupt_set = set(corrupted)
        for k in recovered:
            if not bool(np.all(np.isfinite(rhs[k]))):
                unrecovered.append(k)
                continue
            if not policy.refine:
                continue
            growth = _pivot_growth(mats[k], snap_a[k], kl, ku)
            if k in corrupt_set or growth > policy.growth_threshold:
                gbrfs(n, kl, ku, snap_a[k], mats[k], pivots[k], snap_b[k],
                      rhs[k], max_iter=1)
                refined.append(k)
        report.refined = tuple(refined)
    report.unrecovered = tuple(sorted(unrecovered))
    report.singular = tuple(k for k in bad if info[k] > 0)
    return pivots, info, report
