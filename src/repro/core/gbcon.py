"""Condition-number estimation from band LU factors (LAPACK ``GBCON``).

Estimates ``rcond = 1 / (||A|| * ||A^{-1}||)`` without forming the inverse,
using the Hager/Higham one-norm estimator (LAPACK's ``DLACN2``): a few
solves with the already-computed factors bound ``||A^{-1}||`` from below.
The paper's PELE use case explicitly worries about "a large range of
condition numbers"; pairing the batched factorization with a batched
condition estimate is how a production stack surfaces that risk to users.
"""

from __future__ import annotations

import numpy as np

from ..band.layout import normalize_layout
from ..errors import check_arg
from ..gpusim.kernel import note_layout_conversion
from ..types import Trans
from .batch_args import (
    as_matrix_list,
    check_gb_args,
    convert_batch_layout,
    ensure_pivots,
)
from .solve_blocks import gbtrs_unblocked

__all__ = ["onenorm_inv_estimate", "gbcon", "gbcon_batch"]

_MAX_ITER = 5


def onenorm_inv_estimate(n: int, solve, solve_t) -> float:
    """Estimate ``||A^{-1}||_1`` given solve callbacks (Hager's algorithm).

    ``solve(v)`` must return ``A^{-1} v`` and ``solve_t(v)`` must return
    ``A^{-T} v`` (new arrays or in-place, their return value is used).
    The estimate is a lower bound that Higham reports is almost always
    within a factor of ~3 of the true norm.
    """
    if n == 0:
        return 0.0
    x = np.full(n, 1.0 / n)
    est = 0.0
    for _ in range(_MAX_ITER):
        y = solve(x.copy())
        est = float(np.abs(y).sum())
        xi = np.sign(y)
        xi[xi == 0] = 1.0
        z = solve_t(xi)
        j = int(np.argmax(np.abs(z)))
        if np.abs(z[j]) <= float(z @ x):
            break
        x = np.zeros(n)
        x[j] = 1.0
    # Higham's refinement: also try the alternating "ramp" vector, which
    # catches adversarial cases where the power-like iteration stalls.
    v = np.array([(-1.0) ** i * (1.0 + i / max(n - 1, 1))
                  for i in range(n)])
    y = solve(v)
    alt = 2.0 * float(np.abs(y).sum()) / (3.0 * n)
    return max(est, alt)


def gbcon(norm: str, n: int, kl: int, ku: int, ab_fact: np.ndarray,
          ipiv: np.ndarray, anorm: float) -> float:
    """Reciprocal condition estimate from ``gbtrf`` factors.

    Parameters
    ----------
    norm:
        ``"1"``/``"O"`` for the one norm, ``"I"`` for the infinity norm
        (estimated via the transposed solves, as LAPACK does).
    anorm:
        The corresponding norm of the *original* matrix (use
        :func:`repro.band.ops.band_norm_1` / ``band_norm_inf`` before
        factorizing).

    Returns ``rcond`` in ``[0, 1]``; 0 for an exactly singular factor.
    """
    norm = norm.upper()
    check_arg(norm in ("1", "O", "I"), 1,
              f"norm must be '1', 'O' or 'I', got {norm!r}")
    if n == 0:
        return 1.0
    if anorm == 0.0:
        return 0.0
    kv = kl + ku
    if (np.asarray(ab_fact)[kv, :n] == 0).any():
        return 0.0       # singular U: condition is infinite

    def solve(v):
        return gbtrs_unblocked(Trans.NO_TRANS, n, kl, ku, ab_fact, ipiv,
                               v[:, None])[:, 0]

    def solve_t(v):
        return gbtrs_unblocked(Trans.TRANS, n, kl, ku, ab_fact, ipiv,
                               v[:, None])[:, 0]

    if norm == "I":
        # ||A^{-1}||_inf == ||A^{-T}||_1: swap the solve roles.
        solve, solve_t = solve_t, solve
    inv_norm = onenorm_inv_estimate(n, solve, solve_t)
    if inv_norm == 0.0:
        return 0.0
    return min(1.0, 1.0 / (anorm * inv_norm))


def gbcon_batch(norm: str, n: int, kl: int, ku: int, a_array, pv_array,
                anorms, *, batch: int | None = None,
                layout: str | None = None) -> np.ndarray:
    """Batched :func:`gbcon` over factored matrices.

    ``anorms`` is a length-``batch`` sequence of original-matrix norms.
    Returns the ``rcond`` array.

    The factor batch may arrive lane-major or batch-interleaved (SoA,
    docs/LAYOUTS.md); estimation indexes per-lane views, so both run
    natively.  ``layout`` follows the driver contract: ``None`` runs in
    the arriving layout, ``'interleaved'``/``'soa'`` or
    ``'lane-major'``/``'aos'`` stage the (read-only) factors into that
    layout exactly once at the batch boundary.
    """
    if batch is None:
        batch = len(a_array)
    if normalize_layout(layout) is not None:
        conv = convert_batch_layout(normalize_layout(layout), (a_array,),
                                    batch=batch, outputs=(False,))
        if conv is not None:
            (a_conv,), _writeback, moved = conv
            note_layout_conversion(moved)
            return gbcon_batch(norm, n, kl, ku, a_conv, pv_array, anorms,
                               batch=batch)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(n, n, kl, ku, mats, batch=batch)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=6)
    check_arg(len(anorms) == batch, 7,
              f"anorms has {len(anorms)} entries, expected {batch}")
    out = np.zeros(batch)
    for k in range(batch):
        out[k] = gbcon(norm, n, kl, ku, mats[k], pivots[k],
                       float(anorms[k]))
    return out
