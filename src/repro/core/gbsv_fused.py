"""Fused factorize-and-solve kernel (paper Section 7).

For very small systems, a single kernel performs the band LU factorization
on the augmented matrix ``[A|B]`` held entirely in shared memory.  Applying
every (pivot swap, scale, rank-1 update) column step to the ``B`` columns
as well *implicitly performs the forward triangular solve*; after the
factorization, the backward solve runs in shared memory too, and the
factors, pivots and solution are written out once.  This maximises data
reuse and bandwidth utilisation for very small sizes — the paper enables it
for systems of order 64 or less with a single right-hand side.

Following LAPACK ``DGBSV`` semantics, if the factorization reports a
singular ``U`` the solution is not computed: the factors and pivots are
still written back but ``B`` is left unchanged in global memory.

The kernel also implements the batch-interleaved path
(:meth:`~repro.gpusim.kernel.Kernel.run_batch_vectorized`): uniform
contiguous ``[A|B]`` batches run every column step (paper Section 5.1 building
blocks plus the paper Section 6 solve steps) across the whole batch at once
with per-lane ``active`` masks for singular problems, bit-identical to
the per-block body (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import numpy as np

from ..band.layout import BandLayout
from ..gpusim.costmodel import BlockCost
from ..gpusim.kernel import Kernel, SharedMemory
from .batch_args import is_uniform_stack, soa_stageable, stage_stack
from .costs import gbsv_fused_cost
from .gbtf2 import (
    init_fillin,
    init_fillin_batched,
    pivot_search,
    pivot_search_batched,
    rank_one_update,
    rank_one_update_batched,
    scale_column,
    scale_column_batched,
    set_fillin,
    set_fillin_batched,
    swap_right,
    swap_right_batched,
    update_bound,
    update_bound_batched,
)
from .gbtrf_fused import default_fused_threads
from .solve_blocks import (
    backward_step,
    backward_step_batched,
    forward_swap,
    forward_swap_batched,
    forward_update,
    forward_update_batched,
)

__all__ = ["FusedGbsvKernel"]


class FusedGbsvKernel(Kernel):
    """Batched in-shared-memory factorize-and-solve on ``[A|B]``."""

    name = "gbsv_fused"

    def __init__(self, n: int, kl: int, ku: int, nrhs: int,
                 mats: list[np.ndarray], pivots: list[np.ndarray],
                 rhs: list[np.ndarray], info: np.ndarray, *,
                 threads: int | None = None):
        self.n, self.kl, self.ku, self.nrhs = n, kl, ku, nrhs
        self.layout = BandLayout(n, n, kl, ku)
        self.mats = mats
        self.pivots = pivots
        self.rhs = rhs
        self.info = info
        self.nthreads = threads or default_fused_threads(kl, ku)
        self.itemsize = mats[0].dtype.itemsize if mats else 8

    def grid(self) -> int:
        return len(self.mats)

    def threads(self) -> int:
        return self.nthreads

    def smem_bytes(self) -> int:
        augmented = self.layout.fused_elems() + self.n * self.nrhs
        return augmented * self.itemsize

    def block_cost(self) -> BlockCost:
        return gbsv_fused_cost(self.n, self.kl, self.ku, self.nrhs,
                               self.nthreads, self.itemsize)

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        n, kl, ku = self.n, self.kl, self.ku
        kv = kl + ku
        ab = self.mats[block_id]
        piv = self.pivots[block_id]
        b = self.rhs[block_id]
        ldab = self.layout.ldab_factor

        tile = smem.alloc((ldab, n), dtype=ab.dtype)
        bt = smem.alloc((n, self.nrhs), dtype=b.dtype)
        tile[...] = ab[:ldab, :]
        bt[...] = b

        # Band LU on the augmented [A|B]: every column step also swaps and
        # updates the RHS rows, which is the forward solve in disguise.
        init_fillin(tile, n, kl, ku)
        ju = -1
        info = 0
        for j in range(n):
            set_fillin(tile, n, kl, ku, j)
            jp = pivot_search(tile, n, kl, ku, j)
            piv[j] = j + jp
            if tile[kv + jp, j] != 0:
                ju = update_bound(n, kl, ku, j, jp, ju)
                swap_right(tile, kl, ku, j, jp, ju)
                forward_swap(bt, j, j + jp)
                scale_column(tile, n, kl, ku, j)
                rank_one_update(tile, n, kl, ku, j, ju)
                forward_update(tile, n, kl, ku, j, bt)
            elif info == 0:
                info = j + 1

        ab[:ldab, :] = tile
        self.info[block_id] = info
        if info != 0:
            return  # LAPACK GBSV: leave B untouched on singularity
        # Backward solve, still in shared memory.
        for j in range(n - 1, -1, -1):
            backward_step(tile, n, kl, ku, j, bt)
        b[...] = bt

    def can_batch_vectorize(self) -> bool:
        return is_uniform_stack(self.mats) and is_uniform_stack(self.rhs)

    def can_soa_vectorize(self) -> bool:
        return soa_stageable(self.mats, self.rhs)

    def pack_operands(self) -> tuple:
        return (self.mats, self.rhs)

    def run_batch_vectorized(self, nblocks: int, smem: SharedMemory) -> None:
        n, kl, ku = self.n, self.kl, self.ku
        kv = kl + ku
        ldab = self.layout.ldab_factor
        dtype = self.mats[0].dtype

        # Interleaved operands stage whole-stack (lane-contiguous copy);
        # lane-major batches keep the per-lane staging loop.
        abst, a_inplace = stage_stack(self.mats, nblocks, rows=ldab)
        btst, b_inplace = stage_stack(self.rhs, nblocks)
        soa = a_inplace or b_inplace
        if soa:
            tiles = np.moveaxis(
                smem.alloc((ldab, n, nblocks), dtype=dtype), 2, 0)
            bts = np.moveaxis(
                smem.alloc((n, self.nrhs, nblocks),
                           dtype=self.rhs[0].dtype), 2, 0)
            tiles[...] = abst
            bts[...] = btst
        else:
            tiles = smem.alloc((nblocks, ldab, n), dtype=dtype)
            bts = smem.alloc((nblocks, n, self.nrhs),
                             dtype=self.rhs[0].dtype)
            for k in range(nblocks):
                tiles[k] = self.mats[k][:ldab, :]
                bts[k] = self.rhs[k]

        bidx = np.arange(nblocks)
        pivs = np.zeros((nblocks, n), dtype=np.int64)
        info = np.zeros(nblocks, dtype=np.int64)
        init_fillin_batched(tiles, n, kl, ku)
        ju = np.full(nblocks, -1, dtype=np.int64)
        for j in range(n):
            set_fillin_batched(tiles, n, kl, ku, j)
            jp = pivot_search_batched(tiles, n, kl, ku, j)
            pivs[:, j] = j + jp
            active = tiles[bidx, kv + jp, j] != 0
            ju = update_bound_batched(n, kl, ku, j, jp, ju, active)
            swap_right_batched(tiles, kl, ku, j, jp, ju, active=active)
            forward_swap_batched(bts, j, np.where(active, j + jp, j))
            scale_column_batched(tiles, n, kl, ku, j, active=active)
            rank_one_update_batched(tiles, n, kl, ku, j, ju, active=active)
            forward_update_batched(tiles, n, kl, ku, j, bts, active=active)
            info[...] = np.where(~active & (info == 0), j + 1, info)

        if soa and a_inplace:
            abst[...] = tiles
        for k in range(nblocks):
            if not (soa and a_inplace):
                self.mats[k][:ldab, :] = tiles[k]
            self.pivots[k][:] = pivs[k]
        self.info[:nblocks] = info
        ok = info == 0
        if not ok.any():
            return  # LAPACK GBSV: leave B untouched on singularity
        # Backward solve on the non-singular subset only (gathered copy, so
        # no divide-by-zero lanes; singular problems keep B untouched).
        sub_t = tiles[ok]
        sub_b = bts[ok]
        for j in range(n - 1, -1, -1):
            backward_step_batched(sub_t, n, kl, ku, j, sub_b)
        if soa and b_inplace and bool(ok.all()):
            btst[...] = sub_b
            return
        for i, k in enumerate(np.flatnonzero(ok)):
            self.rhs[k][...] = sub_b[i]
