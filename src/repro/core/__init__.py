"""Core: the paper's batched band LU factorization and solve."""

from .batched import (
    cgbsv_batch, cgbtrf_batch, cgbtrs_batch,
    dgbsv_batch, dgbtrf_batch, dgbtrs_batch,
    gbsv_vbatch, gbtrf_vbatch,
    sgbsv_batch, sgbtrf_batch, sgbtrs_batch,
    zgbsv_batch, zgbtrf_batch, zgbtrs_batch,
)
from .gbcon import gbcon, gbcon_batch, onenorm_inv_estimate
from .gbequ import gbequ, gbequ_batch, laqgb, laqgb_batch
from .gbmv_batch import BatchedGbmvKernel, gbmv_batch
from .gbrfs import RefinementResult, gbrfs, gbrfs_batch, gbsv_refined_batch
from .gbsv import gbsv, gbsv_batch, select_gbsv_method
from .gbsv_fused import FusedGbsvKernel
from .gbtf2 import gbtf2
from .gbtrf import gbtrf, gbtrf_batch, select_gbtrf_method
from .gbtrf_fused import FusedGbtrfKernel
from .gbtrf_reference import gbtrf_reference_batch
from .gbtrf_vbatch_kernel import VbatchGbtrfKernel, VbatchProblem, gbtrf_vbatch_fused
from .gbtrf_window import SlidingWindowGbtrfKernel
from .gbtrs import gbtrs, gbtrs_batch
from .memory_plan import (
    MemoryPlan,
    estimate_footprint,
    estimate_vbatch_footprint,
    plan_batch,
)
from .pipeline import PipelineResult, last_pipeline_result
from .resilience import (
    BatchReport,
    ResiliencePolicy,
    gbsv_batch_resilient,
    gbtrf_batch_resilient,
    gbtrs_batch_resilient,
    merge_reports,
)
from .opcount import OpCount, gbtrf_gflops, gbtrf_opcount, gbtrf_opcount_batch, gbtrf_opcount_bounds
from .gbtrs_blocked import BlockedBackwardKernel, BlockedForwardKernel
from .gbtrs_reference import gbtrs_reference_batch
from .solve_blocks import gbtrs_unblocked
from .verify import (
    VerifyPolicy,
    as_verify_policy,
    verified_gbsv_batch,
    verified_gbtrf_batch,
    verified_gbtrs_batch,
)
from .specialize import (
    BandSpecialization,
    clear_specialization_cache,
    create_specialization,
    destroy_specialization,
    specialization_cache_info,
)

__all__ = [
    "BandSpecialization", "BatchReport", "BlockedBackwardKernel",
    "BlockedForwardKernel", "MemoryPlan", "ResiliencePolicy",
    "estimate_footprint", "estimate_vbatch_footprint", "plan_batch",
    "FusedGbsvKernel", "FusedGbtrfKernel", "PipelineResult",
    "SlidingWindowGbtrfKernel", "last_pipeline_result",
    "cgbsv_batch", "cgbtrf_batch", "cgbtrs_batch",
    "clear_specialization_cache", "create_specialization",
    "destroy_specialization", "dgbsv_batch", "dgbtrf_batch", "dgbtrs_batch",
    "BatchedGbmvKernel", "OpCount", "RefinementResult", "gbcon",
    "gbcon_batch", "gbtrf_gflops", "gbtrf_opcount", "gbtrf_opcount_batch",
    "gbtrf_opcount_bounds",
    "gbequ", "gbequ_batch", "gbmv_batch",
    "gbrfs", "gbrfs_batch",
    "gbsv", "gbsv_batch", "gbsv_refined_batch", "gbsv_vbatch", "gbtf2",
    "gbtrf", "gbtrf_batch", "laqgb", "laqgb_batch", "onenorm_inv_estimate",
    "gbsv_batch_resilient", "gbtrf_batch_resilient",
    "gbtrs_batch_resilient", "merge_reports",
    "gbtrf_reference_batch", "gbtrf_vbatch", "gbtrf_vbatch_fused",
    "VbatchGbtrfKernel", "VbatchProblem", "gbtrs", "gbtrs_batch",
    "gbtrs_reference_batch", "gbtrs_unblocked",
    "select_gbsv_method", "select_gbtrf_method",
    "sgbsv_batch", "sgbtrf_batch", "sgbtrs_batch",
    "specialization_cache_info",
    "VerifyPolicy", "as_verify_policy", "verified_gbsv_batch",
    "verified_gbtrf_batch", "verified_gbtrs_batch",
    "zgbsv_batch", "zgbtrf_batch", "zgbtrs_batch",
]
