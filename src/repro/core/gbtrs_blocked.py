"""Blocked sliding-window triangular solves (paper Section 6, Figure 6).

Both kernels walk the factors ``nb`` columns at a time, caching a window of
the RHS in shared memory:

* **Forward**: starts from the first ``nb`` columns of ``L`` and the top of
  the RHS.  At most ``nb + kl`` RHS rows are cached — enough for all the
  pivot swaps (bounded by ``j + kl``) and rank-1 updates of those columns.
  After a block, the top ``nb`` rows are final: they are written to global
  memory and the remaining rows shift up.
* **Backward**: starts from the *last* ``nb`` columns of ``U`` and the
  bottom of the RHS, caching at most ``nb + kv`` rows (updates reach
  ``kv = kl + ku`` rows above the solved one).  Solved rows are written
  back and the remainder shifts down.

The ``nb`` columns of the factors are "cached in the register file" in the
paper's CUDA/HIP kernels; functionally we read them straight from the
matrix, and the cost formulas charge them as global traffic.

Like the factorization kernels (paper Sections 5.2-5.4), all four kernels
— forward, backward, and both transposed stages — carry a
batch-interleaved execution path
(:meth:`~repro.gpusim.kernel.Kernel.run_batch_vectorized`): every problem
advances through the identical window schedule with one numpy operation
per step, bit-identical to the per-block bodies (see
``docs/PERFORMANCE.md``).  Uniform contiguous stacks stage directly;
scattered/pointer-array batches go through the gather/pack stage
(:meth:`~repro.gpusim.kernel.Kernel.pack_operands`).
"""

from __future__ import annotations

import numpy as np

from ..band.layout import BandLayout
from ..gpusim.costmodel import BlockCost
from ..gpusim.kernel import Kernel, SharedMemory
from .batch_args import is_uniform_stack, soa_stageable, stage_stack
from .costs import gbtrs_backward_cost, gbtrs_forward_cost
from .solve_blocks import (
    backward_step,
    backward_step_batched,
    forward_step,
    forward_swap_batched,
    forward_update_batched,
    transL_step,
    transL_step_batched,
    transU_step,
    transU_step_batched,
)

__all__ = ["BlockedForwardKernel", "BlockedBackwardKernel",
           "BlockedTransUKernel", "BlockedTransLKernel",
           "default_gbtrs_nb", "default_gbtrs_threads"]


def default_gbtrs_nb(kl: int, ku: int) -> int:
    """Default solve block size: amortise the shift over the overlap."""
    return min(max(2 * (kl + ku + 1), 16), 64)


def default_gbtrs_threads(kl: int, ku: int, nrhs: int) -> int:
    """Default threads: cover the update height (``kv + 1`` rows).

    Deliberately independent of ``nrhs``: the kernels keep one thread team
    per matrix and sweep it across the RHS block in rounds, so additional
    right-hand sides lengthen each column step rather than widening the
    block — the same trade the paper's kernels make (their RHS window is
    sized per column count, not per RHS count).
    """
    del nrhs
    return max(kl + 1, min(kl + ku + 1, 128), 16)


class _BlockedSolveBase(Kernel):
    def __init__(self, n: int, kl: int, ku: int, nrhs: int,
                 mats: list[np.ndarray], pivots, rhs: list[np.ndarray], *,
                 nb: int | None = None, threads: int | None = None,
                 rhs_tile: int | None = None):
        if nb is not None and nb < 1:
            raise ValueError(f"solve block size nb must be >= 1, got {nb}")
        if rhs_tile is not None and rhs_tile < 1:
            raise ValueError(f"rhs_tile must be >= 1, got {rhs_tile}")
        self.n, self.kl, self.ku, self.nrhs = n, kl, ku, nrhs
        self.mats = mats
        self.pivots = pivots
        self.rhs = rhs
        self.nb = default_gbtrs_nb(kl, ku) if nb is None else nb
        self.nthreads = (default_gbtrs_threads(kl, ku, nrhs)
                         if threads is None else threads)
        # RHS tiling: wide RHS blocks are processed `rhs_tile` columns at a
        # time, bounding the shared-memory window at the price of extra
        # passes over the factor columns.  Default: all columns in one pass.
        self.rhs_tile = nrhs if rhs_tile is None else min(rhs_tile,
                                                          max(nrhs, 1))
        self.itemsize = mats[0].dtype.itemsize if mats else 8

    def _rhs_slices(self):
        for c0 in range(0, self.nrhs, self.rhs_tile):
            yield slice(c0, min(c0 + self.rhs_tile, self.nrhs))

    def grid(self) -> int:
        return len(self.mats)

    def threads(self) -> int:
        return self.nthreads

    def _stage_batch(self, nblocks: int):
        """Stage factors, pivots and RHS of the first ``nblocks`` problems
        as ``(batch, ...)`` stacks for the batch-interleaved path.

        Interleaved (SoA) operands stage as zero-copy in-place views —
        the factors are read straight from the caller's storage and
        solved RHS rows land there directly, so :meth:`_writeback_rhs`
        becomes a no-op for them.
        """
        abst, _ = stage_stack(self.mats, nblocks)
        pivs = (np.stack([np.asarray(p) for p in self.pivots[:nblocks]])
                if self.pivots is not None else None)
        btall, self._rhs_inplace = stage_stack(self.rhs, nblocks)
        return abst, pivs, btall

    def _writeback_rhs(self, btall: np.ndarray, nblocks: int) -> None:
        if getattr(self, "_rhs_inplace", False):
            return                      # solved in place on the SoA view
        for k in range(nblocks):
            self.rhs[k][...] = btall[k]

    def can_batch_vectorize(self) -> bool:
        return is_uniform_stack(self.mats) and is_uniform_stack(self.rhs)

    def can_soa_vectorize(self) -> bool:
        return soa_stageable(self.mats, self.rhs)

    def pack_operands(self) -> tuple:
        # Factors are read-only in the solves, but staging keeps one rule
        # for every kernel: both operand batches must be packable.
        return (self.mats, self.rhs)


class BlockedForwardKernel(_BlockedSolveBase):
    """Forward solve: progressive pivoting + rank-1 updates on a RHS window."""

    name = "gbtrs_fwd_blocked"

    def smem_bytes(self) -> int:
        return (self.nb + self.kl) * self.rhs_tile * self.itemsize

    def block_cost(self) -> BlockCost:
        base = gbtrs_forward_cost(self.n, self.kl, self.ku, self.nrhs,
                                  self.nb, self.nthreads, self.itemsize)
        passes = -(-self.nrhs // self.rhs_tile) if self.nrhs else 1
        if passes <= 1:
            return base
        # Each extra pass re-reads the kl factor rows and re-pays the
        # per-column control flow.
        extra = BlockCost(
            dram_traffic=(passes - 1) * self.kl * self.n * self.itemsize,
            syncs=(passes - 1) * 2 * self.n, threads=self.nthreads)
        return base + extra

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        n, kl, ku, nb = self.n, self.kl, self.ku, self.nb
        ab = self.mats[block_id]
        piv = self.pivots[block_id]
        if kl == 0:
            return  # L is the identity: nothing to do
        rw_full = smem.alloc((nb + kl, self.rhs_tile),
                             dtype=self.rhs[block_id].dtype)
        for cs in self._rhs_slices():
            b = self.rhs[block_id][:, cs]
            rw = rw_full[:, :b.shape[1]]
            cached = min(nb + kl, n)
            rw[:cached] = b[:cached]
            jbeg = 0
            while jbeg < n:
                jend = min(jbeg + nb, n)
                for j in range(jbeg, jend):
                    forward_step(ab, n, kl, ku, j, piv, rw, row0=jbeg)
                b[jbeg:jend] = rw[:jend - jbeg]        # final rows out
                if jend >= n:
                    break
                done = jend - jbeg
                rem = cached - done
                rw[:rem] = rw[done:cached].copy()      # shift up
                lo = jbeg + cached
                hi = min(jend + nb + kl, n)
                if hi > lo:
                    rw[rem:rem + (hi - lo)] = b[lo:hi]  # next rows in
                cached = rem + max(0, hi - lo)
                jbeg = jend

    def run_batch_vectorized(self, nblocks: int, smem: SharedMemory) -> None:
        n, kl, ku, nb = self.n, self.kl, self.ku, self.nb
        if kl == 0:
            return  # L is the identity: nothing to do
        abst, pivs, btall = self._stage_batch(nblocks)
        rw_full = smem.alloc((nblocks, nb + kl, self.rhs_tile),
                             dtype=btall.dtype)
        for cs in self._rhs_slices():
            bt = btall[:, :, cs]
            rw = rw_full[:, :, :bt.shape[2]]
            cached = min(nb + kl, n)
            rw[:, :cached] = bt[:, :cached]
            jbeg = 0
            while jbeg < n:
                jend = min(jbeg + nb, n)
                for j in range(jbeg, jend):
                    forward_swap_batched(rw, j, pivs[:, j], row0=jbeg)
                    forward_update_batched(abst, n, kl, ku, j, rw, row0=jbeg)
                bt[:, jbeg:jend] = rw[:, :jend - jbeg]   # final rows out
                if jend >= n:
                    break
                done = jend - jbeg
                rem = cached - done
                rw[:, :rem] = rw[:, done:cached].copy()  # shift up
                lo = jbeg + cached
                hi = min(jend + nb + kl, n)
                if hi > lo:
                    rw[:, rem:rem + (hi - lo)] = bt[:, lo:hi]
                cached = rem + max(0, hi - lo)
                jbeg = jend
        self._writeback_rhs(btall, nblocks)


class BlockedTransUKernel(_BlockedSolveBase):
    """Transposed-solve stage 1: ``op(U)^T y = b`` (paper Section 6 layout, A^T).

    ``U^T`` is *lower* triangular with bandwidth ``kv``, so this sweeps
    forward, caching ``nb + kv`` solved rows in shared memory — the mirror
    image of the backward kernel.  ``conj=True`` solves ``U^H``.
    """

    name = "gbtrs_transU_blocked"

    def __init__(self, *args, conj: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.conj = conj

    def smem_bytes(self) -> int:
        return (self.nb + self.kl + self.ku) * self.nrhs * self.itemsize

    def block_cost(self) -> BlockCost:
        # Same access structure as the backward solve, mirrored.
        return gbtrs_backward_cost(self.n, self.kl, self.ku, self.nrhs,
                                   self.nb, self.nthreads, self.itemsize)

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        n, kl, ku, nb = self.n, self.kl, self.ku, self.nb
        kv = kl + ku
        ab = self.mats[block_id]
        b = self.rhs[block_id]
        conj = self.conj and np.iscomplexobj(ab)
        rw = smem.alloc((nb + kv, self.nrhs), dtype=b.dtype)
        jbeg = 0
        base = 0                       # global row of rw[0]
        cached = min(nb, n)
        rw[:cached] = b[:cached]
        while jbeg < n:
            jend = min(jbeg + nb, n)
            for j in range(jbeg, jend):
                transU_step(ab, n, kl, ku, j, rw, conj=conj, row0=base)
            b[jbeg:jend] = rw[jbeg - base:jend - base]
            if jend >= n:
                break
            # Keep the last kv solved rows for the next block's updates.
            base2 = max(jend - kv, 0)
            keep = jend - base2
            rw[:keep] = rw[base2 - base:jend - base].copy()
            hi = min(jend + nb, n)
            rw[keep:keep + (hi - jend)] = b[jend:hi]
            base = base2
            jbeg = jend

    def run_batch_vectorized(self, nblocks: int, smem: SharedMemory) -> None:
        n, kl, ku, nb = self.n, self.kl, self.ku, self.nb
        kv = kl + ku
        abst, _, btall = self._stage_batch(nblocks)
        conj = self.conj and np.iscomplexobj(abst)
        rw = smem.alloc((nblocks, nb + kv, self.nrhs), dtype=btall.dtype)
        jbeg = 0
        base = 0                       # global row of rw[:, 0]
        cached = min(nb, n)
        rw[:, :cached] = btall[:, :cached]
        while jbeg < n:
            jend = min(jbeg + nb, n)
            for j in range(jbeg, jend):
                transU_step_batched(abst, n, kl, ku, j, rw, conj=conj,
                                    row0=base)
            btall[:, jbeg:jend] = rw[:, jbeg - base:jend - base]
            if jend >= n:
                break
            base2 = max(jend - kv, 0)
            keep = jend - base2
            rw[:, :keep] = rw[:, base2 - base:jend - base].copy()
            hi = min(jend + nb, n)
            rw[:, keep:keep + (hi - jend)] = btall[:, jend:hi]
            base = base2
            jbeg = jend
        self._writeback_rhs(btall, nblocks)


class BlockedTransLKernel(_BlockedSolveBase):
    """Transposed-solve stage 2: ``op(L)^T x = y`` with pivots in reverse.

    ``L^T`` is unit *upper* triangular with bandwidth ``kl``; the sweep
    runs backward, caching ``nb + kl`` rows, and applies each column's row
    interchange *after* its update — the reverse of the forward
    elimination's (swap, update) pairs.
    """

    name = "gbtrs_transL_blocked"

    def __init__(self, *args, conj: bool = False, **kwargs):
        super().__init__(*args, **kwargs)
        self.conj = conj

    def smem_bytes(self) -> int:
        return (self.nb + self.kl) * self.nrhs * self.itemsize

    def block_cost(self) -> BlockCost:
        return gbtrs_forward_cost(self.n, self.kl, self.ku, self.nrhs,
                                  self.nb, self.nthreads, self.itemsize)

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        n, kl, ku, nb = self.n, self.kl, self.ku, self.nb
        ab = self.mats[block_id]
        piv = self.pivots[block_id]
        b = self.rhs[block_id]
        if kl == 0:
            return                      # L is the identity
        conj = self.conj and np.iscomplexobj(ab)
        rw = smem.alloc((nb + kl, self.nrhs), dtype=b.dtype)
        # Each block's swaps can reach kl rows past its top (piv[j] <=
        # j + kl), touching rows finalised by the previous (later) block —
        # so the window covers [jbeg, jend + kl) and the overlap is
        # re-written after the swaps land
        # (piv[j] <= j + kl <= jend - 1 + kl < hi).
        jend = n
        while jend > 0:
            jbeg = max(jend - nb, 0)
            hi = min(jend + kl, n)
            rw[:hi - jbeg] = b[jbeg:hi]
            for j in range(jend - 1, jbeg - 1, -1):
                transL_step(ab, n, kl, ku, j, int(piv[j]), rw, conj=conj,
                            row0=jbeg)
            b[jbeg:hi] = rw[:hi - jbeg]
            jend = jbeg

    def run_batch_vectorized(self, nblocks: int, smem: SharedMemory) -> None:
        n, kl, ku, nb = self.n, self.kl, self.ku, self.nb
        if kl == 0:
            return                      # L is the identity
        abst, pivs, btall = self._stage_batch(nblocks)
        conj = self.conj and np.iscomplexobj(abst)
        rw = smem.alloc((nblocks, nb + kl, self.nrhs), dtype=btall.dtype)
        jend = n
        while jend > 0:
            jbeg = max(jend - nb, 0)
            hi = min(jend + kl, n)
            rw[:, :hi - jbeg] = btall[:, jbeg:hi]
            for j in range(jend - 1, jbeg - 1, -1):
                transL_step_batched(abst, n, kl, ku, j, pivs[:, j], rw,
                                    conj=conj, row0=jbeg)
            btall[:, jbeg:hi] = rw[:, :hi - jbeg]
            jend = jbeg
        self._writeback_rhs(btall, nblocks)


class BlockedBackwardKernel(_BlockedSolveBase):
    """Backward solve against ``U`` (bandwidth ``kv``) on a RHS window."""

    name = "gbtrs_bwd_blocked"

    def smem_bytes(self) -> int:
        return (self.nb + self.kl + self.ku) * self.rhs_tile * self.itemsize

    def block_cost(self) -> BlockCost:
        base = gbtrs_backward_cost(self.n, self.kl, self.ku, self.nrhs,
                                   self.nb, self.nthreads, self.itemsize)
        passes = -(-self.nrhs // self.rhs_tile) if self.nrhs else 1
        if passes <= 1:
            return base
        extra = BlockCost(
            dram_traffic=(passes - 1) * (self.kl + self.ku + 1) * self.n
            * self.itemsize,
            syncs=(passes - 1) * 2 * self.n, threads=self.nthreads)
        return base + extra

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        n, kl, ku, nb = self.n, self.kl, self.ku, self.nb
        kv = kl + ku
        ab = self.mats[block_id]
        rw_full = smem.alloc((nb + kv, self.rhs_tile),
                             dtype=self.rhs[block_id].dtype)
        for cs in self._rhs_slices():
            b = self.rhs[block_id][:, cs]
            rw = rw_full[:, :b.shape[1]]
            jend = n
            jbeg = max(n - nb, 0)
            base = max(jbeg - kv, 0)
            rw[:jend - base] = b[base:jend]
            while True:
                for j in range(jend - 1, jbeg - 1, -1):
                    backward_step(ab, n, kl, ku, j, rw, row0=base)
                b[jbeg:jend] = rw[jbeg - base:jend - base]  # solved rows
                if jbeg == 0:
                    break
                jend2 = jbeg
                jbeg2 = max(jend2 - nb, 0)
                base2 = max(jbeg2 - kv, 0)
                keep = jend2 - base                 # updated rows to keep
                off = base - base2
                if keep > 0:
                    rw[off:off + keep] = rw[:keep].copy()   # shift down
                if off > 0:
                    rw[:off] = b[base2:base]        # stream next rows in
                jend, jbeg, base = jend2, jbeg2, base2

    def run_batch_vectorized(self, nblocks: int, smem: SharedMemory) -> None:
        n, kl, ku, nb = self.n, self.kl, self.ku, self.nb
        kv = kl + ku
        abst, _, btall = self._stage_batch(nblocks)
        rw_full = smem.alloc((nblocks, nb + kv, self.rhs_tile),
                             dtype=btall.dtype)
        for cs in self._rhs_slices():
            bt = btall[:, :, cs]
            rw = rw_full[:, :, :bt.shape[2]]
            jend = n
            jbeg = max(n - nb, 0)
            base = max(jbeg - kv, 0)
            rw[:, :jend - base] = bt[:, base:jend]
            while True:
                for j in range(jend - 1, jbeg - 1, -1):
                    backward_step_batched(abst, n, kl, ku, j, rw, row0=base)
                bt[:, jbeg:jend] = rw[:, jbeg - base:jend - base]
                if jbeg == 0:
                    break
                jend2 = jbeg
                jbeg2 = max(jend2 - nb, 0)
                base2 = max(jbeg2 - kv, 0)
                keep = jend2 - base                 # updated rows to keep
                off = base - base2
                if keep > 0:
                    rw[:, off:off + keep] = rw[:, :keep].copy()  # shift down
                if off > 0:
                    rw[:, :off] = bt[:, base2:base]
                jend, jbeg, base = jend2, jbeg2, base2
        self._writeback_rhs(btall, nblocks)
