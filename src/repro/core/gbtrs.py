"""Batched band triangular solve driver (paper Sections 4 and 6).

``gbtrs_batch`` mirrors the paper's ``dgbtrs_batch`` signature: it consumes
the factors and pivots produced by :func:`repro.core.gbtrf.gbtrf_batch` and
solves for ``nrhs`` right-hand sides per problem, dispatching between the
blocked sliding-window kernels (default) and the reference per-column
design.  The single-matrix :func:`gbtrs` wrapper is LAPACK
``DGBTRS``-equivalent.
"""

from __future__ import annotations

import numpy as np

from ..band.layout import normalize_layout
from ..errors import check_arg
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..gpusim.kernel import launch, note_layout_conversion
from ..types import Trans
from .batch_args import (
    as_matrix_list,
    as_rhs_list,
    check_gb_args,
    convert_batch_layout,
    ensure_info,
    ensure_pivots,
)
from .gbtrs_blocked import (
    BlockedBackwardKernel,
    BlockedForwardKernel,
    BlockedTransLKernel,
    BlockedTransUKernel,
)
from .gbtrs_reference import gbtrs_reference_batch
from .solve_blocks import gbtrs_unblocked

__all__ = ["gbtrs", "gbtrs_batch"]

_METHODS = ("auto", "blocked", "reference")


def gbtrs(trans: Trans | str, n: int, kl: int, ku: int, ab: np.ndarray,
          ipiv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Single-matrix band solve from ``gbtrf`` factors, in place on ``b``.

    Equivalent to LAPACK ``DGBTRS``.  ``b`` may be ``(n,)`` or
    ``(n, nrhs)``; returns the solution view.
    """
    b2 = b[:, None] if b.ndim == 1 else b
    check_arg(b2.shape[0] == n, 7,
              f"b has {b2.shape[0]} rows, expected {n}")
    gbtrs_unblocked(trans, n, kl, ku, ab, ipiv, b2)
    return b


def gbtrs_batch(trans: Trans | str, n: int, kl: int, ku: int, nrhs: int,
                a_array, pv_array, b_array, info=None, *,
                batch: int | None = None, device: DeviceSpec = H100_PCIE,
                stream=None, method: str = "auto", nb: int | None = None,
                threads: int | None = None, rhs_tile: int | None = None,
                execute: bool = True, max_blocks: int | None = None,
                vectorize: bool | None = None,
                resilient: bool = False, policy=None,
                max_resident_bytes: int | None = None,
                chunk_hint: int | None = None,
                streams: int | None = None, devices=None,
                overlap: bool | None = None,
                layout: str | None = None,
                verify=None):
    """Solve a uniform batch of factored band systems on the simulated GPU.

    Arguments follow the paper's ``dgbtrs_batch``; ``b_array`` (``(batch,
    n, nrhs)`` stack or pointer array) is overwritten with the solutions.
    Returns the ``info`` array (all zeros unless argument validation
    raises; numerical singularity is reported by the factorization, not the
    solve — LAPACK semantics).

    ``vectorize`` selects the execution path as in
    :func:`repro.core.gbtrf.gbtrf_batch`: ``None`` auto-dispatches the
    blocked kernels — no-transpose *and* transposed — to the
    batch-interleaved path whenever the factors and right-hand sides can
    be staged (uniform stacks directly, scattered/pointer-array batches
    through the gather/pack stage), ``False`` forces per-block execution,
    ``True`` requires vectorized execution (the reference method has no
    vectorized path and raises; so do unpackable aliased batches).

    ``resilient=True`` routes the call through the self-healing dispatch
    of :mod:`repro.core.resilience` and returns ``(info, report)``;
    ``policy`` is an optional
    :class:`~repro.core.resilience.ResiliencePolicy`.

    ``max_resident_bytes`` / ``chunk_hint`` are the memory-governance
    knobs (:mod:`repro.core.memory_plan`): a batch whose resident
    footprint exceeds the device pool budget (or either cap) is streamed
    through the device in chunks, bit-identically to an unchunked run.

    ``streams`` / ``devices`` / ``overlap`` are the pipelined-execution
    knobs (see :func:`repro.core.gbtrf.gbtrf_batch`): chunks stream
    through double-buffered copy/compute streams and shard across
    devices, bit-identically to the sequential single-device path.

    ``layout`` selects the batch storage layout (docs/LAYOUTS.md, same
    semantics as :func:`repro.core.gbtrf.gbtrf_batch`): ``None`` runs
    factors and right-hand sides in the layout they arrive in
    (interleaved stacks natively, as ``[vec+soa]``),
    ``'interleaved'``/``'soa'`` or ``'lane-major'``/``'aos'`` stage both
    operand batches into that layout exactly once at the batch boundary.

    ``verify`` turns on the silent-data-corruption defense
    (:mod:`repro.core.verify`): ``True``, ``'cheap'``, ``'full'`` or a
    :class:`~repro.core.verify.VerifyPolicy`.  Each solution is checked
    by replaying ``P L U x`` from pristine factor snapshots against the
    pristine right-hand side; in ``'full'`` mode the read-only factors
    and pivots are also digest-checked across the stage boundary.
    Failing lanes escalate through recompute → reference path, and the
    call returns ``(info, report)``.  No-transpose solves only.
    """
    trans = Trans.from_any(trans)
    check_arg(method in _METHODS, 14,
              f"method must be one of {_METHODS}, got {method!r}")
    if verify is not None and verify is not False:
        from .verify import verified_gbtrs_batch
        return verified_gbtrs_batch(
            trans, n, kl, ku, nrhs, a_array, pv_array, b_array, info,
            batch=batch, verify=verify, device=device, stream=stream,
            method=method, nb=nb, threads=threads, rhs_tile=rhs_tile,
            execute=execute, max_blocks=max_blocks, vectorize=vectorize,
            resilient=resilient, policy=policy,
            max_resident_bytes=max_resident_bytes, chunk_hint=chunk_hint,
            streams=streams, devices=devices, overlap=overlap,
            layout=layout)
    if normalize_layout(layout) is not None:
        conv = convert_batch_layout(
            normalize_layout(layout), (a_array, b_array),
            batch=len(a_array) if batch is None else batch,
            outputs=(False, True))   # factors are pure inputs here
        if conv is not None:
            (a_conv, b_conv), writeback, moved = conv
            note_layout_conversion(moved)
            res = gbtrs_batch(
                trans, n, kl, ku, nrhs, a_conv, pv_array, b_conv, info,
                batch=batch, device=device, stream=stream, method=method,
                nb=nb, threads=threads, rhs_tile=rhs_tile,
                execute=execute, max_blocks=max_blocks,
                vectorize=vectorize, resilient=resilient, policy=policy,
                max_resident_bytes=max_resident_bytes,
                chunk_hint=chunk_hint, streams=streams, devices=devices,
                overlap=overlap)
            writeback()
            return res
    from . import memory_plan
    if memory_plan.governance_active(execute=execute,
                                     max_blocks=max_blocks, stream=stream):
        return memory_plan.gbtrs_batch_governed(
            trans, n, kl, ku, nrhs, a_array, pv_array, b_array, info,
            batch=batch, device=device, stream=stream, method=method,
            nb=nb, threads=threads, rhs_tile=rhs_tile,
            vectorize=vectorize, resilient=resilient, policy=policy,
            max_resident_bytes=max_resident_bytes, chunk_hint=chunk_hint,
            streams=streams, devices=devices, overlap=overlap)
    if resilient:
        check_arg(execute and max_blocks is None, 15,
                  "resilient=True requires full functional execution "
                  "(execute=True, max_blocks=None)")
        from .resilience import gbtrs_batch_resilient
        return gbtrs_batch_resilient(
            trans, n, kl, ku, nrhs, a_array, pv_array, b_array, info,
            batch=batch, device=device, stream=stream, method=method,
            nb=nb, threads=threads, rhs_tile=rhs_tile,
            vectorize=vectorize, policy=policy)
    check_arg(nrhs >= 0, 5, f"nrhs must be non-negative, got {nrhs}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=6)
    check_gb_args(n, n, kl, ku, mats, batch=batch, ldab_pos=7)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=8)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=9)
    info = ensure_info(info, batch, arg_pos=11)
    if batch == 0 or n == 0 or nrhs == 0:
        return info

    if method == "auto":
        method = "blocked"

    if method == "blocked":
        if trans is Trans.NO_TRANS:
            kernels = [
                BlockedForwardKernel(n, kl, ku, nrhs, mats, pivots, rhs,
                                     nb=nb, threads=threads,
                                     rhs_tile=rhs_tile),
                BlockedBackwardKernel(n, kl, ku, nrhs, mats, pivots, rhs,
                                      nb=nb, threads=threads,
                                      rhs_tile=rhs_tile),
            ]
        else:
            conj = trans is Trans.CONJ_TRANS
            kernels = [
                BlockedTransUKernel(n, kl, ku, nrhs, mats, pivots, rhs,
                                    nb=nb, threads=threads, conj=conj),
                BlockedTransLKernel(n, kl, ku, nrhs, mats, pivots, rhs,
                                    nb=nb, threads=threads, conj=conj),
            ]
        for kernel in kernels:
            launch(device, kernel, stream=stream, execute=execute,
                   max_blocks=max_blocks, vectorize=vectorize)
    else:
        check_arg(not vectorize, 16,
                  "method='reference' (per-column kernels) has no "
                  "batch-interleaved path; use vectorize=None or False")
        gbtrs_reference_batch(trans, n, kl, ku, nrhs, mats, pivots, rhs,
                              device, stream, execute=execute,
                              max_blocks=max_blocks)
    return info
