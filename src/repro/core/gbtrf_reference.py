"""Reference fork-join band LU (paper Section 5.1).

The CPU manages the factorization loop and launches GPU kernels at every
column iteration: one kernel performing the pivot search, fill-in setup,
bounded row swap and column scaling, and a second performing the rank-1
update.  Both operate directly on global memory.

As the paper notes, this fork-join design is "slower than a multicore CPU
solution in most cases" — ``min(m, n)`` iterations each paying kernel-launch
overhead — but it supports any size and any ``(kl, ku)`` with the same
numerical behaviour, so it is kept as the safeguard path of the dispatcher.
"""

from __future__ import annotations

import numpy as np

from ..gpusim.costmodel import BlockCost
from ..gpusim.device import DeviceSpec
from ..gpusim.kernel import Kernel, SharedMemory, launch
from .costs import reference_column_cost
from .gbtf2 import (
    init_fillin,
    pivot_search,
    rank_one_update,
    scale_column,
    set_fillin,
    swap_right,
    update_bound,
)

__all__ = ["ColumnPivotKernel", "ColumnUpdateKernel", "FactorInitKernel",
           "gbtrf_reference_batch"]


class _ColumnKernelBase(Kernel):
    """Shared state for the per-column kernels of one batched factorization."""

    def __init__(self, state: "_FactorState", j: int):
        self.state = state
        self.j = j

    def grid(self) -> int:
        return len(self.state.mats)

    def threads(self) -> int:
        return self.state.threads

    def smem_bytes(self) -> int:
        return 0


class FactorInitKernel(_ColumnKernelBase):
    """Per-invocation setup: reset ``ju``/``info`` and clear fill-in rows.

    Running this as a kernel (rather than host code) keeps the whole
    fork-join pipeline device-side state, which is what makes it graph-
    capturable and replayable (see :mod:`repro.gpusim.graph`).
    """

    name = "gbtrf_ref_init"

    def __init__(self, state: "_FactorState"):
        super().__init__(state, 0)

    def block_cost(self) -> BlockCost:
        s = self.state
        fill = min(max(s.kl + s.ku - s.ku - 1, 0), s.n) * s.kl
        return BlockCost(dram_traffic=(fill + 2) * s.itemsize, syncs=1,
                         threads=s.threads)

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        s = self.state
        s.ju[block_id] = -1
        s.info[block_id] = 0
        init_fillin(s.mats[block_id], s.n, s.kl, s.ku)


class ColumnPivotKernel(_ColumnKernelBase):
    """Pivot search + fill-in + bounded swap + scale for column ``j``."""

    name = "gbtrf_ref_pivot"

    def block_cost(self) -> BlockCost:
        s = self.state
        return reference_column_cost(s.kl, s.ku, s.threads, s.itemsize)[0]

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        s, j = self.state, self.j
        ab = s.mats[block_id]
        kv = s.kl + s.ku
        set_fillin(ab, s.n, s.kl, s.ku, j)
        jp = pivot_search(ab, s.m, s.kl, s.ku, j)
        s.pivots[block_id][j] = j + jp
        if ab[kv + jp, j] != 0:
            s.ju[block_id] = update_bound(s.n, s.kl, s.ku, j, jp,
                                          s.ju[block_id])
            swap_right(ab, s.kl, s.ku, j, jp, s.ju[block_id])
            scale_column(ab, s.m, s.kl, s.ku, j)
        elif s.info[block_id] == 0:
            s.info[block_id] = j + 1


class ColumnUpdateKernel(_ColumnKernelBase):
    """Rank-1 trailing update for column ``j`` (bounded by ``ju``)."""

    name = "gbtrf_ref_update"

    def block_cost(self) -> BlockCost:
        s = self.state
        return reference_column_cost(s.kl, s.ku, s.threads, s.itemsize)[1]

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        s, j = self.state, self.j
        ab = s.mats[block_id]
        kv = s.kl + s.ku
        # A zero pivot skips the update (LAPACK semantics); detect it from
        # the info flag set by the pivot kernel for this very column.
        if s.info[block_id] != 0 and s.info[block_id] == j + 1:
            return
        rank_one_update(ab, s.m, s.kl, s.ku, j, int(s.ju[block_id]))


class _FactorState:
    """Per-call mutable state shared by the column kernels."""

    def __init__(self, m, n, kl, ku, mats, pivots, info, threads):
        self.m, self.n, self.kl, self.ku = m, n, kl, ku
        self.mats = mats
        self.pivots = pivots
        self.info = info
        self.threads = threads
        self.ju = np.full(len(mats), -1, dtype=np.int64)
        self.itemsize = mats[0].dtype.itemsize if mats else 8


def gbtrf_reference_batch(m: int, n: int, kl: int, ku: int,
                          mats: list[np.ndarray],
                          pivots: list[np.ndarray], info: np.ndarray,
                          device: DeviceSpec, stream=None, *,
                          execute: bool = True,
                          max_blocks: int | None = None) -> None:
    """Fork-join reference factorization: 2 kernel launches per column."""
    threads = max(kl + 1, 32)
    state = _FactorState(m, n, kl, ku, mats, pivots, info, threads)
    launch(device, FactorInitKernel(state), stream=stream,
           execute=execute, max_blocks=max_blocks)
    for j in range(min(m, n)):
        launch(device, ColumnPivotKernel(state, j), stream=stream,
               execute=execute, max_blocks=max_blocks)
        launch(device, ColumnUpdateKernel(state, j), stream=stream,
               execute=execute, max_blocks=max_blocks)
