"""Per-block resource-cost formulas for the band kernels.

Each kernel class reports a :class:`~repro.gpusim.costmodel.BlockCost` built
here.  The formulas count, per thread block (= one matrix of the batch):

* shared-memory traffic — element accesses of the column loop (pivot
  search, bounded row swap, scale, rank-1 update) plus, for windowed
  kernels, the in-shared-memory shift of the window between iterations;
* block-wide barriers — the dependent sub-steps of each column plus the
  tree reduction of the pivot search and the per-iteration shift barriers;
* arithmetic — the 2·kl·(kv+1) multiply-adds per column (worst-case pivot
  reach), and
* global traffic — each matrix is read once (the ``kl+ku+1`` data
  diagonals), written once in full factor layout, plus pivots/info.

They are *worst-case in the pivot reach* (``ju - j = kv``), deterministic,
and shared between the functional kernels and the tuning sweep, so tuning
decisions and benchmark timings always agree.
"""

from __future__ import annotations

import math

from ..band.layout import BandLayout
from ..gpusim.costmodel import BlockCost

__all__ = [
    "gbtrf_column_cost",
    "gbtrf_fused_cost",
    "gbtrf_window_cost",
    "gbtrs_forward_cost",
    "gbtrs_backward_cost",
    "gbsv_fused_cost",
    "reference_column_cost",
]


def _log2ceil(x: int) -> int:
    return max(1, math.ceil(math.log2(max(x, 2))))


def _rounds(work: int, threads: int) -> int:
    """Serialisation rounds when ``work`` parallel lanes share ``threads``.

    A column step whose update touches more elements than there are threads
    executes in multiple dependent rounds; this is what makes the
    threads-per-matrix tuning parameter matter for wide bands, and why the
    paper gives it "no upper limit".
    """
    return max(1, math.ceil(work / max(threads, 1)))


def gbtrf_column_cost(kl: int, ku: int, threads: int,
                      itemsize: int) -> BlockCost:
    """Cost of one column iteration of the band LU (paper Section 5.1 loop)."""
    kv = kl + ku
    ncols = kv + 1                       # worst-case update width
    accesses = (
        (kl + 1)                         # pivot search reads
        + 4 * ncols                      # bounded row swap (2 reads, 2 writes)
        + 2 * kl                         # scale read+write
        + 3 * kl * ncols                 # rank-1: read l, read/accumulate target
        + ncols                          # read the U row
    )
    flops = 2 * kl * ncols + kl
    # Dependent sub-steps per column: pivot-search reduction, swap, scale,
    # then the rank-1 update in as many rounds as the thread count forces.
    upd_rounds = _rounds(kl * ncols, threads)
    syncs = 3 + _log2ceil(min(threads, kl + 1)) + upd_rounds
    return BlockCost(
        flops=flops,
        smem_traffic=accesses * itemsize,
        dram_traffic=0.0,
        syncs=syncs,
        threads=threads,
    )


def _gbtrf_dram(m: int, n: int, kl: int, ku: int, itemsize: int) -> float:
    layout = BandLayout(m, n, kl, ku)
    read = (kl + ku + 1) * n * itemsize          # input band diagonals
    write = layout.ldab_factor * n * itemsize    # full factor layout out
    pivots = 4 * min(m, n) + 4                   # ipiv + info
    return read + write + pivots


def gbtrf_fused_cost(m: int, n: int, kl: int, ku: int, threads: int,
                     itemsize: int) -> BlockCost:
    """Per-block cost of the fully fused factorization (paper Section 5.2)."""
    mn = min(m, n)
    col = gbtrf_column_cost(kl, ku, threads, itemsize).scaled(mn)
    return BlockCost(
        flops=col.flops,
        smem_traffic=col.smem_traffic,
        dram_traffic=_gbtrf_dram(m, n, kl, ku, itemsize),
        syncs=col.syncs,
        threads=threads,
    )


def gbtrf_window_cost(m: int, n: int, kl: int, ku: int, nb: int,
                      threads: int, itemsize: int) -> BlockCost:
    """Per-block cost of the sliding-window factorization (paper Section 5.3).

    Adds the in-shared-memory shift of the ``(kv + 1)`` trailing window
    columns after each ``nb``-column factor step — the "extra
    synchronization steps" the paper cites as the fused kernel's advantage
    at very small sizes.
    """
    mn = min(m, n)
    layout = BandLayout(m, n, kl, ku)
    base = gbtrf_fused_cost(m, n, kl, ku, threads, itemsize)
    iters = math.ceil(mn / nb)
    shift_elems = layout.window_rows() * (layout.window_cols(nb) - nb)
    shift_traffic = iters * 2 * shift_elems * itemsize
    return BlockCost(
        flops=base.flops,
        smem_traffic=base.smem_traffic + shift_traffic,
        dram_traffic=base.dram_traffic,
        syncs=base.syncs + iters * 3,
        threads=threads,
    )


def reference_column_cost(kl: int, ku: int, threads: int,
                          itemsize: int) -> tuple[BlockCost, BlockCost]:
    """Per-block costs of the two per-column kernels of the reference design.

    Returns ``(pivot+swap+scale kernel, rank-1 update kernel)``.  The
    reference design (paper Section 5.1) runs the column loop on the host and
    launches these at every iteration, which is why its performance is
    dominated by launch overhead.
    """
    kv = kl + ku
    ncols = kv + 1
    pivot_cost = BlockCost(
        flops=kl,
        smem_traffic=0.0,
        dram_traffic=((kl + 1) + 4 * ncols + 2 * kl) * itemsize,
        syncs=1 + _log2ceil(min(threads, kl + 1)),
        threads=threads,
    )
    update_cost = BlockCost(
        flops=2 * kl * ncols,
        smem_traffic=0.0,
        dram_traffic=(3 * kl * ncols + ncols) * itemsize,
        syncs=1,
        threads=threads,
    )
    return pivot_cost, update_cost


def gbtrs_forward_cost(n: int, kl: int, ku: int, nrhs: int, nb: int,
                       threads: int, itemsize: int) -> BlockCost:
    """Per-block cost of the blocked forward solve (paper Section 6, Figure 6)."""
    per_col = (4 + 3 * kl) * nrhs        # swap + rank-1 on the RHS window
    iters = math.ceil(n / max(nb, 1))
    shift = iters * 2 * kl * nrhs        # shift the kl overlap rows up
    dram = (kl * n + 2 * n * nrhs) * itemsize + 4 * n
    rounds = _rounds(kl * nrhs, threads)
    return BlockCost(
        flops=2 * kl * nrhs * n,
        smem_traffic=(per_col * n + shift) * itemsize,
        dram_traffic=dram,
        syncs=(1 + rounds) * n + 2 * iters,
        threads=threads,
    )


def gbtrs_backward_cost(n: int, kl: int, ku: int, nrhs: int, nb: int,
                        threads: int, itemsize: int) -> BlockCost:
    """Per-block cost of the blocked backward solve (paper Section 6, Figure 6)."""
    kv = kl + ku
    per_col = (2 + 3 * kv) * nrhs
    iters = math.ceil(n / max(nb, 1))
    shift = iters * 2 * kv * nrhs        # shift the kv overlap rows down
    dram = ((kv + 1) * n + 2 * n * nrhs) * itemsize
    rounds = _rounds(kv * nrhs, threads)
    return BlockCost(
        flops=(2 * kv + 1) * nrhs * n,
        smem_traffic=(per_col * n + shift) * itemsize,
        dram_traffic=dram,
        syncs=(1 + rounds) * n + 2 * iters,
        threads=threads,
    )


def gbsv_fused_cost(n: int, kl: int, ku: int, nrhs: int, threads: int,
                    itemsize: int) -> BlockCost:
    """Per-block cost of the fused factorize-and-solve kernel (paper Section 7).

    The factorization of the augmented ``[A|B]`` adds the RHS swap/update to
    every column, and the in-shared-memory backward solve adds ``kv``-wide
    updates per column; global traffic covers one read and one write of both
    the matrix and the RHS.
    """
    kv = kl + ku
    fact = gbtrf_fused_cost(n, n, kl, ku, threads, itemsize)
    rhs_fwd = n * (4 + 3 * kl) * nrhs * itemsize
    rhs_bwd = n * (2 + 3 * kv) * nrhs * itemsize
    dram = fact.dram_traffic + 2 * n * nrhs * itemsize
    return BlockCost(
        flops=fact.flops + n * nrhs * (2 * kl + 2 * kv + 1),
        smem_traffic=fact.smem_traffic + rhs_fwd + rhs_bwd,
        dram_traffic=dram,
        syncs=fact.syncs + 2 * n,
        threads=threads,
    )
