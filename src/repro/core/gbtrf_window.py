"""Sliding-window band LU factorization kernel (paper Section 5.3).

The key observation: during the factorization of column ``j`` the last
column that can be touched is ``ju = max(ju, min(j + ku + jp, n-1))``,
bounded by ``j + kv`` (worst case ``jp = kl``).  So a window of
``nb + kv + 1`` columns — ``nb`` "factor window" columns plus the widest
possible "update window" — is all that ever needs to live in shared
memory.  The window shifts through the matrix *inside one kernel* (the
paper found this faster than one kernel per block-column, which it keeps as
an ablation; see :mod:`repro.bench.figures`), giving a shared-memory
footprint that is constant in the matrix size:

    ``(kv + nb + 1) x (kv + kl + 1)`` elements.

Tuning parameters: the block size ``nb`` and the threads per matrix
(minimum ``kl + 1``); see :mod:`repro.tuning`.
"""

from __future__ import annotations

import numpy as np

from ..band.layout import BandLayout
from ..gpusim.costmodel import BlockCost
from ..gpusim.kernel import Kernel, SharedMemory
from .batch_args import is_interleaved_stack, is_uniform_stack, stage_stack
from .costs import gbtrf_window_cost
from .gbtf2 import (
    init_fillin,
    init_fillin_batched,
    pivot_search,
    pivot_search_batched,
    rank_one_update,
    rank_one_update_batched,
    scale_column,
    scale_column_batched,
    set_fillin,
    set_fillin_batched,
    swap_right,
    swap_right_batched,
    update_bound,
    update_bound_batched,
)

__all__ = ["SlidingWindowGbtrfKernel", "window_factor_steps",
           "sliding_window_factor", "sliding_window_factor_batched"]


def window_factor_steps(mn: int, nb: int) -> int:
    """Number of window iterations: ``ceil(min(m, n) / nb)``."""
    return -(-mn // nb) if mn > 0 else 0


def sliding_window_factor(ab: np.ndarray, piv: np.ndarray, m: int, n: int,
                          kl: int, ku: int, nb: int,
                          smem: SharedMemory) -> int:
    """One thread block's sliding-window factorization (the kernel body).

    Factorizes ``ab`` (factor layout) in place through a shared-memory
    window allocated from ``smem``; returns the LAPACK ``info`` code.
    Shared between the uniform kernel and the non-uniform (vbatch) kernel,
    which calls it with per-problem dimensions.
    """
    kv = kl + ku
    mn = min(m, n)
    layout = BandLayout(m, n, kl, ku)
    ldab = layout.ldab_factor
    wcols = layout.window_cols(nb)

    win = smem.alloc((ldab, wcols), dtype=ab.dtype)
    # Initial load: the first wcols columns (zero-padded past n), with
    # the up-front fill-in clearing of columns ku+1..kv-1 that the full
    # factorization would do (LAPACK DGBTF2's preamble).
    loaded = min(wcols, n)
    win[:, :loaded] = ab[:ldab, :loaded]
    init_fillin(win, n, kl, ku, ncols=loaded)

    c0 = 0          # global column of the window's first cached column
    ju = -1
    info = 0
    j = 0
    while j < mn:
        jend = min(j + nb, mn)
        for jj in range(j, jend):
            set_fillin(win, n, kl, ku, jj, col0=c0)
            jp = pivot_search(win, m, kl, ku, jj, col0=c0)
            piv[jj] = jj + jp
            if win[kv + jp, jj - c0] != 0:
                ju = update_bound(n, kl, ku, jj, jp, ju)
                swap_right(win, kl, ku, jj, jp, ju, col0=c0)
                scale_column(win, m, kl, ku, jj, col0=c0)
                rank_one_update(win, m, kl, ku, jj, ju, col0=c0)
            elif info == 0:
                info = jj + 1
        # Write the freshly factored columns back to global memory.
        ab[:ldab, j:jend] = win[:, j - c0:jend - c0]
        if jend >= mn:
            # Trailing columns beyond min(m, n) (only when m < n) hold
            # live updates and must be flushed too.
            tail_hi = min(c0 + wcols, n)
            if tail_hi > jend:
                ab[:ldab, jend:tail_hi] = win[:, jend - c0:tail_hi - c0]
            break
        # Shift the window left by the columns just retired and stream
        # in the next ones.
        shift = jend - c0
        keep = wcols - shift
        win[:, :keep] = win[:, shift:].copy()
        win[:, keep:] = 0
        lo = c0 + wcols
        hi = min(lo + shift, n)
        if hi > lo:
            win[:, keep:keep + (hi - lo)] = ab[:ldab, lo:hi]
        c0 = jend
        j = jend
    return info


def sliding_window_factor_batched(abst: np.ndarray, pivs: np.ndarray,
                                  info: np.ndarray, m: int, n: int,
                                  kl: int, ku: int, nb: int,
                                  smem: SharedMemory) -> None:
    """Batch-interleaved :func:`sliding_window_factor`.

    Runs the identical window schedule over a ``(batch, ldab, n)`` stack,
    advancing every problem through each column step with one numpy
    operation; ``pivs`` is ``(batch, mn)`` and ``info`` ``(batch,)``,
    both written in place.  Bit-identical to running the per-block body
    on each problem in turn.
    """
    batch = abst.shape[0]
    kv = kl + ku
    mn = min(m, n)
    layout = BandLayout(m, n, kl, ku)
    ldab = layout.ldab_factor
    wcols = layout.window_cols(nb)
    bidx = np.arange(batch)

    # Stage the window batch-minor (lane axis innermost in memory): every
    # per-column block then runs its elementwise work with a contiguous
    # inner loop over the batch, which is where the interleaved layout
    # pays off.  The blocks are layout-agnostic (they go through
    # ``abst.strides``), and every elementwise op used is correctly
    # rounded independent of memory layout, so the bits don't change.
    win = np.moveaxis(
        smem.alloc((ldab, wcols, batch), dtype=abst.dtype), 2, 0)
    loaded = min(wcols, n)
    win[:, :, :loaded] = abst[:, :ldab, :loaded]
    init_fillin_batched(win, n, kl, ku, ncols=loaded)

    c0 = 0
    ju = np.full(batch, -1, dtype=np.int64)
    info[...] = 0
    j = 0
    while j < mn:
        jend = min(j + nb, mn)
        for jj in range(j, jend):
            set_fillin_batched(win, n, kl, ku, jj, col0=c0)
            jp = pivot_search_batched(win, m, kl, ku, jj, col0=c0)
            pivs[:, jj] = jj + jp
            active = win[bidx, kv + jp, jj - c0] != 0
            ju = update_bound_batched(n, kl, ku, jj, jp, ju, active)
            swap_right_batched(win, kl, ku, jj, jp, ju, col0=c0,
                               active=active)
            scale_column_batched(win, m, kl, ku, jj, col0=c0, active=active)
            rank_one_update_batched(win, m, kl, ku, jj, ju, col0=c0,
                                    active=active)
            info[...] = np.where(~active & (info == 0), jj + 1, info)
        abst[:, :ldab, j:jend] = win[:, :, j - c0:jend - c0]
        if jend >= mn:
            tail_hi = min(c0 + wcols, n)
            if tail_hi > jend:
                abst[:, :ldab, jend:tail_hi] = \
                    win[:, :, jend - c0:tail_hi - c0]
            break
        shift = jend - c0
        keep = wcols - shift
        win[:, :, :keep] = win[:, :, shift:].copy()
        win[:, :, keep:] = 0
        lo = c0 + wcols
        hi = min(lo + shift, n)
        if hi > lo:
            win[:, :, keep:keep + (hi - lo)] = abst[:, :ldab, lo:hi]
        c0 = jend
        j = jend


class SlidingWindowGbtrfKernel(Kernel):
    """Batched band LU with a sliding shared-memory window."""

    name = "gbtrf_window"

    def __init__(self, m: int, n: int, kl: int, ku: int,
                 mats: list[np.ndarray], pivots: list[np.ndarray],
                 info: np.ndarray, *, nb: int, threads: int):
        if nb < 1:
            raise ValueError(f"window block size nb must be >= 1, got {nb}")
        if threads < kl + 1:
            raise ValueError(
                f"sliding-window gbtrf needs at least kl+1={kl + 1} threads, "
                f"got {threads}")
        self.m, self.n, self.kl, self.ku = m, n, kl, ku
        self.layout = BandLayout(m, n, kl, ku)
        self.mats = mats
        self.pivots = pivots
        self.info = info
        self.nb = nb
        self.nthreads = threads
        self.itemsize = mats[0].dtype.itemsize if mats else 8

    def grid(self) -> int:
        return len(self.mats)

    def threads(self) -> int:
        return self.nthreads

    def smem_bytes(self) -> int:
        return self.layout.window_elems(self.nb) * self.itemsize

    def block_cost(self) -> BlockCost:
        return gbtrf_window_cost(self.m, self.n, self.kl, self.ku, self.nb,
                                 self.nthreads, self.itemsize)

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        self.info[block_id] = sliding_window_factor(
            self.mats[block_id], self.pivots[block_id],
            self.m, self.n, self.kl, self.ku, self.nb, smem)

    def can_batch_vectorize(self) -> bool:
        return is_uniform_stack(self.mats)

    def can_soa_vectorize(self) -> bool:
        return is_interleaved_stack(self.mats)

    def pack_operands(self) -> tuple:
        return (self.mats,)

    def run_batch_vectorized(self, nblocks: int, smem: SharedMemory) -> None:
        ldab = self.layout.ldab_factor
        # Interleaved (SoA) batches stage as a zero-copy in-place view:
        # no gather/scatter, and the global<->window copies below run
        # lane-contiguous against the batch-minor window.
        abst, inplace = stage_stack(self.mats, nblocks, rows=ldab)
        pivs = np.zeros((nblocks, min(self.m, self.n)), dtype=np.int64)
        sliding_window_factor_batched(
            abst, pivs, self.info[:nblocks],
            self.m, self.n, self.kl, self.ku, self.nb, smem)
        for k in range(nblocks):
            if not inplace:
                self.mats[k][:ldab, :] = abst[k]
            self.pivots[k][:] = pivs[k]
