"""Batched band matrix-vector product kernel (batched ``GBMV``).

The batched-BLAS ecosystem the paper builds on (its reference [3] defines
the standard) pairs every batched solver with the matching batched BLAS
operations.  A device-side batched ``GBMV`` is the natural companion of
``gbtrf_batch``: residual evaluation for iterative refinement, matrix-free
checks, and power iterations all need ``y = alpha*op(A) x + beta*y`` over
the same band batches the solver consumes.

One thread block per matrix; the band is streamed through registers (it is
read once — no shared-memory staging needed), so the kernel is purely
DRAM-bound, like the GEMV the paper uses to measure sustained bandwidth.
"""

from __future__ import annotations

import numpy as np

from ..band.ops import gbmv
from ..errors import check_arg
from ..gpusim.costmodel import BlockCost
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..gpusim.kernel import Kernel, SharedMemory, launch
from ..types import Trans
from .batch_args import as_matrix_list, check_gb_args

__all__ = ["BatchedGbmvKernel", "gbmv_batch"]


class BatchedGbmvKernel(Kernel):
    """``y_k = alpha * op(A_k) x_k + beta * y_k`` for a uniform band batch."""

    name = "gbmv_batch"

    def __init__(self, trans: Trans, m: int, n: int, kl: int, ku: int,
                 alpha, mats: list[np.ndarray], xs: list[np.ndarray],
                 beta, ys: list[np.ndarray]):
        self.trans = trans
        self.m, self.n, self.kl, self.ku = m, n, kl, ku
        self.alpha, self.beta = alpha, beta
        self.mats, self.xs, self.ys = mats, xs, ys
        self.itemsize = mats[0].dtype.itemsize if mats else 8

    def grid(self) -> int:
        return len(self.mats)

    def threads(self) -> int:
        # One thread per output row, a warp's worth minimum.
        return max(32, min(self.m if self.trans is Trans.NO_TRANS
                           else self.n, 256))

    def smem_bytes(self) -> int:
        return 0

    def block_cost(self) -> BlockCost:
        band_entries = (self.kl + self.ku + 1) * self.n
        out_len = self.m if self.trans is Trans.NO_TRANS else self.n
        in_len = self.n if self.trans is Trans.NO_TRANS else self.m
        return BlockCost(
            flops=2.0 * band_entries,
            smem_traffic=0.0,
            dram_traffic=(band_entries + in_len + 2 * out_len)
            * self.itemsize,
            syncs=2,
            threads=self.threads(),
        )

    def run_block(self, block_id: int, smem: SharedMemory) -> None:
        gbmv(self.trans, self.m, self.kl, self.ku, self.alpha,
             self.mats[block_id], self.xs[block_id], self.beta,
             self.ys[block_id])


def gbmv_batch(trans: Trans | str, m: int, n: int, kl: int, ku: int,
               alpha, a_array, x_array, beta, y_array, *,
               batch: int | None = None, device: DeviceSpec = H100_PCIE,
               stream=None, execute: bool = True,
               max_blocks: int | None = None) -> None:
    """Batched band matrix-vector product on the simulated device.

    ``x_array``/``y_array`` are ``(batch, len)`` stacks or sequences of
    per-problem vectors (each may also be ``(len, nrhs)`` blocks); ``y`` is
    updated in place.  Matrices are factor-layout band storage, matching
    the solver's operands, so residuals of solver inputs need no
    conversion.
    """
    trans = Trans.from_any(trans)
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=7)
    check_gb_args(m, n, kl, ku, mats, batch=batch)
    out_len = m if trans is Trans.NO_TRANS else n
    in_len = n if trans is Trans.NO_TRANS else m
    xs = [np.asarray(x) for x in x_array]
    ys = list(y_array)
    check_arg(len(xs) == batch, 8,
              f"x has {len(xs)} entries, expected {batch}")
    check_arg(len(ys) == batch, 10,
              f"y has {len(ys)} entries, expected {batch}")
    for k in range(batch):
        check_arg(xs[k].shape[0] == in_len, 8,
                  f"x[{k}] has {xs[k].shape[0]} rows, expected {in_len}")
        check_arg(ys[k].shape[0] == out_len, 10,
                  f"y[{k}] has {ys[k].shape[0]} rows, expected {out_len}")
    if batch == 0:
        return
    kernel = BatchedGbmvKernel(trans, m, n, kl, ku, alpha, mats, xs,
                               beta, ys)
    launch(device, kernel, stream=stream, execute=execute,
           max_blocks=max_blocks)
