"""Device-memory governance: admission control and OOM-safe chunking.

The paper runs batches that fit comfortably in HBM; a production library
cannot assume that.  This module makes every batched driver OOM-safe:

* :func:`plan_batch` estimates the resident device footprint of a call
  from its actual operands, compares it against the device
  :class:`~repro.gpusim.memory.MemoryPool` budget (optionally tightened by
  ``max_resident_bytes``), and decides how many lanes fit at once;
* the governed drivers (:func:`gbtrf_batch_governed`,
  :func:`gbtrs_batch_governed`, :func:`gbsv_batch_governed`, reached
  transparently through the plain drivers) lease each chunk's footprint
  from the pool, stream it upload -> solve -> download, and release the
  lease so the next chunk reuses the same residency — an oversized batch
  completes bit-identically to an unchunked run because every lane's
  result is independent of sub-batch composition (the same contract the
  resilient quarantine path relies on);
* a mid-run :class:`~repro.errors.DeviceMemoryError` — injected by the
  fault harness or raised by a genuinely exhausted pool — walks a
  degradation ladder under ``resilient=True``: halve the chunk size with
  the policy's capped backoff, degrade to per-lane execution
  (``chunk=1``), and finally finish the remaining lanes on the host
  reference algorithm.  Every decision lands in
  :attr:`~repro.core.resilience.BatchReport.chunk_events`.

Governance applies only to outermost functional calls: timing-only
(``execute=False``), sampled (``max_blocks``), and graph-capturing calls
are exempt, and calls the governed executor makes on its own behalf are
suppressed so a chunk is never re-chunked.

Fault-injection semantics: allocation faults strike at chunk boundaries
(the lease points), and the executor opens a
:meth:`~repro.gpusim.faults.FaultInjector.lane_window` per chunk so a
corruption plan targeting global lane *k* hits the same lane no matter
how the batch is chunked — the determinism the fault-plan tests pin.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..band.layout import ldab_for_factor
from ..errors import DeviceMemoryError, check_arg
from ..gpusim.device import H100_PCIE, DeviceSpec
from ..gpusim.faults import active_injector
from ..gpusim.memory import memory_pool
from ..gpusim.transfer import stage_chunk
from ..types import Trans
from .batch_args import (
    as_matrix_list,
    as_rhs_list,
    check_gb_args,
    ensure_info,
    ensure_pivots,
)
from .gbtf2 import gbtf2
from .resilience import (
    HOST_FALLBACK,
    BatchReport,
    ResiliencePolicy,
    merge_reports,
)
from .solve_blocks import gbtrs_unblocked

__all__ = [
    "MemoryPlan",
    "estimate_footprint",
    "estimate_vbatch_footprint",
    "plan_batch",
    "governance_active",
    "gbtrf_batch_governed",
    "gbtrs_batch_governed",
    "gbsv_batch_governed",
]

#: Bytes of one device pointer (pointer-array entries for each operand).
POINTER_BYTES = 8
#: Bytes of one ``info`` entry resident on the device.
INFO_BYTES = 8

# Governance re-entrancy depth, tracked per host thread.  The governed
# executor re-enters the plain drivers to run each chunk; those inner calls
# (and everything they call — resilience ladders, gbsv's two stages) must
# not plan/lease again.  Thread-local because the pipelined executor
# (:mod:`repro.core.pipeline`) runs one worker thread per device shard,
# each entering its own suppression scope.
_GOVERNANCE = threading.local()


@contextmanager
def _suppress_governance():
    depth = getattr(_GOVERNANCE, "depth", 0)
    _GOVERNANCE.depth = depth + 1
    try:
        yield
    finally:
        _GOVERNANCE.depth = depth


def governance_active(*, execute: bool = True, max_blocks=None,
                      stream=None) -> bool:
    """Should a driver call entering now take the governed path?

    False inside the governed executor itself (a chunk is never
    re-chunked), for timing-only or sampled calls, and while a stream is
    capturing a graph (replay must not re-plan).
    """
    if (getattr(_GOVERNANCE, "depth", 0) > 0 or not execute
            or max_blocks is not None):
        return False
    if stream is not None and getattr(stream, "_capturing", False):
        return False
    return True


# --- footprint estimation --------------------------------------------------

def estimate_footprint(op: str, *, batch: int, n: int, kl: int, ku: int,
                       m: int | None = None, nrhs: int = 0,
                       itemsize: int = 8) -> int:
    """Estimated resident device footprint of one batched call, bytes.

    Counts, per lane: the band matrix in factor layout (``ldab = 2*kl +
    ku + 1`` rows), the pivot vector, the ``info`` entry, the right-hand
    sides (``gbtrs``/``gbsv``), and one device pointer per operand array.
    This is the shape-based mirror of what the governed drivers charge
    from the actual operands.
    """
    check_arg(op in ("gbtrf", "gbtrs", "gbsv"), 1,
              f"op must be one of ('gbtrf', 'gbtrs', 'gbsv'), got {op!r}")
    m = n if m is None else m
    lane = ldab_for_factor(kl, ku) * n * itemsize
    lane += min(m, n) * 8 + INFO_BYTES      # pivots + info
    pointers = 2 * POINTER_BYTES            # matrix + pivot arrays
    if op in ("gbtrs", "gbsv"):
        lane += n * nrhs * itemsize
        pointers += POINTER_BYTES
    return batch * (lane + pointers)


def estimate_vbatch_footprint(op: str, ns, kls, kus, *, ms=None,
                              nrhss=None, itemsize: int = 8) -> int:
    """Footprint of a variable-size batch: the sum over its lanes."""
    total = 0
    for k, n in enumerate(ns):
        total += estimate_footprint(
            op, batch=1, n=int(n), kl=int(kls[k]), ku=int(kus[k]),
            m=None if ms is None else int(ms[k]),
            nrhs=0 if nrhss is None else int(nrhss[k]),
            itemsize=itemsize)
    return total


def _lane_bytes(mat, piv=None, rhs=None) -> int:
    """Exact per-lane residency from the call's actual operands."""
    total = int(np.asarray(mat).nbytes) + INFO_BYTES + POINTER_BYTES
    if piv is not None:
        total += int(np.asarray(piv).nbytes) + POINTER_BYTES
    if rhs is not None:
        total += int(np.asarray(rhs).nbytes) + POINTER_BYTES
    return total


# --- the plan --------------------------------------------------------------

@dataclass(frozen=True)
class MemoryPlan:
    """Admission decision for one batched call.

    ``chunk`` is the largest lane count whose footprint fits the budget
    (at least 1 — a single unfit lane is caught by admission control, not
    by the planner), further capped by ``chunk_hint``.
    """

    batch: int
    lane_bytes: int
    footprint: int
    budget: int
    chunk: int
    admitted: bool

    @property
    def num_chunks(self) -> int:
        """Chunks needed at the planned size (ceiling division)."""
        if self.batch == 0:
            return 0
        return -(-self.batch // self.chunk)

    @property
    def chunked(self) -> bool:
        """True when the batch will run as more than one chunk."""
        return self.batch > 0 and self.chunk < self.batch


def plan_batch(batch: int, lane_bytes: int, *,
               device: DeviceSpec = H100_PCIE,
               max_resident_bytes: int | None = None,
               chunk_hint: int | None = None,
               buffers: int = 1) -> MemoryPlan:
    """Plan the chunking of ``batch`` lanes of ``lane_bytes`` each.

    The budget is the device pool's remaining capacity, tightened by
    ``max_resident_bytes`` when given.  ``chunk_hint`` can only shrink
    the chunk (it forces chunked execution even when everything fits —
    useful for staging pipelines and for the bit-identity tests); it
    never admits more than the budget allows.  ``buffers`` is the number
    of chunk leases the executor keeps live simultaneously (double/triple
    buffering in the pipelined executor): the chunk is sized against
    ``budget // buffers`` so the whole in-flight set respects admission
    control, while ``admitted`` still compares the full footprint against
    the full budget.
    """
    check_arg(max_resident_bytes is None or max_resident_bytes > 0, 3,
              f"max_resident_bytes must be positive, "
              f"got {max_resident_bytes}")
    check_arg(chunk_hint is None or chunk_hint > 0, 4,
              f"chunk_hint must be positive, got {chunk_hint}")
    check_arg(buffers >= 1, 5, f"buffers must be >= 1, got {buffers}")
    budget = memory_pool(device).available
    if max_resident_bytes is not None:
        budget = min(budget, int(max_resident_bytes))
    footprint = batch * lane_bytes
    fit = ((budget // int(buffers)) // lane_bytes if lane_bytes > 0
           else batch)
    chunk = min(batch, max(1, fit)) if batch else 0
    if chunk_hint is not None and batch:
        chunk = max(1, min(chunk, int(chunk_hint)))
    return MemoryPlan(batch=batch, lane_bytes=lane_bytes,
                      footprint=footprint, budget=budget, chunk=chunk,
                      admitted=footprint <= budget)


# --- chunked execution -----------------------------------------------------

def _execute_governed(op: str, batch: int, plan: MemoryPlan,
                      device: DeviceSpec, stream, resilient: bool,
                      policy: ResiliencePolicy | None, run_chunk,
                      run_host):
    """Run the batch in leased chunks with the OOM degradation ladder.

    ``run_chunk(start, stop)`` executes lanes ``[start, stop)`` through
    the plain driver (under suppression) and returns the chunk's
    :class:`BatchReport` when resilient, else None.  ``run_host(start,
    stop)`` finishes lanes on the host net.  Returns ``(parts, chunks,
    oom, events, backoff)``.
    """
    pool = memory_pool(device)
    injector = active_injector(device)
    policy = policy or ResiliencePolicy()
    parts, chunks, events = [], [], []
    oom = 0
    backoff_total = 0.0
    chunk = plan.chunk
    if plan.chunked or not plan.admitted:
        events.append({"action": "split", "chunk": int(chunk),
                       "footprint": int(plan.footprint),
                       "budget": int(plan.budget)})
    start = 0
    attempt = 0
    while start < batch:
        stop = min(start + chunk, batch)
        nbytes = (stop - start) * plan.lane_bytes
        try:
            # The lease honours the planned budget, not just the pool: a
            # caller-imposed max_resident_bytes below one lane must reach
            # the ladder's host rung, not silently run on the device.
            if nbytes > plan.budget:
                raise DeviceMemoryError(nbytes, pool.in_use, plan.budget,
                                        device=device.name)
            pool.alloc(nbytes, label=f"{op}-chunk")
        except DeviceMemoryError as exc:
            if not resilient:
                raise
            oom += 1
            if chunk > 1:
                attempt += 1
                delay = policy.backoff(attempt)
                backoff_total += delay
                new_chunk = max(1, chunk // 2)
                events.append({"action": "halve", "from": int(chunk),
                               "to": int(new_chunk),
                               "requested": int(exc.requested),
                               "budget": int(exc.capacity),
                               "injected": bool(exc.injected)})
                chunk = new_chunk
                continue
            # Final rung: even one lane cannot be leased — finish every
            # remaining lane on the host reference algorithm.
            events.append({"action": "host", "start": int(start),
                           "stop": int(batch),
                           "requested": int(exc.requested),
                           "budget": int(exc.capacity),
                           "injected": bool(exc.injected)})
            rep = run_host(start, batch)
            if rep is not None:
                parts.append((list(range(start, batch)), rep))
            break
        staged = (stop - start) < batch
        try:
            if staged:
                stage_chunk(device, nbytes, direction="h2d", stream=stream)
            if injector is not None:
                with injector.lane_window(start):
                    rep = run_chunk(start, stop)
            else:
                rep = run_chunk(start, stop)
            if staged:
                stage_chunk(device, nbytes, direction="d2h", stream=stream)
        finally:
            pool.free(nbytes)
        if rep is not None:
            parts.append((list(range(start, stop)), rep))
        chunks.append(stop - start)
        start = stop
    return parts, tuple(chunks), oom, events, backoff_total


def _admit_or_raise(plan: MemoryPlan, resilient: bool,
                    device: DeviceSpec) -> None:
    """Admission control for the plain (non-resilient) path.

    Without a recovery ladder there is nothing to degrade to: a call
    whose single lane exceeds the budget fails structurally *before* any
    work touches the operands.
    """
    if not resilient and plan.lane_bytes > plan.budget:
        raise DeviceMemoryError(plan.lane_bytes,
                                memory_pool(device).in_use, plan.budget,
                                device=device.name)


def _attach(report: BatchReport, plan: MemoryPlan, chunks, oom, events,
            backoff) -> None:
    report.footprint_bytes = plan.footprint
    report.budget_bytes = plan.budget
    report.chunks = tuple(chunks)
    report.oom_failures += oom
    report.chunk_events.extend(events)
    report.backoff_total += backoff


def _merge(op: str, batch: int, method: str, parts, info) -> BatchReport:
    if parts:
        report = merge_reports(op, batch, parts)
    else:
        report = BatchReport(op, batch)
    report.method_requested = method
    report.info = info
    return report


# --- throughput probes (pipelined multi-device balancing) ------------------

def _probe_triple(kernel) -> tuple:
    return (kernel.block_cost(), kernel.threads(), kernel.smem_bytes())


def _gbtrf_stages(dev, method, m, n, kl, ku, mats, pivots, info, nb,
                  threads) -> list:
    """Representative factorization stage(s) on ``dev``, as cost triples.

    Builds a one-lane kernel with the design the dispatcher (or the
    caller) would pick *on that device*, so per-device tuning tables
    (window size, thread count) flow into the throughput weights.  The
    reference design has no single representative kernel; an empty list
    makes :func:`~repro.gpusim.multidevice.throughput_weights` fall back
    to its bandwidth proxy.
    """
    from ..tuning.defaults import window_params
    from .gbtrf import select_gbtrf_method
    from .gbtrf_fused import FusedGbtrfKernel
    from .gbtrf_window import SlidingWindowGbtrfKernel
    meth = method
    if meth == "auto":
        meth = select_gbtrf_method(dev, m, n, kl, ku,
                                   mats[0].dtype.itemsize)
    if meth == "fused":
        return [_probe_triple(FusedGbtrfKernel(
            m, n, kl, ku, mats[:1], pivots[:1], info[:1],
            threads=threads))]
    if meth == "window":
        nb_d, th_d = window_params(dev, kl, ku)
        return [_probe_triple(SlidingWindowGbtrfKernel(
            m, n, kl, ku, mats[:1], pivots[:1], info[:1],
            nb=nb_d if nb is None else nb,
            threads=th_d if threads is None else threads))]
    return []


def _gbtrs_stages(dev, method, trans, n, kl, ku, nrhs, mats, pivots, rhs,
                  nb, threads, rhs_tile) -> list:
    """Representative solve stages on ``dev`` (two kernels per solve)."""
    from .gbtrs_blocked import (
        BlockedBackwardKernel,
        BlockedForwardKernel,
        BlockedTransLKernel,
        BlockedTransUKernel,
    )
    if method == "reference":
        return []
    if trans is not Trans.NO_TRANS:
        conj = trans is Trans.CONJ_TRANS
        kernels = [
            BlockedTransUKernel(n, kl, ku, nrhs, mats[:1], pivots[:1],
                                rhs[:1], nb=nb, threads=threads,
                                conj=conj),
            BlockedTransLKernel(n, kl, ku, nrhs, mats[:1], pivots[:1],
                                rhs[:1], nb=nb, threads=threads,
                                conj=conj),
        ]
    else:
        kernels = [
            BlockedForwardKernel(n, kl, ku, nrhs, mats[:1], pivots[:1],
                                 rhs[:1], nb=nb, threads=threads,
                                 rhs_tile=rhs_tile),
            BlockedBackwardKernel(n, kl, ku, nrhs, mats[:1], pivots[:1],
                                  rhs[:1], nb=nb, threads=threads,
                                  rhs_tile=rhs_tile),
        ]
    return [_probe_triple(k) for k in kernels]


# --- governed execution dispatch -------------------------------------------

def _run_governed(op, batch, lane_bytes, *, device, stream, resilient,
                  policy, run_chunk, run_host, max_resident_bytes,
                  chunk_hint, streams, devices, overlap, probe_stages,
                  snapshot=None, restore=None):
    """Route one governed call to the sequential or pipelined executor.

    Returns ``(parts, chunks, oom, events, backoff, plan, pipeline_result)``
    — ``pipeline_result`` is None on the sequential path.  ``snapshot`` /
    ``restore`` capture and rewind a lane range's operand slices; the
    pipelined executor uses them to recover chunks orphaned by a device
    outage or watchdog hang (the device fault domain) and to hedge
    straggler chunks.
    """
    from .pipeline import execute_pipelined, pipeline_requested
    if pipeline_requested(streams=streams, devices=devices,
                          overlap=overlap):
        return execute_pipelined(
            op, batch, lane_bytes, device=device, stream=stream,
            streams=streams, devices=devices, overlap=overlap,
            resilient=resilient, policy=policy, run_chunk=run_chunk,
            run_host=run_host, max_resident_bytes=max_resident_bytes,
            chunk_hint=chunk_hint, probe_stages=probe_stages,
            snapshot=snapshot, restore=restore)
    plan = plan_batch(batch, lane_bytes, device=device,
                      max_resident_bytes=max_resident_bytes,
                      chunk_hint=chunk_hint)
    _admit_or_raise(plan, resilient, device)
    parts, chunks, oom, events, backoff = _execute_governed(
        op, batch, plan, device, stream, resilient, policy, run_chunk,
        run_host)
    return parts, chunks, oom, events, backoff, plan, None


def _attach_pipeline(report: BatchReport, presult) -> None:
    if presult is not None:
        report.devices = presult.devices
        report.makespan = presult.makespan
        report.device_events.extend(dict(e) for e in presult.device_events)
        report.failovers += presult.failovers
        report.hedges += presult.hedges


# --- governed drivers ------------------------------------------------------

def gbtrf_batch_governed(m, n, kl, ku, a_array, pv_array=None, info=None,
                         *, batch=None, device: DeviceSpec = H100_PCIE,
                         stream=None, method: str = "auto", nb=None,
                         threads=None, vectorize=None,
                         resilient: bool = False, policy=None,
                         max_resident_bytes: int | None = None,
                         chunk_hint: int | None = None,
                         streams: int | None = None, devices=None,
                         overlap: bool | None = None):
    """Memory-governed :func:`~repro.core.gbtrf.gbtrf_batch`.

    Same contract as the plain driver (``(pivots, info)``, plus the
    report when resilient); the batch is leased from the device pool and
    chunked when it does not fit (or when ``chunk_hint`` caps residency).
    ``streams``/``devices``/``overlap`` route the chunks through the
    pipelined executor (:mod:`repro.core.pipeline`), bit-identically.
    """
    from .gbtrf import gbtrf_batch
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(m, n, kl, ku, mats, batch=batch)
    mn = min(m, n)
    pivots = ensure_pivots(pv_array, batch, mn, arg_pos=7, zero=True)
    info = ensure_info(info, batch, arg_pos=8)
    if batch == 0 or mn == 0:
        if resilient:
            return pivots, info, BatchReport("gbtrf", batch,
                                             method_requested=method,
                                             info=info)
        return pivots, info

    def run_chunk(start, stop, device=device, stream=stream):
        with _suppress_governance():
            res = gbtrf_batch(m, n, kl, ku, mats[start:stop],
                              pivots[start:stop], info[start:stop],
                              batch=stop - start, device=device,
                              stream=stream, method=method, nb=nb,
                              threads=threads, vectorize=vectorize,
                              resilient=resilient, policy=policy)
        return res[2] if resilient else None

    def probe_stages(dev):
        return _gbtrf_stages(dev, method, m, n, kl, ku, mats, pivots,
                             info, nb, threads)

    def snapshot(start, stop):
        # Factorization mutates the band, pivots and info in place — all
        # three must rewind for a failed chunk to replay cleanly.
        return ([mats[k].copy() for k in range(start, stop)],
                [pivots[k].copy() for k in range(start, stop)],
                np.array(info[start:stop], copy=True))

    def restore(start, stop, snap):
        s_m, s_p, s_i = snap
        for j, k in enumerate(range(start, stop)):
            mats[k][...] = s_m[j]
            pivots[k][...] = s_p[j]
        info[start:stop] = s_i

    def run_host(start, stop):
        sub_info = np.zeros(stop - start, dtype=np.int64)
        for j, k in enumerate(range(start, stop)):
            _, inf = gbtf2(m, n, kl, ku, mats[k], pivots[k])
            sub_info[j] = inf
            info[k] = inf
        if not resilient:
            return None
        rep = BatchReport("gbtrf", stop - start, method_requested=method,
                          methods={"gbtrf": HOST_FALLBACK}, info=sub_info)
        rep.fallbacks.append(("gbtrf", "chunked", HOST_FALLBACK))
        bad = tuple(int(j) for j in np.flatnonzero(sub_info > 0))
        rep.quarantined = rep.singular = bad
        return rep

    parts, chunks, oom, events, backoff, plan, presult = _run_governed(
        "gbtrf", batch, _lane_bytes(mats[0], pivots[0]), device=device,
        stream=stream, resilient=resilient, policy=policy,
        run_chunk=run_chunk, run_host=run_host,
        max_resident_bytes=max_resident_bytes, chunk_hint=chunk_hint,
        streams=streams, devices=devices, overlap=overlap,
        probe_stages=probe_stages, snapshot=snapshot, restore=restore)
    if not resilient:
        return pivots, info
    report = _merge("gbtrf", batch, method, parts, info)
    _attach(report, plan, chunks, oom, events, backoff)
    _attach_pipeline(report, presult)
    return pivots, info, report


def gbtrs_batch_governed(trans, n, kl, ku, nrhs, a_array, pv_array,
                         b_array, info=None, *, batch=None,
                         device: DeviceSpec = H100_PCIE, stream=None,
                         method: str = "auto", nb=None, threads=None,
                         rhs_tile=None, vectorize=None,
                         resilient: bool = False, policy=None,
                         max_resident_bytes: int | None = None,
                         chunk_hint: int | None = None,
                         streams: int | None = None, devices=None,
                         overlap: bool | None = None):
    """Memory-governed :func:`~repro.core.gbtrs.gbtrs_batch`.

    Returns ``info`` (plus the report when resilient), chunking the
    factors + pivots + right-hand sides through the device pool.
    ``streams``/``devices``/``overlap`` route the chunks through the
    pipelined executor (:mod:`repro.core.pipeline`), bit-identically.
    """
    from .gbtrs import gbtrs_batch
    trans = Trans.from_any(trans)
    check_arg(nrhs >= 0, 5, f"nrhs must be non-negative, got {nrhs}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=6)
    check_gb_args(n, n, kl, ku, mats, batch=batch, ldab_pos=7)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=8)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=9)
    info = ensure_info(info, batch, arg_pos=11)
    if batch == 0 or n == 0 or nrhs == 0:
        if resilient:
            return info, BatchReport("gbtrs", batch,
                                     method_requested=method, info=info)
        return info

    def run_chunk(start, stop, device=device, stream=stream):
        with _suppress_governance():
            res = gbtrs_batch(trans, n, kl, ku, nrhs, mats[start:stop],
                              pivots[start:stop], rhs[start:stop],
                              info[start:stop], batch=stop - start,
                              device=device, stream=stream, method=method,
                              nb=nb, threads=threads, rhs_tile=rhs_tile,
                              vectorize=vectorize, resilient=resilient,
                              policy=policy)
        return res[1] if resilient else None

    def snapshot(start, stop):
        # A solve mutates only the right-hand sides and info.
        return ([rhs[k].copy() for k in range(start, stop)],
                np.array(info[start:stop], copy=True))

    def restore(start, stop, snap):
        s_r, s_i = snap
        for j, k in enumerate(range(start, stop)):
            rhs[k][...] = s_r[j]
        info[start:stop] = s_i

    def run_host(start, stop):
        for k in range(start, stop):
            gbtrs_unblocked(trans, n, kl, ku, mats[k], pivots[k], rhs[k])
        if not resilient:
            return None
        rep = BatchReport("gbtrs", stop - start, method_requested=method,
                          methods={"gbtrs": HOST_FALLBACK},
                          info=np.zeros(stop - start, dtype=np.int64))
        rep.fallbacks.append(("gbtrs", "chunked", HOST_FALLBACK))
        return rep

    def probe_stages(dev):
        return _gbtrs_stages(dev, method, trans, n, kl, ku, nrhs, mats,
                             pivots, rhs, nb, threads, rhs_tile)

    parts, chunks, oom, events, backoff, plan, presult = _run_governed(
        "gbtrs", batch, _lane_bytes(mats[0], pivots[0], rhs[0]),
        device=device, stream=stream, resilient=resilient, policy=policy,
        run_chunk=run_chunk, run_host=run_host,
        max_resident_bytes=max_resident_bytes, chunk_hint=chunk_hint,
        streams=streams, devices=devices, overlap=overlap,
        probe_stages=probe_stages, snapshot=snapshot, restore=restore)
    if not resilient:
        return info
    report = _merge("gbtrs", batch, method, parts, info)
    _attach(report, plan, chunks, oom, events, backoff)
    _attach_pipeline(report, presult)
    return info, report


def gbsv_batch_governed(n, kl, ku, nrhs, a_array, pv_array, b_array,
                        info=None, *, batch=None,
                        device: DeviceSpec = H100_PCIE, stream=None,
                        method: str = "auto", vectorize=None,
                        resilient: bool = False, policy=None,
                        max_resident_bytes: int | None = None,
                        chunk_hint: int | None = None,
                        streams: int | None = None, devices=None,
                        overlap: bool | None = None):
    """Memory-governed :func:`~repro.core.gbsv.gbsv_batch`.

    Returns ``(pivots, info)`` (plus the report when resilient).  The
    host net keeps LAPACK singularity semantics: factors and pivots are
    written, ``info > 0``, and that lane's ``B`` is left unchanged.
    ``streams``/``devices``/``overlap`` route the chunks through the
    pipelined executor (:mod:`repro.core.pipeline`), bit-identically.
    """
    from .gbsv import gbsv_batch
    check_arg(nrhs >= 0, 4, f"nrhs must be non-negative, got {nrhs}")
    if batch is None:
        batch = len(a_array)
    mats = as_matrix_list(a_array, batch, arg_pos=5)
    check_gb_args(n, n, kl, ku, mats, batch=batch)
    pivots = ensure_pivots(pv_array, batch, n, arg_pos=6, zero=True)
    rhs = as_rhs_list(b_array, batch, n, nrhs, arg_pos=7)
    info = ensure_info(info, batch, arg_pos=8)
    if batch == 0 or n == 0:
        if resilient:
            return pivots, info, BatchReport("gbsv", batch,
                                             method_requested=method,
                                             info=info)
        return pivots, info

    def run_chunk(start, stop, device=device, stream=stream):
        with _suppress_governance():
            res = gbsv_batch(n, kl, ku, nrhs, mats[start:stop],
                             pivots[start:stop], rhs[start:stop],
                             info[start:stop], batch=stop - start,
                             device=device, stream=stream, method=method,
                             vectorize=vectorize, resilient=resilient,
                             policy=policy)
        return res[2] if resilient else None

    def snapshot(start, stop):
        # A combined factor+solve mutates everything it touches.
        return ([mats[k].copy() for k in range(start, stop)],
                [pivots[k].copy() for k in range(start, stop)],
                [rhs[k].copy() for k in range(start, stop)] if nrhs
                else None,
                np.array(info[start:stop], copy=True))

    def restore(start, stop, snap):
        s_m, s_p, s_r, s_i = snap
        for j, k in enumerate(range(start, stop)):
            mats[k][...] = s_m[j]
            pivots[k][...] = s_p[j]
            if s_r is not None:
                rhs[k][...] = s_r[j]
        info[start:stop] = s_i

    def run_host(start, stop):
        sub_info = np.zeros(stop - start, dtype=np.int64)
        for j, k in enumerate(range(start, stop)):
            _, inf = gbtf2(n, n, kl, ku, mats[k], pivots[k])
            sub_info[j] = inf
            info[k] = inf
            if inf == 0 and nrhs:
                gbtrs_unblocked(Trans.NO_TRANS, n, kl, ku, mats[k],
                                pivots[k], rhs[k])
        if not resilient:
            return None
        rep = BatchReport("gbsv", stop - start, method_requested=method,
                          methods={"gbtrf": HOST_FALLBACK,
                                   "gbtrs": HOST_FALLBACK},
                          info=sub_info)
        rep.fallbacks.append(("gbsv", "chunked", HOST_FALLBACK))
        bad = tuple(int(j) for j in np.flatnonzero(sub_info > 0))
        rep.quarantined = rep.singular = bad
        return rep

    def probe_stages(dev):
        from .gbsv import select_gbsv_method
        from .gbsv_fused import FusedGbsvKernel
        meth = method
        if meth == "auto":
            meth = select_gbsv_method(dev, n, kl, ku, nrhs,
                                      mats[0].dtype.itemsize)
        if meth == "fused" and nrhs >= 1:
            return [_probe_triple(FusedGbsvKernel(
                n, kl, ku, nrhs, mats[:1], pivots[:1], rhs[:1],
                info[:1]))]
        stages = _gbtrf_stages(dev, "auto", n, n, kl, ku, mats, pivots,
                               info, None, None)
        if nrhs:
            stages += _gbtrs_stages(dev, "auto", Trans.NO_TRANS, n, kl,
                                    ku, nrhs, mats, pivots, rhs, None,
                                    None, None)
        return stages

    parts, chunks, oom, events, backoff, plan, presult = _run_governed(
        "gbsv", batch,
        _lane_bytes(mats[0], pivots[0], rhs[0] if nrhs else None),
        device=device, stream=stream, resilient=resilient, policy=policy,
        run_chunk=run_chunk, run_host=run_host,
        max_resident_bytes=max_resident_bytes, chunk_hint=chunk_hint,
        streams=streams, devices=devices, overlap=overlap,
        probe_stages=probe_stages, snapshot=snapshot, restore=restore)
    if not resilient:
        return pivots, info
    report = _merge("gbsv", batch, method, parts, info)
    _attach(report, plan, chunks, oom, events, backoff)
    _attach_pipeline(report, presult)
    return pivots, info, report
