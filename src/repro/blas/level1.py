"""Level-1 BLAS building blocks (IAMAX, SWAP, SCAL, AXPY, DOT).

These are the memory-bound primitives the paper's reference GBTF2 design
(Section 5.1) is built from.  They operate on numpy views, so the strided
accesses of band storage (a matrix *row* strides across band columns) come
for free.
"""

from __future__ import annotations

import numpy as np

__all__ = ["iamax", "iamax_batched", "swap", "scal", "scal_batched",
           "stable_mul", "axpy", "dot", "nrm2", "asum"]


def stable_mul(x, y):
    """Elementwise product whose rounding does not depend on array shape.

    numpy's complex multiply is not shape-stable: the contiguous SIMD main
    loop contracts ``re*re - im*im`` with FMA while the scalar/strided/tail
    loop evaluates the naive real-decomposed formula, so the same operand
    values multiplied under different shapes or strides can differ in the
    last ulp.  The batch-interleaved kernels must produce factors that are
    bit-identical to the per-matrix reference path, so every complex
    multiply in the factor/solve building blocks routes through this
    helper.  It evaluates the naive formula with real arithmetic — real
    multiply/add/subtract are correctly rounded elementwise in every numpy
    loop, hence shape-stable.  Real dtypes multiply directly (also
    correctly rounded elementwise, so already stable).
    """
    # Propagating non-finite lanes (singular solves, poisoned operands)
    # legitimately evaluates inf*0 and inf-inf here; LAPACK raises no IEEE
    # flags for these, so neither do we.
    with np.errstate(invalid="ignore"):
        if not (np.iscomplexobj(x) or np.iscomplexobj(y)):
            return x * y
        x = np.asarray(x)
        y = np.asarray(y)
        xr, xi = x.real, x.imag
        yr, yi = y.real, y.imag
        out = np.empty(np.broadcast_shapes(x.shape, y.shape),
                       dtype=np.result_type(x, y))
        out.real = xr * yr - xi * yi
        out.imag = xr * yi + xi * yr
        return out


def iamax(x: np.ndarray) -> int:
    """Index of the entry with the largest ``|real| + |imag|`` magnitude.

    LAPACK's pivot search (``IDAMAX``/``IZAMAX``) uses the 1-norm of the
    components for complex data, not the modulus; we match that so pivot
    sequences agree with LAPACK exactly.  Ties resolve to the first
    occurrence, also matching LAPACK.  Returns a 0-based index.
    """
    if x.size == 0:
        return 0
    if np.iscomplexobj(x):
        mag = np.abs(x.real) + np.abs(x.imag)
    else:
        mag = np.abs(x)
    return int(np.argmax(mag))


def iamax_batched(x: np.ndarray) -> np.ndarray:
    """Batch-interleaved IAMAX: one pivot search per row of ``x``.

    ``x`` has shape ``(batch, k)``; returns a ``(batch,)`` int64 vector of
    0-based indices, each computed with exactly the semantics of
    :func:`iamax` (``|real| + |imag|`` magnitude, first-occurrence ties).
    One ``argmax`` call advances the whole batch — the Python analogue of
    the one-instruction-stream-per-column interleaved layout.
    """
    if x.shape[-1] == 0:
        return np.zeros(x.shape[0], dtype=np.int64)
    if np.iscomplexobj(x):
        mag = np.abs(x.real) + np.abs(x.imag)
    else:
        mag = np.abs(x)
    return np.argmax(mag, axis=-1).astype(np.int64)


def swap(x: np.ndarray, y: np.ndarray) -> None:
    """Exchange the contents of two equal-length views, in place."""
    tmp = x.copy()
    x[...] = y
    y[...] = tmp


def scal(alpha, x: np.ndarray) -> None:
    """``x *= alpha`` in place."""
    x *= alpha


def scal_batched(alpha: np.ndarray, x: np.ndarray) -> None:
    """Batch-interleaved SCAL: ``x[b] *= alpha[b]`` for every problem ``b``.

    ``alpha`` has shape ``(batch,)`` and ``x`` shape ``(batch, ...)``; each
    element sees the identical multiply the per-problem :func:`scal` would
    perform, so results are bit-for-bit equal.  Complex data routes
    through :func:`stable_mul` so the rounding cannot shift with the loop
    numpy happens to pick for the batched shape.
    """
    a = alpha.reshape((-1,) + (1,) * (x.ndim - 1))
    if np.iscomplexobj(x):
        x[...] = stable_mul(x, a)
    else:
        x *= a


def axpy(alpha, x: np.ndarray, y: np.ndarray) -> None:
    """``y += alpha * x`` in place."""
    y += alpha * x


def dot(x: np.ndarray, y: np.ndarray, *, conj: bool = False):
    """Inner product; ``conj=True`` conjugates ``x`` (``DOTC``)."""
    if conj:
        x = np.conj(x)
    return np.sum(x * y)


def nrm2(x: np.ndarray) -> float:
    """Euclidean norm."""
    return float(np.linalg.norm(x))


def asum(x: np.ndarray) -> float:
    """Sum of ``|real| + |imag|`` (BLAS ``ASUM`` semantics)."""
    if np.iscomplexobj(x):
        return float(np.sum(np.abs(x.real) + np.abs(x.imag)))
    return float(np.sum(np.abs(x)))
