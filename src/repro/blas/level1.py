"""Level-1 BLAS building blocks (IAMAX, SWAP, SCAL, AXPY, DOT).

These are the memory-bound primitives the paper's reference GBTF2 design
(Section 5.1) is built from.  They operate on numpy views, so the strided
accesses of band storage (a matrix *row* strides across band columns) come
for free.
"""

from __future__ import annotations

import numpy as np

__all__ = ["iamax", "swap", "scal", "axpy", "dot", "nrm2", "asum"]


def iamax(x: np.ndarray) -> int:
    """Index of the entry with the largest ``|real| + |imag|`` magnitude.

    LAPACK's pivot search (``IDAMAX``/``IZAMAX``) uses the 1-norm of the
    components for complex data, not the modulus; we match that so pivot
    sequences agree with LAPACK exactly.  Ties resolve to the first
    occurrence, also matching LAPACK.  Returns a 0-based index.
    """
    if x.size == 0:
        return 0
    if np.iscomplexobj(x):
        mag = np.abs(x.real) + np.abs(x.imag)
    else:
        mag = np.abs(x)
    return int(np.argmax(mag))


def swap(x: np.ndarray, y: np.ndarray) -> None:
    """Exchange the contents of two equal-length views, in place."""
    tmp = x.copy()
    x[...] = y
    y[...] = tmp


def scal(alpha, x: np.ndarray) -> None:
    """``x *= alpha`` in place."""
    x *= alpha


def axpy(alpha, x: np.ndarray, y: np.ndarray) -> None:
    """``y += alpha * x`` in place."""
    y += alpha * x


def dot(x: np.ndarray, y: np.ndarray, *, conj: bool = False):
    """Inner product; ``conj=True`` conjugates ``x`` (``DOTC``)."""
    if conj:
        x = np.conj(x)
    return np.sum(x * y)


def nrm2(x: np.ndarray) -> float:
    """Euclidean norm."""
    return float(np.linalg.norm(x))


def asum(x: np.ndarray) -> float:
    """Sum of ``|real| + |imag|`` (BLAS ``ASUM`` semantics)."""
    if np.iscomplexobj(x):
        return float(np.sum(np.abs(x.real) + np.abs(x.imag)))
    return float(np.sum(np.abs(x)))
