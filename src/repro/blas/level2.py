"""Level-2 BLAS building blocks (GER, GEMV, TRSV).

``ger`` is the rank-1 update at the heart of every right-looking LU step;
``gemv`` doubles as the bandwidth micro-benchmark used by the paper to
estimate sustained memory bandwidth (Section 8).
"""

from __future__ import annotations

import numpy as np

from ..errors import check_arg
from ..types import Trans
from .level1 import stable_mul

__all__ = ["ger", "ger_batched", "gemv", "trsv"]


def ger(alpha, x: np.ndarray, y: np.ndarray, a: np.ndarray) -> None:
    """Rank-1 update ``a += alpha * outer(x, y)`` in place.

    ``a`` may be any (possibly non-contiguous) 2-D view, which is how the
    band kernels apply the update across the diagonal-striped storage.
    """
    check_arg(a.shape == (x.shape[0], y.shape[0]), 4,
              f"a has shape {a.shape}, expected {(x.shape[0], y.shape[0])}")
    a += alpha * np.outer(x, y)


def ger_batched(alpha, x: np.ndarray, y: np.ndarray, a: np.ndarray) -> None:
    """Batch-interleaved GER: ``a[b] += alpha * outer(x[b], y[b])``.

    ``x`` is ``(batch, m)``, ``y`` is ``(batch, n)`` and ``a`` is
    ``(batch, m, n)``.  Every element receives the identical fused
    multiply/add the per-problem :func:`ger` would apply (``alpha = -1``
    flips signs exactly, so ``a += -outer`` matches ``a -= outer``
    bit-for-bit), advancing all problems in one instruction stream.
    """
    check_arg(a.shape == (x.shape[0], x.shape[1], y.shape[1]), 4,
              f"a has shape {a.shape}, expected "
              f"{(x.shape[0], x.shape[1], y.shape[1])}")
    a += alpha * stable_mul(x[:, :, None], y[:, None, :])


def gemv(trans: Trans | str, alpha, a: np.ndarray, x: np.ndarray,
         beta, y: np.ndarray) -> np.ndarray:
    """``y = alpha * op(a) @ x + beta * y`` in place; returns ``y``."""
    trans = Trans.from_any(trans)
    if trans is Trans.NO_TRANS:
        op = a
    elif trans is Trans.TRANS:
        op = a.T
    else:
        op = a.conj().T
    check_arg(x.shape[0] == op.shape[1], 4,
              f"x has length {x.shape[0]}, expected {op.shape[1]}")
    check_arg(y.shape[0] == op.shape[0], 6,
              f"y has length {y.shape[0]}, expected {op.shape[0]}")
    y *= beta
    y += alpha * (op @ x)
    return y


def trsv(uplo: str, trans: Trans | str, diag: str, a: np.ndarray,
         x: np.ndarray) -> np.ndarray:
    """Solve ``op(T) x = b`` in place for triangular ``T`` stored in ``a``.

    ``uplo`` in {'L', 'U'}, ``diag`` in {'N', 'U'} ('U' = unit diagonal, the
    convention of the L factor from LU).  The solve is column-oriented,
    matching the access pattern of the paper's blocked GBTRS kernels.
    """
    trans = Trans.from_any(trans)
    uplo = uplo.upper()
    diag = diag.upper()
    check_arg(uplo in ("L", "U"), 1, f"uplo must be 'L' or 'U', got {uplo!r}")
    check_arg(diag in ("N", "U"), 3, f"diag must be 'N' or 'U', got {diag!r}")
    n = a.shape[0]
    check_arg(a.shape == (n, n), 4, f"a must be square, got {a.shape}")
    check_arg(x.shape[0] == n, 5, f"x has length {x.shape[0]}, expected {n}")

    if trans is Trans.CONJ_TRANS:
        a = a.conj()
        trans = Trans.TRANS
    if trans is Trans.TRANS:
        a = a.T
        uplo = "U" if uplo == "L" else "L"

    if uplo == "L":
        order = range(n)
    else:
        order = range(n - 1, -1, -1)
    for j in order:
        if diag == "N":
            x[j] = x[j] / a[j, j]
        if uplo == "L":
            if j + 1 < n:
                x[j + 1:] -= a[j + 1:, j] * x[j]
        else:
            if j > 0:
                x[:j] -= a[:j, j] * x[j]
    return x
