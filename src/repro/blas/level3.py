"""Level-3 BLAS building blocks (GEMM, batched GEMM/GEMV).

The batched variants are the workloads of the paper's Figure 1 (dedicated
batch kernels versus concurrent-stream execution) and are reused by the GPU
simulator's GEMM/GEMV kernels.
"""

from __future__ import annotations

import numpy as np

from ..errors import check_arg
from ..types import Trans

__all__ = ["gemm", "gemm_batch", "gemv_batch"]


def _op(trans: Trans | str, a: np.ndarray) -> np.ndarray:
    trans = Trans.from_any(trans)
    if trans is Trans.NO_TRANS:
        return a
    if trans is Trans.TRANS:
        return np.swapaxes(a, -1, -2)
    return np.conj(np.swapaxes(a, -1, -2))


def gemm(transa: Trans | str, transb: Trans | str, alpha,
         a: np.ndarray, b: np.ndarray, beta, c: np.ndarray) -> np.ndarray:
    """``c = alpha * op(a) @ op(b) + beta * c`` in place; returns ``c``."""
    oa, ob = _op(transa, a), _op(transb, b)
    check_arg(oa.shape[1] == ob.shape[0], 5,
              f"inner dimensions disagree: {oa.shape} @ {ob.shape}")
    check_arg(c.shape == (oa.shape[0], ob.shape[1]), 7,
              f"c has shape {c.shape}, expected {(oa.shape[0], ob.shape[1])}")
    c *= beta
    c += alpha * (oa @ ob)
    return c


def gemm_batch(transa: Trans | str, transb: Trans | str, alpha,
               a: np.ndarray, b: np.ndarray, beta,
               c: np.ndarray) -> np.ndarray:
    """Uniform batched GEMM over leading batch axes; updates ``c`` in place."""
    oa, ob = _op(transa, a), _op(transb, b)
    check_arg(oa.shape[0] == ob.shape[0] == c.shape[0], 4,
              f"batch sizes disagree: {oa.shape[0]}, {ob.shape[0]}, {c.shape[0]}")
    c *= beta
    c += alpha * np.matmul(oa, ob)
    return c


def gemv_batch(trans: Trans | str, alpha, a: np.ndarray, x: np.ndarray,
               beta, y: np.ndarray) -> np.ndarray:
    """Uniform batched GEMV: ``a`` is ``(batch, m, n)``, ``x``/``y`` stacked."""
    oa = _op(trans, a)
    check_arg(oa.shape[0] == x.shape[0] == y.shape[0], 3,
              f"batch sizes disagree: {oa.shape[0]}, {x.shape[0]}, {y.shape[0]}")
    y *= beta
    y += alpha * np.einsum("bij,bj->bi", oa, x)
    return y
