"""Mini-BLAS: the level-1/2/3 building blocks used by the band kernels."""

from .level1 import asum, axpy, dot, iamax, nrm2, scal, swap
from .level2 import gemv, ger, trsv
from .level3 import gemm, gemm_batch, gemv_batch

__all__ = [
    "asum", "axpy", "dot", "iamax", "nrm2", "scal", "swap",
    "gemv", "ger", "trsv",
    "gemm", "gemm_batch", "gemv_batch",
]
