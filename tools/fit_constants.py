"""Coordinate-descent fit of device/CPU cost constants to the paper's tables."""
import dataclasses, itertools, math
import numpy as np
from repro.bench.harness import time_gbtrf, time_gbsv
from repro.cpu.costmodel import CpuSpec, cpu_gbtrf_time, cpu_gbsv_time
from repro.gpusim.device import H100_PCIE, MI250X_GCD

SIZES = [32,64,128,192,256,320,384,448,512,576,640,704,768,832,896,960,1024]

TARGETS = [
    # (table, device, kl, ku, nrhs, paper_min, paper_max, paper_avg)
    ("trf","h", 2,3, None, 2.13,3.43,3.07),
    ("trf","h",10,7, None, 3.07,4.27,3.56),
    ("trf","m", 2,3, None, 1.67,2.32,1.88),
    ("trf","m",10,7, None, 0.96,2.01,1.16),
    ("sv","h", 2,3, 1, 2.23,3.58,2.54),
    ("sv","h",10,7, 1, 2.79,4.65,3.03),
    ("sv","m", 2,3, 1, 1.22,2.58,1.59),
    ("sv","m",10,7, 1, 0.92,1.66,1.11),
    ("sv","h", 2,3, 10, 3.33,4.85,3.69),
    ("sv","h",10,7, 10, 4.12,7.67,4.64),
    ("sv","m", 2,3, 10, 1.40,2.11,1.57),
    ("sv","m",10,7, 10, 1.42,3.41,1.61),
]

def make_devices(p):
    h = dataclasses.replace(H100_PCIE, sync_latency=p["h_sync"], smem_bw_per_block=p["h_smem"], _skip=None) if False else dataclasses.replace(H100_PCIE, sync_latency=p["h_sync"], smem_bw_per_block=p["h_smem"])
    m = dataclasses.replace(MI250X_GCD, sync_latency=p["m_sync"], smem_bw_per_block=p["m_smem"], smem_block_overhead=5120)
    return h, m

def make_cpu(p):
    return CpuSpec(column_cost=p["c_col"], flop_time=p["c_flop"],
                   rhs_column_cost=p["c_rcol"], rhs_flop_time=p["c_rflop"],
                   rhs_vector_efficiency=p["c_rvec"])

def objective(p, detail=False):
    h, m = make_devices(p)
    cpu = make_cpu(p)
    dev = {"h": h, "m": m}
    err = 0.0
    rows = []
    for tab, d, kl, ku, nrhs, pmin, pmax, pavg in TARGETS:
        sp = []
        for n in SIZES:
            if tab == "trf":
                g = time_gbtrf(dev[d], n, kl, ku)
                c = cpu_gbtrf_time(cpu, n, n, kl, ku, 1000)
            else:
                g = time_gbsv(dev[d], n, kl, ku, nrhs)
                c = cpu_gbsv_time(cpu, n, kl, ku, nrhs, 1000)
            sp.append(c/g)
        mn, mx, avg = min(sp), max(sp), sum(sp)/len(sp)
        err += math.log(avg/pavg)**2 + 0.3*math.log(mn/pmin)**2 + 0.3*math.log(mx/pmax)**2
        rows.append((tab,d,kl,ku,nrhs,mn,mx,avg,pmin,pmax,pavg))
    if detail:
        for r in rows:
            print(f"  {r[0]:>3} {r[1]} ({r[2]:>2},{r[3]}) rhs={r[4]}: model {r[5]:4.2f}/{r[6]:4.2f}/{r[7]:4.2f}  paper {r[8]:4.2f}/{r[9]:4.2f}/{r[10]:4.2f}")
    return err

p = dict(h_sync=1.5e-7, h_smem=9.0e10, m_sync=1.2e-7, m_smem=3.6e10,
         c_col=3.0e-8, c_flop=1.3e-10, c_rcol=6e-9, c_rflop=2.0e-10, c_rvec=0.75)

grid = dict(
    h_sync=[1.2e-7,1.35e-7,1.5e-7,1.7e-7,1.9e-7],
    h_smem=[6e10,7.5e10,9e10,11e10],
    m_sync=[1.0e-7,1.2e-7,1.4e-7,1.6e-7,1.9e-7],
    m_smem=[2.4e10,3.0e10,3.6e10,4.4e10],
    c_col=[2.4e-8,2.8e-8,3.2e-8,3.6e-8,4.2e-8],
    c_flop=[1.0e-10,1.15e-10,1.3e-10,1.5e-10],
    c_rcol=[4e-9,6e-9,9e-9,1.3e-8],
    c_rflop=[1.6e-10,2.0e-10,2.6e-10,3.4e-10],
    c_rvec=[0.55,0.65,0.75,0.9],
)

best = objective(p)
print("start err", best)
for sweep in range(4):
    improved = False
    for key, cands in grid.items():
        for v in cands:
            if v == p[key]: continue
            q = dict(p); q[key] = v
            e = objective(q)
            if e < best - 1e-6:
                best, p, improved = e, q, True
    print(f"sweep {sweep}: err {best:.4f}  {p}")
    if not improved: break
print()
objective(p, detail=True)
print("FINAL:", p, "err", best)
