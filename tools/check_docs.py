#!/usr/bin/env python
"""Execute the code samples embedded in the repo's markdown docs.

Every fenced ``python`` block in the checked files must run: blocks
written as interactive sessions (``>>>`` prompts) are checked with
:mod:`doctest` (outputs compared), plain blocks are ``exec``-ed.  Blocks
fenced as ``python no-run`` are skipped — that tag marks pseudo-signature
listings and deliberately-slow examples.  All blocks of one file share a
namespace, in order, so a later fence may use names a former one defined
(the README quickstart does exactly that).

Usage::

    python tools/check_docs.py [file.md ...]
    python tools/check_docs.py --freshness [root]

With no arguments the default set is checked: ``README.md`` and every
``docs/*.md``.  Exits non-zero on the first failing block, printing the
file, fence number and error.

``--freshness`` audits the registration itself: every markdown file in
the tree that carries runnable ``python`` fences must be *in* the
default set (or be one of the known repo-meta files in ``EXEMPT``, whose
code blocks are reference material, not examples).  A doctested guide
that never runs is worse than none — it rots silently — so CI fails
when one appears outside the checked set.
"""

from __future__ import annotations

import doctest
import re
import sys
import traceback
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Repo-meta markdown whose code blocks are reference material (paper
#: excerpts, exemplar snippets, task logs) — never doc examples to run.
EXEMPT = {"SNIPPETS.md", "PAPER.md", "PAPERS.md", "ISSUE.md",
          "CHANGES.md", "ROADMAP.md"}

FENCE_RE = re.compile(
    r"^```([^\n`]*)\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL)


def python_blocks(text: str):
    """Yield ``(ordinal, line, source, skipped)`` for python fences."""
    ordinal = 0
    for match in FENCE_RE.finditer(text):
        info = match.group(1).strip().lower().split()
        if not info or info[0] != "python":
            continue
        ordinal += 1
        line = text.count("\n", 0, match.start()) + 1
        yield ordinal, line, match.group(2), "no-run" in info


def run_block(source: str, namespace: dict, where: str) -> list[str]:
    """Run one fence in ``namespace``; return a list of failure texts."""
    if re.search(r"^\s*>>>", source, re.MULTILINE):
        parser = doctest.DocTestParser()
        test = parser.get_doctest(source, namespace, where, where, 0)
        runner = doctest.DocTestRunner(verbose=False,
                                       optionflags=doctest.ELLIPSIS)
        failures: list[str] = []
        runner.run(test, out=failures.append)
        return failures
    try:
        exec(compile(source, where, "exec"), namespace)
    except Exception:
        return [traceback.format_exc()]
    return []


def check_file(path: Path) -> int:
    text = path.read_text()
    namespace: dict = {"__name__": "__docs__"}
    checked = failed = 0
    for ordinal, line, source, skipped in python_blocks(text):
        where = f"{path}:{line} (python fence #{ordinal})"
        if skipped:
            continue
        checked += 1
        failures = run_block(source, namespace, where)
        if failures:
            failed += 1
            print(f"FAILED {where}")
            for chunk in failures:
                print(chunk, end="" if chunk.endswith("\n") else "\n")
    print(f"{path}: {checked} block(s) checked, {failed} failed")
    return failed


def default_set(root: Path) -> list[Path]:
    """The registered docs: ``README.md`` plus every ``docs/*.md``."""
    return [root / "README.md", *sorted((root / "docs").glob("*.md"))]


def check_freshness(root: Path) -> int:
    """Fail when a markdown file outside the default set has runnable
    python fences (it would never be checked — silent rot)."""
    registered = {p.resolve() for p in default_set(root)}
    scanned = 0
    stale: list[tuple[Path, int]] = []
    for path in sorted(root.rglob("*.md")):
        rel = path.relative_to(root)
        if any(part.startswith(".") for part in rel.parts):
            continue
        if path.resolve() in registered or path.name in EXEMPT:
            continue
        scanned += 1
        runnable = sum(1 for _, _, _, skipped
                       in python_blocks(path.read_text())
                       if not skipped)
        if runnable:
            stale.append((rel, runnable))
    for rel, runnable in stale:
        print(f"unregistered doctested file: {rel} "
              f"({runnable} runnable python fence(s)) — move it under "
              f"docs/, or fence the blocks as `python no-run`")
    if not stale:
        print(f"freshness: {scanned} unregistered file(s) scanned, "
              f"none carry runnable python fences")
    return 1 if stale else 0


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--freshness":
        root = Path(argv[1]).resolve() if len(argv) > 1 else REPO
        if not root.is_dir():
            print(f"not a directory: {root}")
            return 1
        return check_freshness(root)
    if argv:
        paths = [Path(a) for a in argv]
    else:
        paths = default_set(REPO)
    total = 0
    for path in paths:
        if not path.exists():
            print(f"missing: {path}")
            total += 1
            continue
        total += check_file(path)
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
