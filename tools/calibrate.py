"""Calibration dashboard: paper targets vs current model output."""
import numpy as np
from repro.bench.harness import *
from repro.gpusim.device import H100_PCIE, MI250X_GCD
from repro.errors import SharedMemoryError

SIZES = [32,64,128,192,256,320,384,448,512,576,640,704,768,832,896,960,1024]

def summary(times_gpu, times_cpu):
    sp = [c/g for c,g in zip(times_cpu, times_gpu)]
    return min(sp), max(sp), sum(sp)/len(sp)

def table(name, fn_gpu, fn_cpu, paper):
    print(f"--- {name} ---")
    for (kl,ku),(dev,label),pp in paper:
        g = [fn_gpu(dev,n,kl,ku) for n in SIZES]
        c = [fn_cpu(n,kl,ku) for n in SIZES]
        mn,mx,avg = summary(g,c)
        print(f"  ({kl:>2},{ku:>2}) {label:<10} model {mn:4.2f}/{mx:4.2f}/{avg:4.2f}   paper {pp[0]:4.2f}/{pp[1]:4.2f}/{pp[2]:4.2f}")

# Table 1: GBTRF
table("Table 1 GBTRF (min/max/avg speedup)",
      lambda d,n,kl,ku: time_gbtrf(d,n,kl,ku),
      lambda n,kl,ku: time_cpu_gbtrf(n,kl,ku),
      [((2,3),(H100_PCIE,'H100'),(2.13,3.43,3.07)),
       ((10,7),(H100_PCIE,'H100'),(3.07,4.27,3.56)),
       ((2,3),(MI250X_GCD,'MI250x'),(1.67,2.32,1.88)),
       ((10,7),(MI250X_GCD,'MI250x'),(0.96,2.01,1.16))])

# Table 2: GBSV 1 rhs
table("Table 2 GBSV 1RHS",
      lambda d,n,kl,ku: time_gbsv(d,n,kl,ku,1),
      lambda n,kl,ku: time_cpu_gbsv(n,kl,ku,1),
      [((2,3),(H100_PCIE,'H100'),(2.23,3.58,2.54)),
       ((10,7),(H100_PCIE,'H100'),(2.79,4.65,3.03)),
       ((2,3),(MI250X_GCD,'MI250x'),(1.22,2.58,1.59)),
       ((10,7),(MI250X_GCD,'MI250x'),(0.92,1.66,1.11))])

# Table 3: GBSV 10 rhs
table("Table 3 GBSV 10RHS",
      lambda d,n,kl,ku: time_gbsv(d,n,kl,ku,10),
      lambda n,kl,ku: time_cpu_gbsv(n,kl,ku,10),
      [((2,3),(H100_PCIE,'H100'),(3.33,4.85,3.69)),
       ((10,7),(H100_PCIE,'H100'),(4.12,7.67,4.64)),
       ((2,3),(MI250X_GCD,'MI250x'),(1.40,2.11,1.57)),
       ((10,7),(MI250X_GCD,'MI250x'),(1.42,3.41,1.61))])

# nrhs scaling (paper: CPU x2.18/(2,3) x1.93/(10,7); H100 +49%/+25%; MI +119%?? avg 2.19x/(2,3), 1.33x/(10,7))
print("--- RHS=10 vs RHS=1 time ratios (avg over sizes) ---")
for (kl,ku), targets in [((2,3),{'cpu':2.18,'h100':1.49,'mi':2.19}),((10,7),{'cpu':1.93,'h100':1.25,'mi':1.33})]:
    r_cpu = np.mean([time_cpu_gbsv(n,kl,ku,10)/time_cpu_gbsv(n,kl,ku,1) for n in SIZES])
    r_h = np.mean([time_gbsv(H100_PCIE,n,kl,ku,10)/time_gbsv(H100_PCIE,n,kl,ku,1) for n in SIZES])
    r_m = np.mean([time_gbsv(MI250X_GCD,n,kl,ku,10)/time_gbsv(MI250X_GCD,n,kl,ku,1) for n in SIZES])
    print(f"  ({kl},{ku}) cpu {r_cpu:.2f} (paper {targets['cpu']}) h100 {r_h:.2f} ({targets['h100']}) mi {r_m:.2f} ({targets['mi']})")

# H100/MI250x GBSV gap (paper: up to 1.88x for (2,3), up to 3.68x for (10,7))
print("--- H100 vs MI250x GBSV gap (max over sizes) ---")
for (kl,ku),t in [((2,3),1.88),((10,7),3.68)]:
    gaps = [time_gbsv(MI250X_GCD,n,kl,ku,1)/time_gbsv(H100_PCIE,n,kl,ku,1) for n in SIZES]
    print(f"  ({kl},{ku}) max gap {max(gaps):.2f} (paper up to {t})")

# Fig 7 crossover: fused vs standard GBSV
print("--- Fig 7 fused vs standard GBSV (1 rhs), crossover ---")
for dev,label in [(H100_PCIE,'H100'),(MI250X_GCD,'MI250x')]:
    for (kl,ku) in [(2,3),(10,7)]:
        xs=[]
        for n in range(8,129,8):
            try: f = time_gbsv(dev,n,kl,ku,1,method='fused')
            except SharedMemoryError: f=float('inf')
            s = time_gbsv(dev,n,kl,ku,1,method='standard')
            xs.append((n, f<s))
        cross = next((n for n,w in xs if not w), None)
        print(f"  {label} ({kl},{ku}): fused wins until n={cross} (paper ~64)")

# MI fused occupancy drop 416->448 (2,3)
from repro.gpusim.occupancy import occupancy
from repro.band.layout import BandLayout
for n in [416, 448]:
    el = BandLayout(n,n,2,3).fused_elems()*8
    occ = occupancy(MI250X_GCD, 32, el)
    print(f"MI fused (2,3) n={n}: blocks/SM={occ.blocks_per_sm}")
