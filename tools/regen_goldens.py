"""Regenerate the golden numbers for tests/test_model_regression.py."""
from repro.bench.harness import time_cpu_gbsv, time_cpu_gbtrf, time_gbsv, time_gbtrf
from repro.gpusim import H100_PCIE, MI250X_GCD

cases = [
    ("h100 gbtrf (2,3) n=512", lambda: time_gbtrf(H100_PCIE, 512, 2, 3)),
    ("h100 gbtrf (10,7) n=512", lambda: time_gbtrf(H100_PCIE, 512, 10, 7)),
    ("mi250x gbtrf (2,3) n=512", lambda: time_gbtrf(MI250X_GCD, 512, 2, 3)),
    ("mi250x gbtrf (10,7) n=512", lambda: time_gbtrf(MI250X_GCD, 512, 10, 7)),
    ("h100 gbsv (2,3) n=512 1rhs", lambda: time_gbsv(H100_PCIE, 512, 2, 3, 1)),
    ("h100 gbsv (2,3) n=512 10rhs", lambda: time_gbsv(H100_PCIE, 512, 2, 3, 10)),
    ("mi250x gbsv (10,7) n=512 1rhs", lambda: time_gbsv(MI250X_GCD, 512, 10, 7, 1)),
    ("h100 fused gbtrf (2,3) n=448", lambda: time_gbtrf(H100_PCIE, 448, 2, 3, method="fused")),
    ("mi250x fused gbtrf (2,3) n=448", lambda: time_gbtrf(MI250X_GCD, 448, 2, 3, method="fused")),
    ("cpu gbtrf (2,3) n=512", lambda: time_cpu_gbtrf(512, 2, 3)),
    ("cpu gbsv (10,7) n=512 10rhs", lambda: time_cpu_gbsv(512, 10, 7, 10)),
]
for desc, fn in cases:
    print(f'    ("{desc}", ..., {fn():.4e}),')
