"""Device-memory governance: pools, planning, chunking, OOM degradation.

Pins the memory-governance contract end to end:

* the planner's footprint estimates and admission decisions;
* chunked execution bit-identical to unchunked across every execution
  path (per-block, ``[vec]``, ``[vec+pack]``), with chunk boundaries
  swept around the batch size;
* the OOM degradation ladder (halve -> per-lane -> host) under injected
  allocation storms, with every recovery attributed in the report;
* fault-plan determinism under chunking (global lane addressing);
* the transfer/traffic accounting fixes (uploads and downloads always
  route through a :class:`~repro.gpusim.memory.TrafficCounter`);
* :class:`~repro.core.resilience.BatchReport` structured-logging
  round-trips.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.band.generate import random_band_batch, random_rhs
from repro.core import (
    estimate_footprint,
    estimate_vbatch_footprint,
    gbsv_batch,
    gbsv_vbatch,
    gbtrf_batch,
    gbtrs_batch,
    plan_batch,
)
from repro.core.memory_plan import governance_active
from repro.core.resilience import BatchReport
from repro.errors import ArgumentError, DeviceMemoryError
from repro.gpusim import (
    H100_PCIE,
    DeviceBuffer,
    FaultPlan,
    PointerArray,
    Stream,
    fault_injection,
    memory_pool,
    reset_memory_pools,
)
from repro.gpusim.memory import TrafficCounter
from repro.gpusim.transfer import memcpy_d2h, memcpy_h2d


def lane_cost(n, kl, ku, nrhs=0):
    """Exact per-lane bytes the governed drivers charge (float64)."""
    return estimate_footprint("gbtrs" if nrhs else "gbtrf", batch=1, n=n,
                              kl=kl, ku=ku, nrhs=nrhs)


# --- planner ---------------------------------------------------------------

class TestPlanner:
    def test_estimate_footprint_scales_linearly(self):
        one = estimate_footprint("gbtrf", batch=1, n=32, kl=2, ku=3)
        many = estimate_footprint("gbtrf", batch=50, n=32, kl=2, ku=3)
        assert many == 50 * one
        # matrix (2*kl+ku+1 rows) + pivots + info + two pointers
        assert one == 8 * 32 * 8 + 32 * 8 + 8 + 16

    def test_estimate_footprint_counts_rhs(self):
        trf = estimate_footprint("gbtrf", batch=4, n=24, kl=1, ku=1)
        trs = estimate_footprint("gbtrs", batch=4, n=24, kl=1, ku=1, nrhs=3)
        assert trs == trf + 4 * (24 * 3 * 8 + 8)
        assert estimate_footprint("gbsv", batch=4, n=24, kl=1, ku=1,
                                  nrhs=3) == trs

    def test_estimate_footprint_rejects_unknown_op(self):
        with pytest.raises(ArgumentError):
            estimate_footprint("getrf", batch=1, n=4, kl=1, ku=1)

    def test_estimate_vbatch_is_sum_of_lanes(self):
        ns, kls, kus, nrhss = [8, 16, 8], [1, 2, 1], [1, 3, 1], [1, 2, 1]
        total = estimate_vbatch_footprint("gbsv", ns, kls, kus, nrhss=nrhss)
        assert total == sum(
            estimate_footprint("gbsv", batch=1, n=n, kl=kl, ku=ku, nrhs=r)
            for n, kl, ku, r in zip(ns, kls, kus, nrhss))

    def test_plan_admits_when_batch_fits(self):
        plan = plan_batch(10, 1000, device=H100_PCIE)
        assert plan.admitted and plan.chunk == 10 and not plan.chunked
        assert plan.num_chunks == 1
        assert plan.footprint == 10_000

    def test_plan_chunks_against_max_resident(self):
        plan = plan_batch(10, 1000, device=H100_PCIE,
                          max_resident_bytes=3500)
        assert not plan.admitted
        assert plan.chunk == 3 and plan.num_chunks == 4
        assert plan.budget == 3500

    def test_chunk_hint_only_shrinks(self):
        plan = plan_batch(10, 1000, device=H100_PCIE, chunk_hint=4)
        assert plan.admitted and plan.chunk == 4 and plan.chunked
        capped = plan_batch(10, 1000, device=H100_PCIE,
                            max_resident_bytes=2000, chunk_hint=100)
        assert capped.chunk == 2  # the hint cannot grow past the budget

    def test_plan_validates_knobs(self):
        with pytest.raises(ArgumentError):
            plan_batch(4, 100, device=H100_PCIE, max_resident_bytes=0)
        with pytest.raises(ArgumentError):
            plan_batch(4, 100, device=H100_PCIE, chunk_hint=-1)

    def test_governance_exemptions(self):
        assert governance_active()
        assert not governance_active(execute=False)
        assert not governance_active(max_blocks=2)
        stream = Stream(H100_PCIE)
        stream._capturing = True
        assert not governance_active(stream=stream)


# --- chunked execution is bit-identical ------------------------------------

def factor_ref(batch, n, kl, ku, seed):
    a = random_band_batch(batch, n, kl, ku, seed=seed)
    ref = a.copy()
    piv, info = gbtrf_batch(n, n, kl, ku, ref, batch=batch)
    return a, ref, piv, info


class TestChunkedBitIdentity:
    N, KL, KU, BATCH = 24, 2, 3, 10

    @pytest.mark.parametrize("hint", [1, 2, 3, 9, 10, 11, 64])
    def test_gbtrf_boundary_sweep(self, hint):
        a, ref, piv0, info0 = factor_ref(self.BATCH, self.N, self.KL,
                                         self.KU, seed=3)
        work = a.copy()
        piv, info = gbtrf_batch(self.N, self.N, self.KL, self.KU, work,
                                batch=self.BATCH, chunk_hint=hint)
        assert work.tobytes() == ref.tobytes()
        assert np.array_equal(info, info0)
        assert all(np.array_equal(p, q) for p, q in zip(piv, piv0))

    @pytest.mark.parametrize("hint", [1, 3, 7, 10])
    def test_gbtrs_boundary_sweep(self, hint):
        _, fact, piv, _ = factor_ref(self.BATCH, self.N, self.KL, self.KU,
                                     seed=4)
        b = random_rhs(self.N, 2, batch=self.BATCH, seed=5)
        b0 = b.copy()
        gbtrs_batch("N", self.N, self.KL, self.KU, 2, fact, piv, b0,
                    batch=self.BATCH)
        b1 = b.copy()
        gbtrs_batch("N", self.N, self.KL, self.KU, 2, fact, piv, b1,
                    batch=self.BATCH, chunk_hint=hint)
        assert b1.tobytes() == b0.tobytes()

    @pytest.mark.parametrize("hint", [1, 4, 9, 10])
    def test_gbsv_boundary_sweep_with_singular_lane(self, hint):
        a = random_band_batch(self.BATCH, self.N, self.KL, self.KU, seed=6)
        a[7, :, :] = 0.0  # singular lane: B must stay untouched
        b = random_rhs(self.N, 1, batch=self.BATCH, seed=7)
        a0, b0 = a.copy(), b.copy()
        piv0, info0 = gbsv_batch(self.N, self.KL, self.KU, 1, a0, None, b0,
                                 batch=self.BATCH)
        a1, b1 = a.copy(), b.copy()
        piv1, info1 = gbsv_batch(self.N, self.KL, self.KU, 1, a1, None, b1,
                                 batch=self.BATCH, chunk_hint=hint)
        assert a1.tobytes() == a0.tobytes()
        assert b1.tobytes() == b0.tobytes()
        assert np.array_equal(info1, info0) and int(info0[7]) > 0
        assert all(np.array_equal(p, q) for p, q in zip(piv1, piv0))

    @pytest.mark.parametrize("vectorize", [False, True])
    def test_vec_path_chunked(self, vectorize):
        """Uniform stack: chunk slices stay uniform, so [vec] survives."""
        a, ref, piv0, info0 = factor_ref(8, 32, 1, 2, seed=8)
        stream = Stream(H100_PCIE)
        work = a.copy()
        piv, info = gbtrf_batch(32, 32, 1, 2, work, batch=8, stream=stream,
                                vectorize=vectorize, chunk_hint=3)
        assert work.tobytes() == ref.tobytes()
        assert np.array_equal(info, info0)
        kernel_names = [r.display_name for r in stream.records
                        if not r.kernel_name.startswith("chunk_")]
        assert all(("[vec" in nm) == vectorize for nm in kernel_names)

    def test_vec_pack_path_chunked(self):
        """Scattered same-shape batch: chunks pack like the whole batch."""
        stack = random_band_batch(6, 28, 2, 2, seed=9)
        scattered = [stack[k].copy() for k in range(6)]
        ref = [m.copy() for m in scattered]
        piv0, info0 = gbtrf_batch(28, 28, 2, 2, ref, batch=6)
        stream = Stream(H100_PCIE)
        piv, info = gbtrf_batch(28, 28, 2, 2, scattered, batch=6,
                                stream=stream, vectorize=True, chunk_hint=4)
        assert all(m.tobytes() == r.tobytes()
                   for m, r in zip(scattered, ref))
        assert np.array_equal(info, info0)
        packed = [r for r in stream.records
                  if not r.kernel_name.startswith("chunk_")]
        assert packed and all("[vec+pack]" in r.display_name
                              for r in packed)

    def test_resilient_chunked_matches_plain(self):
        a, ref, piv0, info0 = factor_ref(9, 20, 2, 1, seed=10)
        work = a.copy()
        piv, info, rep = gbtrf_batch(20, 20, 2, 1, work, batch=9,
                                     chunk_hint=4, resilient=True)
        assert work.tobytes() == ref.tobytes()
        assert rep.ok and rep.chunks == (4, 4, 1)
        assert rep.chunk_events[0]["action"] == "split"
        assert rep.footprint_bytes == 9 * lane_cost(20, 2, 1)

    def test_vbatch_chunked_bit_identical(self):
        ns, kls, kus = [16] * 5 + [24] * 4, [1] * 5 + [2] * 4, [2] * 9
        nrhss = [1] * 9
        mats = [random_band_batch(1, n, kl, ku, seed=20 + i)[0]
                for i, (n, kl, ku) in enumerate(zip(ns, kls, kus))]
        rhs = [random_rhs(n, 1, seed=40 + i) for i, n in enumerate(ns)]
        m0 = [m.copy() for m in mats]
        r0 = [b.copy() for b in rhs]
        piv0, info0 = gbsv_vbatch(ns, kls, kus, nrhss, m0, r0)
        m1 = [m.copy() for m in mats]
        r1 = [b.copy() for b in rhs]
        piv1, info1, rep = gbsv_vbatch(ns, kls, kus, nrhss, m1, r1,
                                       chunk_hint=2, resilient=True)
        assert all(x.tobytes() == y.tobytes() for x, y in zip(m1, m0))
        assert all(x.tobytes() == y.tobytes() for x, y in zip(r1, r0))
        assert np.array_equal(info1, info0)
        assert rep.ok and len(rep.chunks) == 5  # ceil(5/2) + ceil(4/2)


# --- residency, admission, streaming ---------------------------------------

class TestResidency:
    def test_pool_released_and_peak_bounded(self):
        reset_memory_pools()
        a = random_band_batch(12, 16, 1, 1, seed=11)
        cap = 3 * lane_cost(16, 1, 1)
        gbtrf_batch(16, 16, 1, 1, a, batch=12, max_resident_bytes=cap)
        pool = memory_pool(H100_PCIE)
        assert pool.in_use == 0
        assert 0 < pool.peak <= cap

    def test_admission_control_raises_before_touching_operands(self):
        a = random_band_batch(4, 16, 1, 1, seed=12)
        orig = a.copy()
        with pytest.raises(DeviceMemoryError) as exc:
            gbtrf_batch(16, 16, 1, 1, a, batch=4, max_resident_bytes=8)
        assert a.tobytes() == orig.tobytes()
        assert exc.value.capacity == 8 and not exc.value.injected

    def test_resilient_sub_lane_budget_finishes_on_host(self):
        a = random_band_batch(5, 16, 1, 1, seed=13)
        b = random_rhs(16, 1, batch=5, seed=14)
        a0, b0 = a.copy(), b.copy()
        piv0, info0 = gbsv_batch(16, 1, 1, 1, a0, None, b0, batch=5)
        piv, info, rep = gbsv_batch(16, 1, 1, 1, a, None, b, batch=5,
                                    max_resident_bytes=8, resilient=True)
        assert a.tobytes() == a0.tobytes() and b.tobytes() == b0.tobytes()
        assert rep.methods == {"gbtrf": "host", "gbtrs": "host"}
        assert rep.oom_failures == 1
        assert rep.chunk_events[-1]["action"] == "host"
        assert rep.chunks == ()  # nothing executed on the device

    def test_chunked_run_records_staging_transfers(self):
        a = random_band_batch(6, 16, 1, 1, seed=15)
        stream = Stream(H100_PCIE)
        reset_memory_pools()
        gbtrf_batch(16, 16, 1, 1, a, batch=6, stream=stream, chunk_hint=2)
        names = [r.kernel_name for r in stream.records]
        assert names.count("chunk_h2d") == 3
        assert names.count("chunk_d2h") == 3
        staged = 6 * lane_cost(16, 1, 1)
        pool = memory_pool(H100_PCIE)
        assert pool.traffic.bytes_written == staged
        assert pool.traffic.bytes_read == staged

    def test_unchunked_run_records_no_staging(self):
        a = random_band_batch(6, 16, 1, 1, seed=16)
        stream = Stream(H100_PCIE)
        gbtrf_batch(16, 16, 1, 1, a, batch=6, stream=stream)
        assert not any(r.kernel_name.startswith("chunk_")
                       for r in stream.records)

    def test_env_capacity_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_GLOBAL_MEM_BYTES", "4096")
        reset_memory_pools()
        assert memory_pool(H100_PCIE).capacity == 4096
        a = random_band_batch(64, 16, 1, 1, seed=17)
        ref = a.copy()
        piv0, info0 = gbtrf_batch(16, 16, 1, 1, ref, batch=64,
                                  max_resident_bytes=None)
        # 64 lanes need ~100KB; the 4KB pool forces chunking transparently
        assert ref.tobytes() != a.tobytes()
        work = a.copy()
        monkeypatch.delenv("REPRO_GLOBAL_MEM_BYTES")
        reset_memory_pools()
        piv1, info1 = gbtrf_batch(16, 16, 1, 1, work, batch=64)
        assert work.tobytes() == ref.tobytes()
        assert np.array_equal(info1, info0)


# --- OOM storms ------------------------------------------------------------

class TestOOMStorm:
    def test_alloc_failure_at_every_chunk_boundary(self):
        """The acceptance sweep: a storm that rejects every first lease.

        Each chunk boundary sees one injected allocation failure; the
        ladder halves down to per-lane execution and the batch still
        completes bit-identically, every fault accounted.
        """
        batch, n, kl, ku = 12, 18, 2, 2
        a = random_band_batch(batch, n, kl, ku, seed=30)
        b = random_rhs(n, 1, batch=batch, seed=31)
        a0, b0 = a.copy(), b.copy()
        piv0, info0 = gbsv_batch(n, kl, ku, 1, a0, None, b0, batch=batch)

        plan = FaultPlan(seed=5, alloc_failure_rate=1.0,
                         max_alloc_failures=4, alloc_labels="gbsv-chunk")
        with fault_injection(H100_PCIE, plan) as inj:
            piv, info, rep = gbsv_batch(n, kl, ku, 1, a, None, b,
                                        batch=batch, chunk_hint=8,
                                        resilient=True)
        assert a.tobytes() == a0.tobytes() and b.tobytes() == b0.tobytes()
        assert np.array_equal(info, info0)
        assert rep.ok
        assert rep.oom_failures == inj.counts()["alloc-failure"] == 4
        halves = [e for e in rep.chunk_events if e["action"] == "halve"]
        assert [h["from"] for h in halves] == [8, 4, 2, 1][:len(halves)]
        assert all(h["injected"] for h in halves)
        assert sum(rep.chunks) + (
            rep.chunk_events[-1]["stop"] - rep.chunk_events[-1]["start"]
            if rep.chunk_events[-1]["action"] == "host" else 0) == batch
        assert rep.faults_tolerated == 4

    def test_alloc_storm_every_boundary_then_recovers(self):
        """Unlimited-rate storm with a budget: once spent, chunks resume."""
        batch = 9
        a = random_band_batch(batch, 16, 1, 1, seed=32)
        ref = a.copy()
        piv0, info0 = gbtrf_batch(16, 16, 1, 1, ref, batch=batch)
        plan = FaultPlan(seed=6, alloc_failure_rate=1.0,
                         max_alloc_failures=2, alloc_labels="gbtrf-chunk")
        with fault_injection(H100_PCIE, plan) as inj:
            piv, info, rep = gbtrf_batch(16, 16, 1, 1, a, batch=batch,
                                         chunk_hint=4, resilient=True)
        assert a.tobytes() == ref.tobytes()
        assert rep.oom_failures == 2 and rep.ok
        assert sum(rep.chunks) == batch  # everything ran on the device
        assert inj.exhausted

    def test_plain_path_propagates_injected_oom(self):
        a = random_band_batch(6, 16, 1, 1, seed=33)
        plan = FaultPlan(seed=7, alloc_failure_rate=1.0,
                         max_alloc_failures=1, alloc_labels="gbtrf-chunk")
        with fault_injection(H100_PCIE, plan):
            with pytest.raises(DeviceMemoryError) as exc:
                gbtrf_batch(16, 16, 1, 1, a, batch=6, chunk_hint=2)
        assert exc.value.injected

    def test_capacity_squeeze_halves_until_it_fits(self):
        reset_memory_pools()
        batch = 8
        a = random_band_batch(batch, 16, 1, 1, seed=34)
        ref = a.copy()
        gbtrf_batch(16, 16, 1, 1, ref, batch=batch)
        # Squeeze the 80 GB pool to ~1 lane for the first two leases.
        lane = lane_cost(16, 1, 1)
        frac = (1.5 * lane) / memory_pool(H100_PCIE).capacity
        plan = FaultPlan(seed=8, capacity_squeezes=2, squeeze_fraction=frac)
        with fault_injection(H100_PCIE, plan) as inj:
            piv, info, rep = gbtrf_batch(16, 16, 1, 1, a, batch=batch,
                                         chunk_hint=4, resilient=True)
        assert a.tobytes() == ref.tobytes()
        assert inj.counts()["capacity-squeeze"] == 2
        assert rep.oom_failures >= 1 and rep.ok


# --- fault-plan determinism under chunking ---------------------------------

class TestChunkDeterminism:
    @pytest.mark.parametrize("hint", [None, 1, 3, 5, 16])
    def test_same_seed_storms_same_global_lanes(self, hint):
        """corrupt_lanes address the original batch whatever the chunking."""
        batch, n, kl, ku = 10, 20, 2, 2
        a = random_band_batch(batch, n, kl, ku, seed=50)
        ref = a.copy()
        piv0, info0 = gbtrf_batch(n, n, kl, ku, ref, batch=batch)
        plan = FaultPlan(seed=9, corrupt_lanes=(2, 7),
                         corrupt_after="gbtrf")
        work = a.copy()
        with fault_injection(H100_PCIE, plan) as inj:
            piv, info, rep = gbtrf_batch(n, n, kl, ku, work, batch=batch,
                                         chunk_hint=hint, resilient=True)
        assert rep.corrupted == (2, 7)
        assert sorted(ev.lane for ev in inj.events("lane-corruption")) \
            == [2, 7]
        # Healthy lanes bit-identical to the fault-free run; poisoned
        # lanes recovered through quarantine to the same factors.
        assert work.tobytes() == ref.tobytes()
        assert np.array_equal(info, info0)

    def test_reports_identical_across_chunk_sizes(self):
        batch = 8
        a = random_band_batch(batch, 16, 1, 2, seed=51)
        plan = FaultPlan(seed=11, corrupt_lanes=(4,), corrupt_after="gbtrf")
        outcomes = []
        for hint in (None, 2, 3):
            work = a.copy()
            with fault_injection(H100_PCIE, FaultPlan(**{
                    **plan.__dict__, "corrupt_lanes": (4,)})):
                _, info, rep = gbtrf_batch(16, 16, 1, 2, work, batch=batch,
                                           chunk_hint=hint, resilient=True)
            outcomes.append((rep.corrupted, rep.quarantined,
                             work.tobytes(), info.tobytes()))
        assert outcomes[0] == outcomes[1] == outcomes[2]


# --- traffic accounting (satellite bugfix) ---------------------------------

class TestTrafficAccounting:
    def test_device_buffer_upload_download_charge_traffic(self):
        buf = DeviceBuffer((4, 4))
        host = np.ones((4, 4))
        buf.upload(host)
        assert buf.traffic.bytes_written == host.nbytes
        out = buf.download()
        assert buf.traffic.bytes_read == host.nbytes
        assert np.array_equal(out, host)

    def test_device_buffer_uses_supplied_counter(self):
        counter = TrafficCounter()
        buf = DeviceBuffer((8,), traffic=counter)
        buf.upload(np.arange(8.0))
        buf.download()
        assert counter.bytes_written == 64 and counter.bytes_read == 64

    def test_memcpy_charges_pool_once(self):
        reset_memory_pools()
        pool = memory_pool(H100_PCIE)
        buf = DeviceBuffer((16,), device=H100_PCIE)
        host = np.arange(16.0)
        memcpy_h2d(H100_PCIE, buf, host)
        assert pool.traffic.bytes_written == host.nbytes
        assert buf.traffic.bytes_written == host.nbytes
        memcpy_d2h(H100_PCIE, buf)
        assert pool.traffic.bytes_read == host.nbytes
        # A buffer already accounting to the pool's counter is not
        # double-charged by the transfer layer.
        shared = DeviceBuffer((16,), traffic=pool.traffic)
        memcpy_h2d(H100_PCIE, shared, host)
        assert pool.traffic.bytes_written == 2 * host.nbytes
        buf.free()

    def test_pointer_array_charges_pool_and_traffic(self):
        reset_memory_pools()
        pool = memory_pool(H100_PCIE)
        arrs = [np.zeros((3, 3)) for _ in range(4)]
        pa = PointerArray(arrs, device=H100_PCIE)
        expect = 4 * (72 + 8)
        assert pool.in_use == expect
        assert pool.traffic.bytes_written == expect
        pa.free()
        assert pool.in_use == 0
        pa.free()  # idempotent
        assert pool.in_use == 0


# --- structured report logging ---------------------------------------------

class TestReportSerialization:
    def test_round_trip_with_chunk_decisions(self):
        a = random_band_batch(7, 16, 1, 1, seed=60)
        b = random_rhs(16, 1, batch=7, seed=61)
        plan = FaultPlan(seed=12, alloc_failure_rate=1.0,
                         max_alloc_failures=1, alloc_labels="gbsv-chunk")
        with fault_injection(H100_PCIE, plan):
            _, _, rep = gbsv_batch(16, 1, 1, 1, a, None, b, batch=7,
                                   chunk_hint=4, resilient=True)
        d = rep.to_dict()
        # JSON-safe end to end.
        restored = BatchReport.from_dict(json.loads(json.dumps(d)))
        assert restored.to_dict() == d
        assert restored.chunks == rep.chunks
        assert restored.oom_failures == rep.oom_failures == 1
        assert restored.chunk_events == rep.chunk_events
        assert [e["action"] for e in d["chunk_events"]][:2] \
            == ["split", "halve"]
        assert d["ok"] is True
        assert np.array_equal(restored.info, rep.info)

    def test_round_trip_plain_report(self):
        rep = BatchReport("gbtrf", 4, methods={"gbtrf": "window"},
                          retries=2, fallbacks=[("gbtrf", "fused",
                                                 "window")],
                          quarantined=(1,), singular=(1,),
                          info=np.array([0, 1, 0, 0]))
        d = rep.to_dict()
        restored = BatchReport.from_dict(d)
        assert restored.to_dict() == d
        assert restored.fallbacks == [("gbtrf", "fused", "window")]

    def test_summary_mentions_chunking_only_when_it_happened(self):
        quiet = BatchReport("gbtrf", 4, chunks=(4,), budget_bytes=10 ** 9)
        assert "chunks" not in quiet.summary()
        noisy = BatchReport("gbtrf", 8, chunks=(4, 4), oom_failures=1,
                            footprint_bytes=800, budget_bytes=400)
        s = noisy.summary()
        assert "chunks=[4, 4]" in s and "oom_failures=1" in s
        assert "footprint=800B/budget=400B" in s
