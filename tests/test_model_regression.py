"""Golden-number regression guards on the calibrated timing model.

The model constants in :mod:`repro.gpusim.device` and
:mod:`repro.cpu.costmodel` were fitted against the paper's tables
(EXPERIMENTS.md).  These tests pin representative model outputs with a
10% tolerance so an accidental edit to a constant, a cost formula, or the
shipped tuning tables shows up as a failure here rather than as a silent
drift of every benchmark.
"""

import pytest

from repro.bench.harness import (
    time_cpu_gbsv,
    time_cpu_gbtrf,
    time_gbsv,
    time_gbtrf,
)
from repro.gpusim import H100_PCIE, MI250X_GCD

TOL = 0.10

# (description, callable, golden seconds) — regenerate with
# tools/regen_goldens.py after any *intentional* recalibration.
GOLDENS = [
    ("h100 gbtrf (2,3) n=512",
     lambda: time_gbtrf(H100_PCIE, 512, 2, 3), 4.7270e-04),
    ("h100 gbtrf (10,7) n=512",
     lambda: time_gbtrf(H100_PCIE, 512, 10, 7), 6.6890e-04),
    ("mi250x gbtrf (2,3) n=512",
     lambda: time_gbtrf(MI250X_GCD, 512, 2, 3), 6.2182e-04),
    ("mi250x gbtrf (10,7) n=512",
     lambda: time_gbtrf(MI250X_GCD, 512, 10, 7), 1.7355e-03),
    ("h100 gbsv (2,3) n=512 1rhs",
     lambda: time_gbsv(H100_PCIE, 512, 2, 3, 1), 8.1122e-04),
    ("h100 gbsv (2,3) n=512 10rhs",
     lambda: time_gbsv(H100_PCIE, 512, 2, 3, 10), 1.1556e-03),
    ("mi250x gbsv (10,7) n=512 1rhs",
     lambda: time_gbsv(MI250X_GCD, 512, 10, 7, 1), 2.1787e-03),
    ("h100 fused gbtrf (2,3) n=448",
     lambda: time_gbtrf(H100_PCIE, 448, 2, 3, method="fused"), 8.2881e-04),
    ("mi250x fused gbtrf (2,3) n=448",
     lambda: time_gbtrf(MI250X_GCD, 448, 2, 3, method="fused"),
     5.3571e-03),
    ("cpu gbtrf (2,3) n=512",
     lambda: time_cpu_gbtrf(512, 2, 3), 1.1326e-03),
    ("cpu gbsv (10,7) n=512 10rhs",
     lambda: time_cpu_gbsv(512, 10, 7, 10), 9.4341e-03),
]


@pytest.mark.parametrize("desc,fn,golden", GOLDENS,
                         ids=[g[0] for g in GOLDENS])
def test_model_golden(desc, fn, golden):
    measured = fn()
    assert measured == pytest.approx(golden, rel=TOL), (
        f"{desc}: {measured:.4e}s drifted from golden {golden:.4e}s — "
        "if the recalibration was intentional, regenerate the goldens "
        "(tools/regen_goldens.py) and update EXPERIMENTS.md")


def test_device_constants_pinned():
    """The paper-sourced hardware numbers must not drift at all."""
    assert H100_PCIE.dram_bandwidth == 1.92e12
    assert MI250X_GCD.dram_bandwidth == 1.31e12
    assert H100_PCIE.smem_per_sm == 228 * 1024
    assert MI250X_GCD.smem_per_sm == 64 * 1024
    assert H100_PCIE.num_sms == 114
    assert MI250X_GCD.num_sms == 110
