"""Info-code parity across execution paths (per-block vs [vec] vs [vec+pack]).

LAPACK ``info`` semantics must not depend on how the batch executes: a
singular or NaN-poisoned lane has to report the same code on the
batch-interleaved path (uniform stacks and gather/packed scattered
batches) as on the per-block reference path.
"""

import numpy as np
import pytest

from repro.band.convert import dense_to_band
from repro.band.generate import random_band_batch, random_rhs
from repro.core.gbsv import gbsv_batch
from repro.core.gbtf2 import gbtf2
from repro.core.gbtrf import gbtrf_batch
from repro.core.gbtrs import gbtrs_batch

N, KL, KU, BATCH = 24, 2, 3, 10


def _poisoned_batch(seed=0):
    """A batch with healthy, singular and NaN lanes mixed together."""
    a = random_band_batch(BATCH, N, KL, KU, seed=seed)
    a[2, :, :] = 0.0                       # singular from column 1
    dense = np.diag(np.arange(float(N)))   # zero pivot at column 1 only
    dense += np.diag(np.ones(N - 1), 1)
    ab = dense_to_band(dense, KL, KU)
    a[5, :ab.shape[0], :] = ab
    a[7, KL + KU, 4] = np.nan              # NaN on the diagonal
    return a


def _expected_info(a):
    """Ground truth from the host reference algorithm, lane by lane."""
    out = np.zeros(BATCH, dtype=np.int64)
    for k in range(BATCH):
        _, out[k] = gbtf2(N, N, KL, KU, a[k].copy())
    return out


def _variants(a):
    """(label, matrices, vectorize) triples covering all execution paths."""
    scattered = [np.array(a[k]) for k in range(BATCH)]   # separate allocs
    return [
        ("per-block", list(a.copy()), False),
        ("vec", list(a.copy()), True),
        ("vec+pack", scattered, True),
    ]


class TestGbtrfInfoParity:
    @pytest.mark.parametrize("method", ["fused", "window"])
    def test_all_paths_agree(self, method):
        a = _poisoned_batch()
        expected = _expected_info(a)
        assert expected[2] == 1 and expected[5] == 1   # singular lanes
        for label, mats, vectorize in _variants(a):
            piv, info = gbtrf_batch(N, N, KL, KU, mats, batch=BATCH,
                                    method=method, vectorize=vectorize)
            assert np.array_equal(np.asarray(info), expected), (
                f"{method}/{label}: info={list(info)} expected="
                f"{list(expected)}")

    def test_reference_matches_host(self):
        a = _poisoned_batch()
        expected = _expected_info(a)
        piv, info = gbtrf_batch(N, N, KL, KU, list(a.copy()), batch=BATCH,
                                method="reference")
        assert np.array_equal(np.asarray(info), expected)


class TestGbsvInfoParity:
    @pytest.mark.parametrize("method", ["fused", "standard"])
    def test_all_paths_agree(self, method):
        a = _poisoned_batch()
        expected = _expected_info(a)
        b = random_rhs(N, 1, batch=BATCH, seed=1)
        results = {}
        for label, mats, vectorize in _variants(a):
            rhs = [b[k].copy() for k in range(BATCH)]
            piv, info = gbsv_batch(N, KL, KU, 1, mats, None, rhs,
                                   batch=BATCH, method=method,
                                   vectorize=vectorize)
            results[label] = np.asarray(info).copy()
            assert np.array_equal(results[label], expected), (
                f"{method}/{label}")
            # singular lanes leave B untouched on every path
            for k in (2, 5):
                assert np.array_equal(rhs[k], b[k]), f"{method}/{label}/{k}"
        assert np.array_equal(results["vec"], results["per-block"])
        assert np.array_equal(results["vec+pack"], results["per-block"])


class TestGbtrsInfoParity:
    def test_info_zero_on_all_paths(self):
        """gbtrs never reports numerical trouble — on any path, even when
        the factors carry NaN lanes (LAPACK semantics: validation only)."""
        a = random_band_batch(BATCH, N, KL, KU, seed=3)
        piv, info_f = gbtrf_batch(N, N, KL, KU, a)
        assert (info_f == 0).all()
        a[7, KL + KU, 4] = np.nan      # poison one factored lane
        b = random_rhs(N, 2, batch=BATCH, seed=4)
        for label, mats, vectorize in [
                ("per-block", list(a.copy()), False),
                ("vec", list(a.copy()), True),
                ("vec+pack", [np.array(a[k]) for k in range(BATCH)], True)]:
            for method in ("blocked",):
                rhs = [b[k].copy() for k in range(BATCH)]
                info = gbtrs_batch("N", N, KL, KU, 2, mats, piv, rhs,
                                   batch=BATCH, method=method,
                                   vectorize=vectorize)
                assert (np.asarray(info) == 0).all(), f"{label}/{method}"
                # NaN stays confined to the poisoned lane
                for k in range(BATCH):
                    finite = np.isfinite(np.asarray(rhs[k])).all()
                    assert finite == (k != 7), f"{label}/{method}/{k}"
        info_ref = gbtrs_batch("N", N, KL, KU, 2, list(a.copy()), piv,
                               [b[k].copy() for k in range(BATCH)],
                               batch=BATCH, method="reference")
        assert (np.asarray(info_ref) == 0).all()
