"""Unit tests for the LAPACK band layout arithmetic (Figure 2)."""

import numpy as np
import pytest

from repro.band.layout import (
    BandLayout,
    alloc_band,
    band_index,
    col_rows,
    diag_row,
    in_band,
    ldab_for_factor,
    ldab_for_storage,
)
from repro.errors import ArgumentError


class TestLdab:
    def test_storage_vs_factor(self):
        assert ldab_for_storage(2, 3) == 6
        assert ldab_for_factor(2, 3) == 8       # kl extra fill-in rows

    def test_paper_bands(self):
        assert ldab_for_factor(10, 7) == 28

    def test_diagonal_matrix(self):
        assert ldab_for_storage(0, 0) == 1
        assert ldab_for_factor(0, 0) == 1


class TestIndexing:
    def test_diag_row_is_klku(self):
        assert diag_row(2, 3) == 5

    @pytest.mark.parametrize("kl,ku", [(2, 3), (0, 0), (10, 7), (1, 0)])
    def test_diagonal_entries(self, kl, ku):
        for j in range(5):
            assert band_index(kl, ku, j, j) == (kl + ku, j)

    def test_figure2_example(self):
        # The paper's 9x9 example with kl=2, ku=3: A(0,3) is the outermost
        # super-diagonal, stored on row kl = 2; A(3,1) is the outermost
        # sub-diagonal, stored on the last row.
        kl, ku = 2, 3
        assert band_index(kl, ku, 0, 3) == (kl, 3)
        assert band_index(kl, ku, 3, 1) == (2 * kl + ku, 1)

    def test_in_band(self):
        assert in_band(2, 3, 4, 4)
        assert in_band(2, 3, 6, 4)       # kl below
        assert not in_band(2, 3, 7, 4)
        assert in_band(2, 3, 1, 4)       # ku above
        assert not in_band(2, 3, 0, 4)

    def test_col_rows(self):
        assert col_rows(9, 2, 3, 0) == (0, 3)
        assert col_rows(9, 2, 3, 4) == (1, 7)
        assert col_rows(9, 2, 3, 8) == (5, 9)


class TestBandLayout:
    def test_kv(self):
        assert BandLayout(9, 9, 2, 3).kv == 5

    def test_window_sizes_match_paper(self):
        # Section 5.3: window is (kv + nb + 1) columns x (kv + kl + 1) rows.
        lay = BandLayout(512, 512, 2, 3)
        nb = 16
        assert lay.window_cols(nb) == 5 + 16 + 1
        assert lay.window_rows() == 5 + 2 + 1
        assert lay.window_elems(nb) == 22 * 8

    def test_window_constant_in_matrix_size(self):
        small = BandLayout(64, 64, 2, 3).window_elems(16)
        large = BandLayout(4096, 4096, 2, 3).window_elems(16)
        assert small == large

    def test_fused_grows_with_matrix_size(self):
        small = BandLayout(64, 64, 2, 3).fused_elems()
        large = BandLayout(128, 128, 2, 3).fused_elems()
        assert large == 2 * small

    def test_nnz_full_band(self):
        lay = BandLayout(4, 4, 3, 3)
        assert lay.nnz() == 16          # band covers everything

    def test_nnz_tridiagonal(self):
        lay = BandLayout(5, 5, 1, 1)
        assert lay.nnz() == 5 + 4 + 4

    def test_contains(self):
        lay = BandLayout(9, 9, 2, 3)
        assert lay.contains(4, 4)
        assert not lay.contains(9, 4)   # out of range
        assert not lay.contains(8, 2)   # below the band

    def test_invalid_dims_raise(self):
        with pytest.raises(ArgumentError):
            BandLayout(-1, 4, 1, 1)
        with pytest.raises(ArgumentError):
            BandLayout(4, 4, -1, 1)


class TestAllocBand:
    def test_shape_and_zero(self):
        ab = alloc_band(10, 2, 3)
        assert ab.shape == (8, 10)
        assert not ab.any()

    def test_batch_shape(self):
        ab = alloc_band(10, 2, 3, batch=7)
        assert ab.shape == (7, 8, 10)

    def test_custom_ldab(self):
        ab = alloc_band(10, 2, 3, ldab=12)
        assert ab.shape == (12, 10)

    def test_too_small_ldab_rejected(self):
        with pytest.raises(ArgumentError):
            alloc_band(10, 2, 3, ldab=7)

    def test_dtype(self):
        assert alloc_band(4, 1, 1, dtype=np.complex128).dtype == np.complex128
