"""Band triangular solves vs LAPACK: unblocked, blocked, reference."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense
from repro.band.generate import random_band, random_band_batch, random_rhs
from repro.core.gbtf2 import gbtf2
from repro.core.gbtrf import gbtrf_batch
from repro.core.gbtrs import gbtrs, gbtrs_batch
from repro.core.solve_blocks import gbtrs_unblocked
from repro.errors import ArgumentError
from repro.gpusim import H100_PCIE, MI250X_GCD, Stream
from repro.types import Trans

from conftest import BAND_CONFIGS, scipy_gbtrf, scipy_gbtrs


def _factored(n, kl, ku, seed=0, dtype=np.float64):
    ab = random_band(n, kl, ku, seed=seed, dtype=dtype)
    orig = ab.copy()
    piv, info = gbtf2(n, n, kl, ku, ab)
    assert info == 0
    return orig, ab, piv


class TestUnblockedVsLapack:
    @pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
    @pytest.mark.parametrize("trans", [0, 1])
    def test_matches_scipy(self, n, kl, ku, trans):
        orig, lu, piv = _factored(n, kl, ku, seed=n * 3 + trans)
        b = random_rhs(n, 2, seed=n + 50)
        x_ref, info = scipy_gbtrs(lu, kl, ku, b.copy(), piv, trans=trans)
        assert info == 0
        x = gbtrs_unblocked("N" if trans == 0 else "T", n, kl, ku, lu,
                            piv, b.copy())
        np.testing.assert_allclose(x, x_ref, atol=1e-12, rtol=1e-10)

    @pytest.mark.parametrize("trans,op", [
        (Trans.NO_TRANS, lambda a: a),
        (Trans.TRANS, lambda a: a.T),
        (Trans.CONJ_TRANS, lambda a: a.conj().T),
    ])
    def test_complex_all_trans(self, trans, op):
        n, kl, ku = 14, 3, 2
        orig, lu, piv = _factored(n, kl, ku, seed=77, dtype=np.complex128)
        a = band_to_dense(orig, n, kl, ku)
        b = random_rhs(n, 2, dtype=np.complex128, seed=78)
        x = gbtrs_unblocked(trans, n, kl, ku, lu, piv, b.copy())
        np.testing.assert_allclose(op(a) @ x, b, atol=1e-10)

    def test_kl_zero_skips_forward(self):
        n, kl, ku = 10, 0, 3
        orig, lu, piv = _factored(n, kl, ku, seed=5)
        a = band_to_dense(orig, n, kl, ku)
        b = random_rhs(n, 1, seed=6)
        x = gbtrs_unblocked("N", n, kl, ku, lu, piv, b.copy())
        np.testing.assert_allclose(a @ x, b, atol=1e-12)

    def test_single_matrix_wrapper_1d_rhs(self):
        n, kl, ku = 12, 2, 3
        orig, lu, piv = _factored(n, kl, ku, seed=9)
        a = band_to_dense(orig, n, kl, ku)
        b = random_rhs(n, 1, seed=10)[:, 0]
        x = gbtrs("N", n, kl, ku, lu, piv, b)
        assert x.ndim == 1
        np.testing.assert_allclose(a @ x, random_rhs(n, 1, seed=10)[:, 0],
                                   atol=1e-12)

    def test_wrong_rhs_length_rejected(self):
        _, lu, piv = _factored(8, 1, 1, seed=11)
        with pytest.raises(ArgumentError):
            gbtrs("N", 8, 1, 1, lu, piv, np.zeros(7))


class TestBlockedKernels:
    @pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
    @pytest.mark.parametrize("nrhs", [1, 3])
    def test_blocked_equals_unblocked(self, n, kl, ku, nrhs):
        batch = 2
        a = random_band_batch(batch, n, kl, ku, seed=n * 5)
        b = random_rhs(n, nrhs, batch=batch, seed=n * 5 + 1)
        piv, info = gbtrf_batch(n, n, kl, ku, a)
        expected = [gbtrs_unblocked("N", n, kl, ku, a[k], piv[k],
                                    b[k].copy()) for k in range(batch)]
        x = b.copy()
        gbtrs_batch("N", n, kl, ku, nrhs, a, piv, x, method="blocked")
        for k in range(batch):
            np.testing.assert_allclose(x[k], expected[k], atol=0)

    @pytest.mark.parametrize("nb", [1, 2, 5, 16, 100])
    def test_any_solve_blocking(self, nb):
        n, kl, ku, nrhs = 23, 2, 3, 2
        a = random_band_batch(1, n, kl, ku, seed=nb)
        b = random_rhs(n, nrhs, batch=1, seed=nb + 1)
        piv, _ = gbtrf_batch(n, n, kl, ku, a)
        expected = gbtrs_unblocked("N", n, kl, ku, a[0], piv[0],
                                   b[0].copy())
        x = b.copy()
        gbtrs_batch("N", n, kl, ku, nrhs, a, piv, x, method="blocked",
                    nb=nb)
        np.testing.assert_allclose(x[0], expected, atol=0)

    def test_bad_nb_rejected(self):
        a = random_band_batch(1, 8, 1, 1, seed=0)
        piv, _ = gbtrf_batch(8, 8, 1, 1, a)
        with pytest.raises(ValueError, match="nb"):
            gbtrs_batch("N", 8, 1, 1, 1, a, piv,
                        random_rhs(8, 1, batch=1), method="blocked", nb=0)

    def test_smem_budgets_match_paper(self):
        """Fwd caches nb+kl rows, bwd caches nb+kv rows (Section 6)."""
        from repro.core.gbtrs_blocked import (
            BlockedBackwardKernel, BlockedForwardKernel)
        n, kl, ku, nrhs, nb = 64, 2, 3, 1, 16
        a = random_band_batch(1, n, kl, ku, seed=0)
        piv = [np.zeros(n, dtype=np.int64)]
        b = [np.zeros((n, nrhs))]
        fwd = BlockedForwardKernel(n, kl, ku, nrhs, list(a), piv, b, nb=nb)
        bwd = BlockedBackwardKernel(n, kl, ku, nrhs, list(a), piv, b, nb=nb)
        assert fwd.smem_bytes() == (nb + kl) * nrhs * 8
        assert bwd.smem_bytes() == (nb + kl + ku) * nrhs * 8


class TestReferenceSolve:
    def test_reference_equals_blocked(self):
        n, kl, ku, nrhs = 20, 3, 2, 2
        a = random_band_batch(2, n, kl, ku, seed=21)
        b = random_rhs(n, nrhs, batch=2, seed=22)
        piv, _ = gbtrf_batch(n, n, kl, ku, a)
        x1, x2 = b.copy(), b.copy()
        gbtrs_batch("N", n, kl, ku, nrhs, a, piv, x1, method="blocked")
        gbtrs_batch("N", n, kl, ku, nrhs, a, piv, x2, method="reference")
        np.testing.assert_allclose(x1, x2, atol=0)

    def test_reference_launch_pattern(self):
        """Per column: a (swap, update) kernel pair, then n backward cols."""
        n, kl, ku = 10, 2, 3
        a = random_band_batch(1, n, kl, ku, seed=23)
        b = random_rhs(n, 1, batch=1, seed=24)
        piv, _ = gbtrf_batch(n, n, kl, ku, a)
        stream = Stream(H100_PCIE)
        gbtrs_batch("N", n, kl, ku, 1, a, piv, b, method="reference",
                    stream=stream)
        assert stream.launch_count() == 2 * (n - 1) + n

    def test_transposed_solve_via_reference(self):
        n, kl, ku = 16, 2, 3
        orig = random_band_batch(2, n, kl, ku, seed=25)
        a = orig.copy()
        b = random_rhs(n, 1, batch=2, seed=26)
        piv, _ = gbtrf_batch(n, n, kl, ku, a)
        x = b.copy()
        gbtrs_batch("T", n, kl, ku, 1, a, piv, x)
        dense = band_to_dense(orig[0], n, kl, ku)
        np.testing.assert_allclose(dense.T @ x[0], b[0], atol=1e-11)


class TestBatchedDriver:
    def test_invalid_method(self):
        a = random_band_batch(1, 8, 1, 1, seed=0)
        with pytest.raises(ArgumentError):
            gbtrs_batch("N", 8, 1, 1, 1, a, None,
                        random_rhs(8, 1, batch=1), method="warp-magic")

    def test_zero_nrhs_is_noop(self):
        a = random_band_batch(2, 8, 1, 1, seed=1)
        piv, _ = gbtrf_batch(8, 8, 1, 1, a)
        info = gbtrs_batch("N", 8, 1, 1, 0, a, piv,
                           np.zeros((2, 8, 0)))
        assert (info == 0).all()

    def test_negative_nrhs_rejected(self):
        a = random_band_batch(1, 8, 1, 1, seed=2)
        with pytest.raises(ArgumentError):
            gbtrs_batch("N", 8, 1, 1, -1, a, None, np.zeros((1, 8, 1)))

    def test_rhs_shape_validated(self):
        a = random_band_batch(2, 8, 1, 1, seed=3)
        piv, _ = gbtrf_batch(8, 8, 1, 1, a)
        with pytest.raises(ArgumentError):
            gbtrs_batch("N", 8, 1, 1, 2, a, piv, np.zeros((2, 7, 2)))

    def test_mi250x_gives_same_answers(self):
        n, kl, ku = 32, 2, 3
        a = random_band_batch(2, n, kl, ku, seed=27)
        b = random_rhs(n, 2, batch=2, seed=28)
        piv, _ = gbtrf_batch(n, n, kl, ku, a)
        x1, x2 = b.copy(), b.copy()
        gbtrs_batch("N", n, kl, ku, 2, a, piv, x1, device=H100_PCIE)
        gbtrs_batch("N", n, kl, ku, 2, a, piv, x2, device=MI250X_GCD)
        np.testing.assert_allclose(x1, x2, atol=0)
