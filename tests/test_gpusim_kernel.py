"""Unit tests for kernels, launches, shared memory, streams, and traces."""

import numpy as np
import pytest

from repro.errors import SharedMemoryError
from repro.gpusim import (
    BlockCost,
    H100_PCIE,
    Kernel,
    MI250X_GCD,
    SharedMemory,
    Stream,
    format_trace,
    launch,
    summarize,
)


class AddOneKernel(Kernel):
    """Adds one to its slice of an array; used to probe launch mechanics."""

    name = "add_one"

    def __init__(self, data, smem_request=256, nthreads=32):
        self.data = data
        self.smem_request = smem_request
        self.nthreads = nthreads

    def grid(self):
        return self.data.shape[0]

    def threads(self):
        return self.nthreads

    def smem_bytes(self):
        return self.smem_request

    def block_cost(self):
        return BlockCost(flops=self.data.shape[1], smem_traffic=64,
                         dram_traffic=self.data.shape[1] * 16, syncs=1,
                         threads=self.nthreads)

    def run_block(self, block_id, smem):
        scratch = smem.alloc(self.data.shape[1])
        scratch[...] = self.data[block_id]
        self.data[block_id] = scratch + 1.0


class GreedyKernel(AddOneKernel):
    """Allocates more shared memory than it declared."""

    name = "greedy"

    def run_block(self, block_id, smem):
        smem.alloc(self.smem_request * 10)


class TestSharedMemory:
    def test_alloc_within_budget(self):
        smem = SharedMemory(1024)
        arr = smem.alloc(64)           # 512 bytes
        assert arr.shape == (64,) and not arr.any()
        smem.alloc(64)

    def test_alloc_over_budget_raises(self):
        smem = SharedMemory(100)
        with pytest.raises(SharedMemoryError):
            smem.alloc(100)

    def test_cumulative_budget(self):
        smem = SharedMemory(1024)
        smem.alloc(100)
        with pytest.raises(SharedMemoryError):
            smem.alloc(100)

    def test_dtype_sizes_counted(self):
        smem = SharedMemory(1024)
        smem.alloc(256, dtype=np.float32)   # exactly 1024 bytes
        with pytest.raises(SharedMemoryError):
            smem.alloc(1, dtype=np.float32)


class TestLaunch:
    def test_functional_execution(self):
        data = np.zeros((5, 8))
        rec = launch(H100_PCIE, AddOneKernel(data))
        assert (data == 1.0).all()
        assert rec.executed_blocks == 5
        assert rec.grid == 5

    def test_execute_false_times_only(self):
        data = np.zeros((5, 8))
        rec = launch(H100_PCIE, AddOneKernel(data), execute=False)
        assert not data.any()
        assert rec.executed_blocks == 0
        assert rec.time > 0

    def test_max_blocks_sampling(self):
        data = np.zeros((10, 8))
        rec = launch(H100_PCIE, AddOneKernel(data), max_blocks=3)
        assert (data[:3] == 1.0).all()
        assert not data[3:].any()
        assert rec.executed_blocks == 3
        assert rec.grid == 10            # timing still covers the full grid

    def test_kernel_exceeding_declaration_fails(self):
        data = np.zeros((2, 8))
        with pytest.raises(SharedMemoryError):
            launch(H100_PCIE, GreedyKernel(data))

    def test_unlaunchable_kernel_raises_before_execution(self):
        data = np.zeros((2, 8))
        k = AddOneKernel(data, smem_request=300 * 1024)
        with pytest.raises(SharedMemoryError):
            launch(H100_PCIE, k)
        assert not data.any()

    def test_timing_has_floor(self):
        data = np.zeros((1, 1))
        rec = launch(H100_PCIE, AddOneKernel(data), execute=False)
        assert rec.timing.exec_time >= H100_PCIE.min_kernel_time


class TestStream:
    def test_accumulates_time_in_order(self):
        stream = Stream(H100_PCIE)
        data = np.zeros((4, 8))
        launch(H100_PCIE, AddOneKernel(data), stream=stream)
        t1 = stream.elapsed
        launch(H100_PCIE, AddOneKernel(data), stream=stream)
        assert stream.elapsed > t1
        assert stream.launch_count() == 2
        assert stream.synchronize() == stream.elapsed

    def test_events(self):
        stream = Stream(H100_PCIE)
        e0 = stream.record_event()
        launch(H100_PCIE, AddOneKernel(np.zeros((4, 8))), stream=stream)
        e1 = stream.record_event()
        assert e1.elapsed_since(e0) > 0

    def test_events_cross_device_rejected(self):
        from repro.errors import DeviceError
        s1, s2 = Stream(H100_PCIE), Stream(MI250X_GCD)
        with pytest.raises(DeviceError):
            s2.record_event().elapsed_since(s1.record_event())

    def test_reset(self):
        stream = Stream(H100_PCIE)
        launch(H100_PCIE, AddOneKernel(np.zeros((4, 8))), stream=stream)
        stream.reset()
        assert stream.elapsed == 0.0
        assert stream.launch_count() == 0


class TestTrace:
    def test_summarize_groups_by_kernel(self):
        stream = Stream(H100_PCIE)
        for _ in range(3):
            launch(H100_PCIE, AddOneKernel(np.zeros((4, 8))), stream=stream)
        summaries = summarize([stream])
        assert len(summaries) == 1
        s = summaries[0]
        assert s.name == "add_one"
        assert s.launches == 3
        assert s.total_blocks == 12
        assert s.min_time <= s.mean_time <= s.max_time

    def test_format_trace_renders(self):
        stream = Stream(H100_PCIE)
        launch(H100_PCIE, AddOneKernel(np.zeros((2, 8))), stream=stream)
        text = format_trace([stream])
        assert "add_one" in text
        assert "launches" in text


class TestChromeTrace:
    def test_events_layout(self, tmp_path):
        import json
        from repro.gpusim import chrome_trace, save_chrome_trace
        stream = Stream(H100_PCIE, name="work")
        for _ in range(3):
            launch(H100_PCIE, AddOneKernel(np.zeros((4, 8))),
                   stream=stream)
        events = chrome_trace([stream])
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 1 and "work" in meta[0]["args"]["name"]
        assert len(spans) == 3
        # Back-to-back layout: each span starts where the previous ended.
        for a, b in zip(spans, spans[1:]):
            assert b["ts"] == pytest.approx(a["ts"] + a["dur"])
        # Total duration matches the stream clock (in microseconds).
        assert spans[-1]["ts"] + spans[-1]["dur"] == pytest.approx(
            stream.elapsed * 1e6)
        path = tmp_path / "trace.json"
        save_chrome_trace([stream], path)
        doc = json.loads(path.read_text())
        assert len(doc["traceEvents"]) == 4

    def test_multiple_streams_get_tracks(self):
        from repro.gpusim import chrome_trace
        s1, s2 = Stream(H100_PCIE, "a"), Stream(MI250X_GCD, "b")
        launch(H100_PCIE, AddOneKernel(np.zeros((2, 4))), stream=s1)
        launch(MI250X_GCD, AddOneKernel(np.zeros((2, 4))), stream=s2)
        events = chrome_trace([s1, s2])
        tids = {e["tid"] for e in events}
        assert tids == {0, 1}
