"""Command-line entry points: python -m repro.bench / repro.tuning."""

import json

import pytest

from repro.bench.__main__ import EXHIBITS, main as bench_main
from repro.tuning.__main__ import main as tuning_main


class TestBenchCli:
    def test_list(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig1", "fig3", "table1", "bandwidth", "ablations"):
            assert name in out

    def test_single_exhibit(self, capsys):
        assert bench_main(["bandwidth"]) == 0
        out = capsys.readouterr().out
        assert "1.92 TB/s" in out

    def test_table_exhibit(self, capsys):
        assert bench_main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "H100 (kl,ku)=(2,3)" in out
        assert "paper" in out

    def test_unknown_exhibit_rejected(self, capsys):
        with pytest.raises(SystemExit) as exc:
            bench_main(["figure42"])
        assert exc.value.code != 0

    def test_every_exhibit_registered_is_callable(self):
        # Names only; execution of the heavy ones is covered by the
        # benchmark suite itself.
        assert set(EXHIBITS) >= {"fig1", "fig3", "fig5", "fig7", "fig8",
                                 "fig9", "table1", "table2", "table3",
                                 "bandwidth", "ablations"}


class TestTuningCli:
    def test_small_sweep_writes_table(self, tmp_path, capsys):
        rc = tuning_main(["--device", "h100-pcie", "--kl-max", "2",
                          "--ku-max", "2", "--out", str(tmp_path),
                          "--quiet"])
        assert rc == 0
        doc = json.loads((tmp_path / "h100-pcie.json").read_text())
        assert doc["device"] == "h100-pcie"
        assert len(doc["entries"]) == 9
        for e in doc["entries"]:
            assert e["threads"] >= e["kl"] + 1

    def test_step_reduces_entries(self, tmp_path):
        tuning_main(["--device", "mi250x-gcd", "--kl-max", "4",
                     "--ku-max", "4", "--step", "2", "--out",
                     str(tmp_path), "--quiet"])
        doc = json.loads((tmp_path / "mi250x-gcd.json").read_text())
        assert len(doc["entries"]) == 9    # {0,2,4}^2

    def test_bad_device_rejected(self):
        with pytest.raises(SystemExit):
            tuning_main(["--device", "tpu-v9"])
