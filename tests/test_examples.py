"""Smoke tests: every shipped example must run cleanly end to end."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{path.name} produced no output"
    # No example should print tracebacks or NaN results ("nan" as a
    # standalone token; words like "natural" are fine).
    import re
    assert "Traceback" not in out
    assert not re.search(r"\bnan\b", out.lower()), "example printed NaN"


def test_all_examples_discovered():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "pele_chemistry", "xgc_collision",
            "reacteval_ode", "nonuniform_and_jit",
            "mixed_precision_refinement", "amr_reacteval",
            "sparse_to_banded"} <= names
