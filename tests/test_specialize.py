"""JIT-style band specialization (the paper's Section 8.1 extension)."""

import numpy as np
import pytest

from repro.band.generate import random_band_batch
from repro.core.gbtrf import gbtrf_batch
from repro.core.specialize import (
    clear_specialization_cache,
    create_specialization,
    destroy_specialization,
    specialization_cache_info,
)
from repro.errors import ArgumentError, DeviceError
from repro.gpusim import H100_PCIE, MI250X_GCD


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_specialization_cache()
    yield
    clear_specialization_cache()


class TestLifecycle:
    def test_create_compiles_once(self):
        s1 = create_specialization(H100_PCIE, 2, 3)
        s2 = create_specialization(H100_PCIE, 2, 3)
        assert s1 is s2
        live, compiles = specialization_cache_info()
        assert (live, compiles) == (1, 1)

    def test_distinct_keys_compile_separately(self):
        create_specialization(H100_PCIE, 2, 3)
        create_specialization(H100_PCIE, 3, 2)
        create_specialization(MI250X_GCD, 2, 3)
        create_specialization(H100_PCIE, 2, 3, dtype=np.float32)
        live, compiles = specialization_cache_info()
        assert (live, compiles) == (4, 4)

    def test_destroy_then_use_fails(self):
        spec = create_specialization(H100_PCIE, 2, 3)
        destroy_specialization(spec)
        a = random_band_batch(1, 16, 2, 3, seed=0)
        with pytest.raises(DeviceError):
            spec.gbtrf_batch(16, 16, a)

    def test_recreate_after_destroy_recompiles(self):
        spec = create_specialization(H100_PCIE, 2, 3)
        destroy_specialization(spec)
        spec2 = create_specialization(H100_PCIE, 2, 3)
        assert spec2 is not spec
        assert specialization_cache_info()[1] == 2

    def test_invalid_band_rejected(self):
        with pytest.raises(ArgumentError):
            create_specialization(H100_PCIE, -1, 3)


class TestNumericsAndPerformance:
    def test_identical_factors_to_generic_kernel(self):
        n, kl, ku = 96, 2, 3
        a = random_band_batch(3, n, kl, ku, seed=1)
        a_ref = a.copy()
        spec = create_specialization(H100_PCIE, kl, ku)
        piv, info = spec.gbtrf_batch(n, n, a)
        piv_ref, info_ref = gbtrf_batch(n, n, kl, ku, a_ref,
                                        method="window")
        np.testing.assert_allclose(a, a_ref, atol=0)
        for p, q in zip(piv, piv_ref):
            np.testing.assert_array_equal(p, q)

    def test_dtype_enforced(self):
        spec = create_specialization(H100_PCIE, 2, 3)
        a = random_band_batch(1, 16, 2, 3, dtype=np.float32, seed=2)
        with pytest.raises(ArgumentError, match="compiled for"):
            spec.gbtrf_batch(16, 16, a)

    def test_specialized_kernel_models_faster(self):
        """The JIT benefit shows up in the timing model (Section 8.1)."""
        from repro.gpusim import Stream
        n, kl, ku = 512, 10, 7
        spec = create_specialization(H100_PCIE, kl, ku)
        s_jit = Stream(H100_PCIE)
        spec.gbtrf_batch(n, n, [np.zeros((28, n))] * 1000, batch=1000,
                         stream=s_jit, execute=False)
        s_gen = Stream(H100_PCIE)
        gbtrf_batch(n, n, kl, ku, [np.zeros((28, n))] * 1000, batch=1000,
                    stream=s_gen, method="window", execute=False)
        assert s_jit.elapsed < s_gen.elapsed

    def test_tuning_params_fixed_at_compile_time(self):
        from repro.tuning import window_params
        spec = create_specialization(MI250X_GCD, 10, 7)
        assert (spec.nb, spec.threads) == window_params(MI250X_GCD, 10, 7)
