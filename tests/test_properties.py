"""Property-based tests (hypothesis) on the core invariants.

Strategies draw random problem configurations (size, bandwidths, RHS
count, seed); properties assert the mathematical contracts: layout
round-trips, pivot validity, backward-stable residuals, equivalence of
every kernel design, and linearity of the band product.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.band.convert import band_to_dense, bandwidth_of_dense, dense_to_band
from repro.band.generate import (
    diagonally_dominant_band,
    random_band,
    random_band_batch,
    random_band_dense,
    random_rhs,
)
from repro.band.ops import gbmm, solve_residual
from repro.core.gbsv import gbsv_batch
from repro.core.gbtf2 import gbtf2
from repro.core.gbtrf import gbtrf_batch
from repro.core.gbtrs import gbtrs_batch
from repro.core.solve_blocks import gbtrs_unblocked

SETTINGS = dict(max_examples=25, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])

configs = st.tuples(
    st.integers(min_value=1, max_value=48),     # n
    st.integers(min_value=0, max_value=8),      # kl
    st.integers(min_value=0, max_value=8),      # ku
    st.integers(min_value=0, max_value=2 ** 31 - 1),
)


@given(configs)
@settings(**SETTINGS)
def test_layout_roundtrip(cfg):
    n, kl, ku, seed = cfg
    a = random_band_dense(n, n, kl, ku, seed=seed)
    np.testing.assert_array_equal(
        band_to_dense(dense_to_band(a, kl, ku), n, kl, ku), a)


@given(configs)
@settings(**SETTINGS)
def test_bandwidth_detection_within_declared(cfg):
    n, kl, ku, seed = cfg
    a = random_band_dense(n, n, kl, ku, seed=seed)
    bkl, bku = bandwidth_of_dense(a)
    assert bkl <= min(kl, n - 1)
    assert bku <= min(ku, n - 1)


@given(configs)
@settings(**SETTINGS)
def test_pivots_within_band_reach(cfg):
    n, kl, ku, seed = cfg
    ab = random_band(n, kl, ku, seed=seed)
    piv, info = gbtf2(n, n, kl, ku, ab)
    for j, p in enumerate(piv):
        assert j <= p <= min(j + kl, n - 1)


@given(configs)
@settings(**SETTINGS)
def test_factorization_preserves_solvability(cfg):
    """factor + solve yields a backward-stable residual."""
    n, kl, ku, seed = cfg
    ab = diagonally_dominant_band(n, kl, ku, seed=seed)
    orig = ab.copy()
    b = random_rhs(n, 1, seed=seed)
    piv, info = gbtf2(n, n, kl, ku, ab)
    assert info == 0
    x = gbtrs_unblocked("N", n, kl, ku, ab, piv, b.copy())
    assert solve_residual(orig, x, b, kl, ku) < 1e-12


@given(configs, st.integers(min_value=1, max_value=4))
@settings(**SETTINGS)
def test_gbsv_residual_random_matrices(cfg, nrhs):
    n, kl, ku, seed = cfg
    a = random_band_batch(2, n, kl, ku, seed=seed)
    orig = a.copy()
    b = random_rhs(n, nrhs, batch=2, seed=seed + 1)
    x = b.copy()
    piv, info = gbsv_batch(n, kl, ku, nrhs, a, None, x)
    for k in range(2):
        if info[k] == 0:
            # Random matrices can be ill-conditioned; the *residual* must
            # still be small (backward stability of partial pivoting).
            assert solve_residual(orig[k], x[k], b[k], kl, ku) < 1e-10


@given(configs, st.sampled_from(["fused", "window", "reference"]))
@settings(**SETTINGS)
def test_all_designs_agree(cfg, method):
    n, kl, ku, seed = cfg
    a = [random_band(n, kl, ku, seed=seed)]
    ref = a[0].copy()
    piv_ref, info_ref = gbtf2(n, n, kl, ku, ref)
    try:
        piv, info = gbtrf_batch(n, n, kl, ku, a, batch=1, method=method)
    except Exception as exc:
        from repro.errors import SharedMemoryError
        assert isinstance(exc, SharedMemoryError)
        return
    np.testing.assert_allclose(a[0], ref, atol=0)
    np.testing.assert_array_equal(piv[0], piv_ref)
    assert info[0] == info_ref


@given(configs, st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=64))
@settings(**SETTINGS)
def test_window_blocking_invariance(cfg, nb1, nb2):
    """The sliding window result is independent of the blocking size."""
    n, kl, ku, seed = cfg
    a1 = [random_band(n, kl, ku, seed=seed)]
    a2 = [a1[0].copy()]
    gbtrf_batch(n, n, kl, ku, a1, batch=1, method="window", nb=nb1)
    gbtrf_batch(n, n, kl, ku, a2, batch=1, method="window", nb=nb2)
    np.testing.assert_allclose(a1[0], a2[0], atol=0)


@given(configs, st.integers(min_value=1, max_value=48))
@settings(**SETTINGS)
def test_solve_blocking_invariance(cfg, nb):
    n, kl, ku, seed = cfg
    a = [random_band(n, kl, ku, seed=seed)]
    b = [random_rhs(n, 2, seed=seed + 2)]
    piv, info = gbtrf_batch(n, n, kl, ku, a, batch=1)
    if info[0] != 0:
        return
    x1 = [b[0].copy()]
    x2 = [b[0].copy()]
    gbtrs_batch("N", n, kl, ku, 2, a, piv, x1, batch=1, method="blocked",
                nb=nb)
    gbtrs_batch("N", n, kl, ku, 2, a, piv, x2, batch=1,
                method="reference")
    np.testing.assert_allclose(x1[0], x2[0], atol=0)


@given(configs)
@settings(**SETTINGS)
def test_gbmm_linearity(cfg):
    n, kl, ku, seed = cfg
    ab = random_band(n, kl, ku, seed=seed)
    x = random_rhs(n, 2, seed=seed + 3)
    y = random_rhs(n, 2, seed=seed + 4)
    lhs = gbmm(n, kl, ku, ab, 2.0 * x + y)
    rhs = 2.0 * gbmm(n, kl, ku, ab, x) + gbmm(n, kl, ku, ab, y)
    np.testing.assert_allclose(lhs, rhs, atol=1e-10)


@given(configs)
@settings(**SETTINGS)
def test_trans_solve_is_inverse_of_trans_product(cfg):
    n, kl, ku, seed = cfg
    ab = diagonally_dominant_band(n, kl, ku, seed=seed)
    orig = ab.copy()
    piv, info = gbtf2(n, n, kl, ku, ab)
    assert info == 0
    b = random_rhs(n, 1, seed=seed + 5)
    x = gbtrs_unblocked("T", n, kl, ku, ab, piv, b.copy())
    a = band_to_dense(orig, n, kl, ku)
    np.testing.assert_allclose(a.T @ x, b, atol=1e-9)


@given(st.integers(min_value=1, max_value=30),
       st.integers(min_value=0, max_value=5),
       st.integers(min_value=0, max_value=5),
       st.integers(min_value=0, max_value=2 ** 31 - 1))
@settings(**SETTINGS)
def test_batch_equals_individual_solves(n, kl, ku, seed):
    """A batched call is exactly the per-problem calls."""
    batch = 3
    a = random_band_batch(batch, n, kl, ku, seed=seed)
    b = random_rhs(n, 1, batch=batch, seed=seed + 1)
    a_batch, b_batch = a.copy(), b.copy()
    gbsv_batch(n, kl, ku, 1, a_batch, None, b_batch)
    for k in range(batch):
        ak = [a[k].copy()]
        bk = [b[k].copy()]
        gbsv_batch(n, kl, ku, 1, ak, None, bk, batch=1)
        np.testing.assert_allclose(a_batch[k], ak[0], atol=0)
        np.testing.assert_allclose(b_batch[k], bk[0], atol=0)
