"""Error-controlled adaptive integration (SUNDIALS-style stepping)."""

import numpy as np
import pytest

from repro.apps import (
    chain_mechanism,
    integrate_adaptive,
    integrate_batch,
    sinusoidal_states,
)
from repro.errors import ArgumentError
from repro.gpusim import H100_PCIE, Stream


@pytest.fixture(scope="module")
def setup():
    mech = chain_mechanism(8, coupling=2, rate_spread=2.0, seed=0)
    y0 = sinusoidal_states(3, 8)
    return mech, y0


class TestAdaptive:
    def test_reaches_t_end_and_converges(self, setup):
        mech, y0 = setup
        res = integrate_adaptive(mech, y0, 5e-3, dt0=1e-3, rtol=1e-4)
        assert res.stats.converged
        assert res.t == pytest.approx(5e-3)
        assert res.accepted_steps == len(res.dt_history)
        assert sum(res.dt_history) == pytest.approx(5e-3)

    def test_accuracy_tracks_tolerance(self, setup):
        mech, y0 = setup
        ref = integrate_batch(mech, y0, 5e-3, dt=1e-6).y
        errs = {}
        for rtol in (1e-3, 1e-6):
            res = integrate_adaptive(mech, y0, 5e-3, dt0=5e-4, rtol=rtol)
            assert res.stats.converged
            errs[rtol] = np.abs(res.y - ref).max()
        assert errs[1e-6] < errs[1e-3]

    def test_tighter_tolerance_takes_more_steps(self, setup):
        mech, y0 = setup
        loose = integrate_adaptive(mech, y0, 5e-3, dt0=5e-4, rtol=1e-3)
        tight = integrate_adaptive(mech, y0, 5e-3, dt0=5e-4, rtol=1e-7)
        assert tight.accepted_steps > loose.accepted_steps

    def test_oversized_initial_step_gets_rejected_or_shrunk(self, setup):
        mech, y0 = setup
        res = integrate_adaptive(mech, y0, 5e-3, dt0=5e-3, rtol=1e-7)
        assert res.stats.converged
        # Either the huge first step was rejected, or the controller cut
        # dt sharply after it.
        assert res.rejected_steps >= 1 or min(res.dt_history) < 5e-3 / 2

    def test_step_sizes_adapt(self, setup):
        mech, y0 = setup
        res = integrate_adaptive(mech, y0, 1e-2, dt0=1e-5, rtol=1e-5)
        assert res.stats.converged
        # Starting tiny, the controller should grow the step.
        assert max(res.dt_history) > 2 * res.dt_history[0]

    def test_solver_traffic_recorded(self, setup):
        mech, y0 = setup
        stream = Stream(H100_PCIE)
        res = integrate_adaptive(mech, y0, 2e-3, dt0=5e-4, rtol=1e-4,
                                 device=H100_PCIE, stream=stream)
        assert res.stats.solver_calls > 0
        assert stream.launch_count() >= res.stats.solver_calls

    def test_invalid_args(self, setup):
        mech, y0 = setup
        with pytest.raises(ArgumentError):
            integrate_adaptive(mech, y0, 1e-3, dt0=0.0)
        with pytest.raises(ArgumentError):
            integrate_adaptive(mech, y0, 1e-3, rtol=-1.0)
        with pytest.raises(ArgumentError):
            integrate_adaptive(mech, np.zeros((2, 5)), 1e-3)

    def test_max_steps_exhaustion_reported(self, setup):
        mech, y0 = setup
        res = integrate_adaptive(mech, y0, 1.0, dt0=1e-6, rtol=1e-8,
                                 max_steps=5)
        assert not res.stats.converged
        assert res.t < 1.0
