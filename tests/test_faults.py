"""Fault-injection framework: determinism, budgets, filters, trace wiring."""

import numpy as np
import pytest

from repro.band.generate import random_band_batch, random_rhs
from repro.core.gbsv import gbsv_batch
from repro.core.gbtrf import gbtrf_batch
from repro.errors import (
    DeviceError,
    DeviceLostError,
    KernelHangError,
    SharedMemoryError,
)
from repro.gpusim import (
    H100_PCIE,
    MI250X_GCD,
    FaultPlan,
    Stream,
    active_injector,
    arm_faults,
    disarm_faults,
    fault_injection,
)
from repro.gpusim.faults import (
    DEVICE_OUTAGE,
    KERNEL_HANG,
    LANE_CORRUPTION,
    LAUNCH_FAILURE,
    SDC_FLIP,
    SMEM_REJECTION,
    TRANSFER_CORRUPTION,
)
from repro.gpusim.trace import format_trace, summarize


@pytest.fixture(autouse=True)
def _clean_injectors():
    yield
    disarm_faults()


def _batch(batch=8, n=32, kl=2, ku=3, seed=0):
    return random_band_batch(batch, n, kl, ku, seed=seed)


class TestArming:
    def test_no_injector_by_default(self):
        assert active_injector(H100_PCIE) is None

    def test_arm_and_disarm(self):
        inj = arm_faults(H100_PCIE, FaultPlan())
        assert active_injector(H100_PCIE) is inj
        assert active_injector(MI250X_GCD) is None
        disarm_faults(H100_PCIE)
        assert active_injector(H100_PCIE) is None

    def test_context_manager_disarms_on_exit(self):
        with fault_injection(H100_PCIE, FaultPlan(smem_rejections=1)) as inj:
            assert active_injector(H100_PCIE) is inj
        assert active_injector(H100_PCIE) is None

    def test_context_manager_disarms_on_error(self):
        with pytest.raises(RuntimeError):
            with fault_injection(H100_PCIE, FaultPlan()):
                raise RuntimeError("boom")
        assert active_injector(H100_PCIE) is None

    def test_per_device_isolation(self):
        """A plan armed on one device never touches launches on another."""
        arm_faults(MI250X_GCD, FaultPlan(launch_failure_rate=1.0))
        a = _batch()
        piv, info = gbtrf_batch(32, 32, 2, 3, a, device=H100_PCIE)
        assert (info == 0).all()

    def test_empty_plan_is_inert(self):
        inj = arm_faults(H100_PCIE, FaultPlan())
        a = _batch()
        gbtrf_batch(32, 32, 2, 3, a)
        assert inj.log == [] and inj.exhausted

    def test_plan_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(launch_failure_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(smem_rejections=-1)


class TestLaunchFailures:
    def test_rate_one_always_fails(self):
        arm_faults(H100_PCIE, FaultPlan(launch_failure_rate=1.0))
        a = _batch()
        with pytest.raises(DeviceError) as exc:
            gbtrf_batch(32, 32, 2, 3, a)
        assert exc.value.injected
        assert "kernel" in str(exc.value)

    def test_budget_cap(self):
        inj = arm_faults(H100_PCIE, FaultPlan(launch_failure_rate=1.0,
                                              max_launch_failures=2))
        a = _batch()
        for _ in range(2):
            with pytest.raises(DeviceError):
                gbtrf_batch(32, 32, 2, 3, a)
        piv, info = gbtrf_batch(32, 32, 2, 3, a)     # budget spent
        assert (info == 0).all()
        assert len(inj.events(LAUNCH_FAILURE)) == 2
        assert inj.exhausted

    def test_kernel_filter(self):
        """A filter on gbtrs names leaves factorizations untouched."""
        arm_faults(H100_PCIE, FaultPlan(launch_failure_rate=1.0,
                                        fail_kernels="gbtrs"))
        a = _batch()
        piv, info = gbtrf_batch(32, 32, 2, 3, a)
        assert (info == 0).all()

    def test_seed_determinism(self):
        """Same plan + same call sequence = same fault sequence."""
        def storm(seed):
            inj = arm_faults(H100_PCIE, FaultPlan(
                seed=seed, launch_failure_rate=0.5))
            a = _batch()
            outcomes = []
            for _ in range(12):
                try:
                    gbtrf_batch(32, 32, 2, 3, a.copy())
                    outcomes.append("ok")
                except DeviceError:
                    outcomes.append("fail")
            disarm_faults()
            return outcomes, len(inj.events(LAUNCH_FAILURE))

        first = storm(99)
        second = storm(99)
        other = storm(100)
        assert first == second
        assert first != other   # astronomically unlikely to collide


class TestSmemRejections:
    def test_rejection_consumed_once_each(self):
        inj = arm_faults(H100_PCIE, FaultPlan(smem_rejections=2))
        a = _batch()
        for _ in range(2):
            with pytest.raises(SharedMemoryError) as exc:
                gbtrf_batch(32, 32, 2, 3, a)
            assert exc.value.injected
        piv, info = gbtrf_batch(32, 32, 2, 3, a)
        assert (info == 0).all()
        assert len(inj.events(SMEM_REJECTION)) == 2

    def test_injected_message_names_injection(self):
        arm_faults(H100_PCIE, FaultPlan(smem_rejections=1))
        a = _batch()
        with pytest.raises(SharedMemoryError) as exc:
            gbtrf_batch(32, 32, 2, 3, a)
        msg = str(exc.value)
        assert "rejected by fault injection" in msg
        assert "h100-pcie" in msg

    def test_kernel_filter(self):
        inj = arm_faults(H100_PCIE, FaultPlan(smem_rejections=1,
                                              smem_kernels="gbsv_fused"))
        a = _batch()
        gbtrf_batch(32, 32, 2, 3, a)     # window kernel: not matched
        assert inj.log == []


class TestLaneCorruption:
    def test_designated_lanes_poisoned_once(self):
        inj = arm_faults(H100_PCIE, FaultPlan(corrupt_lanes=(1, 5)))
        a = _batch()
        piv, info = gbtrf_batch(32, 32, 2, 3, a)
        assert not np.isfinite(a[1]).all()
        assert not np.isfinite(a[5]).all()
        for k in (0, 2, 3, 4, 6, 7):
            assert np.isfinite(a[k]).all()
        assert {ev.lane for ev in inj.events(LANE_CORRUPTION)} == {1, 5}
        # Lanes are poisoned once; a second launch leaves them alone.
        a2 = _batch(seed=1)
        gbtrf_batch(32, 32, 2, 3, a2)
        assert np.isfinite(a2).all()
        assert inj.exhausted

    def test_corrupt_after_stage_filter(self):
        """Corruption armed on gbtrs names skips the factorization."""
        inj = arm_faults(H100_PCIE, FaultPlan(corrupt_lanes=(0,),
                                              corrupt_after="gbtrs"))
        a = _batch()
        gbtrf_batch(32, 32, 2, 3, a)
        assert np.isfinite(a).all()
        assert inj.log == []

    def test_corrupt_value_inf(self):
        arm_faults(H100_PCIE, FaultPlan(corrupt_lanes=(3,),
                                        corrupt_value=float("inf")))
        a = _batch()
        gbtrf_batch(32, 32, 2, 3, a)
        assert np.isposinf(a[3]).any()

    def test_out_of_range_lane_stays_pending(self):
        inj = arm_faults(H100_PCIE, FaultPlan(corrupt_lanes=(100,)))
        a = _batch()
        gbtrf_batch(32, 32, 2, 3, a)
        assert inj.log == [] and not inj.exhausted

    def test_corruption_recorded_on_trace(self):
        arm_faults(H100_PCIE, FaultPlan(corrupt_lanes=(2,)))
        a = _batch()
        stream = Stream(H100_PCIE)
        gbtrf_batch(32, 32, 2, 3, a, stream=stream)
        summaries = summarize(stream.records)
        assert sum(s.faults for s in summaries) == 1
        assert "faults" in format_trace(stream.records)
        (rec,) = [r for r in stream.records if r.faults]
        assert rec.faults[0].kind == LANE_CORRUPTION
        assert rec.faults[0].lane == 2


class TestSeededSweep:
    """Seeded storm across every design: faults land, logs account for them."""

    @pytest.mark.parametrize("method", ["fused", "window", "reference"])
    def test_gbtrf_designs_survive_inert_plan(self, method):
        n = 24 if method == "fused" else 48
        a = random_band_batch(6, n, 2, 2, seed=7)
        baseline = a.copy()
        gbtrf_batch(n, n, 2, 2, baseline, method=method)
        inj = arm_faults(H100_PCIE, FaultPlan(seed=5))
        piv, info = gbtrf_batch(n, n, 2, 2, a, method=method)
        assert np.array_equal(a, baseline)
        assert inj.log == []

    @pytest.mark.parametrize("method", ["fused", "window", "reference"])
    @pytest.mark.parametrize("seed", [11, 12])
    def test_gbtrf_designs_under_storm(self, method, seed):
        n = 24 if method == "fused" else 48
        plan = FaultPlan(seed=seed, launch_failure_rate=0.2,
                         max_launch_failures=3, smem_rejections=1,
                         corrupt_lanes=(2,))
        inj = arm_faults(H100_PCIE, plan)
        a = random_band_batch(6, n, 2, 2, seed=seed)
        failures = 0
        for _ in range(20):
            try:
                gbtrf_batch(n, n, 2, 2, a.copy(), method=method)
            except (DeviceError, SharedMemoryError):
                failures += 1
            if inj.exhausted:
                break
        counts = inj.counts()
        assert failures == (counts[LAUNCH_FAILURE] + counts[SMEM_REJECTION])
        assert counts[SMEM_REJECTION] == 1
        assert counts[LAUNCH_FAILURE] <= 3
        assert counts[LANE_CORRUPTION] == 1

    def test_gbsv_storm_is_reproducible(self):
        def run(seed):
            plan = FaultPlan(seed=seed, launch_failure_rate=0.3,
                             max_launch_failures=4, corrupt_lanes=(1,))
            with fault_injection(H100_PCIE, plan) as inj:
                a = random_band_batch(4, 80, 3, 3, seed=3)
                b = random_rhs(80, 1, batch=4, seed=4)
                for _ in range(10):
                    try:
                        gbsv_batch(80, 3, 3, 1, a.copy(), None, b.copy())
                    except (DeviceError, SharedMemoryError):
                        pass
                return [(ev.kind, ev.kernel, ev.lane) for ev in inj.log]

        assert run(21) == run(21)
        assert run(21) != run(22)


class TestDeviceOutage:
    """Whole-device outage: every launch fails until the window closes."""

    def test_outage_raises_device_lost(self):
        inj = arm_faults(H100_PCIE, FaultPlan(outage_after=0))
        a = _batch()
        with pytest.raises(DeviceLostError) as exc:
            gbtrf_batch(32, 32, 2, 3, a)
        assert exc.value.injected
        assert exc.value.device == H100_PCIE.name
        assert DEVICE_OUTAGE in [ev.kind for ev in inj.log]

    def test_outage_opens_after_n_launches(self):
        inj = arm_faults(H100_PCIE, FaultPlan(outage_after=1,
                                              outage_failures=2))
        a = _batch()
        gbtrf_batch(32, 32, 2, 3, a.copy())          # launch 1: healthy
        for _ in range(2):                           # launches 2-3: dead
            with pytest.raises(DeviceLostError):
                gbtrf_batch(32, 32, 2, 3, a.copy())
        assert inj.exhausted
        piv, info = gbtrf_batch(32, 32, 2, 3, a.copy())   # recovered
        assert (np.asarray(info) == 0).all()
        assert inj.counts()[DEVICE_OUTAGE] == 2

    def test_permanent_outage_never_exhausts(self):
        inj = arm_faults(H100_PCIE, FaultPlan(outage_after=0))
        a = _batch()
        for _ in range(3):
            with pytest.raises(DeviceLostError):
                gbtrf_batch(32, 32, 2, 3, a.copy())
        assert not inj.exhausted

    def test_outage_is_per_device(self):
        arm_faults(MI250X_GCD, FaultPlan(outage_after=0))
        a = _batch()
        piv, info = gbtrf_batch(32, 32, 2, 3, a)     # H100 unaffected
        assert (np.asarray(info) == 0).all()

    def test_outage_storm_deterministic(self):
        """Same seed => identical outage event sequence (trace-attributed)."""
        def run(seed):
            plan = FaultPlan(seed=seed, outage_after=2, outage_failures=3,
                             launch_failure_rate=0.2,
                             max_launch_failures=2)
            with fault_injection(H100_PCIE, plan) as inj:
                a = _batch()
                for _ in range(10):
                    try:
                        gbtrf_batch(32, 32, 2, 3, a.copy())
                    except (DeviceError, SharedMemoryError):
                        pass
                return [(ev.kind, ev.kernel, ev.detail) for ev in inj.log]

        assert run(5) == run(5)

    def test_plan_validation(self):
        with pytest.raises(Exception):
            FaultPlan(outage_after=-1)
        with pytest.raises(Exception):
            FaultPlan(outage_failures=0)
        with pytest.raises(Exception):
            FaultPlan(hang_launches=-1)
        with pytest.raises(Exception):
            FaultPlan(hang_seconds=-1.0)


class TestKernelHang:
    """Injected hangs: inflated timelines, watchdog conversion."""

    def test_hang_inflates_stream_time(self):
        arm_faults(H100_PCIE, FaultPlan(hang_launches=1, hang_seconds=0.75))
        stream = Stream(H100_PCIE)
        a = _batch(batch=4)
        piv, info = gbtrf_batch(32, 32, 2, 3, a, stream=stream)
        assert (np.asarray(info) == 0).all()         # results unharmed
        assert stream.elapsed > 0.75
        inj = active_injector(H100_PCIE)
        assert inj.counts()[KERNEL_HANG] == 1

    def test_hang_budget_consumed_once(self):
        arm_faults(H100_PCIE, FaultPlan(hang_launches=1, hang_seconds=0.5))
        s1, s2 = Stream(H100_PCIE), Stream(H100_PCIE)
        gbtrf_batch(32, 32, 2, 3, _batch(batch=2), stream=s1)
        gbtrf_batch(32, 32, 2, 3, _batch(batch=2), stream=s2)
        assert s1.elapsed > 0.5
        assert s2.elapsed < 0.5

    def test_watchdog_converts_hang_to_error(self):
        arm_faults(H100_PCIE, FaultPlan(hang_launches=1, hang_seconds=2.0))
        stream = Stream(H100_PCIE, watchdog=0.5)
        with pytest.raises(KernelHangError) as exc:
            gbtrf_batch(32, 32, 2, 3, _batch(batch=4), stream=stream)
        assert exc.value.injected
        assert exc.value.elapsed > exc.value.deadline == 0.5
        # The hung record never lands on the timeline (clean replay).
        assert stream.launch_count() == 0

    def test_watchdog_ignores_healthy_launches(self):
        stream = Stream(H100_PCIE, watchdog=10.0)
        piv, info = gbtrf_batch(32, 32, 2, 3, _batch(batch=4),
                                stream=stream)
        assert (np.asarray(info) == 0).all()

    def test_hang_filters_by_kernel_name(self):
        arm_faults(H100_PCIE, FaultPlan(hang_launches=5, hang_seconds=1.0,
                                        hang_kernels="no-such-kernel"))
        stream = Stream(H100_PCIE, watchdog=0.5)
        piv, info = gbtrf_batch(32, 32, 2, 3, _batch(batch=4),
                                stream=stream)
        assert (np.asarray(info) == 0).all()
        assert stream.elapsed < 0.5


class TestSilentDataCorruption:
    """Finite SDC flips: post-stage, staged-input, and in-flight copies."""

    def test_sdc_lanes_flipped_once_and_finite(self):
        inj = arm_faults(H100_PCIE, FaultPlan(sdc_lanes=(2, 6)))
        a = _batch()
        clean = _batch()
        gbtrf_batch(32, 32, 2, 3, clean)
        gbtrf_batch(32, 32, 2, 3, a)
        # The flip is silent: everything stays finite, but the flipped
        # lanes differ from a clean factorization.
        assert np.isfinite(a).all()
        for k in range(8):
            same = np.array_equal(a[k], clean[k])
            assert same == (k not in (2, 6)), k
        assert {ev.lane for ev in inj.events(SDC_FLIP)} == {2, 6}
        assert inj.exhausted
        # Budget consumed: a second launch is untouched.
        a2 = _batch(seed=1)
        clean2 = _batch(seed=1)
        gbtrf_batch(32, 32, 2, 3, a2)
        gbtrf_batch(32, 32, 2, 3, clean2)
        assert np.array_equal(a2, clean2)

    def test_sdc_after_filter_and_scale(self):
        inj = arm_faults(H100_PCIE, FaultPlan(sdc_lanes=(0,),
                                              sdc_after="gbtrs"))
        a = _batch()
        gbtrf_batch(32, 32, 2, 3, a)
        assert inj.log == [] and not inj.exhausted

    def test_out_of_range_sdc_lane_stays_pending(self):
        inj = arm_faults(H100_PCIE, FaultPlan(sdc_lanes=(100,)))
        gbtrf_batch(32, 32, 2, 3, _batch())
        assert inj.log == [] and not inj.exhausted

    def test_transfer_sdc_strikes_before_execution(self):
        """Staged-input corruption lands on the operands the kernel is
        about to consume: the factorization is *of* the corrupted matrix,
        self-consistently — invisible without an outside residual gate."""
        inj = arm_faults(H100_PCIE, FaultPlan(transfer_sdc_lanes=(3,),
                                              transfer_before="gbtrf"))
        a = _batch()
        clean = _batch()
        piv, info = gbtrf_batch(32, 32, 2, 3, a)
        gbtrf_batch(32, 32, 2, 3, clean)
        assert np.isfinite(a).all()
        assert not np.array_equal(a[3], clean[3])
        (ev,) = inj.events(TRANSFER_CORRUPTION)
        assert ev.lane == 3 and "staged-input" in ev.detail

    def test_sdc_determinism(self):
        def run(seed):
            with fault_injection(
                    H100_PCIE,
                    FaultPlan(seed=seed, sdc_lanes=(1, 4))) as inj:
                a = _batch(seed=2)
                gbtrf_batch(32, 32, 2, 3, a)
                return a.tobytes(), [(e.kind, e.lane, e.detail)
                                     for e in inj.log]

        assert run(33) == run(33)
        assert run(33) != run(34)

    def test_sdc_events_recorded_on_trace(self):
        arm_faults(H100_PCIE, FaultPlan(sdc_lanes=(1,)))
        stream = Stream(H100_PCIE)
        gbtrf_batch(32, 32, 2, 3, _batch(), stream=stream)
        (rec,) = [r for r in stream.records if r.faults]
        assert rec.faults[0].kind == SDC_FLIP
        assert rec.faults[0].lane == 1
        assert summarize(stream.records)
