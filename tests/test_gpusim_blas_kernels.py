"""Batched GEMM/GEMV device kernels (the Figure-1 workloads)."""

import numpy as np
import pytest

from repro.gpusim import H100_PCIE, launch
from repro.gpusim.blas_kernels import (
    GEMM_TILE,
    GEMV_ROWS,
    BatchedGemmKernel,
    BatchedGemvKernel,
    GemmKernel,
    GemvKernel,
)


class TestGemmKernel:
    @pytest.mark.parametrize("n", [1, 7, 32, 33, 70])
    def test_functional(self, n, rng):
        a = rng.standard_normal((n, n))
        b = rng.standard_normal((n, n))
        c = np.zeros((n, n))
        launch(H100_PCIE, GemmKernel(a, b, c))
        np.testing.assert_allclose(c, a @ b, atol=1e-11)

    def test_alpha_beta(self, rng):
        n = 16
        a = rng.standard_normal((n, n))
        c = np.ones((n, n))
        launch(H100_PCIE, GemmKernel(a, a, c, alpha=2.0, beta=0.5))
        np.testing.assert_allclose(c, 2.0 * (a @ a) + 0.5, atol=1e-11)

    def test_grid_is_tile_count_squared(self):
        a = np.zeros((65, 65))
        k = GemmKernel(a, a, a.copy())
        tiles = -(-65 // GEMM_TILE)
        assert k.grid() == tiles * tiles

    def test_cost_scales_with_n(self):
        a1 = np.zeros((64, 64))
        a2 = np.zeros((128, 128))
        c1 = GemmKernel(a1, a1, a1.copy()).block_cost()
        c2 = GemmKernel(a2, a2, a2.copy()).block_cost()
        assert c2.flops == 2 * c1.flops      # per-tile flops grow with k


class TestGemvKernel:
    @pytest.mark.parametrize("m,n", [(1, 1), (64, 64), (200, 130)])
    def test_functional(self, m, n, rng):
        a = rng.standard_normal((m, n))
        x = rng.standard_normal(n)
        y = np.zeros(m)
        launch(H100_PCIE, GemvKernel(a, x, y))
        np.testing.assert_allclose(y, a @ x, atol=1e-11)

    def test_grid_covers_rows(self):
        a = np.zeros((GEMV_ROWS * 2 + 1, 8))
        assert GemvKernel(a, np.zeros(8), np.zeros(a.shape[0])).grid() == 3

    def test_memory_bound_cost(self):
        a = np.zeros((4096, 4096))
        k = GemvKernel(a, np.zeros(4096), np.zeros(4096))
        t = k.timing(H100_PCIE)
        assert not t.latency_bound    # DRAM sets the time for big GEMV


class TestBatchedKernels:
    def test_batched_gemm_functional(self, rng):
        a = rng.standard_normal((5, 24, 24))
        b = rng.standard_normal((5, 24, 24))
        c = np.zeros_like(a)
        launch(H100_PCIE, BatchedGemmKernel(a, b, c))
        np.testing.assert_allclose(c, a @ b, atol=1e-11)

    def test_batched_gemv_functional(self, rng):
        a = rng.standard_normal((6, 40, 40))
        x = rng.standard_normal((6, 40))
        y = np.zeros((6, 40))
        launch(H100_PCIE, BatchedGemvKernel(a, x, y))
        np.testing.assert_allclose(y, np.einsum("bij,bj->bi", a, x),
                                   atol=1e-11)

    def test_batched_grid_is_batch_times_single(self, rng):
        a = np.zeros((10, 64, 64))
        x = np.zeros((10, 64))
        bk = BatchedGemvKernel(a, x, x.copy())
        single = GemvKernel(a[0], x[0], x[0].copy())
        assert bk.grid() == 10 * single.grid()
        # Same per-block cost: the batch advantage is purely the single
        # launch amortised over all blocks.
        assert bk.block_cost() == single.block_cost()

    def test_single_launch_beats_many(self):
        """The core Figure-1 claim at the timing-model level."""
        a = np.zeros((100, 64, 64))
        x = np.zeros((100, 64))
        bk = BatchedGemvKernel(a, x, x.copy())
        t_batched = bk.timing(H100_PCIE).total
        single = GemvKernel(a[0], x[0], x[0].copy())
        t_one = single.timing(H100_PCIE).total
        assert t_batched < 100 * t_one
