"""GBSV driver and fused factorize-and-solve kernel."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense, dense_to_band
from repro.band.generate import random_band, random_band_batch, random_rhs
from repro.core.gbsv import gbsv, gbsv_batch, select_gbsv_method
from repro.errors import ArgumentError
from repro.gpusim import H100_PCIE, MI250X_GCD, Stream

from conftest import BAND_CONFIGS


class TestSingleMatrix:
    @pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
    def test_solves(self, n, kl, ku):
        ab = random_band(n, kl, ku, seed=n)
        a = band_to_dense(ab, n, kl, ku)
        b = random_rhs(n, 2, seed=n + 1)
        x, piv, info = gbsv(n, kl, ku, ab, b.copy())
        if info == 0:
            np.testing.assert_allclose(
                a @ x, b, atol=1e-9 * max(1, np.abs(a).max() * 10))

    def test_scipy_gbsv_equivalence(self):
        from scipy.linalg import lapack
        n, kl, ku = 15, 2, 3
        ab = random_band(n, kl, ku, seed=42)
        b = random_rhs(n, 1, seed=43)
        lub, piv_ref, x_ref, info_ref = lapack.dgbsv(
            kl, ku, np.asfortranarray(ab), np.asfortranarray(b))
        x, piv, info = gbsv(n, kl, ku, ab.copy(), b.copy())
        assert info == info_ref
        np.testing.assert_allclose(x, x_ref, atol=1e-12)


class TestFusedVsStandard:
    @pytest.mark.parametrize("n,kl,ku", [(8, 1, 1), (32, 2, 3), (48, 10, 7),
                                         (64, 2, 3), (16, 0, 2), (16, 2, 0)])
    def test_identical_results(self, n, kl, ku):
        a = random_band_batch(4, n, kl, ku, seed=n * 11)
        b = random_rhs(n, 1, batch=4, seed=n * 11 + 1)
        a1, b1, a2, b2 = a.copy(), b.copy(), a.copy(), b.copy()
        piv1, info1 = gbsv_batch(n, kl, ku, 1, a1, None, b1, method="fused")
        piv2, info2 = gbsv_batch(n, kl, ku, 1, a2, None, b2,
                                 method="standard")
        np.testing.assert_allclose(a1, a2, atol=0)
        np.testing.assert_allclose(b1, b2, atol=1e-12)
        np.testing.assert_array_equal(np.stack(piv1), np.stack(piv2))
        np.testing.assert_array_equal(info1, info2)

    def test_fused_multiple_rhs(self):
        """The fused kernel supports nrhs > 1 even if dispatch avoids it."""
        n, kl, ku, nrhs = 24, 2, 3, 3
        a = random_band_batch(2, n, kl, ku, seed=3)
        b = random_rhs(n, nrhs, batch=2, seed=4)
        a1, b1 = a.copy(), b.copy()
        gbsv_batch(n, kl, ku, nrhs, a1, None, b1, method="fused")
        dense = band_to_dense(a[0], n, kl, ku)
        np.testing.assert_allclose(dense @ b1[0], b[0], atol=1e-11)


class TestSingularHandling:
    def _singular_batch(self, n=12, kl=1, ku=1):
        a_ok = random_band(n, kl, ku, seed=1)
        sing = np.zeros((n, n))
        sing[:] = np.eye(n)
        sing[5, 5] = 0.0                    # structurally singular column
        sing[6, 5] = 0.0
        sing[5, 6] = 0.0
        sing[4, 5] = 0.0
        a_bad = dense_to_band(sing, kl, ku)
        return np.stack([a_ok, a_bad])

    @pytest.mark.parametrize("method", ["fused", "standard"])
    def test_singular_leaves_rhs_untouched(self, method):
        """LAPACK GBSV semantics: info > 0 means B is not overwritten."""
        a = self._singular_batch()
        b = random_rhs(12, 1, batch=2, seed=2)
        b_orig = b.copy()
        piv, info = gbsv_batch(12, 1, 1, 1, a, None, b, method=method)
        assert info[0] == 0
        assert info[1] == 6                 # 1-based singular column
        assert np.isfinite(b[0]).all()
        np.testing.assert_array_equal(b[1], b_orig[1])

    def test_healthy_problems_still_solved(self):
        a = self._singular_batch()
        orig = a.copy()
        b = random_rhs(12, 1, batch=2, seed=3)
        b_orig = b.copy()
        piv, info = gbsv_batch(12, 1, 1, 1, a, None, b)
        dense = band_to_dense(orig[0], 12, 1, 1)
        np.testing.assert_allclose(dense @ b[0], b_orig[0], atol=1e-11)


class TestDispatch:
    def test_cutoff_rule(self):
        assert select_gbsv_method(H100_PCIE, 64, 2, 3, 1) == "fused"
        assert select_gbsv_method(H100_PCIE, 65, 2, 3, 1) == "standard"
        assert select_gbsv_method(H100_PCIE, 32, 2, 3, 2) == "standard"

    def test_auto_stream_trace(self):
        stream = Stream(H100_PCIE)
        n = 32
        a = random_band_batch(2, n, 2, 3, seed=5)
        b = random_rhs(n, 1, batch=2, seed=6)
        gbsv_batch(n, 2, 3, 1, a, None, b, stream=stream)
        # Fused path: exactly one kernel.
        assert stream.launch_count() == 1
        assert stream.records[0].kernel_name == "gbsv_fused"

        stream2 = Stream(H100_PCIE)
        n = 128
        a = random_band_batch(2, n, 2, 3, seed=7)
        b = random_rhs(n, 1, batch=2, seed=8)
        gbsv_batch(n, 2, 3, 1, a, None, b, stream=stream2)
        # Standard path: factorization + forward + backward kernels.
        names = [r.kernel_name for r in stream2.records]
        assert names == ["gbtrf_window", "gbtrs_fwd_blocked",
                         "gbtrs_bwd_blocked"]

    def test_invalid_method_rejected(self):
        a = random_band_batch(1, 8, 1, 1, seed=9)
        with pytest.raises(ArgumentError):
            gbsv_batch(8, 1, 1, 1, a, None, random_rhs(8, 1, batch=1),
                       method="quantum")

    def test_devices_agree(self):
        n, kl, ku = 40, 2, 3
        a = random_band_batch(3, n, kl, ku, seed=10)
        b = random_rhs(n, 1, batch=3, seed=11)
        a1, b1, a2, b2 = a.copy(), b.copy(), a.copy(), b.copy()
        gbsv_batch(n, kl, ku, 1, a1, None, b1, device=H100_PCIE)
        gbsv_batch(n, kl, ku, 1, a2, None, b2, device=MI250X_GCD)
        np.testing.assert_allclose(b1, b2, atol=0)

    def test_zero_batch(self):
        piv, info = gbsv_batch(8, 1, 1, 1, [], None, [], batch=0)
        assert len(piv) == 0 and info.shape == (0,)

    def test_nrhs_zero_factors_only(self):
        n = 16
        a = random_band_batch(2, n, 1, 1, seed=12)
        ref = a.copy()
        from repro.core.gbtf2 import gbtf2
        for k in range(2):
            gbtf2(n, n, 1, 1, ref[k])
        piv, info = gbsv_batch(n, 1, 1, 0, a, None,
                               np.zeros((2, n, 0)))
        np.testing.assert_allclose(a, ref, atol=0)
