"""Service layer: coalescing, factorization cache, backpressure, report.

The contracts under test (docs/SERVING.md):

* coalescing is *transparent* — a request's result is bit-identical to a
  direct ``gbtrf_batch`` + ``gbtrs_batch`` on the same operands, no
  matter how it was grouped, and a seeded arrival process dispatches
  deterministically;
* a cache hit solves against byte-identical factors, so hit == cold at
  ``atol=0``; explicit invalidation forces a re-factor;
* cached bytes are real device residency: the pool's ``factor-cache``
  ledger tracks them, a ``REPRO_GLOBAL_MEM_BYTES`` squeeze evicts them,
  and ``close()`` releases everything;
* backpressure flushes keep the pending footprint inside the admission
  budget; age flushes preserve submission order;
* ``ServiceReport`` round-trips through ``to_dict()/from_dict()``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ArgumentError,
    BatchingPolicy,
    DeviceMemoryError,
    FactorCache,
    ServiceReport,
    SingularMatrixError,
    SolverService,
    operand_digest,
)
from repro.band.generate import random_band, random_rhs
from repro.core import gbtrf_batch, gbtrs_batch
from repro.gpusim import H100_PCIE
from repro.gpusim.memory import memory_pool, reset_memory_pools
from repro.serve.cache import CACHE_LABEL

N, KL, KU = 32, 2, 3


def _system(seed, n=N, kl=KL, ku=KU, nrhs=1):
    ab = random_band(n, kl, ku, seed=seed)
    b = random_rhs(n, nrhs, seed=seed + 1000)
    return ab, b


def _direct(ab, b, kl=KL, ku=KU):
    """Cold-path reference: the two-stage drivers on copies."""
    n = ab.shape[1]
    abf, bf = ab.copy(), b.copy()
    if bf.ndim == 1:
        bf = bf[:, None]
    piv, info = gbtrf_batch(n, n, kl, ku, [abf], batch=1)
    assert int(info[0]) == 0
    gbtrs_batch("N", n, kl, ku, bf.shape[1], [abf], piv, [bf], batch=1)
    return bf


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


# --- correctness -----------------------------------------------------------


def test_solve_matches_direct_two_stage():
    ab, b = _system(0)
    with SolverService() as svc:
        x = svc.solve(KL, KU, ab, b[:, 0])
    assert x.tobytes() == _direct(ab, b[:, 0])[:, 0].tobytes()


def test_solve_multi_rhs_and_shape():
    ab, b = _system(1, nrhs=3)
    with SolverService() as svc:
        x = svc.solve(KL, KU, ab, b)
    assert x.shape == (N, 3)
    assert x.tobytes() == _direct(ab, b).tobytes()


def test_submitted_operands_are_snapshotted():
    ab, b = _system(2)
    ab_before, b_before = ab.copy(), b.copy()
    with SolverService() as svc:
        h = svc.submit(KL, KU, ab, b)
        ab += 1.0                       # caller mutates after submit
        b += 1.0
        x = h.result()
    assert x.tobytes() == _direct(ab_before, b_before).tobytes()
    np.testing.assert_array_equal(ab, ab_before + 1.0)


def test_coalesced_group_matches_per_request_solutions():
    systems = [_system(seed) for seed in range(8)]
    with SolverService(policy=BatchingPolicy(max_group=8)) as svc:
        handles = [svc.submit(KL, KU, ab, b) for ab, b in systems]
        assert all(h.done for h in handles)      # size flush fired
    for h, (ab, b) in zip(handles, systems):
        assert h.solution.tobytes() == _direct(ab, b).tobytes()


def test_solve_accuracy_against_scipy():
    scipy = pytest.importorskip("scipy.linalg")
    ab, b = _system(3)
    from repro.band.convert import band_to_dense
    dense = band_to_dense(ab, N, KL, KU)
    with SolverService() as svc:
        x = svc.solve(KL, KU, ab, b)
    np.testing.assert_allclose(dense @ x, b, atol=1e-10)


def test_argument_validation():
    ab, b = _system(4)
    with SolverService() as svc:
        with pytest.raises(ArgumentError):
            svc.submit(-1, KU, ab, b)
        with pytest.raises(ArgumentError):
            svc.submit(KL, KU, ab[:KL + KU, :], b)      # band layout only
        with pytest.raises(ArgumentError):
            svc.submit(KL, KU, ab, b[:-1])
        with pytest.raises(ArgumentError):
            svc.submit(KL, KU, ab, b.astype(np.float32))


def test_singular_operator_reports_info_and_leaves_rhs():
    ab, b = _system(5)
    ab[KL + KU, :] = 0.0                # exactly zero diagonal
    ab[:KL + KU, :] = 0.0
    ab[KL + KU + 1:, :] = 0.0
    with SolverService() as svc:
        h = svc.submit(KL, KU, ab, b)
        with pytest.raises(SingularMatrixError):
            h.result()
        assert h.info > 0
        assert h.solution.tobytes() == b.tobytes()      # B untouched
        rep = svc.report()
    assert rep.singular == 1 and rep.solved == 0
    assert rep.cache_entries == 0       # singular factors are not cached


# --- coalescing determinism ------------------------------------------------


def _seeded_traffic(svc, *, requests=24, operators=5, seed=7):
    """A seeded arrival mix of repeated operators and fresh right-hand
    sides; returns the solution bytes in submission order."""
    rng = np.random.default_rng(seed)
    ops = [random_band(N, KL, KU, seed=100 + k) for k in range(operators)]
    handles = []
    for i in range(requests):
        ab = ops[int(rng.integers(operators))]
        b = random_rhs(N, 1, seed=int(rng.integers(1 << 30)))
        handles.append(svc.submit(KL, KU, ab, b))
    svc.flush()
    return [h.solution.tobytes() for h in handles]


def test_coalescing_is_deterministic_under_seeded_arrivals():
    runs = []
    for _ in range(2):
        reset_memory_pools()
        with SolverService(policy=BatchingPolicy(max_group=6)) as svc:
            runs.append((_seeded_traffic(svc), svc.report().to_dict()))
    (sols_a, rep_a), (sols_b, rep_b) = runs
    assert sols_a == sols_b
    assert rep_a == rep_b               # same flushes, groups, cache stats


def test_group_size_never_changes_results():
    systems = [_system(seed) for seed in range(10)]
    baseline = [_direct(ab, b).tobytes() for ab, b in systems]
    for max_group in (1, 3, 10):
        reset_memory_pools()
        with SolverService(
                policy=BatchingPolicy(max_group=max_group)) as svc:
            handles = [svc.submit(KL, KU, ab, b) for ab, b in systems]
            svc.flush()
            got = [h.solution.tobytes() for h in handles]
        assert got == baseline, f"max_group={max_group} changed results"


# --- factorization cache ---------------------------------------------------


def test_cache_hit_is_bit_identical_to_cold_path():
    ab, _ = _system(11)
    with SolverService() as svc:
        xs = [svc.solve(KL, KU, ab, random_rhs(N, 1, seed=s))
              for s in range(4)]
        rep = svc.report()
    assert rep.cache_misses == 1 and rep.cache_hits == 3
    assert rep.factorizations == 1      # gbtrf ran exactly once
    for s, x in enumerate(xs):
        cold = _direct(ab, random_rhs(N, 1, seed=s))
        assert x.tobytes() == cold.tobytes()


def test_duplicate_operators_in_one_flush_factor_once():
    ab, _ = _system(12)
    rhs = [random_rhs(N, 1, seed=s) for s in range(5)]
    with SolverService(policy=BatchingPolicy(max_group=64)) as svc:
        handles = [svc.submit(KL, KU, ab, b) for b in rhs]
        svc.flush()
        rep = svc.report()
    assert rep.factorizations == 1
    assert rep.cache_misses == 5        # all looked up before the factor
    for h, b in zip(handles, rhs):
        assert h.solution.tobytes() == _direct(ab, b).tobytes()


def test_vectorize_true_handles_shared_factors():
    ab, _ = _system(13)
    rhs = [random_rhs(N, 1, seed=s) for s in range(4)]
    with SolverService(vectorize=True,
                       policy=BatchingPolicy(max_group=64)) as svc:
        handles = [svc.submit(KL, KU, ab, b) for b in rhs]
        svc.flush()
    for h, b in zip(handles, rhs):
        assert h.solution.tobytes() == _direct(ab, b).tobytes()


def test_digest_separates_bandwidths_dtypes_and_content():
    ab, _ = _system(14)
    base = operand_digest(KL, KU, ab)
    assert operand_digest(KL + 1, KU, ab) != base
    assert operand_digest(KL, KU, ab.astype(np.complex128)) != base
    bumped = ab.copy()
    bumped[KL + KU, 0] += 1e-12
    assert operand_digest(KL, KU, bumped) != base
    assert operand_digest(KL, KU, ab.copy()) == base    # content, not id


def test_explicit_invalidation_forces_refactor():
    ab, b = _system(15)
    with SolverService() as svc:
        svc.solve(KL, KU, ab, b)
        assert svc.invalidate(KL, KU, ab) == 1
        assert svc.invalidate(KL, KU, ab) == 0          # already gone
        svc.solve(KL, KU, ab, b)
        rep = svc.report()
    assert rep.factorizations == 2
    assert rep.cache_invalidations == 1


def test_invalidate_all_clears_cache_and_pool_charge():
    with SolverService() as svc:
        for seed in range(3):
            ab, b = _system(20 + seed)
            svc.solve(KL, KU, ab, b)
        pool = memory_pool(H100_PCIE)
        assert pool.in_use_by_label[CACHE_LABEL] == svc.report().cache_bytes
        assert svc.invalidate() == 3
        assert CACHE_LABEL not in pool.in_use_by_label
        assert svc.report().cache_entries == 0


def test_lru_eviction_under_entry_cap():
    with SolverService(cache_entries=2) as svc:
        systems = [_system(30 + k) for k in range(3)]
        for ab, b in systems:
            svc.solve(KL, KU, ab, b)
        # 0 is LRU and evicted; 1 and 2 resident.
        svc.solve(KL, KU, systems[1][0], systems[1][1])
        svc.solve(KL, KU, systems[0][0], systems[0][1])
        rep = svc.report()
    assert rep.cache_evictions == 2     # first insert of 2, re-insert of 0
    assert rep.cache_hits == 1          # only the re-solve of 1
    assert rep.factorizations == 4


def test_cache_disabled_baseline():
    ab, b = _system(40)
    with SolverService(cache_entries=0) as svc:
        svc.solve(KL, KU, ab, b)
        svc.solve(KL, KU, ab, b)
        rep = svc.report()
    assert rep.cache_hits == 0
    assert rep.factorizations == 2
    assert rep.cache_entries == 0 and rep.cache_rejected == 2


def test_eviction_under_global_memory_squeeze(monkeypatch):
    """A tiny device pool evicts the cache instead of breaking solves."""
    monkeypatch.setenv("REPRO_GLOBAL_MEM_BYTES", str(64 * 1024))
    reset_memory_pools()
    n = 256                             # ~18 KiB per cached factorization
    with SolverService() as svc:
        handles, systems = [], [_system(50 + k, n=n) for k in range(8)]
        for ab, b in systems:
            handles.append(svc.submit(KL, KU, ab, b))
            svc.flush()
        rep = svc.report()
        pool = memory_pool(H100_PCIE)
        assert rep.cache_evictions > 0  # the squeeze displaced entries
        assert rep.cache_entries < 8
        assert pool.in_use_by_label.get(CACHE_LABEL, 0) == rep.cache_bytes
        assert rep.cache_bytes <= 64 * 1024
    for h, (ab, b) in zip(handles, systems):
        assert h.solution.tobytes() == _direct(ab, b).tobytes()
    assert memory_pool(H100_PCIE).in_use == 0           # close() released


def test_close_releases_every_pool_charge():
    svc = SolverService()
    for seed in range(4):
        ab, b = _system(60 + seed)
        svc.solve(KL, KU, ab, b)
    assert memory_pool(H100_PCIE).in_use > 0
    svc.close()
    assert memory_pool(H100_PCIE).in_use == 0
    with pytest.raises(ArgumentError):
        svc.submit(KL, KU, *_system(64))


# --- backpressure and deadlines --------------------------------------------


def test_backpressure_flushes_before_budget_overflow():
    ab, b = _system(70)
    lane = ab.nbytes + N * 8 + b.nbytes + 8 + 24
    with SolverService(cache_entries=0, max_resident_bytes=3 * lane,
                       policy=BatchingPolicy(max_group=1000,
                                             max_delay=1e9)) as svc:
        handles = [svc.submit(KL, KU, *_system(71 + k)) for k in range(7)]
        rep = svc.report()
        assert rep.backpressure_flushes >= 2
        assert rep.flushes.get("footprint", 0) == rep.backpressure_flushes
        assert svc.pending > 0          # tail still coalescing
        svc.flush()
    assert all(h.done for h in handles)


def test_oversized_single_request_rejected_eagerly():
    ab, b = _system(72)
    with SolverService(max_resident_bytes=ab.nbytes // 2,
                       cache_entries=0) as svc:
        with pytest.raises(DeviceMemoryError):
            svc.submit(KL, KU, ab, b)
        assert svc.report().requests == 0


def test_flush_on_age_fires_at_deadline_and_preserves_order():
    clock = FakeClock()
    with SolverService(policy=BatchingPolicy(max_group=1000,
                                             max_delay=0.010),
                       clock=clock) as svc:
        h1 = svc.submit(KL, KU, *_system(80))
        clock.advance(0.004)
        h2 = svc.submit(KL, KU, *_system(81))
        clock.advance(0.004)
        assert svc.poll() == 0          # oldest is 8 ms old: below deadline
        assert not h1.done
        clock.advance(0.004)
        assert svc.poll() == 2          # 12 ms: age flush takes both
        rep = svc.report()
        assert rep.flushes == {"age": 1}
        # Completion follows submission order, and latency is clocked.
        assert h1.completion_index < h2.completion_index
        assert h1.latency == pytest.approx(0.012)
        assert h2.latency == pytest.approx(0.008)


def test_age_flush_via_submit_of_next_request():
    clock = FakeClock()
    with SolverService(policy=BatchingPolicy(max_group=1000,
                                             max_delay=0.005),
                       clock=clock) as svc:
        h1 = svc.submit(KL, KU, *_system(82))
        clock.advance(0.006)
        h2 = svc.submit(KL, KU, *_system(83))   # trips the deadline check
        # The aged request fires the flush; the fresh one rides along
        # (coalescing never holds a dispatch back to wait for age).
        assert h1.done and h2.done
        assert svc.report().flushes == {"age": 1}


def test_background_poller_flushes_by_age():
    import time as _time
    with SolverService(policy=BatchingPolicy(max_group=1000,
                                             max_delay=0.01),
                       auto_poll_interval=0.005) as svc:
        h = svc.submit(KL, KU, *_system(84))
        deadline = _time.monotonic() + 5.0
        while not h.done and _time.monotonic() < deadline:
            _time.sleep(0.005)
        assert h.done
        assert svc.report().flushes.get("age", 0) >= 1


def test_close_flushes_pending():
    svc = SolverService(policy=BatchingPolicy(max_group=1000,
                                              max_delay=1e9))
    h = svc.submit(KL, KU, *_system(85))
    assert not h.done
    svc.close()
    assert h.done
    ab, b = _system(85)
    assert h.solution.tobytes() == _direct(ab, b).tobytes()


# --- resilient dispatch ----------------------------------------------------


def test_resilient_mode_attaches_batch_reports():
    ab, b = _system(90)
    with SolverService(resilient=True) as svc:
        x = svc.solve(KL, KU, ab, b)
        rep = svc.report()
    assert x.tobytes() == _direct(ab, b).tobytes()
    assert len(rep.batch_reports) == 2          # one gbtrf, one gbtrs
    ops = {r["operation"] for r in rep.batch_reports}
    assert ops == {"gbtrf", "gbtrs"}
    assert rep.faults_tolerated == 0
    assert rep.ok


def test_resilient_mode_survives_a_fault_storm():
    from repro.gpusim.faults import FaultPlan, fault_injection
    ab, b = _system(91)
    plan = FaultPlan(seed=5, launch_failure_rate=0.3)
    with fault_injection(H100_PCIE, plan):
        with SolverService(resilient=True) as svc:
            x = svc.solve(KL, KU, ab, b)
            rep = svc.report()
    assert x.tobytes() == _direct(ab, b).tobytes()
    assert rep.ok


# --- the report ------------------------------------------------------------


def test_report_round_trips_via_to_dict_from_dict():
    with SolverService(policy=BatchingPolicy(max_group=3),
                       resilient=True) as svc:
        _seeded_traffic(svc, requests=9, operators=2, seed=3)
        rep = svc.report()
    data = rep.to_dict()
    back = ServiceReport.from_dict(data)
    assert back.to_dict() == data
    assert back.hit_rate == rep.hit_rate
    assert back.mean_group_size == rep.mean_group_size
    import json
    json.dumps(data)                    # JSON-safe by construction


def test_report_snapshot_is_detached():
    with SolverService() as svc:
        before = svc.report()
        svc.solve(KL, KU, *_system(95))
        after = svc.report()
    assert before.requests == 0 and after.requests == 1
    before.requests = 123               # mutating a snapshot is harmless
    assert svc._report.requests == 1


def test_report_counts_flush_reasons_and_groups():
    with SolverService(policy=BatchingPolicy(max_group=2)) as svc:
        for seed in range(5):
            svc.submit(KL, KU, *_system(200 + seed))
        svc.flush()
        rep = svc.report()
    assert rep.flushes["size"] == 2 and rep.flushes["manual"] == 1
    assert rep.dispatched_lanes == 5
    assert sum(int(s) * c for s, c in rep.group_sizes.items()) == 5
    assert rep.mean_group_size > 1.0
    assert rep.summary().startswith("serve requests=5")


# --- deadline-aware load shedding ------------------------------------------


def _never_policy():
    """A batching policy that only flushes when told to."""
    return BatchingPolicy(max_group=1000, max_delay=1e9)


def _half_dead_policy():
    """A resilience policy whose breaker holds one of two shards open."""
    from repro import CircuitBreaker, ResiliencePolicy
    br = CircuitBreaker()
    br.record_failure("h100-pcie:0", kind="device-lost", fatal=True)
    return ResiliencePolicy(breaker=br)


def test_overload_sheds_lowest_priority_newest_first():
    clock = FakeClock()
    with SolverService(policy=_never_policy(), clock=clock, devices=2,
                       resilient=True,
                       resilience_policy=_half_dead_policy()) as svc:
        # 4 low-priority then 4 high-priority requests.
        lows = [svc.submit(KL, KU, *_system(200 + i)) for i in range(4)]
        highs = [svc.submit(KL, KU, *_system(210 + i), priority=1)
                 for i in range(4)]
        svc.flush()
        rep = svc.report()
    # Half the pool is open -> capacity 4 of 8: all priority-0 work shed.
    assert rep.shed == 4
    assert rep.shed_reasons == {"overload": 4}
    assert rep.shed_priorities == {0: 4}
    assert all(h.shed for h in lows)
    assert all(not h.shed and h.done for h in highs)
    assert rep.pending == 0 and rep.ok


def test_overload_sheds_newest_first_within_class():
    clock = FakeClock()
    with SolverService(policy=_never_policy(), clock=clock, devices=2,
                       resilient=True,
                       resilience_policy=_half_dead_policy()) as svc:
        handles = [svc.submit(KL, KU, *_system(220 + i)) for i in range(4)]
        svc.flush()
    # capacity = 2 of 4; within one priority class the newest go first.
    assert [h.shed for h in handles] == [False, False, True, True]


def test_shed_raises_structured_rejection():
    from repro import RequestShedError
    clock = FakeClock()
    with SolverService(policy=_never_policy(), clock=clock, devices=2,
                       resilient=True,
                       resilience_policy=_half_dead_policy()) as svc:
        doomed = [svc.submit(KL, KU, *_system(230 + i)) for i in range(2)]
        svc.submit(KL, KU, *_system(233), priority=5)
        svc.flush()
        with pytest.raises(RequestShedError) as exc:
            doomed[-1].result()
    assert exc.value.seq == doomed[-1].seq
    assert exc.value.priority == 0
    assert exc.value.reason == "overload"
    assert "overload" in str(exc.value)


def test_healthy_pool_never_sheds():
    clock = FakeClock()
    from repro import CircuitBreaker, ResiliencePolicy
    with SolverService(policy=_never_policy(), clock=clock, devices=2,
                       resilient=True,
                       resilience_policy=ResiliencePolicy(
                           breaker=CircuitBreaker())) as svc:
        handles = [svc.submit(KL, KU, *_system(240 + i)) for i in range(6)]
        svc.flush()
        rep = svc.report()
    assert rep.shed == 0
    assert all(h.done and not h.shed for h in handles)


def test_expired_deadline_sheds_instead_of_dispatching_late():
    from repro import RequestShedError
    clock = FakeClock()
    with SolverService(policy=_never_policy(), clock=clock) as svc:
        doomed = svc.submit(KL, KU, *_system(250), deadline=0.010)
        kept = svc.submit(KL, KU, *_system(251), deadline=10.0)
        clock.advance(0.020)                    # doomed is now past due
        svc.flush()
        rep = svc.report()
        assert kept.done and not kept.shed
        assert doomed.shed and doomed.shed_reason == "deadline"
        with pytest.raises(RequestShedError):
            doomed.result()
    assert rep.shed == 1
    assert rep.shed_reasons == {"deadline": 1}
    assert rep.deadlines_missed == 1


def test_late_completion_counts_deadline_missed():
    clock = FakeClock()
    with SolverService(policy=_never_policy(), clock=clock) as svc:
        h = svc.submit(KL, KU, *_system(252), deadline=0.5)
        clock.advance(1.0)          # past due already at flush time
        # Deadline passed while queued -> shed, missed counted once.
        svc.flush()
        rep = svc.report()
    assert h.shed
    assert rep.deadlines_missed == 1


def test_submit_validates_deadline_and_shed_handle_state():
    with SolverService() as svc:
        with pytest.raises(ArgumentError):
            svc.submit(KL, KU, *_system(260), deadline=0.0)
        with pytest.raises(ArgumentError):
            svc.submit(KL, KU, *_system(260), deadline=-1.0)
        h = svc.submit(KL, KU, *_system(261), priority=3, deadline=5.0)
        assert h.priority == 3
        assert h.deadline_at is not None
        assert not h.shed
        x = h.result()
        assert x is not None


# --- stuck poller ----------------------------------------------------------


def test_close_warns_when_poller_cannot_join():
    import threading
    svc = SolverService()
    gate = threading.Event()
    stuck = threading.Thread(target=gate.wait, daemon=True)
    stuck.start()
    svc._poller = stuck
    svc._poller_join_timeout = 0.05
    try:
        with pytest.warns(RuntimeWarning, match="poller failed to join"):
            svc.close()
        rep = svc.report()
        assert rep.poller_stuck
        assert "poller_stuck" in rep.summary()
        assert ServiceReport.from_dict(rep.to_dict()).poller_stuck
    finally:
        gate.set()
        stuck.join(timeout=5.0)


def test_clean_close_reports_poller_ok():
    with SolverService(auto_poll_interval=0.005) as svc:
        svc.solve(KL, KU, *_system(262))
    assert not svc.report().poller_stuck


# --- report round-trip for the fault-domain fields -------------------------


def test_service_report_round_trips_fault_domain_fields():
    rep = ServiceReport()
    rep.shed = 3
    rep.shed_reasons = {"deadline": 1, "overload": 2}
    rep.shed_priorities = {0: 2, 5: 1}
    rep.deadlines_missed = 1
    rep.device_events = [{"event": "trip", "device": "d0", "fatal": True}]
    rep.failovers = 4
    rep.hedges = 2
    rep.poller_stuck = True
    back = ServiceReport.from_dict(rep.to_dict())
    assert back.to_dict() == rep.to_dict()
    assert back.shed_priorities == {0: 2, 5: 1}       # int keys restored
    assert back.device_events == rep.device_events


def test_service_report_ignores_unknown_keys():
    d = ServiceReport().to_dict()
    d["totally_new_counter"] = 42
    back = ServiceReport.from_dict(d)
    assert back.to_dict() == ServiceReport().to_dict()


# --- verified serving ------------------------------------------------------


def test_verified_service_is_transparent_and_counts_lanes():
    ab, b = _system(96)
    with SolverService(verify=True) as svc:
        x = svc.solve(KL, KU, ab, b)
        rep = svc.report()
    assert x.tobytes() == _direct(ab, b).tobytes()
    # Factor stage (1 lane) + solve stage (1 lane) both ran the gate.
    assert rep.verified_lanes == 2
    assert rep.sdc_detected == 0 and rep.recomputes == 0
    assert 0 < rep.residual_max <= 1e-12


def test_verified_cache_hit_checks_digest_and_recovers():
    """In-place corruption of a cached factorization is caught by the
    entry digest at reuse time; the entry is dropped, the operator
    re-factored, and the solution still matches the cold path."""
    ab, b1 = _system(97)
    b2 = random_rhs(N, 1, seed=2097)
    with SolverService(verify=True) as svc:
        x1 = svc.solve(KL, KU, ab, b1)
        (key,) = svc.cache.keys()
        entry = svc.cache._entries[key]
        corrupted = entry.factors
        corrupted.setflags(write=True)
        corrupted.flat[KL + KU] += 1.0
        corrupted.setflags(write=False)
        assert not entry.verify_integrity()
        x2 = svc.solve(KL, KU, ab, b2)
        rep = svc.report()
    assert x1.tobytes() == _direct(ab, b1).tobytes()
    assert x2.tobytes() == _direct(ab, b2).tobytes()
    assert rep.cache_digest_failures == 1
    assert rep.cache_invalidations >= 1
    assert rep.factorizations == 2              # dropped entry refactored


def test_unverified_service_skips_digest_checks():
    ab, b1 = _system(98)
    b2 = random_rhs(N, 1, seed=2098)
    with SolverService() as svc:
        svc.solve(KL, KU, ab, b1)
        (key,) = svc.cache.keys()
        entry = svc.cache._entries[key]
        corrupted = entry.factors
        corrupted.setflags(write=True)
        corrupted.flat[KL + KU] += 1.0
        corrupted.setflags(write=False)
        svc.solve(KL, KU, ab, b2)
        rep = svc.report()
    assert rep.cache_digest_failures == 0
    assert rep.cache_hits == 1                  # served the poisoned entry


def test_verified_service_survives_sdc_storm():
    from repro.gpusim.faults import FaultPlan, fault_injection
    ab, b = _system(99)
    plan = FaultPlan(seed=7, sdc_lanes=(0,), sdc_after="gbtrs",
                     sdc_operand=1)
    with fault_injection(H100_PCIE, plan):
        with SolverService(verify=True) as svc:
            x = svc.solve(KL, KU, ab, b)
            rep = svc.report()
    assert x.tobytes() == _direct(ab, b).tobytes()
    assert rep.sdc_detected == 1 and rep.sdc_recovered == 1
    assert rep.recomputes >= 1


def test_service_report_round_trips_verify_fields():
    rep = ServiceReport()
    rep.verified_lanes = 9
    rep.sdc_detected = 2
    rep.sdc_recovered = 2
    rep.recomputes = 3
    rep.residual_max = 1.5e-13
    rep.cache_digest_failures = 1
    back = ServiceReport.from_dict(rep.to_dict())
    assert back.to_dict() == rep.to_dict()
    assert "verify lanes=9" in back.summary()
    assert "cache_digest_failures=1" in back.summary()
