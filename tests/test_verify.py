"""Verified solves: residual gates, digests, escalation, bit-identity.

The contracts under test (docs/ROBUSTNESS.md §6):

* ``verify=`` on a healthy batch is a pure observer — zero detections,
  zero recomputes, results bit-identical to an unverified run, across
  seeds and the per-block / ``[vec]`` / ``[vec+soa]`` routes;
* every injected finite flip whose magnitude clears the residual
  tolerance is detected (``BatchReport.sdc_detected``) and recovered
  bit-identically (the ladder's recompute rungs reuse the bit-identical
  designs), with untouched lanes byte-equal to the clean run;
* sub-tolerance flips are accepted by design — the gate's floor is the
  backward-stable rounding envelope, not exact bit equality;
* ``'full'`` mode fingerprints the ``gbtrs`` read-only operands and
  repairs + attributes in-flight corruption of them
  (``BatchReport.digest_mismatches``);
* a lane that fails every rung is classified with ``gbcon``:
  ill-conditioned lanes are flagged expected-inaccurate, well-conditioned
  ones raise :class:`~repro.errors.DataCorruptionError` (or are flagged
  under ``on_fail='flag'``);
* the verification fields round-trip through
  ``BatchReport.to_dict()/from_dict()`` and merge across ``vbatch``
  groups with lanes mapped back to global indices.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DataCorruptionError,
    VerifyPolicy,
    gbsv_batch,
    gbsv_vbatch,
    gbtrf_batch,
    gbtrf_vbatch,
    gbtrs_batch,
    to_interleaved,
)
from repro.band.generate import random_band_batch, random_rhs
from repro.band.ops import gbmv, solve_residual
from repro.core.resilience import BatchReport
from repro.core.verify import (
    as_verify_policy,
    band_mv_batch,
    band_norms_inf,
    factor_norms_inf,
    operand_digest,
    pivot_growth_batch,
    plu_apply_batch,
)
from repro.errors import ArgumentError
from repro.gpusim import H100_PCIE, FaultPlan, disarm_faults, fault_injection
from repro.types import Trans

BATCH, N, KL, KU = 12, 48, 3, 2


@pytest.fixture(autouse=True)
def _clean_injectors():
    yield
    disarm_faults()


def _problem(seed=0, nrhs=1, batch=BATCH, n=N):
    a = random_band_batch(batch, n, KL, KU, seed=seed)
    b = random_rhs(n, nrhs, batch=batch, seed=seed + 1000)
    return a, b


def _bytes_equal(*pairs):
    for got, ref in pairs:
        assert np.asarray(got).tobytes() == np.asarray(ref).tobytes()


# ---------------------------------------------------------------------------
# Policy canonicalisation
# ---------------------------------------------------------------------------


class TestVerifyPolicy:
    def test_defaults(self):
        vp = VerifyPolicy()
        assert vp.mode == "cheap" and vp.on_fail == "raise"
        assert not vp.digests_enabled and not vp.condition_enabled
        assert vp.refine and vp.max_refine == 2

    def test_full_mode_enables_digests_and_condition(self):
        vp = VerifyPolicy(mode="full")
        assert vp.digests_enabled and vp.condition_enabled
        # Explicit switches override the mode default in both directions.
        assert not VerifyPolicy(mode="full",
                                check_digests=False).digests_enabled
        assert VerifyPolicy(check_digests=True).digests_enabled

    def test_tol_and_floor_defaults_scale_with_n(self):
        vp = VerifyPolicy()
        eps = float(np.finfo(np.float64).eps)
        assert vp.tol_for(N, np.float64) == pytest.approx(64 * N * eps)
        assert vp.floor_for(N, np.float64) == pytest.approx(N * eps)
        assert VerifyPolicy(residual_tol=1e-6).tol_for(N, np.float64) == 1e-6
        assert VerifyPolicy(rcond_floor=0.5).floor_for(N, np.float64) == 0.5

    def test_as_verify_policy(self):
        assert as_verify_policy(None) is None
        assert as_verify_policy(False) is None
        assert as_verify_policy(True) == VerifyPolicy()
        assert as_verify_policy("full").mode == "full"
        vp = VerifyPolicy(residual_tol=1e-9)
        assert as_verify_policy(vp) is vp
        with pytest.raises(ArgumentError):
            as_verify_policy("paranoid")
        with pytest.raises(ArgumentError):
            as_verify_policy(3.14)

    def test_validation(self):
        with pytest.raises(ValueError):
            VerifyPolicy(mode="exhaustive")
        with pytest.raises(ValueError):
            VerifyPolicy(on_fail="ignore")
        with pytest.raises(ValueError):
            VerifyPolicy(residual_tol=0.0)
        with pytest.raises(ValueError):
            VerifyPolicy(rcond_floor=-1.0)
        with pytest.raises(ValueError):
            VerifyPolicy(max_refine=0)


# ---------------------------------------------------------------------------
# Gate kernels: vectorized residual machinery vs the scalar references
# ---------------------------------------------------------------------------


class TestGateKernels:
    def test_band_mv_batch_bitwise_vs_gbmv(self):
        a, b = _problem(seed=3, nrhs=2)
        y3 = band_mv_batch(a, b, N, KL, KU)
        for k in range(BATCH):
            ref = np.zeros_like(b[k])
            gbmv(Trans.NO_TRANS, N, KL, KU, 1.0, a[k], b[k], 0.0, ref)
            _bytes_equal((y3[k], ref))

    def test_plu_apply_reconstructs_operator(self):
        a, _ = _problem(seed=4)
        orig = a.copy()
        piv, info = gbtrf_batch(N, N, KL, KU, a)
        assert (info == 0).all()
        rng = np.random.default_rng(5)
        x = rng.standard_normal((BATCH, N, 2))
        got = plu_apply_batch(a, np.stack(piv), x, N, KL, KU)
        ref = band_mv_batch(orig, x, N, KL, KU)
        scale = np.abs(ref).max()
        assert np.abs(got - ref).max() <= 1e-12 * max(scale, 1.0)

    def test_band_norms_inf_matches_dense(self):
        from repro import band_to_dense
        a, _ = _problem(seed=6, batch=4)
        norms = band_norms_inf(a, N, KL, KU)
        for k in range(4):
            dense = band_to_dense(a[k], N, KL, KU)
            assert norms[k] == pytest.approx(
                np.abs(dense).sum(axis=1).max())

    def test_pivot_growth_positive_and_factor_norms(self):
        a, _ = _problem(seed=7, batch=4)
        orig = a.copy()
        piv, info = gbtrf_batch(N, N, KL, KU, a)
        growth = pivot_growth_batch(a, orig, KL, KU)
        assert (growth > 0).all() and np.isfinite(growth).all()
        assert (factor_norms_inf(a, N, KL, KU) > 0).all()

    def test_operand_digest_sensitivity(self):
        a, _ = _problem(seed=8, batch=2)
        d0 = operand_digest(a[0])
        flipped = a[0].copy()
        flipped[KL + KU, 5] += 1e-13
        assert operand_digest(flipped) != d0
        # Same bytes, different dtype/shape never collide.
        assert operand_digest(a[0].view(np.uint64)) != d0
        assert operand_digest(a[0].reshape(-1)) != d0
        assert operand_digest(np.asfortranarray(a[0])) == d0


# ---------------------------------------------------------------------------
# Healthy batches: zero false positives, bit-identical results
# ---------------------------------------------------------------------------


class TestHealthyBatches:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_gbsv_no_false_positives_across_seeds(self, seed):
        a, b = _problem(seed=seed)
        a_ref, b_ref = a.copy(), b.copy()
        piv_ref, info_ref = gbsv_batch(N, KL, KU, 1, a_ref, None, b_ref)
        piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b,
                                       verify=True)
        assert report.sdc_detected == () and report.recomputes == 0
        assert report.verified_lanes == BATCH
        assert report.residual_max <= VerifyPolicy().tol_for(N, np.float64)
        _bytes_equal((a, a_ref), (b, b_ref),
                     (np.stack(piv), np.stack(piv_ref)), (info, info_ref))

    @pytest.mark.parametrize("route", ["block", "vec", "soa"])
    def test_gbtrf_bit_identical_across_routes(self, route):
        a, _ = _problem(seed=9)
        a_ref = a.copy()
        piv_ref, info_ref = gbtrf_batch(N, N, KL, KU, a_ref)
        a_in = to_interleaved(a) if route == "soa" else a.copy()
        vectorize = {"block": False, "vec": True, "soa": True}[route]
        piv, info, report = gbtrf_batch(N, N, KL, KU, a_in,
                                        vectorize=vectorize, verify=True)
        assert report.sdc_detected == () and report.recomputes == 0
        _bytes_equal((np.ascontiguousarray(a_in), a_ref),
                     (np.stack(piv), np.stack(piv_ref)), (info, info_ref))

    def test_gbtrs_healthy(self):
        a, b = _problem(seed=10, nrhs=2)
        piv, info = gbtrf_batch(N, N, KL, KU, a)
        b_ref = b.copy()
        gbtrs_batch("N", N, KL, KU, 2, a, piv, b_ref)
        info_v, report = gbtrs_batch("N", N, KL, KU, 2, a, piv, b,
                                     verify=True)
        assert report.sdc_detected == () and report.recomputes == 0
        assert report.verified_lanes == BATCH
        _bytes_equal((b, b_ref))

    def test_full_mode_stamps_condition_and_growth(self):
        a, b = _problem(seed=11)
        piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b,
                                       verify="full")
        assert report.verify_mode == "full"
        assert report.rcond_min is not None and 0 < report.rcond_min <= 1
        assert report.growth_max > 0
        assert "verify=" in report.summary()

    def test_singular_lanes_skip_the_gate(self):
        a, b = _problem(seed=12, batch=6)
        a[2, :, 7] = 0.0
        piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b,
                                       verify=True)
        assert info[2] != 0
        assert report.verified_lanes == 5
        assert report.sdc_detected == ()


# ---------------------------------------------------------------------------
# SDC storms: injected flips detected and recovered bit-identically
# ---------------------------------------------------------------------------


class TestSdcStorm:
    LANES = (1, 4, 9)

    @pytest.mark.parametrize("route", ["block", "vec", "soa"])
    def test_gbsv_solution_flips_recovered(self, route):
        a, b = _problem(seed=20)
        a_ref, b_ref = a.copy(), b.copy()
        piv_ref, info_ref = gbsv_batch(N, KL, KU, 1, a_ref, None, b_ref)
        assert (info_ref == 0).all()
        a_in = to_interleaved(a) if route == "soa" else a.copy()
        b_in = to_interleaved(b) if route == "soa" else b.copy()
        vectorize = {"block": False, "vec": True, "soa": True}[route]
        plan = FaultPlan(seed=21, sdc_lanes=self.LANES, sdc_after="gbsv",
                         sdc_operand=1)
        with fault_injection(H100_PCIE, plan) as inj:
            piv, info, report = gbsv_batch(N, KL, KU, 1, a_in, None, b_in,
                                           vectorize=vectorize, verify=True)
        assert inj.exhausted
        assert report.sdc_detected == self.LANES
        assert report.sdc_recovered == self.LANES
        assert report.unrecovered == () and report.ill_conditioned == ()
        assert report.recomputes >= len(self.LANES)
        # Recovery is bit-identical for every lane, corrupted or not.
        _bytes_equal((np.ascontiguousarray(a_in), a_ref),
                     (np.ascontiguousarray(b_in), b_ref),
                     (np.stack(piv), np.stack(piv_ref)), (info, info_ref))

    def test_gbtrf_factor_flips_recovered(self):
        a, _ = _problem(seed=22)
        a_ref = a.copy()
        piv_ref, info_ref = gbtrf_batch(N, N, KL, KU, a_ref)
        plan = FaultPlan(seed=23, sdc_lanes=(0, 7), sdc_after="gbtrf")
        with fault_injection(H100_PCIE, plan):
            piv, info, report = gbtrf_batch(N, N, KL, KU, a, verify=True)
        assert report.sdc_detected == (0, 7)
        assert report.sdc_recovered == (0, 7)
        _bytes_equal((a, a_ref), (np.stack(piv), np.stack(piv_ref)),
                     (info, info_ref))

    def test_gbtrs_solution_flips_recovered(self):
        a, b = _problem(seed=24, nrhs=2)
        piv, info = gbtrf_batch(N, N, KL, KU, a)
        b_ref = b.copy()
        gbtrs_batch("N", N, KL, KU, 2, a, piv, b_ref)
        plan = FaultPlan(seed=25, sdc_lanes=(3,), sdc_after="gbtrs",
                         sdc_operand=1)
        with fault_injection(H100_PCIE, plan):
            info_v, report = gbtrs_batch("N", N, KL, KU, 2, a, piv, b,
                                         verify=True)
        assert report.sdc_detected == (3,)
        assert report.sdc_recovered == (3,)
        _bytes_equal((b, b_ref))

    def test_gbtrs_digest_catches_factor_corruption(self):
        """A post-stage flip of the read-only factors leaves the solution
        intact (it was computed first); only the 'full'-mode digest sees
        it — and repairs the caller's factors from the snapshot."""
        a, b = _problem(seed=26)
        piv, info = gbtrf_batch(N, N, KL, KU, a)
        fact_ref = a.copy()
        b_ref = b.copy()
        gbtrs_batch("N", N, KL, KU, 1, fact_ref.copy(), piv, b_ref)
        plan = FaultPlan(seed=27, sdc_lanes=(5,), sdc_after="gbtrs",
                         sdc_operand=0)
        with fault_injection(H100_PCIE, plan):
            info_v, report = gbtrs_batch("N", N, KL, KU, 1, a, piv, b,
                                         verify="full")
        assert report.digest_mismatches == (5,)
        assert 5 in report.sdc_detected
        _bytes_equal((a, fact_ref), (b, b_ref))

    def test_transfer_corruption_before_solve_detected(self):
        """Staged-input corruption (the transfer-SDC mode) flips b before
        the solve consumes it: the solution is consistent with the
        corrupted b but not with the pristine snapshot — exactly what the
        gate checks against."""
        a, b = _problem(seed=28)
        a_ref, b_ref = a.copy(), b.copy()
        piv_ref, info_ref = gbsv_batch(N, KL, KU, 1, a_ref, None, b_ref)
        plan = FaultPlan(seed=29, transfer_sdc_lanes=(2,),
                         transfer_before="gbsv", sdc_operand=1)
        with fault_injection(H100_PCIE, plan):
            piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b,
                                           verify=True)
        assert report.sdc_detected == (2,)
        assert report.sdc_recovered == (2,)
        _bytes_equal((a, a_ref), (b, b_ref),
                     (np.stack(piv), np.stack(piv_ref)))

    def test_sub_tolerance_flips_accepted(self):
        """A flip below the residual tolerance is indistinguishable from
        rounding noise — the gate accepts it without escalation (that is
        the documented floor of the defense)."""
        a, b = _problem(seed=30)
        plan = FaultPlan(seed=31, sdc_lanes=(6,), sdc_after="gbsv",
                         sdc_operand=1, sdc_scale=1e-18)
        with fault_injection(H100_PCIE, plan) as inj:
            piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b,
                                           verify=True)
        assert inj.exhausted          # the flip really landed
        assert report.sdc_detected == ()
        assert report.recomputes == 0

    def test_verify_composes_with_resilient(self):
        """One report carries both fault-tolerance and verification
        accounting when resilient=True and verify=True stack."""
        a, b = _problem(seed=32)
        plan = FaultPlan(seed=33, launch_failure_rate=0.15,
                         max_launch_failures=3, sdc_lanes=(4,),
                         sdc_after="gbsv", sdc_operand=1)
        with fault_injection(H100_PCIE, plan):
            piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b,
                                           resilient=True, verify=True)
        assert (info == 0).all()
        assert report.verify_mode == "cheap"
        assert 4 in report.sdc_recovered
        assert report.retries >= 0 and report.verified_lanes > 0

    def test_detection_scales_down_to_tolerance_boundary(self):
        """Flips one and three orders of magnitude above the tolerance
        are both caught — detection holds all the way down to the floor,
        not just for catastrophic corruption."""
        tol = VerifyPolicy().tol_for(N, np.float64)
        for scale in (1e3 * tol, 10 * tol):
            a, b = _problem(seed=34)
            plan = FaultPlan(seed=35, sdc_lanes=(8,), sdc_after="gbsv",
                             sdc_operand=1, sdc_scale=scale)
            with fault_injection(H100_PCIE, plan) as inj:
                piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b,
                                               verify=True)
            assert inj.exhausted
            assert report.sdc_detected == (8,), f"scale={scale}"
            disarm_faults()


# ---------------------------------------------------------------------------
# Escalation ladder tail: classification, on_fail, refinement accounting
# ---------------------------------------------------------------------------


class TestEscalation:
    def test_unrecoverable_well_conditioned_raises(self):
        """An impossible tolerance makes every rung fail; well-conditioned
        lanes are corruption by classification -> DataCorruptionError."""
        a, b = _problem(seed=40, batch=4)
        vp = VerifyPolicy(residual_tol=1e-300, refine=False)
        with pytest.raises(DataCorruptionError) as exc:
            gbsv_batch(N, KL, KU, 1, a, None, b, verify=vp)
        assert exc.value.operation == "gbsv"
        assert exc.value.lanes == tuple(range(4))
        assert exc.value.device == H100_PCIE.name
        assert exc.value.residual > 0

    def test_on_fail_flag_records_instead_of_raising(self):
        a, b = _problem(seed=41, batch=4)
        vp = VerifyPolicy(residual_tol=1e-300, refine=False,
                          on_fail="flag")
        piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b, verify=vp)
        assert report.unrecovered == tuple(range(4))
        assert report.sdc_detected == tuple(range(4))
        assert report.sdc_recovered == ()

    def test_ill_conditioned_lanes_flagged_not_raised(self):
        """With the rcond floor raised above every lane's estimate, the
        same failures classify as expected-inaccurate."""
        a, b = _problem(seed=42, batch=4)
        vp = VerifyPolicy(residual_tol=1e-300, refine=False,
                          rcond_floor=1.0)
        piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b, verify=vp)
        assert report.ill_conditioned == tuple(range(4))
        assert report.unrecovered == ()

    def test_refinement_rung_stamps_berr_ferr(self):
        a, b = _problem(seed=43, batch=4)
        vp = VerifyPolicy(residual_tol=1e-300, on_fail="flag",
                          rcond_floor=1.0)
        piv, info, report = gbsv_batch(N, KL, KU, 1, a, None, b, verify=vp)
        assert report.refined == tuple(range(4))
        assert report.berr_max > 0
        assert report.ferr_max >= report.berr_max
        assert report.rcond_min is not None

    def test_argument_gates(self):
        a, b = _problem(seed=44, batch=2)
        with pytest.raises(ArgumentError, match="square"):
            gbtrf_batch(N + 1, N, KL, KU, [x[:, :N] for x in a],
                        verify=True)
        piv, info = gbtrf_batch(N, N, KL, KU, a)
        with pytest.raises(ArgumentError, match="trans"):
            gbtrs_batch("T", N, KL, KU, 1, a, piv, b, verify=True)
        with pytest.raises(ArgumentError, match="execution"):
            gbsv_batch(N, KL, KU, 1, a.copy(), None, b.copy(),
                       verify=True, execute=False)
        with pytest.raises(ArgumentError, match="verify"):
            gbsv_batch(N, KL, KU, 1, a.copy(), None, b.copy(),
                       verify="paranoid")


# ---------------------------------------------------------------------------
# Report plumbing: JSON round-trip and vbatch merge
# ---------------------------------------------------------------------------


class TestReportPlumbing:
    def _stormy_report(self):
        a, b = _problem(seed=50)
        plan = FaultPlan(seed=51, sdc_lanes=(2, 5), sdc_after="gbsv",
                         sdc_operand=1)
        with fault_injection(H100_PCIE, plan):
            _, _, report = gbsv_batch(N, KL, KU, 1, a, None, b,
                                      verify="full")
        return report

    def test_json_round_trip_preserves_verify_fields(self):
        import json
        report = self._stormy_report()
        assert report.sdc_detected == (2, 5)
        payload = json.loads(json.dumps(report.to_dict()))
        back = BatchReport.from_dict(payload)
        assert back.verify_mode == "full"
        assert back.sdc_detected == (2, 5)
        assert back.sdc_recovered == (2, 5)
        assert back.verified_lanes == report.verified_lanes
        assert back.recomputes == report.recomputes
        assert back.residual_max == report.residual_max
        assert back.rcond_min == report.rcond_min
        assert back.to_dict() == report.to_dict()

    def test_summary_names_the_verification(self):
        s = self._stormy_report().summary()
        assert "verify=full" in s
        assert "sdc_detected=[2, 5]" in s

    def test_gbsv_vbatch_merges_global_lanes(self):
        ns = [32, 32, 32, 48, 48, 48]
        a = [random_band_batch(1, n, KL, KU, seed=60 + i)[0]
             for i, n in enumerate(ns)]
        b = [random_rhs(n, 1, seed=70 + i) for i, n in enumerate(ns)]
        a_ref = [x.copy() for x in a]
        b_ref = [x.copy() for x in b]
        piv_ref, info_ref = gbsv_vbatch(ns, [KL] * 6, [KU] * 6, [1] * 6,
                                        a_ref, b_ref)
        # Lane 1 is local to the first matching launch: global lane 1.
        plan = FaultPlan(seed=61, sdc_lanes=(1,), sdc_after="gbsv",
                         sdc_operand=1)
        with fault_injection(H100_PCIE, plan):
            piv, info, report = gbsv_vbatch(ns, [KL] * 6, [KU] * 6,
                                            [1] * 6, a, b, verify=True)
        assert report.verified_lanes == 6
        assert report.sdc_detected == (1,)
        assert report.sdc_recovered == (1,)
        for k in range(6):
            _bytes_equal((a[k], a_ref[k]), (b[k], b_ref[k]),
                         (piv[k], piv_ref[k]))

    def test_gbtrf_vbatch_verified(self):
        ns = [24, 24, 40, 40]
        a = [random_band_batch(1, n, 2, 2, seed=80 + i)[0]
             for i, n in enumerate(ns)]
        a_ref = [x.copy() for x in a]
        piv_ref, info_ref = gbtrf_vbatch(ns, ns, [2] * 4, [2] * 4, a_ref)
        piv, info, report = gbtrf_vbatch(ns, ns, [2] * 4, [2] * 4, a,
                                         verify=True)
        assert report.verified_lanes == 4
        assert report.sdc_detected == ()
        for k in range(4):
            _bytes_equal((a[k], a_ref[k]), (piv[k], piv_ref[k]))
