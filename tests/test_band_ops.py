"""Unit tests for band operations (gbmv/gbmm, norms, residuals)."""

import numpy as np
import pytest

from repro.band.convert import dense_to_band
from repro.band.generate import random_band_dense, random_rhs
from repro.band.ops import band_norm_1, band_norm_inf, gbmm, gbmv, solve_residual
from repro.errors import ArgumentError

from conftest import BAND_CONFIGS


def _setup(m, n, kl, ku, seed=0, dtype=np.float64):
    a = random_band_dense(m, n, kl, ku, seed=seed, dtype=dtype)
    ab = dense_to_band(a, kl, ku)
    return a, ab


class TestGbmv:
    @pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
    def test_no_trans_matches_dense(self, n, kl, ku):
        a, ab = _setup(n, n, kl, ku)
        x = random_rhs(n, 1, seed=3)[:, 0]
        y = np.zeros(n)
        gbmv("N", n, kl, ku, 1.0, ab, x, 0.0, y)
        np.testing.assert_allclose(y, a @ x, atol=1e-13)

    @pytest.mark.parametrize("m,n", [(5, 9), (9, 5)])
    def test_rectangular(self, m, n):
        a, ab = _setup(m, n, 2, 3)
        x = np.arange(1.0, n + 1)
        y = np.zeros(m)
        gbmv("N", m, 2, 3, 1.0, ab, x, 0.0, y)
        np.testing.assert_allclose(y, a @ x, atol=1e-13)

    def test_trans(self):
        a, ab = _setup(7, 7, 2, 1)
        x = np.arange(1.0, 8)
        y = np.zeros(7)
        gbmv("T", 7, 2, 1, 1.0, ab, x, 0.0, y)
        np.testing.assert_allclose(y, a.T @ x, atol=1e-13)

    def test_conj_trans_complex(self):
        a, ab = _setup(7, 7, 2, 1, dtype=np.complex128)
        x = random_rhs(7, 1, dtype=np.complex128, seed=5)[:, 0]
        y = np.zeros(7, dtype=np.complex128)
        gbmv("C", 7, 2, 1, 1.0, ab, x, 0.0, y)
        np.testing.assert_allclose(y, a.conj().T @ x, atol=1e-13)

    def test_alpha_beta(self):
        a, ab = _setup(6, 6, 1, 1)
        x = np.ones(6)
        y = np.full(6, 2.0)
        gbmv("N", 6, 1, 1, 3.0, ab, x, 0.5, y)
        np.testing.assert_allclose(y, 3.0 * (a @ x) + 1.0, atol=1e-13)

    def test_multiple_rhs_columns(self):
        a, ab = _setup(6, 6, 1, 2)
        x = random_rhs(6, 4, seed=7)
        y = np.zeros((6, 4))
        gbmv("N", 6, 1, 2, 1.0, ab, x, 0.0, y)
        np.testing.assert_allclose(y, a @ x, atol=1e-13)

    def test_storage_layout(self):
        a = random_band_dense(6, 6, 1, 2, seed=8)
        ab = dense_to_band(a, 1, 2, factor_layout=False)
        y = np.zeros(6)
        gbmv("N", 6, 1, 2, 1.0, ab, np.ones(6), 0.0, y,
             factor_layout=False)
        np.testing.assert_allclose(y, a @ np.ones(6), atol=1e-13)

    def test_wrong_lengths_raise(self):
        _, ab = _setup(6, 6, 1, 1)
        with pytest.raises(ArgumentError):
            gbmv("N", 6, 1, 1, 1.0, ab, np.ones(5), 0.0, np.zeros(6))
        with pytest.raises(ArgumentError):
            gbmv("N", 6, 1, 1, 1.0, ab, np.ones(6), 0.0, np.zeros(5))


class TestGbmm:
    def test_matches_dense(self):
        a, ab = _setup(8, 8, 2, 3)
        x = random_rhs(8, 3, seed=9)
        np.testing.assert_allclose(gbmm(8, 2, 3, ab, x), a @ x, atol=1e-13)


class TestNorms:
    @pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
    def test_inf_norm_matches_dense(self, n, kl, ku):
        a, ab = _setup(n, n, kl, ku)
        assert band_norm_inf(ab, n, kl, ku) == pytest.approx(
            np.abs(a).sum(axis=1).max())

    @pytest.mark.parametrize("n,kl,ku", BAND_CONFIGS)
    def test_one_norm_matches_dense(self, n, kl, ku):
        a, ab = _setup(n, n, kl, ku)
        assert band_norm_1(ab, n, kl, ku) == pytest.approx(
            np.abs(a).sum(axis=0).max())

    def test_zero_matrix(self):
        ab = np.zeros((8, 5))
        assert band_norm_inf(ab, 5, 2, 3) == 0.0
        assert band_norm_1(ab, 5, 2, 3) == 0.0


class TestSolveResidual:
    def test_exact_solution_is_tiny(self):
        a, ab = _setup(10, 10, 2, 3, seed=11)
        a = a + 5 * np.eye(10)
        ab = dense_to_band(a, 2, 3)
        b = random_rhs(10, 2, seed=12)
        x = np.linalg.solve(a, b)
        assert solve_residual(ab, x, b, 2, 3) < 1e-14

    def test_wrong_solution_is_large(self):
        a, ab = _setup(10, 10, 2, 3, seed=13)
        b = random_rhs(10, 1, seed=14)
        assert solve_residual(ab, b + 1.0, b, 2, 3) > 1e-3

    def test_zero_everything(self):
        ab = np.zeros((8, 5))
        assert solve_residual(ab, np.zeros((5, 1)), np.zeros((5, 1)),
                              2, 3) == 0.0
