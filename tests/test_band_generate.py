"""Unit tests for the band-matrix generators."""

import numpy as np
import pytest

from repro.band.convert import band_to_dense, bandwidth_of_dense
from repro.band.generate import (
    diagonally_dominant_band,
    graded_condition_band,
    random_band,
    random_band_batch,
    random_band_dense,
    random_rhs,
)
from repro.errors import ArgumentError


class TestRandomBand:
    def test_shape(self):
        assert random_band(10, 2, 3, seed=0).shape == (8, 10)

    def test_reproducible(self):
        np.testing.assert_array_equal(random_band(10, 2, 3, seed=5),
                                      random_band(10, 2, 3, seed=5))

    def test_different_seeds_differ(self):
        assert not np.array_equal(random_band(10, 2, 3, seed=1),
                                  random_band(10, 2, 3, seed=2))

    def test_rectangular(self):
        ab = random_band(9, 2, 3, m=5, seed=0)
        dense = band_to_dense(ab, 5, 2, 3)
        assert dense.shape == (5, 9)

    def test_dtype_variants(self):
        for dt in (np.float32, np.float64, np.complex64, np.complex128):
            ab = random_band(6, 1, 1, dtype=dt, seed=0)
            assert ab.dtype == dt
            if np.dtype(dt).kind == "c":
                assert np.abs(ab.imag).sum() > 0

    def test_density(self):
        ab = random_band(64, 8, 8, seed=0, density=0.5)
        dense = band_to_dense(ab, 64, 8, 8)
        in_band = sum(min(64, j + 9) - max(0, j - 8) for j in range(64))
        nnz = (dense != 0).sum()
        assert 0.3 * in_band < nnz < 0.75 * in_band
        # The diagonal is always kept.
        assert (np.diag(dense) != 0).all()

    def test_density_validated(self):
        with pytest.raises(ArgumentError):
            random_band_dense(4, 4, 1, 1, density=1.5)


class TestRandomBandBatch:
    def test_shape(self):
        a = random_band_batch(5, 12, 2, 3, seed=0)
        assert a.shape == (5, 8, 12)

    def test_members_differ(self):
        a = random_band_batch(3, 12, 2, 3, seed=0)
        assert not np.array_equal(a[0], a[1])

    def test_reproducible(self):
        np.testing.assert_array_equal(random_band_batch(3, 8, 1, 1, seed=9),
                                      random_band_batch(3, 8, 1, 1, seed=9))


class TestDiagonallyDominant:
    @pytest.mark.parametrize("n,kl,ku", [(8, 2, 3), (20, 4, 4), (5, 0, 2)])
    def test_dominance_holds(self, n, kl, ku):
        ab = diagonally_dominant_band(n, kl, ku, seed=0, dominance=2.0)
        a = band_to_dense(ab, n, kl, ku)
        diag = np.abs(np.diag(a))
        off = np.abs(a).sum(axis=1) - diag
        assert (diag >= 2.0 * off - 1e-12).all()

    def test_no_pivoting_needed(self):
        """Strict dominance implies the natural pivot order."""
        from repro.core.gbtf2 import gbtf2
        ab = diagonally_dominant_band(16, 2, 3, seed=1, dominance=3.0)
        ipiv, info = gbtf2(16, 16, 2, 3, ab)
        assert info == 0
        np.testing.assert_array_equal(ipiv, np.arange(16))

    def test_invalid_dominance(self):
        with pytest.raises(ArgumentError):
            diagonally_dominant_band(5, 1, 1, dominance=0.0)


class TestGradedCondition:
    def test_condition_grows_with_parameter(self):
        conds = []
        for cond in (1e2, 1e6):
            ab = graded_condition_band(24, 2, 3, cond=cond, seed=3)
            a = band_to_dense(ab, 24, 2, 3)
            conds.append(np.linalg.cond(a))
        assert conds[1] > 10 * conds[0]

    def test_invalid_cond(self):
        with pytest.raises(ArgumentError):
            graded_condition_band(5, 1, 1, cond=0.5)


class TestRandomRhs:
    def test_shapes(self):
        assert random_rhs(6, 3, seed=0).shape == (6, 3)
        assert random_rhs(6, 3, batch=4, seed=0).shape == (4, 6, 3)

    def test_complex(self):
        b = random_rhs(6, 2, dtype=np.complex128, seed=0)
        assert np.abs(b.imag).sum() > 0
