"""Single-kernel non-uniform batching vs the grouped strategy."""

import numpy as np
import pytest

from repro.band.generate import random_band
from repro.core import VbatchProblem, gbtrf_vbatch, gbtrf_vbatch_fused
from repro.core.gbtf2 import gbtf2
from repro.errors import ArgumentError
from repro.gpusim import H100_PCIE, MI250X_GCD, Stream


def _mixed(seed=0, configs=None):
    configs = configs or [(12, 1, 1), (30, 2, 3), (20, 10, 7), (12, 1, 1),
                          (50, 3, 3), (7, 0, 2)]
    rng = np.random.default_rng(seed)
    mats = [random_band(n, kl, ku, seed=rng) for n, kl, ku in configs]
    return configs, mats


class TestCorrectness:
    def test_matches_grouped_strategy(self):
        configs, mats1 = _mixed()
        mats2 = [m.copy() for m in mats1]
        ns = [c[0] for c in configs]
        kls = [c[1] for c in configs]
        kus = [c[2] for c in configs]
        p1, i1 = gbtrf_vbatch(ns, ns, kls, kus, mats1)
        p2, i2 = gbtrf_vbatch_fused(ns, ns, kls, kus, mats2)
        for a, b in zip(mats1, mats2):
            np.testing.assert_allclose(a, b, atol=0)
        for a, b in zip(p1, p2):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(i1, i2)

    def test_matches_per_problem_gbtf2(self):
        configs, mats = _mixed(seed=1)
        refs = []
        for (n, kl, ku), m in zip(configs, mats):
            ab = m.copy()
            piv, info = gbtf2(n, n, kl, ku, ab)
            refs.append((ab, piv, info))
        pivots, info = gbtrf_vbatch_fused(
            [c[0] for c in configs], [c[0] for c in configs],
            [c[1] for c in configs], [c[2] for c in configs], mats)
        for k, (ab, piv, inf) in enumerate(refs):
            np.testing.assert_allclose(mats[k], ab, atol=0)
            np.testing.assert_array_equal(pivots[k], piv)
            assert info[k] == inf

    def test_per_problem_singularity(self):
        n = 10
        mats = [random_band(n, 1, 1, seed=2), np.zeros((4, n))]
        pivots, info = gbtrf_vbatch_fused([n, n], [n, n], [1, 1], [1, 1],
                                          mats)
        assert info[0] == 0 and info[1] == 1

    def test_length_mismatch(self):
        configs, mats = _mixed()
        with pytest.raises(ArgumentError):
            gbtrf_vbatch_fused([8], [8, 8], [1, 1], [1, 1], mats[:2])

    def test_shape_validation(self):
        with pytest.raises(ArgumentError):
            gbtrf_vbatch_fused([8], [8], [2], [3], [np.zeros((4, 8))])

    def test_empty_batch(self):
        pivots, info = gbtrf_vbatch_fused([], [], [], [], [])
        assert pivots == [] and info.shape == (0,)


class TestExecutionShape:
    def test_single_launch(self):
        configs, mats = _mixed(seed=3)
        stream = Stream(H100_PCIE)
        gbtrf_vbatch_fused([c[0] for c in configs],
                           [c[0] for c in configs],
                           [c[1] for c in configs],
                           [c[2] for c in configs], mats, stream=stream)
        assert stream.launch_count() == 1
        assert stream.records[0].kernel_name == "gbtrf_vbatch"

    def test_smem_reserved_for_largest_window(self):
        from repro.core.gbtrf_vbatch_kernel import VbatchGbtrfKernel
        probs = [VbatchProblem(8, 8, 1, 1, nb=8, threads=16),
                 VbatchProblem(40, 40, 10, 7, nb=16, threads=90)]
        mats = [np.zeros((4, 8)), np.zeros((28, 40))]
        piv = [np.zeros(8, dtype=np.int64), np.zeros(40, dtype=np.int64)]
        k = VbatchGbtrfKernel(probs, mats, piv, np.zeros(2, dtype=np.int64))
        assert k.smem_bytes() == probs[1].window_bytes
        assert k.threads() == 90

    def test_fused_beats_grouped_for_many_distinct_shapes(self):
        """Launch-bound regime: every problem has a unique configuration."""
        rng = np.random.default_rng(4)
        configs = [(int(n), int(kl), int(ku))
                   for n, kl, ku in zip(rng.integers(8, 40, 24),
                                        rng.integers(0, 4, 24),
                                        rng.integers(0, 4, 24))]
        # Deduplicate sizes enough to keep many distinct groups.
        configs, mats = _mixed(seed=5, configs=configs)
        ns = [c[0] for c in configs]
        kls = [c[1] for c in configs]
        kus = [c[2] for c in configs]
        s1, s2 = Stream(H100_PCIE), Stream(H100_PCIE)
        gbtrf_vbatch(ns, ns, kls, kus, [m.copy() for m in mats],
                     stream=s1, execute=False)
        gbtrf_vbatch_fused(ns, ns, kls, kus, [m.copy() for m in mats],
                           stream=s2, execute=False)
        assert s1.launch_count() > s2.launch_count()
        assert s2.elapsed < s1.elapsed

    def test_devices_agree(self):
        configs, mats1 = _mixed(seed=6)
        mats2 = [m.copy() for m in mats1]
        args = ([c[0] for c in configs], [c[0] for c in configs],
                [c[1] for c in configs], [c[2] for c in configs])
        gbtrf_vbatch_fused(*args, mats1, device=H100_PCIE)
        gbtrf_vbatch_fused(*args, mats2, device=MI250X_GCD)
        for a, b in zip(mats1, mats2):
            np.testing.assert_allclose(a, b, atol=0)
