"""Unit tests for the occupancy calculator — the paper's core mechanism."""

import pytest

from repro.band.layout import BandLayout
from repro.errors import SharedMemoryError
from repro.gpusim import H100_PCIE, MI250X_GCD, occupancy, waves_for_grid


class TestOccupancy:
    def test_smem_limited(self):
        occ = occupancy(MI250X_GCD, 32, 25 * 1024)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "smem"

    def test_block_limited_when_tiny(self):
        occ = occupancy(H100_PCIE, 32, 128)
        assert occ.blocks_per_sm == H100_PCIE.max_blocks_per_sm
        assert occ.limited_by == "blocks"

    def test_thread_limited(self):
        occ = occupancy(H100_PCIE, 1024, 128)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "threads"

    def test_over_limit_raises(self):
        with pytest.raises(SharedMemoryError):
            occupancy(MI250X_GCD, 32, 70 * 1024)

    def test_threads_over_limit_raises(self):
        with pytest.raises(SharedMemoryError):
            occupancy(H100_PCIE, 2048, 128)

    def test_monotone_in_smem(self):
        prev = None
        for kb in range(2, 56, 2):
            occ = occupancy(MI250X_GCD, 32, kb * 1024)
            if prev is not None:
                assert occ.blocks_per_sm <= prev
            prev = occ.blocks_per_sm

    def test_resident_blocks(self):
        occ = occupancy(H100_PCIE, 32, 100 * 1024)
        assert occ.resident_blocks(H100_PCIE) == \
            occ.blocks_per_sm * H100_PCIE.num_sms


class TestPaperOccupancyClaims:
    def test_mi250x_fused_drop_416_to_448(self):
        """Section 5.2: occupancy 2 -> 1 between N=416 and N=448, (2,3)."""
        e416 = BandLayout(416, 416, 2, 3).fused_elems() * 8
        e448 = BandLayout(448, 448, 2, 3).fused_elems() * 8
        assert occupancy(MI250X_GCD, 32, e416).blocks_per_sm == 2
        assert occupancy(MI250X_GCD, 32, e448).blocks_per_sm == 1

    def test_h100_sustains_larger_fused_matrices(self):
        """The H100's ~3.5x larger shared memory keeps more resident."""
        elems = BandLayout(448, 448, 2, 3).fused_elems() * 8
        h = occupancy(H100_PCIE, 32, elems).blocks_per_sm
        m = occupancy(MI250X_GCD, 32, elems).blocks_per_sm
        assert h >= 3 * m

    def test_window_occupancy_size_independent(self):
        lay_small = BandLayout(64, 64, 2, 3)
        lay_large = BandLayout(2048, 2048, 2, 3)
        o1 = occupancy(H100_PCIE, 32, lay_small.window_elems(32) * 8)
        o2 = occupancy(H100_PCIE, 32, lay_large.window_elems(32) * 8)
        assert o1.blocks_per_sm == o2.blocks_per_sm


class TestWaves:
    def test_batch_1000_example(self):
        occ = occupancy(MI250X_GCD, 32, 25 * 1024)   # 2 blocks/SM, 110 CUs
        assert waves_for_grid(MI250X_GCD, occ, 1000) == 5   # ceil(1000/220)

    def test_zero_grid(self):
        occ = occupancy(H100_PCIE, 32, 1024)
        assert waves_for_grid(H100_PCIE, occ, 0) == 0

    def test_single_block(self):
        occ = occupancy(H100_PCIE, 32, 1024)
        assert waves_for_grid(H100_PCIE, occ, 1) == 1

    def test_waves_monotone_in_grid(self):
        occ = occupancy(H100_PCIE, 128, 64 * 1024)
        prev = 0
        for grid in (1, 100, 500, 1000, 5000):
            w = waves_for_grid(H100_PCIE, occ, grid)
            assert w >= prev
            prev = w
