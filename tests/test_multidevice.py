"""Multi-device batch splitting and scaling."""

import numpy as np
import pytest

from repro.band.generate import random_band_batch
from repro.bench.harness import shape_only_batch, time_gbtrf
from repro.core.gbtf2 import gbtf2
from repro.core.gbtrf import gbtrf_batch
from repro.errors import ArgumentError
from repro.gpusim import (
    H100_PCIE,
    MI250X_GCD,
    Stream,
    memory_pool,
    replicate_device,
    run_multi_device,
    split_batch,
    throughput_weights,
)


class TestSplit:
    def test_even_split(self):
        parts = split_batch(100, [MI250X_GCD, MI250X_GCD])
        assert [p.count for p in parts] == [50, 50]
        assert parts[0].stop == parts[1].start

    def test_uneven_remainder_goes_last(self):
        parts = split_batch(101, [MI250X_GCD, MI250X_GCD])
        assert sum(p.count for p in parts) == 101

    def test_weighted(self):
        parts = split_batch(900, [H100_PCIE, MI250X_GCD],
                            weights=[2.0, 1.0])
        assert parts[0].count == 600
        assert parts[1].count == 300

    def test_empty_partitions_dropped(self):
        parts = split_batch(1, [MI250X_GCD, MI250X_GCD, MI250X_GCD])
        assert sum(p.count for p in parts) == 1
        assert all(p.count > 0 for p in parts)

    def test_validation(self):
        with pytest.raises(ArgumentError):
            split_batch(-1, [H100_PCIE])
        with pytest.raises(ArgumentError):
            split_batch(10, [])
        with pytest.raises(ArgumentError):
            split_batch(10, [H100_PCIE], weights=[1.0, 2.0])
        with pytest.raises(ArgumentError):
            split_batch(10, [H100_PCIE], weights=[0.0])


class TestReplicate:
    def test_names_and_spec(self):
        devs = replicate_device(MI250X_GCD, 2)
        assert [d.name for d in devs] == ["mi250x-gcd:0", "mi250x-gcd:1"]
        assert all(d.num_sms == MI250X_GCD.num_sms for d in devs)
        assert all(d.dram_bandwidth == MI250X_GCD.dram_bandwidth
                   for d in devs)

    def test_replicas_own_independent_pools(self):
        a, b = replicate_device(H100_PCIE, 2)
        pa, pb = memory_pool(a), memory_pool(b)
        assert pa is not pb
        pa.alloc(1024, label="x")
        assert pb.in_use == 0
        pa.free(1024, label="x")

    def test_count_validated(self):
        with pytest.raises(ArgumentError):
            replicate_device(H100_PCIE, 0)


class TestThroughputWeights:
    # One representative stage: unit block cost, one warp, no smem.
    from repro.gpusim.costmodel import BlockCost
    STAGE = (BlockCost(flops=2000, smem_traffic=1024, dram_traffic=4096,
                       syncs=4, threads=64), 64, 8192)

    def test_identical_devices_equal_weights(self):
        w = throughput_weights([H100_PCIE, H100_PCIE], [self.STAGE],
                               grid=1000)
        assert w[0] == pytest.approx(w[1])

    def test_heterogeneous_pair_favours_faster_device(self):
        w = throughput_weights([H100_PCIE, MI250X_GCD], [self.STAGE],
                               grid=8000)
        assert w[0] > w[1]
        parts = split_batch(8000, [H100_PCIE, MI250X_GCD], weights=w)
        assert parts[0].count > parts[1].count

    def test_callable_stages_per_device(self):
        seen = []

        def stages(dev):
            seen.append(dev.name)
            return [self.STAGE]

        w = throughput_weights([H100_PCIE, MI250X_GCD], stages, grid=100)
        assert seen == ["h100-pcie", "mi250x-gcd"]
        assert len(w) == 2 and all(x > 0 for x in w)

    def test_empty_stages_fall_back_to_bandwidth_proxy(self):
        w = throughput_weights([H100_PCIE, MI250X_GCD], [], grid=100)
        assert w[0] / w[1] == pytest.approx(
            H100_PCIE.dram_bandwidth / MI250X_GCD.dram_bandwidth)
        # The proxy is orders of magnitude below any launchable weight, so
        # a device that cannot launch only takes lanes as a last resort.
        launchable = throughput_weights([H100_PCIE], [self.STAGE],
                                        grid=100)[0]
        assert w[0] < launchable * 1e-3

    def test_smem_rejection_falls_back(self):
        # A stage that fits the H100's 227 KiB but not the GCD's 64 KiB.
        big = (self.STAGE[0], 64, 128 * 1024)
        w = throughput_weights([H100_PCIE, MI250X_GCD], [big], grid=100)
        assert w[0] > w[1]
        parts = split_batch(100, [H100_PCIE, MI250X_GCD], weights=w)
        assert parts[0].count == 100        # proxy weight rounds to zero

    def test_grid_validated(self):
        with pytest.raises(ArgumentError):
            throughput_weights([H100_PCIE], [], grid=0)


class TestRun:
    def _body(self, a, n, kl, ku):
        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, list(a[start:stop]),
                        batch=stop - start, device=device, stream=stream)
        return body

    def test_functional_correctness(self):
        n, kl, ku, batch = 64, 2, 3, 12
        a = random_band_batch(batch, n, kl, ku, seed=0)
        truth = a.copy()
        for k in range(batch):
            gbtf2(n, n, kl, ku, truth[k])
        run = run_multi_device(self._body(a, n, kl, ku), batch,
                               [MI250X_GCD, MI250X_GCD])
        np.testing.assert_allclose(a, truth, atol=0)
        assert len(run.streams) == 2
        assert run.makespan == max(s.elapsed for s in run.streams)

    def test_small_batch_gains_nothing(self):
        """Below one wave of blocks, a second device cannot help."""
        n, kl, ku, batch = 128, 2, 3, 50
        mats = shape_only_batch(n, kl, ku, batch)

        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, mats[start:stop], batch=stop - start,
                        device=device, stream=stream, execute=False)

        run = run_multi_device(body, batch, [MI250X_GCD, MI250X_GCD])
        single = time_gbtrf(MI250X_GCD, n, kl, ku, batch=batch)
        assert run.makespan == pytest.approx(single, rel=0.01)

    def test_large_batch_scales(self):
        """Beyond several waves, two GCDs approach 2x."""
        n, kl, ku, batch = 512, 10, 7, 8000
        mats = shape_only_batch(n, kl, ku, batch)

        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, mats[start:stop], batch=stop - start,
                        device=device, stream=stream, execute=False)

        run = run_multi_device(body, batch, [MI250X_GCD, MI250X_GCD])
        single = time_gbtrf(MI250X_GCD, n, kl, ku, batch=batch)
        speedup = single / run.makespan
        assert 1.5 < speedup <= 2.05
        assert run.efficiency(single) > 0.75

    def test_heterogeneous_weighting_beats_even_split(self):
        """Weighting by throughput balances an H100 + MI250x pair."""
        n, kl, ku, batch = 512, 10, 7, 8000
        mats = shape_only_batch(n, kl, ku, batch)

        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, mats[start:stop], batch=stop - start,
                        device=device, stream=stream, execute=False)

        devices = [H100_PCIE, MI250X_GCD]
        even = run_multi_device(body, batch, devices)
        t_h = time_gbtrf(H100_PCIE, n, kl, ku, batch=batch)
        t_m = time_gbtrf(MI250X_GCD, n, kl, ku, batch=batch)
        weighted = run_multi_device(body, batch, devices,
                                    weights=[1.0 / t_h, 1.0 / t_m])
        assert weighted.makespan < even.makespan
