"""Multi-device batch splitting and scaling."""

import numpy as np
import pytest

from repro.band.generate import random_band_batch
from repro.bench.harness import shape_only_batch, time_gbtrf
from repro.core.gbtf2 import gbtf2
from repro.core.gbtrf import gbtrf_batch
from repro.errors import ArgumentError
from repro.gpusim import (
    H100_PCIE,
    MI250X_GCD,
    Stream,
    run_multi_device,
    split_batch,
)


class TestSplit:
    def test_even_split(self):
        parts = split_batch(100, [MI250X_GCD, MI250X_GCD])
        assert [p.count for p in parts] == [50, 50]
        assert parts[0].stop == parts[1].start

    def test_uneven_remainder_goes_last(self):
        parts = split_batch(101, [MI250X_GCD, MI250X_GCD])
        assert sum(p.count for p in parts) == 101

    def test_weighted(self):
        parts = split_batch(900, [H100_PCIE, MI250X_GCD],
                            weights=[2.0, 1.0])
        assert parts[0].count == 600
        assert parts[1].count == 300

    def test_empty_partitions_dropped(self):
        parts = split_batch(1, [MI250X_GCD, MI250X_GCD, MI250X_GCD])
        assert sum(p.count for p in parts) == 1
        assert all(p.count > 0 for p in parts)

    def test_validation(self):
        with pytest.raises(ArgumentError):
            split_batch(-1, [H100_PCIE])
        with pytest.raises(ArgumentError):
            split_batch(10, [])
        with pytest.raises(ArgumentError):
            split_batch(10, [H100_PCIE], weights=[1.0, 2.0])
        with pytest.raises(ArgumentError):
            split_batch(10, [H100_PCIE], weights=[0.0])


class TestRun:
    def _body(self, a, n, kl, ku):
        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, list(a[start:stop]),
                        batch=stop - start, device=device, stream=stream)
        return body

    def test_functional_correctness(self):
        n, kl, ku, batch = 64, 2, 3, 12
        a = random_band_batch(batch, n, kl, ku, seed=0)
        truth = a.copy()
        for k in range(batch):
            gbtf2(n, n, kl, ku, truth[k])
        run = run_multi_device(self._body(a, n, kl, ku), batch,
                               [MI250X_GCD, MI250X_GCD])
        np.testing.assert_allclose(a, truth, atol=0)
        assert len(run.streams) == 2
        assert run.makespan == max(s.elapsed for s in run.streams)

    def test_small_batch_gains_nothing(self):
        """Below one wave of blocks, a second device cannot help."""
        n, kl, ku, batch = 128, 2, 3, 50
        mats = shape_only_batch(n, kl, ku, batch)

        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, mats[start:stop], batch=stop - start,
                        device=device, stream=stream, execute=False)

        run = run_multi_device(body, batch, [MI250X_GCD, MI250X_GCD])
        single = time_gbtrf(MI250X_GCD, n, kl, ku, batch=batch)
        assert run.makespan == pytest.approx(single, rel=0.01)

    def test_large_batch_scales(self):
        """Beyond several waves, two GCDs approach 2x."""
        n, kl, ku, batch = 512, 10, 7, 8000
        mats = shape_only_batch(n, kl, ku, batch)

        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, mats[start:stop], batch=stop - start,
                        device=device, stream=stream, execute=False)

        run = run_multi_device(body, batch, [MI250X_GCD, MI250X_GCD])
        single = time_gbtrf(MI250X_GCD, n, kl, ku, batch=batch)
        speedup = single / run.makespan
        assert 1.5 < speedup <= 2.05
        assert run.efficiency(single) > 0.75

    def test_heterogeneous_weighting_beats_even_split(self):
        """Weighting by throughput balances an H100 + MI250x pair."""
        n, kl, ku, batch = 512, 10, 7, 8000
        mats = shape_only_batch(n, kl, ku, batch)

        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, mats[start:stop], batch=stop - start,
                        device=device, stream=stream, execute=False)

        devices = [H100_PCIE, MI250X_GCD]
        even = run_multi_device(body, batch, devices)
        t_h = time_gbtrf(H100_PCIE, n, kl, ku, batch=batch)
        t_m = time_gbtrf(MI250X_GCD, n, kl, ku, batch=batch)
        weighted = run_multi_device(body, batch, devices,
                                    weights=[1.0 / t_h, 1.0 / t_m])
        assert weighted.makespan < even.makespan
