"""Multi-device batch splitting and scaling."""

import numpy as np
import pytest

from repro.band.generate import random_band_batch
from repro.bench.harness import shape_only_batch, time_gbtrf
from repro.core.gbtf2 import gbtf2
from repro.core.gbtrf import gbtrf_batch
from repro.errors import ArgumentError
from repro.gpusim import (
    H100_PCIE,
    MI250X_GCD,
    Stream,
    memory_pool,
    replicate_device,
    run_multi_device,
    split_batch,
    throughput_weights,
)


class TestSplit:
    def test_even_split(self):
        parts = split_batch(100, [MI250X_GCD, MI250X_GCD])
        assert [p.count for p in parts] == [50, 50]
        assert parts[0].stop == parts[1].start

    def test_uneven_remainder_goes_last(self):
        parts = split_batch(101, [MI250X_GCD, MI250X_GCD])
        assert sum(p.count for p in parts) == 101

    def test_weighted(self):
        parts = split_batch(900, [H100_PCIE, MI250X_GCD],
                            weights=[2.0, 1.0])
        assert parts[0].count == 600
        assert parts[1].count == 300

    def test_empty_partitions_dropped(self):
        parts = split_batch(1, [MI250X_GCD, MI250X_GCD, MI250X_GCD])
        assert sum(p.count for p in parts) == 1
        assert all(p.count > 0 for p in parts)

    def test_validation(self):
        with pytest.raises(ArgumentError):
            split_batch(-1, [H100_PCIE])
        with pytest.raises(ArgumentError):
            split_batch(10, [])
        with pytest.raises(ArgumentError):
            split_batch(10, [H100_PCIE], weights=[1.0, 2.0])
        with pytest.raises(ArgumentError):
            split_batch(10, [H100_PCIE], weights=[0.0])


class TestReplicate:
    def test_names_and_spec(self):
        devs = replicate_device(MI250X_GCD, 2)
        assert [d.name for d in devs] == ["mi250x-gcd:0", "mi250x-gcd:1"]
        assert all(d.num_sms == MI250X_GCD.num_sms for d in devs)
        assert all(d.dram_bandwidth == MI250X_GCD.dram_bandwidth
                   for d in devs)

    def test_replicas_own_independent_pools(self):
        a, b = replicate_device(H100_PCIE, 2)
        pa, pb = memory_pool(a), memory_pool(b)
        assert pa is not pb
        pa.alloc(1024, label="x")
        assert pb.in_use == 0
        pa.free(1024, label="x")

    def test_count_validated(self):
        with pytest.raises(ArgumentError):
            replicate_device(H100_PCIE, 0)


class TestThroughputWeights:
    # One representative stage: unit block cost, one warp, no smem.
    from repro.gpusim.costmodel import BlockCost
    STAGE = (BlockCost(flops=2000, smem_traffic=1024, dram_traffic=4096,
                       syncs=4, threads=64), 64, 8192)

    def test_identical_devices_equal_weights(self):
        w = throughput_weights([H100_PCIE, H100_PCIE], [self.STAGE],
                               grid=1000)
        assert w[0] == pytest.approx(w[1])

    def test_heterogeneous_pair_favours_faster_device(self):
        w = throughput_weights([H100_PCIE, MI250X_GCD], [self.STAGE],
                               grid=8000)
        assert w[0] > w[1]
        parts = split_batch(8000, [H100_PCIE, MI250X_GCD], weights=w)
        assert parts[0].count > parts[1].count

    def test_callable_stages_per_device(self):
        seen = []

        def stages(dev):
            seen.append(dev.name)
            return [self.STAGE]

        w = throughput_weights([H100_PCIE, MI250X_GCD], stages, grid=100)
        assert seen == ["h100-pcie", "mi250x-gcd"]
        assert len(w) == 2 and all(x > 0 for x in w)

    def test_empty_stages_fall_back_to_bandwidth_proxy(self):
        w = throughput_weights([H100_PCIE, MI250X_GCD], [], grid=100)
        assert w[0] / w[1] == pytest.approx(
            H100_PCIE.dram_bandwidth / MI250X_GCD.dram_bandwidth)
        # The proxy is orders of magnitude below any launchable weight, so
        # a device that cannot launch only takes lanes as a last resort.
        launchable = throughput_weights([H100_PCIE], [self.STAGE],
                                        grid=100)[0]
        assert w[0] < launchable * 1e-3

    def test_smem_rejection_falls_back(self):
        # A stage that fits the H100's 227 KiB but not the GCD's 64 KiB.
        big = (self.STAGE[0], 64, 128 * 1024)
        w = throughput_weights([H100_PCIE, MI250X_GCD], [big], grid=100)
        assert w[0] > w[1]
        parts = split_batch(100, [H100_PCIE, MI250X_GCD], weights=w)
        assert parts[0].count == 100        # proxy weight rounds to zero

    def test_grid_validated(self):
        with pytest.raises(ArgumentError):
            throughput_weights([H100_PCIE], [], grid=0)


class TestRun:
    def _body(self, a, n, kl, ku):
        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, list(a[start:stop]),
                        batch=stop - start, device=device, stream=stream)
        return body

    def test_functional_correctness(self):
        n, kl, ku, batch = 64, 2, 3, 12
        a = random_band_batch(batch, n, kl, ku, seed=0)
        truth = a.copy()
        for k in range(batch):
            gbtf2(n, n, kl, ku, truth[k])
        run = run_multi_device(self._body(a, n, kl, ku), batch,
                               [MI250X_GCD, MI250X_GCD])
        np.testing.assert_allclose(a, truth, atol=0)
        assert len(run.streams) == 2
        assert run.makespan == max(s.elapsed for s in run.streams)

    def test_small_batch_gains_nothing(self):
        """Below one wave of blocks, a second device cannot help."""
        n, kl, ku, batch = 128, 2, 3, 50
        mats = shape_only_batch(n, kl, ku, batch)

        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, mats[start:stop], batch=stop - start,
                        device=device, stream=stream, execute=False)

        run = run_multi_device(body, batch, [MI250X_GCD, MI250X_GCD])
        single = time_gbtrf(MI250X_GCD, n, kl, ku, batch=batch)
        assert run.makespan == pytest.approx(single, rel=0.01)

    def test_large_batch_scales(self):
        """Beyond several waves, two GCDs approach 2x."""
        n, kl, ku, batch = 512, 10, 7, 8000
        mats = shape_only_batch(n, kl, ku, batch)

        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, mats[start:stop], batch=stop - start,
                        device=device, stream=stream, execute=False)

        run = run_multi_device(body, batch, [MI250X_GCD, MI250X_GCD])
        single = time_gbtrf(MI250X_GCD, n, kl, ku, batch=batch)
        speedup = single / run.makespan
        assert 1.5 < speedup <= 2.05
        assert run.efficiency(single) > 0.75

    def test_heterogeneous_weighting_beats_even_split(self):
        """Weighting by throughput balances an H100 + MI250x pair."""
        n, kl, ku, batch = 512, 10, 7, 8000
        mats = shape_only_batch(n, kl, ku, batch)

        def body(device, stream, start, stop):
            gbtrf_batch(n, n, kl, ku, mats[start:stop], batch=stop - start,
                        device=device, stream=stream, execute=False)

        devices = [H100_PCIE, MI250X_GCD]
        even = run_multi_device(body, batch, devices)
        t_h = time_gbtrf(H100_PCIE, n, kl, ku, batch=batch)
        t_m = time_gbtrf(MI250X_GCD, n, kl, ku, batch=batch)
        weighted = run_multi_device(body, batch, devices,
                                    weights=[1.0 / t_h, 1.0 / t_m])
        assert weighted.makespan < even.makespan


# ---------------------------------------------------------------------------
# Device health tracking
# ---------------------------------------------------------------------------

class TestDeviceHealth:
    """Rolling per-device health windows behind the circuit breaker."""

    def test_registry_keyed_by_name(self):
        from repro.gpusim import device_health
        by_spec = device_health(H100_PCIE)
        by_name = device_health("h100-pcie")
        assert by_spec is by_name
        assert device_health(MI250X_GCD) is not by_spec

    def test_replicated_shards_get_separate_trackers(self):
        from repro.gpusim import device_health
        d0, d1 = replicate_device(H100_PCIE, 2)
        device_health(d0).record_failure("device-lost")
        assert device_health(d1).error_rate == 0.0
        assert device_health(d0).error_rate == 1.0

    def test_error_rate_and_mean_latency(self):
        from repro.gpusim import DeviceHealth
        h = DeviceHealth("dev", window=8)
        assert h.error_rate == 0.0 and h.mean_latency == 0.0
        for lat in (1.0, 2.0, 3.0):
            h.record_success(lat)
        h.record_failure("hang")
        assert h.error_rate == pytest.approx(0.25)
        assert h.mean_latency == pytest.approx(2.0)

    def test_window_bounds_error_rate(self):
        from repro.gpusim import DeviceHealth
        h = DeviceHealth("dev", window=4)
        for _ in range(4):
            h.record_failure("device-lost")
        assert h.error_rate == 1.0
        for _ in range(4):
            h.record_success(0.5)
        # window holds only the 4 most recent outcomes (all successes)
        assert h.error_rate == 0.0
        # cumulative totals survive the window
        assert h.failures == 4 and h.successes == 4
        assert h.failure_kinds == {"device-lost": 4}

    def test_snapshot_json_safe_and_reset(self):
        import json
        from repro.gpusim import DeviceHealth
        h = DeviceHealth("dev")
        h.record_success(0.25)
        h.record_failure("hang")
        snap = h.snapshot()
        assert json.loads(json.dumps(snap)) == snap
        assert snap["device"] == "dev"
        assert snap["failure_kinds"] == {"hang": 1}
        h.reset()
        assert h.error_rate == 0.0 and h.failures == 0
        assert h.failure_kinds == {}

    def test_reset_device_health_scoped_and_global(self):
        from repro.gpusim import device_health, reset_device_health
        device_health("a").record_failure()
        device_health("b").record_failure()
        reset_device_health("a")
        assert device_health("a").failures == 0
        assert device_health("b").failures == 1
        reset_device_health()
        assert device_health("b").failures == 0

    def test_window_validation(self):
        from repro.errors import DeviceError
        from repro.gpusim import DeviceHealth
        with pytest.raises(DeviceError):
            DeviceHealth("dev", window=0)


# ---------------------------------------------------------------------------
# Circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    """closed -> open -> half-open -> recovered/dead state machine."""

    def _breaker(self, **kw):
        from repro.gpusim import CircuitBreaker
        kw.setdefault("failure_threshold", 2)
        kw.setdefault("probe_after", 1)
        kw.setdefault("max_probes", 2)
        return CircuitBreaker(**kw)

    def test_closed_by_default(self):
        br = self._breaker()
        assert br.state("d0") == br.CLOSED
        assert br.healthy("d0")
        assert br.poll("d0") == "full"

    def test_consecutive_failures_trip(self):
        br = self._breaker(failure_threshold=3)
        br.record_failure("d0")
        br.record_failure("d0")
        assert br.state("d0") == br.CLOSED
        br.record_failure("d0")
        assert br.state("d0") == br.OPEN
        assert [e["event"] for e in br.events] == ["trip"]

    def test_success_resets_consecutive_count(self):
        br = self._breaker(failure_threshold=2)
        br.record_failure("d0")
        br.record_success("d0")
        br.record_failure("d0")
        assert br.state("d0") == br.CLOSED

    def test_fatal_failure_trips_immediately(self):
        br = self._breaker(failure_threshold=99)
        br.record_failure("d0", kind="device-lost", fatal=True)
        assert br.state("d0") == br.OPEN
        assert br.events[0]["fatal"] is True

    def test_error_rate_threshold_trips(self):
        from repro.gpusim import device_health
        br = self._breaker(failure_threshold=99, error_rate_threshold=0.5)
        device_health("d0").record_failure("hang")
        br.record_failure("d0", kind="hang")
        assert br.state("d0") == br.OPEN

    def test_open_denies_then_probes(self):
        br = self._breaker(probe_after=2)
        br.record_failure("d0", fatal=True)
        assert br.poll("d0") is None          # first denied poll
        assert br.poll("d0") == "probe"       # second: half-open probe
        assert br.state("d0") == br.HALF_OPEN
        assert br.poll("d0") == "probe"       # half-open keeps probing

    def test_probe_success_recovers(self):
        br = self._breaker()
        br.record_failure("d0", fatal=True)
        assert br.poll("d0") == "probe"
        br.record_success("d0")
        assert br.state("d0") == br.CLOSED
        assert [e["event"] for e in br.events] == \
            ["trip", "probe", "recover"]

    def test_probe_failure_reopens_then_dead(self):
        br = self._breaker(max_probes=2)
        br.record_failure("d0", fatal=True)
        assert br.poll("d0") == "probe"
        br.record_failure("d0", kind="device-lost")
        assert br.state("d0") == br.OPEN      # reopened after failed probe
        assert br.poll("d0") == "probe"
        br.record_failure("d0", kind="device-lost")
        assert br.state("d0") == br.DEAD      # max_probes exhausted
        assert br.poll("d0") is None          # dead devices never probe
        br.record_failure("d0")               # and further reports no-op
        assert br.state("d0") == br.DEAD
        assert [e["event"] for e in br.events] == \
            ["trip", "probe", "reopen", "probe", "dead"]

    def test_healthy_fraction(self):
        br = self._breaker()
        names = ["d0", "d1", "d2", "d3"]
        assert br.healthy_fraction(names) == 1.0
        br.record_failure("d1", fatal=True)
        br.record_failure("d3", fatal=True)
        assert br.healthy_fraction(names) == 0.5
        assert br.healthy_fraction([]) == 1.0

    def test_events_json_safe(self):
        import json
        br = self._breaker()
        br.record_failure("d0", kind="hang", fatal=True)
        br.poll("d0")
        br.record_success("d0")
        assert json.loads(json.dumps(br.events)) == br.events

    def test_per_device_isolation(self):
        br = self._breaker()
        br.record_failure("d0", fatal=True)
        assert br.state("d0") == br.OPEN
        assert br.state("d1") == br.CLOSED
        assert br.poll("d1") == "full"

    def test_validation(self):
        from repro.gpusim import CircuitBreaker
        with pytest.raises(ArgumentError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ArgumentError):
            CircuitBreaker(probe_after=0)
        with pytest.raises(ArgumentError):
            CircuitBreaker(max_probes=0)
        with pytest.raises(ArgumentError):
            CircuitBreaker(error_rate_threshold=1.5)
