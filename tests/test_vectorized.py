"""Batch-interleaved execution path: bit-for-bit equivalence and dispatch.

The vectorized path must be indistinguishable from the per-block reference
path in everything except wall-clock: identical factor bits, pivots and
info across dtypes, singular matrices, non-square shapes and
pivot-divergent batches.  These tests compare the two paths with
``tobytes()`` (atol=0 would still admit -0.0 vs +0.0 and NaN mismatches).
Dispatch rules — uniform contiguous stacks vectorize directly, pointer
arrays and scattered views vectorize through the gather/pack stage,
aliased/overlapping batches fall back — are pinned here too (mixed-shape
and vbatch coverage lives in ``tests/test_vbatch_vectorized.py``).
"""

import numpy as np
import pytest

from repro.band.generate import random_band_batch, random_rhs
from repro.core import gbsv_batch, gbtrf_batch, gbtrs_batch
from repro.core.batch_args import is_uniform_stack
from repro.core.gbtf2 import gbtf2, gbtf2_batched
from repro.errors import DeviceError
from repro.gpusim import H100_PCIE, PointerArray, Stream, launch, summarize
from repro.gpusim.kernel import SharedMemory

DTYPES = [np.float32, np.float64, np.complex64, np.complex128]
DTYPE_IDS = [np.dtype(d).name for d in DTYPES]


def _bytes_equal(*pairs):
    for got, ref in pairs:
        assert np.asarray(got).tobytes() == np.asarray(ref).tobytes()


def _band_batch(batch, n, kl, ku, dtype, seed, m=None):
    """Random factor-layout batch; rows sized for the factor layout."""
    a = random_band_batch(batch, n, kl, ku, dtype=dtype, seed=seed)
    return a


# ---------------------------------------------------------------------------
# Building-block level: gbtf2_batched vs looped gbtf2
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
@pytest.mark.parametrize("m,n,kl,ku", [
    (16, 16, 2, 3),
    (20, 20, 8, 8),     # band wider than the matrix quarter
    (24, 16, 2, 3),     # m > n
    (16, 24, 2, 3),     # m < n (trailing update columns)
    (12, 12, 0, 2),     # no subdiagonals
    (12, 12, 2, 0),     # no superdiagonals
])
def test_gbtf2_batched_bitwise(dtype, m, n, kl, ku):
    batch = 7
    ldab = 2 * kl + ku + 1
    rng = np.random.default_rng(11)
    a = rng.standard_normal((batch, ldab, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal((batch, ldab, n))
    a = a.astype(dtype)

    ref = a.copy()
    piv_ref = np.zeros((batch, min(m, n)), dtype=np.int64)
    info_ref = np.zeros(batch, dtype=np.int64)
    for k in range(batch):
        p, inf = gbtf2(m, n, kl, ku, ref[k])
        piv_ref[k], info_ref[k] = p, inf

    vec = a.copy()
    piv_v, info_v = gbtf2_batched(m, n, kl, ku, vec)
    _bytes_equal((vec, ref), (piv_v, piv_ref), (info_v, info_ref))


@pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
def test_gbtf2_batched_singular_lanes(dtype):
    n, kl, ku = 14, 3, 2
    batch = 6
    ldab = 2 * kl + ku + 1
    rng = np.random.default_rng(12)
    a = rng.standard_normal((batch, ldab, n))
    if np.dtype(dtype).kind == "c":
        a = a + 1j * rng.standard_normal((batch, ldab, n))
    a = a.astype(dtype)
    # Zero whole band columns in a subset of lanes -> exact zero pivots.
    a[1, :, 4] = 0
    a[3, :, 0] = 0
    a[3, :, 9] = 0

    ref = a.copy()
    info_ref = np.zeros(batch, dtype=np.int64)
    piv_ref = np.zeros((batch, n), dtype=np.int64)
    for k in range(batch):
        piv_ref[k], info_ref[k] = gbtf2(n, n, kl, ku, ref[k])
    assert info_ref[1] != 0 and info_ref[3] != 0  # test is meaningful

    vec = a.copy()
    piv_v, info_v = gbtf2_batched(n, n, kl, ku, vec)
    _bytes_equal((vec, ref), (piv_v, piv_ref), (info_v, info_ref))


# ---------------------------------------------------------------------------
# Driver level: vectorize=None (auto) vs vectorize=False across methods
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
@pytest.mark.parametrize("method,n,kl,ku", [
    ("fused", 24, 2, 3),
    ("window", 48, 3, 2),
    ("window", 64, 8, 8),
])
def test_gbtrf_paths_bitwise(dtype, method, n, kl, ku):
    batch = 9
    a = _band_batch(batch, n, kl, ku, dtype, seed=21)
    a_ref, a_vec = a.copy(), a.copy()
    piv_ref, info_ref = gbtrf_batch(n, n, kl, ku, a_ref, method=method,
                                    vectorize=False)
    piv_vec, info_vec = gbtrf_batch(n, n, kl, ku, a_vec, method=method)
    # Pivot-divergent batch: lanes must not all share one pivot sequence,
    # otherwise the per-lane masking logic is untested.
    assert len({tuple(np.asarray(p)) for p in piv_ref}) > 1
    _bytes_equal((a_vec, a_ref), (np.stack(piv_vec), np.stack(piv_ref)),
                 (info_vec, info_ref))


@pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
@pytest.mark.parametrize("nrhs", [1, 3])
def test_gbtrs_paths_bitwise(dtype, nrhs):
    batch, n, kl, ku = 8, 40, 3, 2
    a = _band_batch(batch, n, kl, ku, dtype, seed=22)
    piv, info = gbtrf_batch(n, n, kl, ku, a)
    assert (info == 0).all()
    b = random_rhs(n, nrhs, batch=batch, dtype=dtype, seed=23)
    b_ref, b_vec = b.copy(), b.copy()
    gbtrs_batch("N", n, kl, ku, nrhs, a, np.stack(piv), b_ref,
                vectorize=False)
    gbtrs_batch("N", n, kl, ku, nrhs, a, np.stack(piv), b_vec)
    _bytes_equal((b_vec, b_ref))


@pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
@pytest.mark.parametrize("method", ["fused", "standard"])
def test_gbsv_singular_paths_bitwise(dtype, method):
    """Singular lanes: factors/pivots written, B untouched, info nonzero —
    identically on both paths (the standard method exercises the scattered
    sub-batch fallback)."""
    batch, n, kl, ku = 8, 16, 2, 2
    a = _band_batch(batch, n, kl, ku, dtype, seed=24)
    a[2, :, 5] = 0
    a[5, :, 0] = 0
    b = random_rhs(n, 1, batch=batch, dtype=dtype, seed=25)
    a_ref, a_vec = a.copy(), a.copy()
    b_ref, b_vec = b.copy(), b.copy()
    piv_ref, info_ref = gbsv_batch(n, kl, ku, 1, a_ref, None, b_ref,
                                   method=method, vectorize=False)
    piv_vec, info_vec = gbsv_batch(n, kl, ku, 1, a_vec, None, b_vec,
                                   method=method)
    assert info_ref[2] != 0 and info_ref[5] != 0
    # Singular problems keep their RHS bits.
    _bytes_equal((b_ref[2], b[2]), (b_ref[5], b[5]))
    _bytes_equal((a_vec, a_ref), (b_vec, b_ref),
                 (np.stack(piv_vec), np.stack(piv_ref)),
                 (info_vec, info_ref))


def test_gbtrf_nonsquare_paths_bitwise():
    m, n, kl, ku, batch = 24, 32, 2, 3, 6
    ldab = 2 * kl + ku + 1
    rng = np.random.default_rng(26)
    a = rng.standard_normal((batch, ldab, n))
    a_ref, a_vec = a.copy(), a.copy()
    piv_ref, info_ref = gbtrf_batch(m, n, kl, ku, a_ref, method="window",
                                    vectorize=False)
    piv_vec, info_vec = gbtrf_batch(m, n, kl, ku, a_vec, method="window")
    _bytes_equal((a_vec, a_ref), (np.stack(piv_vec), np.stack(piv_ref)),
                 (info_vec, info_ref))


# ---------------------------------------------------------------------------
# Dispatch rules
# ---------------------------------------------------------------------------


class TestDispatch:
    def test_uniform_stack_detection(self):
        stack = np.zeros((4, 7, 9))
        assert is_uniform_stack(list(stack))
        assert is_uniform_stack([stack[0]])          # single view
        assert not is_uniform_stack([])
        assert not is_uniform_stack(list(stack[::2]))          # gaps
        assert not is_uniform_stack([stack[0]] * 4)            # aliased
        assert not is_uniform_stack([np.zeros((7, 9))          # no base
                                     for _ in range(3)])
        assert not is_uniform_stack([stack[0], stack[1][:, :8]])

    def test_stack_auto_vectorizes_and_is_traced(self):
        n, kl, ku, batch = 24, 2, 3, 5
        a = _band_batch(batch, n, kl, ku, np.float64, seed=30)
        stream = Stream(H100_PCIE)
        gbtrf_batch(n, n, kl, ku, a, method="window", stream=stream)
        rec = stream.records[-1]
        assert rec.vectorized
        assert rec.executed_blocks == batch
        assert rec.display_name == "gbtrf_window[vec]"
        assert {s.name for s in summarize([stream])} == {"gbtrf_window[vec]"}

    def test_pointer_array_packs_and_vectorizes(self):
        n, kl, ku, batch = 24, 2, 3, 4
        a = _band_batch(batch, n, kl, ku, np.float64, seed=31)
        scattered = PointerArray([a[k].copy() for k in range(batch)])
        stream = Stream(H100_PCIE)
        piv, info = gbtrf_batch(n, n, kl, ku, scattered, method="window",
                                stream=stream)
        rec = stream.records[-1]
        assert rec.vectorized and rec.packed
        assert rec.display_name == "gbtrf_window[vec+pack]"
        # Gather + scatter of the matrix batch.
        assert rec.pack_bytes == 2 * sum(m.nbytes for m in scattered)
        # Same bits as the stack path.
        a2 = a.copy()
        piv2, info2 = gbtrf_batch(n, n, kl, ku, a2, method="window")
        _bytes_equal((np.stack([np.asarray(m) for m in scattered]), a2),
                     (np.stack(piv), np.stack(piv2)), (info, info2))

    def test_vectorize_true_rejects_aliased_batch(self):
        n, kl, ku, batch = 16, 1, 2, 3
        a = _band_batch(batch, n, kl, ku, np.float64, seed=32)
        aliased = [a[0]] * batch          # same storage three times over
        with pytest.raises(DeviceError, match="batch-vectorize"):
            gbtrf_batch(n, n, kl, ku, aliased, batch=batch,
                        method="window", vectorize=True)

    def test_aliased_batch_auto_falls_back(self):
        n, kl, ku, batch = 16, 1, 2, 3
        a = _band_batch(batch, n, kl, ku, np.float64, seed=32)
        aliased = [a[0].copy()] + [a[1]] * (batch - 1)
        stream = Stream(H100_PCIE)
        gbtrf_batch(n, n, kl, ku, aliased, batch=batch, method="window",
                    stream=stream)
        rec = stream.records[-1]
        assert not rec.vectorized and not rec.packed
        assert rec.display_name == "gbtrf_window"

    def test_vectorize_false_forces_per_block(self):
        n, kl, ku, batch = 24, 2, 3, 4
        a = _band_batch(batch, n, kl, ku, np.float64, seed=33)
        stream = Stream(H100_PCIE)
        gbtrf_batch(n, n, kl, ku, a, method="window", stream=stream,
                    vectorize=False)
        assert not stream.records[-1].vectorized

    def test_reference_method_rejects_vectorize_true(self):
        from repro.errors import ArgumentError
        a = _band_batch(3, 16, 1, 1, np.float64, seed=34)
        with pytest.raises(ArgumentError):
            gbtrf_batch(16, 16, 1, 1, a, method="reference", vectorize=True)

    def test_max_blocks_limits_vectorized_sample(self):
        n, kl, ku, batch = 24, 2, 3, 6
        a = _band_batch(batch, n, kl, ku, np.float64, seed=35)
        orig = a.copy()
        stream = Stream(H100_PCIE)
        piv, info = gbtrf_batch(n, n, kl, ku, a, method="window",
                                stream=stream, max_blocks=2)
        rec = stream.records[-1]
        assert rec.vectorized and rec.executed_blocks == 2
        assert rec.grid == batch                     # timing covers all
        # Only the sample was factored; the rest keeps its input bits.
        assert a[2:].tobytes() == orig[2:].tobytes()
        assert a[:2].tobytes() != orig[:2].tobytes()

    @pytest.mark.parametrize("trans", ["T", "C"])
    @pytest.mark.parametrize("dtype", DTYPES, ids=DTYPE_IDS)
    def test_transposed_solve_vectorizes_bitwise(self, trans, dtype):
        batch, n, kl, ku = 6, 40, 2, 2
        a = _band_batch(batch, n, kl, ku, dtype, seed=36)
        piv, info = gbtrf_batch(n, n, kl, ku, a)
        assert (info == 0).all()
        b = random_rhs(n, 2, batch=batch, dtype=dtype, seed=37)
        b_ref, b_vec = b.copy(), b.copy()
        stream = Stream(H100_PCIE)
        gbtrs_batch(trans, n, kl, ku, 2, a, np.stack(piv), b_vec,
                    stream=stream, vectorize=True)
        assert all(r.vectorized for r in stream.records)
        assert {r.display_name for r in stream.records} == \
            {"gbtrs_transU_blocked[vec]", "gbtrs_transL_blocked[vec]"}
        gbtrs_batch(trans, n, kl, ku, 2, a, np.stack(piv), b_ref,
                    vectorize=False)
        _bytes_equal((b_vec, b_ref))

    def test_aggregate_smem_budget(self):
        """The vectorized path is charged the whole grid's footprint."""
        from repro.core.gbtrf_window import SlidingWindowGbtrfKernel
        n, kl, ku, batch = 24, 2, 3, 4
        a = _band_batch(batch, n, kl, ku, np.float64, seed=38)
        pivots = [np.zeros(n, dtype=np.int64) for _ in range(batch)]
        info = np.zeros(batch, dtype=np.int64)
        kernel = SlidingWindowGbtrfKernel(n, n, kl, ku, list(a), pivots,
                                          info, nb=8, threads=kl + 1)
        from repro.errors import SharedMemoryError
        with pytest.raises(SharedMemoryError):
            kernel.run_batch_vectorized(
                batch, SharedMemory(kernel.smem_bytes()))  # 1-block budget
        kernel.run_batch_vectorized(
            batch, SharedMemory(kernel.smem_bytes() * batch))
        assert (info == 0).all()
